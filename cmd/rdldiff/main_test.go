package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdlroute/internal/detail"
	"rdlroute/internal/geom"
)

func writeRoutes(t *testing.T, path string, routes []*detail.Route) {
	t.Helper()
	data, err := json.Marshal(routes)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func mk(net int, length float64) *detail.Route {
	return &detail.Route{
		Net: net,
		Segs: []detail.RouteSeg{{
			Layer: 0,
			Pl:    geom.Polyline{geom.Pt(0, 0), geom.Pt(length, 0)},
		}},
	}
}

func TestDiffBasic(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	writeRoutes(t, oldP, []*detail.Route{mk(0, 100), mk(1, 200), nil})
	writeRoutes(t, newP, []*detail.Route{mk(0, 100), mk(1, 150), mk(2, 50)})

	var sb strings.Builder
	if err := run([]string{oldP, newP}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"net 1", "changed", "-50.0",
		"net 2", "added",
		"total: 300.0 -> 300.0",
		"2 nets changed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff missing %q:\n%s", want, out)
		}
	}
	// Net 0 unchanged: not listed.
	if strings.Contains(out, "net 0") {
		t.Error("unchanged net listed")
	}
}

func TestDiffIdentical(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "r.json")
	writeRoutes(t, p, []*detail.Route{mk(0, 100)})
	var sb strings.Builder
	if err := run([]string{p, p}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0 nets changed") {
		t.Errorf("identical diff wrong:\n%s", sb.String())
	}
}

func TestDiffErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"one"}, &sb); err == nil {
		t.Error("wrong arg count accepted")
	}
	if err := run([]string{"/no/old.json", "/no/new.json"}, &sb); err == nil {
		t.Error("missing files accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad, bad}, &sb); err == nil {
		t.Error("malformed JSON accepted")
	}
}
