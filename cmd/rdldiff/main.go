// Command rdldiff compares two routed-geometry JSON files (as written by
// rdlroute -routes) and reports per-net and total wirelength changes —
// the regression-review companion to the router.
//
// Usage:
//
//	rdldiff old.json new.json
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"rdlroute/internal/detail"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rdldiff: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable command core.
func run(args []string, stdout io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: rdldiff OLD.json NEW.json")
	}
	oldR, err := loadRoutes(args[0])
	if err != nil {
		return err
	}
	newR, err := loadRoutes(args[1])
	if err != nil {
		return err
	}

	type row struct {
		net      int
		old, new float64
	}
	n := len(oldR)
	if len(newR) > n {
		n = len(newR)
	}
	var rows []row
	var oldTotal, newTotal float64
	for ni := 0; ni < n; ni++ {
		var o, w float64
		if ni < len(oldR) && oldR[ni] != nil {
			o = oldR[ni].Wirelength()
		}
		if ni < len(newR) && newR[ni] != nil {
			w = newR[ni].Wirelength()
		}
		oldTotal += o
		newTotal += w
		if o != w {
			rows = append(rows, row{net: ni, old: o, new: w})
		}
	}
	// Largest absolute change first.
	sort.Slice(rows, func(a, b int) bool {
		da := abs(rows[a].new - rows[a].old)
		db := abs(rows[b].new - rows[b].old)
		if da != db {
			return da > db
		}
		return rows[a].net < rows[b].net
	})
	for _, r := range rows {
		status := "changed"
		switch {
		case r.old == 0:
			status = "added"
		case r.new == 0:
			status = "removed"
		}
		fmt.Fprintf(stdout, "net %-4d %-8s %10.1f -> %10.1f (%+.1f µm)\n",
			r.net, status, r.old, r.new, r.new-r.old)
	}
	delta := newTotal - oldTotal
	pct := 0.0
	if oldTotal > 0 {
		pct = 100 * delta / oldTotal
	}
	fmt.Fprintf(stdout, "total: %.1f -> %.1f µm (%+.1f µm, %+.2f%%), %d nets changed\n",
		oldTotal, newTotal, delta, pct, len(rows))
	return nil
}

func loadRoutes(path string) ([]*detail.Route, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var routes []*detail.Route
	if err := json.Unmarshal(data, &routes); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return routes, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
