package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/router"
)

func TestRunNoInput(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), nil, &sb); err == nil {
		t.Error("no input must error")
	}
}

func TestRunUnknownRouter(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-case", "dense1", "-router", "magic"}, &sb); err == nil {
		t.Error("unknown router must error")
	}
}

func TestRunCaseOurs(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-case", "dense1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"router=ours", "design=dense1", "routability=100.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBaselines(t *testing.T) {
	for _, r := range []string{"cai", "aarf"} {
		var sb strings.Builder
		if err := run(context.Background(), []string{"-case", "dense1", "-router", r}, &sb); err != nil {
			t.Fatalf("%s: %v", r, err)
		}
		if !strings.Contains(sb.String(), "router="+r) {
			t.Errorf("%s output wrong: %s", r, sb.String())
		}
	}
}

func TestRunDesignFileAndOutputs(t *testing.T) {
	dir := t.TempDir()
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	designPath := filepath.Join(dir, "d.json")
	if err := d.SaveFile(designPath); err != nil {
		t.Fatal(err)
	}
	svgPath := filepath.Join(dir, "out.svg")
	routesPath := filepath.Join(dir, "routes.json")

	var sb strings.Builder
	err = run(context.Background(), []string{
		"-design", designPath,
		"-svg", svgPath, "-layer", "0",
		"-routes", routesPath,
		"-stats",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	// Stats were printed.
	if !strings.Contains(sb.String(), "angle histogram") {
		t.Error("stats output missing")
	}
	// SVG exists and looks like SVG.
	svgData, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svgData), "<svg") {
		t.Error("SVG output malformed")
	}
	// Routes JSON parses back into routes.
	routesData, err := os.ReadFile(routesPath)
	if err != nil {
		t.Fatal(err)
	}
	var routes []*detail.Route
	if err := json.Unmarshal(routesData, &routes); err != nil {
		t.Fatal(err)
	}
	if len(routes) != len(d.Nets) {
		t.Errorf("routes JSON has %d entries, want %d", len(routes), len(d.Nets))
	}
	for _, rt := range routes {
		if rt == nil || len(rt.Segs) == 0 {
			t.Fatal("routes JSON lost geometry")
		}
	}
}

func TestRunTraceFlag(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.jsonl")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-case", "dense1", "-trace", tracePath}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	// Every line is valid JSON with the mandatory fields; the five
	// top-level pipeline stages all span; the A* and DP counters are live.
	stages := map[string]bool{}
	counters := map[string]int64{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			TMs   *float64 `json:"t_ms"`
			Ev    string   `json:"ev"`
			Stage string   `json:"stage"`
			Name  string   `json:"name"`
			Delta int64    `json:"delta"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line not JSON: %q: %v", line, err)
		}
		if ev.TMs == nil || ev.Ev == "" {
			t.Fatalf("trace line missing t_ms/ev: %q", line)
		}
		if ev.Ev == "stage_end" {
			stages[ev.Stage] = true
		}
		if ev.Ev == "count" {
			counters[ev.Name] += ev.Delta
		}
	}
	for _, want := range []string{"viaplan", "rgraph", "global", "detail", "drc"} {
		if !stages[want] {
			t.Errorf("trace missing stage_end for %q", want)
		}
	}
	if counters["global.astar.expansions"] == 0 {
		t.Error("trace reports zero A* expansions")
	}
	if counters["detail.dp.heap_ops"] == 0 {
		t.Error("trace reports zero DP heap operations")
	}
}

func TestRunStrictFlagCleanRun(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-case", "dense1", "-strict"}, &sb); err != nil {
		t.Fatalf("strict must pass on a clean full route: %v", err)
	}
}

func TestRunMissingDesignFile(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-design", "/no/such/file.json"}, &sb); err == nil {
		t.Error("missing design file must error")
	}
}

func TestRunVerifyFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-case", "dense1", "-verify", "warn"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "verify: 22 nets checked") {
		t.Errorf("verify output missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "connectivity=0") {
		t.Error("verify should report clean connectivity")
	}
}

func TestRunVerifyStrictFindings(t *testing.T) {
	// dense1 routes with a known handful of spacing findings (the golden bar
	// allows up to 40), so strict mode must fail with ErrVerifyFailed — and
	// still print the summary and the routing result first.
	var sb strings.Builder
	err := run(context.Background(), []string{"-case", "dense1", "-verify", "strict"}, &sb)
	if !errors.Is(err, router.ErrVerifyFailed) {
		t.Fatalf("strict verify error = %v, want ErrVerifyFailed", err)
	}
	if !strings.Contains(sb.String(), "router=ours") {
		t.Errorf("routing summary missing before the verify failure:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "verify: 22 nets checked") {
		t.Errorf("verify summary missing:\n%s", sb.String())
	}
}

func TestRunVerifyBaselines(t *testing.T) {
	// The baseline routers have no pipeline gate; -verify must still run the
	// checker on their geometry. (They may leave nets unrouted, so only the
	// summary's presence is pinned, not its counts.)
	for _, r := range []string{"cai", "aarf"} {
		var sb strings.Builder
		if err := run(context.Background(), []string{"-case", "dense1", "-router", r, "-verify", "warn"}, &sb); err != nil {
			t.Fatalf("%s: %v", r, err)
		}
		if !strings.Contains(sb.String(), "nets checked") {
			t.Errorf("%s verify output missing:\n%s", r, sb.String())
		}
	}
}

func TestRunVerifyBadMode(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-case", "dense1", "-verify", "sometimes"}, &sb); err == nil {
		t.Error("unknown verify mode must error")
	}
}

func TestRunPortfolioFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-case", "dense1", "-portfolio", "rudy, netlen"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"router=ours", "portfolio: rudy", "portfolio: netlen", "winner"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunOrderingFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-case", "dense1", "-ordering", "netlen"}, &sb); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); strings.Contains(out, "portfolio:") {
		t.Errorf("single-ordering run printed portfolio rows:\n%s", out)
	}
	if err := run(context.Background(), []string{"-case", "dense1", "-ordering", "zigzag"}, &sb); err == nil {
		t.Error("unknown ordering must error")
	}
}

func TestRunOrderingNeedsOursRouter(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-case", "dense1", "-router", "cai", "-ordering", "rudy"}, &sb); err == nil {
		t.Error("-ordering with -router cai must error")
	}
	if err := run(context.Background(), []string{"-case", "dense1", "-router", "aarf", "-portfolio", "rudy,netlen"}, &sb); err == nil {
		t.Error("-portfolio with -router aarf must error")
	}
}
