// Command rdlroute routes a design with the any-angle RDL router and
// reports routability, wirelength, runtime and DRC status. It can also run
// the two baseline routers, print geometry statistics, emit an SVG of any
// wire layer, write a JSON-lines event trace, and show live progress.
//
// Usage:
//
//	rdlroute [-router ours|cai|aarf] [-budget 30s] [-svg out.svg -layer 0]
//	         [-routes out.json] [-stats] [-verify off|warn|strict]
//	         [-trace out.jsonl] [-progress] [-viacost 20]
//	         [-ordering rudy|netlen|congestion|anneal]
//	         [-portfolio rudy,netlen,anneal] [-ordering-profile prof.json]
//	         [-cpuprofile cpu.out] [-memprofile mem.out]
//	         [-strict] (-design file.json | -case dense1)
//
// Interrupting the process (SIGINT/SIGTERM) cancels routing; the partial
// result routed so far is still reported. With -strict the process exits
// with code 3 when the time budget cut the run short and code 4 when nets
// were left unrouted. -verify warn runs the independent verification gate
// and prints its findings; -verify strict additionally exits with code 5
// when the gate reports any finding.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"rdlroute/internal/aarf"
	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/obs"
	"rdlroute/internal/portfolio"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/router"
	"rdlroute/internal/stats"
	"rdlroute/internal/svg"
	"rdlroute/internal/verify"
	"rdlroute/internal/xarch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rdlroute: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		code := 1
		switch {
		case errors.Is(err, router.ErrTimeout):
			code = 3
		case errors.Is(err, router.ErrUnroutable):
			code = 4
		case errors.Is(err, router.ErrVerifyFailed):
			code = 5
		}
		log.Print(err)
		os.Exit(code)
	}
}

// run is the testable command core.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rdlroute", flag.ContinueOnError)
	var (
		designPath = fs.String("design", "", "design JSON file to route")
		caseName   = fs.String("case", "", "generate and route a dense benchmark (dense1..dense5)")
		which      = fs.String("router", "ours", "router: ours, cai (X-architecture) or aarf (AARF*)")
		budget     = fs.Duration("budget", 30*time.Second, "time budget (0 = unlimited)")
		svgPath    = fs.String("svg", "", "write an SVG of one wire layer to this file")
		layer      = fs.Int("layer", 0, "wire layer for -svg")
		routesPath = fs.String("routes", "", "write routed geometry JSON to this file")
		showStats  = fs.Bool("stats", false, "print geometry statistics (angle histogram, per-layer WL)")
		verifyFlag = fs.String("verify", "off", "verification gate: off, warn (print findings) or strict (exit 5 on findings)")
		tracePath  = fs.String("trace", "", "write a JSON-lines event trace (spans, counters, progress) to this file")
		progress   = fs.Bool("progress", false, "print live per-stage progress to stderr")
		strict     = fs.Bool("strict", false, "fail with exit code 3 on timeout, 4 on unrouted nets")
		workers    = fs.Int("workers", 0, "pipeline parallelism: worker-pool size for global/detail/DRC/verify (0 = GOMAXPROCS capped at 8, 1 = serial); output is identical for every value")
		viaCost    = fs.Float64("viacost", 0, "via cost in µm of equivalent wirelength: 0 = default (4×ViaWidth), negative = free vias")
		ordering   = fs.String("ordering", "", "net-ordering strategy: rudy, netlen, congestion or anneal (empty = rudy)")
		portfolioF = fs.String("portfolio", "", "comma-separated strategies raced as independent route attempts; the best result wins (e.g. rudy,netlen,anneal)")
		orderProf  = fs.String("ordering-profile", "", "JSON weight profile for the congestion ordering strategy")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("cpuprofile: %v", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}
	vmode, err := router.ParseVerifyMode(*verifyFlag)
	if err != nil {
		return err
	}
	var portfolioList []string
	for _, name := range strings.Split(*portfolioF, ",") {
		if name = strings.TrimSpace(name); name != "" {
			portfolioList = append(portfolioList, name)
		}
	}
	var profile *portfolio.Profile
	if *orderProf != "" {
		p, err := portfolio.LoadProfile(*orderProf)
		if err != nil {
			return err
		}
		profile = &p
	}
	if (*ordering != "" || len(portfolioList) > 0 || profile != nil || *viaCost != 0) && *which != "ours" {
		return fmt.Errorf("-ordering/-portfolio/-ordering-profile/-viacost only apply to -router ours, not %q", *which)
	}

	var d *design.Design
	switch {
	case *designPath != "":
		d, err = design.LoadFile(*designPath)
	case *caseName != "":
		d, err = design.GenerateDense(*caseName)
	default:
		return errors.New("need -design FILE or -case NAME")
	}
	if err != nil {
		return err
	}

	var recs []obs.Recorder
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Printf("trace: %v", err)
			}
		}()
		recs = append(recs, obs.NewJSONL(f))
	}
	if *progress {
		recs = append(recs, obs.NewProgress(os.Stderr, 0))
	}
	rec := obs.Multi(recs...)

	// Cancellation (Ctrl-C) surfaces as an error from the router together
	// with the partial result; the summary line is printed either way so the
	// work done so far is never lost.
	var routes []*detail.Route
	var report *verify.Report
	var routeErr error
	timedOut := false
	unrouted := 0
	switch *which {
	case "ours":
		out, err := router.Route(ctx, d, router.Options{
			TimeBudget: *budget, Rec: rec, Verify: vmode, Parallelism: *workers,
			Ordering: *ordering, Portfolio: portfolioList, OrderingProfile: profile,
			Graph: rgraph.Options{ViaCost: rgraph.ViaCostPtr(*viaCost)},
		})
		if out == nil {
			return err
		}
		routeErr = err
		report = out.VerifyReport
		m := out.Metrics
		fmt.Fprintf(stdout, "router=ours design=%s nets=%d/%d routability=%.2f%% wirelength=%.0fµm vias=%d runtime=%v drc=%d timedOut=%v\n",
			d.Name, m.RoutedNets, m.TotalNets, m.Routability*100, m.Wirelength,
			m.Vias, m.Runtime.Round(time.Millisecond), m.DRCViolations, m.TimedOut)
		if m.PortfolioWinner != "" {
			for _, att := range out.Portfolio {
				marker := ""
				if att.Strategy == m.PortfolioWinner {
					marker = " winner"
				}
				if att.OK {
					fmt.Fprintf(stdout, "portfolio: %-10s routability=%.2f%% wirelength=%.0fµm vias=%d%s\n",
						att.Strategy, att.Routability*100, att.Wirelength, att.Vias, marker)
				} else {
					fmt.Fprintf(stdout, "portfolio: %-10s failed: %v\n", att.Strategy, att.Err)
				}
			}
		}
		routes = out.DetailResult.Routes
		timedOut = m.TimedOut
		unrouted = m.TotalNets - m.RoutedNets
	case "cai":
		res, err := xarch.Route(ctx, d, xarch.Options{TimeBudget: *budget, Rec: rec})
		if res == nil {
			return err
		}
		routeErr = err
		fmt.Fprintf(stdout, "router=cai design=%s nets=%d/%d routability=%.2f%% wirelength=%.0fµm runtime=%v timedOut=%v\n",
			d.Name, res.RoutedNets, len(d.Nets), res.Routability*100, res.Wirelength,
			res.Runtime.Round(time.Millisecond), res.TimedOut)
		routes = res.DetailResult.Routes
		timedOut = res.TimedOut
		unrouted = len(d.Nets) - res.RoutedNets
	case "aarf":
		res, err := aarf.Route(ctx, d, aarf.Options{TimeBudget: *budget, Rec: rec})
		if res == nil {
			return err
		}
		routeErr = err
		fmt.Fprintf(stdout, "router=aarf design=%s nets=%d/%d routability=%.2f%% wirelength=%.0fµm runtime=%v timedOut=%v\n",
			d.Name, res.RoutedNets, len(d.Nets), res.Routability*100, res.Wirelength,
			res.Runtime.Round(time.Millisecond), res.TimedOut)
		routes = res.DetailResult.Routes
		timedOut = res.TimedOut
		unrouted = len(d.Nets) - res.RoutedNets
	default:
		return fmt.Errorf("unknown -router %q", *which)
	}
	// A strict-mode verification failure still carries the full output; hold
	// the error so the summary, stats and artifacts below are emitted before
	// the process exits with code 5.
	if routeErr != nil && !errors.Is(routeErr, router.ErrVerifyFailed) {
		return routeErr
	}

	// The baseline routers have no pipeline gate; run the verifier on their
	// output directly so all three routers answer to the same sign-off.
	if vmode != router.VerifyOff && report == nil {
		report = verify.Check(d, routes, verify.Options{Rec: rec})
		if vmode == router.VerifyStrict && !report.OK() {
			routeErr = &router.VerifyError{Report: report}
		}
	}

	if *showStats {
		stats.Analyze(routes).Print(stdout)
	}
	if report != nil {
		fmt.Fprintf(stdout, "verify: %d nets checked, %d findings (connectivity=%d via-via=%d via-wire=%d placement=%d rule=%d)\n",
			report.CheckedNets, len(report.Problems),
			report.Count(verify.BrokenConnectivity), report.Count(verify.ViaViaSpacing),
			report.Count(verify.ViaWireSpacing), report.Count(verify.ViaPlacement),
			report.Count(verify.RuleViolation))
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		if err := svg.Render(f, d, routes, svg.Options{Layer: *layer, ShowVias: true}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (layer %d)\n", *svgPath, *layer)
	}
	if *routesPath != "" {
		f, err := os.Create(*routesPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(routes); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *routesPath)
	}
	if *strict {
		if timedOut {
			return fmt.Errorf("run exceeded the time budget: %w", router.ErrTimeout)
		}
		if unrouted > 0 {
			return fmt.Errorf("%d nets left unrouted: %w", unrouted, router.ErrUnroutable)
		}
	}
	// Deferred strict-verify failure, if any (exit code 5).
	return routeErr
}
