// Command rdlroute routes a design with the any-angle RDL router and
// reports routability, wirelength, runtime and DRC status. It can also run
// the two baseline routers, print geometry statistics, and emit an SVG of
// any wire layer.
//
// Usage:
//
//	rdlroute [-router ours|cai|aarf] [-budget 30s] [-svg out.svg -layer 0]
//	         [-routes out.json] [-stats] (-design file.json | -case dense1)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"rdlroute/internal/aarf"
	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/router"
	"rdlroute/internal/stats"
	"rdlroute/internal/svg"
	"rdlroute/internal/verify"
	"rdlroute/internal/xarch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rdlroute: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable command core.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rdlroute", flag.ContinueOnError)
	var (
		designPath = fs.String("design", "", "design JSON file to route")
		caseName   = fs.String("case", "", "generate and route a dense benchmark (dense1..dense5)")
		which      = fs.String("router", "ours", "router: ours, cai (X-architecture) or aarf (AARF*)")
		budget     = fs.Duration("budget", 30*time.Second, "time budget (0 = unlimited)")
		svgPath    = fs.String("svg", "", "write an SVG of one wire layer to this file")
		layer      = fs.Int("layer", 0, "wire layer for -svg")
		routesPath = fs.String("routes", "", "write routed geometry JSON to this file")
		showStats  = fs.Bool("stats", false, "print geometry statistics (angle histogram, per-layer WL)")
		doVerify   = fs.Bool("verify", false, "run the independent result verifier and print its summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var d *design.Design
	var err error
	switch {
	case *designPath != "":
		d, err = design.LoadFile(*designPath)
	case *caseName != "":
		d, err = design.GenerateDense(*caseName)
	default:
		return errors.New("need -design FILE or -case NAME")
	}
	if err != nil {
		return err
	}

	var routes []*detail.Route
	switch *which {
	case "ours":
		out, err := router.Route(d, router.Options{TimeBudget: *budget})
		if err != nil {
			return err
		}
		m := out.Metrics
		fmt.Fprintf(stdout, "router=ours design=%s nets=%d/%d routability=%.2f%% wirelength=%.0fµm vias=%d runtime=%v drc=%d timedOut=%v\n",
			d.Name, m.RoutedNets, m.TotalNets, m.Routability*100, m.Wirelength,
			m.Vias, m.Runtime.Round(time.Millisecond), m.DRCViolations, m.TimedOut)
		routes = out.DetailResult.Routes
	case "cai":
		res, err := xarch.Route(d, xarch.Options{TimeBudget: *budget})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "router=cai design=%s nets=%d/%d routability=%.2f%% wirelength=%.0fµm runtime=%v timedOut=%v\n",
			d.Name, res.RoutedNets, len(d.Nets), res.Routability*100, res.Wirelength,
			res.Runtime.Round(time.Millisecond), res.TimedOut)
		routes = res.DetailResult.Routes
	case "aarf":
		res, err := aarf.Route(d, aarf.Options{TimeBudget: *budget})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "router=aarf design=%s nets=%d/%d routability=%.2f%% wirelength=%.0fµm runtime=%v timedOut=%v\n",
			d.Name, res.RoutedNets, len(d.Nets), res.Routability*100, res.Wirelength,
			res.Runtime.Round(time.Millisecond), res.TimedOut)
		routes = res.DetailResult.Routes
	default:
		return fmt.Errorf("unknown -router %q", *which)
	}

	if *showStats {
		stats.Analyze(routes).Print(stdout)
	}
	if *doVerify {
		rep := verify.Verify(d, routes)
		fmt.Fprintf(stdout, "verify: %d nets checked, %d findings (connectivity=%d via-via=%d via-wire=%d placement=%d rule=%d)\n",
			rep.CheckedNets, len(rep.Problems),
			rep.Count(verify.BrokenConnectivity), rep.Count(verify.ViaViaSpacing),
			rep.Count(verify.ViaWireSpacing), rep.Count(verify.ViaPlacement),
			rep.Count(verify.RuleViolation))
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		if err := svg.Render(f, d, routes, svg.Options{Layer: *layer, ShowVias: true}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (layer %d)\n", *svgPath, *layer)
	}
	if *routesPath != "" {
		f, err := os.Create(*routesPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(routes); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *routesPath)
	}
	return nil
}
