// Command benchgen generates the dense1–dense5 benchmark designs (Table I
// statistics) as JSON files.
//
// Usage:
//
//	benchgen [-out DIR] [case ...]
//
// With no case arguments all five designs are generated.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"rdlroute/internal/design"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable command core.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	outDir := fs.String("out", ".", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	names := fs.Args()
	if len(names) == 0 {
		names = design.DenseNames()
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for _, name := range names {
		d, err := design.GenerateDense(name)
		if err != nil {
			return err
		}
		path := filepath.Join(*outDir, name+".json")
		if err := d.SaveFile(path); err != nil {
			return err
		}
		s := d.Stats()
		fmt.Fprintf(stdout, "%s: chips=%d io=%d bumps=%d nets=%d layers=%d -> %s\n",
			s.Name, s.Chips, s.IOPads, s.BumpPads, s.Nets, s.WireLayers, path)
	}
	return nil
}
