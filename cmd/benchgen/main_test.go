package main

import (
	"path/filepath"
	"strings"
	"testing"

	"rdlroute/internal/design"
)

func TestRunGeneratesAll(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range design.DenseNames() {
		d, err := design.LoadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Name != name {
			t.Errorf("loaded %s from %s.json", d.Name, name)
		}
	}
	if got := strings.Count(sb.String(), "->"); got != 5 {
		t.Errorf("reported %d files, want 5", got)
	}
}

func TestRunSingleCase(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-out", dir, "dense2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := design.LoadFile(filepath.Join(dir, "dense2.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := design.LoadFile(filepath.Join(dir, "dense1.json")); err == nil {
		t.Error("unrequested case generated")
	}
}

func TestRunUnknownCase(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-out", t.TempDir(), "nope"}, &sb); err == nil {
		t.Error("unknown case must error")
	}
}
