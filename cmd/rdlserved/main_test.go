package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/serve"
)

// lockedBuffer collects server stdout across goroutines.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var urlRe = regexp.MustCompile(`listening on (http://[^\s]+)`)

// startServer runs the server core on an ephemeral port and returns its base
// URL, a cancel func standing in for SIGTERM (signal.NotifyContext cancels
// the same context a real SIGTERM would), and the run() result channel.
func startServer(t *testing.T, args ...string) (string, context.CancelFunc, chan error, *lockedBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &lockedBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := urlRe.FindStringSubmatch(out.String()); m != nil {
			return m[1], cancel, done, out
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	t.Fatalf("server never started: %q", out.String())
	return "", nil, nil, nil
}

func smallDesign(t *testing.T, seed int64) []byte {
	t.Helper()
	d, err := design.GenerateRandom(design.RandomSpec{Seed: seed, Chips: 2, NetsPerChannel: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func submit(t *testing.T, url string, designJSON []byte, query string) (serve.JobStatus, int) {
	t.Helper()
	body := fmt.Sprintf(`{"design": %s}`, designJSON)
	resp, err := http.Post(url+"/v1/jobs"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return st, resp.StatusCode
}

// TestServedEndToEnd is the acceptance-criteria scenario: the same design
// submitted twice routes once and hits the cache once with identical
// metrics; SIGTERM drains the in-flight third job and exits cleanly.
func TestServedEndToEnd(t *testing.T) {
	url, sigterm, done, out := startServer(t, "-workers", "2")

	dj := smallDesign(t, 3)
	first, code := submit(t, url, dj, "?wait=1")
	if code != http.StatusOK {
		t.Fatalf("first submit: code %d (%+v)", code, first)
	}
	if first.State != serve.StateDone || first.CacheHit {
		t.Fatalf("first submit should route fresh: %+v", first)
	}
	if first.Metrics == nil || first.Metrics.Routability == 0 {
		t.Fatalf("first submit has no routing metrics: %+v", first)
	}

	second, code := submit(t, url, dj, "?wait=1")
	if code != http.StatusOK || !second.CacheHit {
		t.Fatalf("second submit should hit the cache: code %d %+v", code, second)
	}
	if *first.Metrics != *second.Metrics {
		t.Fatalf("metrics differ between run and cache hit:\n%+v\n%+v", first.Metrics, second.Metrics)
	}

	// The cache-hit counter confirms the second run never routed.
	resp, err := http.Get(url + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Counters[serve.CtrCacheHit] != 1 {
		t.Fatalf("cache hits = %d, want 1 (counters %v)", stats.Counters[serve.CtrCacheHit], stats.Counters)
	}

	// Leave a job in flight, then deliver the shutdown signal: the drain
	// must finish it (completed=3 in the exit summary) and exit cleanly.
	inflight, code := submit(t, url, smallDesign(t, 4), "")
	if code != http.StatusAccepted {
		t.Fatalf("third submit: code %d %+v", code, inflight)
	}
	sigterm()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run() = %v, want clean exit", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain in time")
	}
	if s := out.String(); !strings.Contains(s, "completed=3") {
		t.Errorf("drain summary should count the in-flight job: %q", s)
	}
}

// TestServedQueueFull429 saturates a 1-worker/1-slot server with distinct
// designs and requires the backpressure 429.
func TestServedQueueFull429(t *testing.T) {
	url, sigterm, done, _ := startServer(t, "-workers", "1", "-queue", "1")

	// A large design holds the single worker for hundreds of milliseconds,
	// so the fast submissions below pile up against the 1-slot queue.
	big, err := design.GenerateRandom(design.RandomSpec{Seed: 1, Chips: 5, NetsPerChannel: 30})
	if err != nil {
		t.Fatal(err)
	}
	bigJSON, err := json.Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := submit(t, url, bigJSON, ""); code != http.StatusAccepted {
		t.Fatalf("big submit: code %d", code)
	}

	accepted, rejected := 0, 0
	for seed := int64(10); seed < 20; seed++ {
		_, code := submit(t, url, smallDesign(t, seed), "")
		switch code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("want both accepts and 429s, got accepted=%d rejected=%d", accepted, rejected)
	}

	sigterm()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run() = %v, want clean exit", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain in time")
	}
}
