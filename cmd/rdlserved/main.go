// Command rdlserved serves the any-angle RDL router over HTTP: a concurrent
// job engine with a bounded priority queue, a worker pool, and a
// content-addressed result cache, so parameter sweeps and net-ordering
// exploration can call the router many times cheaply over the same design.
//
// Usage:
//
//	rdlserved [-addr :8080] [-workers 4] [-queue 64] [-cache 128]
//	          [-budget 30s] [-drain 30s] [-trace trace.jsonl] [-pprof]
//
// API (see doc/SERVICE.md for the full reference):
//
//	POST   /v1/jobs             submit {"design": ..., "options": ..., "priority": ...}
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result metrics, stage breakdown, optional geometry
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness (503 while draining)
//	GET    /metricsz            queue/cache/job counters and gauges
//
// SIGINT/SIGTERM shuts down gracefully: the listener stops accepting, the
// engine drains queued and running jobs within the -drain budget, and the
// process exits 0. Jobs still unfinished when the budget expires are
// cancelled and the process exits 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rdlroute/internal/obs"
	"rdlroute/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rdlserved: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable server core: it serves until ctx is cancelled, then
// drains and returns nil on a clean exit.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rdlserved", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		workers   = fs.Int("workers", 0, "concurrent routing jobs (0 = GOMAXPROCS, capped at 4); per-job pipeline parallelism is the job's \"parallelism\" field")
		queueCap  = fs.Int("queue", 64, "queued-job capacity before submissions get 429")
		cacheSize = fs.Int("cache", 128, "result-cache entries (negative disables)")
		budget    = fs.Duration("budget", 30*time.Second, "default per-job time budget for requests without one")
		drain     = fs.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight jobs")
		tracePath = fs.String("trace", "", "write a JSON-lines event trace of every job to this file")
		pprofFlag = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (diagnosis on trusted networks only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var rec obs.Recorder
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Printf("trace: %v", err)
			}
		}()
		rec = obs.NewJSONL(f)
	}

	eng := serve.New(serve.Config{
		Workers:           *workers,
		QueueCapacity:     *queueCap,
		CacheEntries:      *cacheSize,
		DefaultTimeBudget: *budget,
		Rec:               rec,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		eng.Close()
		return err
	}
	fmt.Fprintf(stdout, "rdlserved: listening on http://%s\n", ln.Addr())

	// The profiling endpoints mount on the explicit mux, not the package
	// default one, so nothing is exposed unless -pprof is set.
	var handler http.Handler = serve.NewHandler(eng)
	if *pprofFlag {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		eng.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections and let in-flight
	// handlers (including ?wait=1 submissions) finish, then drain the
	// engine so queued and running jobs complete before we exit.
	fmt.Fprintln(stdout, "rdlserved: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := eng.Drain(shutCtx); err != nil {
		return fmt.Errorf("drain: %d jobs cancelled after %v: %w",
			eng.Stats().Counters[serve.CtrCancelled], *drain, err)
	}
	s := eng.Stats()
	fmt.Fprintf(stdout, "rdlserved: drained (completed=%d cache_hits=%d failed=%d cancelled=%d)\n",
		s.Counters[serve.CtrCompleted], s.Counters[serve.CtrCacheHit],
		s.Counters[serve.CtrFailed], s.Counters[serve.CtrCancelled])
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
