// Command allocgate enforces the pinned allocs/op budgets of the routing
// hot paths from a BENCH_route.json-style file. It is the CI half of the
// zero-allocation work: the benchmarks measure, TestMain records, and this
// gate fails the build when any gated row regresses past its budget.
//
// Budgets are the measured allocs/op of each stage at the time its
// allocation profile was last optimized, plus 10% headroom (rounded up), so
// a >10% allocation regression fails the bench-smoke job. Allocation counts
// — unlike wall-clock — are stable across hosts and -benchtime settings
// here because every benchmark iteration runs the stage cold (fresh router
// or detailer per op), which is what makes a hard gate practical. When an
// intentional change moves a budget, re-pin it from a fresh
// `make bench-route` run and say so in the commit.
//
// Usage:
//
//	allocgate [-in BENCH_route.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
)

// budgets pins the gated rows. Global budgets cover the serial reference
// rows (the parallel rows' allocation counts include scheduling-dependent
// speculation, which is tracked but not gated); detail rows run the default
// pool and are gated directly since tile scratches allocate identically at
// every pool size.
var budgets = []struct {
	name string
	max  float64
}{
	{"global/dense1/serial", 1080},
	{"global/dense2/serial", 2785},
	{"global/dense3/serial", 3760},
	{"global/dense4/serial", 5380},
	{"global/dense5/serial", 18375},
	{"detail/dense1", 4850},
	{"detail/dense2", 12200},
	{"detail/dense3", 21500},
	{"detail/dense4", 32350},
	{"detail/dense5", 87750},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("allocgate: ")
	in := flag.String("in", "BENCH_route.json", "benchmark JSON to check")
	flag.Parse()
	if err := run(*in, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable command core: it loads the bench file and checks
// every budgeted row, returning an error describing all failures at once.
func run(path string, stdout io.Writer) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []map[string]any
	if err := json.Unmarshal(b, &entries); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	byName := make(map[string]map[string]any, len(entries))
	for _, e := range entries {
		if n, ok := e["name"].(string); ok {
			byName[n] = e
		}
	}
	failures := 0
	for _, bd := range budgets {
		e, ok := byName[bd.name]
		if !ok {
			failures++
			fmt.Fprintf(stdout, "FAIL %-22s missing from %s (budget %.0f allocs/op unchecked)\n",
				bd.name, path, bd.max)
			continue
		}
		a, ok := e["allocs_per_op"].(float64)
		if !ok {
			failures++
			fmt.Fprintf(stdout, "FAIL %-22s has no allocs_per_op\n", bd.name)
			continue
		}
		if a > bd.max {
			failures++
			fmt.Fprintf(stdout, "FAIL %-22s %.0f allocs/op exceeds budget %.0f\n", bd.name, a, bd.max)
			continue
		}
		fmt.Fprintf(stdout, "ok   %-22s %.0f allocs/op within budget %.0f\n", bd.name, a, bd.max)
	}
	if failures > 0 {
		return fmt.Errorf("%d budget(s) violated", failures)
	}
	return nil
}
