package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, entries []map[string]any) string {
	t.Helper()
	b, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// withinBudget builds a bench file where every gated row sits exactly at
// its budget.
func withinBudget(t *testing.T) []map[string]any {
	t.Helper()
	var entries []map[string]any
	for _, bd := range budgets {
		entries = append(entries, map[string]any{
			"name": bd.name, "allocs_per_op": bd.max,
		})
	}
	return entries
}

func TestGatePassesAtBudget(t *testing.T) {
	var out strings.Builder
	if err := run(writeBench(t, withinBudget(t)), &out); err != nil {
		t.Fatalf("gate failed at exact budgets: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Fatalf("unexpected FAIL line:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	entries := withinBudget(t)
	entries[0]["allocs_per_op"] = budgets[0].max * 1.01
	var out strings.Builder
	err := run(writeBench(t, entries), &out)
	if err == nil {
		t.Fatalf("gate passed a regressed row:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL "+budgets[0].name) {
		t.Fatalf("failure does not name the regressed row:\n%s", out.String())
	}
}

func TestGateFailsOnMissingRow(t *testing.T) {
	entries := withinBudget(t)[1:] // drop the first gated row
	var out strings.Builder
	if err := run(writeBench(t, entries), &out); err == nil {
		t.Fatalf("gate passed with a gated row missing:\n%s", out.String())
	}
}

// TestBudgetsCoverEveryDenseDetailRow pins that the gate covers the whole
// dense suite for both gated stages — adding a dense case without extending
// the gate is the regression this test exists to catch.
func TestBudgetsCoverEveryDenseDetailRow(t *testing.T) {
	want := []string{"dense1", "dense2", "dense3", "dense4", "dense5"}
	have := make(map[string]bool)
	for _, bd := range budgets {
		have[bd.name] = true
	}
	for _, c := range want {
		if !have["detail/"+c] {
			t.Errorf("no detail budget for %s", c)
		}
		if !have["global/"+c+"/serial"] {
			t.Errorf("no global serial budget for %s", c)
		}
	}
}
