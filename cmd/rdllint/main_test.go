package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsEveryAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run -list = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"detrand", "mapiter", "floateq", "barego", "noalloc", "transalloc", "readset"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestRepoExitsClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "../.."}, &out, &errb); code != 0 {
		t.Fatalf("rdllint over the repo = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

// writeModule materializes a throwaway module from root-relative paths.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestFindingsExitNonZero builds a throwaway module whose internal/geom
// reads the wall clock and asserts the driver reports it and exits 1 —
// the end-to-end path a CI failure takes.
func TestFindingsExitNonZero(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                "module tmpmod\n\ngo 1.22\n",
		"internal/geom/geom.go": "package geom\n\nimport \"time\"\n\n// Stamp leaks the wall clock into a deterministic package.\nfunc Stamp() time.Time {\n\treturn time.Now()\n}\n",
	})

	var out, errb bytes.Buffer
	code := run([]string{"-C", root}, &out, &errb)
	if code != 1 {
		t.Fatalf("rdllint over a dirty module = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	want := filepath.Join("internal", "geom", "geom.go")
	if !strings.Contains(out.String(), want) || !strings.Contains(out.String(), "detrand") {
		t.Errorf("finding for %s (detrand) not reported:\n%s", want, out.String())
	}
}

// TestJSONOutput pins the machine-readable mode: the same findings as
// the text mode, as one JSON array with stable field names, and an exit
// code that still reflects them.
func TestJSONOutput(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                "module tmpmod\n\ngo 1.22\n",
		"internal/geom/geom.go": "package geom\n\nimport \"time\"\n\nfunc Stamp() time.Time {\n\treturn time.Now()\n}\n",
	})

	var out, errb bytes.Buffer
	code := run([]string{"-C", root, "-json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("rdllint -json over a dirty module = %d, want 1\nstderr: %s", code, errb.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 1 {
		t.Fatalf("got %d JSON findings, want 1: %s", len(findings), out.String())
	}
	f := findings[0]
	if f.Analyzer != "detrand" || f.File != filepath.Join("internal", "geom", "geom.go") || f.Line == 0 || f.Message == "" {
		t.Errorf("unexpected JSON finding: %+v", f)
	}
}

// TestEscapeModeReportsHeapMove builds a module whose //rdl:noalloc
// function leaks a stack variable — invisible to the AST passes — and
// asserts the -escape mode catches it end to end through the real
// compiler.
func TestEscapeModeReportsHeapMove(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":  "module tmpmod\n\ngo 1.22\n",
		"leak.go": "package tmpmod\n\n//rdl:noalloc\nfunc Leak() *int {\n\tx := 1\n\treturn &x\n}\n",
	})

	var out, errb bytes.Buffer
	code := run([]string{"-C", root, "-escape"}, &out, &errb)
	if code != 1 {
		t.Fatalf("rdllint -escape over a leaking module = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "moved to heap: x") || !strings.Contains(out.String(), "Leak") {
		t.Errorf("heap move not reported:\n%s", out.String())
	}
}

// TestEscapeModeRepoClean mirrors TestRepoExitsClean for the gate: the
// real repo must pass the compiler-backed check.
func TestEscapeModeRepoClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "../..", "-escape"}, &out, &errb); code != 0 {
		t.Fatalf("rdllint -escape over the repo = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestMissingModuleExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", t.TempDir()}, &out, &errb); code != 2 {
		t.Fatalf("rdllint outside a module = %d, want 2", code)
	}
}
