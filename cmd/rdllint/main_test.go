package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsEveryAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run -list = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"detrand", "mapiter", "floateq", "barego", "noalloc"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestRepoExitsClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "../.."}, &out, &errb); code != 0 {
		t.Fatalf("rdllint over the repo = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

// TestFindingsExitNonZero builds a throwaway module whose internal/geom
// reads the wall clock and asserts the driver reports it and exits 1 —
// the end-to-end path a CI failure takes.
func TestFindingsExitNonZero(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "geom")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(root, "go.mod"): "module tmpmod\n\ngo 1.22\n",
		filepath.Join(dir, "geom.go"): "package geom\n\nimport \"time\"\n\n// Stamp leaks the wall clock into a deterministic package.\nfunc Stamp() time.Time {\n\treturn time.Now()\n}\n",
	}
	for path, src := range files {
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var out, errb bytes.Buffer
	code := run([]string{"-C", root}, &out, &errb)
	if code != 1 {
		t.Fatalf("rdllint over a dirty module = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	want := filepath.Join("internal", "geom", "geom.go")
	if !strings.Contains(out.String(), want) || !strings.Contains(out.String(), "detrand") {
		t.Errorf("finding for %s (detrand) not reported:\n%s", want, out.String())
	}
}

func TestMissingModuleExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", t.TempDir()}, &out, &errb); code != 2 {
		t.Fatalf("rdllint outside a module = %d, want 2", code)
	}
}
