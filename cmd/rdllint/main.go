// Command rdllint runs the routing stack's domain-specific static
// analyzers (internal/lint) over every non-test package of the module:
//
//	rdllint            # lint the module containing the working directory
//	rdllint -C dir     # lint the module containing dir
//	rdllint -list      # print the analyzers, their scopes, and exit
//
// Findings print one per line as file:line:col: analyzer: message, with
// paths relative to the module root. Exit codes: 0 clean, 1 findings,
// 2 usage or load failure (parse error, type error, no module).
//
// Suppressions: a finding is acknowledged in the source with
// `//rdl:allow <analyzer> <reason>` on the flagged line or the line
// above. Allows without reasons and allows that no longer suppress
// anything are themselves findings, so the exception inventory stays
// honest. See doc/LINT.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rdlroute/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rdllint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "lint the module containing this directory")
	list := fs.Bool("list", false, "print the analyzers and their scopes, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if a.Scope != nil {
				scope = strings.Join(a.Scope, ", ")
			}
			fmt.Fprintf(stdout, "%-8s  [%s]\n          %s\n", a.Name, scope, a.Doc)
		}
		return 0
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := mod.Lint(analyzers)
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			rel = f.Pos.Filename
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "rdllint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
