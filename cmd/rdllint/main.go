// Command rdllint runs the routing stack's domain-specific static
// analyzers (internal/lint) over every non-test package of the module:
//
//	rdllint            # lint the module containing the working directory
//	rdllint -C dir     # lint the module containing dir
//	rdllint -list      # print the analyzers, their scopes, and exit
//	rdllint -json      # emit findings as a JSON array instead of text
//	rdllint -escape    # compiler-backed escape gate instead of the AST suite
//
// Findings print one per line as file:line:col: analyzer: message, with
// paths relative to the module root. With -json they print as one JSON
// array of {file, line, col, analyzer, message} objects in the same
// stable order. Exit codes: 0 clean, 1 findings, 2 usage or load failure
// (parse error, type error, no module).
//
// -escape runs the second line of defence behind //rdl:noalloc: instead
// of the AST analyzers it invokes `go build -gcflags=-m=2 ./...` and
// fails if the compiler's own escape analysis places a heap allocation
// inside any annotated function — catching what the syntactic passes
// cannot see (a stack variable moved to the heap because a pointer to it
// outlives the frame). It needs the go tool on PATH, which is why it is
// a separate mode rather than part of the default pure-AST run.
//
// Suppressions: a finding is acknowledged in the source with
// `//rdl:allow <analyzer> <reason>` on the flagged line or the line
// above. Allows without reasons and allows that no longer suppress
// anything are themselves findings, so the exception inventory stays
// honest. See doc/LINT.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rdlroute/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable shape of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rdllint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "lint the module containing this directory")
	list := fs.Bool("list", false, "print the analyzers and their scopes, then exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	escape := fs.Bool("escape", false, "run the compiler-backed escape gate instead of the AST analyzers")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if a.Scope != nil {
				scope = strings.Join(a.Scope, ", ")
			}
			fmt.Fprintf(stdout, "%-8s  [%s]\n          %s\n", a.Name, scope, a.Doc)
		}
		return 0
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var findings []lint.Finding
	if *escape {
		findings, err = mod.EscapeCheck(nil)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		findings = mod.Lint(analyzers)
	}
	if *asJSON {
		enc := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			enc = append(enc, jsonFinding{
				File:     relTo(root, f.Pos.Filename),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		out, err := json.MarshalIndent(enc, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", out)
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relTo(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "rdllint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// relTo renders a finding path relative to the module root, falling back
// to the absolute path when it does not share the root.
func relTo(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return path
	}
	return rel
}
