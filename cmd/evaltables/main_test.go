package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNothingSelected(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), nil, &sb); err != errNothingSelected {
		t.Errorf("err = %v", err)
	}
}

func TestRunTable1(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-table", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dense5") {
		t.Error("Table I output incomplete")
	}
}

func TestRunTable2Subset(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-table", "2", "-cases", "dense1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "dense1") {
		t.Errorf("Table II output incomplete:\n%s", out)
	}
	for _, want := range []string{"V(Cai)", "V(Ours)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing via column %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "dense2") {
		t.Error("case subset not honored")
	}
}

func TestRunFig2(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "channel utilization") {
		t.Error("Fig. 2 output missing")
	}
}

func TestRunFig14(t *testing.T) {
	if testing.Short() {
		t.Skip("dense5 route in -short mode")
	}
	dir := t.TempDir()
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "14", "-out", dir, "-budget", "60s"}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig14_dense5_layer1.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("Fig. 14 SVG malformed")
	}
}

func TestSplitFields(t *testing.T) {
	got := splitFields("dense1 dense2,dense3  ")
	want := []string{"dense1", "dense2", "dense3"}
	if len(got) != len(want) {
		t.Fatalf("splitFields = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("field %d = %q, want %q", i, got[i], want[i])
		}
	}
	if out := splitFields(""); len(out) != 0 {
		t.Errorf("empty split = %v", out)
	}
}

func TestRunPortfolioTable(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-portfolio", "rudy,netlen", "-cases", "dense1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Portfolio ordering race", "rudy", "netlen", "ΔWL vs rudy", "beat rudy-only on"} {
		if !strings.Contains(out, want) {
			t.Errorf("portfolio table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") {
		t.Errorf("no winner starred:\n%s", out)
	}
}
