// Command evaltables regenerates every table and figure of the paper's
// evaluation section:
//
//	evaltables -table 1            # Table I  (benchmark statistics)
//	evaltables -table 2            # Table II (ours vs traditional router)
//	evaltables -table 3            # Table III (ours vs AARF*)
//	evaltables -fig 2              # Fig. 2   (channel utilization series)
//	evaltables -fig 14 -out out/   # Fig. 14  (dense5 layer-1 SVG)
//	evaltables -ablations dense3   # ablation studies
//	evaltables -portfolio default  # ordering-portfolio race, per-strategy rows
//	evaltables -all -out out/      # everything
//
// The -budget flag is the per-run time cap (the paper's 1-hour limit scaled
// to these benchmarks; default 30s).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"rdlroute/internal/bench"
	"rdlroute/internal/design"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evaltables: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// errNothingSelected asks for usage when no flag selected work.
var errNothingSelected = errors.New("nothing selected; use -table, -fig, -ablations or -all")

// run is the testable command core.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("evaltables", flag.ContinueOnError)
	var (
		table     = fs.Int("table", 0, "print table 1, 2 or 3")
		fig       = fs.Int("fig", 0, "produce figure 2 or 14")
		ablations = fs.String("ablations", "", "run ablations on the named case")
		portfolio = fs.String("portfolio", "", "race ordering strategies per case and print per-strategy rows (comma-separated, or \"default\" for rudy,netlen,congestion)")
		all       = fs.Bool("all", false, "produce every table, figure, and ablation")
		outDir    = fs.String("out", "out", "output directory for figure files")
		budget    = fs.Duration("budget", 30*time.Second, "time budget per routing run")
		cases     = fs.String("cases", "", "comma-free space-separated case subset (default: all five)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.Config{TimeBudget: *budget}
	if *cases != "" {
		cfg.Cases = splitFields(*cases)
	}
	did := false

	if *table == 1 || *all {
		if err := bench.TableI(stdout, cfg); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		did = true
	}
	if *table == 2 || *all {
		if _, err := bench.TableII(ctx, stdout, cfg); err != nil {
			return err
		}
		did = true
	}
	if *table == 3 || *all {
		if _, err := bench.TableIII(ctx, stdout, cfg); err != nil {
			return err
		}
		did = true
	}
	if *fig == 2 || *all {
		bench.PrintFig2(stdout, design.DefaultRules())
		did = true
	}
	if *fig == 14 || *all {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*outDir, "fig14_dense5_layer1.svg")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		out, err := bench.Fig14(ctx, f, *budget)
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Fig. 14: wrote %s (routability %.2f%%, wirelength %.0f µm)\n\n",
			path, out.Metrics.Routability*100, out.Metrics.Wirelength)
		did = true
	}
	if *portfolio != "" || *all {
		names := splitFields(*portfolio)
		if len(names) == 1 && names[0] == "default" {
			names = nil // PortfolioTable's canonical K=3 set
		}
		if _, err := bench.PortfolioTable(ctx, stdout, cfg, names); err != nil {
			return err
		}
		did = true
	}
	if *ablations != "" || *all {
		name := *ablations
		if name == "" {
			name = "dense3"
		}
		if err := bench.PrintAblations(ctx, stdout, name); err != nil {
			return err
		}
		did = true
	}
	if !did {
		return errNothingSelected
	}
	return nil
}

// splitFields splits on spaces, dropping empties.
func splitFields(s string) []string {
	var out []string
	field := ""
	for _, r := range s + " " {
		if r == ' ' || r == ',' {
			if field != "" {
				out = append(out, field)
				field = ""
			}
			continue
		}
		field += string(r)
	}
	return out
}
