// Benchmarks regenerating every table and figure of the paper's evaluation
// section. One benchmark family per table/figure:
//
//	BenchmarkTable1Generate/*   — Table I  (benchmark generation)
//	BenchmarkTable2/*           — Table II (ours vs traditional router)
//	BenchmarkTable3/*           — Table III (ours vs AARF*)
//	BenchmarkFig2               — Fig. 2   (channel utilization series)
//	BenchmarkFig14              — Fig. 14  (dense5 layer-1 rendering)
//	BenchmarkAblation*          — design-choice ablations from DESIGN.md
//
// Each reported iteration routes the named design end to end; ns/op is the
// full pipeline runtime, allocs/op its allocation footprint.
package rdlroute_test

import (
	"context"
	"io"
	"testing"
	"time"

	"rdlroute/internal/aarf"
	"rdlroute/internal/bench"
	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/global"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/router"
	"rdlroute/internal/xarch"
)

// benchBudget caps each routing run inside benchmarks; heavyweight AARF*
// runs hit it exactly the way the paper's 1-hour cap is hit.
const benchBudget = 30 * time.Second

// smallCases keeps the per-iteration cost of the heavier benchmark families
// manageable; the full five-case sweep is cmd/evaltables' job.
var smallCases = []string{"dense1", "dense2", "dense3"}

var allCases = design.DenseNames()

func BenchmarkTable1Generate(b *testing.B) {
	for _, name := range allCases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := design.GenerateDense(name)
				if err != nil {
					b.Fatal(err)
				}
				if err := d.Validate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable2(b *testing.B) {
	for _, name := range allCases {
		b.Run(name+"/ours", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := bench.RunOurs(context.Background(), name, benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Routability, "routability%")
				b.ReportMetric(r.Wirelength, "wirelength_um")
			}
		})
		b.Run(name+"/cai", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := bench.RunCai(context.Background(), name, benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Routability, "routability%")
				b.ReportMetric(r.Wirelength, "wirelength_um")
			}
		})
	}
}

func BenchmarkTable3(b *testing.B) {
	for _, name := range allCases {
		b.Run(name+"/ours", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := bench.RunOurs(context.Background(), name, benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Routability, "routability%")
			}
		})
		b.Run(name+"/aarf", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := bench.RunAARF(context.Background(), name, benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Routability, "routability%")
				b.ReportMetric(r.Wirelength, "wirelength_um")
			}
		})
	}
}

func BenchmarkFig2(b *testing.B) {
	rules := design.DefaultRules()
	for i := 0; i < b.N; i++ {
		rows := bench.Fig2(420, rules)
		if len(rows) == 0 {
			b.Fatal("empty Fig. 2 series")
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Fig14(context.Background(), io.Discard, benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(out.Metrics.Routability*100, "routability%")
	}
}

// Ablation benches: full flow vs one mechanism disabled, per DESIGN.md.

func benchAblation(b *testing.B, opt router.Options) {
	b.Helper()
	for _, name := range smallCases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := design.GenerateDense(name)
				if err != nil {
					b.Fatal(err)
				}
				out, err := router.Route(context.Background(), d, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Metrics.Routability*100, "routability%")
				b.ReportMetric(out.Metrics.Wirelength, "wirelength_um")
				b.ReportMetric(float64(out.Metrics.DRCViolations), "drc")
			}
		})
	}
}

func BenchmarkAblationFullFlow(b *testing.B) {
	benchAblation(b, router.Options{TimeBudget: benchBudget})
}

func BenchmarkAblationCornerCapacity(b *testing.B) {
	benchAblation(b, router.Options{
		TimeBudget: benchBudget,
		Graph:      rgraph.Options{NaiveCornerCapacity: true},
	})
}

func BenchmarkAblationNetOrder(b *testing.B) {
	benchAblation(b, router.Options{
		TimeBudget: benchBudget,
		Global:     global.Options{DisableRUDYOrder: true},
	})
}

func BenchmarkAblationAPAdjust(b *testing.B) {
	benchAblation(b, router.Options{
		TimeBudget: benchBudget,
		Detail:     detail.Options{SkipAdjust: true},
	})
}

func BenchmarkAblationDiagonal(b *testing.B) {
	benchAblation(b, router.Options{
		TimeBudget: benchBudget,
		Global:     global.Options{DisableDiagonalRefinement: true},
	})
}

// BenchmarkStageBreakdown reports the per-stage wall-clock of the full
// pipeline as extra metrics (viaplan_ms, rgraph_ms, global_ms, detail_ms,
// drc_ms) next to ns/op, using the obs.Collector breakdown that RunOurs
// attaches to every run.
func BenchmarkStageBreakdown(b *testing.B) {
	for _, name := range smallCases {
		b.Run(name, func(b *testing.B) {
			stageTotals := map[string]float64{}
			for i := 0; i < b.N; i++ {
				r, err := bench.RunOurs(context.Background(), name, benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				for stage, sec := range r.StageSeconds {
					stageTotals[stage] += sec
				}
				if r.Counters["global.astar.expansions"] == 0 {
					b.Fatal("stage breakdown lost the A* expansion counter")
				}
			}
			for _, stage := range []string{"viaplan", "rgraph", "global", "detail", "drc"} {
				b.ReportMetric(stageTotals[stage]*1000/float64(b.N), stage+"_ms")
			}
		})
	}
}

// Baseline micro-benchmarks used by the runtime columns.

func BenchmarkXarchOctilinearize(b *testing.B) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		b.Fatal(err)
	}
	out, err := router.Route(context.Background(), d, router.Options{TimeBudget: benchBudget})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rt := range out.DetailResult.Routes {
			if rt == nil {
				continue
			}
			for _, s := range rt.Segs {
				xarch.Octilinearize(s.Pl)
			}
		}
	}
}

func BenchmarkAARFNoRebuild(b *testing.B) {
	// Isolates AARF*'s algorithmic behaviour from its rebuild cost model.
	d, err := design.GenerateDense("dense1")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aarf.Route(context.Background(), d, aarf.Options{SkipRebuild: true}); err != nil {
			b.Fatal(err)
		}
	}
}
