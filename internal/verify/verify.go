// Package verify is the independent result verifier: it re-checks a routed
// result against the §II-B rules and structural requirements without
// trusting any router state. Production routers ship such verifiers so a
// routing bug cannot silently sign off its own work.
//
// Checks:
//   - connectivity: every routed net's geometry runs continuously from its
//     first pin to its second, changing layers only at its recorded vias;
//   - wire-wire spacing, minimum angle, turn-to-turn distance, keep-outs
//     (delegated to the DRC in internal/detail);
//   - via-to-via spacing between different nets (w_v + w_s centre to
//     centre);
//   - via-to-wire spacing between different nets (w_v/2 + w_s + w/2);
//   - vias land strictly inside the package outline.
//
// Check fans the work out over a worker pool — per-net connectivity units,
// via-pair stripes, and the parallel DRC — and merges the findings into a
// canonical order, so any pool size produces byte-identical reports. Verify
// is the serial single-worker wrapper.
package verify

import (
	"fmt"
	"sort"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/geom"
	"rdlroute/internal/obs"
	"rdlroute/internal/pool"
)

// Problem is one verification finding.
type Problem struct {
	Kind ProblemKind
	Net  int
	// Other is the second net for spacing findings, -1 otherwise.
	Other int
	Where geom.Point
	Msg   string
}

// ProblemKind classifies verification findings.
type ProblemKind uint8

// Verification finding kinds.
const (
	// BrokenConnectivity: a route does not continuously connect its pins.
	BrokenConnectivity ProblemKind = iota
	// ViaViaSpacing: two different nets' vias closer than w_v + w_s.
	ViaViaSpacing
	// ViaWireSpacing: a net's wire closer than w_v/2 + w_s + w/2 to
	// another net's via.
	ViaWireSpacing
	// ViaPlacement: a via outside the package outline.
	ViaPlacement
	// RuleViolation wraps a DRC violation from internal/detail.
	RuleViolation
)

// Kinds lists every finding kind, in report order.
var Kinds = []ProblemKind{
	BrokenConnectivity, ViaViaSpacing, ViaWireSpacing, ViaPlacement, RuleViolation,
}

// String returns a short name for the finding kind.
func (k ProblemKind) String() string {
	switch k {
	case BrokenConnectivity:
		return "connectivity"
	case ViaViaSpacing:
		return "via-via-spacing"
	case ViaWireSpacing:
		return "via-wire-spacing"
	case ViaPlacement:
		return "via-placement"
	default:
		return "rule"
	}
}

// Report is the outcome of verification.
type Report struct {
	Problems []Problem
	// CheckedNets counts the routed nets examined.
	CheckedNets int
}

// OK reports whether verification found nothing.
func (r *Report) OK() bool { return len(r.Problems) == 0 }

// Count returns the number of findings of one kind.
func (r *Report) Count(kind ProblemKind) int {
	n := 0
	for _, p := range r.Problems {
		if p.Kind == kind {
			n++
		}
	}
	return n
}

// Counts returns the findings-by-kind totals keyed by kind name. Kinds with
// no findings are omitted.
func (r *Report) Counts() map[string]int {
	out := make(map[string]int)
	for _, p := range r.Problems {
		out[p.Kind.String()]++
	}
	return out
}

// Finding is the JSON wire shape of one problem, served by rdlserved job
// results and documented in doc/VERIFY.md.
type Finding struct {
	Kind string `json:"kind"`
	Net  int    `json:"net"`
	// Other is the second net of a spacing finding, -1 otherwise.
	Other int     `json:"other"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Msg   string  `json:"msg"`
}

// Findings returns the report's problems in wire form, in report order.
func (r *Report) Findings() []Finding {
	out := make([]Finding, len(r.Problems))
	for i, p := range r.Problems {
		out[i] = Finding{
			Kind: p.Kind.String(), Net: p.Net, Other: p.Other,
			X: p.Where.X, Y: p.Where.Y, Msg: p.Msg,
		}
	}
	return out
}

// Options tunes Check.
type Options struct {
	// Workers is the worker-pool size. Zero or negative selects GOMAXPROCS
	// capped at 8; 1 runs the units serially (the reference path the
	// differential tests compare against).
	Workers int
	// Rec receives the verifier's stage span and findings-by-kind counters.
	// Nil selects the no-op recorder.
	Rec obs.Recorder
	// DRC supplies precomputed wire-rule violations (from the pipeline's
	// own DRC pass) to wrap instead of re-running the checker. Only
	// consulted when HaveDRC is set — a nil slice with HaveDRC means "known
	// clean".
	DRC     []detail.Violation
	HaveDRC bool
}

func (o Options) workers() int { return pool.Default(o.Workers) }

// Verify re-checks the routed result against the design on a single worker.
func Verify(d *design.Design, routes []*detail.Route) *Report {
	return Check(d, routes, Options{Workers: 1})
}

// verifyChunk is the number of routes or vias per work unit; fixed so the
// unit list does not depend on the pool size.
const verifyChunk = 64

// Check re-checks the routed result against the design, fanning the
// independent checks out over a worker pool. The report is byte-identical
// for every pool size: findings are merged into a canonical sorted order.
func Check(d *design.Design, routes []*detail.Route, opt Options) *Report {
	rec := obs.Or(opt.Rec)
	workers := opt.workers()
	span := obs.StartSpan(rec, "verify")
	defer span.End()

	rep := &Report{}
	for _, rt := range routes {
		if rt != nil {
			rep.CheckedNets++
		}
	}

	// Via index, in route order (deterministic).
	var vias []viaRef
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for _, v := range rt.Vias {
			vias = append(vias, viaRef{net: rt.Net, layer: v.Layer, pos: v.Pos})
		}
	}
	// Per-layer wire view shared read-only by the via-wire units.
	layerLines := make(map[int][]detail.RouteOnLayer)
	for _, v := range vias {
		for _, layer := range []int{v.layer, v.layer + 1} {
			if _, ok := layerLines[layer]; !ok {
				layerLines[layer] = detail.SegmentsOnLayer(routes, layer)
			}
		}
	}

	var units []func() []Problem
	for lo := 0; lo < len(routes); lo += verifyChunk {
		lo, hi := lo, minInt(lo+verifyChunk, len(routes))
		units = append(units, func() []Problem {
			return connectivityUnit(d, routes, lo, hi)
		})
	}
	for lo := 0; lo < len(vias); lo += verifyChunk {
		lo, hi := lo, minInt(lo+verifyChunk, len(vias))
		units = append(units, func() []Problem {
			return viaViaUnit(d, vias, lo, hi)
		})
		units = append(units, func() []Problem {
			return viaWireUnit(d, vias, lo, hi, layerLines)
		})
	}
	rep.Problems = runUnits(units, workers)

	// Wire rules via the group- and width-aware DRC, reusing the caller's
	// violations when supplied.
	drc := opt.DRC
	if !opt.HaveDRC {
		drc = detail.CheckDRCParallel(routes, d, detail.DRCOptions{
			Workers: workers, Rec: opt.Rec,
		})
	}
	for _, violation := range drc {
		rep.Problems = append(rep.Problems, Problem{
			Kind: RuleViolation, Net: violation.NetA, Other: violation.NetB,
			Where: violation.Where, Msg: violation.String(),
		})
	}

	sortProblems(rep.Problems)
	if rec.Enabled() {
		// Counters are emitted in canonical kind order: ranging over the
		// Counts() map would emit the JSONL trace lines in randomized map
		// order (caught by the mapiter analyzer).
		for _, kind := range Kinds {
			if n := rep.Count(kind); n > 0 {
				rec.Count("verify.findings."+kind.String(), int64(n))
			}
		}
	}
	return rep
}

// connectivityUnit checks route continuity, via stitching, layer validity
// and via placement for routes[lo:hi].
func connectivityUnit(d *design.Design, routes []*detail.Route, lo, hi int) []Problem {
	var out []Problem
	add := func(p Problem) { out = append(out, p) }
	for ni := lo; ni < hi; ni++ {
		rt := routes[ni]
		if rt == nil {
			continue
		}
		if rt.Net != ni {
			add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1,
				Msg: fmt.Sprintf("route slot %d carries net %d", ni, rt.Net)})
			continue
		}
		if ni >= len(d.Nets) {
			add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1, Msg: "net not in design"})
			continue
		}
		a, b := d.PinPos(d.Nets[ni])
		if len(rt.Segs) == 0 || len(rt.Segs) != len(rt.Vias)+1 {
			add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1,
				Msg: fmt.Sprintf("%d segments with %d vias", len(rt.Segs), len(rt.Vias))})
			continue
		}
		first := rt.Segs[0].Pl
		lastPl := rt.Segs[len(rt.Segs)-1].Pl
		if len(first) < 2 || len(lastPl) < 2 {
			add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1, Msg: "degenerate segment"})
			continue
		}
		if !first[0].ApproxEq(a) {
			add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1, Where: first[0],
				Msg: fmt.Sprintf("starts at %v, pin at %v", first[0], a)})
		}
		if !lastPl[len(lastPl)-1].ApproxEq(b) {
			add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1, Where: lastPl[len(lastPl)-1],
				Msg: fmt.Sprintf("ends at %v, pin at %v", lastPl[len(lastPl)-1], b)})
		}
		// Each via joins the surrounding segments at its own position.
		for vi, v := range rt.Vias {
			prev := rt.Segs[vi].Pl
			next := rt.Segs[vi+1].Pl
			if !prev[len(prev)-1].ApproxEq(v.Pos) || !next[0].ApproxEq(v.Pos) {
				add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1, Where: v.Pos,
					Msg: fmt.Sprintf("via %d not at segment junction", vi)})
			}
			// Adjacent segments of a via must sit on adjacent layers.
			if dl := rt.Segs[vi].Layer - rt.Segs[vi+1].Layer; dl != 1 && dl != -1 {
				add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1, Where: v.Pos,
					Msg: fmt.Sprintf("via %d jumps %d layers", vi, dl)})
			}
			if !d.Outline.Contains(v.Pos) {
				add(Problem{Kind: ViaPlacement, Net: ni, Other: -1, Where: v.Pos,
					Msg: "via outside outline"})
			}
		}
		// Segments themselves are continuous polylines on valid layers.
		for si, seg := range rt.Segs {
			if seg.Layer < 0 || seg.Layer >= d.WireLayers {
				add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1,
					Msg: fmt.Sprintf("segment %d on invalid layer %d", si, seg.Layer)})
			}
		}
	}
	return out
}

// viaRef is one via flattened out of its route for the pairwise checks.
type viaRef struct {
	net   int
	layer int // via layer index: joins wire layers layer and layer+1
	pos   geom.Point
}

// viaViaUnit checks vias[lo:hi] against every later via. A via spans two
// wire layers; vias of different nets conflict when they sit on the same
// via layer closer than w_v + w_s.
func viaViaUnit(d *design.Design, vias []viaRef, lo, hi int) []Problem {
	var out []Problem
	viaClear := d.Rules.ViaWidth + d.Rules.MinSpacing
	for i := lo; i < hi; i++ {
		for j := i + 1; j < len(vias); j++ {
			if d.SameGroup(vias[i].net, vias[j].net) {
				continue
			}
			if vias[i].layer != vias[j].layer {
				continue // different via layers never touch
			}
			if dd := vias[i].pos.Dist(vias[j].pos); dd < viaClear-1e-9 {
				out = append(out, Problem{
					Kind: ViaViaSpacing, Net: vias[i].net, Other: vias[j].net,
					Where: vias[i].pos,
					Msg:   fmt.Sprintf("vias %.2f µm apart, need %.2f", dd, viaClear),
				})
			}
		}
	}
	return out
}

// viaWireUnit checks vias[lo:hi] against every other net's wires on the two
// layers each via touches.
func viaWireUnit(d *design.Design, vias []viaRef, lo, hi int,
	layerLines map[int][]detail.RouteOnLayer) []Problem {
	var out []Problem
	for _, v := range vias[lo:hi] {
		for _, layer := range []int{v.layer, v.layer + 1} {
			for _, rl := range layerLines[layer] {
				if d.SameGroup(rl.Net, v.net) {
					continue
				}
				limit := d.Rules.ViaWidth/2 + d.Rules.MinSpacing + d.WidthOf(rl.Net)/2
				dd, _ := rl.Pl.DistToPoint(v.pos)
				if dd < limit-1e-9 {
					out = append(out, Problem{
						Kind: ViaWireSpacing, Net: v.net, Other: rl.Net, Where: v.pos,
						Msg: fmt.Sprintf("wire %.2f µm from via, need %.2f", dd, limit),
					})
				}
			}
		}
	}
	return out
}

// runUnits executes the units on the shared deterministic pool and
// concatenates their outputs in unit order.
func runUnits(units []func() []Problem, workers int) []Problem {
	var out []Problem
	for _, r := range pool.Run(units, workers) {
		out = append(out, r...)
	}
	return out
}

// sortProblems puts findings into the report's canonical order: by kind,
// then nets, then position, then message — a total order over everything a
// problem carries, independent of unit boundaries and worker scheduling.
func sortProblems(ps []Problem) {
	sort.SliceStable(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		switch {
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.Net != b.Net:
			return a.Net < b.Net
		case a.Other != b.Other:
			return a.Other < b.Other
		case a.Where.X != b.Where.X:
			return a.Where.X < b.Where.X
		case a.Where.Y != b.Where.Y:
			return a.Where.Y < b.Where.Y
		default:
			return a.Msg < b.Msg
		}
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
