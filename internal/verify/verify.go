// Package verify is the independent result verifier: it re-checks a routed
// result against the §II-B rules and structural requirements without
// trusting any router state. Production routers ship such verifiers so a
// routing bug cannot silently sign off its own work.
//
// Checks:
//   - connectivity: every routed net's geometry runs continuously from its
//     first pin to its second, changing layers only at its recorded vias;
//   - wire-wire spacing, minimum angle, turn-to-turn distance, keep-outs
//     (delegated to the DRC in internal/detail);
//   - via-to-via spacing between different nets (w_v + w_s centre to
//     centre);
//   - via-to-wire spacing between different nets (w_v/2 + w_s + w/2);
//   - vias land strictly inside the package outline.
package verify

import (
	"fmt"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/geom"
)

// Problem is one verification finding.
type Problem struct {
	Kind ProblemKind
	Net  int
	// Other is the second net for spacing findings, -1 otherwise.
	Other int
	Where geom.Point
	Msg   string
}

// ProblemKind classifies verification findings.
type ProblemKind uint8

// Verification finding kinds.
const (
	// BrokenConnectivity: a route does not continuously connect its pins.
	BrokenConnectivity ProblemKind = iota
	// ViaViaSpacing: two different nets' vias closer than w_v + w_s.
	ViaViaSpacing
	// ViaWireSpacing: a net's wire closer than w_v/2 + w_s + w/2 to
	// another net's via.
	ViaWireSpacing
	// ViaPlacement: a via outside the package outline.
	ViaPlacement
	// RuleViolation wraps a DRC violation from internal/detail.
	RuleViolation
)

// String returns a short name for the finding kind.
func (k ProblemKind) String() string {
	switch k {
	case BrokenConnectivity:
		return "connectivity"
	case ViaViaSpacing:
		return "via-via-spacing"
	case ViaWireSpacing:
		return "via-wire-spacing"
	case ViaPlacement:
		return "via-placement"
	default:
		return "rule"
	}
}

// Report is the outcome of verification.
type Report struct {
	Problems []Problem
	// CheckedNets counts the routed nets examined.
	CheckedNets int
}

// OK reports whether verification found nothing.
func (r *Report) OK() bool { return len(r.Problems) == 0 }

// Count returns the number of findings of one kind.
func (r *Report) Count(kind ProblemKind) int {
	n := 0
	for _, p := range r.Problems {
		if p.Kind == kind {
			n++
		}
	}
	return n
}

// Verify re-checks the routed result against the design.
func Verify(d *design.Design, routes []*detail.Route) *Report {
	rep := &Report{}
	add := func(p Problem) { rep.Problems = append(rep.Problems, p) }

	// Connectivity and via placement.
	for ni, rt := range routes {
		if rt == nil {
			continue
		}
		rep.CheckedNets++
		if rt.Net != ni {
			add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1,
				Msg: fmt.Sprintf("route slot %d carries net %d", ni, rt.Net)})
			continue
		}
		if ni >= len(d.Nets) {
			add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1, Msg: "net not in design"})
			continue
		}
		a, b := d.PinPos(d.Nets[ni])
		if len(rt.Segs) == 0 || len(rt.Segs) != len(rt.Vias)+1 {
			add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1,
				Msg: fmt.Sprintf("%d segments with %d vias", len(rt.Segs), len(rt.Vias))})
			continue
		}
		first := rt.Segs[0].Pl
		lastPl := rt.Segs[len(rt.Segs)-1].Pl
		if len(first) < 2 || len(lastPl) < 2 {
			add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1, Msg: "degenerate segment"})
			continue
		}
		if !first[0].ApproxEq(a) {
			add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1, Where: first[0],
				Msg: fmt.Sprintf("starts at %v, pin at %v", first[0], a)})
		}
		if !lastPl[len(lastPl)-1].ApproxEq(b) {
			add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1, Where: lastPl[len(lastPl)-1],
				Msg: fmt.Sprintf("ends at %v, pin at %v", lastPl[len(lastPl)-1], b)})
		}
		// Each via joins the surrounding segments at its own position.
		for vi, v := range rt.Vias {
			prev := rt.Segs[vi].Pl
			next := rt.Segs[vi+1].Pl
			if !prev[len(prev)-1].ApproxEq(v.Pos) || !next[0].ApproxEq(v.Pos) {
				add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1, Where: v.Pos,
					Msg: fmt.Sprintf("via %d not at segment junction", vi)})
			}
			// Adjacent segments of a via must sit on adjacent layers.
			if dl := rt.Segs[vi].Layer - rt.Segs[vi+1].Layer; dl != 1 && dl != -1 {
				add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1, Where: v.Pos,
					Msg: fmt.Sprintf("via %d jumps %d layers", vi, dl)})
			}
			if !d.Outline.Contains(v.Pos) {
				add(Problem{Kind: ViaPlacement, Net: ni, Other: -1, Where: v.Pos,
					Msg: "via outside outline"})
			}
		}
		// Segments themselves are continuous polylines on valid layers.
		for si, seg := range rt.Segs {
			if seg.Layer < 0 || seg.Layer >= d.WireLayers {
				add(Problem{Kind: BrokenConnectivity, Net: ni, Other: -1,
					Msg: fmt.Sprintf("segment %d on invalid layer %d", si, seg.Layer)})
			}
		}
	}

	// Via-via spacing across different nets. A via spans two wire layers;
	// vias of different nets conflict when they overlap in any layer —
	// conservatively, when they are close at all (the via lattice makes
	// real proximity rare).
	type viaRef struct {
		net   int
		upper int
		pos   geom.Point
	}
	var vias []viaRef
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for _, v := range rt.Vias {
			vias = append(vias, viaRef{net: rt.Net, upper: v.UpperLayer, pos: v.Pos})
		}
	}
	viaClear := d.Rules.ViaWidth + d.Rules.MinSpacing
	for i := 0; i < len(vias); i++ {
		for j := i + 1; j < len(vias); j++ {
			if d.SameGroup(vias[i].net, vias[j].net) {
				continue
			}
			if vias[i].upper != vias[j].upper {
				continue // different via layers never touch
			}
			if dd := vias[i].pos.Dist(vias[j].pos); dd < viaClear-1e-9 {
				rep.Problems = append(rep.Problems, Problem{
					Kind: ViaViaSpacing, Net: vias[i].net, Other: vias[j].net,
					Where: vias[i].pos,
					Msg:   fmt.Sprintf("vias %.2f µm apart, need %.2f", dd, viaClear),
				})
			}
		}
	}

	// Via-wire spacing: every via against every other net's wires on the
	// two layers the via touches.
	for _, v := range vias {
		for _, layer := range []int{v.upper, v.upper + 1} {
			for _, rl := range detail.SegmentsOnLayer(routes, layer) {
				if d.SameGroup(rl.Net, v.net) {
					continue
				}
				limit := d.Rules.ViaWidth/2 + d.Rules.MinSpacing + d.WidthOf(rl.Net)/2
				dd, _ := rl.Pl.DistToPoint(v.pos)
				if dd < limit-1e-9 {
					rep.Problems = append(rep.Problems, Problem{
						Kind: ViaWireSpacing, Net: v.net, Other: rl.Net, Where: v.pos,
						Msg: fmt.Sprintf("wire %.2f µm from via, need %.2f", dd, limit),
					})
				}
			}
		}
	}

	// Wire rules via the group- and width-aware DRC.
	for _, violation := range detail.CheckDRCWithDesign(routes, d) {
		rep.Problems = append(rep.Problems, Problem{
			Kind: RuleViolation, Net: violation.NetA, Other: violation.NetB,
			Where: violation.Where, Msg: violation.String(),
		})
	}
	return rep
}
