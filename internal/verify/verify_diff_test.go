package verify_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/router"
	"rdlroute/internal/verify"
)

// routedRandom routes one randomized design (same spec family as the router
// fuzz tests) for the differential checks.
func routedRandom(t *testing.T, seed int64) (*design.Design, []*detail.Route) {
	t.Helper()
	spec := design.RandomSpec{
		Seed:           seed,
		Chips:          2 + int(seed%4),
		NetsPerChannel: 8 + int(seed%9),
		WireLayers:     2 + int(seed%2),
	}
	d, err := design.GenerateRandom(spec)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	out, err := router.Route(context.Background(), d, router.Options{})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return d, out.DetailResult.Routes
}

// TestVerifyDifferentialAgainstDRC fuzzes the verifier against the DRC it
// wraps: on routed random designs, the report's rule findings must mirror
// CheckDRCWithDesign exactly — same count, same violations (compared by
// their formatted messages, which carry kind, nets, layer, position and
// measured values).
func TestVerifyDifferentialAgainstDRC(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 42}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		d, routes := routedRandom(t, seed)
		drc := detail.CheckDRCWithDesign(routes, d)
		rep := verify.Check(d, routes, verify.Options{Workers: 4})

		var want []string
		for _, v := range drc {
			want = append(want, v.String())
		}
		var got []string
		for _, p := range rep.Problems {
			if p.Kind == verify.RuleViolation {
				got = append(got, p.Msg)
			}
		}
		sort.Strings(want)
		sort.Strings(got)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("seed %d: verify wraps %d rule findings, DRC reports %d:\nverify: %v\ndrc: %v",
				seed, len(got), len(want), got, want)
		}
	}
}

// TestVerifyParallelMatchesSerial is the verifier half of the tentpole's
// differential guarantee: any pool size produces a byte-identical report.
// Run under -race in the tier-2 CI job, this also proves the fan-out safe.
func TestVerifyParallelMatchesSerial(t *testing.T) {
	seeds := []int64{3, 8, 21}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		d, routes := routedRandom(t, seed)
		serial := verify.Check(d, routes, verify.Options{Workers: 1})
		for _, workers := range []int{2, 4, 8} {
			par := verify.Check(d, routes, verify.Options{Workers: workers})
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("seed %d: %d-worker report differs from serial (%d vs %d findings)",
					seed, workers, len(par.Problems), len(serial.Problems))
			}
		}
	}
}

// TestVerifyReusesSuppliedDRC checks the gate's no-double-run contract: a
// report built from precomputed DRC violations equals one that re-ran the
// checker itself.
func TestVerifyReusesSuppliedDRC(t *testing.T) {
	d, routes := routedRandom(t, 5)
	drc := detail.CheckDRCWithDesign(routes, d)
	own := verify.Check(d, routes, verify.Options{Workers: 1})
	reused := verify.Check(d, routes, verify.Options{Workers: 1, DRC: drc, HaveDRC: true})
	if !reflect.DeepEqual(own, reused) {
		t.Fatalf("report with supplied DRC differs: %d vs %d findings",
			len(reused.Problems), len(own.Problems))
	}
	// HaveDRC with a nil slice means "known clean": no rule findings.
	clean := verify.Check(d, routes, verify.Options{Workers: 1, HaveDRC: true})
	if clean.Count(verify.RuleViolation) != 0 {
		t.Error("HaveDRC with nil violations still produced rule findings")
	}
}
