// External test package: these tests route real designs through the full
// pipeline, and the router now imports verify for its sign-off gate, so an
// in-package test would be an import cycle.
package verify_test

import (
	"context"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/geom"
	"rdlroute/internal/router"
	"rdlroute/internal/verify"
)

func routedDense1(t *testing.T) (*design.Design, []*detail.Route) {
	t.Helper()
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	out, err := router.Route(context.Background(), d, router.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d, out.DetailResult.Routes
}

func TestVerifyRealResult(t *testing.T) {
	d, routes := routedDense1(t)
	rep := verify.Verify(d, routes)
	if rep.CheckedNets != len(d.Nets) {
		t.Errorf("checked %d nets, want %d", rep.CheckedNets, len(d.Nets))
	}
	// Structural classes must be clean on a real result; wire-rule
	// residuals (RuleViolation) are the known legalization residue.
	for _, kind := range []verify.ProblemKind{verify.BrokenConnectivity, verify.ViaViaSpacing, verify.ViaPlacement} {
		if n := rep.Count(kind); n != 0 {
			for _, p := range rep.Problems {
				if p.Kind == kind {
					t.Logf("%s: net %d/%d at %v: %s", kind, p.Net, p.Other, p.Where, p.Msg)
				}
			}
			t.Errorf("%s findings = %d, want 0", kind, n)
		}
	}
	// Via-wire spacing should be essentially clean too (corner discs in
	// fit routing enforce it); tolerate a tiny residue like the wire DRC.
	if n := rep.Count(verify.ViaWireSpacing); n > 5 {
		t.Errorf("via-wire findings = %d", n)
	}
	t.Logf("verification: %d findings total (%d rule residuals, %d via-wire)",
		len(rep.Problems), rep.Count(verify.RuleViolation), rep.Count(verify.ViaWireSpacing))
}

func TestVerifyDetectsPlantedProblems(t *testing.T) {
	d, routes := routedDense1(t)

	// Broken endpoint.
	broken := routes[0]
	savedPl := broken.Segs[0].Pl
	broken.Segs[0].Pl = append(geom.Polyline{geom.Pt(0, 0)}, savedPl[1:]...)
	rep := verify.Verify(d, routes)
	if rep.Count(verify.BrokenConnectivity) == 0 {
		t.Error("broken endpoint not detected")
	}
	broken.Segs[0].Pl = savedPl

	// Via-via collision: move one net's via onto another's.
	var na, nb *detail.Route
	for _, rt := range routes {
		if rt == nil || len(rt.Vias) == 0 {
			continue
		}
		if na == nil {
			na = rt
		} else if rt != na {
			nb = rt
			break
		}
	}
	if na == nil || nb == nil {
		t.Fatal("need two nets with vias")
	}
	savedVia := nb.Vias[0]
	savedSegEnd := nb.Segs[0].Pl[len(nb.Segs[0].Pl)-1]
	savedNextStart := nb.Segs[1].Pl[0]
	nb.Vias[0].Pos = na.Vias[0].Pos
	nb.Vias[0].Layer = na.Vias[0].Layer
	nb.Segs[0].Pl[len(nb.Segs[0].Pl)-1] = na.Vias[0].Pos
	nb.Segs[1].Pl[0] = na.Vias[0].Pos
	rep = verify.Verify(d, routes)
	if rep.Count(verify.ViaViaSpacing) == 0 {
		t.Error("via collision not detected")
	}
	nb.Vias[0] = savedVia
	nb.Segs[0].Pl[len(nb.Segs[0].Pl)-1] = savedSegEnd
	nb.Segs[1].Pl[0] = savedNextStart

	// Via outside the outline.
	savedVia = na.Vias[0]
	savedSegEnd = na.Segs[0].Pl[len(na.Segs[0].Pl)-1]
	savedNextStart = na.Segs[1].Pl[0]
	out := geom.Pt(d.Outline.Max.X+100, 0)
	na.Vias[0].Pos = out
	na.Segs[0].Pl[len(na.Segs[0].Pl)-1] = out
	na.Segs[1].Pl[0] = out
	rep = verify.Verify(d, routes)
	if rep.Count(verify.ViaPlacement) == 0 {
		t.Error("outside via not detected")
	}
	na.Vias[0] = savedVia
	na.Segs[0].Pl[len(na.Segs[0].Pl)-1] = savedSegEnd
	na.Segs[1].Pl[0] = savedNextStart
}

func TestVerifyViaWirePlanted(t *testing.T) {
	d, routes := routedDense1(t)
	// Drag a wire vertex of one net onto another net's via position.
	var viaOwner *detail.Route
	for _, rt := range routes {
		if rt != nil && len(rt.Vias) > 0 {
			viaOwner = rt
			break
		}
	}
	if viaOwner == nil {
		t.Fatal("no net with vias")
	}
	target := viaOwner.Vias[0]
	var other *detail.Route
	for _, rt := range routes {
		if rt == nil || rt == viaOwner {
			continue
		}
		for _, s := range rt.Segs {
			if s.Layer == target.Layer {
				other = rt
			}
		}
		if other != nil {
			break
		}
	}
	if other == nil {
		t.Skip("no other net on the via's layer")
	}
	for si := range other.Segs {
		if other.Segs[si].Layer != target.Layer {
			continue
		}
		mid := len(other.Segs[si].Pl) / 2
		saved := other.Segs[si].Pl[mid]
		other.Segs[si].Pl[mid] = target.Pos.Add(geom.Pt(1, 0))
		rep := verify.Verify(d, routes)
		other.Segs[si].Pl[mid] = saved
		if rep.Count(verify.ViaWireSpacing) == 0 {
			t.Error("via-wire encroachment not detected")
		}
		return
	}
}

func TestProblemKindStrings(t *testing.T) {
	kinds := []verify.ProblemKind{verify.BrokenConnectivity, verify.ViaViaSpacing, verify.ViaWireSpacing, verify.ViaPlacement, verify.RuleViolation}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad name %q", k, s)
		}
		seen[s] = true
	}
}

func TestReportHelpers(t *testing.T) {
	r := &verify.Report{}
	if !r.OK() {
		t.Error("empty report should be OK")
	}
	r.Problems = append(r.Problems, verify.Problem{Kind: verify.ViaViaSpacing})
	if r.OK() || r.Count(verify.ViaViaSpacing) != 1 || r.Count(verify.ViaPlacement) != 0 {
		t.Error("report helpers wrong")
	}
}
