// Package viaplan implements candidate-via planning for multi-RDL routing,
// following the via-planning step the paper adopts from Cai et al. (DAC'21):
// each via layer receives a lattice of candidate via sites (with clearance
// to pads and bump pads), and every wire layer is given the vertex set that
// the Delaunay triangulation of that layer will be built from — its pins,
// the candidate vias touching it from above and below, its bump pads, and
// uniformly spaced dummy points on the package outline that balance the
// triangulation near the boundary (after Fang et al.).
package viaplan

import (
	"fmt"
	"math"
	"math/rand"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/obs"
)

// VertexKind classifies a triangulation vertex of a wire layer.
type VertexKind int

// Triangulation vertex kinds.
const (
	// KindPin is a chip I/O pad: a net terminal on the top wire layer.
	KindPin VertexKind = iota
	// KindVia is a candidate via touching this wire layer.
	KindVia
	// KindBump is a bump pad on the bottom wire layer. Bump pads block the
	// via capacity at their location but their tile edges still carry wires.
	KindBump
	// KindDummy is a boundary dummy point inserted only to balance the
	// triangulation; it carries no via capacity.
	KindDummy
)

// String returns a short name for the vertex kind.
func (k VertexKind) String() string {
	switch k {
	case KindPin:
		return "pin"
	case KindVia:
		return "via"
	case KindBump:
		return "bump"
	default:
		return "dummy"
	}
}

// Via is one candidate via site.
type Via struct {
	ID int
	// Layer is the via layer index: via layer k connects wire layers k and
	// k+1.
	Layer int
	Pos   geom.Point
}

// Vertex is one triangulation input vertex of a wire layer.
type Vertex struct {
	Kind VertexKind
	// Ref is the pad ID (KindPin), via ID (KindVia), bump pad ID
	// (KindBump), or a per-layer dummy ordinal (KindDummy).
	Ref int
	Pos geom.Point
}

// LayerPlan is the triangulation input for one wire layer.
type LayerPlan struct {
	// Index is the wire layer index, 0 = top (pins), WireLayers-1 = bottom
	// (bumps).
	Index int
	Verts []Vertex
}

// Plan is the complete via-planning result.
type Plan struct {
	Vias   []Via
	Layers []LayerPlan
}

// Options tunes candidate-via generation.
type Options struct {
	// ViaPitch is the lattice spacing of candidate via sites in µm. Zero
	// selects a default derived from the design rules.
	ViaPitch float64
	// BoundaryStep is the spacing of outline dummy points in µm. Zero
	// selects 2× ViaPitch.
	BoundaryStep float64
	// JitterFrac randomly (but deterministically) perturbs lattice sites by
	// this fraction of the pitch, breaking the exact cocircularities of a
	// perfect lattice. Zero selects 0.15.
	JitterFrac float64
	// Seed drives the deterministic jitter.
	Seed int64
	// ViaCost biases the candidate lattice density toward the router's via
	// objective, using the flat wire encoding of rgraph.ViaCostValue: 0
	// leaves the default pitch untouched, a positive value is the explicit
	// cross-via cost (pricier vias thin the lattice), and a negative value
	// means free vias (densest lattice). Ignored when ViaPitch is set
	// explicitly.
	ViaCost float64
	// Rec receives the stage's size counters. Nil selects the no-op
	// recorder.
	Rec obs.Recorder
}

func (o Options) withDefaults(rules design.Rules) Options {
	if o.ViaPitch <= 0 {
		// Roughly 30 wire tracks between neighbouring vias: dense enough
		// for detours, sparse enough to keep the graphs small.
		o.ViaPitch = 30 * rules.Pitch()
		if o.ViaCost != 0 {
			// Scale the lattice with the via objective: free vias halve the
			// pitch, a cost of 4× the default quadruples^0.5 (doubles) it.
			// The square root keeps the via count roughly proportional to
			// 1/cost; clamp to [0.5, 2] so extreme costs cannot degenerate
			// the triangulation.
			cost := o.ViaCost
			if cost < 0 {
				cost = 0
			}
			scale := math.Sqrt(cost / (4 * rules.ViaWidth))
			if scale < 0.5 {
				scale = 0.5
			} else if scale > 2 {
				scale = 2
			}
			o.ViaPitch *= scale
		}
	}
	if o.BoundaryStep <= 0 {
		o.BoundaryStep = 2 * o.ViaPitch
	}
	if o.JitterFrac == 0 {
		o.JitterFrac = 0.15
	}
	return o
}

// Build generates the candidate vias and per-wire-layer triangulation
// vertices for the design.
func Build(d *design.Design, opt Options) (*Plan, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(d.Rules)
	p := &Plan{Layers: make([]LayerPlan, d.WireLayers)}
	for i := range p.Layers {
		p.Layers[i].Index = i
	}

	clearance := d.Rules.ViaWidth + d.Rules.MinSpacing
	//rdl:allow detrand jitter RNG is seeded from Options.Seed: identical design+options give an identical via lattice
	rng := rand.New(rand.NewSource(opt.Seed + 1))

	// One lattice per via layer. Odd layers are offset by half a pitch so
	// stacked meshes do not share degenerate geometry.
	for vl := 0; vl < d.WireLayers-1; vl++ {
		sites := latticeSites(d.Outline, opt, rng, vl)
		for _, pos := range sites {
			if tooClose(pos, d, vl, clearance) {
				continue
			}
			p.Vias = append(p.Vias, Via{ID: len(p.Vias), Layer: vl, Pos: pos})
		}
	}

	// Assemble per-layer vertex lists.
	for li := range p.Layers {
		lp := &p.Layers[li]
		if li == 0 {
			for _, pad := range d.IOPads {
				lp.Verts = append(lp.Verts, Vertex{Kind: KindPin, Ref: pad.ID, Pos: pad.Pos})
			}
		}
		if li == d.WireLayers-1 {
			for _, pad := range d.BumpPads {
				lp.Verts = append(lp.Verts, Vertex{Kind: KindBump, Ref: pad.ID, Pos: pad.Pos})
			}
		}
	}
	for _, v := range p.Vias {
		for _, li := range []int{v.Layer, v.Layer + 1} {
			p.Layers[li].Verts = append(p.Layers[li].Verts,
				Vertex{Kind: KindVia, Ref: v.ID, Pos: v.Pos})
		}
	}
	for li := range p.Layers {
		lp := &p.Layers[li]
		dummies := boundaryDummies(d.Outline, opt.BoundaryStep)
		for i, pos := range dummies {
			lp.Verts = append(lp.Verts, Vertex{Kind: KindDummy, Ref: i, Pos: pos})
		}
		if len(lp.Verts) < 3 {
			return nil, fmt.Errorf("viaplan: wire layer %d has only %d vertices", li, len(lp.Verts))
		}
	}
	if rec := obs.Or(opt.Rec); rec.Enabled() {
		rec.Count("viaplan.vias", int64(len(p.Vias)))
		var verts int64
		for _, lp := range p.Layers {
			verts += int64(len(lp.Verts))
		}
		rec.Count("viaplan.vertices", verts)
	}
	return p, nil
}

// latticeSites returns the jittered lattice positions for one via layer.
func latticeSites(outline geom.Rect, opt Options, rng *rand.Rand, viaLayer int) []geom.Point {
	margin := opt.ViaPitch / 2
	x0, y0 := outline.Min.X+margin, outline.Min.Y+margin
	x1, y1 := outline.Max.X-margin, outline.Max.Y-margin
	offset := 0.0
	if viaLayer%2 == 1 {
		offset = opt.ViaPitch / 2
	}
	var pts []geom.Point
	row := 0
	for y := y0; y <= y1; y += opt.ViaPitch {
		// Stagger alternating rows for a roughly hexagonal packing, which
		// triangulates into better-shaped tiles than a square lattice.
		rowOff := offset
		if row%2 == 1 {
			rowOff += opt.ViaPitch / 2
		}
		for x := x0 + rowOff; x <= x1; x += opt.ViaPitch {
			jx := (rng.Float64() - 0.5) * 2 * opt.JitterFrac * opt.ViaPitch
			jy := (rng.Float64() - 0.5) * 2 * opt.JitterFrac * opt.ViaPitch
			p := geom.Pt(geom.Clamp(x+jx, x0, x1), geom.Clamp(y+jy, y0, y1))
			pts = append(pts, p)
		}
		row++
	}
	return pts
}

// tooClose reports whether a candidate via position violates clearance to
// the fixed geometry relevant to its via layer: I/O pads block via layer 0
// (directly under the pins), bump pads block the bottom via layer, and
// obstacles block any via touching a blocked wire layer.
func tooClose(pos geom.Point, d *design.Design, viaLayer int, clearance float64) bool {
	if viaLayer == 0 {
		for _, pad := range d.IOPads {
			if pos.Dist(pad.Pos) < clearance {
				return true
			}
		}
	}
	if viaLayer == d.WireLayers-2 {
		for _, pad := range d.BumpPads {
			if pos.Dist(pad.Pos) < clearance {
				return true
			}
		}
	}
	// A via in via layer k touches wire layers k and k+1.
	if d.PointBlocked(pos, viaLayer, clearance) || d.PointBlocked(pos, viaLayer+1, clearance) {
		return true
	}
	return false
}

// boundaryDummies returns points spaced ~step apart along the outline
// boundary, corners included.
func boundaryDummies(outline geom.Rect, step float64) []geom.Point {
	var pts []geom.Point
	w, h := outline.W(), outline.H()
	nx := int(w/step) + 1
	ny := int(h/step) + 1
	for i := 0; i <= nx; i++ {
		x := outline.Min.X + w*float64(i)/float64(nx)
		pts = append(pts, geom.Pt(x, outline.Min.Y), geom.Pt(x, outline.Max.Y))
	}
	for i := 1; i < ny; i++ {
		y := outline.Min.Y + h*float64(i)/float64(ny)
		pts = append(pts, geom.Pt(outline.Min.X, y), geom.Pt(outline.Max.X, y))
	}
	return pts
}

// ViasOnLayer returns the candidate vias of one via layer.
func (p *Plan) ViasOnLayer(viaLayer int) []Via {
	var out []Via
	for _, v := range p.Vias {
		if v.Layer == viaLayer {
			out = append(out, v)
		}
	}
	return out
}
