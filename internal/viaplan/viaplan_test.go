package viaplan

import (
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/dt"
	"rdlroute/internal/geom"
)

func mustDesign(t *testing.T, name string) *design.Design {
	t.Helper()
	d, err := design.GenerateDense(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildDense1(t *testing.T) {
	d := mustDesign(t, "dense1")
	p, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Layers) != d.WireLayers {
		t.Fatalf("layers = %d, want %d", len(p.Layers), d.WireLayers)
	}
	if len(p.Vias) == 0 {
		t.Fatal("no candidate vias generated")
	}
	// Layer 0 contains all pins; bottom layer contains all bumps.
	pins, bumps := 0, 0
	for _, v := range p.Layers[0].Verts {
		if v.Kind == KindPin {
			pins++
		}
	}
	for _, v := range p.Layers[d.WireLayers-1].Verts {
		if v.Kind == KindBump {
			bumps++
		}
	}
	if pins != len(d.IOPads) {
		t.Errorf("layer 0 pins = %d, want %d", pins, len(d.IOPads))
	}
	if bumps != len(d.BumpPads) {
		t.Errorf("bottom layer bumps = %d, want %d", bumps, len(d.BumpPads))
	}
}

func TestViaAppearsOnBothAdjacentLayers(t *testing.T) {
	d := mustDesign(t, "dense3") // 3 wire layers, 2 via layers
	p, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	count := make(map[int]int) // via ID -> layers it appears on
	for _, lp := range p.Layers {
		for _, v := range lp.Verts {
			if v.Kind == KindVia {
				count[v.Ref]++
			}
		}
	}
	if len(count) != len(p.Vias) {
		t.Fatalf("%d vias referenced, want %d", len(count), len(p.Vias))
	}
	for id, c := range count {
		if c != 2 {
			t.Errorf("via %d appears on %d layers, want 2", id, c)
		}
	}
	// Middle wire layer (index 1) must carry vias from both via layers.
	has := map[int]bool{}
	for _, v := range p.Layers[1].Verts {
		if v.Kind == KindVia {
			has[p.Vias[v.Ref].Layer] = true
		}
	}
	if !has[0] || !has[1] {
		t.Errorf("middle layer via-layer coverage = %v, want both 0 and 1", has)
	}
}

func TestViaClearance(t *testing.T) {
	d := mustDesign(t, "dense1")
	p, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clearance := d.Rules.ViaWidth + d.Rules.MinSpacing
	for _, v := range p.Vias {
		if v.Layer == 0 {
			for _, pad := range d.IOPads {
				if v.Pos.Dist(pad.Pos) < clearance {
					t.Fatalf("via %d at %v violates pad clearance", v.ID, v.Pos)
				}
			}
		}
		if v.Layer == d.WireLayers-2 {
			for _, pad := range d.BumpPads {
				if v.Pos.Dist(pad.Pos) < clearance {
					t.Fatalf("via %d at %v violates bump clearance", v.ID, v.Pos)
				}
			}
		}
		if !d.Outline.Contains(v.Pos) {
			t.Fatalf("via %d at %v outside outline", v.ID, v.Pos)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	d := mustDesign(t, "dense2")
	p1, err := Build(d, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(d, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Vias) != len(p2.Vias) {
		t.Fatal("via counts differ")
	}
	for i := range p1.Vias {
		if p1.Vias[i] != p2.Vias[i] {
			t.Fatalf("via %d differs", i)
		}
	}
}

func TestLayersTriangulate(t *testing.T) {
	// The whole point of the plan is to feed DT; every layer must
	// triangulate cleanly.
	d := mustDesign(t, "dense1")
	p, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, lp := range p.Layers {
		pts := make([]geom.Point, len(lp.Verts))
		for i, v := range lp.Verts {
			pts[i] = v.Pos
		}
		m, err := dt.Triangulate(pts)
		if err != nil {
			t.Fatalf("layer %d: %v", lp.Index, err)
		}
		if err := m.CheckTopology(); err != nil {
			t.Fatalf("layer %d: %v", lp.Index, err)
		}
	}
}

func TestBoundaryDummies(t *testing.T) {
	pts := boundaryDummies(geom.R(0, 0, 100, 50), 25)
	if len(pts) == 0 {
		t.Fatal("no dummies")
	}
	for _, p := range pts {
		onX := geom.ApproxEq(p.X, 0) || geom.ApproxEq(p.X, 100)
		onY := geom.ApproxEq(p.Y, 0) || geom.ApproxEq(p.Y, 50)
		if !onX && !onY {
			t.Errorf("dummy %v not on boundary", p)
		}
	}
	// No duplicates.
	seen := map[geom.Point]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Errorf("duplicate dummy %v", p)
		}
		seen[p] = true
	}
}

func TestViasOnLayer(t *testing.T) {
	d := mustDesign(t, "dense3")
	p, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for vl := 0; vl < d.WireLayers-1; vl++ {
		vs := ViasOnLayer0(p, vl)
		for _, v := range vs {
			if v.Layer != vl {
				t.Errorf("via %d on wrong layer", v.ID)
			}
		}
		total += len(vs)
	}
	if total != len(p.Vias) {
		t.Errorf("per-layer sum %d != total %d", total, len(p.Vias))
	}
}

// ViasOnLayer0 wraps the method for test readability.
func ViasOnLayer0(p *Plan, vl int) []Via { return p.ViasOnLayer(vl) }

func TestOptionsDefaults(t *testing.T) {
	rules := design.DefaultRules()
	o := Options{}.withDefaults(rules)
	if o.ViaPitch <= 0 || o.BoundaryStep <= 0 || o.JitterFrac <= 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{ViaPitch: 99, BoundaryStep: 11, JitterFrac: 0.3}.withDefaults(rules)
	if o2.ViaPitch != 99 || o2.BoundaryStep != 11 || o2.JitterFrac != 0.3 {
		t.Errorf("explicit options overridden: %+v", o2)
	}
}

func TestVertexKindString(t *testing.T) {
	names := map[VertexKind]string{KindPin: "pin", KindVia: "via", KindBump: "bump", KindDummy: "dummy"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %s, want %s", k, k.String(), want)
		}
	}
}

// TestViaCostScalesLattice checks the via-objective bias on the candidate
// lattice: free vias densify it, expensive vias thin it, and an explicit
// ViaPitch disables the scaling entirely.
func TestViaCostScalesLattice(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	count := func(opt Options) int {
		p, err := Build(d, opt)
		if err != nil {
			t.Fatal(err)
		}
		return len(p.Vias)
	}
	def := count(Options{})
	free := count(Options{ViaCost: -1})
	costly := count(Options{ViaCost: 100 * d.Rules.ViaWidth})
	if free <= def {
		t.Errorf("free vias: %d candidates, want more than default %d", free, def)
	}
	if costly >= def {
		t.Errorf("costly vias: %d candidates, want fewer than default %d", costly, def)
	}
	pinned := count(Options{ViaPitch: 30 * d.Rules.Pitch(), ViaCost: -1})
	if pinned != def {
		t.Errorf("explicit ViaPitch with ViaCost: %d candidates, want default %d", pinned, def)
	}
}
