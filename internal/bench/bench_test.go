package bench

import (
	"context"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/portfolio"
)

func TestTableIOutput(t *testing.T) {
	var sb strings.Builder
	if err := TableI(&sb, Config{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"dense1", "dense5", "324", "1444", "261"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 7 { // title + header + 5 rows
		t.Errorf("Table I has %d lines, want 7", lines)
	}
}

func TestTableIUnknownCase(t *testing.T) {
	if err := TableI(io.Discard, Config{Cases: []string{"nope"}}); err == nil {
		t.Error("unknown case must error")
	}
}

func TestFig2Series(t *testing.T) {
	rules := design.DefaultRules()
	rows := Fig2(420, rules)
	if len(rows) != 19 { // 0..90 step 5
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FixedCapacity > r.AnyAngleCapacity {
			t.Errorf("theta %v: fixed %d exceeds any-angle %d",
				r.ThetaDeg, r.FixedCapacity, r.AnyAngleCapacity)
		}
		if r.Ratio < 0.9 || r.Ratio > 1.0+1e-9 {
			t.Errorf("theta %v: ratio %v outside [cos22.5°, 1]", r.ThetaDeg, r.Ratio)
		}
	}
	// X-architecture orientations lose nothing at multiples of 45°.
	for _, deg := range []int{0, 9, 18} { // indices of 0°, 45°, 90°
		if rows[deg].FixedCapacity != rows[deg].AnyAngleCapacity {
			t.Errorf("at %v° fixed capacity should equal any-angle", rows[deg].ThetaDeg)
		}
	}
	// The worst sampled angle is near 22.5° where utilization ≈ cos(22.5°).
	worst := 1.0
	for _, r := range rows {
		if r.Ratio < worst {
			worst = r.Ratio
		}
	}
	if math.Abs(worst-math.Cos(math.Pi/8)) > 0.02 {
		t.Errorf("worst ratio %v far from cos(22.5°)", worst)
	}
}

func TestPrintFig2(t *testing.T) {
	var sb strings.Builder
	PrintFig2(&sb, design.DefaultRules())
	if !strings.Contains(sb.String(), "worst-case") {
		t.Error("Fig. 2 output incomplete")
	}
}

func TestWlString(t *testing.T) {
	r := &CaseRun{Wirelength: 1234.6}
	if got := wlString(r); got != "1235" {
		t.Errorf("wlString = %q", got)
	}
	r.WirelengthLB = true
	if got := wlString(r); got != "> 1235" {
		t.Errorf("lower-bound wlString = %q", got)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean(nil); g != 1 {
		t.Errorf("empty geomean = %v", g)
	}
	if g := geomean([]float64{4, 1}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean(4,1) = %v", g)
	}
	if g := geomean([]float64{2, 2, 2}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean(2,2,2) = %v", g)
	}
}

func TestRunOursSmall(t *testing.T) {
	r, err := RunOurs(context.Background(), "dense1", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.Router != "Ours" || r.Case != "dense1" {
		t.Errorf("labels wrong: %+v", r)
	}
	if r.Routability != 100 {
		t.Errorf("routability = %v", r.Routability)
	}
	if r.TotalNets != 22 || r.RoutedNets != 22 {
		t.Errorf("net counts: %d/%d", r.RoutedNets, r.TotalNets)
	}
}

func TestTableIIShapeSmall(t *testing.T) {
	// The headline Table II shape on the smallest case: both 100% routable,
	// the traditional router strictly longer.
	var sb strings.Builder
	cmp, err := TableII(context.Background(), &sb, Config{Cases: []string{"dense1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 1 {
		t.Fatalf("rows = %d", len(cmp.Rows))
	}
	cai, ours := cmp.Rows[0][0], cmp.Rows[0][1]
	if cai.Routability != 100 || ours.Routability != 100 {
		t.Errorf("routability: cai %v ours %v", cai.Routability, ours.Routability)
	}
	if cai.Wirelength <= ours.Wirelength {
		t.Errorf("Cai WL %v not longer than ours %v", cai.Wirelength, ours.Wirelength)
	}
	if cai.Vias <= 0 || ours.Vias <= 0 {
		t.Errorf("via counts missing: cai %d ours %d", cai.Vias, ours.Vias)
	}
	if ours.ViasBeforeReassign < ours.Vias {
		t.Errorf("ViasBeforeReassign %d below Vias %d", ours.ViasBeforeReassign, ours.Vias)
	}
	out := sb.String()
	if !strings.Contains(out, "Comp.") {
		t.Error("comparison row missing")
	}
	for _, want := range []string{"V(Cai)", "V(Ours)"} {
		if !strings.Contains(out, want) {
			t.Errorf("via column %q missing:\n%s", want, out)
		}
	}
}

func TestTableIIIShapeSmall(t *testing.T) {
	var sb strings.Builder
	cmp, err := TableIII(context.Background(), &sb, Config{Cases: []string{"dense1"}})
	if err != nil {
		t.Fatal(err)
	}
	aarf, ours := cmp.Rows[0][0], cmp.Rows[0][1]
	if ours.Routability != 100 {
		t.Errorf("ours routability = %v", ours.Routability)
	}
	if aarf.Routability > ours.Routability {
		t.Errorf("AARF* routability %v beats ours %v", aarf.Routability, ours.Routability)
	}
	// The rebuild emulation makes AARF* materially slower.
	if aarf.Runtime < 2*ours.Runtime {
		t.Errorf("AARF* runtime %v not slower than ours %v", aarf.Runtime, ours.Runtime)
	}
}

func TestFig14Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("dense5 route in -short mode")
	}
	var sb strings.Builder
	out, err := Fig14(context.Background(), &sb, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Routability < 0.99 {
		t.Errorf("dense5 routability = %v", out.Metrics.Routability)
	}
	if !strings.Contains(sb.String(), "<svg") || strings.Count(sb.String(), "<polyline") < 100 {
		t.Error("Fig. 14 SVG looks empty")
	}
}

func TestAblationAPAdjustShape(t *testing.T) {
	res, err := AblationAPAdjust(context.Background(), "dense1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Full.Wirelength >= res.Reduced.Wirelength {
		t.Errorf("AP adjustment should shorten wirelength: full %v, reduced %v",
			res.Full.Wirelength, res.Reduced.Wirelength)
	}
}

func TestPrintAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	var sb strings.Builder
	if err := PrintAblations(context.Background(), &sb, "dense1"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"corner-capacity", "RUDY", "AP-adjustment", "diagonal"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestPortfolioTableSmall(t *testing.T) {
	var sb strings.Builder
	runs, err := PortfolioTable(context.Background(), &sb,
		Config{Cases: []string{"dense1"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("runs = %d", len(runs))
	}
	r := runs[0]
	if len(r.Rows) != 3 || r.Winner == "" {
		t.Fatalf("race summary wrong: %+v", r)
	}
	var rudy, winner *portfolio.Outcome
	for i := range r.Rows {
		o := &r.Rows[i]
		if o.Strategy == "rudy" {
			rudy = o
		}
		if o.Strategy == r.Winner {
			winner = o
		}
	}
	if rudy == nil || winner == nil {
		t.Fatalf("rudy or winner missing from rows: %+v", r.Rows)
	}
	// dense1's netlen order routes shorter than RUDY — the evaluation's
	// standing example of the portfolio paying for itself.
	if !winnerBeatsRudy(r, rudy) {
		t.Errorf("winner %s does not beat rudy: winner %+v rudy %+v", r.Winner, winner, rudy)
	}
	out := sb.String()
	for _, want := range []string{"Portfolio ordering race", r.Winner + "*", "beat rudy-only on 1/1 cases"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
