// Package bench is the evaluation harness: it regenerates every table and
// figure of the paper's experimental section on the synthetic dense1–dense5
// benchmark family, plus ablation studies for the design choices called out
// in DESIGN.md.
//
// Protocol notes (documented deviations from the paper):
//   - The paper caps each run at one hour on a 64-core Ryzen 3990X. The
//     synthetic designs are smaller than the originals, so the default cap
//     here is 30 s per run — the same "stop unfinished runs and report the
//     best routability so far" semantics at a scaled budget.
//   - Absolute wirelengths differ from the paper (different benchmarks);
//     the comparisons report the same ratios the paper's tables do.
package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"rdlroute/internal/aarf"
	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/obs"
	"rdlroute/internal/router"
	"rdlroute/internal/xarch"
)

// Config controls a harness run.
type Config struct {
	// Cases are the benchmark names; nil selects all of dense1–dense5.
	Cases []string
	// TimeBudget caps each individual routing run. Zero selects 30 s.
	TimeBudget time.Duration
}

func (c Config) withDefaults() Config {
	if len(c.Cases) == 0 {
		c.Cases = design.DenseNames()
	}
	if c.TimeBudget == 0 {
		c.TimeBudget = 30 * time.Second
	}
	return c
}

// CaseRun is one router's result on one benchmark, in the shape the paper's
// tables report.
type CaseRun struct {
	Case          string
	Router        string
	Routability   float64 // percent
	Wirelength    float64 // µm, lower bound when Routability < 100
	WirelengthLB  bool
	Runtime       time.Duration
	RoutedNets    int
	TotalNets     int
	DRCViolations int
	// Vias is the via count of the routed nets; ViasBeforeReassign is the
	// count before the detail stage's layer-reassignment pass (equal to
	// Vias for routers without the pass).
	Vias               int
	ViasBeforeReassign int
	TimedOut           bool
	// StageSeconds is the per-stage wall-clock breakdown (span name →
	// seconds); StageOrder lists the names in first-seen order.
	StageSeconds map[string]float64
	StageOrder   []string
	// Counters are the pipeline counters of the run (A* expansions, DP heap
	// operations, rip-ups, …).
	Counters map[string]int64
}

// RunOurs routes one benchmark with the full any-angle flow.
func RunOurs(ctx context.Context, name string, budget time.Duration) (*CaseRun, error) {
	d, err := design.GenerateDense(name)
	if err != nil {
		return nil, err
	}
	col := obs.NewCollector()
	out, err := router.Route(ctx, d, router.Options{TimeBudget: budget, Rec: col})
	if err != nil {
		return nil, err
	}
	return &CaseRun{
		StageSeconds:       col.StageSeconds(),
		StageOrder:         col.StageOrder(),
		Counters:           col.Counters(),
		Case:               name,
		Router:             "Ours",
		Routability:        out.Metrics.Routability * 100,
		Wirelength:         out.Metrics.Wirelength,
		WirelengthLB:       out.Metrics.WirelengthIsLB,
		Runtime:            out.Metrics.Runtime,
		RoutedNets:         out.Metrics.RoutedNets,
		TotalNets:          out.Metrics.TotalNets,
		DRCViolations:      out.Metrics.DRCViolations,
		Vias:               out.Metrics.Vias,
		ViasBeforeReassign: out.Metrics.ViasBeforeReassign,
		TimedOut:           out.Metrics.TimedOut,
	}, nil
}

// RunCai routes one benchmark with the traditional X-architecture baseline.
func RunCai(ctx context.Context, name string, budget time.Duration) (*CaseRun, error) {
	d, err := design.GenerateDense(name)
	if err != nil {
		return nil, err
	}
	col := obs.NewCollector()
	res, err := xarch.Route(ctx, d, xarch.Options{TimeBudget: budget, Rec: col})
	if err != nil {
		return nil, err
	}
	vs := detail.CheckDRC(res.DetailResult.Routes, d.Rules, d.WireLayers)
	return &CaseRun{
		StageSeconds:       col.StageSeconds(),
		StageOrder:         col.StageOrder(),
		Counters:           col.Counters(),
		Case:               name,
		Router:             "Cai",
		Routability:        res.Routability * 100,
		Wirelength:         res.Wirelength,
		WirelengthLB:       res.RoutedNets < len(d.Nets),
		Runtime:            res.Runtime,
		RoutedNets:         res.RoutedNets,
		TotalNets:          len(d.Nets),
		DRCViolations:      len(vs),
		Vias:               countVias(res.DetailResult.Routes),
		ViasBeforeReassign: countVias(res.DetailResult.Routes),
		TimedOut:           res.TimedOut,
	}, nil
}

// RunAARF routes one benchmark with the AARF* baseline.
func RunAARF(ctx context.Context, name string, budget time.Duration) (*CaseRun, error) {
	d, err := design.GenerateDense(name)
	if err != nil {
		return nil, err
	}
	col := obs.NewCollector()
	res, err := aarf.Route(ctx, d, aarf.Options{TimeBudget: budget, Rec: col})
	if err != nil {
		return nil, err
	}
	vs := detail.CheckDRC(res.DetailResult.Routes, d.Rules, d.WireLayers)
	return &CaseRun{
		StageSeconds:       col.StageSeconds(),
		StageOrder:         col.StageOrder(),
		Counters:           col.Counters(),
		Case:               name,
		Router:             "AARF*",
		Routability:        res.Routability * 100,
		Wirelength:         res.Wirelength,
		WirelengthLB:       res.RoutedNets < len(d.Nets),
		Runtime:            res.Runtime,
		RoutedNets:         res.RoutedNets,
		TotalNets:          len(d.Nets),
		DRCViolations:      len(vs),
		Vias:               countVias(res.DetailResult.Routes),
		ViasBeforeReassign: countVias(res.DetailResult.Routes),
		TimedOut:           res.TimedOut,
	}, nil
}

// countVias sums the vias of routed nets.
func countVias(routes []*detail.Route) int {
	n := 0
	for _, rt := range routes {
		if rt != nil {
			n += len(rt.Vias)
		}
	}
	return n
}

// wlString formats a wirelength with the paper's '>' lower-bound marker.
func wlString(r *CaseRun) string {
	if r.WirelengthLB {
		return fmt.Sprintf("> %.0f", r.Wirelength)
	}
	return fmt.Sprintf("%.0f", r.Wirelength)
}

// geomean returns the geometric-mean ratio over paired runs, the aggregate
// used by the "Comp." rows (the paper uses the arithmetic mean of ratios;
// the two agree to within a percent on these spreads and the geometric mean
// is the fairer aggregate).
func geomean(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 1
	}
	prod := 1.0
	for _, r := range ratios {
		prod *= r
	}
	return math.Pow(prod, 1/float64(len(ratios)))
}
