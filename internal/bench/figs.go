package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/router"
	"rdlroute/internal/svg"
)

// Fig2Row is one sample of the channel-utilization series behind Fig. 2 of
// the paper: a channel of width d between two vias, approached at angle
// theta. A traditional router must cross it with the nearest X-architecture
// orientation, so its effective channel length is the projection onto that
// orientation; any-angle routing crosses perpendicular to the channel and
// uses the full length.
type Fig2Row struct {
	// ThetaDeg is the channel orientation in degrees from the x-axis.
	ThetaDeg float64
	// FixedCapacity and AnyAngleCapacity are wire counts through a channel
	// of the given length at the default wire pitch.
	FixedCapacity    int
	AnyAngleCapacity int
	// Ratio is fixed/any-angle utilization.
	Ratio float64
}

// Fig2 computes the channel-utilization series: for channel orientations
// 0°–90°, the fraction of a channel's capacity a fixed-orientation router
// can use versus an any-angle router (Fig. 2's motivation, quantified).
func Fig2(channelLen float64, rules design.Rules) []Fig2Row {
	var rows []Fig2Row
	for deg := 0; deg <= 90; deg += 5 {
		theta := float64(deg) * math.Pi / 180
		// Distance (in multiples of 45°) to the nearest X-architecture
		// orientation; the worst case is 22.5°.
		delta := math.Mod(theta, math.Pi/4)
		if delta > math.Pi/8 {
			delta = math.Pi/4 - delta
		}
		eff := channelLen * math.Cos(delta)
		fixed := int(math.Floor(eff / rules.Pitch()))
		anyAngle := int(math.Floor(channelLen / rules.Pitch()))
		ratio := 1.0
		if anyAngle > 0 {
			ratio = float64(fixed) / float64(anyAngle)
		}
		rows = append(rows, Fig2Row{
			ThetaDeg:         float64(deg),
			FixedCapacity:    fixed,
			AnyAngleCapacity: anyAngle,
			Ratio:            ratio,
		})
	}
	return rows
}

// PrintFig2 renders the Fig. 2 series as text.
func PrintFig2(w io.Writer, rules design.Rules) {
	const channel = 420 // µm, the generated designs' channel width
	fmt.Fprintln(w, "Fig. 2: channel utilization, fixed-orientation vs any-angle")
	fmt.Fprintf(w, "channel length %.0f µm, wire pitch %.1f µm\n", float64(channel), rules.Pitch())
	fmt.Fprintf(w, "%8s %12s %12s %8s\n", "theta", "fixed cap", "any-angle", "ratio")
	worst := 1.0
	for _, r := range Fig2(channel, rules) {
		fmt.Fprintf(w, "%7.0f° %12d %12d %8.4f\n",
			r.ThetaDeg, r.FixedCapacity, r.AnyAngleCapacity, r.Ratio)
		if r.Ratio < worst {
			worst = r.Ratio
		}
	}
	fmt.Fprintf(w, "worst-case utilization of the fixed-orientation router: %.4f (cos 22.5° = %.4f)\n\n",
		worst, math.Cos(math.Pi/8))
}

// Fig14 routes dense5 and writes the first wire layer as SVG (Fig. 14 of
// the paper). It returns the routing metrics for the caption.
func Fig14(ctx context.Context, w io.Writer, budget time.Duration) (*router.Output, error) {
	d, err := design.GenerateDense("dense5")
	if err != nil {
		return nil, err
	}
	out, err := router.Route(ctx, d, router.Options{TimeBudget: budget})
	if err != nil {
		return nil, err
	}
	err = svg.Render(w, d, out.DetailResult.Routes, svg.Options{
		Layer:    0,
		ShowVias: true,
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
