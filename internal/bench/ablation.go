package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/global"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/router"
)

// AblationResult compares the full flow against the flow with one mechanism
// disabled, on one benchmark.
type AblationResult struct {
	Mechanism string
	Case      string
	// Full and Reduced summarize the two runs.
	Full, Reduced AblationRun
}

// AblationRun is one side of an ablation.
type AblationRun struct {
	Routability   float64
	Wirelength    float64
	DRCViolations int
	Runtime       time.Duration
	// Extra carries a mechanism-specific count (diagonal reductions,
	// adjusted partial nets, ...).
	Extra int
}

func runWith(ctx context.Context, name string, opt router.Options) (AblationRun, error) {
	d, err := design.GenerateDense(name)
	if err != nil {
		return AblationRun{}, err
	}
	out, err := router.Route(ctx, d, opt)
	if err != nil {
		return AblationRun{}, err
	}
	return AblationRun{
		Routability:   out.Metrics.Routability,
		Wirelength:    out.Metrics.Wirelength,
		DRCViolations: out.Metrics.DRCViolations,
		Runtime:       out.Metrics.Runtime,
	}, nil
}

// AblationCornerCapacity compares the Eq. 2 corner capacity model against
// the naive min-of-edge-capacities estimate of Fig. 6(a). The naive model
// over-admits wires around corners, which shows up as DRC spacing
// violations.
func AblationCornerCapacity(ctx context.Context, name string) (*AblationResult, error) {
	full, err := runWith(ctx, name, router.Options{})
	if err != nil {
		return nil, err
	}
	reduced, err := runWith(ctx, name, router.Options{Graph: rgraph.Options{NaiveCornerCapacity: true}})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Mechanism: "corner-capacity(Eq.2)", Case: name, Full: full, Reduced: reduced}, nil
}

// AblationNetOrder compares RUDY congestion-aware initial ordering against
// plain netlist order.
func AblationNetOrder(ctx context.Context, name string) (*AblationResult, error) {
	full, err := runWith(ctx, name, router.Options{})
	if err != nil {
		return nil, err
	}
	reduced, err := runWith(ctx, name, router.Options{Global: global.Options{DisableRUDYOrder: true}})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Mechanism: "RUDY-net-order", Case: name, Full: full, Reduced: reduced}, nil
}

// AblationAPAdjust compares the DP access-point adjustment against fixed
// even distribution (the wirelength mechanism of §III-B1).
func AblationAPAdjust(ctx context.Context, name string) (*AblationResult, error) {
	full, err := runWith(ctx, name, router.Options{})
	if err != nil {
		return nil, err
	}
	reduced, err := runWith(ctx, name, router.Options{Detail: detail.Options{SkipAdjust: true}})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Mechanism: "AP-adjustment(DP)", Case: name, Full: full, Reduced: reduced}, nil
}

// AblationDiagonal compares diagonal utility refinement (Eq. 3) against no
// refinement.
func AblationDiagonal(ctx context.Context, name string) (*AblationResult, error) {
	full, err := runWith(ctx, name, router.Options{})
	if err != nil {
		return nil, err
	}
	reduced, err := runWith(ctx, name, router.Options{Global: global.Options{DisableDiagonalRefinement: true}})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Mechanism: "diagonal-refinement(Eq.3)", Case: name, Full: full, Reduced: reduced}, nil
}

// PrintAblations runs all four ablations on the given case and prints them.
func PrintAblations(ctx context.Context, w io.Writer, name string) error {
	runs := []func(context.Context, string) (*AblationResult, error){
		AblationCornerCapacity, AblationNetOrder, AblationAPAdjust, AblationDiagonal,
	}
	fmt.Fprintf(w, "Ablations on %s\n", name)
	fmt.Fprintf(w, "%-26s | %11s %11s | %12s %12s | %6s %6s\n",
		"mechanism", "R%full", "R%reduced", "WLfull", "WLreduced", "DRCf", "DRCr")
	for _, run := range runs {
		res, err := run(ctx, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-26s | %11.2f %11.2f | %12.0f %12.0f | %6d %6d\n",
			res.Mechanism,
			res.Full.Routability*100, res.Reduced.Routability*100,
			res.Full.Wirelength, res.Reduced.Wirelength,
			res.Full.DRCViolations, res.Reduced.DRCViolations)
	}
	fmt.Fprintln(w)
	return nil
}
