package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"rdlroute/internal/design"
)

// TableI prints the benchmark statistics table (Table I of the paper).
func TableI(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(w, "Table I: benchmark statistics")
	fmt.Fprintf(w, "%-8s %7s %6s %6s %6s %6s\n", "Circuit", "#Chips", "|IO|", "|B|", "|N|", "|Lw|")
	for _, name := range cfg.Cases {
		d, err := design.GenerateDense(name)
		if err != nil {
			return err
		}
		s := d.Stats()
		fmt.Fprintf(w, "%-8s %7d %6d %6d %6d %6d\n",
			s.Name, s.Chips, s.IOPads, s.BumpPads, s.Nets, s.WireLayers)
	}
	return nil
}

// Comparison holds both routers' runs for one table.
type Comparison struct {
	Baseline string
	Rows     [][2]*CaseRun // [baseline, ours] per case
}

// runTable executes ours plus one baseline over all cases.
func runTable(ctx context.Context, cfg Config, baseline string,
	run func(context.Context, string, time.Duration) (*CaseRun, error)) (*Comparison, error) {
	cfg = cfg.withDefaults()
	cmp := &Comparison{Baseline: baseline}
	for _, name := range cfg.Cases {
		b, err := run(ctx, name, cfg.TimeBudget)
		if err != nil {
			return nil, fmt.Errorf("bench: %s on %s: %w", baseline, name, err)
		}
		o, err := RunOurs(ctx, name, cfg.TimeBudget)
		if err != nil {
			return nil, fmt.Errorf("bench: ours on %s: %w", name, err)
		}
		cmp.Rows = append(cmp.Rows, [2]*CaseRun{b, o})
	}
	return cmp, nil
}

// TableII runs and prints the comparison against the traditional RDL router
// (Table II of the paper).
func TableII(ctx context.Context, w io.Writer, cfg Config) (*Comparison, error) {
	cmp, err := runTable(ctx, cfg, "Cai", RunCai)
	if err != nil {
		return nil, err
	}
	printComparison(w, "Table II: comparison with a traditional RDL router", cmp)
	return cmp, nil
}

// TableIII runs and prints the comparison against the AARF* any-angle
// baseline (Table III of the paper).
func TableIII(ctx context.Context, w io.Writer, cfg Config) (*Comparison, error) {
	cmp, err := runTable(ctx, cfg, "AARF*", RunAARF)
	if err != nil {
		return nil, err
	}
	printComparison(w, "Table III: comparison with the re-implemented any-angle router", cmp)
	return cmp, nil
}

// printComparison renders a Comparison in the paper's row format.
func printComparison(w io.Writer, title string, cmp *Comparison) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-8s | %-9s %-9s | %-12s %-12s | %-8s %-8s | %-10s %-10s\n",
		"Case",
		"R%("+cmp.Baseline+")", "R%(Ours)",
		"WL("+cmp.Baseline+")", "WL(Ours)",
		"V("+cmp.Baseline+")", "V(Ours)",
		"T("+cmp.Baseline+")", "T(Ours)")
	var wlRatios, rtRatios, routRatios []float64
	for _, row := range cmp.Rows {
		b, o := row[0], row[1]
		fmt.Fprintf(w, "%-8s | %9.2f %9.2f | %12s %12s | %8d %8d | %10.3f %10.3f\n",
			b.Case, b.Routability, o.Routability,
			wlString(b), wlString(o),
			b.Vias, o.Vias,
			b.Runtime.Seconds(), o.Runtime.Seconds())
		if !b.WirelengthLB && !o.WirelengthLB && o.Wirelength > 0 {
			wlRatios = append(wlRatios, b.Wirelength/o.Wirelength)
		}
		if o.Runtime > 0 {
			rtRatios = append(rtRatios, b.Runtime.Seconds()/o.Runtime.Seconds())
		}
		if o.Routability > 0 {
			routRatios = append(routRatios, b.Routability/o.Routability)
		}
	}
	fmt.Fprintf(w, "%-8s | %9.5f %9d | %12.3f %12d | %10.2f %10d\n",
		"Comp.", geomean(routRatios), 1, geomean(wlRatios), 1, geomean(rtRatios), 1)
	for _, row := range cmp.Rows {
		printStageBreakdown(w, row[1])
	}
	fmt.Fprintln(w)
}

// topStages are the pipeline's top-level span names, in pipeline order.
var topStages = []string{"viaplan", "rgraph", "global", "detail", "drc"}

// printStageBreakdown prints one compact per-stage runtime line for a run
// that carries a Collector breakdown (sub-spans are skipped).
func printStageBreakdown(w io.Writer, r *CaseRun) {
	if len(r.StageSeconds) == 0 {
		return
	}
	fmt.Fprintf(w, "  stages(%s, %s):", r.Router, r.Case)
	for _, name := range topStages {
		if sec, ok := r.StageSeconds[name]; ok {
			fmt.Fprintf(w, " %s=%.3fs", name, sec)
		}
	}
	fmt.Fprintln(w)
}
