package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/portfolio"
	"rdlroute/internal/router"
)

// PortfolioRun is one benchmark's ordering-portfolio race: the per-strategy
// attempt scores in canonical strategy order plus the declared winner.
type PortfolioRun struct {
	Case       string
	Strategies []string
	Winner     string
	Rows       []portfolio.Outcome
	Runtime    time.Duration
}

// RunPortfolio races the named ordering strategies on one benchmark and
// returns the attempt table. An empty strategy list selects the canonical
// K=3 portfolio (rudy, netlen, congestion).
func RunPortfolio(ctx context.Context, name string, budget time.Duration, strategies []string) (*PortfolioRun, error) {
	if len(strategies) == 0 {
		strategies = []string{"rudy", "netlen", "congestion"}
	}
	d, err := design.GenerateDense(name)
	if err != nil {
		return nil, err
	}
	out, err := router.Route(ctx, d, router.Options{TimeBudget: budget, Portfolio: strategies})
	if err != nil {
		return nil, err
	}
	return &PortfolioRun{
		Case:       name,
		Strategies: strategies,
		Winner:     out.Metrics.PortfolioWinner,
		Rows:       out.Portfolio,
		Runtime:    out.Metrics.Runtime,
	}, nil
}

// PortfolioTable runs the ordering-portfolio race over the configured cases
// and prints one row per strategy: routability, wirelength, via count and
// the wirelength delta against the paper's RUDY baseline, with the winner
// starred. It reports how often the race beat RUDY-only, the evidence the
// evaluation keeps for the portfolio subsystem.
func PortfolioTable(ctx context.Context, w io.Writer, cfg Config, strategies []string) ([]*PortfolioRun, error) {
	cfg = cfg.withDefaults()
	var runs []*PortfolioRun
	for _, name := range cfg.Cases {
		r, err := RunPortfolio(ctx, name, cfg.TimeBudget, strategies)
		if err != nil {
			return nil, fmt.Errorf("bench: portfolio on %s: %w", name, err)
		}
		runs = append(runs, r)
	}
	if len(runs) == 0 {
		return runs, nil
	}
	fmt.Fprintf(w, "Portfolio ordering race (strategies: %s)\n",
		strings.Join(runs[0].Strategies, ","))
	fmt.Fprintf(w, "%-8s %-12s %8s %12s %6s %12s\n",
		"Case", "Strategy", "R%", "WL(µm)", "Vias", "ΔWL vs rudy")
	beats := 0
	for _, r := range runs {
		var rudy *portfolio.Outcome
		for i := range r.Rows {
			if r.Rows[i].Strategy == "rudy" {
				rudy = &r.Rows[i]
			}
		}
		for _, o := range r.Rows {
			name := o.Strategy
			if o.Strategy == r.Winner {
				name += "*"
			}
			if !o.OK {
				fmt.Fprintf(w, "%-8s %-12s failed: %v\n", r.Case, name, o.Err)
				continue
			}
			delta := "—"
			if rudy != nil && rudy.OK {
				delta = fmt.Sprintf("%+.0f", o.Wirelength-rudy.Wirelength)
			}
			fmt.Fprintf(w, "%-8s %-12s %8.2f %12.0f %6d %12s\n",
				r.Case, name, o.Routability*100, o.Wirelength, o.Vias, delta)
		}
		if rudy != nil && winnerBeatsRudy(r, rudy) {
			beats++
		}
	}
	fmt.Fprintf(w, "portfolio beat rudy-only on %d/%d cases\n\n", beats, len(runs))
	return runs, nil
}

// winnerBeatsRudy reports whether the race's winner strictly improved on
// the RUDY attempt under the canonical objective (routability, then
// wirelength).
func winnerBeatsRudy(r *PortfolioRun, rudy *portfolio.Outcome) bool {
	for _, o := range r.Rows {
		if o.Strategy != r.Winner {
			continue
		}
		return o.OK && (o.Routability > rudy.Routability ||
			(o.Routability == rudy.Routability && o.Wirelength < rudy.Wirelength))
	}
	return false
}
