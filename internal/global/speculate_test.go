package global

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// fingerprintGlobal renders a global-routing result — every guide's node
// and link path, the failure list, and the round/rip-up/expansion ledger —
// into one string, so two results compare byte-for-byte.
func fingerprintGlobal(res *Result) string {
	var b strings.Builder
	for net, g := range res.Guides {
		if g == nil {
			fmt.Fprintf(&b, "%d:nil\n", net)
			continue
		}
		fmt.Fprintf(&b, "%d:%v|%v\n", net, g.Nodes, g.Links)
	}
	fmt.Fprintf(&b, "failed:%v rounds:%d ripups:%d kept:%d diag:%d exp:%d\n",
		res.FailedNets, res.OrderRounds, res.RipUps, res.KeptGuides,
		res.DiagonalReductions, res.Expansions)
	return b.String()
}

// compareGlobalParallelism routes the design at Parallelism 1, 2, 4 and 8
// and demands byte-identical results: the speculative driver must reproduce
// the serial reference exactly, including the failure bookkeeping and the
// expansion counters credited to the committed result.
func compareGlobalParallelism(t *testing.T, d *design.Design) {
	t.Helper()
	plan, err := viaplan.Build(d, viaplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rgraph.Build(d, plan, rgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}

	serialRouter := New(g, Options{Parallelism: 1})
	serial, err := serialRouter.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if serial.SpeculationHits != 0 || serial.SpeculationMisses != 0 {
		t.Fatalf("serial run reported speculation: hits=%d misses=%d",
			serial.SpeculationHits, serial.SpeculationMisses)
	}
	ref := fingerprintGlobal(serial)

	for _, workers := range []int{2, 4, 8} {
		r := New(g, Options{Parallelism: workers})
		res, err := r.Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism=%d: %v", workers, err)
		}
		if got := fingerprintGlobal(res); got != ref {
			t.Fatalf("parallelism=%d: result not byte-identical to serial\nserial:\n%s\nparallel:\n%s",
				workers, ref, got)
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("parallelism=%d: %v", workers, err)
		}
	}
}

func TestGlobalParallelismMatchesSerialDense(t *testing.T) {
	for _, name := range design.DenseNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := design.GenerateDense(name)
			if err != nil {
				t.Fatal(err)
			}
			compareGlobalParallelism(t, d)
		})
	}
}

func TestGlobalParallelismMatchesSerialRandom(t *testing.T) {
	for _, spec := range []design.RandomSpec{
		{Seed: 1},
		{Seed: 7, Chips: 4, NetsPerChannel: 20},
		{Seed: 42, Chips: 5, NetsPerChannel: 16, WireLayers: 3},
	} {
		spec := spec
		t.Run(fmt.Sprintf("seed%d", spec.Seed), func(t *testing.T) {
			d, err := design.GenerateRandom(spec)
			if err != nil {
				t.Fatal(err)
			}
			compareGlobalParallelism(t, d)
		})
	}
}

// TestGlobalParallelismMergedDense exercises the speculative path on the
// congested merged design that drives the incremental rip-up tests: rounds
// with failures, blocked-set folding and incremental rip-up must all stay
// byte-identical across pool sizes.
func TestGlobalParallelismMergedDense(t *testing.T) {
	d := mergeSideBySide(t, "dense2", "dense1", 400)
	plan, err := viaplan.Build(d, viaplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rgraph.Build(d, plan, rgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serialRouter := New(g, Options{Parallelism: 1, EdgeUsePerNet: 2})
	serial, err := serialRouter.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ref := fingerprintGlobal(serial)
	for _, workers := range []int{2, 4, 8} {
		r := New(g, Options{Parallelism: workers, EdgeUsePerNet: 2})
		res, err := r.Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism=%d: %v", workers, err)
		}
		if got := fingerprintGlobal(res); got != ref {
			t.Fatalf("parallelism=%d: result not byte-identical to serial", workers)
		}
	}
}

// TestSpeculationLedger checks the speculative counters are consistent: a
// parallel run on a routable design reports hits, and hits + misses covers
// every net the driver speculated on.
func TestSpeculationLedger(t *testing.T) {
	r := buildRouter(t, "dense3", rgraph.Options{}, Options{Parallelism: 4})
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeculationHits == 0 {
		t.Fatal("parallel run on dense3 reported zero speculation hits")
	}
	if res.SpeculationMisses == 0 && res.WastedExpansions != 0 {
		t.Fatalf("wasted expansions %d without misses", res.WastedExpansions)
	}
	if res.WastedExpansions < 0 || res.SpeculationMisses < 0 {
		t.Fatalf("negative speculation counters: %+v", res)
	}
}
