package global

import (
	"context"
	"testing"

	"rdlroute/internal/geom"
	"rdlroute/internal/rgraph"
)

// TestGuideChordsGeometricallyDisjoint validates the topological
// net-sequence machinery against brute-force geometry: when every edge
// node's crossings are placed at their sequence positions, the straight
// chords of different nets through any tile must not properly intersect.
// This is the property the interleaving checks are supposed to guarantee.
func TestGuideChordsGeometricallyDisjoint(t *testing.T) {
	for _, name := range []string{"dense1", "dense2"} {
		r := buildRouter(t, name, rgraph.Options{}, Options{})
		res, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// Position of a net's crossing on an edge node, derived from its
		// sequence index exactly like the detailed router's initial
		// distribution.
		posOn := func(id rgraph.NodeID, net int) (geom.Point, bool) {
			seq := r.Sequences(id)
			for i, n := range seq {
				if n == net {
					node := r.G.Node(id)
					tt := float64(i+1) / float64(len(seq)+1)
					return node.EndA.Lerp(node.EndB, tt), true
				}
			}
			return geom.Point{}, false
		}
		// Build per-tile chords.
		type chord struct {
			net int
			seg geom.Segment
		}
		tiles := make(map[tileKey][]chord)
		for ni, g := range res.Guides {
			if g == nil {
				continue
			}
			for i, l := range g.Links {
				link := r.G.Link(l)
				if link.Kind == rgraph.CrossVia {
					continue
				}
				var a, b geom.Point
				ok := true
				for j, id := range []rgraph.NodeID{g.Nodes[i], g.Nodes[i+1]} {
					n := r.G.Node(id)
					var p geom.Point
					if n.Kind == rgraph.ViaNode {
						p = n.Pos
					} else {
						var found bool
						p, found = posOn(id, ni)
						if !found {
							ok = false
						}
					}
					if j == 0 {
						a = p
					} else {
						b = p
					}
				}
				if !ok {
					t.Fatalf("net %d missing from a sequence", ni)
				}
				key := tileKey{link.Layer, link.Tile}
				tiles[key] = append(tiles[key], chord{net: ni, seg: geom.Seg(a, b)})
			}
		}
		crossings := 0
		for key, cs := range tiles {
			for i := 0; i < len(cs); i++ {
				for j := i + 1; j < len(cs); j++ {
					if cs[i].net == cs[j].net {
						continue
					}
					if cs[i].seg.ProperlyIntersects(cs[j].seg) {
						crossings++
						if crossings <= 3 {
							t.Errorf("%s tile %v: nets %d and %d chords cross: %v x %v",
								name, key, cs[i].net, cs[j].net, cs[i].seg, cs[j].seg)
						}
					}
				}
			}
		}
		if crossings > 0 {
			t.Fatalf("%s: %d geometric chord crossings", name, crossings)
		}
	}
}
