package global

import (
	"context"
	"math"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// totalGuideLength sums the nominal lengths of all committed guides.
func totalGuideLength(r *Router, res *Result) float64 {
	var sum float64
	for _, g := range res.Guides {
		if g != nil {
			sum += r.GuideLength(g)
		}
	}
	return sum
}

// TestIncrementalMatchesFullRipUp routes every dense benchmark twice — once
// with the default incremental rip-up and once with FullRipUp — and demands
// identical routability and total guide wirelength. dense2 and dense5 need
// multiple order rounds, so their equality genuinely exercises the dirty-set
// pruning; the single-round cases pin the trivial path.
func TestIncrementalMatchesFullRipUp(t *testing.T) {
	for _, name := range []string{"dense1", "dense2", "dense3", "dense4", "dense5"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			inc := buildRouter(t, name, rgraph.Options{}, Options{})
			incRes, err := inc.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			full := buildRouter(t, name, rgraph.Options{}, Options{FullRipUp: true})
			fullRes, err := full.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if ir, fr := incRes.Routability(), fullRes.Routability(); ir != fr {
				t.Fatalf("routability: incremental %v, full %v", ir, fr)
			}
			il, fl := totalGuideLength(inc, incRes), totalGuideLength(full, fullRes)
			if math.Abs(il-fl) > 1e-9*math.Max(1, fl) {
				t.Fatalf("wirelength: incremental %v, full %v", il, fl)
			}
			if fullRes.KeptGuides != 0 {
				t.Fatalf("full rip-up kept %d guides, want 0", fullRes.KeptGuides)
			}
			if incRes.RipUps > fullRes.RipUps {
				t.Fatalf("incremental ripped %d > full %d", incRes.RipUps, fullRes.RipUps)
			}
			if err := inc.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// mergeSideBySide places design b to the right of design a with a free-space
// gap between them, renumbering b's chips, pads and nets. The two halves
// share no routing resources, so they form independent congestion clusters
// inside one package.
func mergeSideBySide(t *testing.T, aName, bName string, gap float64) *design.Design {
	t.Helper()
	a, err := design.GenerateDense(aName)
	if err != nil {
		t.Fatal(err)
	}
	b, err := design.GenerateDense(bName)
	if err != nil {
		t.Fatal(err)
	}
	if a.WireLayers != b.WireLayers {
		t.Fatalf("wire layer mismatch: %d vs %d", a.WireLayers, b.WireLayers)
	}
	if len(a.Obstacles) != 0 || len(b.Obstacles) != 0 {
		t.Fatal("merge helper does not translate obstacles")
	}
	dx := a.Outline.Max.X - b.Outline.Min.X + gap
	m := &design.Design{
		Name:       aName + "+" + bName,
		Rules:      a.Rules,
		WireLayers: a.WireLayers,
		Outline: geom.R(a.Outline.Min.X, math.Min(a.Outline.Min.Y, b.Outline.Min.Y),
			b.Outline.Max.X+dx, math.Max(a.Outline.Max.Y, b.Outline.Max.Y)),
	}
	m.Chips = append(m.Chips, a.Chips...)
	m.IOPads = append(m.IOPads, a.IOPads...)
	m.BumpPads = append(m.BumpPads, a.BumpPads...)
	m.Nets = append(m.Nets, a.Nets...)
	maxGroup := 0
	for _, n := range a.Nets {
		if n.Group > maxGroup {
			maxGroup = n.Group
		}
	}
	for _, c := range b.Chips {
		c.Name = "b_" + c.Name
		c.Outline = geom.R(c.Outline.Min.X+dx, c.Outline.Min.Y, c.Outline.Max.X+dx, c.Outline.Max.Y)
		m.Chips = append(m.Chips, c)
	}
	for _, p := range b.IOPads {
		p.ID += len(a.IOPads)
		if p.Net >= 0 {
			p.Net += len(a.Nets)
		}
		if p.Chip >= 0 {
			p.Chip += len(a.Chips)
		}
		p.Pos.X += dx
		m.IOPads = append(m.IOPads, p)
	}
	for _, p := range b.BumpPads {
		p.ID += len(a.BumpPads)
		if p.Net >= 0 {
			p.Net += len(a.Nets)
		}
		p.Pos.X += dx
		m.BumpPads = append(m.BumpPads, p)
	}
	for _, n := range b.Nets {
		n.ID += len(a.Nets)
		n.Name = "b_" + n.Name
		n.Pins[0] += len(a.IOPads)
		n.Pins[1] += len(a.IOPads)
		if n.Group != 0 {
			n.Group += maxGroup
		}
		m.Nets = append(m.Nets, n)
	}
	return m
}

// buildRouterFor assembles the stack for an explicit design.
func buildRouterFor(t testing.TB, d *design.Design, opt Options) *Router {
	t.Helper()
	plan, err := viaplan.Build(d, viaplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rgraph.Build(d, plan, rgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return New(g, opt)
}

// TestIncrementalKeepsGuidesAcrossClusters asserts the dirty-closure pruning
// does real work when congestion is localized: dense2 beside dense1 forms
// two resource-disjoint clusters, dense2's cluster needs rip-up rounds, and
// dense1's guides must survive the boundary untouched — with identical
// routability and wirelength to the full-rip-up ablation, and consistent
// router state after every round.
func TestIncrementalKeepsGuidesAcrossClusters(t *testing.T) {
	// EdgeUsePerNet 2 halves the effective edge capacity, forcing rip-up
	// rounds in the congested dense2 half without touching the topology.
	d := mergeSideBySide(t, "dense2", "dense1", 600)
	var r *Router
	rounds := 0
	r = buildRouterFor(t, d, Options{
		EdgeUsePerNet: 2,
		AfterRound: func(round int) {
			rounds++
			if err := r.CheckInvariants(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		},
	})
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rounds != res.OrderRounds {
		t.Fatalf("AfterRound ran %d times, OrderRounds = %d", rounds, res.OrderRounds)
	}
	if res.OrderRounds < 2 {
		t.Skip("merged design resolved in one round; nothing to prune")
	}
	if res.KeptGuides == 0 {
		t.Fatalf("multi-round run (%d rounds, %d rip-ups) kept no guides",
			res.OrderRounds, res.RipUps)
	}

	full := buildRouterFor(t, d, Options{EdgeUsePerNet: 2, FullRipUp: true})
	fullRes, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ir, fr := res.Routability(), fullRes.Routability(); ir != fr {
		t.Fatalf("routability: incremental %v, full %v", ir, fr)
	}
	il, fl := totalGuideLength(r, res), totalGuideLength(full, fullRes)
	if math.Abs(il-fl) > 1e-9*math.Max(1, fl) {
		t.Fatalf("wirelength: incremental %v, full %v", il, fl)
	}
	t.Logf("rounds=%d ripups=%d kept=%d (full ripups=%d)",
		res.OrderRounds, res.RipUps, res.KeptGuides, fullRes.RipUps)
}

// TestFullRipUpInvariantsPerRound runs the ablation mode with the same
// per-round invariant assertion.
func TestFullRipUpInvariantsPerRound(t *testing.T) {
	var r *Router
	r = buildRouter(t, "dense2", rgraph.Options{}, Options{
		FullRipUp: true,
		AfterRound: func(round int) {
			if err := r.CheckInvariants(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		},
	})
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRouteSearchDoesNotAllocate pins the zero-allocation property of the
// A* hot path: after a warm-up run that sizes the scratch buffers, routing a
// net and ripping it back up must stay allocation-free except for the
// returned guide itself (its node and link slices). The bound of 4 covers
// guide + nodes + links + the passages map append slack.
func TestRouteSearchDoesNotAllocate(t *testing.T) {
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{})
	net := r.G.Design.Nets[0]
	// Warm-up: grows arena, heap and gap buffers to steady state.
	g, err := r.route(r.scr, net)
	if err != nil {
		t.Fatal(err)
	}
	r.commit(g)
	r.ripUp(r.guides[g.net])

	allocs := testing.AllocsPerRun(50, func() {
		g, err := r.route(r.scr, net)
		if err != nil {
			t.Fatal(err)
		}
		r.commit(g)
		r.ripUp(r.guides[g.net])
	})
	if allocs > 4 {
		t.Fatalf("route+commit+ripUp allocated %.1f allocs/run, want <= 4", allocs)
	}
}
