package global

import (
	"context"

	"rdlroute/internal/obs"
	"rdlroute/internal/rgraph"
)

// Diagonal utility refinement (§III-A3b, Eq. 3).
//
// The number of guides squeezing between vias v_i and v_j — where tiles
// κ(k,l,i) and κ(k,l,j) share edge (k,l) — is bounded by d(v_i, v_j)
// measured in wire pitches. Guides contributing to that squeeze are: those
// crossing edge (k,l) itself (Υ_{k,l} = the edge node's usage) and those
// wrapping corner i of tile (k,l,i) or corner j of tile (k,l,j) (the
// cross-tile link usages U_{(k,l),i} and U_{(k,l),j}). When
//
//	(U_{(k,l),i} + U_{(k,l),j} + Υ_{k,l} + 1) · (w_w + w_s) ≥ d(v_i, v_j)
//
// the red-route situation of Fig. 9(a) exists even though neither Eq. 1 nor
// Eq. 2 capacity is violated. The fix reduces the edge node's capacity and
// reroutes the nets crossing it until no violation remains.

// maxDiagonalRounds bounds the refinement loop; each round strictly reduces
// some edge-node capacity so termination is guaranteed anyway, but designs
// with thousands of violations should not stall the router.
const maxDiagonalRounds = 200

// refineDiagonal runs the refinement loop and returns the number of
// capacity reductions performed. Cancelling ctx stops the loop between
// rounds, keeping the reductions applied so far.
func (r *Router) refineDiagonal(ctx context.Context) int {
	reductions := 0
	// The clean-edge cache assumes every usage change since an edge was
	// proven clean went through commit/ripUp stamping. That holds inside
	// this loop, but not necessarily for whatever ran before the call, so
	// start from a cold cache: iteration 1 scans everything once and the
	// remaining iterations — the expensive part on violation-heavy designs —
	// rescan only what their reroutes touched.
	for i := range r.diagCheckedAt {
		r.diagCheckedAt[i] = 0
	}
	for round := 0; round < maxDiagonalRounds; round++ {
		if obs.Stopped(ctx) {
			return reductions
		}
		e := r.findDiagonalViolation()
		if e == rgraph.Invalid {
			return reductions
		}
		// Reduce the edge node's capacity below its current usage so the
		// reroute must move at least one net off it.
		newCap := r.nodeUse[e] - 1
		if newCap < 0 {
			newCap = 0
		}
		r.capOverride[e] = newCap
		reductions++

		// Rip up and reroute every net currently crossing the edge node.
		var victims []int
		for ni, g := range r.guides {
			if g == nil {
				continue
			}
			for _, id := range g.Nodes {
				if id == e {
					victims = append(victims, ni)
					break
				}
			}
		}
		for _, ni := range victims {
			r.ripUp(r.guides[ni])
		}
		for _, ni := range victims {
			sr, err := r.route(r.scr, r.G.Design.Nets[ni])
			r.expansions += r.scr.expansions
			r.heapPushes += r.scr.heapPushes
			if err != nil {
				continue // stays unrouted; reported by the caller
			}
			r.commit(sr)
		}
	}
	return reductions
}

// findDiagonalViolation scans all interior edge nodes and returns the first
// violating Eq. 3, or Invalid.
//
// The scan is incremental across refinement iterations: the Eq. 3 predicate
// of an edge depends only on its edge node's usage and its two wrapping
// cross-tile link usages, all of which are stamped with the change clock on
// every commit and rip-up. An edge proven clean at clock t stays clean until
// one of those three stamps moves past t, so each iteration after the first
// re-evaluates only the edges the previous reroutes actually touched.
func (r *Router) findDiagonalViolation() rgraph.NodeID {
	pitch := r.G.Design.Rules.Pitch()
	now := r.clock
	for li := range r.G.Layers {
		lg := &r.G.Layers[li]
		for _, e := range lg.Mesh.Edges() {
			tris, ok := lg.Mesh.EdgeTriangles(e)
			if !ok || tris[1] == -1 {
				continue // hull edge: only one tile, no diagonal
			}
			en := lg.EdgeNode[e]
			vi, okI := lg.Mesh.OppositeVertex(tris[0], e)
			vj, okJ := lg.Mesh.OppositeVertex(tris[1], e)
			if !okI || !okJ {
				continue
			}
			l1 := r.cornerLink(li, tris[0], vi)
			l2 := r.cornerLink(li, tris[1], vj)
			if chk := r.diagCheckedAt[en]; chk > 0 && r.nodeStamp[en] <= chk &&
				(l1 == -1 || r.linkStamp[l1] <= chk) &&
				(l2 == -1 || r.linkStamp[l2] <= chk) {
				continue // unchanged since last proven clean
			}
			u1, u2 := 0, 0
			if l1 != -1 {
				u1 = r.linkUse[l1]
			}
			if l2 != -1 {
				u2 = r.linkUse[l2]
			}
			upsilon := r.nodeUse[en]
			if upsilon == 0 && u1 == 0 && u2 == 0 {
				r.diagCheckedAt[en] = now
				continue
			}
			d := lg.Mesh.Points[vi].Dist(lg.Mesh.Points[vj])
			if float64(u1+u2+upsilon+1)*pitch >= d {
				return en
			}
			r.diagCheckedAt[en] = now
		}
	}
	return rgraph.Invalid
}

// cornerLink returns the cross-tile link wrapping mesh vertex v in triangle
// tri of layer li, or -1.
func (r *Router) cornerLink(li, tri, v int) int {
	tile := r.G.TileOf(li, tri)
	ord := vertexOrdinal(tile, v)
	if ord == -1 {
		return -1
	}
	return tile.CrossLinks[ord]
}

// cornerUse returns the usage of the cross-tile link wrapping mesh vertex v
// in triangle tri of layer li.
func (r *Router) cornerUse(li, tri, v int) int {
	if l := r.cornerLink(li, tri, v); l != -1 {
		return r.linkUse[l]
	}
	return 0
}

// DiagonalViolations counts current Eq. 3 violations; exported for tests and
// the ablation bench.
func (r *Router) DiagonalViolations() int {
	count := 0
	pitch := r.G.Design.Rules.Pitch()
	for li := range r.G.Layers {
		lg := &r.G.Layers[li]
		for _, e := range lg.Mesh.Edges() {
			tris, ok := lg.Mesh.EdgeTriangles(e)
			if !ok || tris[1] == -1 {
				continue
			}
			en := lg.EdgeNode[e]
			vi, okI := lg.Mesh.OppositeVertex(tris[0], e)
			vj, okJ := lg.Mesh.OppositeVertex(tris[1], e)
			if !okI || !okJ {
				continue
			}
			u1 := r.cornerUse(li, tris[0], vi)
			u2 := r.cornerUse(li, tris[1], vj)
			upsilon := r.nodeUse[en]
			if upsilon == 0 && u1 == 0 && u2 == 0 {
				continue
			}
			d := lg.Mesh.Points[vi].Dist(lg.Mesh.Points[vj])
			if float64(u1+u2+upsilon+1)*pitch >= d {
				count++
			}
		}
	}
	return count
}
