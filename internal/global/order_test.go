package global

import (
	"context"
	"reflect"
	"testing"

	"rdlroute/internal/portfolio"
	"rdlroute/internal/rgraph"
)

func TestReorderByFailuresStable(t *testing.T) {
	// Nets 1, 3, 4 tie at one failure; 0 and 2 tie at zero. Each tie group
	// must keep its prior relative order while the groups themselves swap.
	order := []int{0, 1, 2, 3, 4}
	failCount := []int{0, 1, 0, 1, 1}
	reorderByFailures(order, failCount)
	if want := []int{1, 3, 4, 0, 2}; !reflect.DeepEqual(order, want) {
		t.Fatalf("reorderByFailures = %v, want %v (stable ties)", order, want)
	}
	// Idempotent: a second adjustment with unchanged counts is a no-op.
	reorderByFailures(order, failCount)
	if want := []int{1, 3, 4, 0, 2}; !reflect.DeepEqual(order, want) {
		t.Fatalf("second reorderByFailures = %v, want %v", order, want)
	}
}

func TestNilOrderStrategyEqualsRUDY(t *testing.T) {
	legacy := buildRouter(t, "dense1", rgraph.Options{}, Options{})
	explicit := buildRouter(t, "dense1", rgraph.Options{}, Options{Order: portfolio.RUDY{}})
	a := legacy.initialOrder(context.Background())
	b := explicit.initialOrder(context.Background())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nil strategy order != explicit RUDY order:\n%v\n%v", a, b)
	}
}

// stubStrategy lets tests inject arbitrary (including broken) orders.
type stubStrategy struct {
	name string
	fn   func(n int) []int
}

func (s stubStrategy) Name() string                                      { return s.name }
func (s stubStrategy) Order(_ context.Context, m *portfolio.Model) []int { return s.fn(m.Nets) }

func TestOrderStrategyHonored(t *testing.T) {
	reverse := stubStrategy{name: "reverse", fn: func(n int) []int {
		order := make([]int, n)
		for i := range order {
			order[i] = n - 1 - i
		}
		return order
	}}
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{Order: reverse})
	got := r.initialOrder(context.Background())
	want := reverse.fn(len(r.G.Design.Nets))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("initialOrder = %v, want the injected reverse order %v", got, want)
	}
}

func TestBrokenStrategyFallsBackToRUDY(t *testing.T) {
	broken := stubStrategy{name: "broken", fn: func(n int) []int {
		return make([]int, n) // all zeros: not a permutation
	}}
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{Order: broken})
	got := r.initialOrder(context.Background())
	want := buildRouter(t, "dense1", rgraph.Options{}, Options{}).initialOrder(context.Background())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("broken strategy did not fall back to RUDY order:\n%v\n%v", got, want)
	}
}

func TestConfiguredStrategyStillRoutes(t *testing.T) {
	for _, name := range []string{"netlen", "congestion", "anneal"} {
		strat, err := portfolio.New(name, portfolio.Profile{})
		if err != nil {
			t.Fatal(err)
		}
		r := buildRouter(t, "dense1", rgraph.Options{}, Options{Order: strat})
		res, err := r.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := res.Routability(); got != 1 {
			t.Errorf("%s: routability = %v, failed nets %v", name, got, res.FailedNets)
		}
		if err := r.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDisableRUDYOrderWinsOverStrategy(t *testing.T) {
	r := buildRouter(t, "dense1", rgraph.Options{},
		Options{DisableRUDYOrder: true, Order: portfolio.NetLen{}})
	got := r.initialOrder(context.Background())
	for i, ni := range got {
		if ni != i {
			t.Fatalf("DisableRUDYOrder order = %v, want identity", got)
		}
	}
}

func TestConflictPairsCanonical(t *testing.T) {
	r := buildRouter(t, "dense3", rgraph.Options{}, Options{Order: portfolio.Congestion{}})
	order := r.initialOrder(context.Background())
	if !portfolio.ValidOrder(order, len(r.G.Design.Nets)) {
		t.Fatal("congestion strategy returned invalid order")
	}
	// conflictPairs iterates maps internally; its output must be canonical
	// anyway. Recompute on a fresh router and compare.
	r2 := buildRouter(t, "dense3", rgraph.Options{}, Options{Order: portfolio.Congestion{}})
	r2.initialOrder(context.Background())
	d1 := r.orderModel.Conflicts
	d2 := r2.orderModel.Conflicts
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("conflictPairs not canonical across runs:\n%v\n%v", d1, d2)
	}
	for i := 1; i < len(d1); i++ {
		a, b := d1[i-1], d1[i]
		if a.A > b.A || (a.A == b.A && a.B >= b.B) {
			t.Fatalf("conflictPairs not sorted at %d: %v then %v", i, a, b)
		}
	}
	for _, c := range d1 {
		if c.A >= c.B || c.Shared < 1 {
			t.Fatalf("malformed conflict %v", c)
		}
	}
}
