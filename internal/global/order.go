package global

import (
	"context"
	"math"
	"sort"

	"rdlroute/internal/geom"
	"rdlroute/internal/obs"
	"rdlroute/internal/pool"
	"rdlroute/internal/portfolio"
	"rdlroute/internal/pq"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// Initial net ordering (§III-A2): every net is first routed alone on the
// empty graph; a RUDY-like wire density is accumulated on the tiles each
// standalone guide passes; the per-net features (over-threshold tile counts,
// pin-to-pin distances, congested-tile conflicts) feed a portfolio.Model,
// and the configured ordering strategy — the paper's RUDY policy by
// default — turns the model into the routing order.

// initialOrder returns the net indices in routing order. A cancelled ctx
// degrades gracefully: standalone seed routes not yet computed are skipped
// and the ordering falls back toward netlist order for the remainder.
func (r *Router) initialOrder(ctx context.Context) []int {
	n := len(r.G.Design.Nets)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if r.Opt.DisableRUDYOrder {
		return order
	}

	// Standalone guides, computed in parallel through the shared
	// deterministic pool: each net's seed route ignores every other net, so
	// the searches are independent and paths[ni] depends only on net ni.
	// Nets are chunked so one scratch amortizes across a chunk's searches
	// (the pool schedules units dynamically; a per-net unit would pay a
	// scratch allocation per net).
	paths := make([]*plainPath, n)
	const orderChunk = 16
	var units []func() struct{}
	for lo := 0; lo < n; lo += orderChunk {
		lo, hi := lo, lo+orderChunk
		if hi > n {
			hi = n
		}
		units = append(units, func() struct{} {
			scr := newPlainScratch(r.G)
			for ni := lo; ni < hi; ni++ {
				if obs.Stopped(ctx) {
					return struct{}{}
				}
				paths[ni] = r.routePlain(ni, scr)
			}
			return struct{}{}
		})
	}
	pool.Run(units, r.Opt.parallelism())

	// RUDY accumulation. The per-net tile footprints also persist on the
	// router (predTiles): the speculative round driver partitions nets into
	// interference groups by which standalone seed paths share tiles.
	density := make(map[tileKey]float64)
	area := make(map[tileKey]float64)
	pitch := r.G.Design.Rules.Pitch()
	for ni := range r.G.Design.Nets {
		path := paths[ni]
		if path == nil {
			continue
		}
		for i := 0; i+1 < len(path.nodes); i++ {
			link := r.G.Link(path.links[i])
			if link.Kind == rgraph.CrossVia {
				continue
			}
			key := tileKey{link.Layer, link.Tile}
			if _, ok := area[key]; !ok {
				area[key] = r.tileArea(key)
			}
			chord := r.G.Node(path.nodes[i]).Pos.Dist(r.G.Node(path.nodes[i+1]).Pos)
			density[key] += chord * pitch / area[key]
			r.predTiles[ni] = append(r.predTiles[ni], key)
		}
	}

	congested := make([]int, n)
	for ni := range r.predTiles {
		for _, key := range r.predTiles[ni] {
			if density[key] > r.Opt.CongestionThreshold {
				congested[ni]++
			}
		}
	}

	m := &portfolio.Model{Nets: n, Congested: congested, PinDist: make([]float64, n)}
	for ni := range m.PinDist {
		m.PinDist[ni] = r.netPinDist(ni)
	}
	r.orderModel = m
	strat := r.Opt.Order
	if strat == nil {
		// Legacy path: portfolio.RUDY is the verbatim extraction of the
		// comparator that used to live here, so this is byte-identical to
		// the pre-portfolio sort.
		strat = portfolio.RUDY{}
	} else {
		// The pairwise interaction signal is only built for configured
		// strategies; RUDY never reads it.
		m.Conflicts = r.conflictPairs(density)
	}
	order = strat.Order(ctx, m)
	if !portfolio.ValidOrder(order, n) {
		// A broken external strategy must not corrupt routing: fall back to
		// the paper's policy rather than route a non-permutation.
		order = portfolio.RUDY{}.Order(ctx, m)
	}
	return order
}

// conflictPairs lists net pairs whose standalone seed paths share congested
// tiles, sorted by (A, B). Per-tile net lists are built in ascending net
// order (so A < B holds by construction) and capped: a pathological tile
// crossed by hundreds of seed paths would otherwise cost O(k²) pairs while
// adding no ordering signal beyond its first couple dozen nets.
func (r *Router) conflictPairs(density map[tileKey]float64) []portfolio.Conflict {
	const maxTileNets = 24
	tileNets := make(map[tileKey][]int)
	seen := make(map[tileKey]struct{})
	for ni := range r.predTiles {
		clear(seen)
		for _, key := range r.predTiles[ni] {
			if density[key] <= r.Opt.CongestionThreshold {
				continue
			}
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			if nets := tileNets[key]; len(nets) < maxTileNets {
				tileNets[key] = append(nets, ni)
			}
		}
	}
	pairs := make(map[[2]int]int)
	for _, nets := range tileNets {
		for i := 0; i < len(nets); i++ {
			for j := i + 1; j < len(nets); j++ {
				pairs[[2]int{nets[i], nets[j]}]++
			}
		}
	}
	out := make([]portfolio.Conflict, 0, len(pairs))
	for p, shared := range pairs {
		out = append(out, portfolio.Conflict{A: p[0], B: p[1], Shared: shared})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].A != out[b].A {
			return out[a].A < out[b].A
		}
		return out[a].B < out[b].B
	})
	return out
}

// tileArea returns the area of a tile.
func (r *Router) tileArea(key tileKey) float64 {
	mesh := r.G.Layers[key.layer].Mesh
	tri := mesh.Tris[key.tri]
	a := math.Abs(geom.SignedArea2(mesh.Points[tri.V[0]], mesh.Points[tri.V[1]], mesh.Points[tri.V[2]])) / 2
	if a <= 0 {
		return 1
	}
	return a
}

// plainPath is a capacity-agnostic standalone route.
type plainPath struct {
	nodes []rgraph.NodeID
	links []int
}

type plainState struct {
	node      rgraph.NodeID
	viaArrive bool
}

type plainItem struct {
	st     plainState
	g, f   float64
	parent int
	link   int
}

// plainScratch holds the reusable buffers of one standalone-route worker:
// a dense best-cost scoreboard over the 2·|nodes| plain states (generation
// counter instead of per-search clearing), the item arena, and a typed open
// list. One scratch serves every net a worker claims.
type plainScratch struct {
	bestG   []float64
	bestGen []uint32
	gen     uint32
	arena   []plainItem
	open    *pq.Heap[heapItem]
}

func newPlainScratch(g *rgraph.Graph) *plainScratch {
	return &plainScratch{
		bestG:   make([]float64, 2*len(g.Nodes)),
		bestGen: make([]uint32, 2*len(g.Nodes)),
		open:    pq.New(func(a, b heapItem) bool { return a.f < b.f }),
	}
}

// plainSlot maps a plain state to its scoreboard slot.
func plainSlot(st plainState) int {
	i := int(st.node) * 2
	if st.viaArrive {
		i++
	}
	return i
}

// begin starts a fresh search on the reused buffers.
func (s *plainScratch) begin() {
	s.gen++
	if s.gen == 0 { // uint32 wraparound: stale stamps would alias as current
		for i := range s.bestGen {
			s.bestGen[i] = 0
		}
		s.gen = 1
	}
	s.arena = s.arena[:0]
	s.open.Reset()
}

// routePlain finds the shortest structural path for one net, ignoring other
// nets entirely (no usage, no sequences); only structural capacities
// (cap > 0) gate traversal. Used for RUDY estimation. Returns nil when no
// path exists at all.
func (r *Router) routePlain(ni int, s *plainScratch) *plainPath {
	net := r.G.Design.Nets[ni]
	src, dst, err := r.G.NetPins(net)
	if err != nil {
		return nil
	}
	dstPos := r.G.Node(dst).Pos

	s.begin()
	push := func(st plainState, g float64, parent, link int) {
		slot := plainSlot(st)
		if s.bestGen[slot] == s.gen && s.bestG[slot] <= g {
			return
		}
		s.bestGen[slot] = s.gen
		s.bestG[slot] = g
		s.arena = append(s.arena, plainItem{st: st, g: g,
			f: g + r.G.Node(st.node).Pos.Dist(dstPos), parent: parent, link: link})
		s.open.Push(heapItem{f: s.arena[len(s.arena)-1].f, idx: int32(len(s.arena) - 1)})
	}
	push(plainState{node: src}, 0, -1, -1)

	for s.open.Len() > 0 {
		si := int(s.open.Pop().idx)
		it := s.arena[si]
		if it.g > s.bestG[plainSlot(it.st)] {
			continue
		}
		if it.st.node == dst {
			var nodes []rgraph.NodeID
			var links []int
			for i := si; i != -1; i = s.arena[i].parent {
				nodes = append(nodes, s.arena[i].st.node)
				if s.arena[i].link != -1 {
					links = append(links, s.arena[i].link)
				}
			}
			for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
				nodes[i], nodes[j] = nodes[j], nodes[i]
			}
			for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
				links[i], links[j] = links[j], links[i]
			}
			return &plainPath{nodes: nodes, links: links}
		}
		node := r.G.Node(it.st.node)
		for _, adj := range r.G.Adj[it.st.node] {
			link := r.G.Link(adj.Link)
			to := r.G.Node(adj.To)
			if to.Cap <= 0 && adj.To != dst {
				continue
			}
			if node.Kind == rgraph.ViaNode && it.link != -1 {
				// Same leave-kind restriction as the real search.
				if it.st.viaArrive && link.Kind == rgraph.CrossVia {
					continue
				}
				if !it.st.viaArrive && link.Kind != rgraph.CrossVia {
					continue
				}
			}
			// A wire never enters a pin that is not its own target.
			if to.Kind == rgraph.ViaNode && to.VertKind == viaplan.KindPin &&
				adj.To != dst && adj.To != src &&
				!r.G.Design.SameGroup(r.G.Design.IOPads[to.Ref].Net, ni) {
				continue
			}
			push(plainState{node: adj.To, viaArrive: link.Kind == rgraph.CrossVia},
				it.g+link.Len, si, adj.Link)
		}
	}
	return nil
}
