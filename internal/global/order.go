package global

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rdlroute/internal/geom"
	"rdlroute/internal/obs"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// Initial net ordering (§III-A2): every net is first routed alone on the
// empty graph; a RUDY-like wire density is accumulated on the tiles each
// standalone guide passes; nets are then ordered so that those passing more
// over-threshold tiles — and among equals those with shorter pin-to-pin
// distance — route first.

// initialOrder returns the net indices in routing order. A cancelled ctx
// degrades gracefully: standalone seed routes not yet computed are skipped
// and the ordering falls back toward netlist order for the remainder.
func (r *Router) initialOrder(ctx context.Context) []int {
	n := len(r.G.Design.Nets)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if r.Opt.DisableRUDYOrder {
		return order
	}

	// Standalone guides, computed in parallel: each net's seed route
	// ignores every other net, so the searches are independent. Only the
	// RUDY accumulation below needs the results together.
	paths := make([]*plainPath, n)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	next := int32(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ni := int(atomic.AddInt32(&next, 1)) - 1
				if ni >= n || obs.Stopped(ctx) {
					return
				}
				paths[ni] = r.routePlain(ni)
			}
		}()
	}
	wg.Wait()

	// RUDY accumulation.
	density := make(map[tileKey]float64)
	area := make(map[tileKey]float64)
	type netGuide struct {
		tiles []tileKey
	}
	guides := make([]netGuide, n)
	pitch := r.G.Design.Rules.Pitch()
	for ni := range r.G.Design.Nets {
		path := paths[ni]
		if path == nil {
			continue
		}
		for i := 0; i+1 < len(path.nodes); i++ {
			link := r.G.Link(path.links[i])
			if link.Kind == rgraph.CrossVia {
				continue
			}
			key := tileKey{link.Layer, link.Tile}
			if _, ok := area[key]; !ok {
				area[key] = r.tileArea(key)
			}
			chord := r.G.Node(path.nodes[i]).Pos.Dist(r.G.Node(path.nodes[i+1]).Pos)
			density[key] += chord * pitch / area[key]
			guides[ni].tiles = append(guides[ni].tiles, key)
		}
	}

	congested := make([]int, n)
	for ni := range guides {
		for _, key := range guides[ni].tiles {
			if density[key] > r.Opt.CongestionThreshold {
				congested[ni]++
			}
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		na, nb := order[a], order[b]
		if congested[na] != congested[nb] {
			return congested[na] > congested[nb]
		}
		da, db := r.netPinDist(na), r.netPinDist(nb)
		if da != db {
			return da < db
		}
		return na < nb
	})
	return order
}

// tileArea returns the area of a tile.
func (r *Router) tileArea(key tileKey) float64 {
	mesh := r.G.Layers[key.layer].Mesh
	tri := mesh.Tris[key.tri]
	a := math.Abs(geom.SignedArea2(mesh.Points[tri.V[0]], mesh.Points[tri.V[1]], mesh.Points[tri.V[2]])) / 2
	if a <= 0 {
		return 1
	}
	return a
}

// plainPath is a capacity-agnostic standalone route.
type plainPath struct {
	nodes []rgraph.NodeID
	links []int
}

type plainState struct {
	node      rgraph.NodeID
	viaArrive bool
}

type plainItem struct {
	st     plainState
	g, f   float64
	parent int
	link   int
}

type plainHeap struct {
	arena *[]plainItem
	idx   []int
}

func (h plainHeap) Len() int { return len(h.idx) }
func (h plainHeap) Less(i, j int) bool {
	return (*h.arena)[h.idx[i]].f < (*h.arena)[h.idx[j]].f
}
func (h plainHeap) Swap(i, j int)       { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *plainHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *plainHeap) Pop() interface{} {
	old := h.idx
	x := old[len(old)-1]
	h.idx = old[:len(old)-1]
	return x
}

// routePlain finds the shortest structural path for one net, ignoring other
// nets entirely (no usage, no sequences); only structural capacities
// (cap > 0) gate traversal. Used for RUDY estimation. Returns nil when no
// path exists at all.
func (r *Router) routePlain(ni int) *plainPath {
	net := r.G.Design.Nets[ni]
	src, dst, err := r.G.NetPins(net)
	if err != nil {
		return nil
	}
	dstPos := r.G.Node(dst).Pos

	arena := make([]plainItem, 0, 512)
	open := &plainHeap{arena: &arena}
	best := make(map[plainState]float64)
	push := func(st plainState, g float64, parent, link int) {
		if prev, ok := best[st]; ok && prev <= g {
			return
		}
		best[st] = g
		arena = append(arena, plainItem{st: st, g: g,
			f: g + r.G.Node(st.node).Pos.Dist(dstPos), parent: parent, link: link})
		heap.Push(open, len(arena)-1)
	}
	push(plainState{node: src}, 0, -1, -1)

	for open.Len() > 0 {
		si := heap.Pop(open).(int)
		it := arena[si]
		if it.g > best[it.st] {
			continue
		}
		if it.st.node == dst {
			var nodes []rgraph.NodeID
			var links []int
			for i := si; i != -1; i = arena[i].parent {
				nodes = append(nodes, arena[i].st.node)
				if arena[i].link != -1 {
					links = append(links, arena[i].link)
				}
			}
			for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
				nodes[i], nodes[j] = nodes[j], nodes[i]
			}
			for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
				links[i], links[j] = links[j], links[i]
			}
			return &plainPath{nodes: nodes, links: links}
		}
		node := r.G.Node(it.st.node)
		for _, adj := range r.G.Adj[it.st.node] {
			link := r.G.Link(adj.Link)
			to := r.G.Node(adj.To)
			if to.Cap <= 0 && adj.To != dst {
				continue
			}
			if node.Kind == rgraph.ViaNode && it.link != -1 {
				// Same leave-kind restriction as the real search.
				if it.st.viaArrive && link.Kind == rgraph.CrossVia {
					continue
				}
				if !it.st.viaArrive && link.Kind != rgraph.CrossVia {
					continue
				}
			}
			// A wire never enters a pin that is not its own target.
			if to.Kind == rgraph.ViaNode && to.VertKind == viaplan.KindPin &&
				adj.To != dst && adj.To != src &&
				!r.G.Design.SameGroup(r.G.Design.IOPads[to.Ref].Net, ni) {
				continue
			}
			push(plainState{node: adj.To, viaArrive: link.Kind == rgraph.CrossVia},
				it.g+link.Len, si, adj.Link)
		}
	}
	return nil
}
