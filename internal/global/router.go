// Package global implements the global-routing stage of the paper (§III-A):
// RUDY-based initial net ordering, crossing-aware A* search over the
// multi-layer routing graph with per-edge-node net-sequence lists, diagonal
// utility refinement (Eq. 3), and failure-count-driven net order adjustment.
//
// Its output is one routing guide per net: a non-crossing path of via nodes
// and edge nodes whose capacities (Eq. 1 and Eq. 2) are respected.
package global

import (
	"context"
	"fmt"
	"sort"

	"rdlroute/internal/obs"
	"rdlroute/internal/pool"
	"rdlroute/internal/portfolio"
	"rdlroute/internal/rgraph"
)

// Guide is the routing guide of one net: an alternating path of via nodes
// and edge nodes, with Links[i] the graph link between Nodes[i] and
// Nodes[i+1].
type Guide struct {
	Net   int
	Nodes []rgraph.NodeID
	Links []int
}

// Options tunes the global router.
type Options struct {
	// CongestionThreshold is the user-defined RUDY density above which a
	// tile counts as congested during initial net ordering. Zero selects
	// 0.5.
	CongestionThreshold float64
	// MaxOrderRounds bounds the net-order adjustment loop. Zero selects 8.
	MaxOrderRounds int
	// MaxExpansions bounds the A* state expansions per net. Zero selects
	// 400000.
	MaxExpansions int
	// DisableRUDYOrder skips congestion-based initial ordering and routes
	// nets in ID order (ablation). It wins over Order: the standalone seed
	// routes that feed the ordering model are not computed at all.
	DisableRUDYOrder bool
	// Order is the net-ordering strategy consuming the RUDY seed features
	// (see internal/portfolio). Nil selects portfolio.RUDY — the paper's
	// policy — over a code path byte-identical to the pre-portfolio router.
	Order portfolio.Strategy
	// DisableDiagonalRefinement skips the Eq. 3 refinement pass (ablation).
	DisableDiagonalRefinement bool
	// EdgeUsePerNet is how many capacity units each guide consumes on every
	// edge node it crosses. The default 1 is the paper's model; the AARF*
	// baseline uses 2 to emulate the resource waste of treating each routed
	// net as a hard constraint corridor in a rebuilt triangulation.
	EdgeUsePerNet int
	// FullRipUp restores the pre-incremental net-order adjustment: at every
	// failed round boundary, every committed guide is ripped up and the
	// whole net list rerouted. The default (false) rips up only the dirty
	// nets — those whose guides touch nodes or links whose usage or
	// sequence lists other nets changed after they committed — plus the
	// failures, which on designs with localized congestion reroutes a small
	// fraction of the net list per round.
	FullRipUp bool
	// AfterRound, when non-nil, runs at the end of every net-order
	// adjustment round (after the round's rip-ups), with the zero-based
	// round index. Tests use it to assert CheckInvariants between rounds.
	AfterRound func(round int)
	// AfterEachNet, when non-nil, runs after every successfully committed
	// net with that net's ID. The AARF* baseline re-triangulates every
	// layer here, paying the per-net mesh-rebuild cost the original
	// algorithm incurs. Setting it forces the serial routing path: the
	// callback may mutate state the speculative searches read.
	AfterEachNet func(net int)
	// Parallelism is the worker-pool size shared by the ordering seeds and
	// the speculative multi-net search stage. Zero selects GOMAXPROCS
	// capped at 8 (pool.Default); 1 selects the serial reference path.
	// Output is byte-identical for every value: speculative results only
	// commit after read-set validation proves the serial search would have
	// produced them.
	Parallelism int
	// Rec receives stage spans, counters and the per-net progress stream.
	// Nil selects the no-op recorder. Cancellation is the context passed
	// to Run (the paper's 1-hour wall-clock cutoff becomes a deadline).
	Rec obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.CongestionThreshold == 0 {
		o.CongestionThreshold = 0.5
	}
	if o.MaxOrderRounds == 0 {
		o.MaxOrderRounds = 8
	}
	if o.MaxExpansions == 0 {
		o.MaxExpansions = 400000
	}
	if o.EdgeUsePerNet == 0 {
		o.EdgeUsePerNet = 1
	}
	return o
}

// parallelism resolves the Parallelism knob through the pipeline's shared
// zero-means-auto convention.
func (o Options) parallelism() int { return pool.Default(o.Parallelism) }

// Result is the outcome of global routing.
type Result struct {
	// Guides holds one guide per net ID; nil entries are unrouted nets.
	Guides []*Guide
	// FailedNets lists net IDs that could not be routed.
	FailedNets []int
	// OrderRounds is the number of net-order adjustment rounds used.
	OrderRounds int
	// RipUps counts guides ripped up across all rounds (diagonal-refinement
	// reroutes included).
	RipUps int
	// KeptGuides counts committed guides preserved across failed-round
	// boundaries by incremental rip-up; always zero with FullRipUp.
	KeptGuides int
	// DiagonalReductions counts edge-node capacity reductions performed by
	// diagonal utility refinement.
	DiagonalReductions int
	// Expansions counts total A* state expansions credited to the
	// committed result — identical to the serial count for any
	// Parallelism, because speculative searches only contribute here when
	// validation proves them byte-identical to the serial search.
	Expansions int
	// SpeculationHits counts speculative searches whose read set survived
	// validation at their net's canonical turn (committed or accepted as
	// failures without re-searching).
	SpeculationHits int
	// SpeculationMisses counts speculative searches discarded because an
	// earlier commit touched a resource they read; each miss was
	// re-searched serially.
	SpeculationMisses int
	// WastedExpansions counts A* expansions spent on discarded speculative
	// searches. Not included in Expansions.
	WastedExpansions int
}

// Routability returns the fraction of nets routed, in [0, 1].
func (r *Result) Routability() float64 {
	if len(r.Guides) == 0 {
		return 1
	}
	routed := 0
	for _, g := range r.Guides {
		if g != nil {
			routed++
		}
	}
	return float64(routed) / float64(len(r.Guides))
}

// Router holds the mutable global-routing state over a routing graph.
type Router struct {
	G   *rgraph.Graph
	Opt Options
	rec obs.Recorder

	nodeUse []int
	linkUse []int
	// capOverride maps edge nodes whose capacity was reduced by diagonal
	// refinement to their new capacity.
	capOverride map[rgraph.NodeID]int
	// seqs holds, for each edge node, the ordered net IDs crossing it
	// (storage order: from Edge.A's position toward Edge.B's).
	seqs [][]int
	// passages holds the committed chords per tile.
	passages map[tileKey][]passage

	guides     []*Guide
	routed     int // committed-guide count, maintained by commit/ripUp
	expansions int
	heapPushes int
	ripUps     int
	kept       int
	// scr is the canonical A* scratch: the serial reference loop and every
	// non-speculative reroute (discarded speculations, diagonal
	// refinement) reuse it across route calls. Worker-owned scratches for
	// the speculative stage live in specScr.
	scr *searchScratch

	// Change clock: advances on every commit and rip-up; nodeStamp,
	// linkStamp and tileStamp record the last tick that changed a
	// resource's usage, sequence list or passage list. Diagonal refinement
	// uses the node stamps to rescan only the mesh edges whose inputs
	// changed since they were last proven clean (diagCheckedAt, indexed by
	// edge node); the speculative commit path compares the stamps of a
	// speculation's read set against the batch snapshot. tileStamp is
	// dense, indexed by tileBase[layer]+tri.
	clock         int64
	nodeStamp     []int64
	linkStamp     []int64
	tileBase      []int32
	tileStamp     []int64
	diagCheckedAt []int64

	// Round-level blocked sets: every search records the nodes, links and
	// tiles where a capacity or crossing check rejected an expansion (in
	// its scratch); when the search fails, those resources are folded
	// here. At the next round boundary the failed nets' blockers seed the
	// dirty computation alongside the disturbed guides — the nets
	// occupying a blocker committed before the failure, so the stamp test
	// alone would never select them.
	roundBlkNodes map[rgraph.NodeID]struct{}
	roundBlkLinks map[int]struct{}
	roundBlkTiles map[tileKey]struct{}

	// Speculative-routing state: predTiles holds each net's predicted tile
	// footprint (its standalone ordering-seed path), specGroup the
	// union-find interference group built from those footprints, specScr
	// the lazily created per-worker scratches, and the counters feed
	// Result and the obs ledger.
	// orderModel is the feature model initialOrder built for the ordering
	// strategy (nil until initialOrder runs, or with DisableRUDYOrder).
	orderModel *portfolio.Model

	predTiles  [][]tileKey
	specGroup  []int32
	specScr    []*searchScratch
	specHits   int
	specMisses int
	specWasted int
}

// New creates a router over the graph.
func New(g *rgraph.Graph, opt Options) *Router {
	tb := graphTileBase(g)
	r := &Router{
		G:             g,
		Opt:           opt.withDefaults(),
		rec:           obs.Or(opt.Rec),
		nodeUse:       make([]int, len(g.Nodes)),
		linkUse:       make([]int, len(g.Links)),
		capOverride:   make(map[rgraph.NodeID]int),
		seqs:          make([][]int, len(g.Nodes)),
		passages:      make(map[tileKey][]passage),
		guides:        make([]*Guide, len(g.Design.Nets)),
		scr:           newSearchScratch(g),
		nodeStamp:     make([]int64, len(g.Nodes)),
		linkStamp:     make([]int64, len(g.Links)),
		tileBase:      tb,
		tileStamp:     make([]int64, tb[len(g.Layers)]),
		diagCheckedAt: make([]int64, len(g.Nodes)),

		roundBlkNodes: make(map[rgraph.NodeID]struct{}),
		roundBlkLinks: make(map[int]struct{}),
		roundBlkTiles: make(map[tileKey]struct{}),

		predTiles: make([][]tileKey, len(g.Design.Nets)),
	}
	// Pre-size the sequence lists from edge capacity: a sequence entry
	// consumes at least one capacity unit, so Cap bounds the list length
	// and the commit-time insertions below never reallocate. All lists
	// carve one backing array — full-capacity three-index sub-slices, so
	// an append can never bleed into a neighbour's region.
	total := 0
	for id := range g.Nodes {
		if n := &g.Nodes[id]; n.Kind == rgraph.EdgeNode && n.Cap > 0 {
			total += n.Cap
		}
	}
	backing := make([]int, total)
	off := 0
	for id := range g.Nodes {
		if n := &g.Nodes[id]; n.Kind == rgraph.EdgeNode && n.Cap > 0 {
			r.seqs[id] = backing[off : off : off+n.Cap]
			off += n.Cap
		}
	}
	return r
}

// edgeUnits returns the capacity units one guide of the net consumes on an
// edge node it crosses: the net's track width times the configured
// per-net usage factor.
func (r *Router) edgeUnits(net int) int {
	return r.G.Design.TrackUnits(net) * r.Opt.EdgeUsePerNet
}

// nodeCap returns the effective capacity of a node, honouring diagonal
// refinement reductions.
func (r *Router) nodeCap(id rgraph.NodeID) int {
	if c, ok := r.capOverride[id]; ok {
		return c
	}
	return r.G.Node(id).Cap
}

// Run executes the full global-routing flow and returns the guides. When
// ctx is cancelled or expires mid-run, routing stops between nets and Run
// returns the partial result together with ctx.Err(); the work committed so
// far stays valid (the paper's "report the best result so far" semantics).
func (r *Router) Run(ctx context.Context) (*Result, error) {
	span := obs.StartSpan(r.rec, "global")
	defer span.End()

	nets := r.G.Design.Nets
	orderSpan := obs.StartSpan(r.rec, "global.order")
	order := r.initialOrder(ctx)
	orderSpan.End()
	failCount := make([]int, len(nets))

	res := &Result{}
	astarSpan := obs.StartSpan(r.rec, "global.astar")
	progress := r.rec.Enabled()
	// The speculative driver needs the interference groups and a worker
	// pool; AfterEachNet forces the serial path because the callback may
	// mutate state concurrent searches read (the AARF* baseline
	// re-triangulates layers in it).
	workers := r.Opt.parallelism()
	speculate := workers > 1 && r.Opt.AfterEachNet == nil
	if speculate {
		r.buildSpecGroups()
	}
	var lastFailed []int
	for round := 0; round < r.Opt.MaxOrderRounds; round++ {
		res.OrderRounds = round + 1
		lastFailed = lastFailed[:0]
		var stopped bool
		if speculate {
			stopped = r.routeRoundSpec(ctx, order, failCount, &lastFailed, progress, workers)
		} else {
			stopped = r.routeRoundSerial(ctx, order, failCount, &lastFailed, progress)
		}
		done := stopped || len(lastFailed) == 0 ||
			round == r.Opt.MaxOrderRounds-1 // keep partial result; no rip-up on the last round
		if !done {
			// Net order adjustment (§III-A3c): rip up and move nets with
			// larger failure counts to the front. Full mode rips every
			// guide; incremental mode rips only the dirty ones and keeps
			// the rest committed, so the next round reroutes a subset.
			ripped := r.ripUpForNextRound()
			if ripped == 0 && !r.Opt.FullRipUp {
				// Nothing changed since the failed searches ran: extra
				// usage only shrinks the feasible space, so rerouting the
				// failures against the identical graph state would fail
				// identically. Stop instead of spinning the rounds out.
				done = true
			}
			if !done {
				reorderByFailures(order, failCount)
			}
		}
		if r.Opt.AfterRound != nil {
			r.Opt.AfterRound(round)
		}
		if done {
			break
		}
	}
	astarSpan.End()

	if !r.Opt.DisableDiagonalRefinement && !obs.Stopped(ctx) {
		refineSpan := obs.StartSpan(r.rec, "global.refine")
		res.DiagonalReductions = r.refineDiagonal(ctx)
		refineSpan.End()
	}

	res.Guides = append([]*Guide(nil), r.guides...)
	for ni, g := range r.guides {
		if g == nil {
			res.FailedNets = append(res.FailedNets, ni)
		}
	}
	sort.Ints(res.FailedNets)
	res.Expansions = r.expansions
	res.RipUps = r.ripUps
	res.KeptGuides = r.kept
	res.SpeculationHits = r.specHits
	res.SpeculationMisses = r.specMisses
	res.WastedExpansions = r.specWasted

	r.rec.Count("global.astar.expansions", int64(r.expansions))
	r.rec.Count("global.kept_guides", int64(r.kept))
	r.rec.Count("global.astar.heap_pushes", int64(r.heapPushes))
	r.rec.Count("global.ripups", int64(r.ripUps))
	r.rec.Count("global.order_rounds", int64(res.OrderRounds))
	r.rec.Count("global.refine.reductions", int64(res.DiagonalReductions))
	r.rec.Count("global.nets_routed", int64(len(res.Guides)-len(res.FailedNets)))
	r.rec.Count("global.nets_failed", int64(len(res.FailedNets)))
	if speculate {
		r.rec.Count("global.spec.hits", int64(r.specHits))
		r.rec.Count("global.spec.misses", int64(r.specMisses))
		r.rec.Count("global.spec.wasted_expansions", int64(r.specWasted))
	}

	if obs.Stopped(ctx) {
		return res, ctx.Err()
	}
	return res, nil
}

// reorderByFailures is the net-order adjustment of §III-A3c: nets with
// larger failure counts move to the front for the next round. The sort is
// stable on purpose — equal-failure nets keep their prior relative order,
// i.e. the initial strategy's order, which is the paper's documented tie
// behavior and what keeps strategy comparisons meaningful across rounds.
func reorderByFailures(order, failCount []int) {
	sort.SliceStable(order, func(a, b int) bool {
		return failCount[order[a]] > failCount[order[b]]
	})
}

// routedCount returns how many nets currently hold a committed guide.
func (r *Router) routedCount() int { return r.routed }

// routeRoundSerial routes one ordering round on the canonical scratch: the
// serial reference the speculative driver must reproduce byte-for-byte.
func (r *Router) routeRoundSerial(ctx context.Context, order, failCount []int,
	lastFailed *[]int, progress bool) (stopped bool) {
	for _, ni := range order {
		if obs.Stopped(ctx) {
			return true
		}
		if r.guides[ni] != nil {
			continue
		}
		r.routeOne(ni, failCount, lastFailed, progress)
	}
	return false
}

// routeOne is the canonical per-net step shared by the serial round loop
// and the speculative driver's miss path: search on the canonical scratch,
// fold the work counters, then commit or record the failure.
func (r *Router) routeOne(ni int, failCount []int, lastFailed *[]int, progress bool) {
	nets := r.G.Design.Nets
	g, err := r.route(r.scr, nets[ni])
	r.expansions += r.scr.expansions
	r.heapPushes += r.scr.heapPushes
	if err != nil {
		r.noteSearchFailed(r.scr)
		failCount[ni]++
		*lastFailed = append(*lastFailed, ni)
		return
	}
	r.commit(g)
	if r.Opt.AfterEachNet != nil {
		r.Opt.AfterEachNet(ni)
	}
	if progress {
		r.rec.Progress("global", r.routed, len(nets))
	}
}

// commit installs a found guide: bumps usage, inserts sequence positions,
// and records tile passages. It advances the change clock and stamps every
// occupied node and link so later rounds can tell which committed guides
// other nets have since disturbed.
//
//rdl:noalloc
func (r *Router) commit(g *searchResult) {
	//rdl:allow noalloc the Guide header is budget alloc 4 of 4 pinned by TestRouteSearchDoesNotAllocate; it outlives the round
	guide := &Guide{Net: g.net, Nodes: g.nodes, Links: g.links}
	r.clock++
	for i, id := range g.nodes {
		r.nodeStamp[id] = r.clock
		if r.G.Node(id).Kind == rgraph.EdgeNode {
			r.nodeUse[id] += r.edgeUnits(g.net)
			gap := g.gaps[i]
			seq := r.seqs[id]
			if gap < 0 || gap > len(seq) {
				gap = len(seq)
			}
			// In-place insertion: the list was pre-sized to the node's
			// capacity in New, so the append stays within the backing array.
			seq = append(seq, 0)
			copy(seq[gap+1:], seq[gap:])
			seq[gap] = g.net
			r.seqs[id] = seq
		} else {
			r.nodeUse[id]++
		}
	}
	for _, l := range g.links {
		r.linkStamp[l] = r.clock
		if r.G.Link(l).Kind == rgraph.CrossTile {
			r.linkUse[l] += r.edgeUnits(g.net)
		} else {
			r.linkUse[l]++
		}
	}
	// Record passages per tile for crossing checks, stamping each touched
	// tile's passage list as changed.
	for i, l := range g.links {
		link := r.G.Link(l)
		if link.Kind == rgraph.CrossVia {
			continue
		}
		tile := r.G.TileOf(link.Layer, link.Tile)
		p := passage{net: g.net}
		p.e1 = r.passageEndFor(tile, g.nodes[i])
		p.e2 = r.passageEndFor(tile, g.nodes[i+1])
		key := tileKey{link.Layer, link.Tile}
		r.tileStamp[r.tileBase[key.layer]+int32(key.tri)] = r.clock
		r.passages[key] = append(r.passages[key], p)
	}
	r.guides[g.net] = guide
	r.routed++
}

// passageEndFor converts a path node into a stored passage endpoint within
// the tile.
func (r *Router) passageEndFor(tile *rgraph.Tile, id rgraph.NodeID) passageEnd {
	n := r.G.Node(id)
	if n.Kind == rgraph.ViaNode {
		return passageEnd{vertex: vertexOrdinal(tile, n.Vert), edge: -1}
	}
	return passageEnd{vertex: -1, edge: edgeOrdinal(tile, id)}
}

// ripUp removes a committed guide, releasing all resources. Like commit it
// advances the change clock and stamps the released nodes and links: freed
// capacity is as much a state change as consumed capacity for the guides
// that share those resources.
//
//rdl:noalloc
func (r *Router) ripUp(guide *Guide) {
	r.clock++
	for _, id := range guide.Nodes {
		r.nodeStamp[id] = r.clock
		if r.G.Node(id).Kind == rgraph.EdgeNode {
			r.nodeUse[id] -= r.edgeUnits(guide.Net)
			seq := r.seqs[id]
			for j, n := range seq {
				if n == guide.Net {
					r.seqs[id] = append(seq[:j], seq[j+1:]...)
					break
				}
			}
		} else {
			r.nodeUse[id]--
		}
	}
	for _, l := range guide.Links {
		r.linkStamp[l] = r.clock
		link := r.G.Link(l)
		if link.Kind == rgraph.CrossTile {
			r.linkUse[l] -= r.edgeUnits(guide.Net)
		} else {
			r.linkUse[l]--
		}
		if link.Kind == rgraph.CrossVia {
			continue
		}
		key := tileKey{link.Layer, link.Tile}
		r.tileStamp[r.tileBase[key.layer]+int32(key.tri)] = r.clock
		ps := r.passages[key]
		for j := range ps {
			if ps[j].net == guide.Net {
				r.passages[key] = append(ps[:j], ps[j+1:]...)
				break
			}
		}
	}
	r.guides[guide.Net] = nil
	r.routed--
	r.ripUps++
}

// noteSearchFailed folds the failed search's blocked resources into the
// round-level sets consumed at the next boundary.
func (r *Router) noteSearchFailed(sc *searchScratch) {
	r.foldBlocked(sc.blkNodes, sc.blkLinks, sc.blkTiles)
}

// foldBlocked merges one failed search's blocked resources into the
// round-level sets. The speculative driver calls it with the copied sets of
// a validated speculative failure, which by the validation argument are
// exactly what the serial search would have recorded.
func (r *Router) foldBlocked(nodes []rgraph.NodeID, links []int, tiles []tileKey) {
	for _, id := range nodes {
		r.roundBlkNodes[id] = struct{}{}
	}
	for _, l := range links {
		r.roundBlkLinks[l] = struct{}{}
	}
	for _, key := range tiles {
		r.roundBlkTiles[key] = struct{}{}
	}
}

// dirtyClosure computes the per-net dirty flags for the incremental rip-up:
// seeds are the guides touching a resource — or co-occupying a tile — that
// blocked a failed search; the seed set is then closed over resource
// sharing with a union-find, because rerouting one net of a congestion
// cluster shifts the feasible space of every net it shares capacity or
// crossing constraints with.
//
// Guides in components no failure touched stay committed, and keeping them
// is exact rather than approximate: the full-rip-up reference reroutes such
// a component in its old relative order (the stable failure-count sort only
// moves failed nets, which live in other components) against an unchanged
// local resource state, so it replays the identical searches and reproduces
// the identical guides. This is also why the seeds deliberately exclude
// guides that were merely disturbed — a resource touched by a later
// neighbour's commit: in a congested cluster nearly every guide is
// disturbed, so seeding on disturbance floods whole components that no
// failure touched and destroys both the pruning and the replay property.
func (r *Router) dirtyClosure() []bool {
	nNets := len(r.guides)
	nodeBase := nNets
	linkBase := nodeBase + len(r.G.Nodes)
	tileBase := linkBase + len(r.G.Links)
	tileIdx := make(map[tileKey]int, len(r.passages))
	for key := range r.passages {
		tileIdx[key] = tileBase + len(tileIdx)
	}
	parent := make([]int32, tileBase+len(tileIdx))
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for net, g := range r.guides {
		if g == nil {
			continue
		}
		for _, id := range g.Nodes {
			union(int32(net), int32(nodeBase+int(id)))
		}
		for _, l := range g.Links {
			union(int32(net), int32(linkBase+l))
			link := r.G.Link(l)
			if link.Kind != rgraph.CrossVia {
				union(int32(net), int32(tileIdx[tileKey{link.Layer, link.Tile}]))
			}
		}
	}
	seed := make(map[int32]struct{})
	mark := func(net int) { seed[find(int32(net))] = struct{}{} }
	for net, g := range r.guides {
		if g == nil {
			continue
		}
		blocked := false
		for _, id := range g.Nodes {
			if _, ok := r.roundBlkNodes[id]; ok {
				blocked = true
				break
			}
		}
		if !blocked {
			for _, l := range g.Links {
				if _, ok := r.roundBlkLinks[l]; ok {
					blocked = true
					break
				}
			}
		}
		if blocked {
			mark(net)
		}
	}
	for key := range r.roundBlkTiles {
		for _, p := range r.passages[key] {
			mark(p.net)
		}
	}
	dirty := make([]bool, nNets)
	for net, g := range r.guides {
		if g == nil {
			continue
		}
		if _, ok := seed[find(int32(net))]; ok {
			dirty[net] = true
		}
	}
	return dirty
}

// ripUpForNextRound removes committed guides ahead of the next net-order
// adjustment round and returns how many it removed. With FullRipUp every
// guide goes; otherwise only the dirty closure (see dirtyClosure) is
// ripped, and the clean remainder stays committed (counted in KeptGuides)
// so the next round reroutes a subset. The dirty set is snapshotted before
// any rip-up: rip-ups stamp the resources they free, and folding those
// stamps back into the same round's test would be self-referential.
func (r *Router) ripUpForNextRound() int {
	ripped := 0
	if r.Opt.FullRipUp {
		for _, g := range r.guides {
			if g != nil {
				r.ripUp(g)
				ripped++
			}
		}
	} else {
		dirty := r.dirtyClosure()
		var rip []*Guide
		for net, g := range r.guides {
			if g == nil {
				continue
			}
			if dirty[net] {
				rip = append(rip, g)
			} else {
				r.kept++
			}
		}
		for _, g := range rip {
			r.ripUp(g)
		}
		ripped = len(rip)
	}
	clear(r.roundBlkNodes)
	clear(r.roundBlkLinks)
	clear(r.roundBlkTiles)
	return ripped
}

// GuideLength returns the nominal length of a guide (sum of link lengths).
func (r *Router) GuideLength(g *Guide) float64 {
	var sum float64
	for _, l := range g.Links {
		sum += r.G.Link(l).Len
	}
	return sum
}

// Sequences returns the net-sequence list of an edge node (storage order
// EndA→EndB). The returned slice is live; callers must not mutate it.
func (r *Router) Sequences(id rgraph.NodeID) []int { return r.seqs[id] }

// Guide returns the currently committed guide of a net, or nil.
func (r *Router) Guide(net int) *Guide {
	if net < 0 || net >= len(r.guides) {
		return nil
	}
	return r.guides[net]
}

// Usage returns the current node usage count.
func (r *Router) Usage(id rgraph.NodeID) int { return r.nodeUse[id] }

// LinkUsage returns the current link usage count.
func (r *Router) LinkUsage(id int) int { return r.linkUse[id] }

// CheckInvariants verifies internal consistency: usage matches the committed
// guides, sequences contain exactly the committed nets, and no capacity is
// exceeded. Intended for tests.
func (r *Router) CheckInvariants() error {
	nodeUse := make([]int, len(r.G.Nodes))
	linkUse := make([]int, len(r.G.Links))
	for _, g := range r.guides {
		if g == nil {
			continue
		}
		for _, id := range g.Nodes {
			if r.G.Node(id).Kind == rgraph.EdgeNode {
				nodeUse[id] += r.edgeUnits(g.Net)
			} else {
				nodeUse[id]++
			}
		}
		for _, l := range g.Links {
			if r.G.Link(l).Kind == rgraph.CrossTile {
				linkUse[l] += r.edgeUnits(g.Net)
			} else {
				linkUse[l]++
			}
		}
	}
	for id := range r.G.Nodes {
		if nodeUse[id] != r.nodeUse[id] {
			return fmt.Errorf("global: node %d usage %d, recomputed %d", id, r.nodeUse[id], nodeUse[id])
		}
		if r.nodeUse[id] > r.nodeCap(rgraph.NodeID(id)) {
			n := r.G.Node(rgraph.NodeID(id))
			return fmt.Errorf("global: node %d (%v layer %d) over capacity: %d > %d",
				id, n.Kind, n.Layer, r.nodeUse[id], r.nodeCap(rgraph.NodeID(id)))
		}
		if r.G.Nodes[id].Kind == rgraph.EdgeNode {
			want := 0
			for _, n := range r.seqs[id] {
				want += r.edgeUnits(n)
			}
			if want != nodeUse[id] {
				return fmt.Errorf("global: edge node %d sequence units %d, usage %d",
					id, want, nodeUse[id])
			}
		}
	}
	for id := range r.G.Links {
		if linkUse[id] != r.linkUse[id] {
			return fmt.Errorf("global: link %d usage %d, recomputed %d", id, r.linkUse[id], linkUse[id])
		}
		if r.linkUse[id] > r.G.Link(id).Cap {
			return fmt.Errorf("global: link %d over capacity: %d > %d", id, r.linkUse[id], r.G.Link(id).Cap)
		}
	}
	return nil
}

// netPinDist returns the Euclidean pin-to-pin distance of net ni.
func (r *Router) netPinDist(ni int) float64 {
	return r.G.Design.NetHPWL(r.G.Design.Nets[ni])
}
