// Package global implements the global-routing stage of the paper (§III-A):
// RUDY-based initial net ordering, crossing-aware A* search over the
// multi-layer routing graph with per-edge-node net-sequence lists, diagonal
// utility refinement (Eq. 3), and failure-count-driven net order adjustment.
//
// Its output is one routing guide per net: a non-crossing path of via nodes
// and edge nodes whose capacities (Eq. 1 and Eq. 2) are respected.
package global

import (
	"context"
	"fmt"
	"sort"

	"rdlroute/internal/obs"
	"rdlroute/internal/rgraph"
)

// Guide is the routing guide of one net: an alternating path of via nodes
// and edge nodes, with Links[i] the graph link between Nodes[i] and
// Nodes[i+1].
type Guide struct {
	Net   int
	Nodes []rgraph.NodeID
	Links []int
}

// Options tunes the global router.
type Options struct {
	// CongestionThreshold is the user-defined RUDY density above which a
	// tile counts as congested during initial net ordering. Zero selects
	// 0.5.
	CongestionThreshold float64
	// MaxOrderRounds bounds the net-order adjustment loop. Zero selects 8.
	MaxOrderRounds int
	// MaxExpansions bounds the A* state expansions per net. Zero selects
	// 400000.
	MaxExpansions int
	// DisableRUDYOrder skips congestion-based initial ordering and routes
	// nets in ID order (ablation).
	DisableRUDYOrder bool
	// DisableDiagonalRefinement skips the Eq. 3 refinement pass (ablation).
	DisableDiagonalRefinement bool
	// EdgeUsePerNet is how many capacity units each guide consumes on every
	// edge node it crosses. The default 1 is the paper's model; the AARF*
	// baseline uses 2 to emulate the resource waste of treating each routed
	// net as a hard constraint corridor in a rebuilt triangulation.
	EdgeUsePerNet int
	// AfterEachNet, when non-nil, runs after every successfully committed
	// net with that net's ID. The AARF* baseline re-triangulates every
	// layer here, paying the per-net mesh-rebuild cost the original
	// algorithm incurs.
	AfterEachNet func(net int)
	// Rec receives stage spans, counters and the per-net progress stream.
	// Nil selects the no-op recorder. Cancellation is the context passed
	// to Run (the paper's 1-hour wall-clock cutoff becomes a deadline).
	Rec obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.CongestionThreshold == 0 {
		o.CongestionThreshold = 0.5
	}
	if o.MaxOrderRounds == 0 {
		o.MaxOrderRounds = 8
	}
	if o.MaxExpansions == 0 {
		o.MaxExpansions = 400000
	}
	if o.EdgeUsePerNet == 0 {
		o.EdgeUsePerNet = 1
	}
	return o
}

// Result is the outcome of global routing.
type Result struct {
	// Guides holds one guide per net ID; nil entries are unrouted nets.
	Guides []*Guide
	// FailedNets lists net IDs that could not be routed.
	FailedNets []int
	// OrderRounds is the number of net-order adjustment rounds used.
	OrderRounds int
	// DiagonalReductions counts edge-node capacity reductions performed by
	// diagonal utility refinement.
	DiagonalReductions int
	// Expansions counts total A* state expansions.
	Expansions int
}

// Routability returns the fraction of nets routed, in [0, 1].
func (r *Result) Routability() float64 {
	if len(r.Guides) == 0 {
		return 1
	}
	routed := 0
	for _, g := range r.Guides {
		if g != nil {
			routed++
		}
	}
	return float64(routed) / float64(len(r.Guides))
}

// Router holds the mutable global-routing state over a routing graph.
type Router struct {
	G   *rgraph.Graph
	Opt Options
	rec obs.Recorder

	nodeUse []int
	linkUse []int
	// capOverride maps edge nodes whose capacity was reduced by diagonal
	// refinement to their new capacity.
	capOverride map[rgraph.NodeID]int
	// seqs holds, for each edge node, the ordered net IDs crossing it
	// (storage order: from Edge.A's position toward Edge.B's).
	seqs [][]int
	// passages holds the committed chords per tile.
	passages map[tileKey][]passage

	guides     []*Guide
	routed     int // committed-guide count, maintained by commit/ripUp
	expansions int
	heapPushes int
	ripUps     int
	// pcBuf is a scratch buffer for resolved passage coordinates, reused
	// across search expansions.
	pcBuf []chordCoords
}

// New creates a router over the graph.
func New(g *rgraph.Graph, opt Options) *Router {
	return &Router{
		G:           g,
		Opt:         opt.withDefaults(),
		rec:         obs.Or(opt.Rec),
		nodeUse:     make([]int, len(g.Nodes)),
		linkUse:     make([]int, len(g.Links)),
		capOverride: make(map[rgraph.NodeID]int),
		seqs:        make([][]int, len(g.Nodes)),
		passages:    make(map[tileKey][]passage),
		guides:      make([]*Guide, len(g.Design.Nets)),
	}
}

// edgeUnits returns the capacity units one guide of the net consumes on an
// edge node it crosses: the net's track width times the configured
// per-net usage factor.
func (r *Router) edgeUnits(net int) int {
	return r.G.Design.TrackUnits(net) * r.Opt.EdgeUsePerNet
}

// nodeCap returns the effective capacity of a node, honouring diagonal
// refinement reductions.
func (r *Router) nodeCap(id rgraph.NodeID) int {
	if c, ok := r.capOverride[id]; ok {
		return c
	}
	return r.G.Node(id).Cap
}

// Run executes the full global-routing flow and returns the guides. When
// ctx is cancelled or expires mid-run, routing stops between nets and Run
// returns the partial result together with ctx.Err(); the work committed so
// far stays valid (the paper's "report the best result so far" semantics).
func (r *Router) Run(ctx context.Context) (*Result, error) {
	span := obs.StartSpan(r.rec, "global")
	defer span.End()

	nets := r.G.Design.Nets
	orderSpan := obs.StartSpan(r.rec, "global.order")
	order := r.initialOrder(ctx)
	orderSpan.End()
	failCount := make([]int, len(nets))

	res := &Result{}
	astarSpan := obs.StartSpan(r.rec, "global.astar")
	progress := r.rec.Enabled()
	var lastFailed []int
	for round := 0; round < r.Opt.MaxOrderRounds; round++ {
		res.OrderRounds = round + 1
		lastFailed = lastFailed[:0]
		stopped := false
		for _, ni := range order {
			if obs.Stopped(ctx) {
				stopped = true
				break
			}
			if r.guides[ni] != nil {
				continue
			}
			g, err := r.route(nets[ni])
			if err != nil {
				failCount[ni]++
				lastFailed = append(lastFailed, ni)
				continue
			}
			r.commit(g)
			if r.Opt.AfterEachNet != nil {
				r.Opt.AfterEachNet(ni)
			}
			if progress {
				r.rec.Progress("global", r.routedCount(), len(nets))
			}
		}
		if stopped || len(lastFailed) == 0 {
			break
		}
		if round == r.Opt.MaxOrderRounds-1 {
			break // keep partial result; do not rip up on the last round
		}
		// Net order adjustment (§III-A3c): rip up everything and move nets
		// with larger failure counts to the front.
		for _, g := range r.guides {
			if g != nil {
				r.ripUp(g)
			}
		}
		for i := range r.guides {
			r.guides[i] = nil
		}
		sort.SliceStable(order, func(a, b int) bool {
			return failCount[order[a]] > failCount[order[b]]
		})
	}
	astarSpan.End()

	if !r.Opt.DisableDiagonalRefinement && !obs.Stopped(ctx) {
		refineSpan := obs.StartSpan(r.rec, "global.refine")
		res.DiagonalReductions = r.refineDiagonal(ctx)
		refineSpan.End()
	}

	res.Guides = append([]*Guide(nil), r.guides...)
	for ni, g := range r.guides {
		if g == nil {
			res.FailedNets = append(res.FailedNets, ni)
		}
	}
	sort.Ints(res.FailedNets)
	res.Expansions = r.expansions

	r.rec.Count("global.astar.expansions", int64(r.expansions))
	r.rec.Count("global.astar.heap_pushes", int64(r.heapPushes))
	r.rec.Count("global.ripups", int64(r.ripUps))
	r.rec.Count("global.order_rounds", int64(res.OrderRounds))
	r.rec.Count("global.refine.reductions", int64(res.DiagonalReductions))
	r.rec.Count("global.nets_routed", int64(len(res.Guides)-len(res.FailedNets)))
	r.rec.Count("global.nets_failed", int64(len(res.FailedNets)))

	if obs.Stopped(ctx) {
		return res, ctx.Err()
	}
	return res, nil
}

// routedCount returns how many nets currently hold a committed guide.
func (r *Router) routedCount() int { return r.routed }

// commit installs a found guide: bumps usage, inserts sequence positions,
// and records tile passages.
func (r *Router) commit(g *searchResult) {
	guide := &Guide{Net: g.net, Nodes: g.nodes, Links: g.links}
	for i, id := range g.nodes {
		if r.G.Node(id).Kind == rgraph.EdgeNode {
			r.nodeUse[id] += r.edgeUnits(g.net)
			gap := g.gaps[i]
			seq := r.seqs[id]
			if gap < 0 || gap > len(seq) {
				gap = len(seq)
			}
			r.seqs[id] = append(seq[:gap:gap], append([]int{g.net}, seq[gap:]...)...)
		} else {
			r.nodeUse[id]++
		}
	}
	for _, l := range g.links {
		if r.G.Link(l).Kind == rgraph.CrossTile {
			r.linkUse[l] += r.edgeUnits(g.net)
		} else {
			r.linkUse[l]++
		}
	}
	// Record passages per tile for crossing checks.
	for i, l := range g.links {
		link := r.G.Link(l)
		if link.Kind == rgraph.CrossVia {
			continue
		}
		tile := r.G.TileOf(link.Layer, link.Tile)
		p := passage{net: g.net}
		p.e1 = r.passageEndFor(tile, g.nodes[i])
		p.e2 = r.passageEndFor(tile, g.nodes[i+1])
		key := tileKey{link.Layer, link.Tile}
		r.passages[key] = append(r.passages[key], p)
	}
	r.guides[g.net] = guide
	r.routed++
}

// passageEndFor converts a path node into a stored passage endpoint within
// the tile.
func (r *Router) passageEndFor(tile *rgraph.Tile, id rgraph.NodeID) passageEnd {
	n := r.G.Node(id)
	if n.Kind == rgraph.ViaNode {
		return passageEnd{vertex: vertexOrdinal(tile, n.Vert), edge: -1}
	}
	return passageEnd{vertex: -1, edge: edgeOrdinal(tile, id)}
}

// ripUp removes a committed guide, releasing all resources.
func (r *Router) ripUp(guide *Guide) {
	for _, id := range guide.Nodes {
		if r.G.Node(id).Kind == rgraph.EdgeNode {
			r.nodeUse[id] -= r.edgeUnits(guide.Net)
			seq := r.seqs[id]
			for j, n := range seq {
				if n == guide.Net {
					r.seqs[id] = append(seq[:j], seq[j+1:]...)
					break
				}
			}
		} else {
			r.nodeUse[id]--
		}
	}
	for _, l := range guide.Links {
		link := r.G.Link(l)
		if link.Kind == rgraph.CrossTile {
			r.linkUse[l] -= r.edgeUnits(guide.Net)
		} else {
			r.linkUse[l]--
		}
		if link.Kind == rgraph.CrossVia {
			continue
		}
		key := tileKey{link.Layer, link.Tile}
		ps := r.passages[key]
		for j := range ps {
			if ps[j].net == guide.Net {
				r.passages[key] = append(ps[:j], ps[j+1:]...)
				break
			}
		}
	}
	r.guides[guide.Net] = nil
	r.routed--
	r.ripUps++
}

// GuideLength returns the nominal length of a guide (sum of link lengths).
func (r *Router) GuideLength(g *Guide) float64 {
	var sum float64
	for _, l := range g.Links {
		sum += r.G.Link(l).Len
	}
	return sum
}

// Sequences returns the net-sequence list of an edge node (storage order
// EndA→EndB). The returned slice is live; callers must not mutate it.
func (r *Router) Sequences(id rgraph.NodeID) []int { return r.seqs[id] }

// Guide returns the currently committed guide of a net, or nil.
func (r *Router) Guide(net int) *Guide {
	if net < 0 || net >= len(r.guides) {
		return nil
	}
	return r.guides[net]
}

// Usage returns the current node usage count.
func (r *Router) Usage(id rgraph.NodeID) int { return r.nodeUse[id] }

// LinkUsage returns the current link usage count.
func (r *Router) LinkUsage(id int) int { return r.linkUse[id] }

// CheckInvariants verifies internal consistency: usage matches the committed
// guides, sequences contain exactly the committed nets, and no capacity is
// exceeded. Intended for tests.
func (r *Router) CheckInvariants() error {
	nodeUse := make([]int, len(r.G.Nodes))
	linkUse := make([]int, len(r.G.Links))
	for _, g := range r.guides {
		if g == nil {
			continue
		}
		for _, id := range g.Nodes {
			if r.G.Node(id).Kind == rgraph.EdgeNode {
				nodeUse[id] += r.edgeUnits(g.Net)
			} else {
				nodeUse[id]++
			}
		}
		for _, l := range g.Links {
			if r.G.Link(l).Kind == rgraph.CrossTile {
				linkUse[l] += r.edgeUnits(g.Net)
			} else {
				linkUse[l]++
			}
		}
	}
	for id := range r.G.Nodes {
		if nodeUse[id] != r.nodeUse[id] {
			return fmt.Errorf("global: node %d usage %d, recomputed %d", id, r.nodeUse[id], nodeUse[id])
		}
		if r.nodeUse[id] > r.nodeCap(rgraph.NodeID(id)) {
			n := r.G.Node(rgraph.NodeID(id))
			return fmt.Errorf("global: node %d (%v layer %d) over capacity: %d > %d",
				id, n.Kind, n.Layer, r.nodeUse[id], r.nodeCap(rgraph.NodeID(id)))
		}
		if r.G.Nodes[id].Kind == rgraph.EdgeNode {
			want := 0
			for _, n := range r.seqs[id] {
				want += r.edgeUnits(n)
			}
			if want != nodeUse[id] {
				return fmt.Errorf("global: edge node %d sequence units %d, usage %d",
					id, want, nodeUse[id])
			}
		}
	}
	for id := range r.G.Links {
		if linkUse[id] != r.linkUse[id] {
			return fmt.Errorf("global: link %d usage %d, recomputed %d", id, r.linkUse[id], linkUse[id])
		}
		if r.linkUse[id] > r.G.Link(id).Cap {
			return fmt.Errorf("global: link %d over capacity: %d > %d", id, r.linkUse[id], r.G.Link(id).Cap)
		}
	}
	return nil
}

// netPinDist returns the Euclidean pin-to-pin distance of net ni.
func (r *Router) netPinDist(ni int) float64 {
	return r.G.Design.NetHPWL(r.G.Design.Nets[ni])
}
