package global

import (
	"rdlroute/internal/rgraph"
)

// Topological crossing machinery.
//
// Each guide segment inside a tile is a chord between two points of the tile
// boundary. The boundary is the cyclic sequence
//
//	V0, E0, V1, E1, V2, E2
//
// where Ei is the tile edge joining Vi and V(i+1)%3. Two chords cross if and
// only if their endpoints interleave in this cyclic order. Committed guides
// occupy integer positions inside each edge's net-sequence list; a guide
// being searched occupies a *gap* between two committed positions, so its
// coordinates are always strictly between committed ones and ties cannot
// occur. This realizes the paper's net-sequence lists: maintaining the
// correct order of nets on the boundary of every tile guarantees a
// non-crossing guide topology (§III-A3a).

// boundaryEnd is one chord endpoint on a tile boundary.
type boundaryEnd struct {
	// vertex is the corner ordinal (0..2) for endpoints at tile corners, or
	// -1 for endpoints on a tile edge.
	vertex int
	// edge is the edge ordinal (0..2) for endpoints on a tile edge.
	edge int
	// item is the committed position in the edge's net sequence, in the
	// edge's own storage order (EndA→EndB); -1 when gap is used instead.
	item int
	// gap is the insertion gap (0..len(seq)) in storage order; -1 when item
	// is used.
	gap int
}

func vertexEnd(ordinal int) boundaryEnd {
	return boundaryEnd{vertex: ordinal, edge: -1, item: -1, gap: -1}
}

func itemEnd(edgeOrdinal, item int) boundaryEnd {
	return boundaryEnd{vertex: -1, edge: edgeOrdinal, item: item, gap: -1}
}

func gapEnd(edgeOrdinal, gap int) boundaryEnd {
	return boundaryEnd{vertex: -1, edge: edgeOrdinal, item: -1, gap: gap}
}

// coord maps a boundary endpoint to a scalar in the cyclic domain [0, 6):
// vertex i sits at 2i, and positions on edge i spread strictly inside
// (2i, 2i+2). Items map to (j+1)/(m+1) fractions and gaps to half-offsets
// between them, so a gap coordinate never equals an item coordinate.
//
// Reading len(seqs[en]) is a read of the edge node's mutable state, so it
// is recorded in the scratch read set: a commit through the node shifts
// every coordinate on that edge even when this tile's passage list is
// untouched (the commit stamps only the tiles it adds passages to, and an
// edge borders two tiles).
func (r *Router) coord(sc *searchScratch, tile *rgraph.Tile, e boundaryEnd) float64 {
	if e.vertex >= 0 {
		return float64(2 * e.vertex)
	}
	en := tile.EdgeNodes[e.edge]
	node := r.G.Node(en)
	sc.readNode(en)
	m := len(r.seqs[en])
	// Storage order runs EndA→EndB where Edge.A < Edge.B. The boundary
	// traversal runs Verts[e.edge] → Verts[(e.edge+1)%3]; flip when the
	// boundary start is not Edge.A.
	sameDir := tile.Verts[e.edge] == node.Edge.A
	var frac float64
	if e.item >= 0 {
		if sameDir {
			frac = float64(e.item+1) / float64(m+1)
		} else {
			frac = float64(m-e.item) / float64(m+1)
		}
	} else {
		if sameDir {
			frac = (float64(e.gap) + 0.5) / float64(m+1)
		} else {
			frac = (float64(m-e.gap) + 0.5) / float64(m+1)
		}
	}
	return float64(2*e.edge) + 2*frac
}

// inOpenArc reports whether x lies strictly inside the cyclic arc from a to
// b traversed in increasing coordinate direction (domain [0, 6)).
func inOpenArc(x, a, b float64) bool {
	if a < b {
		return x > a && x < b
	}
	return x > a || x < b
}

// chordsCross reports whether chords (a1, a2) and (b1, b2) interleave.
// Chords sharing an endpoint (exactly equal coordinates, which only arise
// from consecutive hops of one guide meeting at a node) never properly
// cross.
func chordsCross(a1, a2, b1, b2 float64) bool {
	if a1 == b1 || a1 == b2 || a2 == b1 || a2 == b2 {
		return false
	}
	in1 := inOpenArc(b1, a1, a2)
	in2 := inOpenArc(b2, a1, a2)
	return in1 != in2
}

// passage is one committed guide chord through a tile.
type passage struct {
	net int
	// Ends in boundaryEnd form. Edge endpoints are stored WITHOUT a
	// position (item = -1): the net's current index in the edge sequence is
	// looked up at query time, because later insertions shift it.
	e1, e2 passageEnd
}

type passageEnd struct {
	vertex int // corner ordinal or -1
	edge   int // edge ordinal or -1
}

// resolve converts a stored passage endpoint to a boundaryEnd with the
// net's current sequence position filled in. The sequence walk is a read of
// the edge node's mutable state and lands in the scratch read set (see
// coord).
func (r *Router) resolve(sc *searchScratch, tile *rgraph.Tile, pe passageEnd, net int) (boundaryEnd, bool) {
	if pe.vertex >= 0 {
		return vertexEnd(pe.vertex), true
	}
	en := tile.EdgeNodes[pe.edge]
	sc.readNode(en)
	for j, n := range r.seqs[en] {
		if n == net {
			return itemEnd(pe.edge, j), true
		}
	}
	return boundaryEnd{}, false
}

// tileKey identifies a tile globally.
type tileKey struct{ layer, tri int }

// chordCoords is the resolved coordinate pair of one committed passage.
type chordCoords struct{ c1, c2 float64 }

// passageCoords resolves every committed passage of the tile that belongs
// to an electrically different net into boundary coordinates, into the
// scratch pcBuf. The search hoists this out of its per-gap loops: resolving
// a passage walks its edge sequences, which would otherwise repeat for
// every candidate gap. The tile's passage list is mutable state, so the
// tile lands in the scratch read set.
//
//rdl:noalloc
func (r *Router) passageCoords(sc *searchScratch, net int, tile *rgraph.Tile) {
	sc.pcBuf = sc.pcBuf[:0]
	sc.readTile(tileKey{tile.Layer, tile.Tri})
	ps := r.passages[tileKey{tile.Layer, tile.Tri}]
	for _, p := range ps {
		if r.G.Design.SameGroup(p.net, net) {
			continue
		}
		c1, ok1 := r.resolve(sc, tile, p.e1, p.net)
		c2, ok2 := r.resolve(sc, tile, p.e2, p.net)
		if !ok1 || !ok2 {
			continue // stale passage; defensive, should not happen
		}
		sc.pcBuf = append(sc.pcBuf, chordCoords{r.coord(sc, tile, c1), r.coord(sc, tile, c2)})
	}
}

// chordAllowedCoords reports whether the query chord (q1, q2) crosses any of
// the pre-resolved passages.
//
//rdl:noalloc
func chordAllowedCoords(q1, q2 float64, pcs []chordCoords) bool {
	for _, pc := range pcs {
		if chordsCross(q1, q2, pc.c1, pc.c2) {
			return false
		}
	}
	return true
}

// chordAllowed reports whether a query chord (from, to) of the given net
// through the tile crosses any committed passage of an electrically
// different net (same-group passages are the same net and may cross
// freely).
//
//rdl:noalloc
func (r *Router) chordAllowed(sc *searchScratch, net int, tile *rgraph.Tile, from, to boundaryEnd) bool {
	r.passageCoords(sc, net, tile)
	if len(sc.pcBuf) == 0 {
		return true
	}
	return chordAllowedCoords(r.coord(sc, tile, from), r.coord(sc, tile, to), sc.pcBuf)
}

// vertexOrdinal returns the ordinal (0..2) of the mesh vertex v within the
// tile, or -1.
func vertexOrdinal(tile *rgraph.Tile, v int) int {
	for i, tv := range tile.Verts {
		if tv == v {
			return i
		}
	}
	return -1
}

// edgeOrdinal returns the ordinal (0..2) of the edge node within the tile,
// or -1.
func edgeOrdinal(tile *rgraph.Tile, en rgraph.NodeID) int {
	for i, te := range tile.EdgeNodes {
		if te == en {
			return i
		}
	}
	return -1
}
