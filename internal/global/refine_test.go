package global

import (
	"context"
	"testing"

	"rdlroute/internal/rgraph"
)

// findInteriorEdge returns an interior (two-tile) edge node of layer 0 with
// positive capacity, plus the opposite vertices of its two tiles.
func findInteriorEdge(t *testing.T, r *Router) (rgraph.NodeID, [2]int, [2]int) {
	t.Helper()
	lg := &r.G.Layers[0]
	for _, e := range lg.Mesh.Edges() {
		tris, ok := lg.Mesh.EdgeTriangles(e)
		if !ok || tris[1] == -1 {
			continue
		}
		en := lg.EdgeNode[e]
		if r.G.Node(en).Cap < 2 {
			continue
		}
		vi, okI := lg.Mesh.OppositeVertex(tris[0], e)
		vj, okJ := lg.Mesh.OppositeVertex(tris[1], e)
		if !okI || !okJ {
			continue
		}
		return en, [2]int{tris[0], tris[1]}, [2]int{vi, vj}
	}
	t.Fatal("no interior edge found")
	return rgraph.Invalid, [2]int{}, [2]int{}
}

func TestDiagonalViolationDetection(t *testing.T) {
	// White-box: inflate the usage counters around one interior edge until
	// Eq. 3 trips, and verify the detector sees exactly that situation. The
	// synthetic dense suite never drives usage close enough to the diagonal
	// bound for the violation to occur organically (EXPERIMENTS.md notes
	// this), so the mechanism is pinned down here.
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{})
	if got := r.DiagonalViolations(); got != 0 {
		t.Fatalf("fresh router reports %d violations", got)
	}

	en, tris, verts := findInteriorEdge(t, r)
	lg := &r.G.Layers[0]
	d := lg.Mesh.Points[verts[0]].Dist(lg.Mesh.Points[verts[1]])
	pitch := r.G.Design.Rules.Pitch()
	// Eq. 3 is violated when (U1 + U2 + Υ + 1) · pitch ≥ d. Load the edge
	// node itself with just enough usage.
	need := int(d/pitch) + 1
	r.nodeUse[en] = need
	if got := r.DiagonalViolations(); got == 0 {
		t.Fatalf("no violation with usage %d against diagonal %.1f (pitch %.1f)", need, d, pitch)
	}
	// One unit below the bound must be clean again.
	r.nodeUse[en] = 0
	if got := r.DiagonalViolations(); got != 0 {
		t.Fatalf("violations linger after reset: %d", got)
	}

	// Corner usage counts too: load the cross-tile links wrapping the two
	// opposite vertices instead of the edge itself.
	tile0 := r.G.TileOf(0, tris[0])
	tile1 := r.G.TileOf(0, tris[1])
	ord0 := vertexOrdinal(tile0, verts[0])
	ord1 := vertexOrdinal(tile1, verts[1])
	if ord0 == -1 || ord1 == -1 {
		t.Fatal("opposite vertices not found in tiles")
	}
	half := need/2 + 1
	r.linkUse[tile0.CrossLinks[ord0]] = half
	r.linkUse[tile1.CrossLinks[ord1]] = half
	if got := r.DiagonalViolations(); got == 0 {
		t.Fatal("corner usage alone should also trip Eq. 3")
	}
	r.linkUse[tile0.CrossLinks[ord0]] = 0
	r.linkUse[tile1.CrossLinks[ord1]] = 0
}

func TestRefineDiagonalReducesCapacityAndReroutes(t *testing.T) {
	// Route dense1 fully, then force an Eq. 3 violation on an edge node a
	// real guide passes through and let the refinement loop fix it by
	// reducing the capacity and rerouting the victims.
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{})
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Routability() != 1 {
		t.Fatal("precondition: full routability")
	}
	// Find an edge node used by at least one guide and shrink its diagonal
	// bound artificially by inflating the corner link usages of its tiles.
	var victim rgraph.NodeID = rgraph.Invalid
	lg := &r.G.Layers[0]
	var tris [2]int
	var verts [2]int
	for _, e := range lg.Mesh.Edges() {
		ts, ok := lg.Mesh.EdgeTriangles(e)
		if !ok || ts[1] == -1 {
			continue
		}
		en := lg.EdgeNode[e]
		if r.nodeUse[en] == 0 {
			continue
		}
		vi, okI := lg.Mesh.OppositeVertex(ts[0], e)
		vj, okJ := lg.Mesh.OppositeVertex(ts[1], e)
		if !okI || !okJ {
			continue
		}
		victim = en
		tris = [2]int{ts[0], ts[1]}
		verts = [2]int{vi, vj}
		break
	}
	if victim == rgraph.Invalid {
		t.Skip("no used interior edge on layer 0")
	}
	d := lg.Mesh.Points[verts[0]].Dist(lg.Mesh.Points[verts[1]])
	pitch := r.G.Design.Rules.Pitch()
	tile0 := r.G.TileOf(0, tris[0])
	ord0 := vertexOrdinal(tile0, verts[0])
	inflate := int(d/pitch) + 1
	r.linkUse[tile0.CrossLinks[ord0]] += inflate

	if r.DiagonalViolations() == 0 {
		t.Fatal("setup failed to create a violation")
	}
	reductions := r.refineDiagonal(context.Background())
	if reductions == 0 {
		t.Fatal("refinement did nothing")
	}
	if _, ok := r.capOverride[victim]; !ok {
		t.Error("victim edge capacity not reduced")
	}
	// The rerouted state must stay structurally consistent (note: the
	// artificial link inflation is external to the guides, so only check
	// sequence/usage agreement for real guides).
	r.linkUse[tile0.CrossLinks[ord0]] -= inflate
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
