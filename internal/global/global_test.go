package global

import (
	"context"
	"errors"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// buildRouter assembles the full stack for a benchmark design.
func buildRouter(t testing.TB, name string, gopt rgraph.Options, opt Options) *Router {
	t.Helper()
	d, err := design.GenerateDense(name)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := viaplan.Build(d, viaplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rgraph.Build(d, plan, gopt)
	if err != nil {
		t.Fatal(err)
	}
	return New(g, opt)
}

func TestRouteDense1FullRoutability(t *testing.T) {
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{})
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Routability(); got != 1 {
		t.Fatalf("routability = %v, failed nets %v", got, res.FailedNets)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every guide starts and ends at its net's pins.
	for ni, g := range res.Guides {
		net := r.G.Design.Nets[ni]
		src, dst, err := r.G.NetPins(net)
		if err != nil {
			t.Fatal(err)
		}
		if g.Nodes[0] != src {
			t.Errorf("net %d guide starts at %d, want %d", ni, g.Nodes[0], src)
		}
		if g.Nodes[len(g.Nodes)-1] != dst {
			t.Errorf("net %d guide ends at %d, want %d", ni, g.Nodes[len(g.Nodes)-1], dst)
		}
		if len(g.Links) != len(g.Nodes)-1 {
			t.Errorf("net %d guide has %d links for %d nodes", ni, len(g.Links), len(g.Nodes))
		}
	}
}

func TestGuidesDoNotCross(t *testing.T) {
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{})
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// For every tile, all pairs of committed passages must not interleave.
	for key, ps := range r.passages {
		tile := r.G.TileOf(key.layer, key.tri)
		for i := 0; i < len(ps); i++ {
			e1a, ok1 := r.resolve(r.scr, tile, ps[i].e1, ps[i].net)
			e1b, ok2 := r.resolve(r.scr, tile, ps[i].e2, ps[i].net)
			if !ok1 || !ok2 {
				t.Fatalf("tile %v: passage %d unresolvable", key, i)
			}
			a1, a2 := r.coord(r.scr, tile, e1a), r.coord(r.scr, tile, e1b)
			for j := i + 1; j < len(ps); j++ {
				if ps[j].net == ps[i].net {
					continue // same-net crossings are legal (no spacing rule)
				}
				e2a, ok3 := r.resolve(r.scr, tile, ps[j].e1, ps[j].net)
				e2b, ok4 := r.resolve(r.scr, tile, ps[j].e2, ps[j].net)
				if !ok3 || !ok4 {
					t.Fatalf("tile %v: passage %d unresolvable", key, j)
				}
				b1, b2 := r.coord(r.scr, tile, e2a), r.coord(r.scr, tile, e2b)
				if chordsCross(a1, a2, b1, b2) {
					t.Fatalf("tile %v: nets %d and %d cross (coords %v-%v vs %v-%v)",
						key, ps[i].net, ps[j].net, a1, a2, b1, b2)
				}
			}
		}
	}
}

func TestGuidePathStructure(t *testing.T) {
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{})
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for ni, g := range res.Guides {
		if g == nil {
			continue
		}
		for i, l := range g.Links {
			link := r.G.Link(l)
			a, b := g.Nodes[i], g.Nodes[i+1]
			if !(link.A == a && link.B == b) && !(link.A == b && link.B == a) {
				t.Fatalf("net %d: link %d does not join nodes %d-%d", ni, l, a, b)
			}
		}
		// No node repeats.
		seen := map[rgraph.NodeID]bool{}
		for _, n := range g.Nodes {
			if seen[n] {
				t.Fatalf("net %d revisits node %d", ni, n)
			}
			seen[n] = true
		}
		// Via nodes used mid-path are real vias entered and left correctly.
		for i := 1; i+1 < len(g.Nodes); i++ {
			n := r.G.Node(g.Nodes[i])
			if n.Kind != rgraph.ViaNode {
				continue
			}
			if n.VertKind != viaplan.KindVia {
				t.Fatalf("net %d passes through non-via vertex kind %v", ni, n.VertKind)
			}
			prev := r.G.Link(g.Links[i-1]).Kind
			next := r.G.Link(g.Links[i]).Kind
			if prev == next {
				t.Fatalf("net %d enters and leaves via by the same link kind %v", ni, prev)
			}
		}
	}
}

func TestDiagonalViolationsCleared(t *testing.T) {
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{})
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v := r.DiagonalViolations(); v != 0 {
		t.Errorf("diagonal violations after refinement = %d, want 0", v)
	}
}

func TestRipUpRestoresState(t *testing.T) {
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{})
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Rip up every guide; all usage must return to zero.
	for _, g := range res.Guides {
		if g != nil {
			r.ripUp(r.guides[g.Net])
		}
	}
	for id, u := range r.nodeUse {
		if u != 0 {
			t.Fatalf("node %d usage %d after full rip-up", id, u)
		}
	}
	for id, u := range r.linkUse {
		if u != 0 {
			t.Fatalf("link %d usage %d after full rip-up", id, u)
		}
	}
	for id, s := range r.seqs {
		if len(s) != 0 {
			t.Fatalf("edge node %d sequence %v after full rip-up", id, s)
		}
	}
	for key, ps := range r.passages {
		if len(ps) != 0 {
			t.Fatalf("tile %v passages %v after full rip-up", key, ps)
		}
	}
}

func TestNaiveOrderStillRoutes(t *testing.T) {
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{DisableRUDYOrder: true})
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Routability() < 0.9 {
		t.Errorf("naive-order routability = %v, want ≥ 0.9", res.Routability())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestContextCancelAborts(t *testing.T) {
	// Cancel mid-global-route (after the second committed net): Run must
	// return the partial result together with ctx.Err(), and every
	// committed guide must still satisfy the invariants.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	committed := 0
	var r *Router
	r = buildRouter(t, "dense1", rgraph.Options{}, Options{
		AfterEachNet: func(int) {
			committed++
			if committed == 2 {
				cancel()
			}
		},
	})
	res, err := r.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancellation must still return the partial result")
	}
	if got := len(res.Guides) - len(res.FailedNets); got != 2 {
		t.Errorf("routed %d nets before cancel, want exactly 2", got)
	}
	if res.Routability() == 1 {
		t.Error("cancelled run must not reach full routability")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPreCancelledContextRoutesNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{})
	res, err := r.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := len(res.Guides) - len(res.FailedNets); n != 0 {
		t.Errorf("pre-cancelled run routed %d nets, want 0", n)
	}
}

func TestGuideLength(t *testing.T) {
	r := buildRouter(t, "dense1", rgraph.Options{}, Options{})
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for ni, g := range res.Guides {
		if g == nil {
			continue
		}
		l := r.GuideLength(g)
		hp := r.netPinDist(ni)
		if l <= 0 {
			t.Errorf("net %d guide length %v", ni, l)
		}
		// A guide is never shorter than ~the pin distance minus slack from
		// node-midpoint geometry. Allow generous slack; the point is sanity.
		if l < hp/3 {
			t.Errorf("net %d guide length %v implausibly below pin distance %v", ni, l, hp)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []float64 {
		r := buildRouter(t, "dense1", rgraph.Options{}, Options{})
		res, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(res.Guides))
		for ni, g := range res.Guides {
			if g != nil {
				out[ni] = r.GuideLength(g)
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("net %d guide length differs between runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResultRoutabilityEmpty(t *testing.T) {
	r := &Result{}
	if r.Routability() != 1 {
		t.Error("empty result should report full routability")
	}
}
