package global

import (
	"context"

	"rdlroute/internal/obs"
	"rdlroute/internal/pool"
	"rdlroute/internal/rgraph"
)

// Speculative parallel multi-net routing.
//
// The round loop commits nets strictly in order — the net order is the
// algorithm's highest-leverage variable, so parallelism must not perturb
// it. Instead of reordering, the driver speculates: it takes a window of
// upcoming nets predicted not to interfere, runs their A* searches
// concurrently on worker-owned scratches against the frozen router state,
// and then walks the window in canonical order deciding each net's fate at
// its own turn.
//
// Correctness rests on read-set validation, not on the interference
// prediction. Every search records the mutable resources it consulted —
// node usage and sequence lists, link usage, tile passage lists — in its
// scratch read set. A search is a deterministic function of those reads:
// if none of them changed between the batch snapshot and the net's
// canonical turn, the speculative result (success or failure, including
// the recorded blocked set) is byte-for-byte what a serial search at that
// turn would have produced, so it is committed (or its failure folded)
// directly. If any read resource was touched by an earlier commit, the
// speculation is discarded and the net re-searched serially on the
// canonical scratch. By induction over commits the committed state after
// every net equals the serial state, for any worker count.
//
// The interference groups only size the window: nets whose standalone
// ordering-seed paths (predTiles, captured during RUDY ordering) share a
// tile are grouped by union-find, and a window never holds two nets of one
// group. A good prediction raises the hit rate; a wrong one costs a
// discarded search, never a wrong result.

// specWindowFactor scales the speculation window: up to workers ×
// specWindowFactor nets search per batch. Deeper windows amortize the pool
// barrier but speculate further ahead of the committed state, where
// validation failures grow likelier.
const specWindowFactor = 4

// specOutcome is one speculative search plus everything the canonical turn
// needs: the copied read set to validate against, the copied blocked set to
// fold on a validated failure, and the work counters to credit on a hit or
// write off on a miss. Slices are freshly copied out of the worker scratch
// — the scratch's own lists are overwritten by the worker's next search.
type specOutcome struct {
	ni  int
	res *searchResult // nil when the speculative search failed

	expansions int
	heapPushes int

	rdNodes []rgraph.NodeID
	rdLinks []int
	rdTiles []tileKey

	blkNodes []rgraph.NodeID
	blkLinks []int
	blkTiles []tileKey
}

// buildSpecGroups unions nets whose predicted tile footprints overlap and
// stores each net's group root in specGroup. Nets without a seed path
// (standalone route failed, or RUDY ordering disabled) keep singleton
// groups: the prediction is only a scheduling heuristic, and validation
// catches any real conflict.
func (r *Router) buildSpecGroups() {
	n := len(r.guides)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	owner := make([]int32, r.tileBase[len(r.G.Layers)])
	for i := range owner {
		owner[i] = -1
	}
	for ni, tiles := range r.predTiles {
		for _, key := range tiles {
			ti := r.tileBase[key.layer] + int32(key.tri)
			if owner[ti] < 0 {
				owner[ti] = int32(ni)
				continue
			}
			ra, rb := find(int32(ni)), find(owner[ti])
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	r.specGroup = make([]int32, n)
	for i := range r.specGroup {
		r.specGroup[i] = find(int32(i))
	}
}

// nextSpecWindow collects the longest run of pending nets starting at
// order[start] whose interference groups are pairwise distinct, up to max
// nets. It cuts *before* the first group clash rather than skipping past
// it: the window must stay a contiguous prefix of the pending order so
// that committing its nets front-to-back is exactly the serial commit
// order. Returns the window (appended to win) and the order index to
// resume scanning from.
func (r *Router) nextSpecWindow(order []int, start, max int, win []int) ([]int, int) {
	j := start
	for ; j < len(order) && len(win) < max; j++ {
		ni := order[j]
		if r.guides[ni] != nil {
			continue
		}
		g := r.specGroup[ni]
		clash := false
		for _, w := range win {
			if r.specGroup[w] == g {
				clash = true
				break
			}
		}
		if clash {
			break
		}
		win = append(win, ni)
	}
	return win, j
}

// specSearch runs one speculative search on a worker scratch and snapshots
// everything its canonical turn will need. Read-only with respect to the
// router: all mutation lands in the scratch, so searches on distinct
// scratches race-free share the frozen router state.
func (r *Router) specSearch(sc *searchScratch, ni int) specOutcome {
	g, err := r.route(sc, r.G.Design.Nets[ni])
	out := specOutcome{
		ni:         ni,
		expansions: sc.expansions,
		heapPushes: sc.heapPushes,
		rdNodes:    append([]rgraph.NodeID(nil), sc.rdNodes...),
		rdLinks:    append([]int(nil), sc.rdLinks...),
		rdTiles:    append([]tileKey(nil), sc.rdTiles...),
	}
	if err != nil {
		out.blkNodes = append([]rgraph.NodeID(nil), sc.blkNodes...)
		out.blkLinks = append([]int(nil), sc.blkLinks...)
		out.blkTiles = append([]tileKey(nil), sc.blkTiles...)
		return out
	}
	// The gaps slice aliases the scratch; the worker's next search would
	// overwrite it before the canonical turn reads it.
	g.gaps = append([]int(nil), g.gaps...)
	out.res = g
	return out
}

// specSearchWindow fans the window out over the worker pool in contiguous
// chunks — one scratch per chunk, nets within a chunk searched in order —
// and returns the outcomes in window order.
func (r *Router) specSearchWindow(win []int, workers int) []specOutcome {
	chunks := workers
	if chunks > len(win) {
		chunks = len(win)
	}
	for len(r.specScr) < chunks {
		r.specScr = append(r.specScr, newSearchScratch(r.G))
	}
	units := make([]func() []specOutcome, chunks)
	quo, rem := len(win)/chunks, len(win)%chunks
	lo := 0
	for c := 0; c < chunks; c++ {
		hi := lo + quo
		if c < rem {
			hi++
		}
		part, sc := win[lo:hi], r.specScr[c]
		units[c] = func() []specOutcome {
			outs := make([]specOutcome, 0, len(part))
			for _, ni := range part {
				outs = append(outs, r.specSearch(sc, ni))
			}
			return outs
		}
		lo = hi
	}
	parts := pool.Run(units, workers)
	outs := make([]specOutcome, 0, len(win))
	for _, p := range parts {
		outs = append(outs, p...)
	}
	return outs
}

// specValid reports whether an outcome's read set is untouched since the
// batch snapshot: every commit and rip-up stamps the resources it changes
// with the advancing change clock, so any stamp past snap means a resource
// this search consulted no longer holds the value it saw.
func (r *Router) specValid(o *specOutcome, snap int64) bool {
	for _, id := range o.rdNodes {
		if r.nodeStamp[id] > snap {
			return false
		}
	}
	for _, l := range o.rdLinks {
		if r.linkStamp[l] > snap {
			return false
		}
	}
	for _, key := range o.rdTiles {
		if r.tileStamp[r.tileBase[key.layer]+int32(key.tri)] > snap {
			return false
		}
	}
	return true
}

// routeRoundSpec routes one ordering round speculatively. Identical
// observable behaviour to routeRoundSerial — committed guides, sequence
// lists, failure bookkeeping, blocked sets and work counters — with the
// searches of each window overlapped on the worker pool.
func (r *Router) routeRoundSpec(ctx context.Context, order, failCount []int,
	lastFailed *[]int, progress bool, workers int) (stopped bool) {
	win := make([]int, 0, workers*specWindowFactor)
	for i := 0; i < len(order); {
		if obs.Stopped(ctx) {
			return true
		}
		var next int
		win, next = r.nextSpecWindow(order, i, workers*specWindowFactor, win[:0])
		i = next
		if len(win) == 0 {
			continue // span held only already-routed nets
		}
		if len(win) == 1 {
			r.routeOne(win[0], failCount, lastFailed, progress)
			continue
		}
		snap := r.clock
		outs := r.specSearchWindow(win, workers)
		for k := range outs {
			if obs.Stopped(ctx) {
				return true
			}
			o := &outs[k]
			if !r.specValid(o, snap) {
				// An earlier commit touched this search's reads: the
				// speculation may diverge from serial, so discard it and
				// re-search at the canonical turn.
				r.specMisses++
				r.specWasted += o.expansions
				r.routeOne(o.ni, failCount, lastFailed, progress)
				continue
			}
			r.specHits++
			r.expansions += o.expansions
			r.heapPushes += o.heapPushes
			if o.res == nil {
				// Validated failure: the serial search would have explored
				// the identical states and failed with the identical
				// blocked set.
				r.foldBlocked(o.blkNodes, o.blkLinks, o.blkTiles)
				failCount[o.ni]++
				*lastFailed = append(*lastFailed, o.ni)
				continue
			}
			r.commit(o.res)
			if progress {
				r.rec.Progress("global", r.routed, len(r.G.Design.Nets))
			}
		}
	}
	return false
}
