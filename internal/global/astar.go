package global

import (
	"container/heap"
	"errors"
	"fmt"

	"rdlroute/internal/design"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// ErrUnroutable is wrapped by route errors when the crossing-aware A* cannot
// reach the target within capacity and topology constraints.
var ErrUnroutable = errors.New("global: net unroutable")

// searchResult is an uncommitted guide: the node path, links, and the
// sequence insertion gap chosen at every edge node.
type searchResult struct {
	net   int
	nodes []rgraph.NodeID
	links []int
	gaps  []int
}

// stateKey identifies a crossing-aware search state. Edge-node states carry
// the insertion gap in the node's net-sequence list (the paper's "record the
// left and right guides next to the processing guide"); via-node states
// carry whether the via was reached through a cross-via link, which
// restricts how it may be left.
type stateKey struct {
	node      rgraph.NodeID
	gap       int16
	viaArrive bool
}

type searchState struct {
	key    stateKey
	g, f   float64
	parent int // arena index of predecessor, -1 for start
	link   int // link traversed to arrive, -1 for start
}

// stateHeap is a min-heap over arena indices ordered by f.
type stateHeap struct {
	arena *[]searchState
	idx   []int
}

func (h stateHeap) Len() int { return len(h.idx) }
func (h stateHeap) Less(i, j int) bool {
	a := &(*h.arena)[h.idx[i]]
	b := &(*h.arena)[h.idx[j]]
	return a.f < b.f
}
func (h stateHeap) Swap(i, j int)       { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *stateHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *stateHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// route runs crossing-aware A* for one net and returns an uncommitted guide.
func (r *Router) route(net design.Net) (*searchResult, error) {
	src, dst, err := r.G.NetPins(net)
	if err != nil {
		return nil, err
	}
	dstPos := r.G.Node(dst).Pos

	arena := make([]searchState, 0, 1024)
	open := &stateHeap{arena: &arena}
	best := make(map[stateKey]float64)

	push := func(key stateKey, g float64, parent, link int) {
		if prev, ok := best[key]; ok && prev <= g {
			return
		}
		best[key] = g
		h := r.G.Node(key.node).Pos.Dist(dstPos)
		arena = append(arena, searchState{key: key, g: g, f: g + h, parent: parent, link: link})
		heap.Push(open, len(arena)-1)
		r.heapPushes++
	}

	start := stateKey{node: src, gap: -1}
	push(start, 0, -1, -1)

	expanded := 0
	for open.Len() > 0 {
		si := heap.Pop(open).(int)
		st := arena[si]
		if st.g > best[st.key] {
			continue // stale heap entry
		}
		if st.key.node == dst {
			res, ok := r.reconstruct(net.ID, arena, si)
			if ok {
				return res, nil
			}
			continue // self-intersecting path; keep searching
		}
		expanded++
		r.expansions++
		if expanded > r.Opt.MaxExpansions {
			break
		}

		node := r.G.Node(st.key.node)
		if node.Kind == rgraph.ViaNode {
			r.expandVia(st, si, net.ID, push)
		} else {
			r.expandEdge(st, si, net.ID, dst, push)
		}
	}
	return nil, fmt.Errorf("net %d (%s): %w", net.ID, net.Name, ErrUnroutable)
}

// expandVia expands a via-node state. A via entered through an access-via
// link must be left through its cross-via link (the wire descends or
// ascends); a via entered through a cross-via link must be left through an
// access-via link. The start pin may use anything available.
func (r *Router) expandVia(st searchState, si, net int,
	push func(stateKey, float64, int, int)) {
	arrivedCross := st.key.viaArrive
	isStart := st.link == -1
	for _, adj := range r.G.Adj[st.key.node] {
		link := r.G.Link(adj.Link)
		switch link.Kind {
		case rgraph.CrossVia:
			if !isStart && arrivedCross {
				continue // no double layer hop through one via pair
			}
			if r.linkUse[adj.Link] >= link.Cap {
				continue
			}
			if r.nodeUse[adj.To] >= r.nodeCap(adj.To) {
				continue
			}
			push(stateKey{node: adj.To, gap: -1, viaArrive: true}, st.g+link.Len, si, adj.Link)
		case rgraph.AccessVia:
			if !isStart && !arrivedCross {
				continue // entered by wire; must take the via down/up
			}
			if r.linkUse[adj.Link] >= link.Cap {
				continue
			}
			r.pushChordToEdge(st, si, net, adj, link, push)
		}
	}
}

// expandEdge expands an edge-node state through its cross-tile and
// access-via links, enumerating crossing-free insertion gaps.
func (r *Router) expandEdge(st searchState, si, net int, dst rgraph.NodeID,
	push func(stateKey, float64, int, int)) {
	for _, adj := range r.G.Adj[st.key.node] {
		link := r.G.Link(adj.Link)
		if r.linkUse[adj.Link] >= link.Cap {
			continue
		}
		tile := r.G.TileOf(link.Layer, link.Tile)
		fromOrd := edgeOrdinal(tile, st.key.node)
		if fromOrd == -1 {
			continue // defensive: link tile does not contain the node
		}
		from := gapEnd(fromOrd, int(st.key.gap))
		switch link.Kind {
		case rgraph.AccessVia:
			// adj.To is the via node (link.A is always the via end).
			if r.nodeUse[adj.To] >= r.nodeCap(adj.To) {
				continue
			}
			// Foreign pins are never intermediate hops.
			if to := r.G.Node(adj.To); to.VertKind == viaplan.KindPin && adj.To != dst &&
				!r.G.Design.SameGroup(r.G.Design.IOPads[to.Ref].Net, net) {
				continue
			}
			vOrd := vertexOrdinal(tile, r.G.Node(adj.To).Vert)
			if vOrd == -1 {
				continue
			}
			if !r.chordAllowed(net, tile, from, vertexEnd(vOrd)) {
				continue
			}
			push(stateKey{node: adj.To, gap: -1, viaArrive: false}, st.g+link.Len, si, adj.Link)
		case rgraph.CrossTile:
			units := r.edgeUnits(net)
			if r.nodeUse[adj.To]+units > r.nodeCap(adj.To) {
				continue
			}
			if r.linkUse[adj.Link]+units > link.Cap {
				continue
			}
			toOrd := edgeOrdinal(tile, adj.To)
			if toOrd == -1 {
				continue
			}
			m := len(r.seqs[adj.To])
			r.pcBuf = r.passageCoords(net, tile, r.pcBuf)
			q1 := r.coord(tile, from)
			for g2 := 0; g2 <= m; g2++ {
				if !chordAllowedCoords(q1, r.coord(tile, gapEnd(toOrd, g2)), r.pcBuf) {
					continue
				}
				push(stateKey{node: adj.To, gap: int16(g2)}, st.g+link.Len, si, adj.Link)
			}
		}
	}
}

// pushChordToEdge pushes states entering an edge node from a via node,
// trying every crossing-free insertion gap.
func (r *Router) pushChordToEdge(st searchState, si, net int,
	adj rgraph.Adjacent, link *rgraph.Link, push func(stateKey, float64, int, int)) {
	if r.nodeUse[adj.To]+r.edgeUnits(net) > r.nodeCap(adj.To) {
		return
	}
	tile := r.G.TileOf(link.Layer, link.Tile)
	vOrd := vertexOrdinal(tile, r.G.Node(st.key.node).Vert)
	eOrd := edgeOrdinal(tile, adj.To)
	if vOrd == -1 || eOrd == -1 {
		return
	}
	m := len(r.seqs[adj.To])
	r.pcBuf = r.passageCoords(net, tile, r.pcBuf)
	q1 := r.coord(tile, vertexEnd(vOrd))
	for g2 := 0; g2 <= m; g2++ {
		if !chordAllowedCoords(q1, r.coord(tile, gapEnd(eOrd, g2)), r.pcBuf) {
			continue
		}
		push(stateKey{node: adj.To, gap: int16(g2)}, st.g+link.Len, si, adj.Link)
	}
}

// reconstruct walks the arena parents back to the start. It reports false
// when the path visits any node twice (a self-intersecting guide, which the
// commit machinery does not support).
func (r *Router) reconstruct(net int, arena []searchState, goal int) (*searchResult, bool) {
	var nodes []rgraph.NodeID
	var links []int
	var gaps []int
	for i := goal; i != -1; i = arena[i].parent {
		nodes = append(nodes, arena[i].key.node)
		gaps = append(gaps, int(arena[i].key.gap))
		if arena[i].link != -1 {
			links = append(links, arena[i].link)
		}
	}
	// Reverse in place.
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
		gaps[i], gaps[j] = gaps[j], gaps[i]
	}
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	seen := make(map[rgraph.NodeID]bool, len(nodes))
	for _, n := range nodes {
		if seen[n] {
			return nil, false
		}
		seen[n] = true
	}
	// Note: a path may revisit a tile and topologically cross its own
	// earlier chord there. That is deliberately allowed: the minimum-spacing
	// rule of §II-B applies only between different nets, so a guide crossing
	// itself is electrically and DRC-legal (merely suboptimal, which the
	// shortest-path objective already discourages).
	return &searchResult{net: net, nodes: nodes, links: links, gaps: gaps}, true
}
