package global

import (
	"errors"
	"fmt"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/pq"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// ErrUnroutable is wrapped by route errors when the crossing-aware A* cannot
// reach the target within capacity and topology constraints.
var ErrUnroutable = errors.New("global: net unroutable")

// searchResult is an uncommitted guide: the node path, links, and the
// sequence insertion gap chosen at every edge node. The gaps slice aliases
// scratch storage and is only valid until the owning scratch's next route
// call; nodes and links are freshly allocated because commit keeps them in
// the Guide.
type searchResult struct {
	net   int
	nodes []rgraph.NodeID
	links []int
	gaps  []int
}

// stateKey identifies a crossing-aware search state. Edge-node states carry
// the insertion gap in the node's net-sequence list (the paper's "record the
// left and right guides next to the processing guide"); via-node states
// carry whether the via was reached through a cross-via link, which
// restricts how it may be left.
type stateKey struct {
	node      rgraph.NodeID
	gap       int16
	viaArrive bool
}

type searchState struct {
	key    stateKey
	g, f   float64
	parent int32 // arena index of predecessor, -1 for start
	link   int32 // link traversed to arrive, -1 for start
}

// heapItem is one open-list entry: the f value is stored inline so the heap
// comparator never chases the arena, and the index is a plain int32 so
// pushes and pops do not box through interface{} the way container/heap
// does.
type heapItem struct {
	f   float64
	idx int32
}

// searchScratch owns every buffer the crossing-aware A* needs, so repeated
// route calls — the rip-up rounds and diagonal-refinement reroutes are many
// thousands of searches on dense designs — allocate nothing beyond the
// result path itself. A scratch is single-owner state: the router's
// canonical scratch serves the serial reference path, and the speculative
// parallel stage gives each pool worker its own, which is what lets
// searches for different nets run concurrently against the shared
// (frozen) router state without any locking.
//
// The best-cost scoreboard is dense: every reachable state key maps to a
// fixed slot (via nodes get two slots, one per viaArrive flavour; edge nodes
// get Cap+1 slots, one per insertion gap, because a sequence of length m
// needs gaps 0..m and m never exceeds the node capacity). A generation
// counter stamps slot validity so clearing the scoreboard between searches
// is one integer increment, not an O(slots) wipe.
//
// Beyond the A* buffers the scratch records two resource sets per search,
// both stamp-deduplicated against the per-search serial:
//
//   - the blocked set — nodes, links and tiles where a capacity or crossing
//     check rejected an expansion; on failure the caller folds it into the
//     round-level sets that seed incremental rip-up;
//   - the read set — every node, link and tile whose *mutable* state
//     (usage, net-sequence list, passage list) the search consulted. The
//     search is a deterministic function of those reads, so a speculative
//     result is exactly what the serial search would have produced if and
//     only if none of the read resources changed in the meantime. That is
//     the validation test the speculative commit path applies.
type searchScratch struct {
	slotBase []int32 // per node: first scoreboard slot
	bestG    []float64
	bestGen  []uint32
	gen      uint32

	arena []searchState
	open  *pq.Heap[heapItem]

	// seen and seenGen implement reconstruct's node-revisit check without a
	// per-call map.
	seen    []uint32
	seenGen uint32

	// gapsBuf backs searchResult.gaps; the caller consumes the gaps before
	// this scratch's next search overwrites them.
	gapsBuf []int

	// dstPos is the heuristic target of the search in flight.
	dstPos geom.Point

	// pcBuf is a scratch buffer for resolved passage coordinates, reused
	// across search expansions.
	pcBuf []chordCoords

	// tileBase maps tileKey{layer, tri} to the dense tile index
	// tileBase[layer]+tri used by the per-tile stamp arrays.
	tileBase []int32

	// Per-search work counters, reset by begin. The caller folds them into
	// the router totals (serial path) or the speculation ledger (parallel
	// path), so the router's reported totals stay byte-identical to the
	// serial reference for any worker count.
	expansions int
	heapPushes int

	// serial stamps one search; the blocked and read recorders dedup
	// against it.
	serial int64

	// Blocked-resource recording (see type comment).
	blkNodeStamp []int64
	blkLinkStamp []int64
	blkTileStamp []int64
	blkNodes     []rgraph.NodeID
	blkLinks     []int
	blkTiles     []tileKey

	// Read-set recording (see type comment).
	rdNodeStamp []int64
	rdLinkStamp []int64
	rdTileStamp []int64
	rdNodes     []rgraph.NodeID
	rdLinks     []int
	rdTiles     []tileKey
}

// graphTileBase computes the dense tile indexing shared by the router's
// tile change-stamps and every scratch: tile (layer, tri) lives at
// base[layer]+tri, and base[len(layers)] is the total tile count.
func graphTileBase(g *rgraph.Graph) []int32 {
	base := make([]int32, len(g.Layers)+1)
	var total int32
	for li := range g.Layers {
		base[li] = total
		total += int32(len(g.Layers[li].Mesh.Tris))
	}
	base[len(g.Layers)] = total
	return base
}

// newSearchScratch sizes the scoreboard and recorder arrays for a graph.
func newSearchScratch(g *rgraph.Graph) *searchScratch {
	tb := graphTileBase(g)
	nTiles := int(tb[len(g.Layers)])
	s := &searchScratch{
		slotBase: make([]int32, len(g.Nodes)+1),
		seen:     make([]uint32, len(g.Nodes)),
		open:     pq.New(func(a, b heapItem) bool { return a.f < b.f }),
		tileBase: tb,

		blkNodeStamp: make([]int64, len(g.Nodes)),
		blkLinkStamp: make([]int64, len(g.Links)),
		blkTileStamp: make([]int64, nTiles),
		rdNodeStamp:  make([]int64, len(g.Nodes)),
		rdLinkStamp:  make([]int64, len(g.Links)),
		rdTileStamp:  make([]int64, nTiles),
	}
	var slots int32
	for id := range g.Nodes {
		s.slotBase[id] = slots
		if g.Nodes[id].Kind == rgraph.EdgeNode {
			// Gap 0..Cap: each committed sequence entry consumes at least
			// one capacity unit, so len(seq) ≤ Cap and every insertion gap
			// fits.
			slots += int32(g.Nodes[id].Cap) + 1
		} else {
			slots += 2 // viaArrive false / true
		}
	}
	s.slotBase[len(g.Nodes)] = slots
	s.bestG = make([]float64, slots)
	s.bestGen = make([]uint32, slots)
	return s
}

// slot maps a state key to its scoreboard slot.
//
//rdl:noalloc
func (s *searchScratch) slot(key stateKey) int32 {
	base := s.slotBase[key.node]
	if key.gap >= 0 {
		return base + int32(key.gap)
	}
	if key.viaArrive {
		return base + 1
	}
	return base
}

// tileIndex maps a tile key to its dense index.
//
//rdl:noalloc
func (s *searchScratch) tileIndex(k tileKey) int32 {
	return s.tileBase[k.layer] + int32(k.tri)
}

// begin readies the scratch for one search: new scoreboard generation, new
// recording serial, empty arena, open list, blocked and read sets, zeroed
// work counters.
//
//rdl:noalloc
func (s *searchScratch) begin(dstPos geom.Point) {
	s.gen++
	if s.gen == 0 { // generation counter wrapped: invalidate explicitly
		for i := range s.bestGen {
			s.bestGen[i] = 0
		}
		s.gen = 1
	}
	s.arena = s.arena[:0]
	s.open.Reset()
	s.dstPos = dstPos
	s.expansions = 0
	s.heapPushes = 0
	s.serial++
	s.blkNodes = s.blkNodes[:0]
	s.blkLinks = s.blkLinks[:0]
	s.blkTiles = s.blkTiles[:0]
	s.rdNodes = s.rdNodes[:0]
	s.rdLinks = s.rdLinks[:0]
	s.rdTiles = s.rdTiles[:0]
}

// readNode records that the search consulted node id's mutable state (its
// usage count or net-sequence list), deduplicated per search by stamp.
//
//rdl:noalloc
func (s *searchScratch) readNode(id rgraph.NodeID) {
	if s.rdNodeStamp[id] != s.serial {
		s.rdNodeStamp[id] = s.serial
		s.rdNodes = append(s.rdNodes, id)
	}
}

// readLink records that the search consulted link id's usage.
//
//rdl:noalloc
func (s *searchScratch) readLink(id int) {
	if s.rdLinkStamp[id] != s.serial {
		s.rdLinkStamp[id] = s.serial
		s.rdLinks = append(s.rdLinks, id)
	}
}

// readTile records that the search consulted a tile's passage list.
//
//rdl:noalloc
func (s *searchScratch) readTile(key tileKey) {
	if i := s.tileIndex(key); s.rdTileStamp[i] != s.serial {
		s.rdTileStamp[i] = s.serial
		s.rdTiles = append(s.rdTiles, key)
	}
}

// blockNode records a node whose capacity rejected an expansion of the
// search in flight (deduplicated per search by stamp).
//
//rdl:noalloc
func (s *searchScratch) blockNode(id rgraph.NodeID) {
	if s.blkNodeStamp[id] != s.serial {
		s.blkNodeStamp[id] = s.serial
		s.blkNodes = append(s.blkNodes, id)
	}
}

// blockLink records a link whose capacity rejected an expansion.
//
//rdl:noalloc
func (s *searchScratch) blockLink(id int) {
	if s.blkLinkStamp[id] != s.serial {
		s.blkLinkStamp[id] = s.serial
		s.blkLinks = append(s.blkLinks, id)
	}
}

// blockTile records a tile where a crossing check rejected a chord.
//
//rdl:noalloc
func (s *searchScratch) blockTile(key tileKey) {
	if i := s.tileIndex(key); s.blkTileStamp[i] != s.serial {
		s.blkTileStamp[i] = s.serial
		s.blkTiles = append(s.blkTiles, key)
	}
}

// push relaxes a state: admits it when it improves on the scoreboard and
// appends it to the arena and open list.
//
//rdl:noalloc
func (r *Router) push(sc *searchScratch, key stateKey, g float64, parent, link int32) {
	slot := sc.slot(key)
	if sc.bestGen[slot] == sc.gen && sc.bestG[slot] <= g {
		return
	}
	sc.bestGen[slot] = sc.gen
	sc.bestG[slot] = g
	f := g + r.G.Node(key.node).Pos.Dist(sc.dstPos)
	sc.arena = append(sc.arena, searchState{key: key, g: g, f: f, parent: parent, link: link})
	sc.open.Push(heapItem{f: f, idx: int32(len(sc.arena) - 1)})
	sc.heapPushes++
}

// route runs crossing-aware A* for one net on the given scratch and returns
// an uncommitted guide. It mutates only the scratch — router state is read
// but never written — so searches on distinct scratches may run
// concurrently as long as nothing commits meanwhile. On failure the
// caller decides whether to fold the scratch's blocked set into the
// round-level sets (noteSearchFailed); route itself no longer does.
//
//rdl:noalloc
func (r *Router) route(sc *searchScratch, net design.Net) (*searchResult, error) {
	src, dst, err := r.G.NetPins(net)
	if err != nil {
		// Reset the scratch so the caller's counter/blocked-set fold sees
		// an empty search rather than the previous search's leftovers.
		sc.begin(geom.Point{})
		return nil, err
	}
	sc.begin(r.G.Node(dst).Pos)

	r.push(sc, stateKey{node: src, gap: -1}, 0, -1, -1)

	expanded := 0
	for sc.open.Len() > 0 {
		si := sc.open.Pop().idx
		st := sc.arena[si]
		if st.g > sc.bestG[sc.slot(st.key)] {
			continue // stale heap entry
		}
		if st.key.node == dst {
			res, ok := r.reconstruct(sc, net.ID, si)
			if ok {
				return res, nil
			}
			continue // self-intersecting path; keep searching
		}
		expanded++
		sc.expansions++
		if expanded > r.Opt.MaxExpansions {
			break
		}

		node := r.G.Node(st.key.node)
		if node.Kind == rgraph.ViaNode {
			r.expandVia(sc, st, si, net.ID)
		} else {
			r.expandEdge(sc, st, si, net.ID, dst)
		}
	}
	//rdl:allow noalloc failure path only: the error is built after the search is already lost, never per expansion
	return nil, fmt.Errorf("net %d (%s): %w", net.ID, net.Name, ErrUnroutable)
}

// expandVia expands a via-node state. A via entered through an access-via
// link must be left through its cross-via link (the wire descends or
// ascends); a via entered through a cross-via link must be left through an
// access-via link. The start pin may use anything available.
//
//rdl:noalloc
func (r *Router) expandVia(sc *searchScratch, st searchState, si int32, net int) {
	arrivedCross := st.key.viaArrive
	isStart := st.link == -1
	for _, adj := range r.G.Adj[st.key.node] {
		link := r.G.Link(adj.Link)
		switch link.Kind {
		case rgraph.CrossVia:
			if !isStart && arrivedCross {
				continue // no double layer hop through one via pair
			}
			// Per-net layer constraint: a static design property, checked
			// before the capacity reads so it never enters the read set.
			if !r.G.LayerAllowed(net, r.G.Node(adj.To).Layer) {
				continue
			}
			sc.readLink(adj.Link)
			if r.linkUse[adj.Link] >= link.Cap {
				sc.blockLink(adj.Link)
				continue
			}
			sc.readNode(adj.To)
			if r.nodeUse[adj.To] >= r.nodeCap(adj.To) {
				sc.blockNode(adj.To)
				continue
			}
			r.push(sc, stateKey{node: adj.To, gap: -1, viaArrive: true}, st.g+link.Len, si, int32(adj.Link))
		case rgraph.AccessVia:
			if !isStart && !arrivedCross {
				continue // entered by wire; must take the via down/up
			}
			sc.readLink(adj.Link)
			if r.linkUse[adj.Link] >= link.Cap {
				sc.blockLink(adj.Link)
				continue
			}
			r.pushChordToEdge(sc, st, si, net, adj, link)
		}
	}
}

// expandEdge expands an edge-node state through its cross-tile and
// access-via links, enumerating crossing-free insertion gaps.
//
//rdl:noalloc
func (r *Router) expandEdge(sc *searchScratch, st searchState, si int32, net int, dst rgraph.NodeID) {
	for _, adj := range r.G.Adj[st.key.node] {
		link := r.G.Link(adj.Link)
		sc.readLink(adj.Link)
		if r.linkUse[adj.Link] >= link.Cap {
			sc.blockLink(adj.Link)
			continue
		}
		tile := r.G.TileOf(link.Layer, link.Tile)
		fromOrd := edgeOrdinal(tile, st.key.node)
		if fromOrd == -1 {
			continue // defensive: link tile does not contain the node
		}
		from := gapEnd(fromOrd, int(st.key.gap))
		switch link.Kind {
		case rgraph.AccessVia:
			// adj.To is the via node (link.A is always the via end).
			sc.readNode(adj.To)
			if r.nodeUse[adj.To] >= r.nodeCap(adj.To) {
				sc.blockNode(adj.To)
				continue
			}
			// Foreign pins are never intermediate hops.
			if to := r.G.Node(adj.To); to.VertKind == viaplan.KindPin && adj.To != dst &&
				!r.G.Design.SameGroup(r.G.Design.IOPads[to.Ref].Net, net) {
				continue
			}
			vOrd := vertexOrdinal(tile, r.G.Node(adj.To).Vert)
			if vOrd == -1 {
				continue
			}
			if !r.chordAllowed(sc, net, tile, from, vertexEnd(vOrd)) {
				sc.blockTile(tileKey{link.Layer, link.Tile})
				continue
			}
			r.push(sc, stateKey{node: adj.To, gap: -1, viaArrive: false}, st.g+link.Len, si, int32(adj.Link))
		case rgraph.CrossTile:
			units := r.edgeUnits(net)
			sc.readNode(adj.To)
			if r.nodeUse[adj.To]+units > r.nodeCap(adj.To) {
				sc.blockNode(adj.To)
				continue
			}
			if r.linkUse[adj.Link]+units > link.Cap {
				sc.blockLink(adj.Link)
				continue
			}
			toOrd := edgeOrdinal(tile, adj.To)
			if toOrd == -1 {
				continue
			}
			m := len(r.seqs[adj.To])
			r.passageCoords(sc, net, tile)
			q1 := r.coord(sc, tile, from)
			for g2 := 0; g2 <= m; g2++ {
				if !chordAllowedCoords(q1, r.coord(sc, tile, gapEnd(toOrd, g2)), sc.pcBuf) {
					sc.blockTile(tileKey{link.Layer, link.Tile})
					continue
				}
				r.push(sc, stateKey{node: adj.To, gap: int16(g2)}, st.g+link.Len, si, int32(adj.Link))
			}
		}
	}
}

// pushChordToEdge pushes states entering an edge node from a via node,
// trying every crossing-free insertion gap.
//
//rdl:noalloc
func (r *Router) pushChordToEdge(sc *searchScratch, st searchState, si int32, net int,
	adj rgraph.Adjacent, link *rgraph.Link) {
	sc.readNode(adj.To)
	if r.nodeUse[adj.To]+r.edgeUnits(net) > r.nodeCap(adj.To) {
		sc.blockNode(adj.To)
		return
	}
	tile := r.G.TileOf(link.Layer, link.Tile)
	vOrd := vertexOrdinal(tile, r.G.Node(st.key.node).Vert)
	eOrd := edgeOrdinal(tile, adj.To)
	if vOrd == -1 || eOrd == -1 {
		return
	}
	m := len(r.seqs[adj.To])
	r.passageCoords(sc, net, tile)
	q1 := r.coord(sc, tile, vertexEnd(vOrd))
	for g2 := 0; g2 <= m; g2++ {
		if !chordAllowedCoords(q1, r.coord(sc, tile, gapEnd(eOrd, g2)), sc.pcBuf) {
			sc.blockTile(tileKey{link.Layer, link.Tile})
			continue
		}
		r.push(sc, stateKey{node: adj.To, gap: int16(g2)}, st.g+link.Len, si, int32(adj.Link))
	}
}

// reconstruct walks the arena parents back to the start. It reports false
// when the path visits any node twice (a self-intersecting guide, which the
// commit machinery does not support). The revisit check reuses the scratch
// seen stamps instead of allocating a map per call.
//
//rdl:noalloc
func (r *Router) reconstruct(sc *searchScratch, net int, goal int32) (*searchResult, bool) {
	arena := sc.arena
	n := 0
	for i := goal; i != -1; i = arena[i].parent {
		n++
	}
	//rdl:allow noalloc the result path is budget alloc 1 of 4: commit keeps nodes in the Guide, so they cannot alias scratch
	nodes := make([]rgraph.NodeID, n)
	//rdl:allow noalloc the result path is budget alloc 2 of 4: commit keeps links in the Guide, so they cannot alias scratch
	links := make([]int, n-1)
	if cap(sc.gapsBuf) < n {
		//rdl:allow noalloc gapsBuf growth is amortized: it reallocates only while the longest path seen keeps growing
		sc.gapsBuf = make([]int, n)
	}
	gaps := sc.gapsBuf[:n]

	sc.seenGen++
	if sc.seenGen == 0 {
		for i := range sc.seen {
			sc.seen[i] = 0
		}
		sc.seenGen = 1
	}
	k := n - 1
	for i := goal; i != -1; i = arena[i].parent {
		st := &arena[i]
		if sc.seen[st.key.node] == sc.seenGen {
			return nil, false
		}
		sc.seen[st.key.node] = sc.seenGen
		nodes[k] = st.key.node
		gaps[k] = int(st.key.gap)
		if st.link != -1 {
			links[k-1] = int(st.link)
		}
		k--
	}
	// Note: a path may revisit a tile and topologically cross its own
	// earlier chord there. That is deliberately allowed: the minimum-spacing
	// rule of §II-B applies only between different nets, so a guide crossing
	// itself is electrically and DRC-legal (merely suboptimal, which the
	// shortest-path objective already discourages).
	//rdl:allow noalloc result header is budget alloc 3 of 4 pinned by TestRouteSearchDoesNotAllocate
	return &searchResult{net: net, nodes: nodes, links: links, gaps: gaps}, true
}
