package global

import (
	"errors"
	"fmt"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/pq"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// ErrUnroutable is wrapped by route errors when the crossing-aware A* cannot
// reach the target within capacity and topology constraints.
var ErrUnroutable = errors.New("global: net unroutable")

// searchResult is an uncommitted guide: the node path, links, and the
// sequence insertion gap chosen at every edge node. The gaps slice aliases
// router scratch and is only valid until the next route call; nodes and
// links are freshly allocated because commit keeps them in the Guide.
type searchResult struct {
	net   int
	nodes []rgraph.NodeID
	links []int
	gaps  []int
}

// stateKey identifies a crossing-aware search state. Edge-node states carry
// the insertion gap in the node's net-sequence list (the paper's "record the
// left and right guides next to the processing guide"); via-node states
// carry whether the via was reached through a cross-via link, which
// restricts how it may be left.
type stateKey struct {
	node      rgraph.NodeID
	gap       int16
	viaArrive bool
}

type searchState struct {
	key    stateKey
	g, f   float64
	parent int32 // arena index of predecessor, -1 for start
	link   int32 // link traversed to arrive, -1 for start
}

// heapItem is one open-list entry: the f value is stored inline so the heap
// comparator never chases the arena, and the index is a plain int32 so
// pushes and pops do not box through interface{} the way container/heap
// does.
type heapItem struct {
	f   float64
	idx int32
}

// searchScratch owns every buffer the crossing-aware A* needs, so repeated
// route calls — the rip-up rounds and diagonal-refinement reroutes are many
// thousands of searches on dense designs — allocate nothing beyond the
// result path itself.
//
// The best-cost scoreboard is dense: every reachable state key maps to a
// fixed slot (via nodes get two slots, one per viaArrive flavour; edge nodes
// get Cap+1 slots, one per insertion gap, because a sequence of length m
// needs gaps 0..m and m never exceeds the node capacity). A generation
// counter stamps slot validity so clearing the scoreboard between searches
// is one integer increment, not an O(slots) wipe.
type searchScratch struct {
	slotBase []int32 // per node: first scoreboard slot
	bestG    []float64
	bestGen  []uint32
	gen      uint32

	arena []searchState
	open  *pq.Heap[heapItem]

	// seen and seenGen implement reconstruct's node-revisit check without a
	// per-call map.
	seen    []uint32
	seenGen uint32

	// gapsBuf backs searchResult.gaps; commit consumes the gaps before the
	// next search overwrites them.
	gapsBuf []int

	// dstPos is the heuristic target of the search in flight.
	dstPos geom.Point
}

// newSearchScratch sizes the scoreboard for a graph.
func newSearchScratch(g *rgraph.Graph) *searchScratch {
	s := &searchScratch{
		slotBase: make([]int32, len(g.Nodes)+1),
		seen:     make([]uint32, len(g.Nodes)),
		open:     pq.New(func(a, b heapItem) bool { return a.f < b.f }),
	}
	var slots int32
	for id := range g.Nodes {
		s.slotBase[id] = slots
		if g.Nodes[id].Kind == rgraph.EdgeNode {
			// Gap 0..Cap: each committed sequence entry consumes at least
			// one capacity unit, so len(seq) ≤ Cap and every insertion gap
			// fits.
			slots += int32(g.Nodes[id].Cap) + 1
		} else {
			slots += 2 // viaArrive false / true
		}
	}
	s.slotBase[len(g.Nodes)] = slots
	s.bestG = make([]float64, slots)
	s.bestGen = make([]uint32, slots)
	return s
}

// slot maps a state key to its scoreboard slot.
//
//rdl:noalloc
func (s *searchScratch) slot(key stateKey) int32 {
	base := s.slotBase[key.node]
	if key.gap >= 0 {
		return base + int32(key.gap)
	}
	if key.viaArrive {
		return base + 1
	}
	return base
}

// begin readies the scratch for one search.
//
//rdl:noalloc
func (s *searchScratch) begin(dstPos geom.Point) {
	s.gen++
	if s.gen == 0 { // generation counter wrapped: invalidate explicitly
		for i := range s.bestGen {
			s.bestGen[i] = 0
		}
		s.gen = 1
	}
	s.arena = s.arena[:0]
	s.open.Reset()
	s.dstPos = dstPos
}

// push relaxes a state: admits it when it improves on the scoreboard and
// appends it to the arena and open list.
//
//rdl:noalloc
func (r *Router) push(key stateKey, g float64, parent, link int32) {
	s := r.scr
	slot := s.slot(key)
	if s.bestGen[slot] == s.gen && s.bestG[slot] <= g {
		return
	}
	s.bestGen[slot] = s.gen
	s.bestG[slot] = g
	f := g + r.G.Node(key.node).Pos.Dist(s.dstPos)
	s.arena = append(s.arena, searchState{key: key, g: g, f: f, parent: parent, link: link})
	s.open.Push(heapItem{f: f, idx: int32(len(s.arena) - 1)})
	r.heapPushes++
}

// route runs crossing-aware A* for one net and returns an uncommitted guide.
//
//rdl:noalloc
func (r *Router) route(net design.Net) (*searchResult, error) {
	src, dst, err := r.G.NetPins(net)
	if err != nil {
		return nil, err
	}
	s := r.scr
	s.begin(r.G.Node(dst).Pos)
	r.beginBlockRecording()

	r.push(stateKey{node: src, gap: -1}, 0, -1, -1)

	expanded := 0
	for s.open.Len() > 0 {
		si := s.open.Pop().idx
		st := s.arena[si]
		if st.g > s.bestG[s.slot(st.key)] {
			continue // stale heap entry
		}
		if st.key.node == dst {
			res, ok := r.reconstruct(net.ID, si)
			if ok {
				return res, nil
			}
			continue // self-intersecting path; keep searching
		}
		expanded++
		r.expansions++
		if expanded > r.Opt.MaxExpansions {
			break
		}

		node := r.G.Node(st.key.node)
		if node.Kind == rgraph.ViaNode {
			r.expandVia(st, si, net.ID)
		} else {
			r.expandEdge(st, si, net.ID, dst)
		}
	}
	r.noteSearchFailed()
	//rdl:allow noalloc failure path only: the error is built after the search is already lost, never per expansion
	return nil, fmt.Errorf("net %d (%s): %w", net.ID, net.Name, ErrUnroutable)
}

// expandVia expands a via-node state. A via entered through an access-via
// link must be left through its cross-via link (the wire descends or
// ascends); a via entered through a cross-via link must be left through an
// access-via link. The start pin may use anything available.
//
//rdl:noalloc
func (r *Router) expandVia(st searchState, si int32, net int) {
	arrivedCross := st.key.viaArrive
	isStart := st.link == -1
	for _, adj := range r.G.Adj[st.key.node] {
		link := r.G.Link(adj.Link)
		switch link.Kind {
		case rgraph.CrossVia:
			if !isStart && arrivedCross {
				continue // no double layer hop through one via pair
			}
			if r.linkUse[adj.Link] >= link.Cap {
				r.blockLink(adj.Link)
				continue
			}
			if r.nodeUse[adj.To] >= r.nodeCap(adj.To) {
				r.blockNode(adj.To)
				continue
			}
			r.push(stateKey{node: adj.To, gap: -1, viaArrive: true}, st.g+link.Len, si, int32(adj.Link))
		case rgraph.AccessVia:
			if !isStart && !arrivedCross {
				continue // entered by wire; must take the via down/up
			}
			if r.linkUse[adj.Link] >= link.Cap {
				r.blockLink(adj.Link)
				continue
			}
			r.pushChordToEdge(st, si, net, adj, link)
		}
	}
}

// expandEdge expands an edge-node state through its cross-tile and
// access-via links, enumerating crossing-free insertion gaps.
//
//rdl:noalloc
func (r *Router) expandEdge(st searchState, si int32, net int, dst rgraph.NodeID) {
	for _, adj := range r.G.Adj[st.key.node] {
		link := r.G.Link(adj.Link)
		if r.linkUse[adj.Link] >= link.Cap {
			r.blockLink(adj.Link)
			continue
		}
		tile := r.G.TileOf(link.Layer, link.Tile)
		fromOrd := edgeOrdinal(tile, st.key.node)
		if fromOrd == -1 {
			continue // defensive: link tile does not contain the node
		}
		from := gapEnd(fromOrd, int(st.key.gap))
		switch link.Kind {
		case rgraph.AccessVia:
			// adj.To is the via node (link.A is always the via end).
			if r.nodeUse[adj.To] >= r.nodeCap(adj.To) {
				r.blockNode(adj.To)
				continue
			}
			// Foreign pins are never intermediate hops.
			if to := r.G.Node(adj.To); to.VertKind == viaplan.KindPin && adj.To != dst &&
				!r.G.Design.SameGroup(r.G.Design.IOPads[to.Ref].Net, net) {
				continue
			}
			vOrd := vertexOrdinal(tile, r.G.Node(adj.To).Vert)
			if vOrd == -1 {
				continue
			}
			if !r.chordAllowed(net, tile, from, vertexEnd(vOrd)) {
				r.blockTile(tileKey{link.Layer, link.Tile})
				continue
			}
			r.push(stateKey{node: adj.To, gap: -1, viaArrive: false}, st.g+link.Len, si, int32(adj.Link))
		case rgraph.CrossTile:
			units := r.edgeUnits(net)
			if r.nodeUse[adj.To]+units > r.nodeCap(adj.To) {
				r.blockNode(adj.To)
				continue
			}
			if r.linkUse[adj.Link]+units > link.Cap {
				r.blockLink(adj.Link)
				continue
			}
			toOrd := edgeOrdinal(tile, adj.To)
			if toOrd == -1 {
				continue
			}
			m := len(r.seqs[adj.To])
			r.pcBuf = r.passageCoords(net, tile, r.pcBuf)
			q1 := r.coord(tile, from)
			for g2 := 0; g2 <= m; g2++ {
				if !chordAllowedCoords(q1, r.coord(tile, gapEnd(toOrd, g2)), r.pcBuf) {
					r.blockTile(tileKey{link.Layer, link.Tile})
					continue
				}
				r.push(stateKey{node: adj.To, gap: int16(g2)}, st.g+link.Len, si, int32(adj.Link))
			}
		}
	}
}

// pushChordToEdge pushes states entering an edge node from a via node,
// trying every crossing-free insertion gap.
//
//rdl:noalloc
func (r *Router) pushChordToEdge(st searchState, si int32, net int,
	adj rgraph.Adjacent, link *rgraph.Link) {
	if r.nodeUse[adj.To]+r.edgeUnits(net) > r.nodeCap(adj.To) {
		r.blockNode(adj.To)
		return
	}
	tile := r.G.TileOf(link.Layer, link.Tile)
	vOrd := vertexOrdinal(tile, r.G.Node(st.key.node).Vert)
	eOrd := edgeOrdinal(tile, adj.To)
	if vOrd == -1 || eOrd == -1 {
		return
	}
	m := len(r.seqs[adj.To])
	r.pcBuf = r.passageCoords(net, tile, r.pcBuf)
	q1 := r.coord(tile, vertexEnd(vOrd))
	for g2 := 0; g2 <= m; g2++ {
		if !chordAllowedCoords(q1, r.coord(tile, gapEnd(eOrd, g2)), r.pcBuf) {
			r.blockTile(tileKey{link.Layer, link.Tile})
			continue
		}
		r.push(stateKey{node: adj.To, gap: int16(g2)}, st.g+link.Len, si, int32(adj.Link))
	}
}

// reconstruct walks the arena parents back to the start. It reports false
// when the path visits any node twice (a self-intersecting guide, which the
// commit machinery does not support). The revisit check reuses the scratch
// seen stamps instead of allocating a map per call.
//
//rdl:noalloc
func (r *Router) reconstruct(net int, goal int32) (*searchResult, bool) {
	s := r.scr
	arena := s.arena
	n := 0
	for i := goal; i != -1; i = arena[i].parent {
		n++
	}
	//rdl:allow noalloc the result path is budget alloc 1 of 4: commit keeps nodes in the Guide, so they cannot alias scratch
	nodes := make([]rgraph.NodeID, n)
	//rdl:allow noalloc the result path is budget alloc 2 of 4: commit keeps links in the Guide, so they cannot alias scratch
	links := make([]int, n-1)
	if cap(s.gapsBuf) < n {
		//rdl:allow noalloc gapsBuf growth is amortized: it reallocates only while the longest path seen keeps growing
		s.gapsBuf = make([]int, n)
	}
	gaps := s.gapsBuf[:n]

	s.seenGen++
	if s.seenGen == 0 {
		for i := range s.seen {
			s.seen[i] = 0
		}
		s.seenGen = 1
	}
	k := n - 1
	for i := goal; i != -1; i = arena[i].parent {
		st := &arena[i]
		if s.seen[st.key.node] == s.seenGen {
			return nil, false
		}
		s.seen[st.key.node] = s.seenGen
		nodes[k] = st.key.node
		gaps[k] = int(st.key.gap)
		if st.link != -1 {
			links[k-1] = int(st.link)
		}
		k--
	}
	// Note: a path may revisit a tile and topologically cross its own
	// earlier chord there. That is deliberately allowed: the minimum-spacing
	// rule of §II-B applies only between different nets, so a guide crossing
	// itself is electrically and DRC-legal (merely suboptimal, which the
	// shortest-path objective already discourages).
	//rdl:allow noalloc result header is budget alloc 3 of 4 pinned by TestRouteSearchDoesNotAllocate
	return &searchResult{net: net, nodes: nodes, links: links, gaps: gaps}, true
}
