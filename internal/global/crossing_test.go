package global

import (
	"testing"
)

func TestInOpenArc(t *testing.T) {
	cases := []struct {
		x, a, b float64
		want    bool
	}{
		{1, 0, 2, true},
		{0, 0, 2, false},    // endpoint excluded
		{2, 0, 2, false},    // endpoint excluded
		{3, 0, 2, false},    // outside
		{5, 4, 2, true},     // wrapping arc 4→2 contains 5
		{1, 4, 2, true},     // wrapping arc 4→2 contains 1
		{3, 4, 2, false},    // wrapping arc 4→2 excludes 3
		{0.5, 5.5, 1, true}, // wrap across 0
	}
	for i, c := range cases {
		if got := inOpenArc(c.x, c.a, c.b); got != c.want {
			t.Errorf("case %d: inOpenArc(%v, %v, %v) = %v, want %v", i, c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestChordsCross(t *testing.T) {
	// Boundary domain [0, 6). Chord (0, 3) vs (1, 4): interleaved.
	if !chordsCross(0, 3, 1, 4) {
		t.Error("interleaved chords must cross")
	}
	// Chord (0, 3) vs (1, 2): nested, no cross.
	if chordsCross(0, 3, 1, 2) {
		t.Error("nested chords must not cross")
	}
	// Chord (0, 3) vs (4, 5): disjoint arcs, no cross.
	if chordsCross(0, 3, 4, 5) {
		t.Error("disjoint chords must not cross")
	}
	// Symmetry.
	if chordsCross(1, 4, 0, 3) != chordsCross(0, 3, 1, 4) {
		t.Error("chordsCross not symmetric")
	}
	// Wrapping chord (5, 1) vs (0, 3): 0 is inside (5,1), 3 is not → cross.
	if !chordsCross(5, 1, 0, 3) {
		t.Error("wrapping interleave must cross")
	}
}
