// Package pq provides a typed binary min-heap. It replaces container/heap
// on the routing hot paths: container/heap moves elements through
// interface{} values, so every Push and Pop of a non-pointer element
// allocates to box it. Heap[T] stores elements in a flat slice of their
// concrete type — Push amortizes to zero allocations (slice growth only) and
// Pop never allocates — and Reset keeps the backing array so one heap can be
// reused across many searches.
package pq

// Heap is a binary min-heap over T ordered by the less function given to
// New. The zero value is not usable; call New.
type Heap[T any] struct {
	less func(a, b T) bool
	data []T
}

// New returns an empty heap ordered by less (a min-heap when less is
// "a < b").
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of elements in the heap.
func (h *Heap[T]) Len() int { return len(h.data) }

// Reset empties the heap but keeps the backing array for reuse.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.data {
		h.data[i] = zero // release references held by pointer-carrying types
	}
	h.data = h.data[:0]
}

// Grow ensures capacity for at least n additional elements.
func (h *Heap[T]) Grow(n int) {
	if need := len(h.data) + n; need > cap(h.data) {
		data := make([]T, len(h.data), need)
		copy(data, h.data)
		h.data = data
	}
}

// Push adds x to the heap.
//
//rdl:noalloc
func (h *Heap[T]) Push(x T) {
	h.data = append(h.data, x)
	h.up(len(h.data) - 1)
}

// Pop removes and returns the minimum element. It panics on an empty heap.
//
//rdl:noalloc
func (h *Heap[T]) Pop() T {
	n := len(h.data) - 1
	top := h.data[0]
	h.data[0] = h.data[n]
	var zero T
	h.data[n] = zero
	h.data = h.data[:n]
	if n > 0 {
		h.down(0)
	}
	return top
}

//rdl:noalloc
func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		//rdl:allow transalloc less is bound once at New and never reassigned; the routing comparators compare scalar keys and cannot allocate
		if !h.less(h.data[i], h.data[parent]) {
			return
		}
		h.data[i], h.data[parent] = h.data[parent], h.data[i]
		i = parent
	}
}

//rdl:noalloc
func (h *Heap[T]) down(i int) {
	n := len(h.data)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		//rdl:allow transalloc less is bound once at New and never reassigned; the routing comparators compare scalar keys and cannot allocate
		if r := l + 1; r < n && h.less(h.data[r], h.data[l]) {
			m = r
		}
		//rdl:allow transalloc less is bound once at New and never reassigned; the routing comparators compare scalar keys and cannot allocate
		if !h.less(h.data[m], h.data[i]) {
			return
		}
		h.data[i], h.data[m] = h.data[m], h.data[i]
		i = m
	}
}
