package pq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapSortsRandomInts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(1000) - 500
		}
		h := New(func(a, b int) bool { return a < b })
		for _, v := range in {
			h.Push(v)
		}
		want := append([]int(nil), in...)
		sort.Ints(want)
		for i, w := range want {
			if h.Len() != n-i {
				t.Fatalf("Len = %d, want %d", h.Len(), n-i)
			}
			if got := h.Pop(); got != w {
				t.Fatalf("trial %d: pop %d = %d, want %d", trial, i, got, w)
			}
		}
		if h.Len() != 0 {
			t.Fatalf("Len after drain = %d", h.Len())
		}
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	h.Push(5)
	h.Push(1)
	h.Push(3)
	if got := h.Pop(); got != 1 {
		t.Fatalf("pop = %d, want 1", got)
	}
	h.Push(0)
	h.Push(4)
	for _, want := range []int{0, 3, 4, 5} {
		if got := h.Pop(); got != want {
			t.Fatalf("pop = %d, want %d", got, want)
		}
	}
}

func TestHeapStructElements(t *testing.T) {
	type item struct {
		f   float64
		idx int32
	}
	h := New(func(a, b item) bool { return a.f < b.f })
	h.Push(item{f: 2.5, idx: 0})
	h.Push(item{f: 0.5, idx: 1})
	h.Push(item{f: 1.5, idx: 2})
	if got := h.Pop(); got.idx != 1 {
		t.Fatalf("pop idx = %d, want 1", got.idx)
	}
	if got := h.Pop(); got.idx != 2 {
		t.Fatalf("pop idx = %d, want 2", got.idx)
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	h.Grow(64)
	for i := 0; i < 64; i++ {
		h.Push(i)
	}
	c := cap(h.data)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	if cap(h.data) != c {
		t.Fatalf("Reset dropped capacity: %d -> %d", c, cap(h.data))
	}
}

func TestPushPopNoAllocsAfterWarmup(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	h.Grow(1024)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 512; i++ {
			h.Push(512 - i)
		}
		for h.Len() > 0 {
			h.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("push/pop allocated %.1f allocs/run, want 0", allocs)
	}
}
