package rgraph

import (
	"math"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/viaplan"
)

func buildGraph(t *testing.T, name string, opt Options) *Graph {
	t.Helper()
	d, err := design.GenerateDense(name)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := viaplan.Build(d, viaplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(d, plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEdgeNodeCapacityEq1(t *testing.T) {
	rules := design.Rules{WireWidth: 2, ViaWidth: 5, MinSpacing: 2, MinTurnDist: 4}
	// d = 41, pitch = 4 → ⌊41/4⌋ = 10.
	if got := EdgeNodeCapacity(geom.Pt(0, 0), geom.Pt(41, 0), rules); got != 10 {
		t.Errorf("capacity = %d, want 10", got)
	}
	// Degenerate edge has zero capacity.
	if got := EdgeNodeCapacity(geom.Pt(0, 0), geom.Pt(1, 0), rules); got != 0 {
		t.Errorf("short edge capacity = %d, want 0", got)
	}
}

func TestCornerCapacityEq2(t *testing.T) {
	rules := design.Rules{WireWidth: 2, ViaWidth: 5, MinSpacing: 2, MinTurnDist: 4}
	// Right-angle corner with legs 100: ang = π/2, cos(π/8) ≈ 0.9239.
	v, a, b := geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(0, 100)
	got := CornerCapacity(v, a, b, rules)
	l := geom.CornerEffectiveLength(v, a, b)
	want := int(math.Floor(math.Cos(math.Pi/8) * l / rules.Pitch()))
	if got != want {
		t.Errorf("corner capacity = %d, want %d", got, want)
	}
	if got <= 0 {
		t.Error("non-degenerate corner must have positive capacity")
	}
	// A larger corner admits more wires.
	got2 := CornerCapacity(v, a.Scale(2), b.Scale(2), rules)
	if got2 <= got {
		t.Errorf("scaled corner capacity %d not larger than %d", got2, got)
	}
}

func TestBuildDense1Structure(t *testing.T) {
	g := buildGraph(t, "dense1", Options{})
	s := g.Stats()
	if s.Layers != 2 {
		t.Fatalf("layers = %d", s.Layers)
	}
	if s.ViaNodes == 0 || s.EdgeNodes == 0 {
		t.Fatal("missing nodes")
	}
	if s.CrossVia == 0 || s.AccessVia == 0 || s.CrossTile == 0 {
		t.Fatalf("missing link kinds: %+v", s)
	}
	// Each tile contributes exactly 3 cross-tile links.
	tiles := 0
	for _, lg := range g.Layers {
		tiles += len(lg.Tiles)
	}
	if s.CrossTile != 3*tiles {
		t.Errorf("cross-tile links = %d, want %d", s.CrossTile, 3*tiles)
	}
	// One cross-via link per candidate via.
	if s.CrossVia != len(g.Plan.Vias) {
		t.Errorf("cross-via links = %d, want %d", s.CrossVia, len(g.Plan.Vias))
	}
}

func TestPinNodesResolvable(t *testing.T) {
	g := buildGraph(t, "dense1", Options{})
	for _, n := range g.Design.Nets {
		s, tt, err := g.NetPins(n)
		if err != nil {
			t.Fatal(err)
		}
		ns, nt := g.Node(s), g.Node(tt)
		if ns.Layer != 0 || nt.Layer != 0 {
			t.Errorf("net %d pins not on layer 0", n.ID)
		}
		if ns.VertKind != viaplan.KindPin || nt.VertKind != viaplan.KindPin {
			t.Errorf("net %d pin nodes have wrong kind", n.ID)
		}
		if ns.Cap != 1 || nt.Cap != 1 {
			t.Errorf("net %d pin capacity != 1", n.ID)
		}
	}
}

func TestNodeCapacities(t *testing.T) {
	g := buildGraph(t, "dense1", Options{})
	for id := range g.Nodes {
		n := &g.Nodes[id]
		if n.Kind == ViaNode {
			switch n.VertKind {
			case viaplan.KindVia, viaplan.KindPin:
				if n.Cap != 1 {
					t.Fatalf("node %d (%v) cap = %d, want 1", id, n.VertKind, n.Cap)
				}
			case viaplan.KindBump, viaplan.KindDummy:
				if n.Cap != 0 {
					t.Fatalf("node %d (%v) cap = %d, want 0", id, n.VertKind, n.Cap)
				}
			}
		} else {
			lg := g.Layers[n.Layer]
			want := EffectiveEdgeCapacity(lg.Mesh.Points[n.Edge.A], lg.Mesh.Points[n.Edge.B], g.Design.Rules)
			if n.Cap != want {
				t.Fatalf("edge node %d cap = %d, want %d", id, n.Cap, want)
			}
		}
	}
}

func TestAdjacencySymmetry(t *testing.T) {
	g := buildGraph(t, "dense1", Options{})
	for id := range g.Nodes {
		for _, adj := range g.Adj[id] {
			l := g.Link(adj.Link)
			if l.A != NodeID(id) && l.B != NodeID(id) {
				t.Fatalf("node %d lists link %d it is not part of", id, l.ID)
			}
			// The reverse adjacency must exist.
			found := false
			for _, back := range g.Adj[adj.To] {
				if back.Link == adj.Link && back.To == NodeID(id) {
					found = true
				}
			}
			if !found {
				t.Fatalf("link %d missing reverse adjacency", l.ID)
			}
		}
	}
}

func TestLinkKindEndpoints(t *testing.T) {
	g := buildGraph(t, "dense3", Options{})
	for _, l := range g.Links {
		a, b := g.Node(l.A), g.Node(l.B)
		switch l.Kind {
		case CrossVia:
			if a.Kind != ViaNode || b.Kind != ViaNode {
				t.Fatalf("cross-via link %d endpoints not via nodes", l.ID)
			}
			if abs(a.Layer-b.Layer) != 1 {
				t.Fatalf("cross-via link %d spans layers %d-%d", l.ID, a.Layer, b.Layer)
			}
			if a.Ref != b.Ref {
				t.Fatalf("cross-via link %d connects different vias", l.ID)
			}
		case AccessVia:
			if a.Kind != ViaNode || b.Kind != EdgeNode {
				t.Fatalf("access-via link %d endpoint kinds wrong", l.ID)
			}
			if a.Layer != b.Layer {
				t.Fatalf("access-via link %d crosses layers", l.ID)
			}
			if l.Cap != 1 {
				t.Fatalf("access-via link %d cap = %d", l.ID, l.Cap)
			}
			// The via vertex must not be an endpoint of the opposite edge.
			if a.Vert == b.Edge.A || a.Vert == b.Edge.B {
				t.Fatalf("access-via link %d: via %d on its own edge", l.ID, a.Vert)
			}
		case CrossTile:
			if a.Kind != EdgeNode || b.Kind != EdgeNode {
				t.Fatalf("cross-tile link %d endpoints not edge nodes", l.ID)
			}
			if a.Layer != b.Layer {
				t.Fatalf("cross-tile link %d crosses layers", l.ID)
			}
			// The two edges share exactly the corner vertex.
			shared := sharedVert(a.Edge.A, a.Edge.B, b.Edge.A, b.Edge.B)
			if shared != l.Corner {
				t.Fatalf("cross-tile link %d corner = %d, shared vertex = %d", l.ID, l.Corner, shared)
			}
		}
	}
}

func TestNoAccessToDeadVertices(t *testing.T) {
	// Bump and dummy vertices (capacity 0) must have no access-via links.
	g := buildGraph(t, "dense1", Options{})
	for id := range g.Nodes {
		n := &g.Nodes[id]
		if n.Kind != ViaNode || n.Cap != 0 {
			continue
		}
		for _, adj := range g.Adj[id] {
			if g.Link(adj.Link).Kind == AccessVia {
				t.Fatalf("capacity-0 node %d (%v) has an access-via link", id, n.VertKind)
			}
		}
	}
}

func TestTileBoundaryOrder(t *testing.T) {
	g := buildGraph(t, "dense1", Options{})
	for _, lg := range g.Layers {
		for ti, tile := range lg.Tiles {
			tri := lg.Mesh.Tris[ti]
			for i := 0; i < 3; i++ {
				if tile.Verts[i] != tri.V[i] {
					t.Fatalf("tile %d vertex mismatch", ti)
				}
				en := g.Node(tile.EdgeNodes[i])
				// Edges[i] joins Verts[i] and Verts[(i+1)%3].
				a, b := tile.Verts[i], tile.Verts[(i+1)%3]
				if (en.Edge.A != a || en.Edge.B != b) && (en.Edge.A != b || en.Edge.B != a) {
					t.Fatalf("tile %d edge %d joins %v, want {%d %d}", ti, i, en.Edge, a, b)
				}
				// CrossLinks[i] wraps corner Verts[i].
				cl := g.Link(tile.CrossLinks[i])
				if cl.Corner != tile.Verts[i] {
					t.Fatalf("tile %d cross link %d corner = %d, want %d", ti, i, cl.Corner, tile.Verts[i])
				}
			}
		}
	}
}

func TestNaiveCornerCapacityAblation(t *testing.T) {
	gSmart := buildGraph(t, "dense1", Options{})
	gNaive := buildGraph(t, "dense1", Options{NaiveCornerCapacity: true})
	// The naive model must differ (it overestimates corners; Fig. 6(a)).
	larger, smaller := 0, 0
	for i := range gSmart.Links {
		if gSmart.Links[i].Kind != CrossTile {
			continue
		}
		if gNaive.Links[i].Cap > gSmart.Links[i].Cap {
			larger++
		}
		if gNaive.Links[i].Cap < gSmart.Links[i].Cap {
			smaller++
		}
	}
	if larger == 0 {
		t.Error("naive corner model never exceeds Eq. 2 capacity; ablation is vacuous")
	}
	t.Logf("naive > eq2 on %d corners, naive < eq2 on %d corners", larger, smaller)
}

func TestSharedTiles(t *testing.T) {
	g := buildGraph(t, "dense1", Options{})
	// For every cross-tile link, its two edge nodes share that tile.
	for _, l := range g.Links {
		if l.Kind != CrossTile {
			continue
		}
		tiles := g.SharedTiles(l.A, l.B)
		found := false
		for _, ti := range tiles {
			if ti == l.Tile {
				found = true
			}
		}
		if !found {
			t.Fatalf("link %d tile %d not in shared tiles %v", l.ID, l.Tile, tiles)
		}
	}
	// Nodes on different layers share nothing.
	var e0, e1 NodeID = Invalid, Invalid
	for id := range g.Nodes {
		if g.Nodes[id].Kind == EdgeNode {
			if g.Nodes[id].Layer == 0 && e0 == Invalid {
				e0 = NodeID(id)
			}
			if g.Nodes[id].Layer == 1 && e1 == Invalid {
				e1 = NodeID(id)
			}
		}
	}
	if got := g.SharedTiles(e0, e1); got != nil {
		t.Errorf("cross-layer shared tiles = %v, want nil", got)
	}
}

func TestEdgeKindString(t *testing.T) {
	if CrossVia.String() != "cross-via" || AccessVia.String() != "access-via" || CrossTile.String() != "cross-tile" {
		t.Error("EdgeKind.String wrong")
	}
}

func sharedVert(a1, a2, b1, b2 int) int {
	if a1 == b1 || a1 == b2 {
		return a1
	}
	if a2 == b1 || a2 == b2 {
		return a2
	}
	return -1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TestViaCostZeroNotClobbered is the regression test for the explicit-zero
// via cost: Build used to treat any cost <= 0 as "unset" and replace it with
// the 4×ViaWidth default, making a free-via configuration unexpressible.
// The pointer knob distinguishes the three cases.
func TestViaCostZeroNotClobbered(t *testing.T) {
	crossViaLen := func(g *Graph) float64 {
		for _, l := range g.Links {
			if l.Kind == CrossVia {
				return l.Len
			}
		}
		t.Fatal("no cross-via links")
		return 0
	}

	free := buildGraph(t, "dense1", Options{ViaCost: ViaCostPtr(-1)})
	if got := crossViaLen(free); got != 0 {
		t.Errorf("free vias: cross-via Len = %v, want 0", got)
	}
	def := buildGraph(t, "dense1", Options{})
	if want := 4 * def.Design.Rules.ViaWidth; crossViaLen(def) != want {
		t.Errorf("default vias: cross-via Len = %v, want %v", crossViaLen(def), want)
	}
	expl := buildGraph(t, "dense1", Options{ViaCost: ViaCostPtr(7)})
	if got := crossViaLen(expl); got != 7 {
		t.Errorf("explicit vias: cross-via Len = %v, want 7", got)
	}
}

// TestViaCostWireEncoding pins the flat encoding round trip used by router
// specs: nil ↔ 0 (default), positive ↔ itself, explicit zero ↔ negative.
func TestViaCostWireEncoding(t *testing.T) {
	if ViaCostPtr(0) != nil {
		t.Error("ViaCostPtr(0) should be nil (default)")
	}
	if p := ViaCostPtr(7); p == nil || *p != 7 {
		t.Errorf("ViaCostPtr(7) = %v", p)
	}
	if p := ViaCostPtr(-1); p == nil || *p != 0 {
		t.Errorf("ViaCostPtr(-1) = %v, want explicit 0", p)
	}
	if got := ViaCostValue(nil); got != 0 {
		t.Errorf("ViaCostValue(nil) = %v, want 0", got)
	}
	if got := ViaCostValue(ViaCostPtr(7)); got != 7 {
		t.Errorf("ViaCostValue(&7) = %v, want 7", got)
	}
	if got := ViaCostValue(ViaCostPtr(-1)); got >= 0 {
		t.Errorf("ViaCostValue(&0) = %v, want negative (free)", got)
	}
	rules := design.DefaultRules()
	if got := (Options{}).ResolvedViaCost(rules); got != 4*rules.ViaWidth {
		t.Errorf("ResolvedViaCost(nil) = %v, want %v", got, 4*rules.ViaWidth)
	}
	if got := (Options{ViaCost: ViaCostPtr(-1)}).ResolvedViaCost(rules); got != 0 {
		t.Errorf("ResolvedViaCost(&0) = %v, want 0", got)
	}
}
