// Package rgraph builds the multi-layer routing graph of the paper's §III-A1
// from the per-layer Delaunay meshes: via nodes and edge nodes connected by
// cross-via, access-via, and cross-tile edges, with the capacity model of
// Eq. 1 (tile-edge capacity) and Eq. 2 (corner capacity from the bisector
// effective length and the 3-segment routing pattern).
package rgraph

import (
	"fmt"
	"math"

	"rdlroute/internal/design"
	"rdlroute/internal/dt"
	"rdlroute/internal/geom"
	"rdlroute/internal/obs"
	"rdlroute/internal/viaplan"
)

// NodeID identifies a search node in the graph.
type NodeID int32

// Invalid is the null NodeID.
const Invalid NodeID = -1

// NodeKind distinguishes the two search-node types of the paper.
type NodeKind uint8

// Search node kinds.
const (
	// ViaNode models a candidate via (N_v^i): capacity one.
	ViaNode NodeKind = iota
	// EdgeNode models the tile-edge segment between two candidate vias
	// (N_e^{i,j}): capacity per Eq. 1.
	EdgeNode
)

// EdgeKind distinguishes the three graph-edge types of the paper.
type EdgeKind uint8

// Graph edge kinds.
const (
	// CrossVia connects the two via nodes of one candidate via in adjacent
	// wire layers (E_v).
	CrossVia EdgeKind = iota
	// AccessVia connects a via node to the edge node opposite it within one
	// tile (E_a).
	AccessVia
	// CrossTile connects two edge nodes of one tile around their shared
	// corner (E_t); capacity per Eq. 2.
	CrossTile
)

// String returns a short name for the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case CrossVia:
		return "cross-via"
	case AccessVia:
		return "access-via"
	default:
		return "cross-tile"
	}
}

// Node is one search node.
type Node struct {
	Kind  NodeKind
	Layer int
	// Pos is the representative position used for path costs: the via
	// position for via nodes, the edge midpoint for edge nodes.
	Pos geom.Point
	// Cap is the node capacity: 1 for candidate vias and pins, 0 for bump
	// and dummy vertices, Eq. 1 for edge nodes.
	Cap int

	// Via-node fields.
	VertKind viaplan.VertexKind
	Ref      int // pad / via / bump ID per VertKind
	Vert     int // mesh vertex index within the layer

	// Edge-node fields.
	Edge dt.Edge    // mesh edge (vertex indices within the layer)
	EndA geom.Point // positions of the edge endpoints
	EndB geom.Point
}

// Link is one graph edge instance with its own capacity and usage identity.
type Link struct {
	ID   int
	Kind EdgeKind
	A, B NodeID
	Cap  int
	// Layer and Tile locate access-via and cross-tile links; Tile is -1 for
	// cross-via links.
	Layer, Tile int
	// Corner is the mesh vertex index of the tile corner a cross-tile link
	// wraps (or the via vertex of an access-via link).
	Corner int
	// Len is the nominal length cost of traversing the link.
	Len float64
}

// Adjacent pairs a link with the neighbouring node it leads to.
type Adjacent struct {
	Link int
	To   NodeID
}

// Tile is one triangular tile with its node references in boundary order:
// the cyclic tile boundary is Verts[0], Edges[0], Verts[1], Edges[1],
// Verts[2], Edges[2] where Edges[i] joins Verts[i] and Verts[(i+1)%3].
type Tile struct {
	Layer     int
	Tri       int // triangle index within the layer mesh
	Verts     [3]int
	ViaNodes  [3]NodeID
	EdgeNodes [3]NodeID
	// CrossLinks[i] is the cross-tile link around corner Verts[i], which
	// connects Edges[(i+2)%3] and Edges[i].
	CrossLinks [3]int
}

// LayerGraph holds the per-wire-layer mesh and node lookup tables.
type LayerGraph struct {
	Index    int
	Mesh     *dt.Mesh
	Verts    []viaplan.Vertex // aligned with Mesh.Points
	VertNode []NodeID         // mesh vertex -> via node
	EdgeNode map[dt.Edge]NodeID
	Tiles    []Tile // aligned with Mesh.Tris
}

// Graph is the complete multi-layer routing graph.
type Graph struct {
	Design *design.Design
	Plan   *viaplan.Plan
	Layers []LayerGraph
	Nodes  []Node
	Links  []Link
	Adj    [][]Adjacent
	// PinNode maps an I/O pad ID to its via node.
	PinNode map[int]NodeID
	// Options the graph was built with.
	Opt Options
}

// Options tunes graph construction.
type Options struct {
	// ViaCost is the extra path cost of a cross-via link, discouraging
	// gratuitous layer changes. Nil selects a default of 4× the via width;
	// a pointer to 0 makes layer changes genuinely free (a plain zero field
	// used to be indistinguishable from "unset" and was silently clobbered
	// by the default). Negative values clamp to 0. Use ViaCostPtr /
	// ViaCostValue to convert to and from the flat wire encoding.
	ViaCost *float64
	// NaiveCornerCapacity disables the Eq. 2 effective-length model and
	// instead caps each cross-tile edge at the smaller Eq. 1 capacity of its
	// two edge nodes. Used by the ablation benchmarks: this is the
	// overestimate of Fig. 6(a) that causes corner spacing violations.
	NaiveCornerCapacity bool
	// Rec receives the stage's size counters. Nil selects the no-op
	// recorder.
	Rec obs.Recorder
}

// ResolvedViaCost returns the effective cross-via link cost: the default
// 4×ViaWidth when ViaCost is nil, otherwise *ViaCost clamped to ≥ 0.
func (o Options) ResolvedViaCost(rules design.Rules) float64 {
	if o.ViaCost == nil {
		return 4 * rules.ViaWidth
	}
	if c := *o.ViaCost; c > 0 {
		return c
	}
	return 0
}

// ViaCostValue flattens a ViaCost pointer into the wire encoding used by
// router specs: 0 means "use the default", a positive value is an explicit
// cost, and any negative value means "free" (explicit zero cost).
func ViaCostValue(p *float64) float64 {
	switch {
	case p == nil:
		return 0
	case *p > 0:
		return *p
	default:
		return -1
	}
}

// ViaCostPtr expands the wire encoding back into a ViaCost pointer: 0 maps
// to nil (default), positive values to themselves, negative values to an
// explicit zero (free vias).
func ViaCostPtr(v float64) *float64 {
	switch {
	case v == 0:
		return nil
	case v > 0:
		return &v
	default:
		zero := 0.0
		return &zero
	}
}

// EdgeNodeCapacity implements Eq. 1: ⌊d(v_i, v_j) / (w_w + w_s)⌋.
func EdgeNodeCapacity(a, b geom.Point, rules design.Rules) int {
	return int(math.Floor(a.Dist(b) / rules.Pitch()))
}

// EffectiveEdgeCapacity is Eq. 1 corrected for via end clearance: wires
// crossing a tile edge must also clear the vias at the edge's endpoints, so
// only the span d − 2·(w_v/2 + w_s + w_w/2) is usable. Short sliver edges
// between a pin and a nearby via would otherwise admit wires that cannot be
// legalized. The corrected capacity never exceeds Eq. 1.
func EffectiveEdgeCapacity(a, b geom.Point, rules design.Rules) int {
	endClear := rules.ViaWidth/2 + rules.MinSpacing + rules.WireWidth/2
	usable := a.Dist(b) - 2*endClear
	if usable < 0 {
		return 0
	}
	cap := int(math.Floor(usable/rules.Pitch())) + 1
	if eq1 := EdgeNodeCapacity(a, b, rules); cap > eq1 {
		cap = eq1
	}
	return cap
}

// CornerCapacity implements Eq. 2: ⌊cos(ang(j)/4) · l(j) / (w_w + w_s)⌋,
// where v is the corner and a, b the adjacent triangle vertices.
func CornerCapacity(v, a, b geom.Point, rules design.Rules) int {
	ang := geom.AngleAt(v, a, b)
	l := geom.CornerEffectiveLength(v, a, b)
	return int(math.Floor(math.Cos(ang/4) * l / rules.Pitch()))
}

// Build constructs the routing graph for a design and its via plan.
func Build(d *design.Design, plan *viaplan.Plan, opt Options) (*Graph, error) {
	viaCost := opt.ResolvedViaCost(d.Rules)
	g := &Graph{
		Design:  d,
		Plan:    plan,
		Layers:  make([]LayerGraph, len(plan.Layers)),
		PinNode: make(map[int]NodeID),
		Opt:     opt,
	}

	// Per-layer meshes and nodes. A pin's via capacity is the number of
	// subnets terminating at it (multi-pin groups share pads).
	padNetCount := d.PadNetCount()
	viaNodes := make(map[[2]int]NodeID) // (viaID, wire layer) -> node
	for li := range plan.Layers {
		lp := plan.Layers[li]
		pts := make([]geom.Point, len(lp.Verts))
		for i, v := range lp.Verts {
			pts[i] = v.Pos
		}
		mesh, err := dt.Triangulate(pts)
		if err != nil {
			return nil, fmt.Errorf("rgraph: layer %d: %w", li, err)
		}
		lg := &g.Layers[li]
		lg.Index = li
		lg.Mesh = mesh
		lg.EdgeNode = make(map[dt.Edge]NodeID)

		// Align vertex metadata with the (deduplicated) mesh vertex set.
		lg.Verts = make([]viaplan.Vertex, len(mesh.Points))
		for in, vi := range mesh.InputVertex {
			lg.Verts[vi] = lp.Verts[in]
		}

		// Via nodes, one per mesh vertex.
		lg.VertNode = make([]NodeID, len(mesh.Points))
		for vi := range mesh.Points {
			meta := lg.Verts[vi]
			capv := 0
			switch meta.Kind {
			case viaplan.KindVia:
				capv = 1
			case viaplan.KindPin:
				capv = padNetCount[meta.Ref]
				if capv < 1 {
					capv = 1
				}
			}
			id := NodeID(len(g.Nodes))
			g.Nodes = append(g.Nodes, Node{
				Kind:     ViaNode,
				Layer:    li,
				Pos:      mesh.Points[vi],
				Cap:      capv,
				VertKind: meta.Kind,
				Ref:      meta.Ref,
				Vert:     vi,
			})
			lg.VertNode[vi] = id
			if meta.Kind == viaplan.KindPin {
				g.PinNode[meta.Ref] = id
			}
			if meta.Kind == viaplan.KindVia {
				viaNodes[[2]int{meta.Ref, li}] = id
			}
		}

		// Edge nodes, one per mesh edge (deterministic order). Blocking is
		// tile-conservative: an edge carries no wires when it enters a
		// keep-out OR when either incident tile overlaps one — detailed
		// geometry (access points, fit detours) may wander anywhere inside
		// a tile, so partially covered tiles cannot be trusted.
		clearance := d.Rules.Pitch()
		blockedTri := make([]bool, len(mesh.Tris))
		for ti, tri := range mesh.Tris {
			blockedTri[ti] = triangleBlocked(d, li, clearance,
				mesh.Points[tri.V[0]], mesh.Points[tri.V[1]], mesh.Points[tri.V[2]])
		}
		for _, e := range mesh.Edges() {
			a, b := mesh.Points[e.A], mesh.Points[e.B]
			capE := EffectiveEdgeCapacity(a, b, d.Rules)
			if d.SegmentBlocked(geom.Seg(a, b), li, clearance) {
				capE = 0
			}
			if ts, ok := mesh.EdgeTriangles(e); ok {
				for _, ti := range ts {
					if ti != -1 && blockedTri[ti] {
						capE = 0
					}
				}
			}
			id := NodeID(len(g.Nodes))
			g.Nodes = append(g.Nodes, Node{
				Kind:  EdgeNode,
				Layer: li,
				Pos:   geom.Mid(a, b),
				Cap:   capE,
				Edge:  e,
				EndA:  a,
				EndB:  b,
			})
			lg.EdgeNode[e] = id
		}
	}

	g.Adj = make([][]Adjacent, len(g.Nodes))
	addLink := func(l Link) int {
		l.ID = len(g.Links)
		g.Links = append(g.Links, l)
		g.Adj[l.A] = append(g.Adj[l.A], Adjacent{Link: l.ID, To: l.B})
		g.Adj[l.B] = append(g.Adj[l.B], Adjacent{Link: l.ID, To: l.A})
		return l.ID
	}

	// Cross-via links: the two nodes of each candidate via.
	for _, v := range plan.Vias {
		a, okA := viaNodes[[2]int{v.ID, v.Layer}]
		b, okB := viaNodes[[2]int{v.ID, v.Layer + 1}]
		if !okA || !okB {
			return nil, fmt.Errorf("rgraph: via %d missing a layer node", v.ID)
		}
		addLink(Link{Kind: CrossVia, A: a, B: b, Cap: 1, Layer: v.Layer, Tile: -1,
			Corner: -1, Len: viaCost})
	}

	// Per-tile access-via and cross-tile links.
	for li := range g.Layers {
		lg := &g.Layers[li]
		mesh := lg.Mesh
		lg.Tiles = make([]Tile, len(mesh.Tris))
		for ti, tri := range mesh.Tris {
			t := Tile{Layer: li, Tri: ti, Verts: tri.V}
			for i := 0; i < 3; i++ {
				t.ViaNodes[i] = lg.VertNode[tri.V[i]]
				e := dt.MakeEdge(tri.V[i], tri.V[(i+1)%3])
				t.EdgeNodes[i] = lg.EdgeNode[e]
			}
			// Access-via: each corner to the opposite edge node. Chords
			// that would carry the wire through an in-tile keep-out are
			// blocked (cap 0 would not stop the search since links use
			// their own capacity; simply skip them).
			clearance := d.Rules.Pitch()
			for i := 0; i < 3; i++ {
				vn := t.ViaNodes[i]
				if g.Nodes[vn].Cap == 0 {
					continue // bumps and dummies carry no via access
				}
				opp := t.EdgeNodes[(i+1)%3] // edge (i+1, i+2) is opposite corner i
				if d.SegmentBlocked(geom.Seg(g.Nodes[vn].Pos, g.Nodes[opp].Pos), li, clearance) {
					continue
				}
				addLink(Link{Kind: AccessVia, A: vn, B: opp, Cap: 1,
					Layer: li, Tile: ti, Corner: tri.V[i],
					Len: g.Nodes[vn].Pos.Dist(g.Nodes[opp].Pos)})
			}
			// Cross-tile: around each corner i, connecting the two incident
			// edges, Edges[(i+2)%3] (joins i-1, i) and Edges[i] (joins i, i+1).
			for i := 0; i < 3; i++ {
				ea := t.EdgeNodes[(i+2)%3]
				eb := t.EdgeNodes[i]
				v := mesh.Points[tri.V[i]]
				a := mesh.Points[tri.V[(i+1)%3]]
				b := mesh.Points[tri.V[(i+2)%3]]
				var capc int
				if opt.NaiveCornerCapacity {
					capc = min(g.Nodes[ea].Cap, g.Nodes[eb].Cap)
				} else {
					capc = CornerCapacity(v, a, b, d.Rules)
				}
				if d.SegmentBlocked(geom.Seg(g.Nodes[ea].Pos, g.Nodes[eb].Pos), li, clearance) {
					capc = 0
				}
				t.CrossLinks[i] = addLink(Link{Kind: CrossTile, A: ea, B: eb, Cap: capc,
					Layer: li, Tile: ti, Corner: tri.V[i],
					Len: g.Nodes[ea].Pos.Dist(g.Nodes[eb].Pos)})
			}
			lg.Tiles[ti] = t
		}
	}
	if rec := obs.Or(opt.Rec); rec.Enabled() {
		s := g.Stats()
		rec.Count("rgraph.via_nodes", int64(s.ViaNodes))
		rec.Count("rgraph.edge_nodes", int64(s.EdgeNodes))
		rec.Count("rgraph.links", int64(len(g.Links)))
	}
	return g, nil
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node { return &g.Nodes[id] }

// Link returns the link with the given ID.
func (g *Graph) Link(id int) *Link { return &g.Links[id] }

// LayerAllowed reports whether a net may place wires on a wire layer,
// delegating to the design's per-net MaxLayers constraint. The global
// router consults it before descending through a cross-via link.
func (g *Graph) LayerAllowed(netID, layer int) bool {
	return g.Design.LayerAllowed(netID, layer)
}

// NetPins returns the source and target via nodes of a net.
//
//rdl:noalloc
func (g *Graph) NetPins(n design.Net) (NodeID, NodeID, error) {
	s, okS := g.PinNode[n.Pins[0]]
	t, okT := g.PinNode[n.Pins[1]]
	if !okS || !okT {
		//rdl:allow noalloc failure path: a missing pin node is a malformed design and aborts the route; the warm path never builds the error
		return Invalid, Invalid, fmt.Errorf("rgraph: net %d pins not in graph", n.ID)
	}
	return s, t, nil
}

// TileOf returns the tile metadata for (layer, triangle).
func (g *Graph) TileOf(layer, tri int) *Tile { return &g.Layers[layer].Tiles[tri] }

// SharedTiles returns the triangles (within node a's layer) incident to both
// nodes, which both must be edge nodes of the same layer.
func (g *Graph) SharedTiles(a, b NodeID) []int {
	na, nb := g.Nodes[a], g.Nodes[b]
	if na.Layer != nb.Layer || na.Kind != EdgeNode || nb.Kind != EdgeNode {
		return nil
	}
	mesh := g.Layers[na.Layer].Mesh
	ta, _ := mesh.EdgeTriangles(na.Edge)
	tb, _ := mesh.EdgeTriangles(nb.Edge)
	var out []int
	for _, x := range ta {
		if x == -1 {
			continue
		}
		for _, y := range tb {
			if x == y {
				out = append(out, x)
			}
		}
	}
	return out
}

// Stats summarizes graph size for logging and tests.
type Stats struct {
	ViaNodes, EdgeNodes            int
	CrossVia, AccessVia, CrossTile int
	Layers                         int
}

// Stats returns counts of nodes and links by kind.
func (g *Graph) Stats() Stats {
	var s Stats
	s.Layers = len(g.Layers)
	for _, n := range g.Nodes {
		if n.Kind == ViaNode {
			s.ViaNodes++
		} else {
			s.EdgeNodes++
		}
	}
	for _, l := range g.Links {
		switch l.Kind {
		case CrossVia:
			s.CrossVia++
		case AccessVia:
			s.AccessVia++
		case CrossTile:
			s.CrossTile++
		}
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// triangleBlocked reports whether the triangle (a, b, c) overlaps any
// keep-out of the layer, expanded by the clearance.
func triangleBlocked(d *design.Design, layer int, clearance float64, a, b, c geom.Point) bool {
	// Edge or vertex contact.
	if d.SegmentBlocked(geom.Seg(a, b), layer, clearance) ||
		d.SegmentBlocked(geom.Seg(b, c), layer, clearance) ||
		d.SegmentBlocked(geom.Seg(c, a), layer, clearance) {
		return true
	}
	// Obstacle entirely inside the triangle: test one obstacle corner.
	for _, o := range d.ObstaclesOnLayer(layer) {
		if geom.PointInTriangle(o.Rect.Min, a, b, c) {
			return true
		}
	}
	return false
}
