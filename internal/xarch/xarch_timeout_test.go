package xarch

import (
	"context"
	"testing"
	"time"

	"rdlroute/internal/design"
)

func TestRouteTimeBudget(t *testing.T) {
	d, err := design.GenerateDense("dense3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(context.Background(), d, Options{TimeBudget: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("1ms budget must time out")
	}
	if res.Routability >= 1 {
		t.Error("timed-out run should be partial")
	}
	// Partial results stay structurally sound: every produced route is
	// octilinear and counted.
	routed := 0
	for _, rt := range res.DetailResult.Routes {
		if rt != nil {
			routed++
		}
	}
	if routed != res.RoutedNets {
		t.Errorf("routed count %d != %d", routed, res.RoutedNets)
	}
}

func TestWirelengthMatchesGeometry(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, rt := range res.DetailResult.Routes {
		if rt == nil {
			continue
		}
		sum += rt.Wirelength()
	}
	if diff := sum - res.Wirelength; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("reported wirelength %v != geometry sum %v", res.Wirelength, sum)
	}
}
