// Package xarch implements the traditional X-architecture RDL router
// baseline ("Cai" in Table II, after Cai et al., DAC'21). Traditional RDL
// routers restrict wires to the four X-architecture orientations (0°, 45°,
// 90°, 135°), so:
//
//   - Global routing is the same competent tile-graph flow as the any-angle
//     router (Cai et al. pioneered the crossing-aware A* this work builds
//     on), so the baseline reaches the same 100% routability the paper
//     reports for it.
//   - Detailed routing skips the any-angle access-point adjustment (the
//     paper credits its wirelength gain in sparse regions to exactly that
//     adjustment versus the "fragmented detoured segments" of traditional
//     routers) and realizes every hop as an octilinear staircase: a 45°
//     diagonal leg plus an axis-parallel leg per segment.
//
// Wirelength is measured on the staircase geometry, which is the length an
// X-architecture router pays for the same topology.
package xarch

import (
	"context"
	"math"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/geom"
	"rdlroute/internal/global"
	"rdlroute/internal/obs"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// Options tunes the X-architecture baseline run.
type Options struct {
	Via        viaplan.Options
	TimeBudget time.Duration
	// Rec receives spans and counters from the underlying pipeline stages.
	// Nil selects the no-op recorder.
	Rec obs.Recorder
}

// Result is the outcome of an X-architecture baseline run.
type Result struct {
	Design       *design.Design
	GlobalResult *global.Result
	DetailResult *detail.Result
	Routability  float64
	RoutedNets   int
	// Wirelength is the octilinear wirelength in µm.
	Wirelength float64
	Runtime    time.Duration
	TimedOut   bool
}

// Route runs the traditional-router baseline. Deadlines (ctx or
// TimeBudget) stop routing and report the partial result with TimedOut set;
// explicit cancellation returns the partial result together with ctx.Err().
func Route(ctx context.Context, d *design.Design, opt Options) (*Result, error) {
	start := time.Now()
	ctx, cancel := obs.WithBudget(ctx, opt.TimeBudget, nil)
	defer cancel()
	vopt := opt.Via
	if vopt.Rec == nil {
		vopt.Rec = opt.Rec
	}
	plan, err := viaplan.Build(d, vopt)
	if err != nil {
		return nil, err
	}
	g, err := rgraph.Build(d, plan, rgraph.Options{Rec: opt.Rec})
	if err != nil {
		return nil, err
	}
	gr := global.New(g, global.Options{Rec: opt.Rec})
	gres, gerr := gr.Run(ctx)
	if gres == nil {
		return nil, gerr
	}
	// Traditional routers fix crossing points without the any-angle DP
	// adjustment.
	dres, err := detail.Run(ctx, gr, gres, detail.Options{SkipAdjust: true, Rec: opt.Rec})
	if err != nil {
		return nil, err
	}
	// Convert every route to octilinear staircases.
	var wl float64
	routed := 0
	for _, rt := range dres.Routes {
		if rt == nil {
			continue
		}
		routed++
		for si := range rt.Segs {
			rt.Segs[si].Pl = Octilinearize(rt.Segs[si].Pl)
			wl += rt.Segs[si].Pl.Length()
		}
	}
	dres.Wirelength = wl

	res := &Result{
		Design:       d,
		GlobalResult: gres,
		DetailResult: dres,
		Routability:  gres.Routability(),
		RoutedNets:   routed,
		Wirelength:   wl,
		Runtime:      time.Since(start),
		TimedOut:     obs.TimedOut(ctx),
	}
	if gerr != nil && !res.TimedOut {
		return res, gerr
	}
	return res, nil
}

// Octilinearize replaces every segment of a polyline by its two-leg
// octilinear staircase: a 45° diagonal leg covering the smaller axis delta,
// then an axis-parallel leg for the remainder. Segments already octilinear
// pass through unchanged.
func Octilinearize(pl geom.Polyline) geom.Polyline {
	if len(pl) < 2 {
		return pl
	}
	out := geom.Polyline{pl[0]}
	for i := 1; i < len(pl); i++ {
		a, b := pl[i-1], pl[i]
		dx, dy := b.X-a.X, b.Y-a.Y
		adx, ady := math.Abs(dx), math.Abs(dy)
		switch {
		case adx < geom.Eps || ady < geom.Eps || math.Abs(adx-ady) < geom.Eps:
			// Already axis-parallel or exactly 45°.
		case adx > ady:
			// Diagonal leg first: covers dy on both axes.
			mid := geom.Pt(a.X+sign(dx)*ady, b.Y)
			out = append(out, mid)
		default:
			mid := geom.Pt(b.X, a.Y+sign(dy)*adx)
			out = append(out, mid)
		}
		out = append(out, b)
	}
	return out.Simplify()
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
