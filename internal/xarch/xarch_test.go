package xarch

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/router"
)

func TestOctilinearizeAxisAndDiagonal(t *testing.T) {
	// Axis-parallel and exact 45° segments pass through unchanged.
	for _, pl := range []geom.Polyline{
		{geom.Pt(0, 0), geom.Pt(10, 0)},
		{geom.Pt(0, 0), geom.Pt(0, 10)},
		{geom.Pt(0, 0), geom.Pt(10, 10)},
		{geom.Pt(0, 0), geom.Pt(-10, 10)},
	} {
		out := Octilinearize(pl)
		if len(out) != 2 {
			t.Errorf("octilinear segment %v modified: %v", pl, out)
		}
	}
}

func TestOctilinearizeGeneric(t *testing.T) {
	pl := geom.Polyline{geom.Pt(0, 0), geom.Pt(10, 3)}
	out := Octilinearize(pl)
	if len(out) != 3 {
		t.Fatalf("generic segment should become 2 legs, got %v", out)
	}
	// Every leg must be axis-parallel or 45°.
	for _, s := range out.Segments() {
		dx := math.Abs(s.B.X - s.A.X)
		dy := math.Abs(s.B.Y - s.A.Y)
		if dx > geom.Eps && dy > geom.Eps && math.Abs(dx-dy) > geom.Eps {
			t.Errorf("leg %v not octilinear", s)
		}
	}
	// Endpoints preserved.
	if !out[0].ApproxEq(pl[0]) || !out[len(out)-1].ApproxEq(pl[1]) {
		t.Error("endpoints changed")
	}
	// Matches the octilinear metric.
	want := pl.OctilinearLength()
	if math.Abs(out.Length()-want) > 1e-9 {
		t.Errorf("staircase length %v, metric %v", out.Length(), want)
	}
}

func TestOctilinearizeShortPolyline(t *testing.T) {
	if out := Octilinearize(nil); out != nil {
		t.Error("nil input should pass through")
	}
	single := geom.Polyline{geom.Pt(1, 1)}
	if out := Octilinearize(single); len(out) != 1 {
		t.Error("single point modified")
	}
}

// Property: octilinearization preserves endpoints and never shortens a
// polyline below its Euclidean length.
func TestOctilinearizeProperties(t *testing.T) {
	f := func(coords []float64) bool {
		if len(coords) < 4 {
			return true
		}
		var pl geom.Polyline
		for i := 0; i+1 < len(coords) && len(pl) < 12; i += 2 {
			x := math.Mod(coords[i], 1e3)
			y := math.Mod(coords[i+1], 1e3)
			if math.IsNaN(x) || math.IsNaN(y) {
				return true
			}
			pl = append(pl, geom.Pt(x, y))
		}
		out := Octilinearize(pl)
		if !out[0].ApproxEq(pl[0]) || !out[len(out)-1].ApproxEq(pl[len(pl)-1]) {
			return false
		}
		return out.Length() >= pl.Length()-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteDense1(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Routability != 1 {
		t.Fatalf("routability = %v", res.Routability)
	}
	// Every routed polyline is octilinear.
	for _, rt := range res.DetailResult.Routes {
		if rt == nil {
			continue
		}
		for _, seg := range rt.Segs {
			for _, s := range seg.Pl.Segments() {
				dx := math.Abs(s.B.X - s.A.X)
				dy := math.Abs(s.B.Y - s.A.Y)
				if dx > 1e-6 && dy > 1e-6 && math.Abs(dx-dy) > 1e-6 {
					t.Fatalf("net %d has non-octilinear segment %v", rt.Net, s)
				}
			}
		}
	}
}

func TestXarchLongerThanAnyAngle(t *testing.T) {
	// The headline claim of Table II: the X-architecture baseline pays more
	// wirelength than the any-angle router on the same design.
	d1, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	ours, err := router.Route(context.Background(), d1, router.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	cai, err := Route(context.Background(), d2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cai.Wirelength <= ours.Metrics.Wirelength {
		t.Errorf("X-architecture %v not longer than any-angle %v",
			cai.Wirelength, ours.Metrics.Wirelength)
	}
	gain := (cai.Wirelength - ours.Metrics.Wirelength) / cai.Wirelength
	t.Logf("any-angle saves %.1f%% wirelength (paper: 15.7%% on the original suite)", gain*100)
}
