package detail

import (
	"math"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// Post-assembly layer reassignment. The routing graph prices every layer
// change with a fixed via cost, but the search still commits to detours
// through adjacent layers that the final geometry does not need: a segment
// sandwiched between two segments of the same layer can often be folded
// onto that layer, deleting both vias. Vias are a yield concern in RDL
// processes (random via failure), so each such fold is attempted greedily
// and accepted only when the DRC engine's rules confirm the moved geometry
// is clean on the target layer.
//
// The pass runs serially over routes in net-ID order, so its output is
// independent of every Parallelism setting by construction — the routes it
// reads are already byte-identical across pool sizes, and it adds no
// concurrency of its own.

// ReassignStats summarizes one layer-reassignment pass.
type ReassignStats struct {
	// ViasBefore and ViasAfter are the total via counts over all routes
	// before and after the pass.
	ViasBefore, ViasAfter int
	// SegmentsMerged counts accepted folds (each removes two vias and
	// replaces three segments with one).
	SegmentsMerged int
	// NetsChanged counts nets with at least one accepted fold.
	NetsChanged int
}

// reassigner tracks the evolving per-layer geometry of all routes so each
// candidate fold is validated against current wires and vias. The views are
// dense slices indexed by wire layer, each doubled by a flat spatial hash
// (the DRC engine's flatGrid layout) so moveOK walks only the candidates
// near the moved geometry; mergeBuf is the scratch the candidate fold
// geometry is built in (copied out only on an accepted fold).
type reassigner struct {
	d     *design.Design
	rules design.Rules
	// layerSegs[layer] holds the current segments of every net.
	layerSegs [][]netSeg
	// layerVias[layer] holds the vias currently touching each wire layer.
	layerVias [][]netVia
	// segGrids/viaGrids bucket the views per layer; cell bounds every
	// queried limit (indexCell) so the ±1-cell walk is exhaustive.
	segGrids []flatGrid
	viaGrids []flatGrid
	cell     float64
	scr      drcScratch

	mergeBuf geom.Polyline
}

func newReassigner(routes []*Route, d *design.Design) *reassigner {
	r := &reassigner{
		d: d, rules: d.Rules,
		layerSegs: make([][]netSeg, d.WireLayers),
		layerVias: make([][]netVia, d.WireLayers),
		segGrids:  make([]flatGrid, d.WireLayers),
		viaGrids:  make([]flatGrid, d.WireLayers),
		cell:      indexCell(d),
	}
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for _, s := range rt.Segs {
			pl := s.Pl
			for i := 1; i < len(pl); i++ {
				r.layerSegs[s.Layer] = append(r.layerSegs[s.Layer], netSeg{rt.Net, geom.Seg(pl[i-1], pl[i])})
			}
		}
	}
	for l := 0; l < d.WireLayers; l++ {
		r.segGrids[l].fillNetSegs(r.layerSegs[l], r.cell, &r.scr)
	}
	r.refreshVias(routes)
	return r
}

// refreshSegs rebuilds the stored segments of one layer and the layer's
// spatial index over them.
//
//rdl:noalloc
func (r *reassigner) refreshSegs(routes []*Route, layer int) {
	segs := r.layerSegs[layer][:0]
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for _, s := range rt.Segs {
			if s.Layer != layer {
				continue
			}
			pl := s.Pl
			for i := 1; i < len(pl); i++ {
				segs = append(segs, netSeg{rt.Net, geom.Seg(pl[i-1], pl[i])})
			}
		}
	}
	r.layerSegs[layer] = segs
	r.segGrids[layer].fillNetSegs(segs, r.cell, &r.scr)
}

// refreshVias rebuilds the via view — and via index — of every layer (vias
// are deleted by accepted folds, so unlike the polisher's the view is not
// fixed).
//
//rdl:noalloc
func (r *reassigner) refreshVias(routes []*Route) {
	for l := range r.layerVias {
		r.layerVias[l] = r.layerVias[l][:0]
	}
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for _, v := range rt.Vias {
			// Via layer k touches wire layers k and k+1.
			r.layerVias[v.Layer] = append(r.layerVias[v.Layer], netVia{rt.Net, v.Pos})
			r.layerVias[v.Layer+1] = append(r.layerVias[v.Layer+1], netVia{rt.Net, v.Pos})
		}
	}
	for l := range r.layerVias {
		r.viaGrids[l].fillNetVias(r.layerVias[l], r.cell, &r.scr)
	}
}

// moveOK reports whether a polyline may be placed on a layer: inside every
// keep-out budget, clear of every other net's wires by the pairwise
// clearance, and clear of every other net's vias by the via-wire limit.
// Unlike the polisher's chord check the geometry is new on this layer, so
// the full strict clearance applies with no pre-existing-shortfall
// allowance. Candidates come from the layer's spatial indexes: anything
// beyond one cell of a moved segment is beyond every queryable limit, so
// the grid walk examines a superset of the candidates that can return
// false and the verdict matches the full scan byte for byte.
//
//rdl:noalloc
func (r *reassigner) moveOK(pl geom.Polyline, layer, net int) bool {
	const eps = 1e-9
	viaLimit := r.rules.ViaWidth/2 + r.rules.MinSpacing + r.d.WidthOf(net)/2
	segs := r.layerSegs[layer]
	vias := r.layerVias[layer]
	g := &r.segGrids[layer]
	vg := &r.viaGrids[layer]
	for i := 1; i < len(pl); i++ {
		sg := geom.Seg(pl[i-1], pl[i])
		if r.d.SegmentBlocked(sg, layer, 0) {
			return false
		}
		if len(g.items) > 0 {
			r.scr.begin(len(segs))
			x0, y0 := g.cellOf(sg.A)
			x1, y1 := g.cellOf(sg.B)
			for x := minInt(x0, x1) - 1; x <= maxInt(x0, x1)+1; x++ {
				if x < 0 || x >= g.nx {
					continue
				}
				for y := minInt(y0, y1) - 1; y <= maxInt(y0, y1)+1; y++ {
					if y < 0 || y >= g.ny {
						continue
					}
					c := y*g.nx + x
					for _, si := range g.items[g.starts[c]:g.starts[c+1]] {
						if r.scr.stamp[si] == r.scr.gen {
							continue
						}
						r.scr.stamp[si] = r.scr.gen
						ns := &segs[si]
						if r.d.SameGroup(ns.net, net) {
							continue
						}
						if dd, _, _ := sg.DistToSegment(ns.seg); dd < r.d.Clearance(net, ns.net)-eps {
							return false
						}
					}
				}
			}
		}
		if len(vg.items) > 0 {
			r.scr.begin(len(vias))
			x0, y0 := vg.cellOf(sg.A)
			x1, y1 := vg.cellOf(sg.B)
			for x := minInt(x0, x1) - 1; x <= maxInt(x0, x1)+1; x++ {
				if x < 0 || x >= vg.nx {
					continue
				}
				for y := minInt(y0, y1) - 1; y <= maxInt(y0, y1)+1; y++ {
					if y < 0 || y >= vg.ny {
						continue
					}
					c := y*vg.nx + x
					for _, vi := range vg.items[vg.starts[c]:vg.starts[c+1]] {
						if r.scr.stamp[vi] == r.scr.gen {
							continue
						}
						r.scr.stamp[vi] = r.scr.gen
						nv := &vias[vi]
						if r.d.SameGroup(nv.net, net) {
							continue
						}
						if sg.DistToPoint(nv.pos) < viaLimit-eps {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

// wireRuleCount counts the angle and turn-distance findings the DRC engine
// would raise for a polyline (mirroring drcLayer.wireRuleUnit). Folds must
// not increase the count: the junction vertices they interiorize may carry
// turns the per-segment checks never saw.
//
//rdl:noalloc
func wireRuleCount(pl geom.Polyline, rules design.Rules) int {
	const eps = 1e-6
	n := 0
	for i := 1; i+1 < len(pl); i++ {
		if geom.TurnAngle(pl[i-1], pl[i], pl[i+1]) > math.Pi/2+eps {
			n++
		}
	}
	for i := 2; i+1 < len(pl); i++ {
		if pl[i-1].Dist(pl[i]) < rules.MinTurnDist-eps {
			n++
		}
	}
	return n
}

// mergeInto concatenates the three segment polylines of a fold into the
// scratch buffer, dropping the duplicated junction points. The returned
// polyline aliases the scratch and is only valid until the next call.
//
//rdl:noalloc
func (r *reassigner) mergeInto(a, b, c geom.Polyline) geom.Polyline {
	m := r.mergeBuf[:0]
	m = append(m, a...)
	m = append(m, b[1:]...)
	m = append(m, c[1:]...)
	r.mergeBuf = m
	return m.SimplifyInPlace()
}

// foldOne attempts the first acceptable fold of a route and reports whether
// one was applied. Candidates are scanned left to right: an interior
// segment whose two neighbours share a layer can fold onto that layer,
// deleting the vias on both sides.
func (r *reassigner) foldOne(routes []*Route, rt *Route) bool {
	for i := 1; i+1 < len(rt.Segs); i++ {
		l := rt.Segs[i-1].Layer
		if rt.Segs[i+1].Layer != l || rt.Segs[i].Layer == l {
			continue
		}
		if !r.d.LayerAllowed(rt.Net, l) {
			continue
		}
		if !r.moveOK(rt.Segs[i].Pl, l, rt.Net) {
			continue
		}
		merged := r.mergeInto(rt.Segs[i-1].Pl, rt.Segs[i].Pl, rt.Segs[i+1].Pl)
		if len(merged) < 2 {
			continue
		}
		before := wireRuleCount(rt.Segs[i-1].Pl, r.rules) +
			wireRuleCount(rt.Segs[i].Pl, r.rules) +
			wireRuleCount(rt.Segs[i+1].Pl, r.rules)
		if wireRuleCount(merged, r.rules) > before {
			continue
		}
		// Accepted: copy the merged geometry out of the scratch.
		out := make(geom.Polyline, len(merged))
		copy(out, merged)
		oldLayer := rt.Segs[i].Layer
		rt.Segs[i-1] = RouteSeg{Layer: l, Pl: out}
		rt.Segs = append(rt.Segs[:i], rt.Segs[i+2:]...)
		// Vias[i-1] and Vias[i] joined the folded segment to its
		// neighbours; both disappear with it.
		rt.Vias = append(rt.Vias[:i-1], rt.Vias[i+1:]...)
		r.refreshSegs(routes, l)
		r.refreshSegs(routes, oldLayer)
		r.refreshVias(routes)
		return true
	}
	return false
}

// ReassignRoutes folds avoidable layer detours in place and returns the
// pass statistics. Routes are processed serially in net-ID order and each
// net is folded to a fixpoint, so the result does not depend on any worker
// pool: given byte-identical input routes, the output is byte-identical.
func ReassignRoutes(routes []*Route, d *design.Design) ReassignStats {
	var st ReassignStats
	for _, rt := range routes {
		if rt != nil {
			st.ViasBefore += len(rt.Vias)
		}
	}
	r := newReassigner(routes, d)
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		changed := false
		for r.foldOne(routes, rt) {
			changed = true
			st.SegmentsMerged++
		}
		if changed {
			st.NetsChanged++
		}
	}
	for _, rt := range routes {
		if rt != nil {
			st.ViasAfter += len(rt.Vias)
		}
	}
	return st
}
