package detail

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// drcBenchResults accumulates the last run of every BenchmarkDRC
// sub-benchmark; TestMain writes them as BENCH_drc.json when BENCH_DRC_OUT
// is set (`make bench-drc`), recording the serial-vs-parallel trajectory of
// the checker.
var drcBenchResults = struct {
	mu sync.Mutex
	m  map[string]drcBenchResult
}{m: make(map[string]drcBenchResult)}

type drcBenchResult struct {
	Name       string  `json:"name"`
	Case       string  `json:"case"`
	Workers    int     `json:"workers"`
	MsPerCheck float64 `json:"ms_per_check"`
	// SpeedupVsSerial is this run's serial ms/check divided by its own;
	// filled in at write time from the workers=1 entry of the same case.
	// Meaningful only when CPUs allows actual parallelism — a 1-CPU host
	// timeslices the pool and caps the speedup near 1×.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	Violations      int     `json:"violations"`
	N               int     `json:"n"`
	// CPUs is the host's runtime.NumCPU() so the speedup column can be
	// judged against the hardware it ran on.
	CPUs int `json:"cpus"`
	// Note flags entries whose speedup column was withheld (1-CPU host).
	Note string `json:"note,omitempty"`
}

func recordDRCBench(r drcBenchResult) {
	drcBenchResults.mu.Lock()
	drcBenchResults.m[r.Name] = r
	drcBenchResults.mu.Unlock()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_DRC_OUT"); path != "" && code == 0 {
		drcBenchResults.mu.Lock()
		serialMs := map[string]float64{}
		for _, r := range drcBenchResults.m {
			if r.Workers == 1 {
				serialMs[r.Case] = r.MsPerCheck
			}
		}
		out := make([]drcBenchResult, 0, len(drcBenchResults.m))
		for _, r := range drcBenchResults.m {
			switch {
			case r.CPUs == 1 && r.Workers > 1:
				// The pool is timesliced on one CPU; omit the speedup
				// (omitempty drops the zero) rather than report noise.
				r.Note = "single-CPU host: pool is timesliced, speedup not measurable"
			default:
				if s, ok := serialMs[r.Case]; ok && r.MsPerCheck > 0 {
					r.SpeedupVsSerial = s / r.MsPerCheck
				}
			}
			out = append(out, r)
		}
		drcBenchResults.mu.Unlock()
		sort.Slice(out, func(i, j int) bool {
			if out[i].Case != out[j].Case {
				return out[i].Case < out[j].Case
			}
			return out[i].Workers < out[j].Workers
		})
		if len(out) > 0 {
			b, err := json.MarshalIndent(out, "", " ")
			if err == nil {
				err = os.WriteFile(path, append(b, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench json: %v\n", err)
				code = 1
			}
		}
	}
	os.Exit(code)
}

// BenchmarkDRC measures the full design-rule check (grid build + scan) on
// the largest dense benchmark across pool sizes. Workers=1 is the serial
// reference the speedup is quoted against.
func BenchmarkDRC(b *testing.B) {
	for _, tc := range []string{"dense3", "dense5"} {
		d, routes := routedCase(b, tc)
		for _, workers := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("%s/workers%d", tc, workers)
			b.Run(name, func(b *testing.B) {
				var violations int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					violations = len(CheckDRCParallel(routes, d, DRCOptions{Workers: workers}))
				}
				b.StopTimer()
				ms := b.Elapsed().Seconds() * 1000 / float64(b.N)
				b.ReportMetric(ms, "ms/check")
				recordDRCBench(drcBenchResult{
					Name: name, Case: tc, Workers: workers,
					MsPerCheck: ms, Violations: violations, N: b.N,
					CPUs: runtime.NumCPU(),
				})
			})
		}
	}
}
