package detail

import (
	"math"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// Post-assembly polishing. The graph sometimes forces a guide to touch a
// tile edge and bounce back (the corner-exit pattern v → edge → adjacent
// edge), and the tangent construction can leave micro-jogs. Both appear in
// the final geometry as interior vertices with reflex turns or as turn
// pairs closer than the minimum turn-to-turn distance w_x. Removing such a
// vertex replaces two segments by their chord, which by the triangle
// inequality only shortens the wire — but the chord may cut into another
// net's clearance, so every removal is validated against the current
// geometry of all other nets before it is accepted.

// spikeTurn is the turn angle above which an interior vertex is treated as
// a spike/jog artifact rather than a deliberate detour apex (tangent detour
// apexes stay well below 90°).
const spikeTurn = 91 * math.Pi / 180

// polisher validates vertex removals against the evolving geometry of all
// routes and the design's keep-out regions. The per-layer views are dense
// slices indexed by wire layer, and the polyline/blocked buffers are
// scratches reused across every polished segment of a run. Each view is
// doubled by a flat spatial hash (the DRC engine's flatGrid layout), so a
// chord check walks only the candidates near the chord instead of every
// segment and via on the layer.
type polisher struct {
	d     *design.Design
	rules design.Rules
	// layerSegs[layer] holds the current segments of every net.
	layerSegs [][]netSeg
	// layerVias[layer] holds the vias touching each wire layer (fixed).
	layerVias [][]netVia
	// segGrids[layer] buckets layerSegs[layer]; viaGrids[layer] buckets
	// layerVias[layer]. cell bounds every queried limit (pairwise wire
	// clearance, via-wire limit) so the ±1-cell walk is exhaustive; scr
	// carries the stamp dedup and the grid builds' counts buffer.
	segGrids []flatGrid
	viaGrids []flatGrid
	cell     float64
	scr      drcScratch

	plBuf      geom.Polyline
	blockedBuf []geom.Point
}

// indexCell returns the cell size of the polish/reassign spatial indexes.
// Correctness bound: at least every pairwise wire clearance and every
// via-wire limit that can be queried against the grids, so a candidate
// outside the ±1-cell walk is provably beyond its limit (the DRC grid's
// argument). The 8×pitch and 50 µm floors keep sparse layers from
// fragmenting into many empty cells.
func indexCell(d *design.Design) float64 {
	maxW := d.Rules.WireWidth
	for i := range d.Nets {
		if w := d.WidthOf(i); w > maxW {
			maxW = w
		}
	}
	wire := maxW + d.Rules.MinSpacing                       // ≥ Clearance(a, b) for all pairs
	via := d.Rules.ViaWidth/2 + d.Rules.MinSpacing + maxW/2 // ≥ every via-wire limit
	return math.Max(math.Max(wire, via), math.Max(8*d.Rules.Pitch(), 50))
}

type netSeg struct {
	net int
	seg geom.Segment
}

type netVia struct {
	net int
	pos geom.Point
}

func newPolisher(routes []*Route, d *design.Design) *polisher {
	p := &polisher{
		d: d, rules: d.Rules,
		layerSegs: make([][]netSeg, d.WireLayers),
		layerVias: make([][]netVia, d.WireLayers),
	}
	// Counting pass so the per-layer views are built with exactly one
	// allocation each.
	segN := make([]int, d.WireLayers)
	viaN := make([]int, d.WireLayers)
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for _, s := range rt.Segs {
			if len(s.Pl) > 1 {
				segN[s.Layer] += len(s.Pl) - 1
			}
		}
		for _, v := range rt.Vias {
			viaN[v.Layer]++
			viaN[v.Layer+1]++
		}
	}
	for l := 0; l < d.WireLayers; l++ {
		p.layerSegs[l] = make([]netSeg, 0, segN[l])
		p.layerVias[l] = make([]netVia, 0, viaN[l])
	}
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for _, s := range rt.Segs {
			pl := s.Pl
			for i := 1; i < len(pl); i++ {
				p.layerSegs[s.Layer] = append(p.layerSegs[s.Layer], netSeg{rt.Net, geom.Seg(pl[i-1], pl[i])})
			}
		}
		for _, v := range rt.Vias {
			// Via layer k touches wire layers k and k+1.
			p.layerVias[v.Layer] = append(p.layerVias[v.Layer], netVia{rt.Net, v.Pos})
			p.layerVias[v.Layer+1] = append(p.layerVias[v.Layer+1], netVia{rt.Net, v.Pos})
		}
	}
	p.cell = indexCell(d)
	p.segGrids = make([]flatGrid, d.WireLayers)
	p.viaGrids = make([]flatGrid, d.WireLayers)
	for l := 0; l < d.WireLayers; l++ {
		p.segGrids[l].fillNetSegs(p.layerSegs[l], p.cell, &p.scr)
		p.viaGrids[l].fillNetVias(p.layerVias[l], p.cell, &p.scr)
	}
	return p
}

// chordOK reports whether replacing the two original segments with the
// chord keeps clearance to every other net's wires and vias on the layer
// and stays out of keep-outs. A pre-existing shortfall does not block a
// removal as long as the chord comes no closer than the original path did.
//
// Candidates come from the layer's spatial indexes: a wire or via beyond
// one cell of the chord is beyond every queryable limit (indexCell bounds
// them all), so walking the chord's cell rectangle ±1 examines a superset
// of the candidates that can return false — the verdict is byte-identical
// to the full scan it replaces.
//
//rdl:noalloc
func (p *polisher) chordOK(chord, orig1, orig2 geom.Segment, layer, net int) bool {
	if p.d.SegmentBlocked(chord, layer, 0) {
		return false
	}
	segs := p.layerSegs[layer]
	g := &p.segGrids[layer]
	if len(g.items) > 0 {
		p.scr.begin(len(segs))
		x0, y0 := g.cellOf(chord.A)
		x1, y1 := g.cellOf(chord.B)
		for x := minInt(x0, x1) - 1; x <= maxInt(x0, x1)+1; x++ {
			if x < 0 || x >= g.nx {
				continue
			}
			for y := minInt(y0, y1) - 1; y <= maxInt(y0, y1)+1; y++ {
				if y < 0 || y >= g.ny {
					continue
				}
				c := y*g.nx + x
				for _, si := range g.items[g.starts[c]:g.starts[c+1]] {
					if p.scr.stamp[si] == p.scr.gen {
						continue
					}
					p.scr.stamp[si] = p.scr.gen
					ns := &segs[si]
					if p.d.SameGroup(ns.net, net) {
						continue
					}
					d, _, _ := chord.DistToSegment(ns.seg)
					limit := p.d.Clearance(net, ns.net)
					if d >= limit-1e-9 {
						continue
					}
					d1, _, _ := orig1.DistToSegment(ns.seg)
					d2, _, _ := orig2.DistToSegment(ns.seg)
					if d < math.Min(d1, d2)-1e-9 {
						return false
					}
				}
			}
		}
	}
	vias := p.layerVias[layer]
	vg := &p.viaGrids[layer]
	if len(vg.items) > 0 {
		p.scr.begin(len(vias))
		x0, y0 := vg.cellOf(chord.A)
		x1, y1 := vg.cellOf(chord.B)
		for x := minInt(x0, x1) - 1; x <= maxInt(x0, x1)+1; x++ {
			if x < 0 || x >= vg.nx {
				continue
			}
			for y := minInt(y0, y1) - 1; y <= maxInt(y0, y1)+1; y++ {
				if y < 0 || y >= vg.ny {
					continue
				}
				c := y*vg.nx + x
				for _, vi := range vg.items[vg.starts[c]:vg.starts[c+1]] {
					if p.scr.stamp[vi] == p.scr.gen {
						continue
					}
					p.scr.stamp[vi] = p.scr.gen
					nv := &vias[vi]
					if p.d.SameGroup(nv.net, net) {
						continue
					}
					limit := p.rules.ViaWidth/2 + p.rules.MinSpacing + p.d.WidthOf(net)/2
					d := chord.DistToPoint(nv.pos)
					if d >= limit-1e-9 {
						continue
					}
					orig := math.Min(orig1.DistToPoint(nv.pos), orig2.DistToPoint(nv.pos))
					if d < orig-1e-9 {
						return false
					}
				}
			}
		}
	}
	return true
}

// refresh replaces the stored segments of one layer and rebuilds the
// layer's spatial index over them. Polishing only removes vertices, so the
// refilled view never outgrows the buffers the initial build sized.
//
//rdl:noalloc
func (p *polisher) refresh(routes []*Route, layer int) {
	segs := p.layerSegs[layer][:0]
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for _, s := range rt.Segs {
			if s.Layer != layer {
				continue
			}
			pl := s.Pl
			for i := 1; i < len(pl); i++ {
				segs = append(segs, netSeg{rt.Net, geom.Seg(pl[i-1], pl[i])})
			}
		}
	}
	p.layerSegs[layer] = segs
	p.segGrids[layer].fillNetSegs(segs, p.cell, &p.scr)
}

// polishPolyline removes spike vertices and merges turn pairs closer than
// w_x, iterating both passes to a fixpoint. Every removal is validated
// against p's evolving geometry (p may be nil for unconditional polishing,
// used in tests). The input polyline is never modified: when nothing
// changes it is returned as-is, otherwise a fresh exact-size polyline comes
// back — all intermediate work happens in p's scratch buffers. Removal can
// only shorten the polyline, so "changed" is exactly "len differs".
func polishPolyline(in geom.Polyline, rules design.Rules, p *polisher, layer, net int) geom.Polyline {
	var pl geom.Polyline
	var blocked []geom.Point
	if p != nil {
		pl = p.plBuf[:0]
		blocked = p.blockedBuf[:0]
	}
	pl = append(pl, in...)
	pl = pl.SimplifyInPlace()
	accept := func(i int) bool {
		if p == nil {
			return true
		}
		return p.chordOK(geom.Seg(pl[i-1], pl[i+1]), geom.Seg(pl[i-1], pl[i]), geom.Seg(pl[i], pl[i+1]), layer, net)
	}
	isBlocked := func(pt geom.Point) bool {
		for _, b := range blocked {
			if b == pt {
				return true
			}
		}
		return false
	}
	for rounds := 0; rounds < 128; rounds++ {
		changed := false
		// Drop reflex spikes.
		for i := 1; i+1 < len(pl); i++ {
			if isBlocked(pl[i]) {
				continue
			}
			if geom.TurnAngle(pl[i-1], pl[i], pl[i+1]) > spikeTurn {
				if !accept(i) {
					blocked = append(blocked, pl[i])
					continue
				}
				pl = append(pl[:i], pl[i+1:]...)
				changed = true
				break
			}
		}
		if !changed {
			// Merge successive turns violating the w_x rule: drop the
			// vertex with the smaller turn (the gentler kink loses less
			// shape).
			for i := 1; i+2 < len(pl); i++ {
				if pl[i].Dist(pl[i+1]) >= rules.MinTurnDist {
					continue
				}
				t1 := geom.TurnAngle(pl[i-1], pl[i], pl[i+1])
				t2 := geom.TurnAngle(pl[i], pl[i+1], pl[min(i+2, len(pl)-1)])
				drop := i
				if t2 < t1 {
					drop = i + 1
				}
				if isBlocked(pl[drop]) {
					continue
				}
				if !accept(drop) {
					blocked = append(blocked, pl[drop])
					continue
				}
				pl = append(pl[:drop], pl[drop+1:]...)
				changed = true
				break
			}
		}
		if !changed {
			break
		}
	}
	pl = pl.SimplifyInPlace()
	if p != nil {
		p.plBuf = pl[:0]
		p.blockedBuf = blocked[:0]
	}
	if len(pl) == len(in) {
		return in
	}
	out := make(geom.Polyline, len(pl))
	copy(out, pl)
	return out
}

// PolishRoutes cleans every route in place, validating each vertex removal
// against all other nets' current geometry and the design's keep-outs, and
// returns the total wirelength after polishing.
func PolishRoutes(routes []*Route, d *design.Design) float64 {
	p := newPolisher(routes, d)
	rules := d.Rules
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for i := range rt.Segs {
			cleaned := polishPolyline(rt.Segs[i].Pl, rules, p, rt.Segs[i].Layer, rt.Net)
			if len(cleaned) != len(rt.Segs[i].Pl) {
				rt.Segs[i].Pl = cleaned
				p.refresh(routes, rt.Segs[i].Layer)
			}
		}
	}
	var total float64
	for _, rt := range routes {
		if rt != nil {
			total += rt.Wirelength()
		}
	}
	return total
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
