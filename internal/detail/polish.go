package detail

import (
	"math"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// Post-assembly polishing. The graph sometimes forces a guide to touch a
// tile edge and bounce back (the corner-exit pattern v → edge → adjacent
// edge), and the tangent construction can leave micro-jogs. Both appear in
// the final geometry as interior vertices with reflex turns or as turn
// pairs closer than the minimum turn-to-turn distance w_x. Removing such a
// vertex replaces two segments by their chord, which by the triangle
// inequality only shortens the wire — but the chord may cut into another
// net's clearance, so every removal is validated against the current
// geometry of all other nets before it is accepted.

// spikeTurn is the turn angle above which an interior vertex is treated as
// a spike/jog artifact rather than a deliberate detour apex (tangent detour
// apexes stay well below 90°).
const spikeTurn = 91 * math.Pi / 180

// polisher validates vertex removals against the evolving geometry of all
// routes and the design's keep-out regions.
type polisher struct {
	d     *design.Design
	rules design.Rules
	// layerSegs[layer] holds the current segments of every net.
	layerSegs map[int][]netSeg
	// layerVias[layer] holds the vias touching each wire layer (fixed).
	layerVias map[int][]netVia
}

type netSeg struct {
	net int
	seg geom.Segment
}

type netVia struct {
	net int
	pos geom.Point
}

func newPolisher(routes []*Route, d *design.Design) *polisher {
	p := &polisher{
		d: d, rules: d.Rules,
		layerSegs: make(map[int][]netSeg),
		layerVias: make(map[int][]netVia),
	}
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for _, s := range rt.Segs {
			for _, sg := range s.Pl.Segments() {
				p.layerSegs[s.Layer] = append(p.layerSegs[s.Layer], netSeg{rt.Net, sg})
			}
		}
		for _, v := range rt.Vias {
			// Via layer k touches wire layers k and k+1.
			p.layerVias[v.Layer] = append(p.layerVias[v.Layer], netVia{rt.Net, v.Pos})
			p.layerVias[v.Layer+1] = append(p.layerVias[v.Layer+1], netVia{rt.Net, v.Pos})
		}
	}
	return p
}

// chordOK reports whether replacing the two original segments with the
// chord keeps clearance to every other net's wires and vias on the layer
// and stays out of keep-outs. A pre-existing shortfall does not block a
// removal as long as the chord comes no closer than the original path did.
func (p *polisher) chordOK(chord, orig1, orig2 geom.Segment, layer, net int) bool {
	if p.d.SegmentBlocked(chord, layer, 0) {
		return false
	}
	for _, ns := range p.layerSegs[layer] {
		if p.d.SameGroup(ns.net, net) {
			continue
		}
		d, _, _ := chord.DistToSegment(ns.seg)
		limit := p.d.Clearance(net, ns.net)
		if d >= limit-1e-9 {
			continue
		}
		d1, _, _ := orig1.DistToSegment(ns.seg)
		d2, _, _ := orig2.DistToSegment(ns.seg)
		if d < math.Min(d1, d2)-1e-9 {
			return false
		}
	}
	for _, nv := range p.layerVias[layer] {
		if p.d.SameGroup(nv.net, net) {
			continue
		}
		limit := p.rules.ViaWidth/2 + p.rules.MinSpacing + p.d.WidthOf(net)/2
		d := chord.DistToPoint(nv.pos)
		if d >= limit-1e-9 {
			continue
		}
		orig := math.Min(orig1.DistToPoint(nv.pos), orig2.DistToPoint(nv.pos))
		if d < orig-1e-9 {
			return false
		}
	}
	return true
}

// refresh replaces the stored segments of one net on one layer.
func (p *polisher) refresh(routes []*Route, layer int) {
	segs := p.layerSegs[layer][:0]
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for _, s := range rt.Segs {
			if s.Layer != layer {
				continue
			}
			for _, sg := range s.Pl.Segments() {
				segs = append(segs, netSeg{rt.Net, sg})
			}
		}
	}
	p.layerSegs[layer] = segs
}

// polishPolyline removes spike vertices and merges turn pairs closer than
// w_x, iterating both passes to a fixpoint. Every removal is validated with
// ok (which may be nil for unconditional polishing, used in tests).
func polishPolyline(pl geom.Polyline, rules design.Rules, ok func(chord, orig1, orig2 geom.Segment) bool) geom.Polyline {
	pl = pl.Simplify()
	accept := func(i int) bool {
		if ok == nil {
			return true
		}
		return ok(geom.Seg(pl[i-1], pl[i+1]), geom.Seg(pl[i-1], pl[i]), geom.Seg(pl[i], pl[i+1]))
	}
	blocked := make(map[geom.Point]bool)
	for rounds := 0; rounds < 128; rounds++ {
		changed := false
		// Drop reflex spikes.
		for i := 1; i+1 < len(pl); i++ {
			if blocked[pl[i]] {
				continue
			}
			if geom.TurnAngle(pl[i-1], pl[i], pl[i+1]) > spikeTurn {
				if !accept(i) {
					blocked[pl[i]] = true
					continue
				}
				pl = append(pl[:i], pl[i+1:]...)
				changed = true
				break
			}
		}
		if !changed {
			// Merge successive turns violating the w_x rule: drop the
			// vertex with the smaller turn (the gentler kink loses less
			// shape).
			for i := 1; i+2 < len(pl); i++ {
				if pl[i].Dist(pl[i+1]) >= rules.MinTurnDist {
					continue
				}
				t1 := geom.TurnAngle(pl[i-1], pl[i], pl[i+1])
				t2 := geom.TurnAngle(pl[i], pl[i+1], pl[min(i+2, len(pl)-1)])
				drop := i
				if t2 < t1 {
					drop = i + 1
				}
				if blocked[pl[drop]] {
					continue
				}
				if !accept(drop) {
					blocked[pl[drop]] = true
					continue
				}
				pl = append(pl[:drop], pl[drop+1:]...)
				changed = true
				break
			}
		}
		if !changed {
			break
		}
	}
	return pl.Simplify()
}

// PolishRoutes cleans every route in place, validating each vertex removal
// against all other nets' current geometry and the design's keep-outs, and
// returns the total wirelength after polishing.
func PolishRoutes(routes []*Route, d *design.Design) float64 {
	p := newPolisher(routes, d)
	rules := d.Rules
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for i := range rt.Segs {
			layer := rt.Segs[i].Layer
			net := rt.Net
			cleaned := polishPolyline(rt.Segs[i].Pl, rules, func(chord, o1, o2 geom.Segment) bool {
				return p.chordOK(chord, o1, o2, layer, net)
			})
			if len(cleaned) != len(rt.Segs[i].Pl) {
				rt.Segs[i].Pl = cleaned
				p.refresh(routes, layer)
			}
		}
	}
	var total float64
	for _, rt := range routes {
		if rt != nil {
			total += rt.Wirelength()
		}
	}
	return total
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
