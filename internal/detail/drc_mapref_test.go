package detail

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// Map-grid reference implementation of the DRC spacing scan: the
// `map[[2]int][]int` spatial hash plus per-unit `map[[2]int]bool` seen-set
// the engine shipped with before the flat CSR grid replaced them. It is kept
// verbatim (absolute Floor-derived keys and all) as the differential
// baseline: TestDRCFlatHashMatchesMapGrid asserts the production engine's
// findings are byte-identical to this implementation on every dense case.

type mapGridLayer struct {
	layer int
	cell  float64
	segs  []drcSeg
	grid  map[[2]int][]int
}

func (l *mapGridLayer) key(p geom.Point) [2]int {
	return [2]int{int(math.Floor(p.X / l.cell)), int(math.Floor(p.Y / l.cell))}
}

// newMapGridLayer rebuilds a prepared layer's spatial hash as the legacy map
// grid at an arbitrary cell size (so tests can also reproduce the pre-fix
// pitch-derived sizing).
func newMapGridLayer(l *drcLayer, cell float64) *mapGridLayer {
	n := &mapGridLayer{layer: l.layer, cell: cell, segs: l.segs}
	n.grid = make(map[[2]int][]int)
	for i, e := range n.segs {
		k0 := n.key(e.seg.A)
		k1 := n.key(e.seg.B)
		for x := minInt(k0[0], k1[0]); x <= maxInt(k0[0], k1[0]); x++ {
			for y := minInt(k0[1], k1[1]); y <= maxInt(k0[1], k1[1]); y++ {
				n.grid[[2]int{x, y}] = append(n.grid[[2]int{x, y}], i)
			}
		}
	}
	return n
}

// spacingUnit is the legacy map-based scan, kept semantically verbatim:
// per-unit seen map keyed by segment pair, marked on violation.
func (l *mapGridLayer) spacingUnit(lo, hi int,
	sameNet func(a, b int) bool, clearFn func(a, b int) float64) []Violation {
	const eps = 1e-6
	var out []Violation
	seen := make(map[[2]int]bool)
	for si := lo; si < hi; si++ {
		s := l.segs[si]
		k0 := l.key(s.seg.A)
		k1 := l.key(s.seg.B)
		for x := minInt(k0[0], k1[0]) - 1; x <= maxInt(k0[0], k1[0])+1; x++ {
			for y := minInt(k0[1], k1[1]) - 1; y <= maxInt(k0[1], k1[1])+1; y++ {
				for _, ei := range l.grid[[2]int{x, y}] {
					e := l.segs[ei]
					if e.net <= s.net || sameNet(e.net, s.net) {
						continue
					}
					if seen[[2]int{s.id, e.id}] {
						continue
					}
					limit := clearFn(s.net, e.net)
					dist, pa, _ := s.seg.DistToSegment(e.seg)
					if dist >= limit-eps {
						continue
					}
					seen[[2]int{s.id, e.id}] = true
					out = append(out, Violation{
						Kind: SpacingViolation, Layer: l.layer,
						NetA: s.net, NetB: e.net, Where: pa,
						Value: dist, Limit: limit,
					})
				}
			}
		}
	}
	return out
}

// mapGridFindings mirrors checkDRC's serial path with the legacy map-grid
// spacing scan substituted for the flat one: same layer preparation, same
// wire-rule and obstacle units, same canonical sort.
func mapGridFindings(routes []*Route, d *design.Design) []Violation {
	var out []Violation
	for layer := 0; layer < d.WireLayers; layer++ {
		l := buildLayer(routes, layer, d.Rules, netRules{d: d}, &drcScratch{})
		ref := newMapGridLayer(l, l.cell)
		out = append(out, ref.spacingUnit(0, len(ref.segs), d.SameGroup, d.Clearance)...)
		out = append(out, l.wireRuleUnit(0, len(l.lines), d.Rules)...)
	}
	if len(d.Obstacles) > 0 {
		out = append(out, obstacleUnit(routes, 0, len(routes), d)...)
	}
	sortViolations(out)
	return out
}

// TestDRCFlatHashMatchesMapGrid is the tentpole's differential pin: on every
// dense benchmark the flat CSR spatial hash yields byte-identical sorted
// findings to the legacy map-grid implementation, at pool sizes 1 and 4.
func TestDRCFlatHashMatchesMapGrid(t *testing.T) {
	cases := design.DenseNames()
	if testing.Short() {
		cases = cases[:2]
	}
	for _, name := range cases {
		d, routes := routedCase(t, name)
		want := mapGridFindings(routes, d)
		ref := fmt.Sprintf("%v", want)
		for _, workers := range []int{1, 4} {
			got := CheckDRCParallel(routes, d, DRCOptions{Workers: workers})
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: flat-hash findings differ from map-grid reference at %d workers (%d vs %d)",
					name, workers, len(got), len(want))
			}
			if s := fmt.Sprintf("%v", got); s != ref {
				t.Fatalf("%s: flat-hash findings not byte-identical to map-grid reference at %d workers",
					name, workers)
			}
		}
		t.Logf("%s: %d findings byte-identical to map-grid reference", name, len(want))
	}
}
