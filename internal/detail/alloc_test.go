package detail

import (
	"context"
	"testing"
)

// TestDetailRunDoesNotAllocate pins the zero-allocation property of the
// detail stage's tile-routing hot path, mirroring the global stage's
// TestRouteSearchDoesNotAllocate: after one warm attempt has grown every
// job's scratch buffers (fit/full polylines, per-passage route buffers,
// routed lists, the failure buffer) to steady state, re-running tile routing
// over the whole design must not touch the heap. This is the property that
// makes retry attempts — which re-route every tile at enlarged clearance —
// free of allocation churn.
func TestDetailRunDoesNotAllocate(t *testing.T) {
	r, gres, _ := pipeline(t, "dense1", Options{})
	d := &Detailer{
		G: r.G, R: r,
		Opt:    Options{Workers: 1}.withDefaults(r.G.Design.Rules.Pitch()),
		guides: gres.Guides,
	}
	if err := d.buildChains(gres.Guides); err != nil {
		t.Fatal(err)
	}
	d.AdjustAccessPoints(context.Background())
	d.buildTileJobs()
	ctx := context.Background()
	// Warm-up: the first attempt sizes every scratch to its high-water mark.
	d.routeTiles(ctx, 1.0)

	var failed int
	allocs := testing.AllocsPerRun(20, func() {
		failed = len(d.routeTiles(ctx, 1.0))
	})
	_ = failed
	if allocs > 0 {
		t.Fatalf("warm routeTiles allocated %.1f allocs/run, want 0", allocs)
	}
}
