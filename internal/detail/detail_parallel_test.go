package detail

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/global"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// fingerprintRoutes renders every route — segments, polyline coordinates and
// vias — into one string, so two results compare byte-for-byte rather than
// merely approximately.
func fingerprintRoutes(routes []*Route) string {
	var b strings.Builder
	for net, rt := range routes {
		if rt == nil {
			fmt.Fprintf(&b, "%d:nil\n", net)
			continue
		}
		fmt.Fprintf(&b, "%d:%v\n", net, *rt)
	}
	return b.String()
}

// compareDetailWorkers routes a design once globally, then runs detailed
// routing at pool sizes 1, 2, 4 and 8 and demands byte-identical geometry
// and identical summary statistics across all of them.
func compareDetailWorkers(t *testing.T, d *design.Design) {
	t.Helper()
	plan, err := viaplan.Build(d, viaplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rgraph.Build(d, plan, rgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := global.New(g, global.Options{})
	gres, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	serial, err := Run(context.Background(), r, gres, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := fingerprintRoutes(serial.Routes)
	for _, workers := range []int{2, 4, 8} {
		par, err := Run(context.Background(), r, gres, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial.Routes, par.Routes) {
			t.Fatalf("workers=%d: routes differ from serial", workers)
		}
		if got := fingerprintRoutes(par.Routes); got != ref {
			t.Fatalf("workers=%d: geometry not byte-identical to serial", workers)
		}
		if par.Wirelength != serial.Wirelength {
			t.Fatalf("workers=%d: wirelength %v, serial %v", workers, par.Wirelength, serial.Wirelength)
		}
		if par.FitFailures != serial.FitFailures {
			t.Fatalf("workers=%d: fit failures %d, serial %d", workers, par.FitFailures, serial.FitFailures)
		}
		if par.AdjustedPartialNets != serial.AdjustedPartialNets {
			t.Fatalf("workers=%d: adjusted partial nets %d, serial %d",
				workers, par.AdjustedPartialNets, serial.AdjustedPartialNets)
		}
	}
	// Detailed routing must leave the global router's books untouched.
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDetailParallelMatchesSerial is the tentpole's differential guarantee
// for tile routing: on every dense benchmark, any pool size produces the
// same bytes as the serial reference.
func TestDetailParallelMatchesSerial(t *testing.T) {
	cases := design.DenseNames()
	if testing.Short() {
		cases = cases[:2]
	}
	for _, name := range cases {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			d, err := design.GenerateDense(name)
			if err != nil {
				t.Fatal(err)
			}
			compareDetailWorkers(t, d)
		})
	}
}

// TestDetailParallelRandomDesigns repeats the differential check on
// randomized designs, so the guarantee doesn't silently depend on the dense
// benchmarks' regular structure.
func TestDetailParallelRandomDesigns(t *testing.T) {
	specs := []design.RandomSpec{
		{Seed: 1},
		{Seed: 7, Chips: 4, NetsPerChannel: 16},
		{Seed: 42, Chips: 2, NetsPerChannel: 20, WireLayers: 3},
	}
	if testing.Short() {
		specs = specs[:1]
	}
	for _, spec := range specs {
		spec := spec
		t.Run(fmt.Sprintf("seed%d", spec.Seed), func(t *testing.T) {
			t.Parallel()
			d, err := design.GenerateRandom(spec)
			if err != nil {
				t.Fatal(err)
			}
			compareDetailWorkers(t, d)
		})
	}
}
