package detail

import (
	"context"
	"fmt"

	"rdlroute/internal/geom"
	"rdlroute/internal/global"
	"rdlroute/internal/obs"
	"rdlroute/internal/pool"
	"rdlroute/internal/rgraph"
)

// Options tunes detailed routing.
type Options struct {
	// Candidates is the user-defined number of candidate positions per
	// access point in the DP adjustment. Zero selects 9.
	Candidates int
	// MinMovable is the movable-range length (µm) below which an access
	// point is classified fixed. Zero selects 2× the wire pitch (resolved
	// at Run time).
	MinMovable float64
	// MaxFitIters bounds the tangent-construction iterations per passage.
	// Zero selects 48.
	MaxFitIters int
	// Retries is how many times detailed routing re-runs tile routing with
	// enlarged clearance after fit failures. Zero selects 2.
	Retries int
	// SkipAdjust disables the DP access-point adjustment (ablation): access
	// points stay at their even initial distribution.
	SkipAdjust bool
	// SkipReassign disables the post-assembly layer-reassignment pass
	// (ablation): avoidable layer detours keep their vias.
	SkipReassign bool
	// Workers is the worker-pool size for tile routing and route assembly.
	// Zero or negative selects GOMAXPROCS capped at 8; 1 runs the units
	// serially (the reference path the differential tests compare against).
	// Tiles are independent work units merged in canonical key order, so
	// every pool size produces byte-identical geometry.
	Workers int
	// Rec receives stage spans and counters. Nil selects the no-op
	// recorder.
	Rec obs.Recorder
}

func (o Options) workers() int { return pool.Default(o.Workers) }

func (o Options) withDefaults(pitch float64) Options {
	if o.Candidates == 0 {
		o.Candidates = 9
	}
	if o.MinMovable == 0 {
		o.MinMovable = 2 * pitch
	}
	if o.MaxFitIters == 0 {
		o.MaxFitIters = 48
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	return o
}

// RouteSeg is one single-layer piece of a net's final geometry.
type RouteSeg struct {
	Layer int
	Pl    geom.Polyline
}

// Route is the complete detailed route of one net.
type Route struct {
	Net  int
	Segs []RouteSeg
	// Vias are the via positions used by this net, paired with the via
	// layer each sits on. Vias[i] joins Segs[i] and Segs[i+1].
	Vias []ViaUse
}

// ViaUse records one via taken by a route.
type ViaUse struct {
	Pos geom.Point
	// Layer is the via layer index, matching viaplan.Via.Layer: via layer k
	// joins wire layers k and k+1 (k is the smaller — physically upper —
	// of the two wire layers under the 0-is-top convention). stats keys its
	// Vias map by this index, svg draws the via on wire layers k and k+1,
	// and the verifier applies via spacing rules per this index; the shared
	// definition is pinned by TestViaLayerSemanticsAgree.
	Layer int
}

// Wirelength returns the total wire length of the route (vias excluded,
// matching the paper's wirelength metric).
func (r *Route) Wirelength() float64 {
	var sum float64
	for _, s := range r.Segs {
		sum += s.Pl.Length()
	}
	return sum
}

// Result is the outcome of detailed routing.
type Result struct {
	// Routes holds one route per net ID; nil entries were not globally
	// routed.
	Routes []*Route
	// Wirelength is the total over all routed nets.
	Wirelength float64
	// FitFailures counts passages whose fit routing could not clear all
	// spacing violations within the iteration bound (after retries).
	FitFailures int
	// AdjustedPartialNets is the number of partial nets processed by the DP
	// pass.
	AdjustedPartialNets int
	// Reassign summarizes the layer-reassignment pass (zero when the pass
	// was skipped).
	Reassign ReassignStats
	// Stopped reports that the run's context was cancelled or expired
	// before detailed routing finished; the geometry of passages not
	// reached falls back to straight chain hops.
	Stopped bool

	failedNets []int // net of each fit-failed passage (diagnostics)
}

// Run executes detailed routing for the guides committed in the global
// router. Cancelling ctx stops the run at the next phase boundary (between
// the DP adjustment, retry attempts, and individual tiles); passages not
// reached fall back to straight chain hops so the returned geometry is
// complete but degraded, with Result.Stopped set.
func Run(ctx context.Context, r *global.Router, res *global.Result, opt Options) (*Result, error) {
	d := &Detailer{
		G:      r.G,
		R:      r,
		Opt:    opt.withDefaults(r.G.Design.Rules.Pitch()),
		rec:    obs.Or(opt.Rec),
		guides: res.Guides,
	}
	span := obs.StartSpan(d.rec, "detail")
	defer span.End()
	if err := d.buildChains(res.Guides); err != nil {
		return nil, err
	}
	if !d.Opt.SkipAdjust && !obs.Stopped(ctx) {
		adj := obs.StartSpan(d.rec, "detail.adjust")
		d.processed = d.AdjustAccessPoints(ctx)
		adj.End()
	}

	fit := obs.StartSpan(d.rec, "detail.fit")
	d.buildTileJobs()
	scale := 1.0
	var failures []*tilePassage
	for attempt := 0; ; attempt++ {
		failures = d.routeTiles(ctx, scale)
		if len(failures) == 0 || attempt >= d.Opt.Retries || obs.Stopped(ctx) {
			break
		}
		// Enlarge the distance that needs to be kept and iterate (§III-B2b).
		d.fitRetries++
		scale *= 1.15
	}
	fit.End()

	out := &Result{
		Routes:              make([]*Route, len(d.Chains)),
		FitFailures:         len(failures),
		AdjustedPartialNets: d.processed,
		Stopped:             obs.Stopped(ctx),
	}
	for _, f := range failures {
		out.failedNets = append(out.failedNets, f.net)
	}
	// Assembly fans out over fixed net chunks; each unit writes its own
	// disjoint out.Routes slots, so the merged result is independent of the
	// pool size, and the first error in chunk order matches the error the
	// serial loop would have hit first.
	const assembleChunk = 32
	var units []func() error
	for lo := 0; lo < len(d.Chains); lo += assembleChunk {
		lo, hi := lo, minInt(lo+assembleChunk, len(d.Chains))
		units = append(units, func() error {
			// One stitch buffer per chunk: assemble reuses it across the
			// chunk's nets and copies only the final simplified geometry out.
			var cur geom.Polyline
			for net := lo; net < hi; net++ {
				ch := d.Chains[net]
				if ch == nil {
					continue
				}
				route, err := d.assemble(net, ch, &cur)
				if err != nil {
					return err
				}
				out.Routes[net] = route
			}
			return nil
		})
	}
	for _, err := range pool.Run(units, d.Opt.workers()) {
		if err != nil {
			return nil, err
		}
	}
	if !d.Opt.SkipReassign {
		out.Reassign = ReassignRoutes(out.Routes, r.G.Design)
	}
	out.Wirelength = PolishRoutes(out.Routes, r.G.Design)
	if d.rec.Enabled() {
		d.rec.Count("detail.reassign.vias_removed",
			int64(out.Reassign.ViasBefore-out.Reassign.ViasAfter))
		d.rec.Count("detail.reassign.segments_merged", int64(out.Reassign.SegmentsMerged))
		d.rec.Count("detail.dp.heap_ops", d.dpHeapOps)
		d.rec.Count("detail.dp.partial_nets", int64(d.processed))
		d.rec.Count("detail.fit.tangent_constructions", d.fitTangents)
		d.rec.Count("detail.fit.retries", d.fitRetries)
		d.rec.Count("detail.fit.failures", int64(len(failures)))
	}
	return out, nil
}

// assemble stitches a net's per-hop polylines into per-layer segments. The
// scratch polyline carries the growing single-layer stitch between flushes
// and is reused across the caller's nets; only the final simplified
// geometry of each segment is copied into the route.
func (d *Detailer) assemble(net int, ch *Chain, scratch *geom.Polyline) (*Route, error) {
	route := &Route{Net: net}
	guide := d.guideOf(net)
	cur := (*scratch)[:0]
	curLayer := ch.Elems[0].Layer
	flush := func(cur geom.Polyline) geom.Polyline {
		if len(cur) >= 2 {
			cur = cur.SimplifyInPlace()
			seg := make(geom.Polyline, len(cur))
			copy(seg, cur)
			route.Segs = append(route.Segs, RouteSeg{Layer: curLayer, Pl: seg})
		}
		return cur[:0]
	}
	for i := 0; i+1 < len(ch.Elems); i++ {
		link := d.G.Link(guide.Links[i])
		if link.Kind == rgraph.CrossVia {
			cur = flush(cur)
			pos := d.ElemPos(ch.Elems[i])
			// The via layer index is the smaller of the two wire layers the
			// via joins (via layer k connects wire layers k and k+1).
			vl := ch.Elems[i].Layer
			if ch.Elems[i+1].Layer < vl {
				vl = ch.Elems[i+1].Layer
			}
			route.Vias = append(route.Vias, ViaUse{Pos: pos, Layer: vl})
			curLayer = ch.Elems[i+1].Layer
			continue
		}
		pl := d.hopAt(net, i)
		if len(pl) < 2 {
			// No tile geometry (the tile was skipped after cancellation);
			// fall back to the straight hop.
			p0, p1 := d.ElemPos(ch.Elems[i]), d.ElemPos(ch.Elems[i+1])
			if len(cur) == 0 {
				cur = append(cur, p0, p1)
				continue
			}
			if !cur[len(cur)-1].ApproxEq(p0) {
				return nil, fmt.Errorf("detail: net %d hop %d discontinuous", net, i)
			}
			cur = append(cur, p1)
			continue
		}
		if len(cur) == 0 {
			cur = append(cur, pl...)
		} else {
			if !cur[len(cur)-1].ApproxEq(pl[0]) {
				return nil, fmt.Errorf("detail: net %d hop %d discontinuous", net, i)
			}
			cur = append(cur, pl[1:]...)
		}
	}
	cur = flush(cur)
	*scratch = cur
	if len(route.Segs) == 0 {
		return nil, fmt.Errorf("detail: net %d produced no geometry", net)
	}
	return route, nil
}

// SegmentsOnLayer returns all (net, polyline) pairs of one layer, sorted by
// net ID. Used by DRC and rendering.
func SegmentsOnLayer(routes []*Route, layer int) []RouteOnLayer {
	var out []RouteOnLayer
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for _, s := range rt.Segs {
			if s.Layer == layer {
				out = append(out, RouteOnLayer{Net: rt.Net, Pl: s.Pl})
			}
		}
	}
	// Stable insertion sort; routes arrive in net order already, so this is
	// one linear verification pass with no reflect-swapper allocation.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Net < out[j-1].Net; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RouteOnLayer pairs a net with one of its single-layer polylines.
type RouteOnLayer struct {
	Net int
	Pl  geom.Polyline
}

// FailedHops returns the net ID of every fit-failed passage of the last
// run, one entry per failed hop. Diagnostic helper.
func (r *Result) FailedHops() []int { return r.failedNets }
