package detail

import (
	"context"
	"math"
	"testing"

	"rdlroute/internal/geom"
	"rdlroute/internal/global"
	"rdlroute/internal/rgraph"
)

// newDetailer routes a design globally and builds a Detailer without running
// the adjustment, so tests can drive it step by step.
func newDetailer(t *testing.T, name string) (*global.Router, *Detailer) {
	t.Helper()
	r, gres, _ := pipeline(t, name, Options{SkipAdjust: true})
	d := &Detailer{
		G: r.G, R: r,
		Opt:    Options{}.withDefaults(r.G.Design.Rules.Pitch()),
		guides: gres.Guides,
	}
	if err := d.buildChains(gres.Guides); err != nil {
		t.Fatal(err)
	}
	return r, d
}

func TestAdjustmentNeverLengthensAnyChain(t *testing.T) {
	// The DP candidate set includes every access point's current position,
	// so no partial-net optimization can make its chain longer. The only
	// sanctioned growth is the over-constraint packing fallback, which
	// trades a little length for legal spacing; it stays small.
	_, d := newDetailer(t, "dense2")
	before := make([]float64, len(d.Chains))
	var beforeTotal float64
	for ni := range d.Chains {
		if d.Chains[ni] != nil {
			before[ni] = d.StraightLength(ni)
			beforeTotal += before[ni]
		}
	}
	if n := d.AdjustAccessPoints(context.Background()); n == 0 {
		t.Fatal("no partial nets processed")
	}
	var afterTotal float64
	for ni := range d.Chains {
		if d.Chains[ni] == nil {
			continue
		}
		after := d.StraightLength(ni)
		afterTotal += after
		if after > before[ni]*1.05+1e-6 {
			t.Errorf("net %d chain grew beyond packing slack: %.3f -> %.3f", ni, before[ni], after)
		}
	}
	if afterTotal >= beforeTotal {
		t.Errorf("adjustment did not shorten overall: %.1f -> %.1f", beforeTotal, afterTotal)
	}
}

func TestAdjustmentRespectsRanges(t *testing.T) {
	_, d := newDetailer(t, "dense1")
	d.AdjustAccessPoints(context.Background())
	for i := range d.APs {
		ap := &d.APs[i]
		if ap.T < 0-1e-9 || ap.T > 1+1e-9 {
			t.Fatalf("AP %d parameter %v outside [0,1]", i, ap.T)
		}
		if ap.Lo <= ap.Hi && (ap.T < ap.Lo-1e-9 || ap.T > ap.Hi+1e-9) {
			t.Fatalf("AP %d at %v outside its range [%v, %v]", i, ap.T, ap.Lo, ap.Hi)
		}
	}
}

func TestAdjustmentKeepsSequenceOrder(t *testing.T) {
	// After adjustment, access points on every edge must still appear in
	// sequence order along the edge (crossing-freedom depends on it).
	r, d := newDetailer(t, "dense2")
	d.AdjustAccessPoints(context.Background())
	for id := range d.G.Nodes {
		node := d.G.Node(rgraph.NodeID(id))
		if node.Kind != rgraph.EdgeNode {
			continue
		}
		seq := r.Sequences(rgraph.NodeID(id))
		prev := -1.0
		for _, net := range seq {
			apIdx, ok := d.apAt[apKey{rgraph.NodeID(id), net}]
			if !ok {
				t.Fatalf("edge %d missing AP for net %d", id, net)
			}
			tt := d.APs[apIdx].T
			if tt <= prev {
				t.Fatalf("edge %d: sequence order broken (%v after %v)", id, tt, prev)
			}
			prev = tt
		}
	}
}

func TestDPBeatsGreedyOnChains(t *testing.T) {
	// The DP must reach at least the quality of a simple greedy pass that
	// projects each access point onto the line between its chain
	// neighbours one at a time (a strictly weaker optimizer).
	_, dpD := newDetailer(t, "dense1")
	dpD.AdjustAccessPoints(context.Background())
	var dpTotal float64
	for ni := range dpD.Chains {
		if dpD.Chains[ni] != nil {
			dpTotal += dpD.StraightLength(ni)
		}
	}

	_, grD := newDetailer(t, "dense1")
	grD.refreshAllRanges()
	for pass := 0; pass < 3; pass++ {
		for i := range grD.APs {
			ap := &grD.APs[i]
			if ap.Fixed || ap.Hi <= ap.Lo {
				continue
			}
			ch := grD.Chains[ap.Net]
			if ch == nil || ap.ElemIdx <= 0 || ap.ElemIdx+1 >= len(ch.Elems) {
				continue
			}
			node := grD.G.Node(ap.Node)
			prev := grD.ElemPos(ch.Elems[ap.ElemIdx-1])
			next := grD.ElemPos(ch.Elems[ap.ElemIdx+1])
			// Best parameter on the edge for the local detour: sample.
			bestT, bestC := ap.T, math.Inf(1)
			for k := 0; k <= 32; k++ {
				tt := ap.Lo + (ap.Hi-ap.Lo)*float64(k)/32
				p := node.EndA.Lerp(node.EndB, tt)
				c := prev.Dist(p) + p.Dist(next)
				if c < bestC {
					bestC, bestT = c, tt
				}
			}
			ap.T = bestT
		}
	}
	var grTotal float64
	for ni := range grD.Chains {
		if grD.Chains[ni] != nil {
			grTotal += grD.StraightLength(ni)
		}
	}
	if dpTotal > grTotal*1.02 {
		t.Errorf("DP total %.1f worse than greedy %.1f", dpTotal, grTotal)
	}
	t.Logf("DP %.1f vs greedy %.1f (%.2f%% better)", dpTotal, grTotal,
		100*(grTotal-dpTotal)/grTotal)
}

func TestIncidenceFactorBounds(t *testing.T) {
	_, d := newDetailer(t, "dense1")
	for id := range d.G.Nodes {
		node := d.G.Node(rgraph.NodeID(id))
		if node.Kind != rgraph.EdgeNode {
			continue
		}
		for _, net := range d.R.Sequences(rgraph.NodeID(id)) {
			f := d.incidenceFactor(rgraph.NodeID(id), net)
			if f < 1-1e-9 || f > 2.5+1e-9 {
				t.Fatalf("incidence factor %v out of [1, 2.5]", f)
			}
		}
	}
	// Perpendicular crossing has factor 1: synthesize via geometry check.
	if s := math.Abs(geom.Pt(0, 1).Cross(geom.Pt(1, 0))); s != 1 {
		t.Fatal("sanity: cross of perpendicular units")
	}
}
