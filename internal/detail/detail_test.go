package detail

import (
	"context"
	"math"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/global"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// pipeline assembles the full routing stack for a benchmark design.
func pipeline(t testing.TB, name string, dopt Options) (*global.Router, *global.Result, *Result) {
	t.Helper()
	d, err := design.GenerateDense(name)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := viaplan.Build(d, viaplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rgraph.Build(d, plan, rgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := global.New(g, global.Options{})
	gres, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dres, err := Run(context.Background(), r, gres, dopt)
	if err != nil {
		t.Fatal(err)
	}
	return r, gres, dres
}

func TestDense1EndToEnd(t *testing.T) {
	r, gres, dres := pipeline(t, "dense1", Options{})
	if gres.Routability() != 1 {
		t.Fatalf("routability = %v", gres.Routability())
	}
	if dres.Wirelength <= 0 {
		t.Fatal("no wirelength")
	}
	d := r.G.Design
	for ni, rt := range dres.Routes {
		if rt == nil {
			t.Fatalf("net %d has no route", ni)
		}
		// Every route starts and ends at its pins.
		net := d.Nets[ni]
		a, b := d.PinPos(net)
		first := rt.Segs[0].Pl[0]
		lastSeg := rt.Segs[len(rt.Segs)-1].Pl
		last := lastSeg[len(lastSeg)-1]
		if !first.ApproxEq(a) {
			t.Errorf("net %d starts at %v, want %v", ni, first, a)
		}
		if !last.ApproxEq(b) {
			t.Errorf("net %d ends at %v, want %v", ni, last, b)
		}
		// Route length is at least the pin-to-pin distance when single-layer
		// and single-segment (the general lower bound needs via hops, so
		// only check the direct case).
		if len(rt.Segs) == 1 && rt.Segs[0].Pl.Length() < a.Dist(b)-1e-6 {
			t.Errorf("net %d shorter than its pin distance", ni)
		}
	}
}

func TestRouteLayersMatchVias(t *testing.T) {
	_, _, dres := pipeline(t, "dense3", Options{})
	multi := 0
	for _, rt := range dres.Routes {
		if rt == nil {
			continue
		}
		if len(rt.Segs) != len(rt.Vias)+1 {
			t.Fatalf("net %d: %d segments with %d vias", rt.Net, len(rt.Segs), len(rt.Vias))
		}
		if len(rt.Vias) > 0 {
			multi++
			if len(rt.Vias)%2 != 0 {
				t.Errorf("net %d uses %d vias; pins are both on layer 0 so via count must be even",
					rt.Net, len(rt.Vias))
			}
		}
	}
	if multi == 0 {
		t.Error("no net used vias; crossing pad pattern should force layer changes")
	}
}

func TestAdjustmentReducesWirelength(t *testing.T) {
	_, _, with := pipeline(t, "dense1", Options{})
	_, _, without := pipeline(t, "dense1", Options{SkipAdjust: true})
	if with.AdjustedPartialNets == 0 {
		t.Fatal("no partial nets processed")
	}
	if without.AdjustedPartialNets != 0 {
		t.Fatal("SkipAdjust did not skip")
	}
	if with.Wirelength >= without.Wirelength {
		t.Errorf("DP adjustment did not help: %v (with) vs %v (without)",
			with.Wirelength, without.Wirelength)
	}
	t.Logf("wirelength with adjustment %.0f, without %.0f (%.1f%% gain)",
		with.Wirelength, without.Wirelength,
		100*(without.Wirelength-with.Wirelength)/without.Wirelength)
}

func TestDRCQuality(t *testing.T) {
	for _, name := range []string{"dense1", "dense2"} {
		r, _, dres := pipeline(t, name, Options{})
		vs := CheckDRC(dres.Routes, r.G.Design.Rules, r.G.Design.WireLayers)
		var spacing, angle, turn int
		for _, v := range vs {
			switch v.Kind {
			case SpacingViolation:
				spacing++
			case AngleViolation:
				angle++
			default:
				turn++
			}
		}
		// Count total segments as the denominator for the quality bar.
		segs := 0
		for _, rt := range dres.Routes {
			if rt == nil {
				continue
			}
			for _, s := range rt.Segs {
				segs += len(s.Pl) - 1
			}
		}
		// Clearance-aware polish refuses removals that would cut into
		// another net's wires or vias, so a handful of residual kinks are
		// legitimate; the bars keep each class below a small fraction of
		// all segments.
		if turn > segs/50 {
			t.Errorf("%s: %d turn-distance violations over %d segments", name, turn, segs)
		}
		if angle > segs/100 {
			t.Errorf("%s: %d angle violations over %d segments", name, angle, segs)
		}
		if spacing > segs/20 {
			t.Errorf("%s: %d spacing violations over %d segments", name, spacing, segs)
		}
		t.Logf("%s: %d segments, %d spacing / %d angle / %d turn violations",
			name, segs, spacing, angle, turn)
	}
}

func TestRoutesContinuous(t *testing.T) {
	_, _, dres := pipeline(t, "dense2", Options{})
	for _, rt := range dres.Routes {
		if rt == nil {
			continue
		}
		for si, s := range rt.Segs {
			if len(s.Pl) < 2 {
				t.Fatalf("net %d segment %d has %d points", rt.Net, si, len(s.Pl))
			}
			for i := 1; i < len(s.Pl); i++ {
				if s.Pl[i].ApproxEq(s.Pl[i-1]) {
					t.Errorf("net %d segment %d has a zero-length edge at %d", rt.Net, si, i)
				}
			}
		}
		// Consecutive segments are joined by a via at matching position.
		for vi, v := range rt.Vias {
			endOfPrev := rt.Segs[vi].Pl[len(rt.Segs[vi].Pl)-1]
			startOfNext := rt.Segs[vi+1].Pl[0]
			if !endOfPrev.ApproxEq(v.Pos) || !startOfNext.ApproxEq(v.Pos) {
				t.Errorf("net %d via %d not at segment junction", rt.Net, vi)
			}
		}
	}
}

func TestPolishPolyline(t *testing.T) {
	rules := design.DefaultRules()
	// A spike: path doubles back at (10, 0).
	spike := geom.Polyline{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 0.1), geom.Pt(5, 10)}
	out := polishPolyline(spike, rules, nil, 0, 0)
	if out.MaxTurnAngle() > spikeTurn {
		t.Errorf("spike survived: %v", out)
	}
	if out.Length() > spike.Length() {
		t.Error("polish lengthened the wire")
	}
	// Turn pair closer than w_x.
	jog := geom.Polyline{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(11, 1), geom.Pt(20, 2)}
	out = polishPolyline(jog, rules, nil, 0, 0)
	if d := out.MinTurnSpacing(); d < rules.MinTurnDist && !math.IsInf(d, 1) {
		t.Errorf("turn spacing still %v", d)
	}
	// A clean straight polyline is untouched.
	straight := geom.Polyline{geom.Pt(0, 0), geom.Pt(100, 0)}
	out = polishPolyline(straight, rules, nil, 0, 0)
	if len(out) != 2 {
		t.Errorf("straight line modified: %v", out)
	}
}

func TestSegmentsOnLayer(t *testing.T) {
	_, _, dres := pipeline(t, "dense1", Options{})
	l0 := SegmentsOnLayer(dres.Routes, 0)
	if len(l0) == 0 {
		t.Fatal("no layer-0 geometry")
	}
	for i := 1; i < len(l0); i++ {
		if l0[i].Net < l0[i-1].Net {
			t.Fatal("SegmentsOnLayer not sorted by net")
		}
	}
	if out := SegmentsOnLayer(dres.Routes, 99); len(out) != 0 {
		t.Error("nonexistent layer returned geometry")
	}
}

func TestCheckDRCDetectsPlantedViolations(t *testing.T) {
	rules := design.DefaultRules()
	mk := func(pl geom.Polyline, net int) *Route {
		return &Route{Net: net, Segs: []RouteSeg{{Layer: 0, Pl: pl}}}
	}
	// Two parallel wires 1 µm apart: spacing violation.
	routes := []*Route{
		mk(geom.Polyline{geom.Pt(0, 0), geom.Pt(100, 0)}, 0),
		mk(geom.Polyline{geom.Pt(0, 1), geom.Pt(100, 1)}, 1),
	}
	vs := CheckDRC(routes, rules, 1)
	if len(vs) == 0 || vs[0].Kind != SpacingViolation {
		t.Fatalf("parallel 1µm wires not flagged: %v", vs)
	}
	// Same net: no violation.
	routes[1].Net = 0
	if vs := CheckDRC(routes, rules, 1); len(vs) != 0 {
		t.Errorf("same-net proximity flagged: %v", vs)
	}
	// Sharp angle.
	sharp := []*Route{mk(geom.Polyline{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 1)}, 0)}
	found := false
	for _, v := range CheckDRC(sharp, rules, 1) {
		if v.Kind == AngleViolation {
			found = true
		}
	}
	if !found {
		t.Error("sharp turn not flagged")
	}
	// Turn-to-turn too close.
	tight := []*Route{mk(geom.Polyline{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(11, 1), geom.Pt(20, 1)}, 0)}
	found = false
	for _, v := range CheckDRC(tight, rules, 1) {
		if v.Kind == TurnDistViolation {
			found = true
		}
	}
	if !found {
		t.Error("tight turn pair not flagged")
	}
}

func TestNetsWithViolations(t *testing.T) {
	vs := []Violation{
		{Kind: SpacingViolation, NetA: 1, NetB: 2},
		{Kind: AngleViolation, NetA: 3, NetB: -1},
	}
	nets := NetsWithViolations(vs)
	if !nets[1] || !nets[2] || !nets[3] || nets[0] || nets[-1] {
		t.Errorf("NetsWithViolations = %v", nets)
	}
}

func TestViolationStrings(t *testing.T) {
	kinds := []ViolationKind{SpacingViolation, AngleViolation, TurnDistViolation}
	for _, k := range kinds {
		v := Violation{Kind: k, NetA: 1, NetB: 2, Value: 1, Limit: 4}
		if v.String() == "" || k.String() == "" {
			t.Error("empty violation string")
		}
	}
}

func TestStraightLength(t *testing.T) {
	r, gres, _ := pipeline(t, "dense1", Options{})
	d := &Detailer{G: r.G, R: r, Opt: Options{}.withDefaults(r.G.Design.Rules.Pitch()), guides: gres.Guides}
	if err := d.buildChains(gres.Guides); err != nil {
		t.Fatal(err)
	}
	for ni := range d.Chains {
		if d.Chains[ni] == nil {
			continue
		}
		sl := d.StraightLength(ni)
		hp := r.G.Design.NetHPWL(r.G.Design.Nets[ni])
		if sl < hp-1e-6 {
			t.Errorf("net %d straight chain %v below pin distance %v", ni, sl, hp)
		}
	}
	if d.StraightLength(0) <= 0 {
		t.Error("zero straight length")
	}
}
