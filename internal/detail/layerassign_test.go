package detail

import (
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// reassignDesign builds a minimal two-layer design for synthetic routes.
func reassignDesign() *design.Design {
	return &design.Design{
		Name:    "reassign",
		Rules:   design.DefaultRules(),
		Outline: geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1000, 1000)},
		// Net entries keep GroupOf distinct per net (out-of-range IDs all
		// map to one sentinel group, which would disable spacing checks).
		Nets:       []design.Net{{ID: 0}, {ID: 1}, {ID: 2}},
		WireLayers: 2,
	}
}

// sandwichRoute is a net that detours through layer 1 between two layer-0
// segments: the canonical foldable pattern (two avoidable vias).
func sandwichRoute(net int) *Route {
	return &Route{
		Net: net,
		Segs: []RouteSeg{
			{Layer: 0, Pl: geom.Polyline{geom.Pt(100, 500), geom.Pt(300, 500)}},
			{Layer: 1, Pl: geom.Polyline{geom.Pt(300, 500), geom.Pt(600, 500)}},
			{Layer: 0, Pl: geom.Polyline{geom.Pt(600, 500), geom.Pt(900, 500)}},
		},
		Vias: []ViaUse{
			{Pos: geom.Pt(300, 500), Layer: 0},
			{Pos: geom.Pt(600, 500), Layer: 0},
		},
	}
}

func TestReassignFoldsSandwich(t *testing.T) {
	routes := []*Route{sandwichRoute(0)}
	st := ReassignRoutes(routes, reassignDesign())
	rt := routes[0]
	if len(rt.Segs) != 1 || len(rt.Vias) != 0 {
		t.Fatalf("fold left %d segs, %d vias; want 1 seg, 0 vias", len(rt.Segs), len(rt.Vias))
	}
	if rt.Segs[0].Layer != 0 {
		t.Errorf("merged segment on layer %d, want 0", rt.Segs[0].Layer)
	}
	want := geom.Polyline{geom.Pt(100, 500), geom.Pt(900, 500)}
	if len(rt.Segs[0].Pl) != 2 || !rt.Segs[0].Pl[0].ApproxEq(want[0]) || !rt.Segs[0].Pl[1].ApproxEq(want[1]) {
		t.Errorf("merged polyline %v, want %v", rt.Segs[0].Pl, want)
	}
	if st.ViasBefore != 2 || st.ViasAfter != 0 || st.SegmentsMerged != 1 || st.NetsChanged != 1 {
		t.Errorf("stats %+v, want 2 before, 0 after, 1 merged, 1 net", st)
	}
}

func TestReassignRespectsSpacing(t *testing.T) {
	d := reassignDesign()
	// Another net's layer-0 wire runs 2 µm from the detour's path: folding
	// onto layer 0 would violate the 4 µm clearance.
	blocker := &Route{
		Net:  1,
		Segs: []RouteSeg{{Layer: 0, Pl: geom.Polyline{geom.Pt(350, 502), geom.Pt(550, 502)}}},
	}
	routes := []*Route{sandwichRoute(0), blocker}
	st := ReassignRoutes(routes, d)
	if st.SegmentsMerged != 0 {
		t.Errorf("fold accepted across another net's clearance: %+v", st)
	}
	if got := len(routes[0].Vias); got != 2 {
		t.Errorf("vias = %d, want 2 (unchanged)", got)
	}

	// The same blocker on layer 1 does not constrain a fold onto layer 0.
	blocker.Segs[0].Layer = 1
	// Keep it clear of the detour's own layer-1 geometry.
	blocker.Segs[0].Pl = geom.Polyline{geom.Pt(350, 540), geom.Pt(550, 540)}
	routes = []*Route{sandwichRoute(0), blocker}
	if st := ReassignRoutes(routes, d); st.SegmentsMerged != 1 {
		t.Errorf("fold rejected with no layer-0 conflict: %+v", st)
	}
}

func TestReassignRespectsVias(t *testing.T) {
	d := reassignDesign()
	// Another net's via touches layer 0 within the via-wire limit
	// (w_v/2 + w_s + w/2 = 5.5 µm) of the folded geometry.
	blocker := &Route{
		Net: 1,
		Segs: []RouteSeg{
			{Layer: 0, Pl: geom.Polyline{geom.Pt(450, 505), geom.Pt(450, 900)}},
			{Layer: 1, Pl: geom.Polyline{geom.Pt(450, 505), geom.Pt(900, 900)}},
		},
		Vias: []ViaUse{{Pos: geom.Pt(450, 505), Layer: 0}},
	}
	// Fix the via ordering invariant: Vias[0] joins Segs[0] and Segs[1] at
	// their shared start, so reverse the first polyline.
	blocker.Segs[0].Pl = geom.Polyline{geom.Pt(450, 900), geom.Pt(450, 505)}
	routes := []*Route{sandwichRoute(0), blocker}
	if st := ReassignRoutes(routes, d); st.SegmentsMerged != 0 {
		t.Errorf("fold accepted within another net's via clearance: %+v", st)
	}
}

func TestReassignRespectsObstacle(t *testing.T) {
	d := reassignDesign()
	if err := d.AddObstacle(design.Obstacle{
		Name:   "keepout",
		Rect:   geom.Rect{Min: geom.Pt(400, 490), Max: geom.Pt(500, 510)},
		Layers: []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	routes := []*Route{sandwichRoute(0)}
	if st := ReassignRoutes(routes, d); st.SegmentsMerged != 0 {
		t.Errorf("fold accepted through a layer-0 keep-out: %+v", st)
	}
}

func TestReassignRejectsWireRuleRegressions(t *testing.T) {
	d := reassignDesign()
	// The detour doubles back: folding it in would put a 135° turn at the
	// junction, a turn the per-segment DRC never saw. The fold must be
	// rejected even though nothing else conflicts.
	rt := &Route{
		Net: 0,
		Segs: []RouteSeg{
			{Layer: 0, Pl: geom.Polyline{geom.Pt(100, 500), geom.Pt(300, 500)}},
			{Layer: 1, Pl: geom.Polyline{geom.Pt(300, 500), geom.Pt(200, 600)}},
			{Layer: 0, Pl: geom.Polyline{geom.Pt(200, 600), geom.Pt(100, 700)}},
		},
		Vias: []ViaUse{
			{Pos: geom.Pt(300, 500), Layer: 0},
			{Pos: geom.Pt(200, 600), Layer: 0},
		},
	}
	if st := ReassignRoutes([]*Route{rt}, d); st.SegmentsMerged != 0 {
		t.Errorf("fold accepted despite a new angle violation: %+v", st)
	}
}

func TestReassignChainsFolds(t *testing.T) {
	// Two detours on one net: both fold, one at a time, to a single
	// layer-0 segment.
	rt := &Route{
		Net: 0,
		Segs: []RouteSeg{
			{Layer: 0, Pl: geom.Polyline{geom.Pt(100, 500), geom.Pt(200, 500)}},
			{Layer: 1, Pl: geom.Polyline{geom.Pt(200, 500), geom.Pt(400, 500)}},
			{Layer: 0, Pl: geom.Polyline{geom.Pt(400, 500), geom.Pt(600, 500)}},
			{Layer: 1, Pl: geom.Polyline{geom.Pt(600, 500), geom.Pt(800, 500)}},
			{Layer: 0, Pl: geom.Polyline{geom.Pt(800, 500), geom.Pt(900, 500)}},
		},
		Vias: []ViaUse{
			{Pos: geom.Pt(200, 500), Layer: 0},
			{Pos: geom.Pt(400, 500), Layer: 0},
			{Pos: geom.Pt(600, 500), Layer: 0},
			{Pos: geom.Pt(800, 500), Layer: 0},
		},
	}
	st := ReassignRoutes([]*Route{rt}, reassignDesign())
	if st.SegmentsMerged != 2 || st.ViasAfter != 0 {
		t.Errorf("stats %+v, want 2 folds and 0 vias left", st)
	}
	if len(rt.Segs) != 1 || len(rt.Vias) != 0 {
		t.Errorf("route left with %d segs, %d vias", len(rt.Segs), len(rt.Vias))
	}
}
