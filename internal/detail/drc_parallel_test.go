package detail

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// routedCase routes a dense benchmark once and caches the result so the
// differential tests and the DRC benchmark share one routing run per case.
var routedCase = func() func(tb testing.TB, name string) (*design.Design, []*Route) {
	type entry struct {
		d      *design.Design
		routes []*Route
	}
	var mu sync.Mutex
	cache := map[string]entry{}
	return func(tb testing.TB, name string) (*design.Design, []*Route) {
		tb.Helper()
		mu.Lock()
		defer mu.Unlock()
		if e, ok := cache[name]; ok {
			return e.d, e.routes
		}
		r, _, dres := pipeline(tb, name, Options{})
		e := entry{d: r.G.Design, routes: dres.Routes}
		cache[name] = e
		return e.d, e.routes
	}
}()

// TestDRCWideClearanceRegression pins the spatial-hash soundness fix: the
// cell must be sized from the largest pairwise clearance, not the pitch.
// Net 0 is a 220 µm power rail, so its clearance against a default-width
// net is (220+2)/2 + 2 = 113 µm — more than double the old pitch-derived
// 50 µm cell. Two wires 105 µm apart violate that clearance, but under the
// old sizing they land two grid rows apart, outside the ±1-cell search
// window, and the violation went unreported.
func TestDRCWideClearanceRegression(t *testing.T) {
	d := &design.Design{
		Rules:      design.DefaultRules(),
		WireLayers: 1,
		Nets:       []design.Net{{ID: 0, Width: 220}, {ID: 1}},
	}
	routes := []*Route{
		{Net: 0, Segs: []RouteSeg{{Layer: 0, Pl: geom.Polyline{geom.Pt(0, 0), geom.Pt(400, 0)}}}},
		{Net: 1, Segs: []RouteSeg{{Layer: 0, Pl: geom.Polyline{geom.Pt(0, 105), geom.Pt(400, 105)}}}},
	}
	limit := d.Clearance(0, 1)
	if limit <= 8*d.Rules.Pitch() {
		t.Fatalf("test geometry too narrow: clearance %v must exceed the old 8×pitch cell %v",
			limit, 8*d.Rules.Pitch())
	}

	vs := CheckDRCWithDesign(routes, d)
	if len(vs) != 1 || vs[0].Kind != SpacingViolation {
		t.Fatalf("wide-clearance violation not found: %v", vs)
	}
	if vs[0].Value != 105 || vs[0].Limit != limit {
		t.Errorf("violation = %v, want 105 < %v", vs[0], limit)
	}

	// The engine's cell honours the correctness bound.
	l := buildLayer(routes, 0, d.Rules, netRules{d: d}, &drcScratch{})
	if l.cell < limit {
		t.Errorf("cell %v below the max pairwise clearance %v", l.cell, limit)
	}

	// Demonstrate the pre-fix hole: the same scan over a grid with the old
	// pitch-derived cell misses the violation entirely.
	old := newMapGridLayer(l, math.Max(8*d.Rules.Pitch(), 50))
	if got := old.spacingUnit(0, len(old.segs), d.SameGroup, d.Clearance); len(got) != 0 {
		t.Logf("old sizing unexpectedly found %v (geometry no longer demonstrates the hole)", got)
	} else {
		t.Logf("confirmed: pitch-sized cell %v misses the %v-clearance violation", old.cell, limit)
	}
}

// TestDRCSpacingPairDedupe pins the finding-identity fix: findings are
// unique per segment pair, not per float witness point.
func TestDRCSpacingPairDedupe(t *testing.T) {
	rules := design.DefaultRules()

	// Two distinct net-1 segments both at distance 1 from the same net-0
	// wire, with the identical witness point (3, 0) on it. The old
	// witness-signature dedupe collapsed these to one finding.
	routes := []*Route{
		{Net: 0, Segs: []RouteSeg{{Layer: 0, Pl: geom.Polyline{geom.Pt(0, 0), geom.Pt(10, 0)}}}},
		{Net: 1, Segs: []RouteSeg{
			{Layer: 0, Pl: geom.Polyline{geom.Pt(3, 1), geom.Pt(3, 5)}},
			{Layer: 0, Pl: geom.Polyline{geom.Pt(3, -1), geom.Pt(3, -5)}},
		}},
	}
	var spacing []Violation
	for _, v := range CheckDRC(routes, rules, 1) {
		if v.Kind == SpacingViolation {
			spacing = append(spacing, v)
		}
	}
	if len(spacing) != 2 {
		t.Errorf("shared-witness pairs: %d spacing findings, want 2: %v", len(spacing), spacing)
	}

	// The converse: one segment pair running close together through many
	// grid cells is still a single finding.
	long := []*Route{
		{Net: 0, Segs: []RouteSeg{{Layer: 0, Pl: geom.Polyline{geom.Pt(0, 0), geom.Pt(400, 0)}}}},
		{Net: 1, Segs: []RouteSeg{{Layer: 0, Pl: geom.Polyline{geom.Pt(0, 1), geom.Pt(400, 1)}}}},
	}
	spacing = spacing[:0]
	for _, v := range CheckDRC(long, rules, 1) {
		if v.Kind == SpacingViolation {
			spacing = append(spacing, v)
		}
	}
	if len(spacing) != 1 {
		t.Errorf("multi-cell pair: %d spacing findings, want 1: %v", len(spacing), spacing)
	}
}

// TestDRCParallelMatchesSerial is the tentpole's differential guarantee:
// for every dense benchmark the parallel checker returns byte-identical
// findings to the serial reference, at every pool size.
func TestDRCParallelMatchesSerial(t *testing.T) {
	cases := design.DenseNames()
	if testing.Short() {
		cases = cases[:2]
	}
	for _, name := range cases {
		d, routes := routedCase(t, name)
		serial := CheckDRCParallel(routes, d, DRCOptions{Workers: 1})
		ref := fmt.Sprintf("%v", serial)
		for _, workers := range []int{2, 3, 4, 8} {
			par := CheckDRCParallel(routes, d, DRCOptions{Workers: workers})
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("%s: %d-worker findings differ from serial (%d vs %d violations)",
					name, workers, len(par), len(serial))
			}
			if got := fmt.Sprintf("%v", par); got != ref {
				t.Fatalf("%s: %d-worker findings not byte-identical to serial", name, workers)
			}
		}
		t.Logf("%s: %d violations identical across worker counts 1,2,3,4,8", name, len(serial))
	}
}

// TestDRCGroupedMatchesLegacy checks the engine funnel: the legacy
// CheckDRCWithDesign entry point and the parallel one agree.
func TestDRCGroupedMatchesLegacy(t *testing.T) {
	d, routes := routedCase(t, "dense1")
	a := CheckDRCWithDesign(routes, d)
	b := CheckDRCParallel(routes, d, DRCOptions{Workers: 4})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("CheckDRCWithDesign and CheckDRCParallel disagree: %d vs %d", len(a), len(b))
	}
}
