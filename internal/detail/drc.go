package detail

import (
	"fmt"
	"math"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// Design-rule checking over finished detailed routes. A uniform spatial hash
// buckets wire segments per layer so the pairwise spacing check only visits
// nearby candidates.

// Violation describes one design-rule violation.
type Violation struct {
	Kind  ViolationKind
	Layer int
	NetA  int
	// NetB is the other net for spacing violations, -1 otherwise.
	NetB int
	// Where locates the violation.
	Where geom.Point
	// Value is the measured quantity (distance in µm, angle in radians).
	Value float64
	// Limit is the rule bound the value transgressed.
	Limit float64
}

// ViolationKind classifies design-rule violations.
type ViolationKind uint8

// Violation kinds.
const (
	// SpacingViolation: two different nets closer than w_w + w_s
	// (centre-to-centre).
	SpacingViolation ViolationKind = iota
	// AngleViolation: a turn sharper than 90° (interior angle below 90°).
	AngleViolation
	// TurnDistViolation: two successive turns closer than w_x.
	TurnDistViolation
	// ObstacleViolation: a wire enters a keep-out region of its layer.
	ObstacleViolation
)

// String returns a short name for the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case SpacingViolation:
		return "spacing"
	case AngleViolation:
		return "angle"
	case ObstacleViolation:
		return "obstacle"
	default:
		return "turn-distance"
	}
}

// String formats a violation for logs.
func (v Violation) String() string {
	switch v.Kind {
	case SpacingViolation:
		return fmt.Sprintf("spacing: nets %d/%d on layer %d at %v: %.3f < %.3f",
			v.NetA, v.NetB, v.Layer, v.Where, v.Value, v.Limit)
	case AngleViolation:
		return fmt.Sprintf("angle: net %d on layer %d at %v: turn %.1f° > 90°",
			v.NetA, v.Layer, v.Where, v.Value*180/math.Pi)
	case ObstacleViolation:
		return fmt.Sprintf("obstacle: net %d on layer %d enters keep-out at %v",
			v.NetA, v.Layer, v.Where)
	default:
		return fmt.Sprintf("turn-distance: net %d on layer %d at %v: %.3f < %.3f",
			v.NetA, v.Layer, v.Where, v.Value, v.Limit)
	}
}

// CheckDRC verifies all three §II-B wire rules over the routes and returns
// every violation found (spacing is reported once per offending segment
// pair). The epsilon loosens comparisons to ignore float-level noise from
// the tangent constructions. Nets are treated as electrically distinct; use
// CheckDRCWithDesign for group-aware (multi-pin) checking.
func CheckDRC(routes []*Route, rules design.Rules, layers int) []Violation {
	return checkDRCGrouped(routes, rules, layers,
		func(a, b int) bool { return a == b },
		func(a, b int) float64 { return rules.Pitch() })
}

// checkDRCGrouped is CheckDRC with configurable same-net and pairwise
// clearance predicates (multi-pin groups, per-net widths).
func checkDRCGrouped(routes []*Route, rules design.Rules, layers int,
	sameNet func(a, b int) bool, clearFn func(a, b int) float64) []Violation {
	const eps = 1e-6
	var out []Violation
	clearance := rules.Pitch()

	for layer := 0; layer < layers; layer++ {
		segs := SegmentsOnLayer(routes, layer)
		// Spatial hash over segments.
		cell := math.Max(clearance*8, 50)
		type entry struct {
			net int
			seg geom.Segment
		}
		grid := make(map[[2]int][]entry)
		keyOf := func(p geom.Point) [2]int {
			return [2]int{int(math.Floor(p.X / cell)), int(math.Floor(p.Y / cell))}
		}
		insert := func(net int, s geom.Segment) {
			k0 := keyOf(s.A)
			k1 := keyOf(s.B)
			for x := minInt(k0[0], k1[0]); x <= maxInt(k0[0], k1[0]); x++ {
				for y := minInt(k0[1], k1[1]); y <= maxInt(k0[1], k1[1]); y++ {
					grid[[2]int{x, y}] = append(grid[[2]int{x, y}], entry{net, s})
				}
			}
		}
		for _, rl := range segs {
			for _, s := range rl.Pl.Segments() {
				insert(rl.Net, s)
			}
		}
		// Pairwise spacing within neighbouring cells.
		seen := make(map[[4]float64]bool)
		for _, rl := range segs {
			for _, s := range rl.Pl.Segments() {
				k0 := keyOf(s.A)
				k1 := keyOf(s.B)
				for x := minInt(k0[0], k1[0]) - 1; x <= maxInt(k0[0], k1[0])+1; x++ {
					for y := minInt(k0[1], k1[1]) - 1; y <= maxInt(k0[1], k1[1])+1; y++ {
						for _, e := range grid[[2]int{x, y}] {
							if e.net <= rl.Net || sameNet(e.net, rl.Net) {
								continue // each unordered pair once, skip same net
							}
							limit := clearFn(rl.Net, e.net)
							dist, pa, _ := s.DistToSegment(e.seg)
							if dist >= limit-eps {
								continue
							}
							sig := [4]float64{pa.X, pa.Y, float64(rl.Net), float64(e.net)}
							if seen[sig] {
								continue
							}
							seen[sig] = true
							out = append(out, Violation{
								Kind: SpacingViolation, Layer: layer,
								NetA: rl.Net, NetB: e.net, Where: pa,
								Value: dist, Limit: limit,
							})
						}
					}
				}
			}
		}
		// Per-net angle and turn-distance rules.
		for _, rl := range segs {
			pl := rl.Pl
			for i := 1; i+1 < len(pl); i++ {
				turn := geom.TurnAngle(pl[i-1], pl[i], pl[i+1])
				if turn > math.Pi/2+1e-6 {
					out = append(out, Violation{
						Kind: AngleViolation, Layer: layer, NetA: rl.Net, NetB: -1,
						Where: pl[i], Value: turn, Limit: math.Pi / 2,
					})
				}
			}
			for i := 2; i+1 < len(pl); i++ {
				d := pl[i-1].Dist(pl[i])
				if d < rules.MinTurnDist-eps {
					out = append(out, Violation{
						Kind: TurnDistViolation, Layer: layer, NetA: rl.Net, NetB: -1,
						Where: pl[i], Value: d, Limit: rules.MinTurnDist,
					})
				}
			}
		}
	}
	return out
}

// CheckDRCWithDesign runs the rule checks with group-aware same-net
// semantics (multi-pin subnets carry no spacing rule between each other)
// and additionally verifies that no wire enters any of the design's
// keep-out regions.
func CheckDRCWithDesign(routes []*Route, d *design.Design) []Violation {
	out := checkDRCGrouped(routes, d.Rules, d.WireLayers, d.SameGroup, d.Clearance)
	if len(d.Obstacles) == 0 {
		return out
	}
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		for _, seg := range rt.Segs {
			for _, s := range seg.Pl.Segments() {
				if d.SegmentBlocked(s, seg.Layer, 0) {
					out = append(out, Violation{
						Kind: ObstacleViolation, Layer: seg.Layer,
						NetA: rt.Net, NetB: -1, Where: s.Mid(),
					})
				}
			}
		}
	}
	return out
}

// NetsWithViolations returns the set of net IDs involved in any violation.
func NetsWithViolations(vs []Violation) map[int]bool {
	out := make(map[int]bool)
	for _, v := range vs {
		out[v.NetA] = true
		if v.NetB >= 0 {
			out[v.NetB] = true
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
