package detail

import (
	"fmt"
	"math"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/obs"
	"rdlroute/internal/pool"
)

// Design-rule checking over finished detailed routes. A uniform spatial hash
// buckets wire segments per layer so the pairwise spacing check only visits
// nearby candidates. The check decomposes into independent work units —
// per-layer grid builds, per-stripe spacing scans, per-net wire rules — that
// a worker pool can run concurrently; see drc_engine.go. Findings come back
// in canonical order (sorted by layer, kind, nets, position) regardless of
// the worker count, so the serial and parallel paths are byte-identical.

// Violation describes one design-rule violation.
type Violation struct {
	Kind  ViolationKind
	Layer int
	NetA  int
	// NetB is the other net for spacing violations, -1 otherwise.
	NetB int
	// Where locates the violation.
	Where geom.Point
	// Value is the measured quantity (distance in µm, angle in radians).
	Value float64
	// Limit is the rule bound the value transgressed.
	Limit float64
}

// ViolationKind classifies design-rule violations.
type ViolationKind uint8

// Violation kinds.
const (
	// SpacingViolation: two different nets closer than w_w + w_s
	// (centre-to-centre).
	SpacingViolation ViolationKind = iota
	// AngleViolation: a turn sharper than 90° (interior angle below 90°).
	AngleViolation
	// TurnDistViolation: two successive turns closer than w_x.
	TurnDistViolation
	// ObstacleViolation: a wire enters a keep-out region of its layer.
	ObstacleViolation
)

// String returns a short name for the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case SpacingViolation:
		return "spacing"
	case AngleViolation:
		return "angle"
	case ObstacleViolation:
		return "obstacle"
	default:
		return "turn-distance"
	}
}

// String formats a violation for logs.
func (v Violation) String() string {
	switch v.Kind {
	case SpacingViolation:
		return fmt.Sprintf("spacing: nets %d/%d on layer %d at %v: %.3f < %.3f",
			v.NetA, v.NetB, v.Layer, v.Where, v.Value, v.Limit)
	case AngleViolation:
		return fmt.Sprintf("angle: net %d on layer %d at %v: turn %.1f° > 90°",
			v.NetA, v.Layer, v.Where, v.Value*180/math.Pi)
	case ObstacleViolation:
		return fmt.Sprintf("obstacle: net %d on layer %d enters keep-out at %v",
			v.NetA, v.Layer, v.Where)
	default:
		return fmt.Sprintf("turn-distance: net %d on layer %d at %v: %.3f < %.3f",
			v.NetA, v.Layer, v.Where, v.Value, v.Limit)
	}
}

// DRCOptions tunes the parallel checker.
type DRCOptions struct {
	// Workers is the worker-pool size. Zero or negative selects GOMAXPROCS
	// capped at 8; 1 runs the units serially (the reference path the
	// differential tests compare against).
	Workers int
	// Rec receives the checker's stage spans and findings-by-kind counters.
	// Nil selects the no-op recorder.
	Rec obs.Recorder
}

func (o DRCOptions) workers() int { return pool.Default(o.Workers) }

// CheckDRC verifies all three §II-B wire rules over the routes and returns
// every violation found (spacing is reported once per offending segment
// pair). Nets are treated as electrically distinct; use CheckDRCWithDesign
// for group-aware (multi-pin) checking.
func CheckDRC(routes []*Route, rules design.Rules, layers int) []Violation {
	return checkDRC(routes, rules, layers,
		netRules{pitch: rules.Pitch()}, nil, 1, nil)
}

// CheckDRCWithDesign runs the rule checks with group-aware same-net
// semantics (multi-pin subnets carry no spacing rule between each other)
// and additionally verifies that no wire enters any of the design's
// keep-out regions.
func CheckDRCWithDesign(routes []*Route, d *design.Design) []Violation {
	return checkDRC(routes, d.Rules, d.WireLayers, netRules{d: d}, d, 1, nil)
}

// CheckDRCParallel is CheckDRCWithDesign fanned out over a worker pool per
// (layer, grid stripe). The findings are identical to the serial path —
// same violations, same order — only the wall-clock differs.
func CheckDRCParallel(routes []*Route, d *design.Design, opt DRCOptions) []Violation {
	return checkDRC(routes, d.Rules, d.WireLayers, netRules{d: d},
		d, opt.workers(), opt.Rec)
}

// NetsWithViolations returns the set of net IDs involved in any violation.
func NetsWithViolations(vs []Violation) map[int]bool {
	out := make(map[int]bool)
	for _, v := range vs {
		out[v.NetA] = true
		if v.NetB >= 0 {
			out[v.NetB] = true
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
