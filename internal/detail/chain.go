// Package detail implements the detailed-routing stage of the paper
// (§III-B): access points are distributed evenly on their tile edges,
// adjusted by the multi-net dynamic-programming scheme with partial-net
// separation and a max-heap (Theorem 1), and the final geometry inside each
// tile is constructed by the fit-routing tangent construction (Theorems 2–3).
package detail

import (
	"fmt"

	"rdlroute/internal/geom"
	"rdlroute/internal/global"
	"rdlroute/internal/obs"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// ElemKind classifies one element of a net's routing chain.
type ElemKind uint8

// Chain element kinds.
const (
	// ElemPin is a fixed chip I/O pad terminal.
	ElemPin ElemKind = iota
	// ElemVia is a fixed via location where the net changes wire layers.
	ElemVia
	// ElemAP is an access point on a tile edge (the γ of the paper),
	// movable along its edge within its allocated range.
	ElemAP
)

// Elem is one element of a routing chain.
type Elem struct {
	Kind ElemKind
	// Node is the graph node this element came from.
	Node rgraph.NodeID
	// AP indexes into Detailer.APs for ElemAP elements, -1 otherwise.
	AP int
	// Layer is the wire layer the element sits on (for vias: the layer of
	// its via node).
	Layer int
}

// Chain is a net's ordered route skeleton from pin to pin.
type Chain struct {
	Net   int
	Elems []Elem
}

// AccessPoint is one movable crossing of a net over a tile edge.
type AccessPoint struct {
	Node   rgraph.NodeID // edge node
	Net    int
	T      float64 // position parameter along the edge (EndA→EndB)
	Lo, Hi float64 // current movable range (parameters)
	// Fixed marks points whose range is too small to matter or that have
	// already been placed by the DP pass.
	Fixed bool
	// Chain locates the element: chain index == net, elem index below.
	ElemIdx int
}

// Pos returns the access point's position in the plane.
func (d *Detailer) Pos(apIdx int) geom.Point {
	ap := &d.APs[apIdx]
	n := d.G.Node(ap.Node)
	return n.EndA.Lerp(n.EndB, ap.T)
}

// ElemPos returns the current position of a chain element.
func (d *Detailer) ElemPos(e Elem) geom.Point {
	if e.Kind == ElemAP {
		return d.Pos(e.AP)
	}
	return d.G.Node(e.Node).Pos
}

// Detailer holds detailed-routing state.
type Detailer struct {
	G   *rgraph.Graph
	R   *global.Router
	Opt Options

	Chains []*Chain // indexed by net; nil for unrouted nets
	APs    []AccessPoint
	// apAt maps (edge node, net) to the AP index.
	apAt map[apKey]int
	// guides are the committed global guides, indexed by net.
	guides []*global.Guide
	// processed counts partial nets handled by the DP pass.
	processed int

	rec obs.Recorder
	// Counters flushed to rec at the end of Run.
	dpHeapOps   int64 // partial-net heap pushes + pops
	fitTangents int64 // successful tangent constructions (Fig. 12); atomic, tiles route concurrently
	fitRetries  int64 // whole-pass retries with enlarged clearance

	// Tile-routing state prepared once per run (see buildTileJobs): jobs in
	// canonical order and the flat (net, chainIdx) → polyline hop index.
	tileJobs []*tileJob
	hopOff   []int32
	hopPl    []geom.Polyline
	failBuf  []*tilePassage

	// DP scratches reused across runDP calls (the adjustment pass is
	// serial): the run's AP indices, flat candidate parameters with
	// per-stage offsets, flat cost/backpointer/choice tables, the touched
	// edge-node set, and the per-edge refresh buffers.
	dpRun     []int
	dpCandOff []int32
	dpCandT   []float64
	dpCost    []float64
	dpBack    []int32
	dpChoice  []int32
	dpTouched []rgraph.NodeID
	factorBuf []float64
	sepBuf    []float64
}

// growSlice returns buf resized to n elements, reallocating only when the
// capacity is insufficient. Contents are unspecified.
//
//rdl:noalloc
func growSlice[T any](buf []T, n int) []T {
	if cap(buf) < n {
		//rdl:allow noalloc amortized growth: reallocates only while a buffer is still growing toward its steady-state size, never on warm calls
		return make([]T, n)
	}
	return buf[:n]
}

type apKey struct {
	node rgraph.NodeID
	net  int
}

// buildChains converts guides into chains and creates evenly distributed
// access points on every edge node (the paper's initial distribution).
func (d *Detailer) buildChains(guides []*global.Guide) error {
	d.apAt = make(map[apKey]int)
	// First create APs per edge node in sequence order so neighbours are
	// adjacent in d.APs.
	for id := range d.G.Nodes {
		node := d.G.Node(rgraph.NodeID(id))
		if node.Kind != rgraph.EdgeNode {
			continue
		}
		seq := d.R.Sequences(rgraph.NodeID(id))
		m := len(seq)
		for i, net := range seq {
			t := float64(i+1) / float64(m+1)
			d.apAt[apKey{rgraph.NodeID(id), net}] = len(d.APs)
			d.APs = append(d.APs, AccessPoint{
				Node: rgraph.NodeID(id), Net: net, T: t, ElemIdx: -1,
			})
		}
	}

	d.Chains = make([]*Chain, len(d.G.Design.Nets))
	for ni, g := range guides {
		if g == nil {
			continue
		}
		ch := &Chain{Net: ni}
		prevVia := rgraph.Invalid
		for _, nid := range g.Nodes {
			node := d.G.Node(nid)
			switch {
			case node.Kind == rgraph.EdgeNode:
				apIdx, ok := d.apAt[apKey{nid, ni}]
				if !ok {
					return fmt.Errorf("detail: net %d not in sequence of node %d", ni, nid)
				}
				d.APs[apIdx].ElemIdx = len(ch.Elems)
				ch.Elems = append(ch.Elems, Elem{Kind: ElemAP, Node: nid, AP: apIdx, Layer: node.Layer})
			case node.VertKind == viaplan.KindPin:
				ch.Elems = append(ch.Elems, Elem{Kind: ElemPin, Node: nid, AP: -1, Layer: node.Layer})
			case node.VertKind == viaplan.KindVia:
				// The two via nodes of one cross-via hop share a position;
				// keep both (they carry their layers) but skip nothing.
				ch.Elems = append(ch.Elems, Elem{Kind: ElemVia, Node: nid, AP: -1, Layer: node.Layer})
				prevVia = nid
			default:
				return fmt.Errorf("detail: net %d passes through %v vertex", ni, node.VertKind)
			}
		}
		_ = prevVia
		d.Chains[ni] = ch
	}
	return nil
}

// StraightLength returns the current chain length of a net: the polyline
// through all element positions (cross-via hops contribute zero because the
// two via nodes share a position).
func (d *Detailer) StraightLength(net int) float64 {
	ch := d.Chains[net]
	if ch == nil {
		return 0
	}
	var sum float64
	for i := 1; i < len(ch.Elems); i++ {
		sum += d.ElemPos(ch.Elems[i-1]).Dist(d.ElemPos(ch.Elems[i]))
	}
	return sum
}
