package detail

import (
	"context"
	"math"
	"slices"

	"rdlroute/internal/obs"
	"rdlroute/internal/pq"
	"rdlroute/internal/rgraph"
)

// Access point adjustment (§III-B1).
//
// Every access point receives a movable range along its tile edge, bounded
// by its sequence neighbours (plus the wire pitch) and by the edge's end
// vias. Maximal runs of consecutive movable access points within one net
// form partial nets; a max-heap processes the longest partial net first,
// running a dynamic program over a fixed number of candidate positions per
// access point to minimize the run's polyline length. After a run is
// placed, only the ranges of access points adjacent on the affected edges
// need updating (Fig. 10), giving the O(|Γ| lg |Γ|) bound of Theorem 1.

// partialNet is a maximal run of movable access points of one net.
type partialNet struct {
	net       int
	startElem int // first elem index of the run within the chain
	length    int // number of access points in the run
}

// AdjustAccessPoints runs the full adjustment pass and returns the number of
// partial nets processed. Cancelling ctx stops the pass between partial
// nets; the remaining access points keep their current positions.
func (d *Detailer) AdjustAccessPoints(ctx context.Context) int {
	d.refreshAllRanges()

	// Build partial nets: maximal runs of movable APs per chain. The typed
	// max-heap (longest run first) stores the runs by value — no boxing, no
	// per-run pointer.
	h := pq.New(func(a, b partialNet) bool { return a.length > b.length })
	for net, ch := range d.Chains {
		if ch == nil {
			continue
		}
		i := 0
		for i < len(ch.Elems) {
			if ch.Elems[i].Kind != ElemAP || d.APs[ch.Elems[i].AP].Fixed {
				i++
				continue
			}
			j := i
			for j < len(ch.Elems) && ch.Elems[j].Kind == ElemAP && !d.APs[ch.Elems[j].AP].Fixed {
				j++
			}
			h.Push(partialNet{net: net, startElem: i, length: j - i})
			d.dpHeapOps++
			i = j
		}
	}

	processed := 0
	for h.Len() > 0 {
		if obs.Stopped(ctx) {
			break
		}
		pn := h.Pop()
		d.dpHeapOps++
		if d.runDP(pn) {
			processed++
		}
	}
	return processed
}

// refreshAllRanges recomputes every access point's movable range from the
// current neighbour positions and marks too-tight points fixed.
func (d *Detailer) refreshAllRanges() {
	for id := range d.G.Nodes {
		node := d.G.Node(rgraph.NodeID(id))
		if node.Kind != rgraph.EdgeNode {
			continue
		}
		d.refreshEdgeRanges(rgraph.NodeID(id))
	}
}

// refreshEdgeRanges recomputes the ranges of all access points on one edge
// node from current positions.
func (d *Detailer) refreshEdgeRanges(id rgraph.NodeID) {
	node := d.G.Node(id)
	seq := d.R.Sequences(id)
	if len(seq) == 0 {
		return
	}
	edgeLen := node.EndA.Dist(node.EndB)
	if edgeLen <= 0 {
		return
	}
	rules := d.G.Design.Rules
	// Two adjacent access points d apart along the edge give wires crossing
	// at incidence angle θ a perpendicular separation of d·sin(θ), so the
	// spacing each pair needs is clearance / sin(θ) — the continuous form of
	// the paper's perpendicular 3-segment pattern. The factor is clamped so
	// nearly edge-parallel wires do not blow the requirement up unboundedly.
	factor := growSlice(d.factorBuf, len(seq))
	d.factorBuf = factor
	for i, net := range seq {
		factor[i] = d.incidenceFactor(id, net)
	}
	overConstrained := false
	for i, net := range seq {
		apIdx := d.apAt[apKey{id, net}]
		ap := &d.APs[apIdx]
		endMargin := (rules.ViaWidth/2 + rules.MinSpacing + d.G.Design.WidthOf(net)/2) / edgeLen
		lo, hi := endMargin, 1-endMargin
		if i > 0 {
			prev := &d.APs[d.apAt[apKey{id, seq[i-1]}]]
			sep := d.G.Design.Clearance(net, seq[i-1]) * math.Max(factor[i], factor[i-1]) / edgeLen
			if v := prev.T + sep; v > lo {
				lo = v
			}
		}
		if i+1 < len(seq) {
			next := &d.APs[d.apAt[apKey{id, seq[i+1]}]]
			sep := d.G.Design.Clearance(net, seq[i+1]) * math.Max(factor[i], factor[i+1]) / edgeLen
			if v := next.T - sep; v < hi {
				hi = v
			}
		}
		if lo > hi {
			overConstrained = true
			break
		}
		ap.Lo, ap.Hi = lo, hi
		ap.T = clampf(ap.T, lo, hi)
		if (hi-lo)*edgeLen < d.Opt.MinMovable {
			ap.Fixed = true
		}
	}
	if overConstrained {
		d.packEdge(id, seq, edgeLen)
	}
}

// packEdge is the over-constraint fallback: when the incidence-factored
// ranges do not fit on the edge, the access points are packed from the edge
// start at exact pairwise clearance (factor 1) — the densest legal layout —
// and frozen. When even that does not fit, all separations are scaled down
// proportionally (a best-effort layout whose residual violations the DRC
// reports).
func (d *Detailer) packEdge(id rgraph.NodeID, seq []int, edgeLen float64) {
	rules := d.G.Design.Rules
	m := len(seq)
	sep := growSlice(d.sepBuf, m+1) // sep[0]=start margin, sep[i]=gap before AP i, sep[m]=end margin
	d.sepBuf = sep
	sep[0] = (rules.ViaWidth/2 + rules.MinSpacing + d.G.Design.WidthOf(seq[0])/2) / edgeLen
	for i := 1; i < m; i++ {
		sep[i] = d.G.Design.Clearance(seq[i-1], seq[i]) / edgeLen
	}
	sep[m] = (rules.ViaWidth/2 + rules.MinSpacing + d.G.Design.WidthOf(seq[m-1])/2) / edgeLen
	total := 0.0
	for _, s := range sep {
		total += s
	}
	scale := 1.0
	if total > 1 {
		scale = 1 / total
	}
	// Distribute the slack (if any) evenly into the gaps.
	slack := (1 - total*scale) / float64(m+1)
	t := 0.0
	for i := 0; i < m; i++ {
		t += sep[i]*scale + slack
		ap := &d.APs[d.apAt[apKey{id, seq[i]}]]
		ap.T = clamp01(t)
		ap.Lo, ap.Hi = ap.T, ap.T
		ap.Fixed = true
	}
}

// incidenceFactor returns 1/sin(θ) clamped to [1, 2.5], where θ is the
// shallower of the two angles the net's wire makes with the edge at this
// access point, estimated from the current chain neighbour positions.
//
//rdl:noalloc
func (d *Detailer) incidenceFactor(id rgraph.NodeID, net int) float64 {
	const maxFactor = 2.5
	apIdx, ok := d.apAt[apKey{id, net}]
	if !ok {
		return maxFactor
	}
	ap := &d.APs[apIdx]
	ch := d.Chains[net]
	if ch == nil || ap.ElemIdx <= 0 || ap.ElemIdx+1 >= len(ch.Elems) {
		return maxFactor
	}
	node := d.G.Node(id)
	edgeDir := node.EndB.Sub(node.EndA).Unit()
	here := d.Pos(apIdx)
	worst := 1.0
	for _, nb := range [2]int{ap.ElemIdx - 1, ap.ElemIdx + 1} {
		dir := d.ElemPos(ch.Elems[nb]).Sub(here)
		n := dir.Norm()
		if n == 0 {
			continue
		}
		sin := math.Abs(edgeDir.Cross(dir)) / n
		f := maxFactor
		if sin > 1/maxFactor {
			f = 1 / sin
		}
		if f > worst {
			worst = f
		}
	}
	return worst
}

// apPosAt returns the planar position of an access point's edge node at
// parameter t.
//
//rdl:noalloc
func (d *Detailer) apPosAt(apIdx int, t float64) (x, y float64) {
	node := d.G.Node(d.APs[apIdx].Node)
	p := node.EndA.Lerp(node.EndB, t)
	return p.X, p.Y
}

// runDP optimizes one partial net with the dynamic program and updates the
// neighbours' ranges afterwards. It reports whether any point moved.
//
// All working storage lives in flat scratch arrays on the Detailer
// (candidate parameters with per-stage offsets, cost/backpointer/choice
// tables, the touched-edge set), reused across partial nets: the adjustment
// pass is serial, so after the first few runs the DP executes without
// growing the heap.
//
//rdl:noalloc
func (d *Detailer) runDP(pn partialNet) bool {
	ch := d.Chains[pn.net]
	if ch == nil {
		return false
	}
	C := d.Opt.Candidates

	// Collect the run.
	run := d.dpRun[:0]
	for e := pn.startElem; e < pn.startElem+pn.length && e < len(ch.Elems); e++ {
		el := ch.Elems[e]
		if el.Kind != ElemAP {
			return false // chain corrupted; defensive
		}
		run = append(run, el.AP)
	}
	d.dpRun = run
	if len(run) == 0 {
		return false
	}

	// Fixed anchors before and after the run.
	startPos := d.anchorPos(ch, pn.startElem-1)
	endPos := d.anchorPos(ch, pn.startElem+len(run))

	// Candidate positions per AP: an even grid over the movable range plus
	// the current position, so the DP can never pick a placement worse than
	// what it already has. Stage i's parameters are ct[off[i]:off[i+1]].
	off := d.dpCandOff[:0]
	ct := d.dpCandT[:0]
	off = append(off, 0)
	for _, apIdx := range run {
		ap := &d.APs[apIdx]
		if ap.Fixed || ap.Hi <= ap.Lo {
			ct = append(ct, ap.T)
			off = append(off, int32(len(ct)))
			continue
		}
		lo := len(ct)
		for c := 0; c < C; c++ {
			ct = append(ct, ap.Lo+(ap.Hi-ap.Lo)*float64(c)/float64(C-1))
		}
		onGrid := false
		for _, v := range ct[lo:] {
			if v == ap.T {
				onGrid = true
			}
		}
		if !onGrid {
			ct = append(ct, ap.T)
		}
		off = append(off, int32(len(ct)))
	}
	d.dpCandOff = off
	d.dpCandT = ct

	// DP over stages; cost and backpointers are flat, addressed by the same
	// global candidate indices as ct.
	n := len(run)
	cost := growSlice(d.dpCost, len(ct))
	back := growSlice(d.dpBack, len(ct))
	d.dpCost, d.dpBack = cost, back
	for c := off[0]; c < off[1]; c++ {
		x, y := d.apPosAt(run[0], ct[c])
		cost[c] = hypot(x-startPos.X, y-startPos.Y)
	}
	for i := 1; i < n; i++ {
		for c := off[i]; c < off[i+1]; c++ {
			bestC, bestV := int32(-1), 0.0
			x, y := d.apPosAt(run[i], ct[c])
			for p := off[i-1]; p < off[i]; p++ {
				px, py := d.apPosAt(run[i-1], ct[p])
				v := cost[p] + hypot(x-px, y-py)
				if bestC == -1 || v < bestV {
					bestC, bestV = p, v
				}
			}
			cost[c] = bestV
			back[c] = bestC
		}
	}
	bestC, bestV := int32(-1), 0.0
	for c := off[n-1]; c < off[n]; c++ {
		x, y := d.apPosAt(run[n-1], ct[c])
		v := cost[c] + hypot(x-endPos.X, y-endPos.Y)
		if bestC == -1 || v < bestV {
			bestC, bestV = c, v
		}
	}

	// Apply and fix the run.
	moved := false
	choice := growSlice(d.dpChoice, n)
	d.dpChoice = choice
	choice[n-1] = bestC
	for i := n - 1; i > 0; i-- {
		choice[i-1] = back[choice[i]]
	}
	touched := d.dpTouched[:0]
	for i, apIdx := range run {
		ap := &d.APs[apIdx]
		newT := ct[choice[i]]
		if newT != ap.T {
			moved = true
		}
		ap.T = newT
		ap.Fixed = true
		touched = append(touched, ap.Node)
	}
	d.dpTouched = touched
	// Update the ranges of access points on the touched edges (the paper's
	// single-traversal incremental update of Fig. 10). Sorted with adjacent
	// duplicates skipped so the refresh order — which feeds back through
	// neighbour positions into incidence factors — is deterministic.
	slices.Sort(touched)
	for i, id := range touched {
		if i > 0 && id == touched[i-1] {
			continue
		}
		d.refreshEdgeRanges(id)
	}
	return moved
}

// anchorPos returns the position of the chain element at index idx, or the
// nearest existing element when idx is out of range (a partial net at a
// chain end anchors on the terminal pin).
func (d *Detailer) anchorPos(ch *Chain, idx int) (p struct{ X, Y float64 }) {
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ch.Elems) {
		idx = len(ch.Elems) - 1
	}
	pt := d.ElemPos(ch.Elems[idx])
	p.X, p.Y = pt.X, pt.Y
	return p
}

func clamp01(v float64) float64 { return clampf(v, 0, 1) }

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func hypot(dx, dy float64) float64 {
	// math.Hypot guards against overflow we cannot hit at µm magnitudes;
	// plain sqrt is faster in the DP inner loop.
	return math.Sqrt(dx*dx + dy*dy)
}
