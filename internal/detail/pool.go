package detail

import (
	"sync"
	"sync/atomic"
)

// runPool executes the units on a pool of the given size and returns their
// results indexed by unit. Unit boundaries are fixed by the caller and every
// result lands at its own unit's index, so any pool size — including the
// serial workers<=1 path — produces identical output; only the scheduling
// varies. Shared by the DRC engine, tile routing and route assembly.
func runPool[T any](units []func() T, workers int) []T {
	results := make([]T, len(units))
	if workers <= 1 || len(units) <= 1 {
		for i, u := range units {
			results[i] = u()
		}
		return results
	}
	if workers > len(units) {
		workers = len(units)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(len(units)) {
					return
				}
				results[i] = units[i]()
			}
		}()
	}
	wg.Wait()
	return results
}
