package detail

import (
	"context"
	"sort"
	"sync/atomic"

	"rdlroute/internal/dt"
	"rdlroute/internal/geom"
	"rdlroute/internal/global"
	"rdlroute/internal/obs"
	"rdlroute/internal/pool"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// Tile routing (§III-B2).
//
// Within each tile the guides become geometry: every consecutive chain pair
// whose link lies in the tile is a passage between two boundary points.
// Passages are grouped by the tile corner they wrap (cross-tile passages) or
// start from (access-via passages), corners are processed in a fixed
// clockwise order, and within each corner passages route from innermost to
// outermost. Fit routing resolves spacing violations against already-routed
// wires by the tangent-line construction of Fig. 12: find the constraint
// circle at the violating point, replace the straight segment by the two
// tangents through source and target, iterate.

// tilePassage is one chain hop to be realized inside a tile.
type tilePassage struct {
	net      int
	chainIdx int // index of the first of the two chain elements
	corner   int // mesh vertex index the passage wraps / starts at, or -1
	// cornerDist orders passages within their corner group, innermost
	// first.
	cornerDist float64
	route      geom.Polyline
	failed     bool
}

// tileJob collects the passages of one tile.
type tileJob struct {
	key      tileKeyD
	passages []*tilePassage
}

type tileKeyD struct{ layer, tri int }

// netPoints pairs a net with obstacle points, in deterministic slices.
type netPoints struct {
	net int
	pts []geom.Point
}

// routeTiles performs tile routing over all tiles and stores the resulting
// polylines back into the passages, returning them grouped per net hop. The
// scale parameter multiplies every pairwise clearance (>1 on retries).
// Cancelling ctx stops between tiles; unreached passages keep empty routes,
// which assemble replaces with straight hops.
func (d *Detailer) routeTiles(ctx context.Context, scale float64) (map[hopKey]geom.Polyline, []*tilePassage) {
	jobs := make(map[tileKeyD]*tileJob)
	for net, ch := range d.Chains {
		if ch == nil {
			continue
		}
		guide := d.guideOf(net)
		if guide == nil {
			continue
		}
		for i, l := range guide.Links {
			link := d.G.Link(l)
			if link.Kind == rgraph.CrossVia {
				continue
			}
			key := tileKeyD{link.Layer, link.Tile}
			job := jobs[key]
			if job == nil {
				job = &tileJob{key: key}
				jobs[key] = job
			}
			p := &tilePassage{net: net, chainIdx: i, corner: link.Corner}
			job.passages = append(job.passages, p)
		}
	}

	var failures []*tilePassage
	out := make(map[hopKey]geom.Polyline)
	// Deterministic tile order.
	keys := make([]tileKeyD, 0, len(jobs))
	for k := range jobs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].layer != keys[b].layer {
			return keys[a].layer < keys[b].layer
		}
		return keys[a].tri < keys[b].tri
	})
	// One unit per tile: routeOneTile touches only its own job, and the
	// shared Detailer state it reads — chains, access points, graph, rules —
	// is frozen during tile routing, so tiles fan out freely across the
	// pool. The merge below walks the keys in their canonical order, making
	// the hop map contents and the failure list independent of the pool
	// size; a cancelled context skips un-started tiles, whose passages keep
	// empty routes exactly like the serial path.
	units := make([]func() struct{}, len(keys))
	for i, k := range keys {
		job := jobs[k]
		units[i] = func() struct{} {
			if !obs.Stopped(ctx) {
				d.routeOneTile(job, scale)
			}
			return struct{}{}
		}
	}
	pool.Run(units, d.Opt.workers())
	for _, k := range keys {
		for _, p := range jobs[k].passages {
			out[hopKey{p.net, p.chainIdx}] = p.route
			if p.failed {
				failures = append(failures, p)
			}
		}
	}
	return out, failures
}

// hopKey identifies one chain hop of one net.
type hopKey struct {
	net      int
	chainIdx int
}

// guideOf returns the committed guide of a net (or nil).
func (d *Detailer) guideOf(net int) *global.Guide {
	return d.guides[net]
}

// routeOneTile routes all passages of one tile.
func (d *Detailer) routeOneTile(job *tileJob, scale float64) {
	tile := d.G.TileOf(job.key.layer, job.key.tri)
	mesh := d.G.Layers[job.key.layer].Mesh

	// Endpoint positions for each passage.
	ends := func(p *tilePassage) (geom.Point, geom.Point) {
		ch := d.Chains[p.net]
		return d.ElemPos(ch.Elems[p.chainIdx]), d.ElemPos(ch.Elems[p.chainIdx+1])
	}

	// Order: group by corner, corners in clockwise order (descending vertex
	// ordinal works on CCW triangles), innermost passage first.
	for _, p := range job.passages {
		a, b := ends(p)
		if p.corner >= 0 {
			c := mesh.Points[p.corner]
			p.cornerDist = a.Dist(c) + b.Dist(c)
		}
	}
	sort.SliceStable(job.passages, func(i, j int) bool {
		pi, pj := job.passages[i], job.passages[j]
		oi := vertexOrd(tile, pi.corner)
		oj := vertexOrd(tile, pj.corner)
		if oi != oj {
			return oi > oj // clockwise corner order on a CCW triangle
		}
		return pi.cornerDist < pj.cornerDist
	})

	// Hard obstacles: the discs of the tile's corner vertices that carry
	// metal (vias, pins, bumps). Radii stored WITHOUT the passing wire's
	// half width, which is added per passage in fitRoute.
	rules := d.G.Design.Rules
	var discs []geom.Circle
	for i := 0; i < 3; i++ {
		vn := d.G.Node(tile.ViaNodes[i])
		if vn.VertKind == viaplan.KindDummy {
			continue
		}
		r := rules.ViaWidth/2 + rules.MinSpacing
		discs = append(discs, geom.Circ(mesh.Points[tile.Verts[i]], r))
	}
	// Soft obstacles: every passage's access points. Earlier-routed wires
	// must keep clearance from later passages' fixed entry points, or those
	// passages start inside a violation they cannot resolve. Kept as a
	// net-sorted slice so the violation resolution order — and with it the
	// exact geometry — is deterministic.
	apByNet := make(map[int][]geom.Point)
	for _, p := range job.passages {
		ch := d.Chains[p.net]
		for _, ei := range []int{p.chainIdx, p.chainIdx + 1} {
			if ch.Elems[ei].Kind != ElemAP {
				continue
			}
			apByNet[p.net] = append(apByNet[p.net], d.ElemPos(ch.Elems[ei]))
		}
	}
	apNets := make([]int, 0, len(apByNet))
	for net := range apByNet {
		apNets = append(apNets, net)
	}
	sort.Ints(apNets)
	apObstacles := make([]netPoints, 0, len(apNets))
	for _, net := range apNets {
		apObstacles = append(apObstacles, netPoints{net: net, pts: apByNet[net]})
	}

	tri := [3]geom.Point{
		mesh.Points[tile.Verts[0]],
		mesh.Points[tile.Verts[1]],
		mesh.Points[tile.Verts[2]],
	}
	var routed []*tilePassage
	for _, p := range job.passages {
		a, b := ends(p)
		ref := d.refPoint(tile, mesh, p, a, b)
		// The 3-segment pattern: through-traffic enters and leaves the tile
		// perpendicular to the tile edge so that adjacent access points at
		// pitch spacing along the edge keep full wire clearance where the
		// wires cross the edge, regardless of the chord's obliqueness.
		// Tight corner wraps skip the stub (a perpendicular entry would
		// force a >90° turn); their clearance comes from the fit
		// construction instead.
		ia := d.stubEnd(tile, mesh, p, p.chainIdx, a, b)
		ib := d.stubEnd(tile, mesh, p, p.chainIdx+1, b, a)
		mid := d.fitRoute(ia, ib, ref, p, routed, discs, apObstacles, scale, tri)
		var full geom.Polyline
		if !ia.ApproxEq(a) {
			full = append(full, a)
		}
		full = append(full, mid...)
		if !ib.ApproxEq(b) {
			full = append(full, b)
		}
		p.route = full.Simplify()
		routed = append(routed, p)
	}
}

// stubEnd returns the inner end of the perpendicular entry stub for the
// chain element at elemIdx of the passage's net, or the element position
// itself when the element is not an access point (vias and pins fan out
// freely), when the perpendicular entry would force a sharp turn toward the
// passage's other endpoint, or when the stub would leave the tile.
func (d *Detailer) stubEnd(tile *rgraph.Tile, mesh *dt.Mesh, p *tilePassage, elemIdx int, pos, other geom.Point) geom.Point {
	ch := d.Chains[p.net]
	el := ch.Elems[elemIdx]
	if el.Kind != ElemAP {
		return pos
	}
	node := d.G.Node(el.Node)
	// Inward normal: perpendicular to the edge, toward the opposite vertex.
	ord := -1
	for i, en := range tile.EdgeNodes {
		if en == el.Node {
			ord = i
		}
	}
	if ord == -1 {
		return pos
	}
	opp := mesh.Points[tile.Verts[(ord+2)%3]]
	n := node.EndB.Sub(node.EndA).Perp().Unit()
	if n.Dot(opp.Sub(node.EndA)) < 0 {
		n = n.Scale(-1)
	}
	// Through-traffic only: the continuation toward the other endpoint must
	// not turn more than ~75° after the perpendicular entry.
	chord := other.Sub(pos)
	if chord.Norm() == 0 {
		return pos
	}
	cos := n.Dot(chord.Unit())
	if cos < 0.26 { // angle(n, chord) > ~75°
		return pos
	}
	s := d.G.Design.Rules.Pitch()
	for try := 0; try < 4; try++ {
		cand := pos.Add(n.Scale(s))
		if geom.PointInTriangle(cand,
			mesh.Points[tile.Verts[0]], mesh.Points[tile.Verts[1]], mesh.Points[tile.Verts[2]]) {
			return cand
		}
		s /= 2
	}
	return pos
}

// refPoint picks the reference the detour must bulge away from: the wrapped
// corner when there is one, otherwise the tile centroid.
func (d *Detailer) refPoint(tile *rgraph.Tile, mesh *dt.Mesh, p *tilePassage, a, b geom.Point) geom.Point {
	if p.corner >= 0 {
		return mesh.Points[p.corner]
	}
	return geom.Centroid(mesh.Points[tile.Verts[0]], mesh.Points[tile.Verts[1]], mesh.Points[tile.Verts[2]])
}

// fitRoute builds the polyline for one passage between the stub inner ends,
// iteratively resolving spacing violations against previously routed
// passages of other nets and the corner discs (Fig. 12 construction). An
// unresolvable violation marks the passage failed.
func (d *Detailer) fitRoute(a, b, ref geom.Point, self *tilePassage,
	routed []*tilePassage, discs []geom.Circle, apObs []netPoints,
	scale float64, tri [3]geom.Point) geom.Polyline {

	route := geom.Polyline{a, b}
	const slack = 1e-9
	selfHalf := d.G.Design.WidthOf(self.net) / 2
	for iter := 0; iter < d.Opt.MaxFitIters; iter++ {
		found, fixed := false, false
		for si := 0; si+1 < len(route) && !fixed; si++ {
			seg := geom.Seg(route[si], route[si+1])
			// Corner discs.
			for _, disc := range discs {
				if disc.C.ApproxEq(a) || disc.C.ApproxEq(b) {
					continue // the passage's own terminal via/pin
				}
				eff := geom.Circ(disc.C, (disc.R+selfHalf)*scale)
				if !eff.IntersectSegment(seg) {
					continue
				}
				found = true
				if d.resolveViolation(&route, si, eff, ref, tri) {
					fixed = true
					break
				}
			}
			if fixed {
				break
			}
			// Access points of the other passages in this tile.
			for _, ob := range apObs {
				if d.G.Design.SameGroup(ob.net, self.net) {
					continue
				}
				clear := d.G.Design.Clearance(self.net, ob.net) * scale
				for _, pt := range ob.pts {
					disc := geom.Circ(pt, clear)
					if !disc.IntersectSegment(seg) {
						continue
					}
					found = true
					if d.resolveViolation(&route, si, disc, ref, tri) {
						fixed = true
						break
					}
				}
				if fixed {
					break
				}
			}
			if fixed {
				break
			}
			// Previously routed passages of other nets (same-group wires
			// are the same electrical net and carry no spacing rule).
			for _, other := range routed {
				if len(other.route) < 2 || d.G.Design.SameGroup(other.net, self.net) {
					continue
				}
				clear := d.G.Design.Clearance(self.net, other.net) * scale
				dist, pc := other.route.DistToSegment(seg)
				if dist >= clear-slack {
					continue
				}
				found = true
				if d.resolveViolation(&route, si, geom.Circ(pc, clear), ref, tri) {
					fixed = true
					break
				}
			}
		}
		if !found {
			return route.Simplify()
		}
		if !fixed {
			// A violation exists but the tangent construction cannot clear
			// it (an endpoint sits inside the constraint circle).
			self.failed = true
			return route.Simplify()
		}
	}
	self.failed = true
	return route.Simplify()
}

// resolveViolation replaces segment si of the route with the two tangents of
// the constraint circle (Fig. 12), inserting the tangent intersection point.
// The detour bulges toward the side of the obstacle the segment already runs
// on, so it can never flip across the violated route. It reports whether the
// route changed.
func (d *Detailer) resolveViolation(route *geom.Polyline, si int, c geom.Circle, ref geom.Point, tri [3]geom.Point) bool {
	ps, pt := (*route)[si], (*route)[si+1]
	// Bulge away from the obstacle toward the segment's current side; when
	// the segment passes (nearly) through the centre, fall back to bulging
	// away from the passage's reference point.
	q := geom.Seg(ps, pt).ClosestPoint(c.C)
	away := q.Sub(c.C)
	sideRef := ref
	if away.Norm() > 1e-9 {
		sideRef = c.C.Sub(away)
	}
	// Grow the circle fractionally so the tangent segments clear it beyond
	// float noise.
	cc := geom.Circ(c.C, c.R*1.0001)
	i, ok := cc.TangentIntersection(ps, pt, sideRef)
	if !ok {
		return false
	}
	if i.ApproxEq(ps) || i.ApproxEq(pt) {
		return false
	}
	// The apex must stay inside the tile: an escaping detour would enter a
	// neighbouring tile whose wires this fit never checks against.
	if !geom.PointInTriangle(i, tri[0], tri[1], tri[2]) {
		return false
	}
	*route = append((*route)[:si+1], append(geom.Polyline{i}, (*route)[si+1:]...)...)
	atomic.AddInt64(&d.fitTangents, 1) // tiles route concurrently
	return true
}

func vertexOrd(tile *rgraph.Tile, v int) int {
	if v < 0 {
		return -1
	}
	for i, tv := range tile.Verts {
		if tv == v {
			return i
		}
	}
	return -1
}
