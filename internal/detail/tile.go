package detail

import (
	"context"
	"slices"
	"sync/atomic"

	"rdlroute/internal/dt"
	"rdlroute/internal/geom"
	"rdlroute/internal/global"
	"rdlroute/internal/obs"
	"rdlroute/internal/pool"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// Tile routing (§III-B2).
//
// Within each tile the guides become geometry: every consecutive chain pair
// whose link lies in the tile is a passage between two boundary points.
// Passages are grouped by the tile corner they wrap (cross-tile passages) or
// start from (access-via passages), corners are processed in a fixed
// clockwise order, and within each corner passages route from innermost to
// outermost. Fit routing resolves spacing violations against already-routed
// wires by the tangent-line construction of Fig. 12: find the constraint
// circle at the violating point, replace the straight segment by the two
// tangents through source and target, iterate.
//
// Jobs are prepared once per run: access points are frozen after the DP
// adjustment, so passage endpoints, stub inner ends, corner order, corner
// discs and access-point obstacles are all invariant across retry attempts
// and live on the job. Each job also owns the scratch buffers its tile
// routing mutates (fit/full polylines, routed list, per-passage route
// buffers); a job is executed by exactly one worker at a time, so warm
// attempts run without growing the heap.

// tilePassage is one chain hop to be realized inside a tile.
type tilePassage struct {
	net      int
	chainIdx int // index of the first of the two chain elements
	corner   int // mesh vertex index the passage wraps / starts at, or -1
	// cornerDist orders passages within their corner group, innermost
	// first.
	cornerDist float64
	// Geometry frozen at preparation time: the chain endpoint positions,
	// the perpendicular stub inner ends, and the reference point the fit
	// detour bulges away from.
	a, b   geom.Point
	ia, ib geom.Point
	ref    geom.Point
	// route is the passage's output polyline — a buffer reused across
	// retry attempts, read by assemble after the final attempt.
	route  geom.Polyline
	failed bool
}

// tileJob collects the passages of one tile plus the tile's prepared
// read-only geometry and the scratch state tile routing reuses.
type tileJob struct {
	key      tileKeyD
	passages []*tilePassage
	// Prepared once: the tile triangle, the corner discs that carry metal,
	// and every passage's fixed access points as net-sorted obstacles.
	tri   [3]geom.Point
	discs []geom.Circle
	apObs []netPoints
	// Scratches owned by the job.
	routed  []*tilePassage
	fitBuf  geom.Polyline
	fullBuf geom.Polyline
}

type tileKeyD struct{ layer, tri int }

// netPoints pairs a net with obstacle points, in deterministic slices.
type netPoints struct {
	net int
	pts []geom.Point
}

// buildTileJobs groups every non-via guide link into its tile's job, in
// canonical (layer, tri) order, prepares each job's frozen geometry, and
// sizes the flat hop index assemble reads routed polylines from. Called
// once per run, after the access points have been placed.
func (d *Detailer) buildTileJobs() {
	jobs := make(map[tileKeyD]*tileJob)
	for net, ch := range d.Chains {
		if ch == nil {
			continue
		}
		guide := d.guideOf(net)
		if guide == nil {
			continue
		}
		for i, l := range guide.Links {
			link := d.G.Link(l)
			if link.Kind == rgraph.CrossVia {
				continue
			}
			key := tileKeyD{link.Layer, link.Tile}
			job := jobs[key]
			if job == nil {
				job = &tileJob{key: key}
				jobs[key] = job
			}
			job.passages = append(job.passages, &tilePassage{net: net, chainIdx: i, corner: link.Corner})
		}
	}
	// Deterministic tile order.
	keys := make([]tileKeyD, 0, len(jobs))
	for k := range jobs {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b tileKeyD) int {
		if a.layer != b.layer {
			return a.layer - b.layer
		}
		return a.tri - b.tri
	})
	d.tileJobs = make([]*tileJob, len(keys))
	for i, k := range keys {
		d.tileJobs[i] = jobs[k]
		d.prepTileJob(jobs[k])
	}

	// Flat (net, chainIdx) → polyline index replacing the per-attempt hops
	// map: chain i owns the hop slots hopOff[i] .. hopOff[i+1]-1.
	d.hopOff = make([]int32, len(d.Chains)+1)
	for net, ch := range d.Chains {
		n := 0
		if ch != nil && len(ch.Elems) > 1 {
			n = len(ch.Elems) - 1
		}
		d.hopOff[net+1] = d.hopOff[net] + int32(n)
	}
	d.hopPl = make([]geom.Polyline, d.hopOff[len(d.Chains)])
}

// hopAt returns the routed polyline of one chain hop (empty when the tile
// was never reached, e.g. after cancellation).
//
//rdl:noalloc
func (d *Detailer) hopAt(net, i int) geom.Polyline {
	return d.hopPl[d.hopOff[net]+int32(i)]
}

// prepTileJob computes everything about a job that does not change across
// retry attempts: passage endpoints and processing order, corner discs,
// access-point obstacles, stub inner ends and reference points.
func (d *Detailer) prepTileJob(job *tileJob) {
	tile := d.G.TileOf(job.key.layer, job.key.tri)
	mesh := d.G.Layers[job.key.layer].Mesh

	// Endpoint positions for each passage.
	for _, p := range job.passages {
		ch := d.Chains[p.net]
		p.a = d.ElemPos(ch.Elems[p.chainIdx])
		p.b = d.ElemPos(ch.Elems[p.chainIdx+1])
		if p.corner >= 0 {
			c := mesh.Points[p.corner]
			p.cornerDist = p.a.Dist(c) + p.b.Dist(c)
		}
	}
	// Order: group by corner, corners in clockwise order (descending vertex
	// ordinal works on CCW triangles), innermost passage first. Insertion
	// sort: stable like the sort.SliceStable it replaces (so the result is
	// byte-identical), without the reflect-based swapper allocation, and the
	// per-tile passage lists are short.
	before := func(pi, pj *tilePassage) bool {
		oi := vertexOrd(tile, pi.corner)
		oj := vertexOrd(tile, pj.corner)
		if oi != oj {
			return oi > oj // clockwise corner order on a CCW triangle
		}
		return pi.cornerDist < pj.cornerDist
	}
	ps := job.passages
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && before(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}

	// Hard obstacles: the discs of the tile's corner vertices that carry
	// metal (vias, pins, bumps). Radii stored WITHOUT the passing wire's
	// half width, which is added per passage in fitRoute.
	rules := d.G.Design.Rules
	for i := 0; i < 3; i++ {
		vn := d.G.Node(tile.ViaNodes[i])
		if vn.VertKind == viaplan.KindDummy {
			continue
		}
		r := rules.ViaWidth/2 + rules.MinSpacing
		job.discs = append(job.discs, geom.Circ(mesh.Points[tile.Verts[i]], r))
	}
	// Soft obstacles: every passage's access points. Earlier-routed wires
	// must keep clearance from later passages' fixed entry points, or those
	// passages start inside a violation they cannot resolve. Kept as a
	// net-sorted slice so the violation resolution order — and with it the
	// exact geometry — is deterministic.
	apByNet := make(map[int][]geom.Point)
	for _, p := range job.passages {
		ch := d.Chains[p.net]
		for _, ei := range []int{p.chainIdx, p.chainIdx + 1} {
			if ch.Elems[ei].Kind != ElemAP {
				continue
			}
			apByNet[p.net] = append(apByNet[p.net], d.ElemPos(ch.Elems[ei]))
		}
	}
	apNets := make([]int, 0, len(apByNet))
	for net := range apByNet {
		apNets = append(apNets, net)
	}
	slices.Sort(apNets)
	job.apObs = make([]netPoints, 0, len(apNets))
	for _, net := range apNets {
		job.apObs = append(job.apObs, netPoints{net: net, pts: apByNet[net]})
	}

	job.tri = [3]geom.Point{
		mesh.Points[tile.Verts[0]],
		mesh.Points[tile.Verts[1]],
		mesh.Points[tile.Verts[2]],
	}
	// Stub ends and reference points.
	for _, p := range job.passages {
		p.ref = d.refPoint(tile, mesh, p)
		// The 3-segment pattern: through-traffic enters and leaves the tile
		// perpendicular to the tile edge so that adjacent access points at
		// pitch spacing along the edge keep full wire clearance where the
		// wires cross the edge, regardless of the chord's obliqueness.
		// Tight corner wraps skip the stub (a perpendicular entry would
		// force a >90° turn); their clearance comes from the fit
		// construction instead.
		p.ia = d.stubEnd(tile, mesh, p, p.chainIdx, p.a, p.b)
		p.ib = d.stubEnd(tile, mesh, p, p.chainIdx+1, p.b, p.a)
	}
}

// routeTiles performs tile routing over all tiles and stores the resulting
// polylines into the flat hop index, returning the failed passages. The
// scale parameter multiplies every pairwise clearance (>1 on retries).
// Cancelling ctx stops between tiles; unreached passages keep empty routes,
// which assemble replaces with straight hops.
func (d *Detailer) routeTiles(ctx context.Context, scale float64) []*tilePassage {
	for _, job := range d.tileJobs {
		for _, p := range job.passages {
			p.route = p.route[:0]
			p.failed = false
		}
	}
	// One unit per tile: routeOneTile touches only its own job, and the
	// shared Detailer state it reads — chains, access points, graph, rules —
	// is frozen during tile routing, so tiles fan out freely across the
	// pool. The merge below walks the jobs in their canonical order, making
	// the hop index contents and the failure list independent of the pool
	// size; a cancelled context skips un-started tiles, whose passages keep
	// empty routes exactly like the serial path.
	if workers := d.Opt.workers(); workers <= 1 {
		for _, job := range d.tileJobs {
			if !obs.Stopped(ctx) {
				d.routeOneTile(job, scale)
			}
		}
	} else {
		units := make([]func() struct{}, len(d.tileJobs))
		for i, job := range d.tileJobs {
			job := job
			units[i] = func() struct{} {
				if !obs.Stopped(ctx) {
					d.routeOneTile(job, scale)
				}
				return struct{}{}
			}
		}
		pool.Run(units, workers)
	}

	failures := d.failBuf[:0]
	for _, job := range d.tileJobs {
		for _, p := range job.passages {
			d.hopPl[d.hopOff[p.net]+int32(p.chainIdx)] = p.route
			if p.failed {
				failures = append(failures, p)
			}
		}
	}
	d.failBuf = failures
	return failures
}

// guideOf returns the committed guide of a net (or nil).
func (d *Detailer) guideOf(net int) *global.Guide {
	return d.guides[net]
}

// routeOneTile routes all passages of one tile into their route buffers.
//
//rdl:noalloc
func (d *Detailer) routeOneTile(job *tileJob, scale float64) {
	routed := job.routed[:0]
	for _, p := range job.passages {
		mid := d.fitRoute(job, p, routed, scale)
		full := job.fullBuf[:0]
		if !p.ia.ApproxEq(p.a) {
			full = append(full, p.a)
		}
		full = append(full, mid...)
		if !p.ib.ApproxEq(p.b) {
			full = append(full, p.b)
		}
		job.fullBuf = full
		full = full.SimplifyInPlace()
		p.route = append(p.route[:0], full...)
		routed = append(routed, p)
	}
	job.routed = routed
}

// stubEnd returns the inner end of the perpendicular entry stub for the
// chain element at elemIdx of the passage's net, or the element position
// itself when the element is not an access point (vias and pins fan out
// freely), when the perpendicular entry would force a sharp turn toward the
// passage's other endpoint, or when the stub would leave the tile.
func (d *Detailer) stubEnd(tile *rgraph.Tile, mesh *dt.Mesh, p *tilePassage, elemIdx int, pos, other geom.Point) geom.Point {
	ch := d.Chains[p.net]
	el := ch.Elems[elemIdx]
	if el.Kind != ElemAP {
		return pos
	}
	node := d.G.Node(el.Node)
	// Inward normal: perpendicular to the edge, toward the opposite vertex.
	ord := -1
	for i, en := range tile.EdgeNodes {
		if en == el.Node {
			ord = i
		}
	}
	if ord == -1 {
		return pos
	}
	opp := mesh.Points[tile.Verts[(ord+2)%3]]
	n := node.EndB.Sub(node.EndA).Perp().Unit()
	if n.Dot(opp.Sub(node.EndA)) < 0 {
		n = n.Scale(-1)
	}
	// Through-traffic only: the continuation toward the other endpoint must
	// not turn more than ~75° after the perpendicular entry.
	chord := other.Sub(pos)
	if chord.Norm() == 0 {
		return pos
	}
	cos := n.Dot(chord.Unit())
	if cos < 0.26 { // angle(n, chord) > ~75°
		return pos
	}
	s := d.G.Design.Rules.Pitch()
	for try := 0; try < 4; try++ {
		cand := pos.Add(n.Scale(s))
		if geom.PointInTriangle(cand,
			mesh.Points[tile.Verts[0]], mesh.Points[tile.Verts[1]], mesh.Points[tile.Verts[2]]) {
			return cand
		}
		s /= 2
	}
	return pos
}

// refPoint picks the reference the detour must bulge away from: the wrapped
// corner when there is one, otherwise the tile centroid.
func (d *Detailer) refPoint(tile *rgraph.Tile, mesh *dt.Mesh, p *tilePassage) geom.Point {
	if p.corner >= 0 {
		return mesh.Points[p.corner]
	}
	return geom.Centroid(mesh.Points[tile.Verts[0]], mesh.Points[tile.Verts[1]], mesh.Points[tile.Verts[2]])
}

// fitRoute builds the polyline for one passage between the stub inner ends
// in the job's fit buffer, iteratively resolving spacing violations against
// previously routed passages of other nets and the corner discs (Fig. 12
// construction). An unresolvable violation marks the passage failed. The
// returned polyline aliases the job's fit buffer; the caller copies it out.
//
//rdl:noalloc
func (d *Detailer) fitRoute(job *tileJob, self *tilePassage, routed []*tilePassage, scale float64) geom.Polyline {
	a, b, ref := self.ia, self.ib, self.ref
	route := append(job.fitBuf[:0], a, b)
	const slack = 1e-9
	selfHalf := d.G.Design.WidthOf(self.net) / 2
	for iter := 0; iter < d.Opt.MaxFitIters; iter++ {
		found, fixed := false, false
		for si := 0; si+1 < len(route) && !fixed; si++ {
			seg := geom.Seg(route[si], route[si+1])
			// Corner discs.
			for _, disc := range job.discs {
				if disc.C.ApproxEq(a) || disc.C.ApproxEq(b) {
					continue // the passage's own terminal via/pin
				}
				eff := geom.Circ(disc.C, (disc.R+selfHalf)*scale)
				if !eff.IntersectSegment(seg) {
					continue
				}
				found = true
				if d.resolveViolation(&route, si, eff, ref, job.tri) {
					fixed = true
					break
				}
			}
			if fixed {
				break
			}
			// Access points of the other passages in this tile.
			for _, ob := range job.apObs {
				if d.G.Design.SameGroup(ob.net, self.net) {
					continue
				}
				clear := d.G.Design.Clearance(self.net, ob.net) * scale
				for _, pt := range ob.pts {
					disc := geom.Circ(pt, clear)
					if !disc.IntersectSegment(seg) {
						continue
					}
					found = true
					if d.resolveViolation(&route, si, disc, ref, job.tri) {
						fixed = true
						break
					}
				}
				if fixed {
					break
				}
			}
			if fixed {
				break
			}
			// Previously routed passages of other nets (same-group wires
			// are the same electrical net and carry no spacing rule).
			for _, other := range routed {
				if len(other.route) < 2 || d.G.Design.SameGroup(other.net, self.net) {
					continue
				}
				clear := d.G.Design.Clearance(self.net, other.net) * scale
				dist, pc := other.route.DistToSegment(seg)
				if dist >= clear-slack {
					continue
				}
				found = true
				if d.resolveViolation(&route, si, geom.Circ(pc, clear), ref, job.tri) {
					fixed = true
					break
				}
			}
		}
		if !found {
			job.fitBuf = route
			return route.SimplifyInPlace()
		}
		if !fixed {
			// A violation exists but the tangent construction cannot clear
			// it (an endpoint sits inside the constraint circle).
			self.failed = true
			job.fitBuf = route
			return route.SimplifyInPlace()
		}
	}
	self.failed = true
	job.fitBuf = route
	return route.SimplifyInPlace()
}

// resolveViolation replaces segment si of the route with the two tangents of
// the constraint circle (Fig. 12), splicing in the tangent intersection
// point in place. The detour bulges toward the side of the obstacle the
// segment already runs on, so it can never flip across the violated route.
// It reports whether the route changed.
//
//rdl:noalloc
func (d *Detailer) resolveViolation(route *geom.Polyline, si int, c geom.Circle, ref geom.Point, tri [3]geom.Point) bool {
	ps, pt := (*route)[si], (*route)[si+1]
	// Bulge away from the obstacle toward the segment's current side; when
	// the segment passes (nearly) through the centre, fall back to bulging
	// away from the passage's reference point.
	q := geom.Seg(ps, pt).ClosestPoint(c.C)
	away := q.Sub(c.C)
	sideRef := ref
	if away.Norm() > 1e-9 {
		sideRef = c.C.Sub(away)
	}
	// Grow the circle fractionally so the tangent segments clear it beyond
	// float noise.
	cc := geom.Circ(c.C, c.R*1.0001)
	i, ok := cc.TangentIntersection(ps, pt, sideRef)
	if !ok {
		return false
	}
	if i.ApproxEq(ps) || i.ApproxEq(pt) {
		return false
	}
	// The apex must stay inside the tile: an escaping detour would enter a
	// neighbouring tile whose wires this fit never checks against.
	if !geom.PointInTriangle(i, tri[0], tri[1], tri[2]) {
		return false
	}
	*route = append(*route, geom.Point{})
	copy((*route)[si+2:], (*route)[si+1:len(*route)-1])
	(*route)[si+1] = i
	atomic.AddInt64(&d.fitTangents, 1) // tiles route concurrently
	return true
}

func vertexOrd(tile *rgraph.Tile, v int) int {
	if v < 0 {
		return -1
	}
	for i, tv := range tile.Verts {
		if tv == v {
			return i
		}
	}
	return -1
}
