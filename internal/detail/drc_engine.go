package detail

import (
	"math"
	"sort"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/obs"
	"rdlroute/internal/pool"
)

// The DRC engine decomposes the check into independent work units and runs
// them on a worker pool. Unit boundaries are fixed (independent of the
// worker count) and the merged findings are canonically sorted, so any pool
// size produces byte-identical output.
//
// The spatial index is a flat CSR-bucketed grid, not a hash map: cells are
// dense array slots indexed by (x + y*nx) over the layer's bounding box,
// bucket membership lives in one items array addressed by a starts/offsets
// array, and the per-source-segment "pair already examined" set is a
// generation-stamped array instead of a per-unit map. Cell coordinates are
// computed once per endpoint (integer math from there on), so the double
// [2]int hashing of the former map grid — once per lookup, once per insert
// — is gone entirely; see doc/PERFORMANCE.md for the measured effect.
// Workers own their scratches (pool.RunWith hands every unit its worker
// slot), which persist across all units of a run.

const (
	// drcSpacingChunk is the number of source segments per spacing unit.
	drcSpacingChunk = 256
	// drcLineChunk is the number of polylines per wire-rule unit and routes
	// per obstacle unit.
	drcLineChunk = 64
)

// drcSeg is one wire segment inserted into a layer's spatial hash.
type drcSeg struct {
	net int
	// id is the segment's dense per-layer index in canonical order (net
	// order, then polyline order); the spacing scan dedupes findings by the
	// unordered pair (id, id).
	id  int
	seg geom.Segment
}

// drcScratch is one worker's reusable state: the generation-stamped
// pair-dedup array for spacing scans and the bucket-counting buffer for
// grid builds. A scratch belongs to exactly one worker slot and persists
// across every unit that worker executes within a run, so warm units do
// not grow the heap.
type drcScratch struct {
	// stamp[id] == gen marks segment id as already examined against the
	// current source segment. Clearing is O(1): bump gen.
	stamp []uint32
	gen   uint32
	// counts is the CSR bucket-size buffer for grid builds.
	counts []int32
	// segBuf is the flattened-segment staging buffer grid builds fill from:
	// callers copy their typed views (drcSeg, netSeg, netVia) into it so the
	// counting passes iterate a plain slice instead of calling back through
	// a func value per segment.
	segBuf []geom.Segment
}

// netRules resolves the pairwise net semantics the checker needs — same-net
// equivalence and required clearance — from either a full Design
// (group-aware multi-pin nets) or bare Rules (electrically distinct nets,
// uniform pitch). A concrete struct instead of a pair of func-value
// parameters keeps every call on the //rdl:noalloc spacing scan statically
// resolvable for the transalloc pass.
type netRules struct {
	d     *design.Design // nil in the rules-only variant
	pitch float64        // clearance fallback when d is nil
}

// sameNet reports whether two nets carry no spacing rule between each other.
//
//rdl:noalloc
func (nr netRules) sameNet(a, b int) bool {
	if nr.d != nil {
		return nr.d.SameGroup(a, b)
	}
	return a == b
}

// clearance returns the required centre-to-centre distance between wires of
// nets a and b.
//
//rdl:noalloc
func (nr netRules) clearance(a, b int) float64 {
	if nr.d != nil {
		return nr.d.Clearance(a, b)
	}
	return nr.pitch
}

// begin starts a new dedup generation sized for n segments.
//
//rdl:noalloc
func (s *drcScratch) begin(n int) {
	if cap(s.stamp) < n {
		//rdl:allow noalloc stamp array growth is setup cost: it happens at most once per layer size increase, never in warm units
		s.stamp = make([]uint32, n)
	}
	s.stamp = s.stamp[:n]
	s.gen++
	if s.gen == 0 { // uint32 wrap: stale stamps could alias, zero-fill once
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
}

// flatGrid is the dense spatial hash of one layer: cell (x, y) with
// 0 ≤ x < nx, 0 ≤ y < ny holds the segment indices
// items[starts[y*nx+x]:starts[y*nx+x+1]]. Cells outside the bounding box
// hold nothing by construction, so queries skip them instead of looking
// them up.
type flatGrid struct {
	minX, minY float64
	inv        float64 // 1 / cell edge length
	nx, ny     int
	starts     []int32
	items      []int32
}

// cellOf returns p's cell coordinates, computed once per endpoint. The
// clamp guards the top-edge float boundary (a point exactly on the
// bounding-box maximum).
//
//rdl:noalloc
func (g *flatGrid) cellOf(p geom.Point) (int, int) {
	cx := int((p.X - g.minX) * g.inv)
	cy := int((p.Y - g.minY) * g.inv)
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return cx, cy
}

// drcLayer is the prepared per-layer state the spacing and wire-rule units
// read concurrently (read-only after the build phase).
type drcLayer struct {
	layer int
	cell  float64
	segs  []drcSeg
	lines []RouteOnLayer
	grid  flatGrid
}

// buildLayer collects the layer's segments, sizes the spatial hash, and
// fills the grid.
//
// The cell must be at least the largest pairwise clearance of any two nets
// present on the layer: the spacing scan only visits cells within ±1 of a
// segment's own cells, so a pair whose clearance exceeded the cell size
// could sit outside the window and a real violation would be silently
// missed. The old pitch-derived sizing had exactly that hole for wide
// (per-net width) nets; deriving the cell from the clearance rule over the
// participating nets closes it.
func buildLayer(routes []*Route, layer int, rules design.Rules,
	nr netRules, scr *drcScratch) *drcLayer {
	l := &drcLayer{layer: layer, lines: SegmentsOnLayer(routes, layer)}

	// Distinct nets on the layer, in ascending order (lines are net-sorted).
	var nets []int
	for _, rl := range l.lines {
		if len(nets) == 0 || nets[len(nets)-1] != rl.Net {
			nets = append(nets, rl.Net)
		}
	}
	maxClear := 0.0
	for i := 0; i < len(nets); i++ {
		for j := i + 1; j < len(nets); j++ {
			if nr.sameNet(nets[i], nets[j]) {
				continue
			}
			if c := nr.clearance(nets[i], nets[j]); c > maxClear {
				maxClear = c
			}
		}
	}
	// 8× pitch and the 50 µm floor keep cells coarse enough that sparse
	// layers don't fragment into millions of buckets; maxClear is the
	// correctness bound.
	l.cell = math.Max(math.Max(maxClear, rules.Pitch()*8), 50)

	for _, rl := range l.lines {
		pl := rl.Pl
		for i := 1; i < len(pl); i++ {
			l.segs = append(l.segs, drcSeg{net: rl.Net, id: len(l.segs), seg: geom.Seg(pl[i-1], pl[i])})
		}
	}
	l.buildGrid(scr)
	return l
}

// buildGrid fills the layer's flat CSR grid in two counting passes over the
// segments, reusing the worker scratch's counts buffer.
func (l *drcLayer) buildGrid(scr *drcScratch) {
	buf := growSlice(scr.segBuf, len(l.segs))
	for i := range l.segs {
		buf[i] = l.segs[i].seg
	}
	scr.segBuf = buf
	l.grid.fill(buf, l.cell, scr)
}

// fill (re)builds the grid over the segments in two counting passes, reusing
// the grid's starts/items backing arrays and the scratch's counts buffer,
// so warm refills over same-or-smaller geometry do not allocate. Bucket
// contents come out in ascending segment-index order (the order the former
// map grid's appends produced). A segment is indexed into the full cell
// rectangle spanned by its endpoints, a superset of the cells it passes
// through, so a ±1-cell query walk around any point of it is exhaustive for
// distances up to one cell edge.
//
// Callers stage their typed segment views into a plain []geom.Segment
// (usually the scratch's segBuf) instead of handing fill an accessor
// closure: the copy costs one linear pass, and in exchange both counting
// passes iterate a flat slice with no per-segment indirect call, and the
// //rdl:noalloc refresh paths that reach fill contain no func values the
// transalloc pass would have to take on faith.
//
//rdl:noalloc
func (g *flatGrid) fill(segs []geom.Segment, cell float64, scr *drcScratch) {
	n := len(segs)
	if n == 0 {
		g.nx, g.ny = 0, 0
		g.starts, g.items = g.starts[:0], g.items[:0]
		return
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for i := 0; i < n; i++ {
		s := segs[i]
		minX = math.Min(minX, math.Min(s.A.X, s.B.X))
		minY = math.Min(minY, math.Min(s.A.Y, s.B.Y))
		maxX = math.Max(maxX, math.Max(s.A.X, s.B.X))
		maxY = math.Max(maxY, math.Max(s.A.Y, s.B.Y))
	}
	g.minX, g.minY = minX, minY
	g.inv = 1 / cell
	g.nx = int((maxX-minX)*g.inv) + 1
	g.ny = int((maxY-minY)*g.inv) + 1
	ncells := g.nx * g.ny

	counts := scr.counts
	if cap(counts) < ncells {
		//rdl:allow noalloc counts growth is amortized setup: it happens only when a layer's cell count exceeds every earlier one, never in warm refills
		counts = make([]int32, ncells)
	}
	counts = counts[:ncells]
	for i := range counts {
		counts[i] = 0
	}
	scr.counts = counts

	// Pass 1: bucket sizes.
	total := 0
	for i := 0; i < n; i++ {
		s := segs[i]
		x0, y0 := g.cellOf(s.A)
		x1, y1 := g.cellOf(s.B)
		for x := minInt(x0, x1); x <= maxInt(x0, x1); x++ {
			for y := minInt(y0, y1); y <= maxInt(y0, y1); y++ {
				counts[y*g.nx+x]++
				total++
			}
		}
	}
	// Prefix-sum into starts; cursor reuses counts.
	g.starts = growSlice(g.starts, ncells+1)
	run := int32(0)
	for c := 0; c < ncells; c++ {
		g.starts[c] = run
		run += counts[c]
		counts[c] = g.starts[c] // cursor for pass 2
	}
	g.starts[ncells] = run

	// Pass 2: fill in ascending segment-index order.
	g.items = growSlice(g.items, total)
	for i := 0; i < n; i++ {
		s := segs[i]
		x0, y0 := g.cellOf(s.A)
		x1, y1 := g.cellOf(s.B)
		for x := minInt(x0, x1); x <= maxInt(x0, x1); x++ {
			for y := minInt(y0, y1); y <= maxInt(y0, y1); y++ {
				c := y*g.nx + x
				g.items[counts[c]] = int32(i)
				counts[c]++
			}
		}
	}
}

// fillNetSegs and fillNetVias are the fill adapters for the polisher's and
// reassigner's per-layer views (vias index as degenerate segments): each
// stages its typed view into the scratch's segBuf and rebuilds the grid
// from the flat slice.
//
//rdl:noalloc
func (g *flatGrid) fillNetSegs(segs []netSeg, cell float64, scr *drcScratch) {
	buf := growSlice(scr.segBuf, len(segs))
	for i := range segs {
		buf[i] = segs[i].seg
	}
	scr.segBuf = buf
	g.fill(buf, cell, scr)
}

//rdl:noalloc
func (g *flatGrid) fillNetVias(vias []netVia, cell float64, scr *drcScratch) {
	buf := growSlice(scr.segBuf, len(vias))
	for i := range vias {
		buf[i] = geom.Seg(vias[i].pos, vias[i].pos)
	}
	scr.segBuf = buf
	g.fill(buf, cell, scr)
}

// spacingUnit checks the source segments segs[lo:hi] against the grid.
// Each unordered pair is examined once, from its lower net's side; findings
// are deduplicated by segment-pair identity (both segments may span several
// cells and meet in more than one, and two distinct pairs can share a
// witness point — the identity, not the float witness, is what makes a
// finding unique). The scratch's stamp array replaces the former per-unit
// seen map: one generation per source segment marks every partner already
// examined, which also skips the duplicate distance computations the map
// version still paid for non-violating pairs.
//
//rdl:noalloc
func (l *drcLayer) spacingUnit(lo, hi int, nr netRules,
	scr *drcScratch) []Violation {
	const eps = 1e-6
	var out []Violation
	g := &l.grid
	for si := lo; si < hi; si++ {
		s := &l.segs[si]
		scr.begin(len(l.segs))
		x0, y0 := g.cellOf(s.seg.A)
		x1, y1 := g.cellOf(s.seg.B)
		for x := minInt(x0, x1) - 1; x <= maxInt(x0, x1)+1; x++ {
			if x < 0 || x >= g.nx {
				continue // outside the bounding box: nothing bucketed there
			}
			for y := minInt(y0, y1) - 1; y <= maxInt(y0, y1)+1; y++ {
				if y < 0 || y >= g.ny {
					continue
				}
				c := y*g.nx + x
				for _, ei := range g.items[g.starts[c]:g.starts[c+1]] {
					e := &l.segs[ei]
					if e.net <= s.net || nr.sameNet(e.net, s.net) {
						continue
					}
					if scr.stamp[e.id] == scr.gen {
						continue
					}
					scr.stamp[e.id] = scr.gen
					limit := nr.clearance(s.net, e.net)
					dist, pa, _ := s.seg.DistToSegment(e.seg)
					if dist >= limit-eps {
						continue
					}
					out = append(out, Violation{
						Kind: SpacingViolation, Layer: l.layer,
						NetA: s.net, NetB: e.net, Where: pa,
						Value: dist, Limit: limit,
					})
				}
			}
		}
	}
	return out
}

// wireRuleUnit checks the per-net angle and turn-distance rules over
// lines[lo:hi].
func (l *drcLayer) wireRuleUnit(lo, hi int, rules design.Rules) []Violation {
	const eps = 1e-6
	var out []Violation
	for _, rl := range l.lines[lo:hi] {
		pl := rl.Pl
		for i := 1; i+1 < len(pl); i++ {
			turn := geom.TurnAngle(pl[i-1], pl[i], pl[i+1])
			if turn > math.Pi/2+eps {
				out = append(out, Violation{
					Kind: AngleViolation, Layer: l.layer, NetA: rl.Net, NetB: -1,
					Where: pl[i], Value: turn, Limit: math.Pi / 2,
				})
			}
		}
		for i := 2; i+1 < len(pl); i++ {
			d := pl[i-1].Dist(pl[i])
			if d < rules.MinTurnDist-eps {
				out = append(out, Violation{
					Kind: TurnDistViolation, Layer: l.layer, NetA: rl.Net, NetB: -1,
					Where: pl[i], Value: d, Limit: rules.MinTurnDist,
				})
			}
		}
	}
	return out
}

// obstacleUnit checks routes[lo:hi] against the design's keep-out regions.
func obstacleUnit(routes []*Route, lo, hi int, d *design.Design) []Violation {
	var out []Violation
	for _, rt := range routes[lo:hi] {
		if rt == nil {
			continue
		}
		for _, seg := range rt.Segs {
			pl := seg.Pl
			for i := 1; i < len(pl); i++ {
				s := geom.Seg(pl[i-1], pl[i])
				if d.SegmentBlocked(s, seg.Layer, 0) {
					out = append(out, Violation{
						Kind: ObstacleViolation, Layer: seg.Layer,
						NetA: rt.Net, NetB: -1, Where: s.Mid(),
					})
				}
			}
		}
	}
	return out
}

// sortViolations puts findings into the engine's canonical order. The key is
// a total order over everything a violation carries, so the result is
// independent of unit boundaries and worker scheduling.
func sortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		switch {
		case a.Layer != b.Layer:
			return a.Layer < b.Layer
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.NetA != b.NetA:
			return a.NetA < b.NetA
		case a.NetB != b.NetB:
			return a.NetB < b.NetB
		case a.Where.X != b.Where.X:
			return a.Where.X < b.Where.X
		case a.Where.Y != b.Where.Y:
			return a.Where.Y < b.Where.Y
		case a.Value != b.Value:
			return a.Value < b.Value
		default:
			return a.Limit < b.Limit
		}
	})
}

// checkDRC is the shared engine behind CheckDRC, CheckDRCWithDesign and
// CheckDRCParallel. d is only consulted for keep-out regions and may be nil.
func checkDRC(routes []*Route, rules design.Rules, layers int,
	nr netRules, d *design.Design, workers int, rec obs.Recorder) []Violation {
	rec = obs.Or(rec)
	if workers < 1 {
		workers = 1
	}
	// One scratch per worker slot, shared by the build and scan phases: the
	// stamp and counts buffers reach steady-state size after the first few
	// units and every later unit runs allocation-free against them.
	scratches := make([]drcScratch, workers)

	// Phase 1: per-layer grids, built concurrently across layers.
	span := obs.StartSpan(rec, "drc.grid")
	prepped := make([]*drcLayer, layers)
	prepUnits := make([]func(w int) []Violation, layers)
	for layer := 0; layer < layers; layer++ {
		layer := layer
		prepUnits[layer] = func(w int) []Violation {
			prepped[layer] = buildLayer(routes, layer, rules, nr, &scratches[w])
			return nil
		}
	}
	pool.RunWith(prepUnits, workers)
	span.End()

	// Phase 2: spacing stripes, wire rules, and keep-outs, in a fixed unit
	// order so the concatenation is deterministic.
	span = obs.StartSpan(rec, "drc.scan")
	var units []func(w int) []Violation
	for _, l := range prepped {
		l := l
		for lo := 0; lo < len(l.segs); lo += drcSpacingChunk {
			lo, hi := lo, minInt(lo+drcSpacingChunk, len(l.segs))
			units = append(units, func(w int) []Violation {
				return l.spacingUnit(lo, hi, nr, &scratches[w])
			})
		}
		for lo := 0; lo < len(l.lines); lo += drcLineChunk {
			lo, hi := lo, minInt(lo+drcLineChunk, len(l.lines))
			units = append(units, func(w int) []Violation {
				return l.wireRuleUnit(lo, hi, rules)
			})
		}
	}
	if d != nil && len(d.Obstacles) > 0 {
		for lo := 0; lo < len(routes); lo += drcLineChunk {
			lo, hi := lo, minInt(lo+drcLineChunk, len(routes))
			units = append(units, func(w int) []Violation {
				return obstacleUnit(routes, lo, hi, d)
			})
		}
	}
	var out []Violation
	for _, r := range pool.RunWith(units, workers) {
		out = append(out, r...)
	}
	span.End()

	sortViolations(out)
	if rec.Enabled() {
		// Counters are emitted in kind order: accumulating into a map and
		// ranging over it would emit the JSONL trace lines in randomized
		// map order (caught by the mapiter analyzer).
		var byKind [ObstacleViolation + 1]int64
		for _, v := range out {
			byKind[v.Kind]++
		}
		for k, n := range byKind {
			if n > 0 {
				rec.Count("drc.violations."+ViolationKind(k).String(), n)
			}
		}
		var cells, segs int64
		for _, l := range prepped {
			cells += int64(l.grid.nx * l.grid.ny)
			segs += int64(len(l.segs))
		}
		rec.Count("drc.grid.cells", cells)
		rec.Count("drc.grid.segments", segs)
	}
	return out
}
