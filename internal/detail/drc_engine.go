package detail

import (
	"math"
	"sort"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/obs"
	"rdlroute/internal/pool"
)

// The DRC engine decomposes the check into independent work units and runs
// them on a worker pool. Unit boundaries are fixed (independent of the
// worker count) and the merged findings are canonically sorted, so any pool
// size produces byte-identical output.

const (
	// drcSpacingChunk is the number of source segments per spacing unit.
	drcSpacingChunk = 256
	// drcLineChunk is the number of polylines per wire-rule unit and routes
	// per obstacle unit.
	drcLineChunk = 64
)

// drcSeg is one wire segment inserted into a layer's spatial hash.
type drcSeg struct {
	net int
	// id is the segment's dense per-layer index in canonical order (net
	// order, then polyline order); the spacing scan dedupes findings by the
	// unordered pair (id, id).
	id  int
	seg geom.Segment
}

// drcLayer is the prepared per-layer state the spacing and wire-rule units
// read concurrently (read-only after the build phase).
type drcLayer struct {
	layer int
	cell  float64
	segs  []drcSeg
	lines []RouteOnLayer
	// grid buckets indices into segs by cell.
	grid map[[2]int][]int
}

func (l *drcLayer) key(p geom.Point) [2]int {
	return [2]int{int(math.Floor(p.X / l.cell)), int(math.Floor(p.Y / l.cell))}
}

// buildLayer collects the layer's segments, sizes the spatial hash, and
// fills the grid.
//
// The cell must be at least the largest pairwise clearance of any two nets
// present on the layer: the spacing scan only visits cells within ±1 of a
// segment's own cells, so a pair whose clearance exceeded the cell size
// could sit outside the window and a real violation would be silently
// missed. The old pitch-derived sizing had exactly that hole for wide
// (per-net width) nets; deriving the cell from clearFn over the
// participating nets closes it.
func buildLayer(routes []*Route, layer int, rules design.Rules,
	sameNet func(a, b int) bool, clearFn func(a, b int) float64) *drcLayer {
	l := &drcLayer{layer: layer, lines: SegmentsOnLayer(routes, layer)}

	// Distinct nets on the layer, in ascending order (lines are net-sorted).
	var nets []int
	for _, rl := range l.lines {
		if len(nets) == 0 || nets[len(nets)-1] != rl.Net {
			nets = append(nets, rl.Net)
		}
	}
	maxClear := 0.0
	for i := 0; i < len(nets); i++ {
		for j := i + 1; j < len(nets); j++ {
			if sameNet(nets[i], nets[j]) {
				continue
			}
			if c := clearFn(nets[i], nets[j]); c > maxClear {
				maxClear = c
			}
		}
	}
	// 8× pitch and the 50 µm floor keep cells coarse enough that sparse
	// layers don't fragment into millions of buckets; maxClear is the
	// correctness bound.
	l.cell = math.Max(math.Max(maxClear, rules.Pitch()*8), 50)

	for _, rl := range l.lines {
		for _, s := range rl.Pl.Segments() {
			l.segs = append(l.segs, drcSeg{net: rl.Net, id: len(l.segs), seg: s})
		}
	}
	l.grid = make(map[[2]int][]int)
	for i, e := range l.segs {
		k0 := l.key(e.seg.A)
		k1 := l.key(e.seg.B)
		for x := minInt(k0[0], k1[0]); x <= maxInt(k0[0], k1[0]); x++ {
			for y := minInt(k0[1], k1[1]); y <= maxInt(k0[1], k1[1]); y++ {
				l.grid[[2]int{x, y}] = append(l.grid[[2]int{x, y}], i)
			}
		}
	}
	return l
}

// spacingUnit checks the source segments segs[lo:hi] against the grid.
// Each unordered pair is examined once, from its lower net's side; findings
// are deduplicated by segment-pair identity (both segments may span several
// cells and meet in more than one, and two distinct pairs can share a
// witness point — the identity, not the float witness, is what makes a
// finding unique).
func (l *drcLayer) spacingUnit(lo, hi int,
	sameNet func(a, b int) bool, clearFn func(a, b int) float64) []Violation {
	const eps = 1e-6
	var out []Violation
	seen := make(map[[2]int]bool)
	for si := lo; si < hi; si++ {
		s := l.segs[si]
		k0 := l.key(s.seg.A)
		k1 := l.key(s.seg.B)
		for x := minInt(k0[0], k1[0]) - 1; x <= maxInt(k0[0], k1[0])+1; x++ {
			for y := minInt(k0[1], k1[1]) - 1; y <= maxInt(k0[1], k1[1])+1; y++ {
				for _, ei := range l.grid[[2]int{x, y}] {
					e := l.segs[ei]
					if e.net <= s.net || sameNet(e.net, s.net) {
						continue
					}
					if seen[[2]int{s.id, e.id}] {
						continue
					}
					limit := clearFn(s.net, e.net)
					dist, pa, _ := s.seg.DistToSegment(e.seg)
					if dist >= limit-eps {
						continue
					}
					seen[[2]int{s.id, e.id}] = true
					out = append(out, Violation{
						Kind: SpacingViolation, Layer: l.layer,
						NetA: s.net, NetB: e.net, Where: pa,
						Value: dist, Limit: limit,
					})
				}
			}
		}
	}
	return out
}

// wireRuleUnit checks the per-net angle and turn-distance rules over
// lines[lo:hi].
func (l *drcLayer) wireRuleUnit(lo, hi int, rules design.Rules) []Violation {
	const eps = 1e-6
	var out []Violation
	for _, rl := range l.lines[lo:hi] {
		pl := rl.Pl
		for i := 1; i+1 < len(pl); i++ {
			turn := geom.TurnAngle(pl[i-1], pl[i], pl[i+1])
			if turn > math.Pi/2+eps {
				out = append(out, Violation{
					Kind: AngleViolation, Layer: l.layer, NetA: rl.Net, NetB: -1,
					Where: pl[i], Value: turn, Limit: math.Pi / 2,
				})
			}
		}
		for i := 2; i+1 < len(pl); i++ {
			d := pl[i-1].Dist(pl[i])
			if d < rules.MinTurnDist-eps {
				out = append(out, Violation{
					Kind: TurnDistViolation, Layer: l.layer, NetA: rl.Net, NetB: -1,
					Where: pl[i], Value: d, Limit: rules.MinTurnDist,
				})
			}
		}
	}
	return out
}

// obstacleUnit checks routes[lo:hi] against the design's keep-out regions.
func obstacleUnit(routes []*Route, lo, hi int, d *design.Design) []Violation {
	var out []Violation
	for _, rt := range routes[lo:hi] {
		if rt == nil {
			continue
		}
		for _, seg := range rt.Segs {
			for _, s := range seg.Pl.Segments() {
				if d.SegmentBlocked(s, seg.Layer, 0) {
					out = append(out, Violation{
						Kind: ObstacleViolation, Layer: seg.Layer,
						NetA: rt.Net, NetB: -1, Where: s.Mid(),
					})
				}
			}
		}
	}
	return out
}

// runUnits executes the units on a pool of the given size and concatenates
// their outputs in unit order.
func runUnits(units []func() []Violation, workers int) []Violation {
	var out []Violation
	for _, r := range pool.Run(units, workers) {
		out = append(out, r...)
	}
	return out
}

// sortViolations puts findings into the engine's canonical order. The key is
// a total order over everything a violation carries, so the result is
// independent of unit boundaries and worker scheduling.
func sortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		switch {
		case a.Layer != b.Layer:
			return a.Layer < b.Layer
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.NetA != b.NetA:
			return a.NetA < b.NetA
		case a.NetB != b.NetB:
			return a.NetB < b.NetB
		case a.Where.X != b.Where.X:
			return a.Where.X < b.Where.X
		case a.Where.Y != b.Where.Y:
			return a.Where.Y < b.Where.Y
		case a.Value != b.Value:
			return a.Value < b.Value
		default:
			return a.Limit < b.Limit
		}
	})
}

// checkDRC is the shared engine behind CheckDRC, CheckDRCWithDesign and
// CheckDRCParallel. d is only consulted for keep-out regions and may be nil.
func checkDRC(routes []*Route, rules design.Rules, layers int,
	sameNet func(a, b int) bool, clearFn func(a, b int) float64,
	d *design.Design, workers int, rec obs.Recorder) []Violation {
	rec = obs.Or(rec)

	// Phase 1: per-layer grids, built concurrently across layers.
	span := obs.StartSpan(rec, "drc.grid")
	prepped := make([]*drcLayer, layers)
	prepUnits := make([]func() []Violation, layers)
	for layer := 0; layer < layers; layer++ {
		layer := layer
		prepUnits[layer] = func() []Violation {
			prepped[layer] = buildLayer(routes, layer, rules, sameNet, clearFn)
			return nil
		}
	}
	runUnits(prepUnits, workers)
	span.End()

	// Phase 2: spacing stripes, wire rules, and keep-outs, in a fixed unit
	// order so the concatenation is deterministic.
	span = obs.StartSpan(rec, "drc.scan")
	var units []func() []Violation
	for _, l := range prepped {
		l := l
		for lo := 0; lo < len(l.segs); lo += drcSpacingChunk {
			lo, hi := lo, minInt(lo+drcSpacingChunk, len(l.segs))
			units = append(units, func() []Violation {
				return l.spacingUnit(lo, hi, sameNet, clearFn)
			})
		}
		for lo := 0; lo < len(l.lines); lo += drcLineChunk {
			lo, hi := lo, minInt(lo+drcLineChunk, len(l.lines))
			units = append(units, func() []Violation {
				return l.wireRuleUnit(lo, hi, rules)
			})
		}
	}
	if d != nil && len(d.Obstacles) > 0 {
		for lo := 0; lo < len(routes); lo += drcLineChunk {
			lo, hi := lo, minInt(lo+drcLineChunk, len(routes))
			units = append(units, func() []Violation {
				return obstacleUnit(routes, lo, hi, d)
			})
		}
	}
	out := runUnits(units, workers)
	span.End()

	sortViolations(out)
	if rec.Enabled() {
		// Counters are emitted in kind order: accumulating into a map and
		// ranging over it would emit the JSONL trace lines in randomized
		// map order (caught by the mapiter analyzer).
		var byKind [ObstacleViolation + 1]int64
		for _, v := range out {
			byKind[v.Kind]++
		}
		for k, n := range byKind {
			if n > 0 {
				rec.Count("drc.violations."+ViolationKind(k).String(), n)
			}
		}
	}
	return out
}
