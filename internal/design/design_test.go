package design

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"rdlroute/internal/geom"
)

// tableI holds the exact statistics from Table I of the paper.
var tableI = []Stats{
	{Name: "dense1", Chips: 2, IOPads: 44, BumpPads: 324, Nets: 22, WireLayers: 2},
	{Name: "dense2", Chips: 3, IOPads: 92, BumpPads: 784, Nets: 46, WireLayers: 2},
	{Name: "dense3", Chips: 5, IOPads: 158, BumpPads: 308, Nets: 79, WireLayers: 3},
	{Name: "dense4", Chips: 6, IOPads: 222, BumpPads: 684, Nets: 111, WireLayers: 3},
	{Name: "dense5", Chips: 9, IOPads: 522, BumpPads: 1444, Nets: 261, WireLayers: 4},
}

func TestGenerateMatchesTableI(t *testing.T) {
	for _, want := range tableI {
		d, err := GenerateDense(want.Name)
		if err != nil {
			t.Fatalf("%s: %v", want.Name, err)
		}
		if got := d.Stats(); got != want {
			t.Errorf("%s stats = %+v, want %+v", want.Name, got, want)
		}
	}
}

func TestGenerateAllDense(t *testing.T) {
	ds, err := GenerateAllDense()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 5 {
		t.Fatalf("generated %d designs, want 5", len(ds))
	}
	for i, d := range ds {
		if d.Name != tableI[i].Name {
			t.Errorf("design %d = %s, want %s", i, d.Name, tableI[i].Name)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := GenerateDense("nope"); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GenerateDense("dense2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDense("dense2")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.IOPads) != len(b.IOPads) {
		t.Fatal("pad counts differ between runs")
	}
	for i := range a.IOPads {
		if a.IOPads[i] != b.IOPads[i] {
			t.Fatalf("pad %d differs: %+v vs %+v", i, a.IOPads[i], b.IOPads[i])
		}
	}
}

func TestNetPinsOnDistinctChips(t *testing.T) {
	d, err := GenerateDense("dense3")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range d.Nets {
		ca := d.IOPads[n.Pins[0]].Chip
		cb := d.IOPads[n.Pins[1]].Chip
		if ca == cb {
			t.Errorf("net %d connects chip %d to itself", n.ID, ca)
		}
	}
}

func TestPadsOnChipBoundary(t *testing.T) {
	d, err := GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.IOPads {
		co := d.Chips[p.Chip].Outline
		onX := geom.ApproxEq(p.Pos.X, co.Min.X) || geom.ApproxEq(p.Pos.X, co.Max.X)
		onY := geom.ApproxEq(p.Pos.Y, co.Min.Y) || geom.ApproxEq(p.Pos.Y, co.Max.Y)
		if !onX && !onY {
			t.Errorf("pad %d at %v not on chip %d boundary %+v", p.ID, p.Pos, p.Chip, co)
		}
	}
}

func TestPadSpacingRespectsPitch(t *testing.T) {
	// Pads on the same chip edge must be separated by at least the wire
	// pitch, otherwise the design is unroutable by construction.
	for _, name := range DenseNames() {
		d, err := GenerateDense(name)
		if err != nil {
			t.Fatal(err)
		}
		pitch := d.Rules.Pitch()
		for i, a := range d.IOPads {
			for _, b := range d.IOPads[i+1:] {
				if d := a.Pos.Dist(b.Pos); d < pitch {
					t.Fatalf("%s: pads %d and %d only %v apart (pitch %v)",
						name, a.ID, b.ID, d, pitch)
				}
			}
		}
	}
}

func TestRulesValidate(t *testing.T) {
	r := DefaultRules()
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
	if r.Pitch() != r.WireWidth+r.MinSpacing {
		t.Error("Pitch formula wrong")
	}
	bad := r
	bad.WireWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero wire width must fail validation")
	}
	bad = r
	bad.MinTurnDist = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative turn distance must fail validation")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Design {
		d, err := GenerateDense("dense1")
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	d := fresh()
	d.Nets[0].Pins[1] = d.Nets[0].Pins[0]
	if err := d.Validate(); err == nil {
		t.Error("self-loop net must fail")
	}

	d = fresh()
	d.Nets[0].Pins[0] = 10_000
	if err := d.Validate(); err == nil {
		t.Error("out-of-range pin must fail")
	}

	d = fresh()
	d.IOPads[0].Pos = geom.Pt(-1e6, 0)
	if err := d.Validate(); err == nil {
		t.Error("pad outside outline must fail")
	}

	d = fresh()
	d.IOPads[3].Net = 999
	if err := d.Validate(); err == nil {
		t.Error("net/pad disagreement must fail")
	}

	d = fresh()
	d.Chips[1].Outline = d.Chips[0].Outline
	if err := d.Validate(); err == nil {
		t.Error("overlapping chips must fail")
	}

	d = fresh()
	d.WireLayers = 0
	if err := d.Validate(); err == nil {
		t.Error("zero wire layers must fail")
	}
}

func TestHPWL(t *testing.T) {
	d, err := GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	total := d.TotalHPWL()
	if total <= 0 {
		t.Fatal("total HPWL must be positive")
	}
	var sum float64
	for _, n := range d.Nets {
		h := d.NetHPWL(n)
		if h <= 0 {
			t.Errorf("net %d HPWL = %v", n.ID, h)
		}
		// Each dense1 net crosses the 420 µm channel.
		if h < genChannel {
			t.Errorf("net %d HPWL %v below channel width", n.ID, h)
		}
		sum += h
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Error("TotalHPWL disagrees with per-net sum")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d, err := GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || len(got.Nets) != len(d.Nets) ||
		len(got.IOPads) != len(d.IOPads) || len(got.BumpPads) != len(d.BumpPads) {
		t.Error("round trip lost data")
	}
	if got.Rules != d.Rules {
		t.Error("round trip changed rules")
	}
	for i := range d.IOPads {
		if got.IOPads[i] != d.IOPads[i] {
			t.Fatalf("pad %d changed in round trip", i)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("malformed JSON must fail")
	}
	// Structurally valid JSON, semantically invalid design.
	if _, err := ReadJSON(bytes.NewBufferString(`{"Name":"x","WireLayers":0}`)); err == nil {
		t.Error("invalid design must fail validation")
	}
}

func TestSaveLoadFile(t *testing.T) {
	d, err := GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/d.json"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "dense1" {
		t.Errorf("loaded name = %s", got.Name)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file must fail")
	}
}

// TestMaxLayersValidation covers the per-net layer-constraint knob: the
// valid range is 0 (unconstrained) to WireLayers inclusive.
func TestMaxLayersValidation(t *testing.T) {
	fresh := func() *Design {
		d, err := GenerateDense("dense1") // 2 wire layers
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	d := fresh()
	d.Nets[0].MaxLayers = -1
	if err := d.Validate(); !errors.Is(err, ErrBadReference) {
		t.Errorf("negative MaxLayers: err = %v, want ErrBadReference", err)
	}

	d = fresh()
	d.Nets[0].MaxLayers = d.WireLayers + 1
	if err := d.Validate(); !errors.Is(err, ErrBadReference) {
		t.Errorf("MaxLayers > WireLayers: err = %v, want ErrBadReference", err)
	}

	d = fresh()
	d.Nets[0].MaxLayers = 1
	d.Nets[1].MaxLayers = d.WireLayers
	if err := d.Validate(); err != nil {
		t.Errorf("valid MaxLayers rejected: %v", err)
	}
}

func TestLayerAllowed(t *testing.T) {
	d, err := GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	d.Nets[0].MaxLayers = 1
	if !d.LayerAllowed(0, 0) {
		t.Error("net 0 must keep layer 0")
	}
	if d.LayerAllowed(0, 1) {
		t.Error("net 0 restricted to 1 layer must not use layer 1")
	}
	if !d.LayerAllowed(1, 1) {
		t.Error("unconstrained net must use any layer")
	}
	if !d.LayerAllowed(-1, 5) || !d.LayerAllowed(10_000, 5) {
		t.Error("out-of-range net IDs are unconstrained")
	}
}
