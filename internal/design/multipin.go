package design

import (
	"fmt"
	"math"

	"rdlroute/internal/geom"
)

// Multi-pin nets. The paper's notation m_i^j (the j-th pin of net i) admits
// nets with more than two pins even though its benchmark suite is strictly
// two-pin. This implementation supports them by decomposition: a k-pin net
// becomes k−1 two-pin subnets along its Euclidean minimum spanning tree,
// all sharing one connectivity *group*. Group members are electrically one
// net, so the spacing rule — which binds only between different nets — is
// waived between them throughout the router, and shared pins carry one via
// capacity unit per incident subnet.

// PadSpec describes one pin of a multi-pin net.
type PadSpec struct {
	Chip int
	Pos  geom.Point
}

// AddMultiPinNet creates the pads and spanning-tree subnets for a k-pin net
// and returns the created subnet IDs. The subnets share a connectivity
// group (see GroupOf); Validate accepts their shared pads.
func (d *Design) AddMultiPinNet(name string, pins []PadSpec) ([]int, error) {
	if len(pins) < 2 {
		return nil, fmt.Errorf("design %s: multi-pin net %q needs ≥2 pins", d.Name, name)
	}
	for i, p := range pins {
		if p.Chip < 0 || p.Chip >= len(d.Chips) {
			return nil, fmt.Errorf("design %s: net %q pin %d has invalid chip %d", d.Name, name, i, p.Chip)
		}
		if !d.Outline.Contains(p.Pos) {
			return nil, fmt.Errorf("design %s: net %q pin %d outside outline", d.Name, name, i)
		}
	}

	// Euclidean minimum spanning tree over the pins (Prim's algorithm; pin
	// counts are tiny).
	k := len(pins)
	inTree := make([]bool, k)
	dist := make([]float64, k)
	parent := make([]int, k)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[0] = 0
	type edge struct{ a, b int }
	var edges []edge
	for range pins {
		best := -1
		for i := 0; i < k; i++ {
			if !inTree[i] && (best == -1 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		if parent[best] != -1 {
			edges = append(edges, edge{parent[best], best})
		}
		for i := 0; i < k; i++ {
			if inTree[i] {
				continue
			}
			if dd := pins[best].Pos.Dist(pins[i].Pos); dd < dist[i] {
				dist[i] = dd
				parent[i] = best
			}
		}
	}

	// Create the pads once and the subnets over them.
	padID := make([]int, k)
	firstNet := len(d.Nets)
	for i, p := range pins {
		pad := Pad{ID: len(d.IOPads), Net: firstNet, Chip: p.Chip, Pos: p.Pos}
		d.IOPads = append(d.IOPads, pad)
		padID[i] = pad.ID
	}
	group := firstNet + 1 // stored +1 so the zero value means "standalone"
	var subnets []int
	for i, e := range edges {
		n := Net{
			ID:    len(d.Nets),
			Name:  fmt.Sprintf("%s.%d", name, i),
			Pins:  [2]int{padID[e.a], padID[e.b]},
			Group: group,
		}
		d.Nets = append(d.Nets, n)
		subnets = append(subnets, n.ID)
	}
	return subnets, nil
}

// GroupOf returns the connectivity group of a net. Subnets created by
// AddMultiPinNet share a group; every other net is its own group. The
// returned value is only meaningful through SameGroup comparisons.
func (d *Design) GroupOf(netID int) int {
	if netID < 0 || netID >= len(d.Nets) {
		// Invalid IDs get an out-of-band group so they never compare equal
		// to a real net's group (standalone groups start at -2; net 0's
		// standalone group would otherwise collide with this sentinel).
		return -1
	}
	if g := d.Nets[netID].Group; g > 0 {
		return g
	}
	return -netID - 2 // unique standalone group per net
}

// SameGroup reports whether two nets are electrically the same net.
func (d *Design) SameGroup(a, b int) bool {
	if a == b {
		return true
	}
	return d.GroupOf(a) == d.GroupOf(b)
}

// PadNetCount returns, for each I/O pad, how many nets reference it — the
// via capacity a pin must provide.
func (d *Design) PadNetCount() []int {
	counts := make([]int, len(d.IOPads))
	for _, n := range d.Nets {
		counts[n.Pins[0]]++
		counts[n.Pins[1]]++
	}
	return counts
}
