// Package design defines the RDL routing problem model: design rules, chips,
// I/O pads, bump pads, nets, and the package outline, together with a
// deterministic generator for the dense1–dense5 benchmark family whose
// statistics match Table I of the paper.
//
// The original benchmark suite (Cai et al., DAC'21) is not public, so the
// generator synthesizes designs with the same shape: several chips molded
// into one InFO package, dense I/O pads on facing chip edges, a uniform
// bump-pad grid on the bottom layer, and two-pin chip-to-chip nets.
package design

import (
	"errors"
	"fmt"
	"math"

	"rdlroute/internal/geom"
)

// Typed validation sentinels. Validate wraps every finding in one of these,
// so untrusted-input consumers (the serving layer, file loaders) can map
// failures to error classes with errors.Is without parsing messages.
var (
	// ErrNonFinite marks NaN or ±Inf in a coordinate, rule, or width.
	ErrNonFinite = errors.New("non-finite value")
	// ErrOutOfBounds marks geometry outside the package outline.
	ErrOutOfBounds = errors.New("out of bounds")
	// ErrBadReference marks an index that points at a nonexistent pad,
	// chip, layer, or net, or an ID that disagrees with its slice position.
	ErrBadReference = errors.New("bad reference")
	// ErrDuplicateNetName marks two nets sharing a non-empty name.
	ErrDuplicateNetName = errors.New("duplicate net name")
	// ErrBadRules marks physically meaningless design rules.
	ErrBadRules = errors.New("bad design rules")
)

// finite reports whether every value is a real number.
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func finiteRect(r geom.Rect) bool {
	return finite(r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
}

// Rules holds the manufacturing design rules of the paper's §II-B. All
// values are in µm.
type Rules struct {
	// WireWidth is w_w, the metal wire width.
	WireWidth float64
	// ViaWidth is w_v, the via width.
	ViaWidth float64
	// MinSpacing is w_s, the minimum spacing between any two vias or wire
	// segments belonging to different nets.
	MinSpacing float64
	// MinTurnDist is w_x, the minimum distance between two successive turns
	// of a wire, required for manufacturability.
	MinTurnDist float64
}

// DefaultRules returns design rules representative of a high-end InFO RDL
// process (2 µm line / 2 µm space, 5 µm vias).
func DefaultRules() Rules {
	return Rules{WireWidth: 2, ViaWidth: 5, MinSpacing: 2, MinTurnDist: 4}
}

// Pitch returns the wire pitch w_w + w_s used throughout the capacity
// equations of the paper.
func (r Rules) Pitch() float64 { return r.WireWidth + r.MinSpacing }

// Validate reports whether the rules are physically meaningful.
func (r Rules) Validate() error {
	if !finite(r.WireWidth, r.ViaWidth, r.MinSpacing, r.MinTurnDist) {
		return fmt.Errorf("design: %w in rules %+v", ErrNonFinite, r)
	}
	if r.WireWidth <= 0 || r.ViaWidth <= 0 || r.MinSpacing <= 0 || r.MinTurnDist < 0 {
		return fmt.Errorf("design: non-positive rule in %+v: %w", r, ErrBadRules)
	}
	return nil
}

// Chip is a die molded into the package.
type Chip struct {
	Name    string
	Outline geom.Rect
}

// Pad is an I/O pad (on a chip) or a bump pad (on the package bottom).
type Pad struct {
	// ID is the pad's index within its owning slice (IOPads or BumpPads).
	ID int
	// Net is the ID of the net this pad belongs to, or -1 when the pad
	// carries no routed signal (e.g. power/ground bumps acting only as
	// blockage).
	Net int
	// Chip is the owning chip index for I/O pads, or -1 for bump pads.
	Chip int
	// Pos is the pad center.
	Pos geom.Point
}

// Net is a two-pin chip-to-chip connection: the pre-assignment netlist of
// the paper gives each net its pads up front. Multi-pin nets are expressed
// as groups of two-pin subnets (see AddMultiPinNet).
type Net struct {
	ID   int
	Name string
	// Pins holds the two pad indices into Design.IOPads, in (source,
	// target) order. m_i^0 and m_i^1 in the paper's notation.
	Pins [2]int
	// Group links the subnets of one multi-pin net; zero means standalone.
	// Use Design.GroupOf / Design.SameGroup rather than reading this field.
	Group int `json:",omitempty"`
	// Width overrides the wire width for this net (µm); zero selects the
	// design rules' default WireWidth. Power and clock nets are typically
	// drawn wider than signal nets.
	Width float64 `json:",omitempty"`
	// MaxLayers restricts the net to the topmost MaxLayers wire layers
	// (layers 0..MaxLayers-1); zero means unconstrained. Signal-integrity
	// nets use it to avoid layer changes entirely (MaxLayers=1). Validate
	// rejects negative values and values above WireLayers; the routing
	// graph honors it via Design.LayerAllowed.
	MaxLayers int `json:",omitempty"`
}

// Design is a complete any-angle RDL routing problem instance.
type Design struct {
	Name    string
	Rules   Rules
	Outline geom.Rect
	Chips   []Chip
	// IOPads are the chip I/O pads; nets reference these by index.
	IOPads []Pad
	// BumpPads are the package-bottom bump pads. They are not routed by
	// the inter-chip nets but occupy routing resources in the bottom wire
	// layer.
	BumpPads []Pad
	Nets     []Net
	// WireLayers is |L_w|, the number of wire layers. Via layers sit
	// between adjacent wire layers, so there are WireLayers-1 of them.
	WireLayers int
	// Obstacles are routing keep-out regions; see AddObstacle.
	Obstacles []Obstacle
}

// Stats summarizes a design in Table I form.
type Stats struct {
	Name       string
	Chips      int
	IOPads     int
	BumpPads   int
	Nets       int
	WireLayers int
}

// Stats returns the Table I statistics of the design.
func (d *Design) Stats() Stats {
	return Stats{
		Name:       d.Name,
		Chips:      len(d.Chips),
		IOPads:     len(d.IOPads),
		BumpPads:   len(d.BumpPads),
		Nets:       len(d.Nets),
		WireLayers: d.WireLayers,
	}
}

// Validate checks structural consistency: rules are sane, every coordinate
// is finite, pads sit inside the outline, chips do not overlap, net names
// are unique, net pins reference existing pads of the right net, and every
// pad referenced by a net agrees on the net ID. It is the single gate for
// untrusted input — the serving layer accepts any design that passes it —
// so every finding wraps one of the typed sentinels above.
func (d *Design) Validate() error {
	if err := d.Rules.Validate(); err != nil {
		return err
	}
	if d.WireLayers < 1 {
		return fmt.Errorf("design %s: need at least 1 wire layer: %w", d.Name, ErrBadReference)
	}
	if !finiteRect(d.Outline) {
		return fmt.Errorf("design %s: %w in outline", d.Name, ErrNonFinite)
	}
	for i, c := range d.Chips {
		if !finiteRect(c.Outline) {
			return fmt.Errorf("design %s: %w in chip %d outline", d.Name, ErrNonFinite, i)
		}
		if !d.Outline.ContainsRect(c.Outline) {
			return fmt.Errorf("design %s: chip %d outside outline: %w", d.Name, i, ErrOutOfBounds)
		}
		for j := i + 1; j < len(d.Chips); j++ {
			if c.Outline.Intersects(d.Chips[j].Outline) {
				return fmt.Errorf("design %s: chips %d and %d overlap: %w", d.Name, i, j, ErrOutOfBounds)
			}
		}
	}
	for i, p := range d.IOPads {
		if p.ID != i {
			return fmt.Errorf("design %s: IO pad %d has ID %d: %w", d.Name, i, p.ID, ErrBadReference)
		}
		if !finite(p.Pos.X, p.Pos.Y) {
			return fmt.Errorf("design %s: %w in IO pad %d position", d.Name, ErrNonFinite, i)
		}
		if !d.Outline.Contains(p.Pos) {
			return fmt.Errorf("design %s: IO pad %d outside outline: %w", d.Name, i, ErrOutOfBounds)
		}
		if p.Chip < 0 || p.Chip >= len(d.Chips) {
			return fmt.Errorf("design %s: IO pad %d has invalid chip %d: %w", d.Name, i, p.Chip, ErrBadReference)
		}
	}
	for i, p := range d.BumpPads {
		if p.ID != i {
			return fmt.Errorf("design %s: bump pad %d has ID %d: %w", d.Name, i, p.ID, ErrBadReference)
		}
		if !finite(p.Pos.X, p.Pos.Y) {
			return fmt.Errorf("design %s: %w in bump pad %d position", d.Name, ErrNonFinite, i)
		}
		if !d.Outline.Contains(p.Pos) {
			return fmt.Errorf("design %s: bump pad %d outside outline: %w", d.Name, i, ErrOutOfBounds)
		}
	}
	for i, o := range d.Obstacles {
		if !finiteRect(o.Rect) {
			return fmt.Errorf("design %s: %w in obstacle %d", d.Name, ErrNonFinite, i)
		}
		if !d.Outline.ContainsRect(o.Rect) {
			return fmt.Errorf("design %s: obstacle %d outside outline: %w", d.Name, i, ErrOutOfBounds)
		}
		for _, l := range o.Layers {
			if l < 0 || l >= d.WireLayers {
				return fmt.Errorf("design %s: obstacle %d blocks invalid layer %d: %w", d.Name, i, l, ErrBadReference)
			}
		}
	}
	names := make(map[string]int, len(d.Nets))
	for i, n := range d.Nets {
		if n.ID != i {
			return fmt.Errorf("design %s: net %d has ID %d: %w", d.Name, i, n.ID, ErrBadReference)
		}
		if !finite(n.Width) {
			return fmt.Errorf("design %s: %w in net %d width", d.Name, ErrNonFinite, i)
		}
		if n.Width < 0 {
			return fmt.Errorf("design %s: net %d has negative width: %w", d.Name, i, ErrBadRules)
		}
		if n.Name != "" {
			if prev, ok := names[n.Name]; ok {
				return fmt.Errorf("design %s: nets %d and %d both named %q: %w",
					d.Name, prev, i, n.Name, ErrDuplicateNetName)
			}
			names[n.Name] = i
		}
		for _, pin := range n.Pins {
			if pin < 0 || pin >= len(d.IOPads) {
				return fmt.Errorf("design %s: net %d pin %d out of range: %w", d.Name, i, pin, ErrBadReference)
			}
			if owner := d.IOPads[pin].Net; owner != n.ID && !d.SameGroup(owner, n.ID) {
				return fmt.Errorf("design %s: net %d pin pad %d claims net %d: %w",
					d.Name, i, pin, owner, ErrBadReference)
			}
		}
		if n.Pins[0] == n.Pins[1] {
			return fmt.Errorf("design %s: net %d connects a pad to itself: %w", d.Name, i, ErrBadReference)
		}
		if n.MaxLayers < 0 || n.MaxLayers > d.WireLayers {
			return fmt.Errorf("design %s: net %d restricted to %d of %d wire layers: %w",
				d.Name, i, n.MaxLayers, d.WireLayers, ErrBadReference)
		}
	}
	return nil
}

// LayerAllowed reports whether a net may use a wire layer, honoring the
// net's MaxLayers constraint. Out-of-range net IDs are unconstrained.
func (d *Design) LayerAllowed(netID, layer int) bool {
	if netID < 0 || netID >= len(d.Nets) {
		return true
	}
	if m := d.Nets[netID].MaxLayers; m > 0 && layer >= m {
		return false
	}
	return true
}

// WidthOf returns the wire width of a net, falling back to the rules'
// default for unset or out-of-range IDs.
func (d *Design) WidthOf(netID int) float64 {
	if netID >= 0 && netID < len(d.Nets) && d.Nets[netID].Width > 0 {
		return d.Nets[netID].Width
	}
	return d.Rules.WireWidth
}

// Clearance returns the required centre-to-centre distance between wires of
// nets a and b: half of each width plus the minimum spacing. For default
// widths this equals the wire pitch w_w + w_s.
func (d *Design) Clearance(a, b int) float64 {
	return (d.WidthOf(a)+d.WidthOf(b))/2 + d.Rules.MinSpacing
}

// TrackUnits returns how many standard routing tracks a net occupies when
// crossing a tile edge: a net of width W needs (W+w_s) of span against the
// standard pitch w_w + w_s.
func (d *Design) TrackUnits(netID int) int {
	u := int(math.Ceil((d.WidthOf(netID) + d.Rules.MinSpacing) / d.Rules.Pitch()))
	if u < 1 {
		u = 1
	}
	return u
}

// PinPos returns the positions of net n's two pins.
func (d *Design) PinPos(n Net) (geom.Point, geom.Point) {
	return d.IOPads[n.Pins[0]].Pos, d.IOPads[n.Pins[1]].Pos
}

// NetHPWL returns the Euclidean pin-to-pin distance of a net, the lower
// bound on its routed wirelength.
func (d *Design) NetHPWL(n Net) float64 {
	a, b := d.PinPos(n)
	return a.Dist(b)
}

// TotalHPWL returns the sum of Euclidean pin-to-pin distances over all nets.
func (d *Design) TotalHPWL() float64 {
	var sum float64
	for _, n := range d.Nets {
		sum += d.NetHPWL(n)
	}
	return sum
}
