package design

import (
	"fmt"
	"math/rand"

	"rdlroute/internal/geom"
)

// RandomSpec controls GenerateRandom.
type RandomSpec struct {
	// Seed drives all placement decisions; equal seeds give equal designs.
	Seed int64
	// Chips is the number of dies (2–9 sensible). Zero selects 3.
	Chips int
	// NetsPerChannel is the net count between each adjacent chip pair.
	// Zero selects 12.
	NetsPerChannel int
	// WireLayers, zero selects 2.
	WireLayers int
}

// GenerateRandom builds a randomized but always-valid design: chips on a
// jittered grid, pads at random positions on facing edges, random pad
// pairing (so crossing patterns vary), and a bump grid. Intended for
// robustness and fuzz-style testing rather than benchmarking.
func GenerateRandom(spec RandomSpec) (*Design, error) {
	if spec.Chips == 0 {
		spec.Chips = 3
	}
	if spec.NetsPerChannel == 0 {
		spec.NetsPerChannel = 12
	}
	if spec.WireLayers == 0 {
		spec.WireLayers = 2
	}
	if spec.Chips < 2 {
		return nil, fmt.Errorf("design: random design needs ≥2 chips, got %d", spec.Chips)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	d := &Design{
		Name:       fmt.Sprintf("random-%d", spec.Seed),
		Rules:      DefaultRules(),
		WireLayers: spec.WireLayers,
	}

	// Chips in a row with jittered sizes.
	const (
		baseW   = 900.0
		baseH   = 900.0
		channel = 380.0
		margin  = 380.0
	)
	x := margin
	maxH := 0.0
	for i := 0; i < spec.Chips; i++ {
		w := baseW * (0.8 + 0.4*rng.Float64())
		h := baseH * (0.8 + 0.4*rng.Float64())
		if h > maxH {
			maxH = h
		}
		d.Chips = append(d.Chips, Chip{
			Name:    fmt.Sprintf("c%d", i),
			Outline: geom.R(x, margin, x+w, margin+h),
		})
		x += w + channel
	}
	d.Outline = geom.R(0, 0, x-channel+margin, 2*margin+maxH)

	// Nets between adjacent chips with random pairing.
	netID := 0
	for pair := 0; pair+1 < spec.Chips; pair++ {
		a, b := &d.Chips[pair], &d.Chips[pair+1]
		n := spec.NetsPerChannel
		// Random sorted pad offsets on each facing edge, min pitch apart.
		ya := randomOffsets(rng, n, a.Outline.Min.Y, a.Outline.Max.Y, 2*d.Rules.Pitch())
		yb := randomOffsets(rng, n, b.Outline.Min.Y, b.Outline.Max.Y, 2*d.Rules.Pitch())
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			pa := Pad{ID: len(d.IOPads), Net: netID, Chip: pair,
				Pos: geom.Pt(a.Outline.Max.X, ya[i])}
			d.IOPads = append(d.IOPads, pa)
			pb := Pad{ID: len(d.IOPads), Net: netID, Chip: pair + 1,
				Pos: geom.Pt(b.Outline.Min.X, yb[perm[i]])}
			d.IOPads = append(d.IOPads, pb)
			d.Nets = append(d.Nets, Net{
				ID: netID, Name: fmt.Sprintf("n%d", netID),
				Pins: [2]int{pa.ID, pb.ID},
			})
			netID++
		}
	}

	// Sparse bump grid.
	cols := 8 + rng.Intn(8)
	rows := 6 + rng.Intn(6)
	bm := margin / 2
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pos := geom.Pt(
				bm+float64(c)/float64(cols-1)*(d.Outline.W()-2*bm),
				bm+float64(r)/float64(rows-1)*(d.Outline.H()-2*bm),
			)
			d.BumpPads = append(d.BumpPads, Pad{ID: len(d.BumpPads), Net: -1, Chip: -1, Pos: pos})
		}
	}

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("design: random design invalid: %w", err)
	}
	return d, nil
}

// randomOffsets returns n sorted positions in (lo, hi) with at least minSep
// between consecutive values.
func randomOffsets(rng *rand.Rand, n int, lo, hi, minSep float64) []float64 {
	span := hi - lo - float64(n+1)*minSep
	if span < 0 {
		span = 0
	}
	// Stick-breaking: n+1 random gaps.
	gaps := make([]float64, n+1)
	var sum float64
	for i := range gaps {
		gaps[i] = rng.Float64()
		sum += gaps[i]
	}
	out := make([]float64, n)
	pos := lo
	for i := 0; i < n; i++ {
		pos += minSep + gaps[i]/sum*span
		out[i] = pos
	}
	return out
}
