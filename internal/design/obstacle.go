package design

import (
	"fmt"

	"rdlroute/internal/geom"
)

// Obstacle is a routing keep-out region: no wires or vias of the listed
// wire layers may enter the rectangle. Packages use keep-outs for die
// cavities, stress-sensitive zones around the molding edge, inductor
// shields, and reserved power-plane cuts.
type Obstacle struct {
	Name string
	Rect geom.Rect
	// Layers lists the blocked wire layer indices; empty blocks every
	// layer.
	Layers []int
}

// BlocksLayer reports whether the obstacle applies to the given wire layer.
func (o Obstacle) BlocksLayer(layer int) bool {
	if len(o.Layers) == 0 {
		return true
	}
	for _, l := range o.Layers {
		if l == layer {
			return true
		}
	}
	return false
}

// AddObstacle appends a keep-out region to the design after validating it:
// the rectangle must lie inside the outline, must not cover any I/O pad of
// a blocked layer's terminals, and the layer list must reference existing
// wire layers.
func (d *Design) AddObstacle(o Obstacle) error {
	if !d.Outline.ContainsRect(o.Rect) {
		return fmt.Errorf("design %s: obstacle %q outside outline", d.Name, o.Name)
	}
	for _, l := range o.Layers {
		if l < 0 || l >= d.WireLayers {
			return fmt.Errorf("design %s: obstacle %q blocks invalid layer %d", d.Name, o.Name, l)
		}
	}
	if o.BlocksLayer(0) {
		for _, p := range d.IOPads {
			if o.Rect.Contains(p.Pos) {
				return fmt.Errorf("design %s: obstacle %q covers I/O pad %d", d.Name, o.Name, p.ID)
			}
		}
	}
	if o.BlocksLayer(d.WireLayers - 1) {
		for _, p := range d.BumpPads {
			if o.Rect.Contains(p.Pos) {
				return fmt.Errorf("design %s: obstacle %q covers bump pad %d", d.Name, o.Name, p.ID)
			}
		}
	}
	d.Obstacles = append(d.Obstacles, o)
	return nil
}

// ObstaclesOnLayer returns the obstacles blocking the given wire layer.
func (d *Design) ObstaclesOnLayer(layer int) []Obstacle {
	var out []Obstacle
	for _, o := range d.Obstacles {
		if o.BlocksLayer(layer) {
			out = append(out, o)
		}
	}
	return out
}

// segmentHitsRect reports whether segment s enters rectangle r (boundary
// inclusive).
func segmentHitsRect(s geom.Segment, r geom.Rect) bool {
	if r.Contains(s.A) || r.Contains(s.B) {
		return true
	}
	corners := [4]geom.Point{
		r.Min, geom.Pt(r.Max.X, r.Min.Y), r.Max, geom.Pt(r.Min.X, r.Max.Y),
	}
	for i := 0; i < 4; i++ {
		if s.Intersects(geom.Seg(corners[i], corners[(i+1)%4])) {
			return true
		}
	}
	return false
}

// SegmentBlocked reports whether a wire segment on the given layer enters
// any obstacle (expanded by clearance).
func (d *Design) SegmentBlocked(s geom.Segment, layer int, clearance float64) bool {
	for _, o := range d.Obstacles {
		if !o.BlocksLayer(layer) {
			continue
		}
		if segmentHitsRect(s, o.Rect.Expand(clearance)) {
			return true
		}
	}
	return false
}

// PointBlocked reports whether a point on the given layer lies in any
// obstacle (expanded by clearance).
func (d *Design) PointBlocked(p geom.Point, layer int, clearance float64) bool {
	for _, o := range d.Obstacles {
		if !o.BlocksLayer(layer) {
			continue
		}
		if o.Rect.Expand(clearance).Contains(p) {
			return true
		}
	}
	return false
}
