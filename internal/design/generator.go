package design

import (
	"fmt"

	"rdlroute/internal/geom"
)

// caseSpec describes one member of the dense benchmark family. The counts
// reproduce Table I of the paper exactly.
type caseSpec struct {
	name       string
	chipCols   int
	chipRows   int
	chipMask   []bool // which grid slots hold a chip; nil = all
	nets       int
	bumpCols   int
	bumpRows   int
	wireLayers int
}

var denseSpecs = []caseSpec{
	{name: "dense1", chipCols: 2, chipRows: 1, nets: 22, bumpCols: 18, bumpRows: 18, wireLayers: 2},
	{name: "dense2", chipCols: 3, chipRows: 1, nets: 46, bumpCols: 28, bumpRows: 28, wireLayers: 2},
	{name: "dense3", chipCols: 3, chipRows: 2, chipMask: []bool{true, true, true, true, true, false},
		nets: 79, bumpCols: 22, bumpRows: 14, wireLayers: 3},
	{name: "dense4", chipCols: 3, chipRows: 2, nets: 111, bumpCols: 36, bumpRows: 19, wireLayers: 3},
	{name: "dense5", chipCols: 3, chipRows: 3, nets: 261, bumpCols: 38, bumpRows: 38, wireLayers: 4},
}

// DenseNames lists the generated benchmark names in Table I order.
func DenseNames() []string {
	names := make([]string, len(denseSpecs))
	for i, s := range denseSpecs {
		names[i] = s.name
	}
	return names
}

// Physical layout constants of the generated packages (µm).
const (
	genChipW   = 1200.0
	genChipH   = 1200.0
	genChannel = 420.0 // chip-to-chip routing channel width
	genMargin  = 420.0 // outline margin around the chip array
)

// GenerateDense builds the named benchmark (dense1 … dense5). The result is
// deterministic: the same name always yields the identical design.
func GenerateDense(name string) (*Design, error) {
	for _, s := range denseSpecs {
		if s.name == name {
			return generate(s)
		}
	}
	return nil, fmt.Errorf("design: unknown benchmark %q (have %v)", name, DenseNames())
}

// GenerateAllDense builds the full dense1–dense5 family in Table I order.
func GenerateAllDense() ([]*Design, error) {
	out := make([]*Design, 0, len(denseSpecs))
	for _, s := range denseSpecs {
		d, err := generate(s)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// side identifies a chip edge.
type side int

const (
	sideLeft side = iota
	sideRight
	sideTop
	sideBottom
)

type chipPair struct {
	a, b         int
	sideA, sideB side
}

func generate(s caseSpec) (*Design, error) {
	d := &Design{
		Name:       s.name,
		Rules:      DefaultRules(),
		WireLayers: s.wireLayers,
	}

	// Chip array.
	outW := 2*genMargin + float64(s.chipCols)*genChipW + float64(s.chipCols-1)*genChannel
	outH := 2*genMargin + float64(s.chipRows)*genChipH + float64(s.chipRows-1)*genChannel
	d.Outline = geom.R(0, 0, outW, outH)

	slot := make([]int, s.chipCols*s.chipRows) // grid slot -> chip index or -1
	for i := range slot {
		slot[i] = -1
	}
	for r := 0; r < s.chipRows; r++ {
		for c := 0; c < s.chipCols; c++ {
			si := r*s.chipCols + c
			if s.chipMask != nil && !s.chipMask[si] {
				continue
			}
			x0 := genMargin + float64(c)*(genChipW+genChannel)
			y0 := genMargin + float64(r)*(genChipH+genChannel)
			slot[si] = len(d.Chips)
			d.Chips = append(d.Chips, Chip{
				Name:    fmt.Sprintf("%s_chip%d", s.name, len(d.Chips)),
				Outline: geom.R(x0, y0, x0+genChipW, y0+genChipH),
			})
		}
	}

	// Adjacent chip pairs (horizontal then vertical, row-major) carry the
	// dense channel traffic; far pairs (grid distance ≥ 2) carry long nets
	// that stress multi-layer routing.
	var pairs, farPairs []chipPair
	gridPos := make(map[int][2]int) // chip index -> (row, col)
	for r := 0; r < s.chipRows; r++ {
		for c := 0; c+1 < s.chipCols; c++ {
			a, b := slot[r*s.chipCols+c], slot[r*s.chipCols+c+1]
			if a != -1 && b != -1 {
				pairs = append(pairs, chipPair{a: a, b: b, sideA: sideRight, sideB: sideLeft})
			}
		}
	}
	for r := 0; r+1 < s.chipRows; r++ {
		for c := 0; c < s.chipCols; c++ {
			a, b := slot[r*s.chipCols+c], slot[(r+1)*s.chipCols+c]
			if a != -1 && b != -1 {
				pairs = append(pairs, chipPair{a: a, b: b, sideA: sideBottom, sideB: sideTop})
			}
		}
	}
	for r := 0; r < s.chipRows; r++ {
		for c := 0; c < s.chipCols; c++ {
			if ci := slot[r*s.chipCols+c]; ci != -1 {
				gridPos[ci] = [2]int{r, c}
			}
		}
	}
	for a := 0; a < len(d.Chips); a++ {
		for b := a + 1; b < len(d.Chips); b++ {
			pa, pb := gridPos[a], gridPos[b]
			dr, dc := pb[0]-pa[0], pb[1]-pa[1]
			if abs(dr)+abs(dc) < 2 {
				continue
			}
			fp := chipPair{a: a, b: b}
			if abs(dc) >= abs(dr) {
				fp.sideA, fp.sideB = sideRight, sideLeft
				if dc < 0 {
					fp.sideA, fp.sideB = sideLeft, sideRight
				}
			} else {
				fp.sideA, fp.sideB = sideBottom, sideTop
				if dr < 0 {
					fp.sideA, fp.sideB = sideTop, sideBottom
				}
			}
			farPairs = append(farPairs, fp)
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("design: %s has no adjacent chip pairs", s.name)
	}

	// Assign nets to pairs: every fourth net goes to a far pair when one
	// exists, the rest spread round-robin over the adjacent pairs. Nets are
	// then grouped per pair so each pair owns a contiguous block of pad
	// slots on its two edges.
	pairNets := make([][]int, len(pairs))
	farNets := make([][]int, len(farPairs))
	for i := 0; i < s.nets; i++ {
		if len(farPairs) > 0 && i%4 == 3 {
			fi := (i / 4) % len(farPairs)
			farNets[fi] = append(farNets[fi], i)
		} else {
			pi := i % len(pairs)
			pairNets[pi] = append(pairNets[pi], i)
		}
	}

	// Count pads per chip edge so positions can spread evenly, block by
	// block.
	edgeCount := make(map[[2]int]int) // (chip, side) -> pad count
	countPair := func(pr chipPair, n int) {
		edgeCount[[2]int{pr.a, int(pr.sideA)}] += n
		edgeCount[[2]int{pr.b, int(pr.sideB)}] += n
	}
	for pi, ns := range pairNets {
		countPair(pairs[pi], len(ns))
	}
	for fi, ns := range farNets {
		countPair(farPairs[fi], len(ns))
	}

	edgeSeen := make(map[[2]int]int)
	padPos := func(chip int, sd side, k, total int) geom.Point {
		co := d.Chips[chip].Outline
		frac := float64(k+1) / float64(total+1)
		switch sd {
		case sideLeft:
			return geom.Pt(co.Min.X, co.Min.Y+frac*co.H())
		case sideRight:
			return geom.Pt(co.Max.X, co.Min.Y+frac*co.H())
		case sideTop:
			return geom.Pt(co.Min.X+frac*co.W(), co.Min.Y)
		default: // sideBottom
			return geom.Pt(co.Min.X+frac*co.W(), co.Max.Y)
		}
	}
	addPad := func(chip int, sd side, slotIdx, net int) int {
		key := [2]int{chip, int(sd)}
		pos := padPos(chip, sd, slotIdx, edgeCount[key])
		p := Pad{ID: len(d.IOPads), Net: net, Chip: chip, Pos: pos}
		d.IOPads = append(d.IOPads, p)
		return p.ID
	}
	netPins := make([][2]int, s.nets)
	// Adjacent pairs: the B-side pairing is rotated by a third of the block,
	// so most nets travel diagonally across the channel and the wrapped ones
	// must cross the rest — forcing layer changes and exercising the
	// crossing-aware search (the congested regime of the paper's Fig. 14).
	emitBlock := func(pr chipPair, ns []int, shift int) {
		keyA := [2]int{pr.a, int(pr.sideA)}
		keyB := [2]int{pr.b, int(pr.sideB)}
		baseA, baseB := edgeSeen[keyA], edgeSeen[keyB]
		n := len(ns)
		for j, net := range ns {
			pa := addPad(pr.a, pr.sideA, baseA+j, net)
			pb := addPad(pr.b, pr.sideB, baseB+(j+shift)%n, net)
			netPins[net] = [2]int{pa, pb}
		}
		edgeSeen[keyA] += n
		edgeSeen[keyB] += n
	}
	for pi, ns := range pairNets {
		if len(ns) == 0 {
			continue
		}
		emitBlock(pairs[pi], ns, len(ns)/2)
	}
	for fi, ns := range farNets {
		if len(ns) == 0 {
			continue
		}
		emitBlock(farPairs[fi], ns, 0)
	}
	for i := 0; i < s.nets; i++ {
		d.Nets = append(d.Nets, Net{
			ID:   i,
			Name: fmt.Sprintf("n%d", i),
			Pins: netPins[i],
		})
	}

	// Bump grid across the whole package bottom.
	bm := genMargin / 2
	for r := 0; r < s.bumpRows; r++ {
		for c := 0; c < s.bumpCols; c++ {
			fx := 0.5
			if s.bumpCols > 1 {
				fx = float64(c) / float64(s.bumpCols-1)
			}
			fy := 0.5
			if s.bumpRows > 1 {
				fy = float64(r) / float64(s.bumpRows-1)
			}
			pos := geom.Pt(bm+fx*(outW-2*bm), bm+fy*(outH-2*bm))
			d.BumpPads = append(d.BumpPads, Pad{
				ID: len(d.BumpPads), Net: -1, Chip: -1, Pos: pos,
			})
		}
	}

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("design: generated %s is invalid: %w", s.name, err)
	}
	return d, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
