package design

import (
	"errors"
	"math"
	"strings"
	"testing"

	"rdlroute/internal/geom"
)

// validDesign is the smallest design that passes Validate: two chips, one
// net between them. Tests mutate copies of it into each malformed shape the
// serving layer must reject.
func validDesign() *Design {
	return &Design{
		Name:       "t",
		Rules:      DefaultRules(),
		WireLayers: 2,
		Outline:    geom.R(0, 0, 1000, 1000),
		Chips: []Chip{
			{Name: "c0", Outline: geom.R(100, 100, 300, 300)},
			{Name: "c1", Outline: geom.R(600, 100, 800, 300)},
		},
		IOPads: []Pad{
			{ID: 0, Net: 0, Chip: 0, Pos: geom.Pt(300, 200)},
			{ID: 1, Net: 0, Chip: 1, Pos: geom.Pt(600, 200)},
		},
		Nets: []Net{{ID: 0, Name: "n0", Pins: [2]int{0, 1}}},
	}
}

func TestValidDesignPasses(t *testing.T) {
	if err := validDesign().Validate(); err != nil {
		t.Fatalf("base design invalid: %v", err)
	}
}

func TestValidateMalformed(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name   string
		mutate func(*Design)
		want   error
	}{
		{"nan wire width", func(d *Design) { d.Rules.WireWidth = nan }, ErrNonFinite},
		{"inf via width", func(d *Design) { d.Rules.ViaWidth = inf }, ErrNonFinite},
		{"zero spacing", func(d *Design) { d.Rules.MinSpacing = 0 }, ErrBadRules},
		{"negative wire width", func(d *Design) { d.Rules.WireWidth = -1 }, ErrBadRules},
		{"no wire layers", func(d *Design) { d.WireLayers = 0 }, ErrBadReference},
		{"nan outline", func(d *Design) { d.Outline.Max.X = nan }, ErrNonFinite},
		{"nan chip outline", func(d *Design) { d.Chips[0].Outline.Min.Y = nan }, ErrNonFinite},
		{"chip outside outline", func(d *Design) { d.Chips[0].Outline = geom.R(-50, 100, 300, 300) }, ErrOutOfBounds},
		{"overlapping chips", func(d *Design) { d.Chips[1].Outline = geom.R(200, 100, 400, 300) }, ErrOutOfBounds},
		{"io pad bad id", func(d *Design) { d.IOPads[1].ID = 7 }, ErrBadReference},
		{"nan io pad pos", func(d *Design) { d.IOPads[0].Pos.X = nan }, ErrNonFinite},
		{"inf io pad pos", func(d *Design) { d.IOPads[0].Pos.Y = inf }, ErrNonFinite},
		{"io pad outside outline", func(d *Design) { d.IOPads[0].Pos = geom.Pt(-1, 200) }, ErrOutOfBounds},
		{"io pad bad chip", func(d *Design) { d.IOPads[0].Chip = 9 }, ErrBadReference},
		{"bump pad bad id", func(d *Design) {
			d.BumpPads = []Pad{{ID: 3, Net: -1, Chip: -1, Pos: geom.Pt(500, 500)}}
		}, ErrBadReference},
		{"nan bump pad pos", func(d *Design) {
			d.BumpPads = []Pad{{ID: 0, Net: -1, Chip: -1, Pos: geom.Pt(nan, 500)}}
		}, ErrNonFinite},
		{"bump pad outside outline", func(d *Design) {
			d.BumpPads = []Pad{{ID: 0, Net: -1, Chip: -1, Pos: geom.Pt(500, 2000)}}
		}, ErrOutOfBounds},
		{"nan obstacle", func(d *Design) {
			d.Obstacles = []Obstacle{{Rect: geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(nan, 10)}}}
		}, ErrNonFinite},
		{"obstacle outside outline", func(d *Design) {
			d.Obstacles = []Obstacle{{Rect: geom.R(900, 900, 1100, 1100)}}
		}, ErrOutOfBounds},
		{"obstacle bad layer", func(d *Design) {
			d.Obstacles = []Obstacle{{Rect: geom.R(400, 400, 500, 500), Layers: []int{5}}}
		}, ErrBadReference},
		{"net bad id", func(d *Design) { d.Nets[0].ID = 4 }, ErrBadReference},
		{"nan net width", func(d *Design) { d.Nets[0].Width = nan }, ErrNonFinite},
		{"negative net width", func(d *Design) { d.Nets[0].Width = -2 }, ErrBadRules},
		{"duplicate net name", func(d *Design) {
			d.IOPads = append(d.IOPads,
				Pad{ID: 2, Net: 1, Chip: 0, Pos: geom.Pt(300, 250)},
				Pad{ID: 3, Net: 1, Chip: 1, Pos: geom.Pt(600, 250)})
			d.Nets = append(d.Nets, Net{ID: 1, Name: "n0", Pins: [2]int{2, 3}})
		}, ErrDuplicateNetName},
		{"net pin out of range", func(d *Design) { d.Nets[0].Pins[1] = 99 }, ErrBadReference},
		{"net pin negative", func(d *Design) { d.Nets[0].Pins[0] = -1 }, ErrBadReference},
		{"net pin wrong owner", func(d *Design) { d.IOPads[1].Net = 5 }, ErrBadReference},
		{"net self loop", func(d *Design) { d.Nets[0].Pins = [2]int{0, 0} }, ErrBadReference},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := validDesign()
			tc.mutate(d)
			err := d.Validate()
			if err == nil {
				t.Fatal("Validate accepted malformed design")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

// TestReadJSONMalformed covers the decode path service input takes: broken
// JSON, JSON that is well-formed but invalid as a design, and the
// non-finite literals encoding/json itself refuses.
func TestReadJSONMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  error // nil means "any error"
	}{
		{"truncated", `{"Name": "x", "Rules"`, nil},
		{"not an object", `[1, 2, 3]`, nil},
		{"nan literal", `{"Name": "x", "Outline": {"Min": {"X": NaN, "Y": 0}}}`, nil},
		{"empty but well-formed", `{}`, ErrBadRules},
		{"bad rules", `{"Name": "x", "Rules": {"WireWidth": -1, "ViaWidth": 5, "MinSpacing": 2, "MinTurnDist": 4}}`, ErrBadRules},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSON(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("ReadJSON accepted malformed input")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("ReadJSON() = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

func TestCanonicalJSONStable(t *testing.T) {
	a, err := validDesign().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := validDesign().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("canonical encodings of equal designs differ")
	}
	d := validDesign()
	d.Nets[0].Width = 3
	c, err := d.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(c) {
		t.Error("canonical encodings of different designs collide")
	}
}
