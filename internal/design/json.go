package design

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the design to w as indented JSON.
func (d *Design) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("design: encode %s: %w", d.Name, err)
	}
	return nil
}

// ReadJSON parses a design from r and validates it.
func ReadJSON(r io.Reader) (*Design, error) {
	var d Design
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("design: decode: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// CanonicalJSON returns a byte-stable compact JSON encoding of the design:
// field order is fixed by the struct definitions, no whitespace varies, and
// equal designs always produce equal bytes. This is the design half of a
// result-cache key (see internal/serve). Encoding fails only on non-finite
// coordinates, which Validate rejects up front.
func (d *Design) CanonicalJSON() ([]byte, error) {
	b, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("design: canonical encode %s: %w", d.Name, err)
	}
	return b, nil
}

// SaveFile writes the design as JSON to the named file.
func (d *Design) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads and validates a design JSON file.
func LoadFile(path string) (*Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
