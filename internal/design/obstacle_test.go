package design

import (
	"testing"

	"rdlroute/internal/geom"
)

func TestObstacleBlocksLayer(t *testing.T) {
	all := Obstacle{Rect: geom.R(0, 0, 10, 10)}
	for l := 0; l < 4; l++ {
		if !all.BlocksLayer(l) {
			t.Errorf("empty layer list must block layer %d", l)
		}
	}
	some := Obstacle{Rect: geom.R(0, 0, 10, 10), Layers: []int{1, 3}}
	if some.BlocksLayer(0) || !some.BlocksLayer(1) || some.BlocksLayer(2) || !some.BlocksLayer(3) {
		t.Error("layer filter wrong")
	}
}

func TestAddObstacleValidation(t *testing.T) {
	d, err := GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	// Outside the outline.
	if err := d.AddObstacle(Obstacle{Name: "o", Rect: geom.R(-10, 0, 5, 5)}); err == nil {
		t.Error("outside-outline obstacle accepted")
	}
	// Invalid layer.
	if err := d.AddObstacle(Obstacle{Name: "o", Rect: geom.R(100, 100, 200, 200), Layers: []int{9}}); err == nil {
		t.Error("invalid layer accepted")
	}
	// Covering an I/O pad on a blocked layer.
	pad := d.IOPads[0].Pos
	if err := d.AddObstacle(Obstacle{Name: "o", Rect: geom.R(pad.X-5, pad.Y-5, pad.X+5, pad.Y+5)}); err == nil {
		t.Error("pad-covering obstacle accepted")
	}
	// In dense1 (2 layers) a layer-1 obstacle near the pad column would
	// cover bump pads, which the validation correctly rejects; a middle
	// layer of dense3 carries no pads at all, so the same region is fine.
	d3, err := GenerateDense("dense3")
	if err != nil {
		t.Fatal(err)
	}
	pad3 := d3.IOPads[0].Pos
	if err := d3.AddObstacle(Obstacle{Name: "o",
		Rect: geom.R(pad3.X-5, pad3.Y-5, pad3.X+5, pad3.Y+5), Layers: []int{1}}); err != nil {
		t.Errorf("middle-layer obstacle over a pad rejected: %v", err)
	}
	// Valid obstacle in open space (between bump-grid columns).
	if err := d.AddObstacle(Obstacle{Name: "keepout", Rect: geom.R(285, 285, 325, 325)}); err != nil {
		t.Errorf("valid obstacle rejected: %v", err)
	}
	if len(d.Obstacles) != 1 {
		t.Errorf("obstacle count = %d", len(d.Obstacles))
	}
	if err := d.Validate(); err != nil {
		t.Errorf("design with obstacles invalid: %v", err)
	}
}

func TestObstaclesOnLayer(t *testing.T) {
	d, err := GenerateDense("dense3") // 3 layers
	if err != nil {
		t.Fatal(err)
	}
	must := func(o Obstacle) {
		t.Helper()
		if err := d.AddObstacle(o); err != nil {
			t.Fatal(err)
		}
	}
	must(Obstacle{Name: "all", Rect: geom.R(100, 100, 200, 200)})
	must(Obstacle{Name: "l1", Rect: geom.R(300, 100, 400, 200), Layers: []int{1}})
	if got := len(d.ObstaclesOnLayer(0)); got != 1 {
		t.Errorf("layer 0 obstacles = %d", got)
	}
	if got := len(d.ObstaclesOnLayer(1)); got != 2 {
		t.Errorf("layer 1 obstacles = %d", got)
	}
}

func TestSegmentAndPointBlocked(t *testing.T) {
	d, err := GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddObstacle(Obstacle{Name: "o", Rect: geom.R(100, 100, 200, 200)}); err != nil {
		t.Fatal(err)
	}
	// Segment through the middle.
	if !d.SegmentBlocked(geom.Seg(geom.Pt(50, 150), geom.Pt(250, 150)), 0, 0) {
		t.Error("crossing segment not blocked")
	}
	// Segment fully inside.
	if !d.SegmentBlocked(geom.Seg(geom.Pt(120, 120), geom.Pt(180, 180)), 0, 0) {
		t.Error("interior segment not blocked")
	}
	// Segment passing beside; clearance widens the region.
	s := geom.Seg(geom.Pt(50, 210), geom.Pt(250, 210))
	if d.SegmentBlocked(s, 0, 0) {
		t.Error("clear segment blocked")
	}
	if !d.SegmentBlocked(s, 0, 15) {
		t.Error("clearance expansion not applied")
	}
	// Point checks.
	if !d.PointBlocked(geom.Pt(150, 150), 0, 0) {
		t.Error("interior point not blocked")
	}
	if d.PointBlocked(geom.Pt(250, 250), 0, 0) {
		t.Error("outside point blocked")
	}
	// Layer filter respected.
	d.Obstacles[0].Layers = []int{1}
	if d.PointBlocked(geom.Pt(150, 150), 0, 0) {
		t.Error("layer-1 obstacle blocked layer 0")
	}
}

func TestSegmentHitsRectEdgeCases(t *testing.T) {
	r := geom.R(0, 0, 10, 10)
	// Diagonal crossing corner-to-corner region without endpoints inside.
	if !segmentHitsRect(geom.Seg(geom.Pt(-5, 5), geom.Pt(15, 5)), r) {
		t.Error("through-segment missed")
	}
	// Touching one corner.
	if !segmentHitsRect(geom.Seg(geom.Pt(10, 10), geom.Pt(20, 20)), r) {
		t.Error("corner touch missed")
	}
	// Far away.
	if segmentHitsRect(geom.Seg(geom.Pt(20, 20), geom.Pt(30, 30)), r) {
		t.Error("distant segment hit")
	}
}
