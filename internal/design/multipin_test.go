package design

import (
	"testing"

	"rdlroute/internal/geom"
)

func addTestMultiNet(t *testing.T, d *Design, name string, pins []PadSpec) []int {
	t.Helper()
	ids, err := d.AddMultiPinNet(name, pins)
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestAddMultiPinNetBasics(t *testing.T) {
	d, err := GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	padsBefore := len(d.IOPads)
	netsBefore := len(d.Nets)
	c0 := d.Chips[0].Outline
	c1 := d.Chips[1].Outline
	ids := addTestMultiNet(t, d, "clk", []PadSpec{
		{Chip: 0, Pos: geom.Pt(c0.Max.X, c0.Min.Y+100)},
		{Chip: 1, Pos: geom.Pt(c1.Min.X, c1.Min.Y+100)},
		{Chip: 1, Pos: geom.Pt(c1.Min.X, c1.Max.Y-100)},
		{Chip: 0, Pos: geom.Pt(c0.Max.X, c0.Max.Y-100)},
	})
	if len(ids) != 3 { // k-1 subnets for k=4 pins
		t.Fatalf("subnets = %d, want 3", len(ids))
	}
	if len(d.IOPads) != padsBefore+4 {
		t.Errorf("pads added = %d, want 4", len(d.IOPads)-padsBefore)
	}
	if len(d.Nets) != netsBefore+3 {
		t.Errorf("nets added = %d, want 3", len(d.Nets)-netsBefore)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design with multi-pin net invalid: %v", err)
	}
	// All subnets share a group; pre-existing nets do not.
	for _, a := range ids {
		for _, b := range ids {
			if !d.SameGroup(a, b) {
				t.Errorf("subnets %d and %d not in one group", a, b)
			}
		}
		if d.SameGroup(a, 0) {
			t.Errorf("subnet %d grouped with net 0", a)
		}
	}
	if d.SameGroup(0, 1) {
		t.Error("standalone nets grouped together")
	}
	if !d.SameGroup(3, 3) {
		t.Error("a net must be in its own group")
	}
	// The MST spans all four pads.
	padSet := map[int]bool{}
	for _, ni := range ids {
		padSet[d.Nets[ni].Pins[0]] = true
		padSet[d.Nets[ni].Pins[1]] = true
	}
	if len(padSet) != 4 {
		t.Errorf("subnets span %d pads, want 4", len(padSet))
	}
}

func TestAddMultiPinNetErrors(t *testing.T) {
	d, err := GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddMultiPinNet("x", []PadSpec{{Chip: 0, Pos: geom.Pt(500, 500)}}); err == nil {
		t.Error("single pin accepted")
	}
	if _, err := d.AddMultiPinNet("x", []PadSpec{
		{Chip: 99, Pos: geom.Pt(500, 500)},
		{Chip: 0, Pos: geom.Pt(600, 500)},
	}); err == nil {
		t.Error("invalid chip accepted")
	}
	if _, err := d.AddMultiPinNet("x", []PadSpec{
		{Chip: 0, Pos: geom.Pt(-10, 0)},
		{Chip: 0, Pos: geom.Pt(600, 500)},
	}); err == nil {
		t.Error("out-of-outline pin accepted")
	}
}

func TestMSTIsMinimal(t *testing.T) {
	// Four collinear pins: the MST must chain them in order, total length =
	// span (any other tree is longer).
	d, err := GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	c0 := d.Chips[0].Outline
	y := []float64{c0.Min.Y + 100, c0.Min.Y + 300, c0.Min.Y + 500, c0.Min.Y + 700}
	ids := addTestMultiNet(t, d, "chain", []PadSpec{
		{Chip: 0, Pos: geom.Pt(c0.Max.X, y[0])},
		{Chip: 0, Pos: geom.Pt(c0.Max.X, y[2])}, // out of order on purpose
		{Chip: 0, Pos: geom.Pt(c0.Max.X, y[1])},
		{Chip: 0, Pos: geom.Pt(c0.Max.X, y[3])},
	})
	var total float64
	for _, ni := range ids {
		total += d.NetHPWL(d.Nets[ni])
	}
	if !geom.ApproxEq(total, y[3]-y[0]) {
		t.Errorf("MST length %v, want %v", total, y[3]-y[0])
	}
}

func TestPadNetCount(t *testing.T) {
	d, err := GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	counts := d.PadNetCount()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("pad %d referenced %d times in a 2-pin design", i, c)
		}
	}
	c0 := d.Chips[0].Outline
	addTestMultiNet(t, d, "star", []PadSpec{
		{Chip: 0, Pos: geom.Pt(c0.Max.X, c0.Min.Y+90)},
		{Chip: 0, Pos: geom.Pt(c0.Max.X, c0.Min.Y+290)},
		{Chip: 0, Pos: geom.Pt(c0.Max.X, c0.Min.Y+490)},
	})
	counts = d.PadNetCount()
	// The middle pad of a 3-pin chain carries 2 subnets.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max != 2 {
		t.Errorf("max pad net count = %d, want 2", max)
	}
}

func TestGroupOfOutOfRange(t *testing.T) {
	d, err := GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	if d.GroupOf(-1) != -1 || d.GroupOf(10_000) != -1 {
		t.Error("out-of-range GroupOf should be -1")
	}
}
