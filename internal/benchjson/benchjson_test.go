package benchjson

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func readNames(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	if err := json.Unmarshal(b, &entries); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e["name"].(string)
	}
	return names
}

func TestWriteSortsByName(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	err := Write(path, []Entry{
		{"name": "zeta", "v": 1.0},
		{"name": "alpha", "v": 2.0},
		{"name": "mid", "v": 3.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := readNames(t, path)
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestWriteIsByteStable(t *testing.T) {
	dir := t.TempDir()
	entries := []Entry{
		{"name": "b", "x": 1.5}, {"name": "a", "x": 2.5}, {"name": "c", "x": 0.5},
	}
	p1 := filepath.Join(dir, "one.json")
	p2 := filepath.Join(dir, "two.json")
	// Different input order must produce identical bytes.
	if err := Write(p1, entries); err != nil {
		t.Fatal(err)
	}
	rev := []Entry{entries[2], entries[0], entries[1]}
	if err := Write(p2, rev); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if string(b1) != string(b2) {
		t.Fatalf("output depends on input order:\n%s\nvs\n%s", b1, b2)
	}
}

func TestWriteRejectsMissingName(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Write(path, []Entry{{"v": 1.0}}); err == nil {
		t.Fatal("want error for entry without name")
	}
	if err := Write(path, []Entry{{"name": 42}}); err == nil {
		t.Fatal("want error for non-string name")
	}
}

func TestMergeWriteReplacesAndKeeps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Write(path, []Entry{
		{"name": "keep", "v": 1.0},
		{"name": "replace", "v": 2.0},
	}); err != nil {
		t.Fatal(err)
	}
	if err := MergeWrite(path, []Entry{
		{"name": "replace", "v": 9.0},
		{"name": "new", "v": 3.0},
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	if err := json.Unmarshal(b, &entries); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, e := range entries {
		got[e["name"].(string)] = e["v"].(float64)
	}
	if got["keep"] != 1.0 || got["replace"] != 9.0 || got["new"] != 3.0 {
		t.Fatalf("merged entries = %v", got)
	}
	names := readNames(t, path)
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestWriteEmptyIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Write(path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("empty write must not create the file")
	}
}
