// Package benchjson writes the machine-readable BENCH_*.json files the
// bench targets produce. Entries are JSON objects carrying a "name" key;
// Write sorts them by name before marshalling so repeated runs produce
// byte-stable files that diff cleanly (map iteration order never leaks into
// the output).
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Entry is one benchmark record: a flat JSON object. The "name" key is
// required and must be a string; it is the sort key and the merge identity.
type Entry = map[string]any

// nameOf extracts the mandatory name key.
func nameOf(e Entry) (string, error) {
	v, ok := e["name"]
	if !ok {
		return "", fmt.Errorf("benchjson: entry missing \"name\": %v", e)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("benchjson: entry \"name\" is %T, want string", v)
	}
	return s, nil
}

// Write marshals the entries sorted by name (single-space indent, trailing
// newline) to path. Nothing is written when entries is empty.
func Write(path string, entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	type named struct {
		name  string
		entry Entry
	}
	keyed := make([]named, len(entries))
	for i, e := range entries {
		n, err := nameOf(e)
		if err != nil {
			return err
		}
		keyed[i] = named{name: n, entry: e}
	}
	sort.SliceStable(keyed, func(i, j int) bool { return keyed[i].name < keyed[j].name })
	sorted := make([]Entry, len(keyed))
	for i, k := range keyed {
		sorted[i] = k.entry
	}
	b, err := json.MarshalIndent(sorted, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// MergeWrite reads an existing file at path (ignored when absent or
// unparsable), replaces entries whose name matches a new entry, keeps the
// rest, and writes the union sorted by name. It lets several test binaries
// contribute to one bench file without clobbering each other's sections.
func MergeWrite(path string, entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	merged := make(map[string]Entry)
	var order []string
	if b, err := os.ReadFile(path); err == nil {
		var old []Entry
		if json.Unmarshal(b, &old) == nil {
			for _, e := range old {
				if n, err := nameOf(e); err == nil {
					if _, ok := merged[n]; !ok {
						order = append(order, n)
					}
					merged[n] = e
				}
			}
		}
	}
	for _, e := range entries {
		n, err := nameOf(e)
		if err != nil {
			return err
		}
		if _, ok := merged[n]; !ok {
			order = append(order, n)
		}
		merged[n] = e
	}
	out := make([]Entry, 0, len(order))
	for _, n := range order {
		out = append(out, merged[n])
	}
	return Write(path, out)
}
