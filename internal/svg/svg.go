// Package svg renders routed designs as SVG documents: the package outline,
// chips, pads, bump pads, candidate vias, and the detailed routes of one
// wire layer. It regenerates the layout figures of the paper (Fig. 14 shows
// the first wire layer of dense5).
package svg

import (
	"fmt"
	"io"
	"strings"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/geom"
)

// Options controls rendering.
type Options struct {
	// Layer is the wire layer whose routes are drawn.
	Layer int
	// Scale maps µm to SVG user units. Zero selects 0.25.
	Scale float64
	// ShowBumps draws bump pads (bottom layer context).
	ShowBumps bool
	// ShowVias draws the vias used by the routes on this layer.
	ShowVias bool
}

// netPalette cycles distinct stroke colors over nets.
var netPalette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// Render writes an SVG document for one wire layer of a routed design.
func Render(w io.Writer, d *design.Design, routes []*detail.Route, opt Options) error {
	if opt.Scale <= 0 {
		opt.Scale = 0.25
	}
	s := opt.Scale
	width := d.Outline.W() * s
	height := d.Outline.H() * s
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.2f %.2f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%.2f" height="%.2f" fill="#fafafa" stroke="#333" stroke-width="1"/>`+"\n",
		width, height)

	x := func(v float64) float64 { return (v - d.Outline.Min.X) * s }
	y := func(v float64) float64 { return (v - d.Outline.Min.Y) * s }

	// Chips.
	for _, c := range d.Chips {
		fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="#eef2f7" stroke="#8899aa" stroke-width="0.8"/>`+"\n",
			x(c.Outline.Min.X), y(c.Outline.Min.Y), c.Outline.W()*s, c.Outline.H()*s)
	}
	// Bump pads.
	if opt.ShowBumps {
		for _, p := range d.BumpPads {
			fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="#ddd" stroke="#bbb" stroke-width="0.3"/>`+"\n",
				x(p.Pos.X), y(p.Pos.Y), 3*s)
		}
	}
	// I/O pads.
	for _, p := range d.IOPads {
		fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="#445" />`+"\n",
			x(p.Pos.X), y(p.Pos.Y), 2.2*s)
	}
	// Routes of the chosen layer.
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		color := netPalette[rt.Net%len(netPalette)]
		for _, seg := range rt.Segs {
			if seg.Layer != opt.Layer {
				continue
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f" stroke-linejoin="round"/>`+"\n",
				points(seg.Pl, x, y), color, d.WidthOf(rt.Net)*s)
		}
		if opt.ShowVias {
			for _, v := range rt.Vias {
				// A via on via layer k touches wire layers k and k+1.
				if v.Layer != opt.Layer && v.Layer+1 != opt.Layer {
					continue
				}
				fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
					x(v.Pos.X), y(v.Pos.Y), d.Rules.ViaWidth/2*s, color, 0.8*s)
			}
		}
	}
	fmt.Fprintf(&b, "</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func points(pl geom.Polyline, x, y func(float64) float64) string {
	var sb strings.Builder
	for i, p := range pl {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.2f,%.2f", x(p.X), y(p.Y))
	}
	return sb.String()
}
