package svg

import (
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/geom"
	"rdlroute/internal/stats"
	"rdlroute/internal/verify"
)

// viaCircles counts via markers in an SVG document (the only circles drawn
// with fill="none").
func viaCircles(doc string) int {
	n := 0
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(line, "<circle") && strings.Contains(line, `fill="none"`) {
			n++
		}
	}
	return n
}

// TestViaLayerSemanticsAgree pins the shared definition of
// detail.ViaUse.Layer across every consumer: via layer k joins wire layers
// k and k+1. The SVG layer filter, the stats via histogram and its V<k>-<k+1>
// labels, and the verifier's via-wire spacing check must all agree on which
// wire layers a via touches.
func TestViaLayerSemanticsAgree(t *testing.T) {
	d := &design.Design{
		Name:    "via-semantics",
		Rules:   design.DefaultRules(),
		Outline: geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1000, 1000)},
		IOPads: []design.Pad{
			{ID: 0, Net: 0, Chip: -1, Pos: geom.Pt(100, 100)},
			{ID: 1, Net: 0, Chip: -1, Pos: geom.Pt(900, 400)},
			{ID: 2, Net: 1, Chip: -1, Pos: geom.Pt(400, 404.5)},
			{ID: 3, Net: 1, Chip: -1, Pos: geom.Pt(600, 404.5)},
			{ID: 4, Net: 2, Chip: -1, Pos: geom.Pt(400, 404.5)},
			{ID: 5, Net: 2, Chip: -1, Pos: geom.Pt(600, 404.5)},
		},
		Nets: []design.Net{
			{ID: 0, Name: "n0", Pins: [2]int{0, 1}},
			{ID: 1, Name: "n1", Pins: [2]int{2, 3}},
			{ID: 2, Name: "n2", Pins: [2]int{4, 5}},
		},
		WireLayers: 3,
	}
	// Net 0 descends from wire layer 1 to wire layer 2 through one via on
	// via layer 1 at (500,400). Nets 1 and 2 run the same wire 4.5 µm from
	// the via position — net 1 on wire layer 2 (touched by via layer 1),
	// net 2 on wire layer 0 (not touched).
	routes := []*detail.Route{
		{
			Net: 0,
			Segs: []detail.RouteSeg{
				{Layer: 1, Pl: geom.Polyline{geom.Pt(100, 100), geom.Pt(500, 400)}},
				{Layer: 2, Pl: geom.Polyline{geom.Pt(500, 400), geom.Pt(900, 400)}},
			},
			Vias: []detail.ViaUse{{Pos: geom.Pt(500, 400), Layer: 1}},
		},
		{
			Net:  1,
			Segs: []detail.RouteSeg{{Layer: 2, Pl: geom.Polyline{geom.Pt(400, 404.5), geom.Pt(600, 404.5)}}},
		},
		{
			Net:  2,
			Segs: []detail.RouteSeg{{Layer: 0, Pl: geom.Polyline{geom.Pt(400, 404.5), geom.Pt(600, 404.5)}}},
		},
	}

	// SVG: the via renders exactly on wire layers 1 and 2.
	wantCircles := map[int]int{0: 0, 1: 1, 2: 1}
	for layer, want := range wantCircles {
		var sb strings.Builder
		if err := Render(&sb, d, routes, Options{Layer: layer, ShowVias: true}); err != nil {
			t.Fatal(err)
		}
		if got := viaCircles(sb.String()); got != want {
			t.Errorf("layer %d: %d via circles drawn, want %d", layer, got, want)
		}
	}

	// Stats: the via counts under its via layer index and the Print label
	// names the two wire layers it joins.
	rep := stats.Analyze(routes)
	if rep.Vias[1] != 1 || rep.ViaTotal != 1 {
		t.Errorf("stats Vias = %v (total %d), want map[1:1] total 1", rep.Vias, rep.ViaTotal)
	}
	var sb strings.Builder
	rep.Print(&sb)
	if !strings.Contains(sb.String(), "V1-2=1") {
		t.Errorf("stats Print should label the via V1-2:\n%s", sb.String())
	}

	// Verify: via-wire spacing applies on wire layers 1 and 2 only — the
	// net-1 wire on layer 2 conflicts, the identical net-2 wire on layer 0
	// does not.
	vrep := verify.Verify(d, routes)
	var conflicts []int
	for _, p := range vrep.Problems {
		if p.Kind == verify.ViaWireSpacing {
			conflicts = append(conflicts, p.Other)
		}
	}
	if len(conflicts) != 1 || conflicts[0] != 1 {
		t.Errorf("via-wire conflicts with nets %v, want [1] (layer-0 wire must not conflict)", conflicts)
	}
	for _, p := range vrep.Problems {
		if p.Kind != verify.ViaWireSpacing {
			t.Errorf("unexpected %s finding: %+v", p.Kind, p)
		}
	}
}
