package svg

import (
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/geom"
)

func sampleRoutes() []*detail.Route {
	return []*detail.Route{
		{
			Net: 0,
			Segs: []detail.RouteSeg{
				{Layer: 0, Pl: geom.Polyline{geom.Pt(100, 100), geom.Pt(500, 400)}},
				{Layer: 1, Pl: geom.Polyline{geom.Pt(500, 400), geom.Pt(900, 400)}},
			},
			Vias: []detail.ViaUse{{Pos: geom.Pt(500, 400), Layer: 0}},
		},
		nil, // unrouted nets are tolerated
	}
}

func sampleDesign(t *testing.T) *design.Design {
	t.Helper()
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRenderBasics(t *testing.T) {
	d := sampleDesign(t)
	var sb strings.Builder
	if err := Render(&sb, d, sampleRoutes(), Options{Layer: 0, ShowVias: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(out, "<polyline") {
		t.Error("layer-0 route not drawn")
	}
	if !strings.Contains(out, "<circle") {
		t.Error("pads/vias not drawn")
	}
	// One chip rect per chip plus the outline rect.
	if got := strings.Count(out, "<rect"); got != len(d.Chips)+1 {
		t.Errorf("rect count = %d, want %d", got, len(d.Chips)+1)
	}
}

func TestRenderLayerFilter(t *testing.T) {
	d := sampleDesign(t)
	var l0, l1, l9 strings.Builder
	if err := Render(&l0, d, sampleRoutes(), Options{Layer: 0}); err != nil {
		t.Fatal(err)
	}
	if err := Render(&l1, d, sampleRoutes(), Options{Layer: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Render(&l9, d, sampleRoutes(), Options{Layer: 9}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(l0.String(), "<polyline") != 1 {
		t.Error("layer 0 should draw exactly one polyline")
	}
	if strings.Count(l1.String(), "<polyline") != 1 {
		t.Error("layer 1 should draw exactly one polyline")
	}
	if strings.Count(l9.String(), "<polyline") != 0 {
		t.Error("empty layer should draw no polylines")
	}
}

func TestRenderBumps(t *testing.T) {
	d := sampleDesign(t)
	var with, without strings.Builder
	if err := Render(&with, d, nil, Options{ShowBumps: true}); err != nil {
		t.Fatal(err)
	}
	if err := Render(&without, d, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(with.String(), "<circle") <= strings.Count(without.String(), "<circle") {
		t.Error("ShowBumps did not add bump circles")
	}
}

func TestRenderDefaultScale(t *testing.T) {
	d := sampleDesign(t)
	var sb strings.Builder
	if err := Render(&sb, d, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `width="915"`) {
		// 3660 µm * 0.25 = 915 SVG units for dense1.
		t.Errorf("unexpected default scaling: %s", sb.String()[:120])
	}
}
