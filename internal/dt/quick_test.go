package dt

import (
	"math"
	"testing"
	"testing/quick"

	"rdlroute/internal/geom"
)

// quickPoints turns quick-generated floats into a bounded point set.
func quickPoints(coords []float64) []geom.Point {
	var pts []geom.Point
	for i := 0; i+1 < len(coords) && len(pts) < 60; i += 2 {
		x, y := coords[i], coords[i+1]
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			continue
		}
		pts = append(pts, geom.Pt(math.Mod(x, 2000), math.Mod(y, 2000)))
	}
	return pts
}

// Property: every successful triangulation satisfies the Delaunay
// empty-circumcircle property and the structural invariants.
func TestQuickDelaunayInvariants(t *testing.T) {
	f := func(coords []float64) bool {
		pts := quickPoints(coords)
		if len(pts) < 3 {
			return true
		}
		m, err := Triangulate(pts)
		if err != nil {
			// Degenerate inputs (duplicates collapsing below 3 points,
			// collinear sets) may legitimately fail.
			return err == ErrTooFewPoints || err == ErrAllCollinear
		}
		return m.CheckDelaunay() == nil && m.CheckTopology() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the mesh covers exactly the convex hull — total triangle area
// equals the hull polygon area.
func TestQuickMeshAreaEqualsHull(t *testing.T) {
	f := func(coords []float64) bool {
		pts := quickPoints(coords)
		if len(pts) < 3 {
			return true
		}
		m, err := Triangulate(pts)
		if err != nil {
			return true
		}
		var meshArea float64
		for _, tri := range m.Tris {
			meshArea += math.Abs(geom.SignedArea2(
				m.Points[tri.V[0]], m.Points[tri.V[1]], m.Points[tri.V[2]])) / 2
		}
		hull := geom.ConvexHull(m.Points)
		hullArea := math.Abs(geom.PolygonArea(hull))
		return math.Abs(meshArea-hullArea) <= 1e-6*(1+hullArea)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every input point is a vertex of the mesh (after dedup), and
// every mesh vertex with at least one incident triangle appears in some
// triangle's vertex list consistently.
func TestQuickVertexAccounting(t *testing.T) {
	f := func(coords []float64) bool {
		pts := quickPoints(coords)
		if len(pts) < 3 {
			return true
		}
		m, err := Triangulate(pts)
		if err != nil {
			return true
		}
		if len(m.InputVertex) != len(pts) {
			return false
		}
		for i, p := range pts {
			vi := m.InputVertex[i]
			if vi < 0 || vi >= len(m.Points) {
				return false
			}
			if m.Points[vi] != p {
				return false
			}
		}
		// Incidence lists agree with triangle contents.
		for ti, tri := range m.Tris {
			for _, v := range tri.V {
				found := false
				for _, inc := range m.VertexTriangles(v) {
					if inc == ti {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
