// Package dt implements Delaunay triangulation of a 2-D point set via the
// incremental Bowyer–Watson algorithm with walking point location.
//
// This package stands in for the C++ CDT library the paper uses: the router
// triangulates the candidate vias of each wire layer (plus uniformly
// inserted boundary dummy points) and consumes the resulting triangular
// tiles, their adjacency, and their edges.
//
// The triangulation is robust enough for EDA workloads: regular pad and via
// lattices produce many exactly cocircular quadruples, which the tolerant
// in-circle predicate in package geom resolves deterministically.
package dt

import (
	"errors"
	"fmt"
	"sort"

	"rdlroute/internal/geom"
)

// ErrTooFewPoints is returned when fewer than three distinct points are
// supplied, so no triangle exists.
var ErrTooFewPoints = errors.New("dt: need at least 3 distinct points")

// ErrAllCollinear is returned when every input point lies on one line, so no
// triangulation with positive-area triangles exists.
var ErrAllCollinear = errors.New("dt: all points are collinear")

// Triangle is one triangular tile of the mesh. This is the κ(i,j,k) tile of
// the paper.
type Triangle struct {
	// V holds the three vertex indices in counterclockwise order.
	V [3]int
	// N holds the neighbour triangle index across the edge opposite V[i]
	// (that is, the edge V[(i+1)%3]–V[(i+2)%3]), or -1 on the hull
	// boundary.
	N [3]int
}

// Edge is an undirected mesh edge between two vertex indices with A < B.
type Edge struct {
	A, B int
}

// MakeEdge normalizes an undirected edge so A < B.
func MakeEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Mesh is a Delaunay triangulation result.
type Mesh struct {
	// Points is the deduplicated vertex set. Indices into it are the vertex
	// indices used everywhere else.
	Points []geom.Point
	// InputVertex maps each input point index to its vertex index (inputs
	// that duplicate an earlier point map to the earlier vertex).
	InputVertex []int
	// Tris holds the triangles of the final mesh.
	Tris []Triangle

	edgeTris map[Edge][2]int // each edge's 1 or 2 incident triangles (-1 pad)
	vertTris [][]int         // vertex index -> incident triangle indices
}

// Triangulate computes the Delaunay triangulation of the given points.
// Duplicate points (within geom.Eps per coordinate after exact-key
// bucketing) are merged.
func Triangulate(points []geom.Point) (*Mesh, error) {
	bw := newBowyerWatson(points)
	if len(bw.pts)-3 < 3 { // minus the 3 super-triangle vertices
		return nil, ErrTooFewPoints
	}
	if err := bw.run(); err != nil {
		return nil, err
	}
	return bw.finish()
}

// EdgeTriangles returns the one or two triangle indices incident to the
// given undirected edge, and reports whether the edge exists in the mesh.
// For a hull edge the second index is -1.
func (m *Mesh) EdgeTriangles(e Edge) ([2]int, bool) {
	t, ok := m.edgeTris[e]
	return t, ok
}

// Edges returns all undirected edges of the mesh. The order is unspecified
// but deterministic for a given mesh.
func (m *Mesh) Edges() []Edge {
	edges := make([]Edge, 0, len(m.edgeTris))
	seen := make(map[Edge]bool, len(m.edgeTris))
	for _, t := range m.Tris {
		for i := 0; i < 3; i++ {
			e := MakeEdge(t.V[i], t.V[(i+1)%3])
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
	}
	return edges
}

// VertexTriangles returns the indices of all triangles incident to vertex v.
func (m *Mesh) VertexTriangles(v int) []int {
	if v < 0 || v >= len(m.vertTris) {
		return nil
	}
	return m.vertTris[v]
}

// TriangleEdges returns the three undirected edges of triangle t.
func (m *Mesh) TriangleEdges(t int) [3]Edge {
	tri := m.Tris[t]
	return [3]Edge{
		MakeEdge(tri.V[0], tri.V[1]),
		MakeEdge(tri.V[1], tri.V[2]),
		MakeEdge(tri.V[2], tri.V[0]),
	}
}

// OppositeVertex returns the vertex of triangle t not on edge e, and reports
// whether e is actually an edge of t.
func (m *Mesh) OppositeVertex(t int, e Edge) (int, bool) {
	tri := m.Tris[t]
	for i := 0; i < 3; i++ {
		if tri.V[i] != e.A && tri.V[i] != e.B {
			o := tri.V[(i+1)%3]
			p := tri.V[(i+2)%3]
			if (o == e.A && p == e.B) || (o == e.B && p == e.A) {
				return tri.V[i], true
			}
		}
	}
	return -1, false
}

// FindTriangle returns the index of a triangle containing p (boundary
// inclusive), or -1 when p is outside the hull.
func (m *Mesh) FindTriangle(p geom.Point) int {
	for i, t := range m.Tris {
		if geom.PointInTriangle(p, m.Points[t.V[0]], m.Points[t.V[1]], m.Points[t.V[2]]) {
			return i
		}
	}
	return -1
}

// CheckDelaunay verifies the Delaunay empty-circumcircle property: no mesh
// vertex lies strictly inside any triangle's circumcircle. It returns a
// descriptive error for the first violation found. Intended for tests.
func (m *Mesh) CheckDelaunay() error {
	for ti, t := range m.Tris {
		a, b, c := m.Points[t.V[0]], m.Points[t.V[1]], m.Points[t.V[2]]
		for vi, p := range m.Points {
			if vi == t.V[0] || vi == t.V[1] || vi == t.V[2] {
				continue
			}
			if geom.InCircle(a, b, c, p) {
				return fmt.Errorf("dt: vertex %d inside circumcircle of triangle %d", vi, ti)
			}
		}
	}
	return nil
}

// CheckTopology verifies structural invariants: CCW winding, symmetric
// neighbour links, and consistent edge-triangle incidence. Intended for
// tests.
func (m *Mesh) CheckTopology() error {
	for ti, t := range m.Tris {
		a, b, c := m.Points[t.V[0]], m.Points[t.V[1]], m.Points[t.V[2]]
		if geom.Orient(a, b, c) != geom.CounterClockwise {
			return fmt.Errorf("dt: triangle %d not counterclockwise", ti)
		}
		for i := 0; i < 3; i++ {
			n := t.N[i]
			if n == -1 {
				continue
			}
			if n < 0 || n >= len(m.Tris) {
				return fmt.Errorf("dt: triangle %d neighbour %d out of range", ti, n)
			}
			// The neighbour must point back at us across the shared edge.
			back := false
			for j := 0; j < 3; j++ {
				if m.Tris[n].N[j] == ti {
					back = true
				}
			}
			if !back {
				return fmt.Errorf("dt: triangle %d neighbour %d does not link back", ti, n)
			}
		}
	}
	// Check edge incidence in sorted edge order, not map order: with more
	// than one inconsistency the reported error should not change run to
	// run (the mapiter analyzer rejects loop-dependent returns out of map
	// ranges).
	edges := make([]Edge, 0, len(m.edgeTris))
	for e := range m.edgeTris {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	for _, e := range edges {
		for _, ti := range m.edgeTris[e] {
			if ti == -1 {
				continue
			}
			found := false
			for _, ee := range m.TriangleEdges(ti) {
				if ee == e {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("dt: edge %v lists triangle %d which lacks it", e, ti)
			}
		}
	}
	return nil
}
