package dt

import (
	"math"
	"math/rand"
	"testing"

	"rdlroute/internal/geom"
)

func TestTriangulateSquare(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10),
	}
	m, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tris) != 2 {
		t.Fatalf("square should triangulate into 2 triangles, got %d", len(m.Tris))
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Error(err)
	}
	if err := m.CheckTopology(); err != nil {
		t.Error(err)
	}
	// The two triangles must share exactly one (diagonal) edge.
	shared := 0
	for _, ts := range m.edgeTris {
		if ts[1] != -1 {
			shared++
		}
	}
	if shared != 1 {
		t.Errorf("shared edges = %d, want 1", shared)
	}
}

func TestTriangulateWithInteriorPoint(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10),
		geom.Pt(5, 5),
	}
	m, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tris) != 4 {
		t.Fatalf("got %d triangles, want 4", len(m.Tris))
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Error(err)
	}
	if err := m.CheckTopology(); err != nil {
		t.Error(err)
	}
	// The interior point is incident to all 4 triangles.
	if got := len(m.VertexTriangles(4)); got != 4 {
		t.Errorf("interior vertex incident to %d triangles, want 4", got)
	}
}

func TestTriangulateErrors(t *testing.T) {
	if _, err := Triangulate(nil); err != ErrTooFewPoints {
		t.Errorf("nil input: err = %v", err)
	}
	if _, err := Triangulate([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}); err != ErrTooFewPoints {
		t.Errorf("2 points: err = %v", err)
	}
	// Duplicates of the same point collapse below the minimum.
	if _, err := Triangulate([]geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(1, 1)}); err != ErrTooFewPoints {
		t.Errorf("duplicated 2 points: err = %v", err)
	}
	// Collinear points have no triangulation.
	col := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)}
	if _, err := Triangulate(col); err != ErrAllCollinear {
		t.Errorf("collinear: err = %v", err)
	}
}

func TestTriangulateDuplicates(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8),
		geom.Pt(0, 0), // duplicate of input 0
	}
	m, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Points) != 3 {
		t.Errorf("deduped points = %d, want 3", len(m.Points))
	}
	if m.InputVertex[3] != m.InputVertex[0] {
		t.Error("duplicate input must map to the same vertex")
	}
	if len(m.Tris) != 1 {
		t.Errorf("triangles = %d, want 1", len(m.Tris))
	}
}

func TestEulerFormula(t *testing.T) {
	// For a triangulation of a point set whose hull has h vertices:
	// triangles = 2n − h − 2, edges = 3n − h − 3.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(80)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		m, err := Triangulate(pts)
		if err != nil {
			t.Fatal(err)
		}
		// Count hull vertices as boundary edges of the mesh (each hull
		// vertex begins exactly one boundary edge); this includes points
		// collinear on hull edges, which geom.ConvexHull drops.
		h := 0
		for _, ts := range m.edgeTris {
			if ts[1] == -1 {
				h++
			}
		}
		nv := len(m.Points)
		wantTris := 2*nv - h - 2
		wantEdges := 3*nv - h - 3
		if len(m.Tris) != wantTris {
			t.Errorf("trial %d: triangles = %d, want %d (n=%d h=%d)", trial, len(m.Tris), wantTris, nv, h)
		}
		if got := len(m.Edges()); got != wantEdges {
			t.Errorf("trial %d: edges = %d, want %d", trial, got, wantEdges)
		}
	}
}

func TestDelaunayPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(60)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*500, rng.Float64()*500)
		}
		m, err := Triangulate(pts)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckDelaunay(); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
		if err := m.CheckTopology(); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

func TestRegularGrid(t *testing.T) {
	// Regular grids are the adversarial case: every 2x2 cell is exactly
	// cocircular. The tolerant predicate must still produce a valid mesh.
	var pts []geom.Point
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			pts = append(pts, geom.Pt(float64(i)*10, float64(j)*10))
		}
	}
	m, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckTopology(); err != nil {
		t.Fatal(err)
	}
	// Euler check (hull of an 8x8 grid has 28 boundary vertices).
	wantTris := 2*64 - 28 - 2
	if len(m.Tris) != wantTris {
		t.Errorf("grid triangles = %d, want %d", len(m.Tris), wantTris)
	}
	// Total mesh area must equal the grid extent.
	var area float64
	for _, tri := range m.Tris {
		area += math.Abs(geom.SignedArea2(m.Points[tri.V[0]], m.Points[tri.V[1]], m.Points[tri.V[2]])) / 2
	}
	if math.Abs(area-70*70) > 1e-6 {
		t.Errorf("mesh area = %v, want 4900", area)
	}
}

func TestPointOnEdgeInsertion(t *testing.T) {
	// The fifth point lies exactly on the diagonal shared edge of the first
	// four, exercising the on-edge cavity path.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10),
		geom.Pt(5, 5), geom.Pt(2.5, 2.5),
	}
	m, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckTopology(); err != nil {
		t.Error(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Error(err)
	}
	if len(m.Points) != 6 {
		t.Errorf("points = %d, want 6", len(m.Points))
	}
}

func TestEdgeQueriesAndOppositeVertex(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}
	m, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Edges() {
		ts, ok := m.EdgeTriangles(e)
		if !ok {
			t.Fatalf("edge %v missing from incidence", e)
		}
		v, ok := m.OppositeVertex(ts[0], e)
		if !ok {
			t.Fatalf("OppositeVertex failed for %v", e)
		}
		if v == e.A || v == e.B {
			t.Errorf("opposite vertex %d on the edge %v", v, e)
		}
	}
	if _, ok := m.EdgeTriangles(MakeEdge(0, 99)); ok {
		t.Error("nonexistent edge reported present")
	}
	if _, ok := m.OppositeVertex(0, MakeEdge(98, 99)); ok {
		t.Error("OppositeVertex on foreign edge should fail")
	}
}

func TestMakeEdgeNormalization(t *testing.T) {
	if MakeEdge(5, 2) != (Edge{A: 2, B: 5}) {
		t.Error("MakeEdge should order endpoints")
	}
	if MakeEdge(2, 5) != MakeEdge(5, 2) {
		t.Error("MakeEdge not symmetric")
	}
}

func TestFindTriangle(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}
	m, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if ti := m.FindTriangle(geom.Pt(5, 5)); ti == -1 {
		t.Error("interior point not located")
	}
	if ti := m.FindTriangle(geom.Pt(50, 50)); ti != -1 {
		t.Error("exterior point located inside hull")
	}
}

func TestClusteredPoints(t *testing.T) {
	// Tight clusters mimic via escape patterns around pads.
	rng := rand.New(rand.NewSource(5))
	var pts []geom.Point
	for c := 0; c < 6; c++ {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		for i := 0; i < 15; i++ {
			pts = append(pts, geom.Pt(cx+rng.Float64()*5, cy+rng.Float64()*5))
		}
	}
	m, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckTopology(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Error(err)
	}
}

func BenchmarkTriangulate1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*5000, rng.Float64()*5000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Triangulate(pts); err != nil {
			b.Fatal(err)
		}
	}
}
