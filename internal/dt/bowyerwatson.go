package dt

import (
	"errors"
	"math"
	"sort"

	"rdlroute/internal/geom"
)

// wtri is a working triangle during incremental construction.
type wtri struct {
	v     [3]int
	n     [3]int // neighbour across edge opposite v[i]; -1 = none
	alive bool
}

type bowyerWatson struct {
	pts      []geom.Point // deduped input points + 3 super vertices at the end
	inputIdx []int        // input index -> vertex index
	nReal    int          // number of real (non-super) vertices
	tris     []wtri
	lastTri  int // walk hint

	// Scratch buffers reused across insertions.
	badSet map[int]bool
	stack  []int
}

func newBowyerWatson(points []geom.Point) *bowyerWatson {
	bw := &bowyerWatson{badSet: make(map[int]bool)}
	seen := make(map[geom.Point]int, len(points))
	bw.inputIdx = make([]int, len(points))
	for i, p := range points {
		if j, ok := seen[p]; ok {
			bw.inputIdx[i] = j
			continue
		}
		idx := len(bw.pts)
		seen[p] = idx
		bw.pts = append(bw.pts, p)
		bw.inputIdx[i] = idx
	}
	bw.nReal = len(bw.pts)

	// Append an enclosing super-triangle far outside the data.
	var r geom.Rect
	if bw.nReal > 0 {
		r = geom.BoundingRect(bw.pts)
	}
	size := math.Max(r.W(), r.H())
	if size <= 0 {
		size = 1
	}
	c := r.Center()
	m := 64 * size
	bw.pts = append(bw.pts,
		geom.Pt(c.X-2*m, c.Y-m),
		geom.Pt(c.X+2*m, c.Y-m),
		geom.Pt(c.X, c.Y+2*m),
	)
	s0, s1, s2 := bw.nReal, bw.nReal+1, bw.nReal+2
	bw.tris = append(bw.tris, wtri{v: [3]int{s0, s1, s2}, n: [3]int{-1, -1, -1}, alive: true})
	// pts[] for super triangle chosen CCW already: (-2m,-m),(2m,-m),(0,2m).
	return bw
}

// errDegenerate signals an insertion the algorithm could not complete.
var errDegenerate = errors.New("dt: degenerate configuration during insertion")

func (bw *bowyerWatson) run() error {
	for v := 0; v < bw.nReal; v++ {
		if err := bw.insert(v); err != nil {
			return err
		}
	}
	return nil
}

// locate walks from the hint triangle toward p and returns the index of an
// alive triangle containing p.
func (bw *bowyerWatson) locate(p geom.Point) int {
	t := bw.lastTri
	if t < 0 || t >= len(bw.tris) || !bw.tris[t].alive {
		t = -1
		for i := len(bw.tris) - 1; i >= 0; i-- {
			if bw.tris[i].alive {
				t = i
				break
			}
		}
		if t == -1 {
			return -1
		}
	}
	maxSteps := 4 * (len(bw.tris) + 16)
	for step := 0; step < maxSteps; step++ {
		tr := &bw.tris[t]
		moved := false
		for i := 0; i < 3; i++ {
			a := bw.pts[tr.v[(i+1)%3]]
			b := bw.pts[tr.v[(i+2)%3]]
			if geom.Orient(a, b, p) == geom.Clockwise {
				nb := tr.n[i]
				if nb == -1 {
					// p outside the hull across this edge: cannot happen
					// inside the super-triangle; fall through to scan.
					moved = false
					break
				}
				t = nb
				moved = true
				break
			}
		}
		if !moved {
			return t
		}
	}
	// Walk failed (cycling on degeneracies): brute-force scan.
	for i, tr := range bw.tris {
		if !tr.alive {
			continue
		}
		if geom.PointInTriangle(p, bw.pts[tr.v[0]], bw.pts[tr.v[1]], bw.pts[tr.v[2]]) {
			return i
		}
	}
	return -1
}

type boundaryEdge struct {
	a, b    int // directed per the dead triangle's CCW winding
	outside int // triangle index across the edge, or -1
}

func (bw *bowyerWatson) insert(v int) error {
	p := bw.pts[v]
	seed := bw.locate(p)
	if seed == -1 {
		return errDegenerate
	}

	// Grow the cavity: connected triangles whose circumcircle contains p.
	bad := bw.badSet
	for k := range bad {
		delete(bad, k)
	}
	bad[seed] = true
	bw.stack = append(bw.stack[:0], seed)
	// If p lies on an edge of the seed triangle, the neighbour across that
	// edge must join the cavity even when the tolerant in-circle predicate
	// says "on the boundary, not inside".
	st := bw.tris[seed]
	for i := 0; i < 3; i++ {
		a := bw.pts[st.v[(i+1)%3]]
		b := bw.pts[st.v[(i+2)%3]]
		if geom.Orient(a, b, p) == geom.Collinear && st.n[i] != -1 && !bad[st.n[i]] {
			bad[st.n[i]] = true
			bw.stack = append(bw.stack, st.n[i])
		}
	}
	for len(bw.stack) > 0 {
		t := bw.stack[len(bw.stack)-1]
		bw.stack = bw.stack[:len(bw.stack)-1]
		tr := bw.tris[t]
		for i := 0; i < 3; i++ {
			nb := tr.n[i]
			if nb == -1 || bad[nb] {
				continue
			}
			nt := bw.tris[nb]
			if geom.InCircle(bw.pts[nt.v[0]], bw.pts[nt.v[1]], bw.pts[nt.v[2]], p) {
				bad[nb] = true
				bw.stack = append(bw.stack, nb)
			}
		}
	}

	// Collect boundary edges, forcing neighbours into the cavity when p is
	// exactly collinear with a boundary edge (which would otherwise create a
	// zero-area triangle). The cavity is walked in sorted index order so the
	// resulting triangle numbering — and with it every downstream node ID —
	// is deterministic run to run.
	var boundary []boundaryEdge
	var cavity []int
	for guard := 0; guard < len(bw.tris)+8; guard++ {
		cavity = cavity[:0]
		for t := range bad {
			cavity = append(cavity, t)
		}
		sort.Ints(cavity)
		boundary = boundary[:0]
		grew := false
		for _, t := range cavity {
			tr := bw.tris[t]
			for i := 0; i < 3; i++ {
				nb := tr.n[i]
				if nb != -1 && bad[nb] {
					continue
				}
				a, b := tr.v[(i+1)%3], tr.v[(i+2)%3]
				if geom.Orient(bw.pts[a], bw.pts[b], p) == geom.Collinear {
					if nb == -1 {
						return errDegenerate
					}
					bad[nb] = true
					grew = true
					break
				}
				boundary = append(boundary, boundaryEdge{a: a, b: b, outside: nb})
			}
			if grew {
				break
			}
		}
		if !grew {
			break
		}
	}
	if len(boundary) < 3 {
		return errDegenerate
	}

	// Kill cavity triangles.
	for t := range bad {
		bw.tris[t].alive = false
	}

	// Create the fan of new triangles around p and stitch adjacency.
	type key struct{ a, b int }
	newAt := make(map[key]int, len(boundary))
	first := len(bw.tris)
	for _, be := range boundary {
		idx := len(bw.tris)
		// Vertices [p, a, b]: CCW because the dead triangle was CCW and p
		// lies on its interior side of a→b.
		bw.tris = append(bw.tris, wtri{
			v:     [3]int{v, be.a, be.b},
			n:     [3]int{be.outside, -1, -1},
			alive: true,
		})
		// Fix the outside triangle's back pointer.
		if be.outside != -1 {
			ot := &bw.tris[be.outside]
			for i := 0; i < 3; i++ {
				if ot.n[i] != -1 && bad[ot.n[i]] {
					// Check this slot is the shared edge (a,b).
					oa, ob := ot.v[(i+1)%3], ot.v[(i+2)%3]
					if (oa == be.a && ob == be.b) || (oa == be.b && ob == be.a) {
						ot.n[i] = idx
					}
				}
			}
		}
		newAt[key{be.a, be.b}] = idx
	}
	// Link new triangles to each other across the spoke edges (p, x). For
	// triangle [p, a, b]: edge opposite a is (b, p) — shared with the new
	// triangle whose boundary edge starts at b; edge opposite b is (p, a) —
	// shared with the one whose boundary edge ends at a.
	for i := first; i < len(bw.tris); i++ {
		tr := &bw.tris[i]
		a, b := tr.v[1], tr.v[2]
		for k, j := range newAt {
			if k.a == b { // triangle [p, b, x] shares edge (p, b)
				tr.n[1] = j
			}
			if k.b == a { // triangle [p, x, a] shares edge (p, a)
				tr.n[2] = j
			}
		}
	}
	bw.lastTri = first
	return nil
}

// repairHull fills concave notches on the mesh boundary. A finite
// super-triangle cannot stand in for points at infinity: a near-collinear
// hull sliver whose circumcircle reaches beyond the super vertices
// triangulates against them instead of forming the sliver, and removing the
// super triangles then leaves a notch. The notch region's only vertices are
// on its rim, so ear-filling it restores exactly the hull coverage the true
// Delaunay triangulation has.
func repairHull(m *Mesh) {
	for guard := 0; guard < len(m.Points)+8; guard++ {
		loop := boundaryLoop(m)
		if len(loop) < 4 {
			return
		}
		filled := false
		n := len(loop)
		for i := 0; i < n; i++ {
			a, b, c := loop[i], loop[(i+1)%n], loop[(i+2)%n]
			// The loop runs with the interior on its left; a clockwise turn
			// at b is a concave notch.
			if geom.Orient(m.Points[a], m.Points[b], m.Points[c]) != geom.Clockwise {
				continue
			}
			// Ear check: no other boundary vertex inside the candidate.
			ok := true
			for _, v := range loop {
				if v == a || v == b || v == c {
					continue
				}
				if geom.PointInTriangle(m.Points[v], m.Points[a], m.Points[b], m.Points[c]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// (a, c, b) is counterclockwise since (a, b, c) turned clockwise.
			m.Tris = append(m.Tris, Triangle{V: [3]int{a, c, b}})
			filled = true
			break
		}
		if !filled {
			return
		}
		m.rebuildIndexes()
	}
}

// boundaryLoop returns the mesh boundary as an ordered vertex cycle with the
// interior on its left, or nil when the boundary is not a single simple
// loop.
func boundaryLoop(m *Mesh) []int {
	next := make(map[int]int)
	start := -1
	for _, t := range m.Tris {
		for i := 0; i < 3; i++ {
			if t.N[i] != -1 {
				continue
			}
			from := t.V[(i+1)%3]
			to := t.V[(i+2)%3]
			if _, dup := next[from]; dup {
				return nil // non-manifold boundary; leave untouched
			}
			next[from] = to
			start = from
		}
	}
	if start == -1 {
		return nil
	}
	loop := []int{start}
	for v := next[start]; v != start; v = next[v] {
		loop = append(loop, v)
		if len(loop) > len(next) {
			return nil // broken cycle
		}
	}
	if len(loop) != len(next) {
		return nil // multiple loops
	}
	return loop
}

// rebuildIndexes recomputes neighbour links and the incidence indexes from
// the triangle vertex lists.
func (m *Mesh) rebuildIndexes() {
	m.edgeTris = make(map[Edge][2]int, 3*len(m.Tris)/2)
	m.vertTris = make([][]int, len(m.Points))
	for ti, t := range m.Tris {
		for j := 0; j < 3; j++ {
			m.vertTris[t.V[j]] = append(m.vertTris[t.V[j]], ti)
			e := MakeEdge(t.V[j], t.V[(j+1)%3])
			if cur, ok := m.edgeTris[e]; ok {
				if cur[0] != ti && cur[1] == -1 {
					cur[1] = ti
					m.edgeTris[e] = cur
				}
			} else {
				m.edgeTris[e] = [2]int{ti, -1}
			}
		}
	}
	for ti := range m.Tris {
		t := &m.Tris[ti]
		for i := 0; i < 3; i++ {
			e := MakeEdge(t.V[(i+1)%3], t.V[(i+2)%3])
			ts := m.edgeTris[e]
			switch {
			case ts[0] == ti:
				t.N[i] = ts[1]
			case ts[1] == ti:
				t.N[i] = ts[0]
			default:
				t.N[i] = -1
			}
		}
	}
}

// finish strips the super-triangle, compacts the mesh, and builds the
// incidence indexes.
func (bw *bowyerWatson) finish() (*Mesh, error) {
	keep := make([]int, len(bw.tris)) // old index -> new index or -1
	for i := range keep {
		keep[i] = -1
	}
	var count int
	for i, t := range bw.tris {
		if !t.alive {
			continue
		}
		touchesSuper := false
		for _, v := range t.v {
			if v >= bw.nReal {
				touchesSuper = true
			}
		}
		if touchesSuper {
			continue
		}
		keep[i] = count
		count++
	}
	if count == 0 {
		return nil, ErrAllCollinear
	}
	m := &Mesh{
		Points:      append([]geom.Point(nil), bw.pts[:bw.nReal]...),
		InputVertex: bw.inputIdx,
		Tris:        make([]Triangle, count),
		edgeTris:    make(map[Edge][2]int),
		vertTris:    make([][]int, bw.nReal),
	}
	for i, t := range bw.tris {
		ni := keep[i]
		if ni == -1 {
			continue
		}
		var out Triangle
		out.V = t.v
		for j := 0; j < 3; j++ {
			if t.n[j] == -1 {
				out.N[j] = -1
			} else {
				out.N[j] = keep[t.n[j]] // -1 if neighbour was super/dead
			}
		}
		m.Tris[ni] = out
	}
	for ti, t := range m.Tris {
		for j := 0; j < 3; j++ {
			m.vertTris[t.V[j]] = append(m.vertTris[t.V[j]], ti)
			e := MakeEdge(t.V[j], t.V[(j+1)%3])
			if cur, ok := m.edgeTris[e]; ok {
				if cur[0] != ti && cur[1] == -1 {
					cur[1] = ti
					m.edgeTris[e] = cur
				}
			} else {
				m.edgeTris[e] = [2]int{ti, -1}
			}
		}
	}
	repairHull(m)
	return m, nil
}
