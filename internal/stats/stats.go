// Package stats computes analysis statistics over detailed routing results:
// segment-angle histograms (how "any-angle" the solution really is),
// segment-length distributions, per-layer utilization, and via usage. The
// angle histogram is the direct evidence for the paper's core claim — a
// traditional router's histogram collapses onto the four X-architecture
// orientations, while the any-angle router spreads across the circle.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"

	"rdlroute/internal/detail"
)

// AngleBucketDeg is the angle histogram resolution in degrees.
const AngleBucketDeg = 5

// Report summarizes the geometry of a routing result.
type Report struct {
	Nets     int
	Segments int
	Vertices int
	// Wirelength totals.
	Wirelength float64
	PerLayerWL map[int]float64
	// Vias per via layer (key = via layer index; via layer k joins wire
	// layers k and k+1, matching detail.ViaUse.Layer).
	Vias map[int]int
	// ViaTotal is the sum over Vias — the canonical via count of the result.
	ViaTotal int
	// LayerBalance is max per-layer wirelength divided by mean per-layer
	// wirelength over the layers that carry any wire (1.0 = perfectly
	// balanced; large values mean one layer dominates). Zero when nothing
	// is routed.
	LayerBalance float64
	// AngleHist counts segments by direction modulo 180°, in
	// AngleBucketDeg buckets: index i covers [i·5°, i·5°+5°).
	AngleHist [180 / AngleBucketDeg]int
	// OctilinearFrac is the fraction of segments lying on X-architecture
	// orientations (0/45/90/135° within ±1°), weighted by count.
	OctilinearFrac float64
	// SegLen percentiles over all segments (µm).
	SegLenP50, SegLenP90, SegLenMax float64
}

// Analyze builds a Report from detailed routes.
func Analyze(routes []*detail.Route) *Report {
	r := &Report{
		PerLayerWL: make(map[int]float64),
		Vias:       make(map[int]int),
	}
	var lengths []float64
	octilinear := 0
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		r.Nets++
		for _, v := range rt.Vias {
			r.Vias[v.Layer]++
			r.ViaTotal++
		}
		for _, seg := range rt.Segs {
			r.Vertices += len(seg.Pl)
			for _, s := range seg.Pl.Segments() {
				r.Segments++
				l := s.Len()
				lengths = append(lengths, l)
				r.Wirelength += l
				r.PerLayerWL[seg.Layer] += l
				deg := math.Atan2(s.B.Y-s.A.Y, s.B.X-s.A.X) * 180 / math.Pi
				deg = math.Mod(deg+360, 180)
				bucket := int(deg) / AngleBucketDeg
				if bucket >= len(r.AngleHist) {
					bucket = len(r.AngleHist) - 1
				}
				r.AngleHist[bucket]++
				if isOctilinear(deg) {
					octilinear++
				}
			}
		}
	}
	if r.Segments > 0 {
		r.OctilinearFrac = float64(octilinear) / float64(r.Segments)
	}
	if len(lengths) > 0 {
		sort.Float64s(lengths)
		r.SegLenP50 = lengths[len(lengths)/2]
		r.SegLenP90 = lengths[percentileIndex(len(lengths), 0.9)]
		r.SegLenMax = lengths[len(lengths)-1]
	}
	if len(r.PerLayerWL) > 0 {
		var sum, max float64
		for _, wl := range r.PerLayerWL {
			sum += wl
			if wl > max {
				max = wl
			}
		}
		if sum > 0 {
			mean := sum / float64(len(r.PerLayerWL))
			r.LayerBalance = max / mean
		}
	}
	return r
}

// percentileIndex returns the nearest-rank index of the p-th percentile in a
// sorted sample of n elements: ceil(p·n)-1. The previous floor formulation
// (n·9/10) over-shot small samples — e.g. n=5 gave index 4, the maximum.
func percentileIndex(n int, p float64) int {
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// isOctilinear reports whether a direction (degrees in [0, 180)) lies on an
// X-architecture orientation within ±1°.
func isOctilinear(deg float64) bool {
	for _, o := range []float64{0, 45, 90, 135, 180} {
		if math.Abs(deg-o) <= 1 {
			return true
		}
	}
	return false
}

// Print renders the report as text, including a compact angle histogram.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "nets %d, segments %d, vertices %d\n", r.Nets, r.Segments, r.Vertices)
	fmt.Fprintf(w, "wirelength %.0f µm", r.Wirelength)
	layers := make([]int, 0, len(r.PerLayerWL))
	for l := range r.PerLayerWL {
		layers = append(layers, l)
	}
	sort.Ints(layers)
	for _, l := range layers {
		fmt.Fprintf(w, "  L%d=%.0f", l, r.PerLayerWL[l])
	}
	fmt.Fprintln(w)
	vlayers := make([]int, 0, len(r.Vias))
	total := 0
	for l, c := range r.Vias {
		vlayers = append(vlayers, l)
		total += c
	}
	sort.Ints(vlayers)
	// V<k>-<k+1> labels the two wire layers joined by via layer k.
	fmt.Fprintf(w, "vias %d", total)
	for _, l := range vlayers {
		fmt.Fprintf(w, "  V%d-%d=%d", l, l+1, r.Vias[l])
	}
	fmt.Fprintln(w)
	if r.LayerBalance > 0 {
		fmt.Fprintf(w, "layer balance %.2f (max/mean per-layer wirelength)\n", r.LayerBalance)
	}
	fmt.Fprintf(w, "segment length p50 %.1f µm, p90 %.1f µm, max %.1f µm\n",
		r.SegLenP50, r.SegLenP90, r.SegLenMax)
	fmt.Fprintf(w, "octilinear segments %.1f%% (the rest are true any-angle)\n",
		r.OctilinearFrac*100)
	// Histogram sparkline: one char per 15° (3 buckets).
	max := 0
	for _, c := range r.AngleHist {
		if c > max {
			max = c
		}
	}
	if max > 0 {
		fmt.Fprint(w, "angle histogram (0°→180°, 5° buckets): ")
		glyphs := []byte(" .:-=+*#%@")
		for _, c := range r.AngleHist {
			g := c * (len(glyphs) - 1) / max
			fmt.Fprintf(w, "%c", glyphs[g])
		}
		fmt.Fprintln(w)
	}
}

// DistinctAngles returns how many 5° buckets are populated — a quick
// any-angle-ness score (an X-architecture result populates at most 4).
func (r *Report) DistinctAngles() int {
	n := 0
	for _, c := range r.AngleHist {
		if c > 0 {
			n++
		}
	}
	return n
}
