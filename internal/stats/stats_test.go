package stats

import (
	"context"
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/geom"
	"rdlroute/internal/router"
	"rdlroute/internal/xarch"
)

func mkRoute(net, layer int, pts ...geom.Point) *detail.Route {
	return &detail.Route{
		Net:  net,
		Segs: []detail.RouteSeg{{Layer: layer, Pl: geom.Polyline(pts)}},
	}
}

func TestAnalyzeBasics(t *testing.T) {
	routes := []*detail.Route{
		mkRoute(0, 0, geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10)), // 0° + 90°
		mkRoute(1, 1, geom.Pt(0, 0), geom.Pt(10, 3)),                  // ~16.7°
		nil,
	}
	r := Analyze(routes)
	if r.Nets != 2 {
		t.Errorf("nets = %d", r.Nets)
	}
	if r.Segments != 3 {
		t.Errorf("segments = %d", r.Segments)
	}
	wantWL := 10 + 10 + geom.Pt(0, 0).Dist(geom.Pt(10, 3))
	if !geom.ApproxEq(r.Wirelength, wantWL) {
		t.Errorf("wirelength = %v, want %v", r.Wirelength, wantWL)
	}
	if !geom.ApproxEq(r.PerLayerWL[0], 20) {
		t.Errorf("layer 0 WL = %v", r.PerLayerWL[0])
	}
	// 2 of 3 segments octilinear.
	if got := r.OctilinearFrac; got < 0.6 || got > 0.7 {
		t.Errorf("octilinear frac = %v", got)
	}
	// Angle buckets: 0°, 90°, 16.7° → three distinct.
	if r.DistinctAngles() != 3 {
		t.Errorf("distinct angles = %d", r.DistinctAngles())
	}
	if r.SegLenMax < 10 || r.SegLenP50 <= 0 {
		t.Errorf("percentiles wrong: %+v", r)
	}
}

func TestAnalyzeViaCounts(t *testing.T) {
	rt := mkRoute(0, 0, geom.Pt(0, 0), geom.Pt(10, 0))
	rt.Vias = []detail.ViaUse{{Pos: geom.Pt(10, 0), Layer: 0}, {Pos: geom.Pt(20, 0), Layer: 0}}
	r := Analyze([]*detail.Route{rt})
	if r.Vias[0] != 2 {
		t.Errorf("via count = %v", r.Vias)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze(nil)
	if r.Segments != 0 || r.Wirelength != 0 || r.DistinctAngles() != 0 {
		t.Errorf("empty analysis nonzero: %+v", r)
	}
	var sb strings.Builder
	r.Print(&sb) // must not panic
}

func TestPrintFormat(t *testing.T) {
	routes := []*detail.Route{mkRoute(0, 0, geom.Pt(0, 0), geom.Pt(100, 37))}
	var sb strings.Builder
	Analyze(routes).Print(&sb)
	out := sb.String()
	for _, want := range []string{"nets 1", "wirelength", "octilinear", "angle histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestAnyAngleVersusXarchHistogram is the quantitative core claim: the
// any-angle router populates many more direction buckets than the
// X-architecture baseline, whose segments collapse onto 4 orientations.
func TestAnyAngleVersusXarchHistogram(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	ours, err := router.Route(context.Background(), d, router.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	cai, err := xarch.Route(context.Background(), d2, xarch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra := Analyze(ours.DetailResult.Routes)
	rc := Analyze(cai.DetailResult.Routes)
	if rc.OctilinearFrac < 0.99 {
		t.Errorf("X-architecture octilinear fraction = %v, want ~1", rc.OctilinearFrac)
	}
	if ra.OctilinearFrac > 0.8 {
		t.Errorf("any-angle octilinear fraction = %v, want well below 1", ra.OctilinearFrac)
	}
	if ra.DistinctAngles() <= rc.DistinctAngles() {
		t.Errorf("any-angle %d distinct buckets vs X-arch %d",
			ra.DistinctAngles(), rc.DistinctAngles())
	}
	t.Logf("any-angle: %d distinct 5° buckets, %.1f%% octilinear; X-arch: %d buckets, %.1f%% octilinear",
		ra.DistinctAngles(), ra.OctilinearFrac*100, rc.DistinctAngles(), rc.OctilinearFrac*100)
}

// TestSegLenP90NearestRank is the regression test for the nearest-rank
// off-by-one: the old floor formula lengths[n*9/10] over-shot small samples
// (n=5 gave index 4, the maximum; n=10 gave index 9 instead of 8). The
// nearest-rank definition is ceil(0.9·n)-1.
func TestSegLenP90NearestRank(t *testing.T) {
	// One route per case: a horizontal polyline with n segments of lengths
	// 1, 2, ..., n (already sorted once Analyze collects them).
	build := func(n int) []*detail.Route {
		pts := []geom.Point{geom.Pt(0, 0)}
		x := 0.0
		for i := 1; i <= n; i++ {
			x += float64(i)
			pts = append(pts, geom.Pt(x, 0))
		}
		return []*detail.Route{mkRoute(0, 0, pts...)}
	}
	cases := []struct {
		n    int
		want float64 // value at index ceil(0.9n)-1 in 1..n
	}{
		{1, 1},   // ceil(0.9)-1 = 0
		{5, 5},   // ceil(4.5)-1 = 4
		{10, 9},  // ceil(9)-1 = 8; the floor formula returned 10 (the max)
		{11, 10}, // ceil(9.9)-1 = 9
	}
	for _, c := range cases {
		r := Analyze(build(c.n))
		if !geom.ApproxEq(r.SegLenP90, c.want) {
			t.Errorf("n=%d: p90 = %v, want %v", c.n, r.SegLenP90, c.want)
		}
	}
}

func TestPercentileIndex(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {5, 4}, {10, 8}, {11, 9}, {100, 89},
	}
	for _, c := range cases {
		if got := percentileIndex(c.n, 0.9); got != c.want {
			t.Errorf("percentileIndex(%d, 0.9) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLayerBalance(t *testing.T) {
	// Layer 0 carries 30 µm, layer 1 carries 10 µm: max/mean = 30/20.
	routes := []*detail.Route{
		mkRoute(0, 0, geom.Pt(0, 0), geom.Pt(30, 0)),
		mkRoute(1, 1, geom.Pt(0, 0), geom.Pt(10, 0)),
	}
	r := Analyze(routes)
	if !geom.ApproxEq(r.LayerBalance, 1.5) {
		t.Errorf("layer balance = %v, want 1.5", r.LayerBalance)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "layer balance 1.50") {
		t.Errorf("Print missing layer balance line:\n%s", sb.String())
	}
	if bal := Analyze(nil).LayerBalance; bal != 0 {
		t.Errorf("empty analysis balance = %v, want 0", bal)
	}
}

func TestViaTotal(t *testing.T) {
	rt := mkRoute(0, 0, geom.Pt(0, 0), geom.Pt(10, 0))
	rt.Vias = []detail.ViaUse{{Pos: geom.Pt(10, 0), Layer: 0}, {Pos: geom.Pt(20, 0), Layer: 1}}
	r := Analyze([]*detail.Route{rt})
	if r.ViaTotal != 2 || r.Vias[0] != 1 || r.Vias[1] != 1 {
		t.Errorf("via accounting: total %d, map %v", r.ViaTotal, r.Vias)
	}
}
