package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/obs"
	"rdlroute/internal/router"
)

// Priority orders jobs within the queue: all queued High jobs run before
// any Normal job, which run before any Low job; within a priority jobs run
// in submission order.
type Priority int

const (
	// Low suits background sweeps that should yield to interactive work.
	Low Priority = iota
	// Normal is the default.
	Normal
	// High jumps the queue; interactive requests and small re-routes.
	High
)

// ParsePriority maps the wire names "low", "normal", "high" (and "") to a
// Priority.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "low":
		return Low, nil
	case "", "normal":
		return Normal, nil
	case "high":
		return High, nil
	}
	return Normal, fmt.Errorf("serve: unknown priority %q", s)
}

// String returns the wire name.
func (p Priority) String() string {
	switch p {
	case Low:
		return "low"
	case High:
		return "high"
	}
	return "normal"
}

// State is a job's position in its lifecycle:
//
//	queued → running → done | failed | cancelled
//	queued → cancelled                 (cancelled before a worker picked it up)
//	       → done (cache_hit)          (submitted, answered from the cache)
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one routing request inside the engine. All methods are safe for
// concurrent use.
type Job struct {
	id       string
	key      string
	priority Priority
	d        *design.Design
	spec     router.OptionsSpec

	// collect receives this job's pipeline events; the worker fans it
	// together with the engine-wide sinks into the run's recorder.
	collect *obs.Collector

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	state     State
	cacheHit  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	out       *router.Output
	err       error
}

// ID returns the engine-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Key returns the content-addressed cache key of the job's (design,
// options) pair.
func (j *Job) Key() string { return j.key }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal or ctx ends.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Result returns the routing output once the job is done. The output of a
// cache hit is shared with every other job that hit the same key: treat it
// as read-only. Calling Result before the job is terminal returns
// ErrNotFinished.
func (j *Job) Result() (*router.Output, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, ErrNotFinished
	}
	return j.out, j.err
}

// StageSeconds returns the per-stage wall-clock breakdown of the job's own
// run; empty for cache hits, which ran no stages.
func (j *Job) StageSeconds() map[string]float64 {
	return j.collect.StageSeconds()
}

// JobStatus is the JSON snapshot served by GET /v1/jobs/{id}.
type JobStatus struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Priority string `json:"priority"`
	Design   string `json:"design"`
	Nets     int    `json:"nets"`
	CacheHit bool   `json:"cache_hit"`
	// SubmittedAt is RFC 3339 with sub-second precision.
	SubmittedAt time.Time `json:"submitted_at"`
	// WaitMS is time spent queued (so far, when still queued).
	WaitMS float64 `json:"wait_ms"`
	// RunMS is time spent routing (so far, when running; 0 for cache hits).
	RunMS float64 `json:"run_ms"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Metrics is set once the job is done.
	Metrics *router.Metrics `json:"metrics,omitempty"`
}

// Status returns a snapshot of the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Priority:    j.priority.String(),
		Design:      j.d.Name,
		Nets:        len(j.d.Nets),
		CacheHit:    j.cacheHit,
		SubmittedAt: j.submitted,
	}
	switch {
	case j.state == StateQueued:
		st.WaitMS = ms(time.Since(j.submitted))
	case j.started.IsZero(): // terminal without ever running (cache hit, early cancel)
		st.WaitMS = ms(j.finished.Sub(j.submitted))
	default:
		st.WaitMS = ms(j.started.Sub(j.submitted))
		if j.state == StateRunning {
			st.RunMS = ms(time.Since(j.started))
		} else {
			st.RunMS = ms(j.finished.Sub(j.started))
		}
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == StateDone && j.out != nil {
		m := j.out.Metrics
		st.Metrics = &m
	}
	return st
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// markRunning flips a queued job to running; it fails when the job was
// cancelled while queued, telling the worker to skip it.
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	//rdl:allow detrand job lifecycle timestamp: reported in the job status API, never used in routing
	j.started = time.Now()
	return true
}

// finish records the outcome and wakes waiters. The terminal state derives
// from err: nil → done, context cancellation → cancelled, else failed.
func (j *Job) finish(out *router.Output, err error, state State) {
	j.mu.Lock()
	j.state = state
	j.out = out
	j.err = err
	//rdl:allow detrand job lifecycle timestamp: reported in the job status API, never used in routing
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel() // release the job context's resources
	close(j.done)
}

// cancelQueued marks a still-queued job cancelled. Returns false when the
// job already left the queue.
func (j *Job) cancelQueued() bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateCancelled
	j.err = ErrCancelled
	//rdl:allow detrand job lifecycle timestamp: reported in the job status API, never used in routing
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel()
	close(j.done)
	return true
}

// snapshotState returns the current state.
func (j *Job) snapshotState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
