package serve

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueuePoppedJobsCollectable drives a long-lived lane — one that never
// drains, so the rewind-on-empty path never fires — and asserts that popped
// jobs become garbage-collectable (slots are released) and that periodic
// compaction keeps the backing array bounded. Before the head-index fix,
// pop resliced lane[1:], which pinned every job slot ever queued for the
// lane's whole lifetime.
func TestQueuePoppedJobsCollectable(t *testing.T) {
	const cycles = 5000
	q := newQueue(cycles + 2)
	var finalized atomic.Int64

	// Seed the lane so it always holds one job: pop(i) returns the job
	// pushed in the previous cycle, never the one just pushed.
	if err := q.push(&Job{priority: Normal}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cycles; i++ {
		j := &Job{priority: Normal}
		runtime.SetFinalizer(j, func(*Job) { finalized.Add(1) })
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
		if _, ok := q.pop(); !ok {
			t.Fatal("pop failed on non-empty queue")
		}
	}
	if n := q.len(); n != 1 {
		t.Fatalf("queue length = %d, want 1", n)
	}

	// All but the last popped job (which may still be referenced by the
	// loop frame) and the one still queued must be collectable.
	deadline := time.Now().Add(5 * time.Second)
	for finalized.Load() < cycles-2 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
	}
	if n := finalized.Load(); n < cycles-2 {
		t.Errorf("only %d of %d popped jobs were finalized; queue pins released jobs", n, cycles)
	}

	q.mu.Lock()
	c := cap(q.lanes[Normal])
	q.mu.Unlock()
	if c > 16*laneCompactAt {
		t.Errorf("lane backing array grew to cap %d over %d cycles; compaction not bounding memory", c, cycles)
	}
}

// TestQueueFIFOAcrossCompaction checks that compaction and head rewinding
// never reorder a lane: jobs come out in push order per priority, high
// priority first.
func TestQueueFIFOAcrossCompaction(t *testing.T) {
	const n = 500
	q := newQueue(2 * n)
	for i := 0; i < n; i++ {
		if err := q.push(&Job{id: fmt.Sprintf("lo-%03d", i), priority: Normal}); err != nil {
			t.Fatal(err)
		}
		if err := q.push(&Job{id: fmt.Sprintf("hi-%03d", i), priority: High}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		j, ok := q.pop()
		if !ok || j.id != fmt.Sprintf("hi-%03d", i) {
			t.Fatalf("pop %d = %v, want hi-%03d", i, j.id, i)
		}
	}
	for i := 0; i < n; i++ {
		j, ok := q.pop()
		if !ok || j.id != fmt.Sprintf("lo-%03d", i) {
			t.Fatalf("pop %d = %v, want lo-%03d", i, j.id, i)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty: %d", q.len())
	}
}
