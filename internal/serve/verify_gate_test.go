package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/router"
	"rdlroute/internal/verify"
)

// stubVerifyRoute fabricates a routed Output whose verification gate found
// one planted spacing problem: warn mode attaches the report, strict mode
// fails with a *router.VerifyError, off stays clean.
func stubVerifyRoute() RouteFunc {
	return func(ctx context.Context, d *design.Design, opt router.Options) (*router.Output, error) {
		out := &router.Output{Design: d}
		out.Metrics.TotalNets = len(d.Nets)
		out.Metrics.RoutedNets = len(d.Nets)
		out.Metrics.Routability = 1
		if opt.Verify == router.VerifyOff {
			return out, nil
		}
		rep := &verify.Report{
			CheckedNets: len(d.Nets),
			Problems: []verify.Problem{{
				Kind: verify.RuleViolation, Net: 0, Other: 1,
				Where: geom.Pt(10, 20), Msg: "planted spacing finding",
			}},
		}
		out.VerifyReport = rep
		out.Metrics.VerifyFindings = len(rep.Problems)
		if opt.Verify == router.VerifyStrict {
			return out, &router.VerifyError{Report: rep}
		}
		return out, nil
	}
}

func TestVerifyStrictJobFailsAndCounts(t *testing.T) {
	e := New(Config{Workers: 1, Route: stubVerifyRoute()})
	defer e.Close()

	j, err := e.Submit(Request{Design: testDesign(1), Spec: router.OptionsSpec{Verify: router.VerifyStrict}})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := j.Status()
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	out, err := j.Result()
	if !errors.Is(err, router.ErrVerifyFailed) {
		t.Fatalf("result error = %v, want ErrVerifyFailed", err)
	}
	var verr *router.VerifyError
	if !errors.As(err, &verr) || len(verr.Report.Problems) != 1 {
		t.Fatalf("error does not carry the problem list: %v", err)
	}
	if out == nil || out.VerifyReport == nil {
		t.Fatal("failed job lost its partial output/report")
	}
	if n := e.Metrics().Counter(CtrVerifyFailed); n != 1 {
		t.Errorf("%s = %d, want 1", CtrVerifyFailed, n)
	}
	if n := e.Metrics().Counter(CtrFailed); n != 1 {
		t.Errorf("%s = %d, want 1", CtrFailed, n)
	}

	// Warn mode: same findings, but the job completes.
	j, err = e.Submit(Request{Design: testDesign(1), Spec: router.OptionsSpec{Verify: router.VerifyWarn}})
	if err != nil {
		t.Fatal(err)
	}
	_ = j.Wait(context.Background())
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("warn-mode state = %s, want done", st.State)
	}
	if n := e.Metrics().Counter(CtrVerifyFailed); n != 1 {
		t.Errorf("warn mode bumped %s to %d", CtrVerifyFailed, n)
	}
}

func TestVerifyModeNormalizedForCacheKey(t *testing.T) {
	e := New(Config{Workers: 1, Route: stubRoute(nil)})
	defer e.Close()

	a, err := e.Submit(Request{Design: testDesign(2), Spec: router.OptionsSpec{Verify: "off"}})
	if err != nil {
		t.Fatal(err)
	}
	_ = a.Wait(context.Background())
	b, err := e.Submit(Request{Design: testDesign(2)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("verify \"off\" and zero spec hash differently: %s vs %s", a.Key(), b.Key())
	}
	if _, err := e.Submit(Request{Design: testDesign(2), Spec: router.OptionsSpec{Verify: "bogus"}}); err == nil {
		t.Error("unknown verify mode accepted")
	}
}

func TestHTTPVerifyField(t *testing.T) {
	e := New(Config{Workers: 1, Route: stubVerifyRoute()})
	defer e.Close()
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	dj := designJSON(t, testDesign(3))

	// Unknown mode is a 400.
	if _, code := postBody(t, ts, `{"design": `+dj+`, "verify": "sometimes"}`, ""); code != 400 {
		t.Fatalf("bad verify mode: status %d, want 400", code)
	}

	// Strict submission fails verification; the result JSON carries the
	// findings and /metricsz counts the failure.
	sr, code := postBody(t, ts, `{"design": `+dj+`, "verify": "strict"}`, "?wait=1")
	if code != 200 {
		t.Fatalf("strict submit: status %d", code)
	}
	if sr.State != StateFailed {
		t.Fatalf("strict job state = %s, want failed", sr.State)
	}

	var res struct {
		resultResponse
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sr.ID+"/result", &res); code != 200 {
		t.Fatalf("result: status %d", code)
	}
	if res.Verify == nil || res.Verify.OK || len(res.Verify.Findings) != 1 {
		t.Fatalf("result verify section wrong: %+v", res.Verify)
	}
	f := res.Verify.Findings[0]
	if f.Kind != "rule" || f.Msg != "planted spacing finding" || f.X != 10 || f.Y != 20 {
		t.Errorf("finding JSON wrong: %+v", f)
	}
	if res.Verify.Counts["rule"] != 1 {
		t.Errorf("counts wrong: %+v", res.Verify.Counts)
	}

	var stats Stats
	if code := getJSON(t, ts.URL+"/metricsz", &stats); code != 200 {
		t.Fatalf("metricsz: status %d", code)
	}
	if stats.Counters[CtrVerifyFailed] != 1 {
		t.Errorf("metricsz %s = %d, want 1", CtrVerifyFailed, stats.Counters[CtrVerifyFailed])
	}

	// Warn mode completes with the report attached.
	sr, code = postBody(t, ts, `{"design": `+dj+`, "verify": "warn"}`, "?wait=1")
	if code != 200 || sr.State != StateDone {
		t.Fatalf("warn submit: status %d state %s", code, sr.State)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sr.ID+"/result", &res); code != 200 {
		t.Fatalf("warn result: status %d", code)
	}
	if res.Verify == nil || res.Verify.OK || len(res.Verify.Findings) != 1 {
		t.Fatalf("warn result verify section wrong: %+v", res.Verify)
	}
}

func designJSON(t *testing.T, d *design.Design) string {
	t.Helper()
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// postBody submits a raw JSON body and returns the decoded response.
func postBody(t *testing.T, ts *httptest.Server, body, query string) (submitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &sr)
	return sr, resp.StatusCode
}
