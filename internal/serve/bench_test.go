package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/router"
)

// benchResults accumulates the last (largest-N) run of every sub-benchmark;
// TestMain writes them as BENCH_serve.json when BENCH_SERVE_OUT is set
// (`make bench-serve`), starting the serving-layer perf trajectory.
var benchResults = struct {
	mu sync.Mutex
	m  map[string]benchResult
}{m: make(map[string]benchResult)}

type benchResult struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	Mode       string  `json:"mode"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	MsPerJob   float64 `json:"ms_per_job"`
	N          int     `json:"n"`
}

func recordBench(r benchResult) {
	benchResults.mu.Lock()
	benchResults.m[r.Name] = r
	benchResults.mu.Unlock()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_SERVE_OUT"); path != "" && code == 0 {
		benchResults.mu.Lock()
		out := make([]benchResult, 0, len(benchResults.m))
		for _, r := range benchResults.m {
			out = append(out, r)
		}
		benchResults.mu.Unlock()
		// Canonical name order: map iteration would shuffle the file between
		// runs and bury real regressions in spurious diffs.
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		if len(out) > 0 {
			b, err := json.MarshalIndent(out, "", " ")
			if err == nil {
				err = os.WriteFile(path, append(b, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench json: %v\n", err)
				code = 1
			}
		}
	}
	os.Exit(code)
}

// BenchmarkServeThroughput measures end-to-end engine throughput (submit →
// route → terminal) through the real pipeline on a small design, across
// pool sizes, cold (every job a distinct cache key) and hot (every job the
// same key, served from cache).
func BenchmarkServeThroughput(b *testing.B) {
	d, err := design.GenerateRandom(design.RandomSpec{Seed: 11, Chips: 2, NetsPerChannel: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, mode := range []string{"cold", "cachehit"} {
			name := fmt.Sprintf("pool%d/%s", workers, mode)
			b.Run(name, func(b *testing.B) {
				benchThroughput(b, d, workers, mode)
				recordBench(benchResult{
					Name:       name,
					Workers:    workers,
					Mode:       mode,
					JobsPerSec: float64(b.N) / b.Elapsed().Seconds(),
					MsPerJob:   b.Elapsed().Seconds() * 1000 / float64(b.N),
					N:          b.N,
				})
			})
		}
	}
}

func benchThroughput(b *testing.B, d *design.Design, workers int, mode string) {
	e := New(Config{
		Workers: workers,
		// The queue must absorb the whole burst: the benchmark measures
		// routing throughput, not admission control.
		QueueCapacity: b.N + 1,
		CacheEntries:  b.N + 2,
	})
	defer e.Close()

	spec := router.OptionsSpec{}
	if mode == "cachehit" {
		// Prime the cache so every measured submission hits.
		j, err := e.Submit(Request{Design: d, Spec: spec})
		if err != nil {
			b.Fatal(err)
		}
		if err := j.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	jobs := make([]*Job, b.N)
	for i := 0; i < b.N; i++ {
		if mode == "cold" {
			// A distinct via-plan seed gives every job a distinct cache
			// key over the same design — the cold path of a sweep.
			spec.Via.Seed = int64(i + 1)
		}
		j, err := e.Submit(Request{Design: d, Spec: spec})
		if err != nil {
			b.Fatal(err)
		}
		jobs[i] = j
	}
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, j := range jobs {
		st := j.Status()
		if st.State != StateDone {
			b.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
		}
		if mode == "cachehit" && !st.CacheHit {
			b.Fatal("cachehit mode missed the cache")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}
