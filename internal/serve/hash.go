package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"rdlroute/internal/design"
	"rdlroute/internal/router"
)

// Key returns the content-addressed cache key of a routing request: a
// sha256 over the canonical JSON of the design and of the options spec,
// each length-prefixed so the concatenation is unambiguous. Two requests
// share a key exactly when they describe the same routing problem under the
// same deterministic configuration — recorders and callbacks are excluded
// by construction (see router.OptionsSpec).
func Key(d *design.Design, spec router.OptionsSpec) (string, error) {
	db, err := d.CanonicalJSON()
	if err != nil {
		return "", err
	}
	ob, err := spec.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(db)))
	h.Write(n[:])
	h.Write(db)
	binary.LittleEndian.PutUint64(n[:], uint64(len(ob)))
	h.Write(n[:])
	h.Write(ob)
	return hex.EncodeToString(h.Sum(nil)), nil
}
