package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"encoding/json"

	"rdlroute/internal/design"
	"rdlroute/internal/portfolio"
	"rdlroute/internal/router"
)

// TestHTTPOrderingPortfolioFields pins the top-level "ordering" and
// "portfolio" shorthands: they reach the router as Options.Ordering /
// Options.Portfolio (canonicalized by Validate), win over the options
// fields, and invalid strategy names are rejected before admission.
func TestHTTPOrderingPortfolioFields(t *testing.T) {
	type seenOpt struct {
		ordering  string
		portfolio []string
	}
	var seen []seenOpt
	e := New(Config{Workers: 1, Route: func(ctx context.Context, d *design.Design, opt router.Options) (*router.Output, error) {
		seen = append(seen, seenOpt{opt.Ordering, opt.Portfolio})
		return stubRoute(nil)(ctx, d, opt)
	}})
	defer e.Close()
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Distinct designs per submission so none of them cache-hit.
	dj := func(seed int) []byte {
		b, err := json.Marshal(testDesign(seed))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	if code := post(fmt.Sprintf(`{"design": %s, "ordering": "netlen"}`, dj(1))); code != http.StatusOK {
		t.Fatalf("top-level ordering: code = %d", code)
	}
	// Submission order canonicalizes: ["netlen","rudy"] arrives as
	// ["rudy","netlen"].
	if code := post(fmt.Sprintf(`{"design": %s, "portfolio": ["netlen", "rudy"]}`, dj(2))); code != http.StatusOK {
		t.Fatalf("top-level portfolio: code = %d", code)
	}
	// The shorthands win over the options fields when both are set.
	if code := post(fmt.Sprintf(`{"design": %s, "options": {"ordering": "rudy"}, "ordering": "anneal"}`, dj(3))); code != http.StatusOK {
		t.Fatalf("both ordering fields: code = %d", code)
	}
	if code := post(fmt.Sprintf(`{"design": %s, "options": {"portfolio": ["rudy"]}, "portfolio": ["anneal", "congestion"]}`, dj(4))); code != http.StatusOK {
		t.Fatalf("both portfolio fields: code = %d", code)
	}

	want := []seenOpt{
		{ordering: "netlen"},
		{portfolio: []string{"rudy", "netlen"}},
		{ordering: "anneal"},
		{portfolio: []string{"congestion", "anneal"}},
	}
	if len(seen) != len(want) {
		t.Fatalf("router ran %d times, want %d", len(seen), len(want))
	}
	for i, w := range want {
		got := seen[i]
		if got.ordering != w.ordering || fmt.Sprint(got.portfolio) != fmt.Sprint(w.portfolio) {
			t.Errorf("job %d: router saw %+v, want %+v", i, got, w)
		}
	}

	// Invalid configurations are rejected at admission, before queueing.
	if code := post(fmt.Sprintf(`{"design": %s, "ordering": "zigzag"}`, dj(5))); code != http.StatusBadRequest {
		t.Errorf("unknown ordering: code = %d, want 400", code)
	}
	if code := post(fmt.Sprintf(`{"design": %s, "portfolio": ["rudy", "zigzag"]}`, dj(6))); code != http.StatusBadRequest {
		t.Errorf("unknown portfolio strategy: code = %d, want 400", code)
	}
	if code := post(fmt.Sprintf(`{"design": %s, "ordering": "rudy", "portfolio": ["netlen"]}`, dj(7))); code != http.StatusBadRequest {
		t.Errorf("ordering+portfolio together: code = %d, want 400", code)
	}
}

// TestHTTPPortfolioResult pins the result payload of a portfolio job: one
// row per attempt in canonical order, the winner flagged, and failed
// attempts carrying their error string.
func TestHTTPPortfolioResult(t *testing.T) {
	e := New(Config{Workers: 1, Route: func(ctx context.Context, d *design.Design, opt router.Options) (*router.Output, error) {
		out, _ := stubRoute(nil)(ctx, d, opt)
		out.Metrics.PortfolioWinner = "netlen"
		out.Portfolio = []portfolio.Outcome{
			{Strategy: "rudy", OK: true, Routability: 0.9, Wirelength: 1200, Vias: 8},
			{Strategy: "netlen", OK: true, Routability: 1, Wirelength: 1100, Vias: 7},
			{Strategy: "anneal", Err: errors.New("attempt exploded")},
		}
		return out, nil
	}})
	defer e.Close()
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	sr, code := postDesign(t, ts, testDesign(1), "?wait=1")
	if code != http.StatusOK {
		t.Fatalf("submit: code = %d", code)
	}
	var res resultResponse
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sr.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: code = %d", code)
	}
	if len(res.Portfolio) != 3 {
		t.Fatalf("%d portfolio rows, want 3", len(res.Portfolio))
	}
	for i, want := range []string{"rudy", "netlen", "anneal"} {
		if res.Portfolio[i].Strategy != want {
			t.Errorf("row %d is %q, want %q", i, res.Portfolio[i].Strategy, want)
		}
	}
	if !res.Portfolio[1].Winner || res.Portfolio[0].Winner || res.Portfolio[2].Winner {
		t.Errorf("winner flags wrong: %+v", res.Portfolio)
	}
	if res.Portfolio[2].OK || res.Portfolio[2].Error != "attempt exploded" {
		t.Errorf("failed attempt row wrong: %+v", res.Portfolio[2])
	}
	if res.Portfolio[1].Routability != 1 || res.Portfolio[1].Wirelength != 1100 || res.Portfolio[1].Vias != 7 {
		t.Errorf("winner row score wrong: %+v", res.Portfolio[1])
	}
}

// TestHTTPSpeculationHitRate pins the /metricsz derivation: absent while
// the speculation counters are zero, hits/(hits+misses) once the global
// stage has recorded activity.
func TestHTTPSpeculationHitRate(t *testing.T) {
	e := New(Config{Workers: 1, Route: func(ctx context.Context, d *design.Design, opt router.Options) (*router.Output, error) {
		opt.Rec.Count("global.spec.hits", 3)
		opt.Rec.Count("global.spec.misses", 1)
		return stubRoute(nil)(ctx, d, opt)
	}})
	defer e.Close()
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	var before Stats
	if code := getJSON(t, ts.URL+"/metricsz", &before); code != http.StatusOK {
		t.Fatalf("metricsz: code = %d", code)
	}
	if before.SpeculationHitRate != nil {
		t.Errorf("speculation_hit_rate before any job: %v, want absent", *before.SpeculationHitRate)
	}

	if _, code := postDesign(t, ts, testDesign(1), "?wait=1"); code != http.StatusOK {
		t.Fatalf("submit: code = %d", code)
	}
	var after Stats
	if code := getJSON(t, ts.URL+"/metricsz", &after); code != http.StatusOK {
		t.Fatalf("metricsz: code = %d", code)
	}
	if after.SpeculationHitRate == nil {
		t.Fatal("speculation_hit_rate absent after speculative activity")
	}
	if got := *after.SpeculationHitRate; got != 0.75 {
		t.Errorf("speculation_hit_rate = %v, want 0.75", got)
	}
}
