package serve

import (
	"container/list"
	"sync"

	"rdlroute/internal/router"
)

// cache is the content-addressed LRU result cache. Keys are Key() hashes of
// (canonical design JSON, canonical options); values are the full
// router.Output of a completed run. Repeated submissions of the same design
// — the dominant pattern in net-ordering and parameter sweeps — hit here
// and skip the pipeline entirely.
//
// Cached outputs are shared across jobs and must be treated as read-only by
// every consumer.
type cache struct {
	mu      sync.Mutex
	entries int
	ll      *list.List // front = most recently used
	byKey   map[string]*list.Element
}

type cacheEntry struct {
	key string
	out *router.Output
}

// newCache returns an LRU cache holding at most entries results; entries
// <= 0 disables caching (every Get misses, Put drops).
func newCache(entries int) *cache {
	return &cache{
		entries: entries,
		ll:      list.New(),
		byKey:   make(map[string]*list.Element),
	}
}

// get returns the cached output for key, refreshing its recency.
func (c *cache) get(key string) (*router.Output, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

// put stores the output under key and returns how many entries were evicted
// to make room (0 or 1; 0 also covers the disabled cache and overwrites).
func (c *cache) put(key string, out *router.Output) (evicted int) {
	if c.entries <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).out = out
		c.ll.MoveToFront(el)
		return 0
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, out: out})
	for c.ll.Len() > c.entries {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// len returns the number of cached results.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
