// Package serve turns the one-shot routing pipeline into a service: a job
// engine that accepts design-routing requests, runs them on a bounded
// worker pool with per-job context deadlines, deduplicates repeated work
// through a content-addressed result cache, and reports itself through the
// obs layer.
//
// The shape mirrors an inference-serving stack. Admission control is the
// bounded priority queue (a full queue rejects with ErrQueueFull — HTTP
// 429 — instead of building unbounded backlog); the worker pool bounds
// concurrent pipeline runs; the LRU cache keyed by Key(design, options)
// makes net-ordering and parameter sweeps — many submissions of the same
// design — cost one route; Drain stops admission and lets in-flight work
// finish for graceful shutdown.
//
// Typical embedded use:
//
//	eng := serve.New(serve.Config{Workers: 4})
//	defer eng.Close()
//	job, err := eng.Submit(serve.Request{Design: d})
//	_ = job.Wait(ctx)
//	out, err := job.Result()
//
// NewHandler wraps an Engine into the HTTP/JSON API served by cmd/rdlserved.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/obs"
	"rdlroute/internal/router"
)

// Typed failures of the service surface. The HTTP layer maps them to status
// codes; embedded callers use errors.Is.
var (
	// ErrQueueFull rejects a submission against a saturated queue (429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects submissions after Drain or Close began (503).
	ErrDraining = errors.New("serve: engine draining")
	// ErrNotFound marks an unknown job ID (404).
	ErrNotFound = errors.New("serve: no such job")
	// ErrNotFinished marks a result request for a job that is not yet
	// terminal (409).
	ErrNotFinished = errors.New("serve: job not finished")
	// ErrCancelled is the terminal error of a cancelled job.
	ErrCancelled = errors.New("serve: job cancelled")
)

// RouteFunc is the routing backend the workers call; it exists so tests and
// benchmarks can substitute a synthetic router. The default is router.Route.
type RouteFunc func(ctx context.Context, d *design.Design, opt router.Options) (*router.Output, error)

// Config sizes the engine.
type Config struct {
	// Workers is the number of concurrent pipeline runs. Zero selects
	// GOMAXPROCS, capped at 4 (routing is CPU-bound; more workers than
	// cores just thrash).
	Workers int
	// QueueCapacity bounds the number of queued (not yet running) jobs.
	// Zero selects 64.
	QueueCapacity int
	// CacheEntries bounds the result cache; zero selects 128, negative
	// disables caching.
	CacheEntries int
	// DefaultTimeBudget applies to jobs whose options carry no budget, so
	// no request can hold a worker forever. Zero selects 30 s.
	DefaultTimeBudget time.Duration
	// Rec receives every job's pipeline events plus the engine's own
	// counters and gauges — typically an obs.JSONL trace sink shared by
	// the whole server. The engine always keeps its own Collector for
	// /metricsz regardless.
	Rec obs.Recorder
	// Route substitutes the routing backend; nil selects router.Route.
	Route RouteFunc
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 4 {
			c.Workers = 4
		}
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.DefaultTimeBudget <= 0 {
		c.DefaultTimeBudget = 30 * time.Second
	}
	if c.Route == nil {
		c.Route = router.Route
	}
	return c
}

// Request is one routing submission.
type Request struct {
	// Design is the problem to route. Submit validates it; the serving
	// layer treats it as immutable afterwards.
	Design *design.Design
	// Spec is the deterministic router configuration (zero = defaults).
	Spec router.OptionsSpec
	// Priority orders the job against other queued work.
	Priority Priority
}

// Counter and gauge names the engine exports through obs and /metricsz.
const (
	CtrSubmitted = "serve.jobs.submitted"
	CtrCompleted = "serve.jobs.completed"
	CtrFailed    = "serve.jobs.failed"
	// CtrVerifyFailed counts jobs that routed but failed the strict
	// verification gate (a subset of CtrFailed).
	CtrVerifyFailed = "serve.jobs.verify_failed"
	CtrCancelled    = "serve.jobs.cancelled"
	CtrRejected     = "serve.jobs.rejected"
	CtrCacheHit     = "serve.cache.hits"
	CtrCacheMiss    = "serve.cache.misses"
	CtrCacheEvict   = "serve.cache.evictions"
	GaugeQueue      = "serve.queue.depth"
	GaugeRunning    = "serve.jobs.running"
)

// Engine is the concurrent routing job engine. Create with New, stop with
// Drain (graceful) or Close (immediate). All methods are safe for
// concurrent use.
type Engine struct {
	cfg     Config
	metrics *obs.Collector
	rec     obs.Recorder // metrics + cfg.Rec fan-out
	q       *queue
	results *cache

	baseCtx context.Context
	stopAll context.CancelFunc

	workers sync.WaitGroup // worker goroutines
	inFly   sync.WaitGroup // accepted jobs not yet terminal

	mu       sync.Mutex
	jobs     map[string]*Job
	seq      int64
	draining bool
	running  int
}

// New starts an engine with cfg.Workers workers already polling the queue.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:     cfg,
		metrics: obs.NewCollector(),
		q:       newQueue(cfg.QueueCapacity),
		results: newCache(cfg.CacheEntries),
		jobs:    make(map[string]*Job),
	}
	e.rec = obs.Multi(e.metrics, cfg.Rec)
	e.baseCtx, e.stopAll = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		e.workers.Add(1)
		go e.worker()
	}
	return e
}

// Submit validates and admits one request. Cache hits complete the returned
// job immediately (its State is already StateDone with CacheHit set); cache
// misses enqueue it. A saturated queue fails with ErrQueueFull, a draining
// engine with ErrDraining, an invalid design with the design package's
// typed validation error.
func (e *Engine) Submit(req Request) (*Job, error) {
	if req.Design == nil {
		return nil, errors.New("serve: nil design")
	}
	if err := req.Design.Validate(); err != nil {
		return nil, err
	}
	// Normalizes enum aliases (verify "off" → "") so equivalent requests
	// share a cache key, and rejects unknown modes before queueing.
	if err := req.Spec.Validate(); err != nil {
		return nil, err
	}
	key, err := Key(req.Design, req.Spec)
	if err != nil {
		return nil, fmt.Errorf("serve: cache key: %w", err)
	}

	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return nil, ErrDraining
	}
	e.seq++
	id := fmt.Sprintf("j%06d", e.seq)
	e.mu.Unlock()

	jctx, jcancel := context.WithCancel(e.baseCtx)
	j := &Job{
		id:       id,
		key:      key,
		priority: req.Priority,
		d:        req.Design,
		spec:     req.Spec,
		collect:  obs.NewCollector(),
		ctx:      jctx,
		cancel:   jcancel,
		done:     make(chan struct{}),
		state:    StateQueued,
		//rdl:allow detrand job lifecycle timestamp: reported in the job status API, never used in routing
		submitted: time.Now(),
	}

	if out, ok := e.results.get(key); ok {
		j.mu.Lock()
		j.cacheHit = true
		j.mu.Unlock()
		j.finish(out, nil, StateDone)
		e.register(j)
		e.rec.Count(CtrSubmitted, 1)
		e.rec.Count(CtrCacheHit, 1)
		e.rec.Count(CtrCompleted, 1)
		return j, nil
	}

	e.inFly.Add(1)
	if err := e.q.push(j); err != nil {
		e.inFly.Done()
		jcancel()
		if errors.Is(err, ErrQueueFull) {
			e.rec.Count(CtrRejected, 1)
		}
		return nil, err
	}
	e.register(j)
	e.rec.Count(CtrSubmitted, 1)
	e.rec.Count(CtrCacheMiss, 1)
	e.rec.Gauge(GaugeQueue, float64(e.q.len()))
	return j, nil
}

func (e *Engine) register(j *Job) {
	e.mu.Lock()
	e.jobs[j.id] = j
	e.mu.Unlock()
}

// Job returns the job with the given ID.
func (e *Engine) Job(id string) (*Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel stops the job with the given ID: queued jobs become cancelled
// without running; running jobs get their context cancelled and finish as
// cancelled with the partial result the pipeline returns. Cancelling a
// terminal job is a no-op.
func (e *Engine) Cancel(id string) (JobStatus, error) {
	j, err := e.Job(id)
	if err != nil {
		return JobStatus{}, err
	}
	if j.cancelQueued() {
		e.inFly.Done()
		e.rec.Count(CtrCancelled, 1)
		return j.Status(), nil
	}
	// Running (or already terminal): cancelling the context is harmless
	// either way; the worker accounts for the terminal transition.
	j.cancel()
	return j.Status(), nil
}

// worker is the pool loop: pop, route, publish, repeat.
func (e *Engine) worker() {
	defer e.workers.Done()
	for {
		j, ok := e.q.pop()
		if !ok {
			return
		}
		e.rec.Gauge(GaugeQueue, float64(e.q.len()))
		if !j.markRunning() {
			// Cancelled while queued; Cancel already accounted for it.
			continue
		}
		e.setRunning(+1)
		e.runJob(j)
		e.setRunning(-1)
		e.inFly.Done()
	}
}

func (e *Engine) runJob(j *Job) {
	opt := j.spec.Options()
	if opt.TimeBudget <= 0 {
		opt.TimeBudget = e.cfg.DefaultTimeBudget
	}
	// Per-request recorder: the job's own collector (stage breakdown in
	// the result) fanned together with the engine-wide sinks (JSONL trace,
	// /metricsz collector).
	opt.Rec = obs.Multi(j.collect, e.rec)

	out, err := e.cfg.Route(j.ctx, j.d, opt)
	switch {
	case err == nil:
		// Deterministic, complete-or-timed-out result. Only runs the
		// budget did not cut short are cacheable: a timed-out partial
		// result depends on machine load, not just on the request.
		if out != nil && !out.Metrics.TimedOut {
			if ev := e.results.put(j.key, out); ev > 0 {
				e.rec.Count(CtrCacheEvict, int64(ev))
			}
		}
		j.finish(out, nil, StateDone)
		e.rec.Count(CtrCompleted, 1)
	case errors.Is(err, context.Canceled), errors.Is(err, ErrCancelled):
		j.finish(out, ErrCancelled, StateCancelled)
		e.rec.Count(CtrCancelled, 1)
	default:
		j.finish(out, err, StateFailed)
		e.rec.Count(CtrFailed, 1)
		if errors.Is(err, router.ErrVerifyFailed) {
			e.rec.Count(CtrVerifyFailed, 1)
		}
	}
}

func (e *Engine) setRunning(delta int) {
	e.mu.Lock()
	e.running += delta
	r := e.running
	e.mu.Unlock()
	e.rec.Gauge(GaugeRunning, float64(r))
}

// Drain gracefully shuts the engine down: new submissions fail with
// ErrDraining, queued and running jobs finish, workers exit. It returns nil
// once everything completed, or ctx.Err() after cancelling all remaining
// work because ctx expired first.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		e.inFly.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = ctx.Err()
		e.stopAll() // cancel running jobs; queued ones fail fast below
		e.cancelQueue()
		<-finished
	}
	e.q.close()
	e.workers.Wait()
	return err
}

// Close stops the engine immediately: running jobs are cancelled, queued
// jobs become cancelled without running. Safe to call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()
	e.stopAll()
	e.cancelQueue()
	e.q.close()
	e.workers.Wait()
}

// cancelQueue cancels every job still in the queued state.
func (e *Engine) cancelQueue() {
	e.mu.Lock()
	queued := make([]*Job, 0)
	for _, j := range e.jobs {
		if j.snapshotState() == StateQueued {
			queued = append(queued, j)
		}
	}
	e.mu.Unlock()
	for _, j := range queued {
		if j.cancelQueued() {
			e.inFly.Done()
			e.rec.Count(CtrCancelled, 1)
		}
	}
}

// Stats is the /metricsz snapshot.
type Stats struct {
	Workers    int  `json:"workers"`
	QueueDepth int  `json:"queue_depth"`
	QueueCap   int  `json:"queue_capacity"`
	Running    int  `json:"running"`
	Jobs       int  `json:"jobs"`
	CacheSize  int  `json:"cache_size"`
	CacheCap   int  `json:"cache_capacity"`
	Draining   bool `json:"draining"`
	// Counters holds the engine counter totals (see the Ctr* names) plus
	// any counters recorded by pipeline stages.
	Counters map[string]int64 `json:"counters"`
	// Gauges holds last-written gauge values.
	Gauges map[string]float64 `json:"gauges"`
	// SpeculationHitRate is hits/(hits+misses) of the global stage's
	// speculative multi-net searches, aggregated across jobs; absent until
	// a parallel global run has recorded speculation activity.
	SpeculationHitRate *float64 `json:"speculation_hit_rate,omitempty"`
}

// Stats returns a consistent snapshot of the engine.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		Workers:  e.cfg.Workers,
		QueueCap: e.cfg.QueueCapacity,
		Running:  e.running,
		Jobs:     len(e.jobs),
		CacheCap: e.cfg.CacheEntries,
		Draining: e.draining,
	}
	e.mu.Unlock()
	s.QueueDepth = e.q.len()
	s.CacheSize = e.results.len()
	s.Counters = e.metrics.Counters()
	s.Gauges = e.metrics.Gauges()
	hits, misses := s.Counters["global.spec.hits"], s.Counters["global.spec.misses"]
	if total := hits + misses; total > 0 {
		rate := float64(hits) / float64(total)
		s.SpeculationHitRate = &rate
	}
	return s
}

// Metrics exposes the engine's collector, e.g. for tests asserting on
// cache-hit counters.
func (e *Engine) Metrics() *obs.Collector { return e.metrics }
