package serve

import "sync"

// queue is the bounded, priority-ordered job queue feeding the worker pool.
// Push never blocks: a full queue is the caller's problem (ErrQueueFull →
// HTTP 429), which is the backpressure contract of the service. Pop blocks
// until a job arrives or the queue is closed.
type queue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	capacity int
	closed   bool
	// lanes[p] is the FIFO of queued jobs at Priority p.
	lanes [High + 1][]*Job
}

func newQueue(capacity int) *queue {
	q := &queue{capacity: capacity}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// push appends the job to its priority lane. It fails with ErrQueueFull at
// capacity and ErrDraining after close.
func (q *queue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if q.lenLocked() >= q.capacity {
		return ErrQueueFull
	}
	q.lanes[j.priority] = append(q.lanes[j.priority], j)
	q.notEmpty.Signal()
	return nil
}

// pop removes the highest-priority oldest job, blocking while the queue is
// empty. ok is false once the queue is closed and drained.
func (q *queue) pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for p := High; p >= Low; p-- {
			if lane := q.lanes[p]; len(lane) > 0 {
				j = lane[0]
				lane[0] = nil // let the job be collected once finished
				q.lanes[p] = lane[1:]
				return j, true
			}
		}
		if q.closed {
			return nil, false
		}
		q.notEmpty.Wait()
	}
}

// close stops the queue: pushes fail, and pops return ok=false once the
// remaining jobs are drained.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
}

// len returns the number of queued jobs.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lenLocked()
}

func (q *queue) lenLocked() int {
	n := 0
	for _, lane := range q.lanes {
		n += len(lane)
	}
	return n
}
