package serve

import "sync"

// queue is the bounded, priority-ordered job queue feeding the worker pool.
// Push never blocks: a full queue is the caller's problem (ErrQueueFull →
// HTTP 429), which is the backpressure contract of the service. Pop blocks
// until a job arrives or the queue is closed.
type queue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	capacity int
	closed   bool
	// lanes[p] holds the queued jobs at Priority p; the live window is
	// lanes[p][heads[p]:]. Popping advances the head instead of reslicing
	// so the backing array's spare front capacity is reclaimed by the
	// periodic compaction below — a plain lane[1:] reslice would pin every
	// job slot ever queued for as long as the lane stays non-empty.
	lanes [High + 1][]*Job
	heads [High + 1]int
}

// laneCompactAt is the popped-slot count past which a lane is compacted
// (once the dead prefix also outweighs the live tail). Compaction is a
// copy of the live window to the array's front, so the amortized cost per
// pop stays O(1) while the backing array stays O(live + laneCompactAt).
const laneCompactAt = 32

func newQueue(capacity int) *queue {
	q := &queue{capacity: capacity}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// push appends the job to its priority lane. It fails with ErrQueueFull at
// capacity and ErrDraining after close.
func (q *queue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if q.lenLocked() >= q.capacity {
		return ErrQueueFull
	}
	q.lanes[j.priority] = append(q.lanes[j.priority], j)
	q.notEmpty.Signal()
	return nil
}

// pop removes the highest-priority oldest job, blocking while the queue is
// empty. ok is false once the queue is closed and drained.
func (q *queue) pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for p := High; p >= Low; p-- {
			lane, head := q.lanes[p], q.heads[p]
			if head >= len(lane) {
				continue
			}
			j = lane[head]
			lane[head] = nil // release the slot so the job is collectable
			head++
			switch {
			case head == len(lane):
				// Lane drained: rewind to reuse the backing array from the
				// front.
				q.lanes[p], q.heads[p] = lane[:0], 0
			case head >= laneCompactAt && head*2 >= len(lane):
				// The dead prefix outweighs the live tail: slide the live
				// jobs down and drop the stale capacity beyond them.
				n := copy(lane, lane[head:])
				for i := n; i < len(lane); i++ {
					lane[i] = nil
				}
				q.lanes[p], q.heads[p] = lane[:n], 0
			default:
				q.heads[p] = head
			}
			return j, true
		}
		if q.closed {
			return nil, false
		}
		q.notEmpty.Wait()
	}
}

// close stops the queue: pushes fail, and pops return ok=false once the
// remaining jobs are drained.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
}

// len returns the number of queued jobs.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lenLocked()
}

func (q *queue) lenLocked() int {
	n := 0
	for p, lane := range q.lanes {
		n += len(lane) - q.heads[p]
	}
	return n
}
