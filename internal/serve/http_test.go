package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/router"
)

// postDesign submits the design (with an empty options object) and returns
// the decoded response and status code.
func postDesign(t *testing.T, ts *httptest.Server, d *design.Design, query string) (submitResponse, int) {
	t.Helper()
	dj, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"design": %s}`, dj)
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &sr)
	return sr, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPSubmitWaitAndResult(t *testing.T) {
	e := New(Config{Workers: 2, Route: stubRoute(nil)})
	defer e.Close()
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	// Submit with ?wait=1: response is the terminal status.
	sr, code := postDesign(t, ts, testDesign(1), "?wait=1")
	if code != http.StatusOK {
		t.Fatalf("submit code = %d", code)
	}
	if sr.State != StateDone || sr.CacheHit {
		t.Fatalf("first submit: %+v", sr.JobStatus)
	}
	if sr.Key == "" || sr.Metrics == nil {
		t.Fatalf("submit response missing key/metrics: %+v", sr)
	}

	// Second submission: cache hit, 200 immediately even without wait.
	sr2, code := postDesign(t, ts, testDesign(1), "")
	if code != http.StatusOK || !sr2.CacheHit {
		t.Fatalf("second submit: code %d, %+v", code, sr2.JobStatus)
	}
	if sr2.Key != sr.Key {
		t.Error("identical submissions got different keys")
	}
	if *sr2.Metrics != *sr.Metrics {
		t.Errorf("metrics differ across cache hit:\n%+v\n%+v", sr.Metrics, sr2.Metrics)
	}

	// Status endpoint.
	var st JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sr.ID, &st); code != http.StatusOK {
		t.Fatalf("status code = %d", code)
	}
	if st.ID != sr.ID || st.State != StateDone {
		t.Fatalf("status = %+v", st)
	}

	// Result endpoint with routes.
	var res resultResponse
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sr.ID+"/result?include=routes", &res); code != http.StatusOK {
		t.Fatalf("result code = %d", code)
	}
	if res.State != StateDone || res.Metrics == nil {
		t.Fatalf("result = %+v", res)
	}

	// Metrics endpoint sees the cache hit.
	var stats Stats
	if code := getJSON(t, ts.URL+"/metricsz", &stats); code != http.StatusOK {
		t.Fatal("metricsz failed")
	}
	if stats.Counters[CtrCacheHit] != 1 || stats.Counters[CtrSubmitted] != 2 {
		t.Errorf("metricsz counters = %v", stats.Counters)
	}
	if stats.Counters["serve.http.requests"] == 0 {
		t.Error("request counter not incremented")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	e := New(Config{Workers: 1, Route: stubRoute(nil)})
	defer e.Close()
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "hello", http.StatusBadRequest},
		{"missing design", `{}`, http.StatusBadRequest},
		{"unknown field", `{"design": {}, "optoins": {}}`, http.StatusBadRequest},
		{"invalid design", `{"design": {"Name": "x"}}`, http.StatusBadRequest},
		{"bad priority", `{"design": {"Name": "x"}, "priority": "urgent"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("code = %d, want %d (%s)", resp.StatusCode, tc.want, b)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error == "" {
				t.Error("error body missing")
			}
		})
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope/result", nil); code != http.StatusNotFound {
		t.Errorf("unknown job result = %d, want 404", code)
	}
}

func TestHTTPQueueFull429AndCancel(t *testing.T) {
	block := make(chan struct{})
	e := New(Config{Workers: 1, QueueCapacity: 1, Route: stubRoute(block)})
	defer e.Close()
	defer close(block)
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	// Occupy the worker, then the single queue slot.
	running, code := postDesign(t, ts, testDesign(1), "")
	if code != http.StatusAccepted {
		t.Fatalf("first submit code = %d", code)
	}
	j, err := e.Job(running.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	queued, code := postDesign(t, ts, testDesign(2), "")
	if code != http.StatusAccepted {
		t.Fatalf("second submit code = %d", code)
	}

	// Queue is full now: 429 with the backpressure error.
	_, code = postDesign(t, ts, testDesign(3), "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit code = %d, want 429", code)
	}

	// Result of a non-terminal job: 409 carrying the state.
	var conflict struct {
		Error string `json:"error"`
		State State  `json:"state"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+queued.ID+"/result", &conflict); code != http.StatusConflict {
		t.Fatalf("pending result code = %d, want 409", code)
	}
	if conflict.State != StateQueued {
		t.Errorf("conflict state = %s", conflict.State)
	}

	// DELETE cancels the queued job.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != StateCancelled {
		t.Fatalf("cancel: code %d state %s", resp.StatusCode, st.State)
	}
}

func TestHTTPHealthDraining(t *testing.T) {
	e := New(Config{Workers: 1, Route: stubRoute(nil)})
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	var h struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || !h.OK {
		t.Fatalf("healthy healthz: code %d %+v", code, h)
	}
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusServiceUnavailable || !h.Draining {
		t.Fatalf("draining healthz: code %d %+v", code, h)
	}
	// Submissions against a drained engine: 503.
	_, code := postDesign(t, ts, testDesign(1), "")
	if code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", code)
	}
}

// TestHTTPOptionsRoundTrip checks that options submitted over the wire
// reach the router and participate in the cache key.
func TestHTTPOptionsRoundTrip(t *testing.T) {
	var gotBudget bytes.Buffer
	e := New(Config{Workers: 1, Route: func(ctx context.Context, d *design.Design, opt router.Options) (*router.Output, error) {
		fmt.Fprintf(&gotBudget, "%v;%d", opt.TimeBudget, opt.Global.MaxExpansions)
		return stubRoute(nil)(ctx, d, opt)
	}})
	defer e.Close()
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	dj, _ := json.Marshal(testDesign(1))
	body := fmt.Sprintf(`{"design": %s, "options": {"global": {"max_expansions": 123}, "time_budget_ms": 2000}}`, dj)
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code = %d", resp.StatusCode)
	}
	if got := gotBudget.String(); got != "2s;123" {
		t.Errorf("router saw %q, want \"2s;123\"", got)
	}
}

// TestHTTPParallelismField pins the top-level "parallelism" shorthand: it
// reaches the router as Options.Parallelism, wins over the options field,
// and negative values are rejected before admission.
func TestHTTPParallelismField(t *testing.T) {
	var seen []int
	e := New(Config{Workers: 1, Route: func(ctx context.Context, d *design.Design, opt router.Options) (*router.Output, error) {
		seen = append(seen, opt.Parallelism)
		return stubRoute(nil)(ctx, d, opt)
	}})
	defer e.Close()
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	dj, _ := json.Marshal(testDesign(1))
	if code := post(fmt.Sprintf(`{"design": %s, "parallelism": 3}`, dj)); code != http.StatusOK {
		t.Fatalf("top-level parallelism: code = %d", code)
	}
	// The shorthand wins over the options field when both are set.
	if code := post(fmt.Sprintf(`{"design": %s, "options": {"parallelism": 2}, "parallelism": 5}`, dj)); code != http.StatusOK {
		t.Fatalf("both fields: code = %d", code)
	}
	if want := []int{3, 5}; len(seen) != 2 || seen[0] != want[0] || seen[1] != want[1] {
		t.Errorf("router saw parallelism %v, want %v", seen, want)
	}
	if code := post(fmt.Sprintf(`{"design": %s, "parallelism": -1}`, dj)); code != http.StatusBadRequest {
		t.Errorf("negative parallelism: code = %d, want 400", code)
	}
}
