package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/router"
)

// testDesign builds a minimal valid two-chip design. seed perturbs a pad
// coordinate so different seeds produce different cache keys.
func testDesign(seed int) *design.Design {
	return &design.Design{
		Name:       fmt.Sprintf("t%d", seed),
		Rules:      design.DefaultRules(),
		WireLayers: 2,
		Outline:    geom.R(0, 0, 1000, 1000),
		Chips: []design.Chip{
			{Name: "c0", Outline: geom.R(100, 100, 300, 300)},
			{Name: "c1", Outline: geom.R(600, 100, 800, 300)},
		},
		IOPads: []design.Pad{
			{ID: 0, Net: 0, Chip: 0, Pos: geom.Pt(300, 200+float64(seed%90))},
			{ID: 1, Net: 0, Chip: 1, Pos: geom.Pt(600, 200)},
		},
		Nets: []design.Net{{ID: 0, Name: "n0", Pins: [2]int{0, 1}}},
	}
}

// stubRoute returns a RouteFunc that fabricates an Output without running
// the pipeline. When block is non-nil it waits for the channel (or context
// cancellation) first, which lets tests hold workers busy deterministically.
func stubRoute(block <-chan struct{}) RouteFunc {
	return func(ctx context.Context, d *design.Design, opt router.Options) (*router.Output, error) {
		if block != nil {
			select {
			case <-block:
			case <-ctx.Done():
				return &router.Output{Design: d}, fmt.Errorf("stub: %w", ctx.Err())
			}
		}
		out := &router.Output{Design: d}
		out.Metrics.TotalNets = len(d.Nets)
		out.Metrics.RoutedNets = len(d.Nets)
		out.Metrics.Routability = 1
		out.Metrics.Wirelength = d.TotalHPWL()
		return out, nil
	}
}

func TestSubmitAndCacheHit(t *testing.T) {
	e := New(Config{Workers: 1, Route: stubRoute(nil)})
	defer e.Close()

	j1, err := e.Submit(Request{Design: testDesign(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := j1.Status(); st.State != StateDone || st.CacheHit {
		t.Fatalf("first run: %+v", st)
	}

	j2, err := e.Submit(Request{Design: testDesign(1)})
	if err != nil {
		t.Fatal(err)
	}
	// A cache hit is terminal the moment Submit returns.
	st := j2.Status()
	if st.State != StateDone || !st.CacheHit {
		t.Fatalf("second run should be a done cache hit: %+v", st)
	}
	o1, _ := j1.Result()
	o2, _ := j2.Result()
	if o1 != o2 {
		t.Error("cache hit should share the first run's output")
	}
	if o1.Metrics != o2.Metrics {
		t.Error("metrics of the two submissions differ")
	}
	if hits := e.Metrics().Counter(CtrCacheHit); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if miss := e.Metrics().Counter(CtrCacheMiss); miss != 1 {
		t.Errorf("cache misses = %d, want 1", miss)
	}

	// A different design misses.
	j3, err := e.Submit(Request{Design: testDesign(2)})
	if err != nil {
		t.Fatal(err)
	}
	_ = j3.Wait(context.Background())
	if j3.Status().CacheHit {
		t.Error("different design must not hit the cache")
	}
}

func TestSubmitRejectsInvalidDesign(t *testing.T) {
	e := New(Config{Workers: 1, Route: stubRoute(nil)})
	defer e.Close()
	d := testDesign(1)
	d.IOPads[0].Pos.X = -5 // outside the outline
	if _, err := e.Submit(Request{Design: d}); !errors.Is(err, design.ErrOutOfBounds) {
		t.Fatalf("Submit() = %v, want design.ErrOutOfBounds", err)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	block := make(chan struct{})
	e := New(Config{Workers: 1, QueueCapacity: 2, Route: stubRoute(block)})
	defer e.Close()
	defer close(block)

	// First job occupies the worker; wait until it actually started so the
	// queue depth is deterministic.
	j1, err := e.Submit(Request{Design: testDesign(1)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateRunning)

	// Two more fill the queue.
	for seed := 2; seed <= 3; seed++ {
		if _, err := e.Submit(Request{Design: testDesign(seed)}); err != nil {
			t.Fatal(err)
		}
	}
	// The next submission must bounce.
	_, err = e.Submit(Request{Design: testDesign(4)})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit() = %v, want ErrQueueFull", err)
	}
	if got := e.Metrics().Counter(CtrRejected); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// A cache hit is still admitted against a full queue: it never touches
	// the queue.
	// (Nothing cached yet here, so just verify the stats look sane.)
	s := e.Stats()
	if s.QueueDepth != 2 || s.Running != 1 {
		t.Errorf("stats = %+v, want depth 2 running 1", s)
	}
}

func TestPriorityOrder(t *testing.T) {
	block := make(chan struct{})
	var mu sync.Mutex
	var order []string
	inner := stubRoute(block)
	e := New(Config{Workers: 1, QueueCapacity: 8, Route: func(ctx context.Context, d *design.Design, opt router.Options) (*router.Output, error) {
		mu.Lock()
		order = append(order, d.Name)
		mu.Unlock()
		return inner(ctx, d, opt)
	}})
	defer e.Close()

	j0, err := e.Submit(Request{Design: testDesign(1)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j0, StateRunning)

	low, _ := e.Submit(Request{Design: testDesign(2), Priority: Low})
	norm, _ := e.Submit(Request{Design: testDesign(3), Priority: Normal})
	high, _ := e.Submit(Request{Design: testDesign(4), Priority: High})
	if low == nil || norm == nil || high == nil {
		t.Fatal("submissions failed")
	}

	close(block) // release everything; one worker drains in priority order
	for _, j := range []*Job{j0, low, norm, high} {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	got := fmt.Sprint(order)
	mu.Unlock()
	if want := "[t1 t4 t3 t2]"; got != want {
		t.Errorf("run order = %s, want %s (high before normal before low)", got, want)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	block := make(chan struct{})
	e := New(Config{Workers: 1, QueueCapacity: 4, Route: stubRoute(block)})
	defer e.Close()
	defer close(block)

	running, err := e.Submit(Request{Design: testDesign(1)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := e.Submit(Request{Design: testDesign(2)})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job: terminal immediately, never runs.
	st, err := e.Cancel(queued.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued cancel state = %s", st.State)
	}
	if _, err := queued.Result(); !errors.Is(err, ErrCancelled) {
		t.Errorf("queued job result error = %v, want ErrCancelled", err)
	}

	// Cancel the running job: its context fires, the stub returns the
	// cancellation, the job lands in cancelled.
	if _, err := e.Cancel(running.ID()); err != nil {
		t.Fatal(err)
	}
	if err := running.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := running.Status(); s.State != StateCancelled {
		t.Fatalf("running cancel state = %s", s.State)
	}
	if _, err := e.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel(unknown) = %v, want ErrNotFound", err)
	}
}

func TestFailedRoute(t *testing.T) {
	boom := errors.New("boom")
	e := New(Config{Workers: 1, Route: func(ctx context.Context, d *design.Design, opt router.Options) (*router.Output, error) {
		return nil, boom
	}})
	defer e.Close()
	j, err := e.Submit(Request{Design: testDesign(1)})
	if err != nil {
		t.Fatal(err)
	}
	_ = j.Wait(context.Background())
	if st := j.Status(); st.State != StateFailed || st.Error == "" {
		t.Fatalf("status = %+v, want failed with error", st)
	}
	if _, err := j.Result(); !errors.Is(err, boom) {
		t.Errorf("Result() err = %v, want boom", err)
	}
	if got := e.Metrics().Counter(CtrFailed); got != 1 {
		t.Errorf("failed counter = %d, want 1", got)
	}
}

func TestTimedOutResultsAreNotCached(t *testing.T) {
	e := New(Config{Workers: 1, Route: func(ctx context.Context, d *design.Design, opt router.Options) (*router.Output, error) {
		out := &router.Output{Design: d}
		out.Metrics.TimedOut = true
		return out, nil
	}})
	defer e.Close()
	j, err := e.Submit(Request{Design: testDesign(1)})
	if err != nil {
		t.Fatal(err)
	}
	_ = j.Wait(context.Background())
	if j.Status().State != StateDone {
		t.Fatalf("state = %s", j.Status().State)
	}
	j2, err := e.Submit(Request{Design: testDesign(1)})
	if err != nil {
		t.Fatal(err)
	}
	_ = j2.Wait(context.Background())
	if j2.Status().CacheHit {
		t.Error("timed-out result must not be served from cache")
	}
}

func TestDrainFinishesInFlight(t *testing.T) {
	block := make(chan struct{})
	e := New(Config{Workers: 2, QueueCapacity: 8, Route: stubRoute(block)})

	var jobs []*Job
	for seed := 1; seed <= 4; seed++ {
		j, err := e.Submit(Request{Design: testDesign(seed)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(block)
	}()
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("Drain() = %v", err)
	}
	for _, j := range jobs {
		if st := j.Status(); st.State != StateDone {
			t.Errorf("job %s drained into %s, want done", st.ID, st.State)
		}
	}
	// Post-drain submissions are rejected.
	if _, err := e.Submit(Request{Design: testDesign(9)}); !errors.Is(err, ErrDraining) {
		t.Errorf("Submit after drain = %v, want ErrDraining", err)
	}
}

func TestDrainDeadlineCancelsRemaining(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	e := New(Config{Workers: 1, QueueCapacity: 8, Route: stubRoute(block)})

	running, err := e.Submit(Request{Design: testDesign(1)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := e.Submit(Request{Design: testDesign(2)})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := e.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain() = %v, want deadline exceeded", err)
	}
	if st := running.Status().State; st != StateCancelled {
		t.Errorf("running job after forced drain: %s", st)
	}
	if st := queued.Status().State; st != StateCancelled {
		t.Errorf("queued job after forced drain: %s", st)
	}
}

// TestConcurrentSubmissions hammers one engine from many goroutines; run
// with -race it is the concurrency regression test required for the shared
// queue/cache/metrics paths.
func TestConcurrentSubmissions(t *testing.T) {
	e := New(Config{Workers: 4, QueueCapacity: 256, Route: stubRoute(nil)})
	defer e.Close()

	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []*Job
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j, err := e.Submit(Request{Design: testDesign(i % 7), Priority: Priority(i % 3)})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				accepted = append(accepted, j)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	for _, j := range accepted {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if st := j.Status(); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
		}
	}
	m := e.Metrics()
	total := m.Counter(CtrCacheHit) + m.Counter(CtrCacheMiss)
	if want := int64(goroutines * perG); total != want {
		t.Errorf("hits+misses = %d, want %d", total, want)
	}
	if m.Counter(CtrCompleted) != int64(goroutines*perG) {
		t.Errorf("completed = %d, want %d", m.Counter(CtrCompleted), goroutines*perG)
	}
}

// TestEndToEndRealRouter routes a real (tiny) design through the actual
// pipeline, twice, and checks the cache round trip preserves metrics.
func TestEndToEndRealRouter(t *testing.T) {
	d, err := design.GenerateRandom(design.RandomSpec{Seed: 7, Chips: 2, NetsPerChannel: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 2})
	defer e.Close()

	j1, err := e.Submit(Request{Design: d})
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st1 := j1.Status()
	if st1.State != StateDone {
		t.Fatalf("real route failed: %+v", st1)
	}
	if len(j1.StageSeconds()) == 0 {
		t.Error("per-job stage breakdown missing")
	}

	j2, err := e.Submit(Request{Design: d})
	if err != nil {
		t.Fatal(err)
	}
	st2 := j2.Status()
	if !st2.CacheHit {
		t.Fatal("second submission of identical design must hit the cache")
	}
	if *st1.Metrics != *st2.Metrics {
		t.Errorf("metrics differ across cache hit:\n first %+v\nsecond %+v", st1.Metrics, st2.Metrics)
	}
}

// waitState polls until the job reaches the state or the test times out.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.snapshotState() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (now %s)", j.ID(), want, j.snapshotState())
}
