package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/router"
	"rdlroute/internal/verify"
)

// maxBodyBytes bounds a submission body; a dense RDL design JSON is a few
// MB, so 64 MB leaves generous headroom without letting one request exhaust
// memory.
const maxBodyBytes = 64 << 20

// NewHandler wraps the engine into the HTTP/JSON API:
//
//	POST   /v1/jobs             submit {design, options?, priority?}; ?wait=1 blocks
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result metrics + stage breakdown; ?include=routes adds geometry
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness; 503 while draining
//	GET    /metricsz            engine stats, counters, gauges
//
// Every response is JSON. Error responses are {"error": "...", "state"?}
// with the mapped status code: 400 invalid input, 404 unknown job, 409
// result not ready, 429 queue full, 503 draining.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", e.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", e.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", e.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", e.handleCancel)
	mux.HandleFunc("GET /healthz", e.handleHealth)
	mux.HandleFunc("GET /metricsz", e.handleMetrics)
	return e.instrument(mux)
}

// instrument records request count and latency around every call.
func (e *Engine) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		//rdl:allow detrand request latency metric: feeds /metricsz gauges only, never routing state
		start := time.Now()
		next.ServeHTTP(w, r)
		e.rec.Count("serve.http.requests", 1)
		e.rec.Gauge("serve.http.latency_ms", ms(time.Since(start)))
	})
}

// submitRequest is the POST /v1/jobs body. Unknown fields are rejected:
// a misspelled "options" must not silently route with defaults.
type submitRequest struct {
	Design   json.RawMessage    `json:"design"`
	Options  router.OptionsSpec `json:"options"`
	Priority string             `json:"priority"`
	// Verify is the verification gate mode ("off", "warn" or "strict"), a
	// top-level shorthand for options.verify; when set it wins over the
	// options field. Strict jobs whose results fail verification finish in
	// state "failed" with the findings in the result JSON.
	Verify string `json:"verify"`
	// Parallelism is a top-level shorthand for options.parallelism, the
	// job's worker-pool size inside the routing pipeline (0 = GOMAXPROCS
	// capped at 8, 1 = serial; results are identical either way). When set
	// it wins over the options field. Distinct from the engine's -workers,
	// which is how many jobs run concurrently.
	Parallelism int `json:"parallelism"`
	// Ordering is a top-level shorthand for options.ordering, the global
	// stage's net-ordering strategy; when set it wins over the options
	// field.
	Ordering string `json:"ordering"`
	// Portfolio is a top-level shorthand for options.portfolio: strategies
	// raced as independent route attempts with canonical winner selection.
	// When non-empty it wins over the options field. Validate canonicalizes
	// the list, so submission order does not change the cache key.
	Portfolio []string `json:"portfolio"`
}

// submitResponse answers POST /v1/jobs.
type submitResponse struct {
	JobStatus
	// Key is the content-addressed cache key of the request.
	Key string `json:"key"`
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req submitRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Design) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("missing \"design\""))
		return
	}
	d, err := design.ReadJSON(bytes.NewReader(req.Design))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	prio, err := ParsePriority(req.Priority)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.Verify != "" {
		mode, err := router.ParseVerifyMode(req.Verify)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		req.Options.Verify = mode
	}
	if req.Parallelism != 0 {
		req.Options.Parallelism = req.Parallelism
	}
	if req.Ordering != "" {
		req.Options.Ordering = req.Ordering
	}
	if len(req.Portfolio) > 0 {
		req.Options.Portfolio = req.Portfolio
	}

	j, err := e.Submit(Request{Design: d, Spec: req.Options, Priority: prio})
	if err != nil {
		httpError(w, submitStatusCode(err), err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		if err := j.Wait(r.Context()); err != nil {
			// Client went away; the job keeps running for the next poll.
			httpError(w, http.StatusRequestTimeout, err)
			return
		}
	}
	code := http.StatusAccepted
	if j.Status().State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, submitResponse{JobStatus: j.Status(), Key: j.Key()})
}

func submitStatusCode(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (e *Engine) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := e.Job(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// resultResponse answers GET /v1/jobs/{id}/result for terminal jobs.
type resultResponse struct {
	JobStatus
	// StageSeconds breaks the run down per pipeline stage; empty for
	// cache hits (no stages ran for this job).
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
	// Violations is the DRC violation count.
	Violations int `json:"violations"`
	// Verify is the verification gate's report; absent when the job ran
	// with the gate off.
	Verify *verifyResult `json:"verify,omitempty"`
	// Portfolio is the per-strategy race summary in canonical strategy
	// order; absent for single-strategy jobs.
	Portfolio []portfolioAttempt `json:"portfolio,omitempty"`
	// Routes is the routed geometry, included with ?include=routes.
	Routes []*detail.Route `json:"routes,omitempty"`
}

// portfolioAttempt is one strategy's score in a portfolio job result.
type portfolioAttempt struct {
	Strategy    string  `json:"strategy"`
	Winner      bool    `json:"winner,omitempty"`
	OK          bool    `json:"ok"`
	Routability float64 `json:"routability"`
	Wirelength  float64 `json:"wirelength_um"`
	Vias        int     `json:"vias"`
	Error       string  `json:"error,omitempty"`
}

// verifyResult is the verification section of a job result (doc/VERIFY.md
// documents the finding shape).
type verifyResult struct {
	OK          bool             `json:"ok"`
	CheckedNets int              `json:"checked_nets"`
	Counts      map[string]int   `json:"counts,omitempty"`
	Findings    []verify.Finding `json:"findings,omitempty"`
	// Truncated is set when the findings list was capped (the counts still
	// cover everything).
	Truncated bool `json:"truncated,omitempty"`
}

// maxFindingsJSON caps the findings list in a result response so one
// pathological job cannot emit an unbounded payload.
const maxFindingsJSON = 500

func newVerifyResult(rep *verify.Report) *verifyResult {
	if rep == nil {
		return nil
	}
	v := &verifyResult{
		OK:          rep.OK(),
		CheckedNets: rep.CheckedNets,
		Counts:      rep.Counts(),
		Findings:    rep.Findings(),
	}
	if len(v.Findings) > maxFindingsJSON {
		v.Findings = v.Findings[:maxFindingsJSON]
		v.Truncated = true
	}
	return v
}

func (e *Engine) handleResult(w http.ResponseWriter, r *http.Request) {
	j, err := e.Job(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	st := j.Status()
	if !st.State.Terminal() {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": ErrNotFinished.Error(),
			"state": st.State,
		})
		return
	}
	out, _ := j.Result()
	resp := resultResponse{JobStatus: st, StageSeconds: j.StageSeconds()}
	if out != nil {
		resp.Violations = len(out.Violations)
		resp.Verify = newVerifyResult(out.VerifyReport)
		for _, att := range out.Portfolio {
			pa := portfolioAttempt{
				Strategy:    att.Strategy,
				Winner:      att.Strategy == out.Metrics.PortfolioWinner,
				OK:          att.OK,
				Routability: att.Routability,
				Wirelength:  att.Wirelength,
				Vias:        att.Vias,
			}
			if att.Err != nil {
				pa.Error = att.Err.Error()
			}
			resp.Portfolio = append(resp.Portfolio, pa)
		}
		if r.URL.Query().Get("include") == "routes" && out.DetailResult != nil {
			resp.Routes = out.DetailResult.Routes
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (e *Engine) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := e.Cancel(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (e *Engine) handleHealth(w http.ResponseWriter, r *http.Request) {
	e.mu.Lock()
	draining := e.draining
	e.mu.Unlock()
	code := http.StatusOK
	if draining {
		// Load balancers interpret the 503 as "stop sending traffic here"
		// while in-flight jobs finish.
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"ok": !draining, "draining": draining})
}

func (e *Engine) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, e.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v) // client went away; nothing sensible to do
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
