package serve

import (
	"testing"

	"rdlroute/internal/router"
)

func out(n int) *router.Output {
	o := &router.Output{}
	o.Metrics.TotalNets = n
	return o
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	if c.put("a", out(1)) != 0 || c.put("b", out(2)) != 0 {
		t.Fatal("filling to capacity must not evict")
	}
	// Touch "a" so "b" is the eviction victim.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	if ev := c.put("c", out(3)); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s should still be cached", k)
		}
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestCacheOverwriteSameKey(t *testing.T) {
	c := newCache(2)
	c.put("a", out(1))
	if ev := c.put("a", out(9)); ev != 0 {
		t.Fatalf("overwrite evicted %d entries", ev)
	}
	got, ok := c.get("a")
	if !ok || got.Metrics.TotalNets != 9 {
		t.Errorf("overwrite lost: %+v %v", got, ok)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newCache(-1)
	if ev := c.put("a", out(1)); ev != 0 {
		t.Fatalf("disabled put evicted %d", ev)
	}
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache must always miss")
	}
}

func TestQueuePriorityAndBounds(t *testing.T) {
	q := newQueue(3)
	mk := func(p Priority) *Job {
		return &Job{priority: p, state: StateQueued, d: testDesign(0)}
	}
	if err := q.push(mk(Low)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mk(High)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mk(Normal)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mk(Normal)); err != ErrQueueFull {
		t.Fatalf("push over capacity = %v, want ErrQueueFull", err)
	}
	want := []Priority{High, Normal, Low}
	for i, p := range want {
		j, ok := q.pop()
		if !ok || j.priority != p {
			t.Fatalf("pop %d: priority %v ok=%v, want %v", i, j.priority, ok, p)
		}
	}
	q.close()
	if _, ok := q.pop(); ok {
		t.Error("pop after close+drain must report ok=false")
	}
	if err := q.push(mk(Normal)); err != ErrDraining {
		t.Errorf("push after close = %v, want ErrDraining", err)
	}
}

func TestKeyStability(t *testing.T) {
	var spec router.OptionsSpec
	k1, err := Key(testDesign(1), spec)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(testDesign(1), spec)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("equal requests produced different keys")
	}
	if len(k1) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(k1))
	}

	k3, err := Key(testDesign(2), spec)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("different designs produced the same key")
	}

	spec.Global.MaxExpansions = 10
	k4, err := Key(testDesign(1), spec)
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Error("different options produced the same key")
	}
}
