package pool

import (
	"testing"
)

// TestRunIdenticalAcrossPoolSizes pins the determinism contract: results are
// indexed by unit, so every worker count yields the same output slice.
func TestRunIdenticalAcrossPoolSizes(t *testing.T) {
	const n = 100
	mk := func() []func() int {
		units := make([]func() int, n)
		for i := range units {
			i := i
			units[i] = func() int { return i * i }
		}
		return units
	}
	ref := Run(mk(), 1)
	for _, workers := range []int{0, 2, 4, 8, 200} {
		got := Run(mk(), workers)
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), n)
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: unit %d returned %d, serial reference %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run[int](nil, 4); len(got) != 0 {
		t.Fatalf("Run(nil) returned %v, want empty", got)
	}
}

// TestRunWithWorkerSlots pins RunWith's two contracts: results are indexed
// by unit regardless of worker count, and every worker index handed to a
// unit is within [0, workers) so per-worker scratch slots never collide or
// go out of bounds.
func TestRunWithWorkerSlots(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 4, 8, 200} {
		slots := workers
		if slots > n {
			slots = n
		}
		units := make([]func(w int) [2]int, n)
		for i := range units {
			i := i
			units[i] = func(w int) [2]int { return [2]int{i * i, w} }
		}
		got := RunWith(units, workers)
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), n)
		}
		for i, r := range got {
			if r[0] != i*i {
				t.Fatalf("workers=%d: unit %d returned %d, want %d", workers, i, r[0], i*i)
			}
			if r[1] < 0 || r[1] >= slots {
				t.Fatalf("workers=%d: unit %d ran on worker %d, want [0,%d)", workers, i, r[1], slots)
			}
		}
	}
}

func TestRunWithSerialUsesSlotZero(t *testing.T) {
	units := []func(w int) int{func(w int) int { return w }, func(w int) int { return w }}
	for _, w := range RunWith(units, 1) {
		if w != 0 {
			t.Fatalf("serial RunWith used worker slot %d, want 0", w)
		}
	}
}
