package pool

import (
	"testing"
)

// TestRunIdenticalAcrossPoolSizes pins the determinism contract: results are
// indexed by unit, so every worker count yields the same output slice.
func TestRunIdenticalAcrossPoolSizes(t *testing.T) {
	const n = 100
	mk := func() []func() int {
		units := make([]func() int, n)
		for i := range units {
			i := i
			units[i] = func() int { return i * i }
		}
		return units
	}
	ref := Run(mk(), 1)
	for _, workers := range []int{0, 2, 4, 8, 200} {
		got := Run(mk(), workers)
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), n)
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: unit %d returned %d, serial reference %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run[int](nil, 4); len(got) != 0 {
		t.Fatalf("Run(nil) returned %v, want empty", got)
	}
}
