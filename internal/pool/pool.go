// Package pool provides the routing stack's one sanctioned concurrency
// primitive: a deterministic fan-out over a fixed list of work units.
//
// Every parallel stage in the pipeline — the DRC engine, tile routing,
// route assembly, the verify gate and the global router's standalone
// ordering seeds — must schedule its goroutines through Run. Unit
// boundaries are fixed by the caller and every result lands at its own
// unit's index, so any pool size (including the serial workers<=1 path)
// produces byte-identical output; only the scheduling varies. The
// `barego` analyzer in internal/lint enforces this: bare go statements
// in the deterministic packages are rejected at the source level, and
// this package is the single place a worker goroutine may be launched.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Default resolves a requested worker count to the pipeline's shared
// convention: a positive request is taken as-is, anything else selects
// GOMAXPROCS capped at 8 (routing stages are CPU-bound and stop scaling
// well past that). Every stage that exposes a Workers/Parallelism knob —
// detail routing, DRC, the verify gate and the global router's
// speculative multi-net stage — resolves it through this one function, so
// "zero means auto" cannot drift between stages again.
func Default(requested int) int {
	if requested > 0 {
		return requested
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// Run executes the units on a pool of the given size and returns their
// results indexed by unit.
func Run[T any](units []func() T, workers int) []T {
	results := make([]T, len(units))
	if workers <= 1 || len(units) <= 1 {
		for i, u := range units {
			results[i] = u()
		}
		return results
	}
	if workers > len(units) {
		workers = len(units)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(len(units)) {
					return
				}
				results[i] = units[i]()
			}
		}()
	}
	wg.Wait()
	return results
}

// RunWith is Run for units that want a per-worker scratch slot: each unit
// receives the index (0 ≤ w < workers) of the goroutine executing it, so a
// caller can allocate `workers` scratch buffers up front and let every unit
// reuse its worker's slot without locking. The serial path passes 0. Like
// Run, unit boundaries and result placement are fixed by the caller —
// scratches must only carry state that does not influence results (reusable
// buffers, stamp arrays), so any pool size stays byte-identical.
func RunWith[T any](units []func(worker int) T, workers int) []T {
	results := make([]T, len(units))
	if workers <= 1 || len(units) <= 1 {
		for i, u := range units {
			results[i] = u(0)
		}
		return results
	}
	if workers > len(units) {
		workers = len(units)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(len(units)) {
					return
				}
				results[i] = units[i](w)
			}
		}(w)
	}
	wg.Wait()
	return results
}
