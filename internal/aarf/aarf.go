// Package aarf implements the AARF* baseline of Table III: the multi-layer
// extension of AARF (Yang et al., TCAD'18), the state-of-the-art any-angle
// router for flow-based biochips, re-implemented the way the paper describes
// its weaknesses:
//
//   - Nets are routed sequentially in netlist order with no congestion-aware
//     ordering, no failure-driven order adjustment, and no rip-up: a net that
//     cannot be routed stays unrouted.
//   - Routing resources are consumed greedily with no reservation for
//     subsequent routes: each committed net is treated as a hard constraint
//     corridor in the (conceptually rebuilt) triangulation, which blocks
//     twice the paper's capacity model per tile edge.
//   - After every routed net the triangulation of every wire layer is
//     rebuilt with the routed net as a constraint. The rebuild dominates
//     AARF's runtime; this implementation pays that exact cost by
//     re-triangulating every layer after each commit.
//   - No diagonal utility refinement and no Eq. 2 corner capacity model
//     (the naive corner estimate is used).
//
// The per-net DP path optimization of AARF is retained through the shared
// detailed-routing stage.
package aarf

import (
	"context"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/dt"
	"rdlroute/internal/geom"
	"rdlroute/internal/global"
	"rdlroute/internal/obs"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// Options tunes the AARF* baseline run.
type Options struct {
	Via viaplan.Options
	// TimeBudget mirrors the paper's one-hour cap; AARF* frequently hits it
	// on the larger designs. Zero means no limit.
	TimeBudget time.Duration
	// SkipRebuild disables the per-net triangulation rebuild (used by unit
	// tests that only care about the routing result, not the runtime
	// model).
	SkipRebuild bool
	// WasteFactor is the edge-capacity units one committed net consumes
	// (the greedy no-reservation handicap). Zero selects 3: a routed net in
	// a rebuilt constrained triangulation blocks its own track plus the
	// clearance corridor on both sides.
	WasteFactor int
	// Rec receives spans and counters from the underlying pipeline stages.
	// Nil selects the no-op recorder.
	Rec obs.Recorder
}

// Route runs the AARF* baseline and returns a router.Output-compatible
// result as separate pieces (to avoid an import cycle the facade types stay
// in the caller's hands). Deadlines (ctx or TimeBudget) stop routing and
// report the partial result with TimedOut set; explicit cancellation
// returns the partial result together with ctx.Err().
func Route(ctx context.Context, d *design.Design, opt Options) (*Result, error) {
	start := time.Now()
	ctx, cancel := obs.WithBudget(ctx, opt.TimeBudget, nil)
	defer cancel()
	vopt := opt.Via
	if vopt.Rec == nil {
		vopt.Rec = opt.Rec
	}
	plan, err := viaplan.Build(d, vopt)
	if err != nil {
		return nil, err
	}
	g, err := rgraph.Build(d, plan, rgraph.Options{NaiveCornerCapacity: true, Rec: opt.Rec})
	if err != nil {
		return nil, err
	}

	waste := opt.WasteFactor
	if waste <= 0 {
		waste = 3
	}
	gopt := global.Options{
		DisableRUDYOrder:          true,
		DisableDiagonalRefinement: true,
		MaxOrderRounds:            1,
		EdgeUsePerNet:             waste,
		Rec:                       opt.Rec,
	}
	// The growing per-layer point sets for the rebuild emulation: every
	// committed route's vertices join the constraint set of its layers, so
	// the per-net re-triangulation cost grows as routing proceeds — the
	// quadratic blow-up that makes the original AARF time out on large
	// designs.
	layerPts := make([][]geom.Point, len(plan.Layers))
	for li, lp := range plan.Layers {
		for _, v := range lp.Verts {
			layerPts[li] = append(layerPts[li], v.Pos)
		}
	}
	var gr *global.Router
	if !opt.SkipRebuild {
		// A committed route enters the constrained triangulation as its
		// bend vertices plus the Steiner points where it crosses existing
		// mesh edges — roughly one vertex every few wire pitches along the
		// route. Sample accordingly so the rebuild cost grows the way the
		// original algorithm's does.
		step := 4 * d.Rules.Pitch()
		gopt.AfterEachNet = func(net int) {
			guide := gr.Guide(net)
			if guide != nil {
				for i := 0; i+1 < len(guide.Nodes); i++ {
					a := g.Node(guide.Nodes[i])
					b := g.Node(guide.Nodes[i+1])
					if a.Layer != b.Layer {
						continue
					}
					seg := geom.Seg(a.Pos, b.Pos)
					n := int(seg.Len()/step) + 1
					for k := 0; k <= n; k++ {
						layerPts[a.Layer] = append(layerPts[a.Layer], seg.At(float64(k)/float64(n)))
					}
				}
			}
			for li := range layerPts {
				_, _ = dt.Triangulate(layerPts[li])
			}
		}
	}
	gr = global.New(g, gopt)
	gres, gerr := gr.Run(ctx)
	if gres == nil {
		return nil, gerr
	}
	dres, err := detail.Run(ctx, gr, gres, detail.Options{Rec: opt.Rec})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Design:       d,
		GlobalResult: gres,
		DetailResult: dres,
		Runtime:      time.Since(start),
		TimedOut:     obs.TimedOut(ctx),
	}
	res.Routability = gres.Routability()
	res.Wirelength = dres.Wirelength
	for _, rt := range dres.Routes {
		if rt != nil {
			res.RoutedNets++
		}
	}
	if gerr != nil && !res.TimedOut {
		return res, gerr
	}
	return res, nil
}

// Result is the outcome of an AARF* run.
type Result struct {
	Design       *design.Design
	GlobalResult *global.Result
	DetailResult *detail.Result
	Routability  float64
	RoutedNets   int
	Wirelength   float64
	Runtime      time.Duration
	TimedOut     bool
}
