package aarf

import (
	"context"
	"testing"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/router"
)

func TestRouteDense1(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(context.Background(), d, Options{SkipRebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Routability <= 0 {
		t.Fatal("nothing routed")
	}
	if res.RoutedNets == 0 || res.Wirelength <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.TimedOut {
		t.Error("no budget given, must not time out")
	}
	// Result plumbing consistency.
	routed := 0
	for _, rt := range res.DetailResult.Routes {
		if rt != nil {
			routed++
		}
	}
	if routed != res.RoutedNets {
		t.Errorf("routed count %d != %d", routed, res.RoutedNets)
	}
}

func TestRebuildCostsTime(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := Route(context.Background(), d, Options{SkipRebuild: true}); err != nil {
		t.Fatal(err)
	}
	fast := time.Since(start)

	d2, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := Route(context.Background(), d2, Options{}); err != nil {
		t.Fatal(err)
	}
	slow := time.Since(start)
	if slow < 2*fast {
		t.Errorf("per-net rebuild should dominate runtime: with=%v without=%v", slow, fast)
	}
}

func TestTimeBudgetCutsRun(t *testing.T) {
	d, err := design.GenerateDense("dense3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(context.Background(), d, Options{TimeBudget: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("1ms budget must time out")
	}
	if res.Routability >= 1 {
		t.Error("timed-out run should be partial")
	}
}

func TestNeverBeatsOursOnRoutability(t *testing.T) {
	// The Table III claim: the greedy baseline never routes more nets than
	// the full flow.
	for _, name := range []string{"dense1", "dense2"} {
		d, err := design.GenerateDense(name)
		if err != nil {
			t.Fatal(err)
		}
		ours, err := router.Route(context.Background(), d, router.Options{})
		if err != nil {
			t.Fatal(err)
		}
		d2, err := design.GenerateDense(name)
		if err != nil {
			t.Fatal(err)
		}
		aa, err := Route(context.Background(), d2, Options{SkipRebuild: true})
		if err != nil {
			t.Fatal(err)
		}
		if aa.Routability > ours.Metrics.Routability {
			t.Errorf("%s: AARF* %.3f beats ours %.3f", name, aa.Routability, ours.Metrics.Routability)
		}
	}
}
