package router

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"rdlroute/internal/obs"
)

func TestOptionsSpecRoundTrip(t *testing.T) {
	opt := Options{TimeBudget: 1500 * time.Millisecond}
	opt.Via.Seed = 42
	opt.Via.ViaPitch = 100
	opt.Graph.ViaCost = 7
	opt.Graph.NaiveCornerCapacity = true
	opt.Global.MaxExpansions = 1234
	opt.Global.DisableRUDYOrder = true
	opt.Detail.Candidates = 5
	opt.Detail.SkipAdjust = true

	got := opt.Spec().Options()
	if got.Via != opt.Via || got.Graph != opt.Graph || got.Detail != opt.Detail {
		t.Errorf("round trip changed stage options:\n got %+v\nwant %+v", got, opt)
	}
	// global.Options carries a func field, so compare its spec projection.
	if got.Spec() != opt.Spec() {
		t.Errorf("round trip changed spec:\n got %+v\nwant %+v", got.Spec(), opt.Spec())
	}
	if got.TimeBudget != opt.TimeBudget {
		t.Errorf("TimeBudget = %v, want %v", got.TimeBudget, opt.TimeBudget)
	}
}

func TestFingerprintIgnoresObservers(t *testing.T) {
	a := Options{TimeBudget: time.Second}
	b := a
	b.Rec = obs.NewCollector()
	b.Global.Rec = obs.NewCollector()
	b.Global.AfterEachNet = func(int) {}

	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa, fb) {
		t.Error("fingerprint depends on recorders/callbacks")
	}

	c := a
	c.Global.MaxExpansions = 7
	fc, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(fa, fc) {
		t.Error("fingerprints of different configurations collide")
	}
}

func TestOptionsSpecIsValidWireFormat(t *testing.T) {
	var s OptionsSpec
	if err := json.Unmarshal([]byte(`{"global": {"max_expansions": 9}, "time_budget_ms": 250}`), &s); err != nil {
		t.Fatal(err)
	}
	opt := s.Options()
	if opt.Global.MaxExpansions != 9 || opt.TimeBudget != 250*time.Millisecond {
		t.Errorf("decoded options wrong: %+v", opt)
	}
}
