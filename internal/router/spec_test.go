package router

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"rdlroute/internal/obs"
	"rdlroute/internal/rgraph"
)

func TestOptionsSpecRoundTrip(t *testing.T) {
	opt := Options{TimeBudget: 1500 * time.Millisecond}
	opt.Via.Seed = 42
	opt.Via.ViaPitch = 100
	opt.Graph.ViaCost = rgraph.ViaCostPtr(7)
	opt.Graph.NaiveCornerCapacity = true
	opt.Global.MaxExpansions = 1234
	opt.Global.DisableRUDYOrder = true
	opt.Detail.Candidates = 5
	opt.Detail.SkipAdjust = true

	got := opt.Spec().Options()
	if got.Via != opt.Via || got.Detail != opt.Detail {
		t.Errorf("round trip changed stage options:\n got %+v\nwant %+v", got, opt)
	}
	// Graph carries a pointer field, so compare the resolved value.
	if rgraph.ViaCostValue(got.Graph.ViaCost) != rgraph.ViaCostValue(opt.Graph.ViaCost) ||
		got.Graph.NaiveCornerCapacity != opt.Graph.NaiveCornerCapacity {
		t.Errorf("round trip changed graph options:\n got %+v\nwant %+v", got.Graph, opt.Graph)
	}
	// global.Options carries a func field, and the spec a slice field, so
	// compare the canonical byte encodings.
	gb, err := got.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	ob, err := opt.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, ob) {
		t.Errorf("round trip changed spec:\n got %s\nwant %s", gb, ob)
	}
	if got.TimeBudget != opt.TimeBudget {
		t.Errorf("TimeBudget = %v, want %v", got.TimeBudget, opt.TimeBudget)
	}
}

func TestFingerprintIgnoresObservers(t *testing.T) {
	a := Options{TimeBudget: time.Second}
	b := a
	b.Rec = obs.NewCollector()
	b.Global.Rec = obs.NewCollector()
	b.Global.AfterEachNet = func(int) {}

	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa, fb) {
		t.Error("fingerprint depends on recorders/callbacks")
	}

	c := a
	c.Global.MaxExpansions = 7
	fc, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(fa, fc) {
		t.Error("fingerprints of different configurations collide")
	}
}

// TestParallelismKeepsExistingCacheKeys pins the cache-compatibility
// contract of the Parallelism field: a spec that never sets it canonicalizes
// to the exact bytes it produced before the field existed, so sha256 keys of
// previously cached results stay valid. A non-zero value must still be part
// of the encoding (the wire view carries it to jobs).
func TestParallelismKeepsExistingCacheKeys(t *testing.T) {
	legacy := `{"via":{"via_pitch":0,"boundary_step":0,"jitter_frac":0,"seed":0},` +
		`"graph":{"via_cost":0,"naive_corner_capacity":false},` +
		`"global":{"congestion_threshold":0,"max_order_rounds":0,"max_expansions":0,` +
		`"disable_rudy_order":false,"disable_diagonal_refinement":false,"edge_use_per_net":0},` +
		`"detail":{"candidates":0,"min_movable":0,"max_fit_iters":0,"retries":0,"skip_adjust":false},` +
		`"time_budget_ms":0,"verify":""}`
	got, err := (Options{}).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != legacy {
		t.Errorf("zero-spec canonical bytes changed:\n got %s\nwant %s", got, legacy)
	}

	withP, err := (Options{Parallelism: 4}).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(withP, got) {
		t.Error("Parallelism=4 not reflected in the canonical encoding")
	}
	if rt := (Options{Parallelism: 4}).Spec().Options(); rt.Parallelism != 4 {
		t.Errorf("Parallelism lost in round trip: %+v", rt)
	}
}

// TestVerifyWorkersAlias pins the deprecated alias: VerifyWorkers wins for
// the DRC/verify stages when set, and falls through to Parallelism
// otherwise.
func TestVerifyWorkersAlias(t *testing.T) {
	if got := (Options{VerifyWorkers: 3, Parallelism: 5}).verifyWorkers(); got != 3 {
		t.Errorf("VerifyWorkers override: got %d, want 3", got)
	}
	if got := (Options{Parallelism: 5}).verifyWorkers(); got != 5 {
		t.Errorf("Parallelism fallback: got %d, want 5", got)
	}
	if got := (Options{}).verifyWorkers(); got != 0 {
		t.Errorf("zero options: got %d, want 0 (stage default)", got)
	}
}

func TestSpecValidateRejectsNegativeParallelism(t *testing.T) {
	s := OptionsSpec{Parallelism: -1}
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted negative parallelism")
	}
}

func TestOptionsSpecIsValidWireFormat(t *testing.T) {
	var s OptionsSpec
	if err := json.Unmarshal([]byte(`{"global": {"max_expansions": 9}, "time_budget_ms": 250}`), &s); err != nil {
		t.Fatal(err)
	}
	opt := s.Options()
	if opt.Global.MaxExpansions != 9 || opt.TimeBudget != 250*time.Millisecond {
		t.Errorf("decoded options wrong: %+v", opt)
	}
}
