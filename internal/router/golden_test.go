package router

import (
	"context"
	"math"
	"testing"

	"rdlroute/internal/design"
)

// golden pins the headline metrics of the deterministic pipeline. The exact
// wirelengths move whenever an algorithm detail changes — update the table
// deliberately when that happens (tolerances absorb float-level drift, not
// behavioural change).
var golden = []struct {
	name        string
	wirelength  float64 // µm, ±2%
	maxDRC      int
	maxVias     int
	routability float64
}{
	{name: "dense1", wirelength: 18740, maxDRC: 40, maxVias: 60, routability: 1},
	{name: "dense2", wirelength: 51742, maxDRC: 80, maxVias: 120, routability: 1},
	{name: "dense3", wirelength: 79930, maxDRC: 120, maxVias: 200, routability: 1},
}

func TestGoldenMetrics(t *testing.T) {
	for _, g := range golden {
		d, err := design.GenerateDense(g.name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Route(context.Background(), d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := out.Metrics
		if m.Routability != g.routability {
			t.Errorf("%s: routability = %v, want %v", g.name, m.Routability, g.routability)
		}
		if math.Abs(m.Wirelength-g.wirelength) > 0.02*g.wirelength {
			t.Errorf("%s: wirelength = %.0f, golden %.0f (±2%%)", g.name, m.Wirelength, g.wirelength)
		}
		if m.DRCViolations > g.maxDRC {
			t.Errorf("%s: DRC = %d, bar %d", g.name, m.DRCViolations, g.maxDRC)
		}
		if m.Vias > g.maxVias {
			t.Errorf("%s: vias = %d, bar %d", g.name, m.Vias, g.maxVias)
		}
	}
}

// TestRunToRunIdentical verifies full determinism of the pipeline: two runs
// of the same design produce byte-identical geometry.
func TestRunToRunIdentical(t *testing.T) {
	run := func() *Output {
		d, err := design.GenerateDense("dense2")
		if err != nil {
			t.Fatal(err)
		}
		out, err := Route(context.Background(), d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Metrics.Wirelength != b.Metrics.Wirelength {
		t.Fatalf("wirelength differs: %v vs %v", a.Metrics.Wirelength, b.Metrics.Wirelength)
	}
	for ni := range a.DetailResult.Routes {
		ra, rb := a.DetailResult.Routes[ni], b.DetailResult.Routes[ni]
		if (ra == nil) != (rb == nil) {
			t.Fatalf("net %d presence differs", ni)
		}
		if ra == nil {
			continue
		}
		if len(ra.Segs) != len(rb.Segs) {
			t.Fatalf("net %d segment count differs", ni)
		}
		for si := range ra.Segs {
			if len(ra.Segs[si].Pl) != len(rb.Segs[si].Pl) {
				t.Fatalf("net %d seg %d vertex count differs", ni, si)
			}
			for pi := range ra.Segs[si].Pl {
				if ra.Segs[si].Pl[pi] != rb.Segs[si].Pl[pi] {
					t.Fatalf("net %d seg %d vertex %d differs", ni, si, pi)
				}
			}
		}
	}
}
