package router

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
)

// fingerprintOutput renders the pipeline result — detailed geometry, global
// guides, DRC findings and the headline metrics — into one string so runs
// compare byte-for-byte.
func fingerprintOutput(out *Output) string {
	var b strings.Builder
	for net, rt := range out.DetailResult.Routes {
		if rt == nil {
			fmt.Fprintf(&b, "%d:nil\n", net)
			continue
		}
		fmt.Fprintf(&b, "%d:%v\n", net, *rt)
	}
	for net, g := range out.GlobalResult.Guides {
		if g == nil {
			fmt.Fprintf(&b, "g%d:nil\n", net)
			continue
		}
		fmt.Fprintf(&b, "g%d:%v|%v\n", net, g.Nodes, g.Links)
	}
	fmt.Fprintf(&b, "viol:%v\n", out.Violations)
	fmt.Fprintf(&b, "routability:%v wl:%v vias:%d exp:%d\n",
		out.Metrics.Routability, out.Metrics.Wirelength, out.Metrics.Vias,
		out.GlobalResult.Expansions)
	return b.String()
}

// TestRoutePipelineParallelismIdentical pins the unified knob end to end:
// the whole pipeline — global speculative routing, detailed routing, DRC
// and the verify gate — produces byte-identical output for every
// Parallelism value.
func TestRoutePipelineParallelismIdentical(t *testing.T) {
	d, err := design.GenerateDense("dense2")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Route(context.Background(), d, Options{Parallelism: 1, Verify: VerifyWarn})
	if err != nil {
		t.Fatal(err)
	}
	ref := fingerprintOutput(serial)
	for _, p := range []int{2, 4, 8} {
		out, err := Route(context.Background(), d, Options{Parallelism: p, Verify: VerifyWarn})
		if err != nil {
			t.Fatalf("parallelism=%d: %v", p, err)
		}
		if got := fingerprintOutput(out); got != ref {
			t.Fatalf("parallelism=%d: pipeline output not byte-identical to serial", p)
		}
		if len(out.VerifyReport.Problems) != len(serial.VerifyReport.Problems) {
			t.Fatalf("parallelism=%d: verify findings differ", p)
		}
	}
}

// TestParallelismPropagatesToStages checks the precedence contract: the
// unified knob reaches a stage only when that stage has no override of its
// own.
func TestParallelismPropagatesToStages(t *testing.T) {
	// dense3 has several disjoint congestion clusters, so its interference
	// groups actually admit multi-net windows (dense1's nets collapse into
	// one group and would speculate nothing).
	d, err := design.GenerateDense("dense3")
	if err != nil {
		t.Fatal(err)
	}
	// A stage override must win: Detail.Workers=1 with Parallelism=8 runs
	// detail serially, which the differential tests elsewhere prove is
	// byte-identical — here it only needs to not error.
	out, err := Route(context.Background(), d, Options{
		Parallelism: 8,
		Detail:      detail.Options{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Routability != 1 {
		t.Fatalf("routability = %v", out.Metrics.Routability)
	}
	// The global stage saw the knob: a parallel run on a routable design
	// records speculation activity.
	if out.GlobalResult.SpeculationHits == 0 {
		t.Error("Parallelism did not reach the global stage (no speculation hits)")
	}
}
