package router

import (
	"encoding/json"
	"fmt"
	"time"

	"rdlroute/internal/detail"
	"rdlroute/internal/global"
	"rdlroute/internal/portfolio"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// OptionsSpec is the declarative view of Options: every field that changes
// what the router computes, and nothing that merely observes a run
// (recorders, callbacks). It serves two roles for the serving layer:
//
//   - Wire format: the "options" object of a routing request decodes into an
//     OptionsSpec, which Options() expands into the real per-stage Options.
//   - Cache identity: Canonical() is a byte-stable JSON encoding, so equal
//     specs hash equally and the result cache can treat the pair
//     (design, spec) as content-addressed.
//
// The zero spec means "all defaults" and expands to the zero Options.
type OptionsSpec struct {
	Via    ViaSpec    `json:"via"`
	Graph  GraphSpec  `json:"graph"`
	Global GlobalSpec `json:"global"`
	Detail DetailSpec `json:"detail"`
	// TimeBudgetMS is Options.TimeBudget in milliseconds. It is part of the
	// cache identity: a run under a tighter budget may legitimately return a
	// worse partial result than the same design under a looser one.
	TimeBudgetMS int64 `json:"time_budget_ms"`
	// Verify selects the verification gate ("", "warn" or "strict"; the
	// alias "off" normalizes to "" — see Validate). It is part of the cache
	// identity: a gated Output carries the verifier's report, an ungated
	// one does not.
	Verify VerifyMode `json:"verify"`
	// Parallelism is Options.Parallelism, the pipeline's one concurrency
	// knob (zero = GOMAXPROCS capped at 8, 1 = serial). Results are
	// byte-identical for every value, but the field stays in the wire view
	// so jobs can pin their worker budget; omitempty keeps the canonical
	// bytes — and therefore every existing cache key — unchanged when the
	// knob is unset.
	Parallelism int `json:"parallelism,omitempty"`
	// Ordering is Options.Ordering, the global stage's net-ordering
	// strategy name. Empty is the legacy RUDY path; omitempty keeps legacy
	// cache keys byte-identical. Part of the cache identity: different
	// strategies route different results.
	Ordering string `json:"ordering,omitempty"`
	// Portfolio is Options.Portfolio. Validate canonicalizes it (dedupe,
	// registration-order sort), so any submission order of the same
	// strategy set yields the same cache key; empty — the single-attempt
	// path — is omitted, keeping legacy keys unchanged.
	Portfolio []string `json:"portfolio,omitempty"`
	// OrderingProfile is Options.OrderingProfile, the congestion scorer's
	// weights. Nil (the built-in defaults) is omitted.
	OrderingProfile *portfolio.Profile `json:"ordering_profile,omitempty"`
}

// Validate checks the spec's enumerated fields and normalizes aliases (the
// verify mode "off" becomes the canonical ""), so equal semantics always
// canonicalize to equal bytes. The serving layer calls it on every decoded
// request before using the spec as a cache key.
func (s *OptionsSpec) Validate() error {
	mode, err := ParseVerifyMode(string(s.Verify))
	if err != nil {
		return err
	}
	s.Verify = mode
	if s.Parallelism < 0 {
		return fmt.Errorf("router: parallelism must be >= 0, got %d", s.Parallelism)
	}
	if s.Ordering != "" && !portfolio.Known(s.Ordering) {
		return fmt.Errorf("router: unknown ordering strategy %q (have %v)", s.Ordering, portfolio.Names())
	}
	if len(s.Portfolio) > 0 {
		if s.Ordering != "" {
			return fmt.Errorf("router: ordering %q and portfolio %v are mutually exclusive", s.Ordering, s.Portfolio)
		}
		names, err := portfolio.NormalizeNames(s.Portfolio)
		if err != nil {
			return fmt.Errorf("router: %w", err)
		}
		s.Portfolio = names
	} else {
		s.Portfolio = nil // [] and absent canonicalize to the same bytes
	}
	if s.OrderingProfile != nil {
		if err := s.OrderingProfile.Validate(); err != nil {
			return fmt.Errorf("router: %w", err)
		}
	}
	return nil
}

// ViaSpec mirrors viaplan.Options (minus the recorder). ViaCost uses the
// same flat encoding as GraphSpec.ViaCost; omitempty keeps legacy cache
// keys byte-identical when it is unset.
type ViaSpec struct {
	ViaPitch     float64 `json:"via_pitch"`
	BoundaryStep float64 `json:"boundary_step"`
	JitterFrac   float64 `json:"jitter_frac"`
	Seed         int64   `json:"seed"`
	ViaCost      float64 `json:"via_cost,omitempty"`
}

// GraphSpec mirrors rgraph.Options (minus the recorder). ViaCost is the
// flat wire encoding of the rgraph.Options.ViaCost pointer (see
// rgraph.ViaCostValue): 0 selects the default cost, positive values are
// explicit, and negative values mean free vias — keeping the legacy
// "via_cost":0 cache-key bytes for specs that never set the knob.
type GraphSpec struct {
	ViaCost             float64 `json:"via_cost"`
	NaiveCornerCapacity bool    `json:"naive_corner_capacity"`
}

// GlobalSpec mirrors global.Options (minus the recorder and the
// AfterEachNet callback, which observes rather than configures).
type GlobalSpec struct {
	CongestionThreshold       float64 `json:"congestion_threshold"`
	MaxOrderRounds            int     `json:"max_order_rounds"`
	MaxExpansions             int     `json:"max_expansions"`
	DisableRUDYOrder          bool    `json:"disable_rudy_order"`
	DisableDiagonalRefinement bool    `json:"disable_diagonal_refinement"`
	EdgeUsePerNet             int     `json:"edge_use_per_net"`
}

// DetailSpec mirrors detail.Options (minus the recorder). SkipReassign is
// omitempty so specs predating the layer-reassignment pass keep their exact
// legacy cache-key bytes.
type DetailSpec struct {
	Candidates   int     `json:"candidates"`
	MinMovable   float64 `json:"min_movable"`
	MaxFitIters  int     `json:"max_fit_iters"`
	Retries      int     `json:"retries"`
	SkipAdjust   bool    `json:"skip_adjust"`
	SkipReassign bool    `json:"skip_reassign,omitempty"`
}

// Spec projects the deterministic configuration out of o. Recorders and
// callbacks are dropped; two Options differing only in those project to the
// same spec.
func (o Options) Spec() OptionsSpec {
	return OptionsSpec{
		Via: ViaSpec{
			ViaPitch:     o.Via.ViaPitch,
			BoundaryStep: o.Via.BoundaryStep,
			JitterFrac:   o.Via.JitterFrac,
			Seed:         o.Via.Seed,
			ViaCost:      o.Via.ViaCost,
		},
		Graph: GraphSpec{
			ViaCost:             rgraph.ViaCostValue(o.Graph.ViaCost),
			NaiveCornerCapacity: o.Graph.NaiveCornerCapacity,
		},
		Global: GlobalSpec{
			CongestionThreshold:       o.Global.CongestionThreshold,
			MaxOrderRounds:            o.Global.MaxOrderRounds,
			MaxExpansions:             o.Global.MaxExpansions,
			DisableRUDYOrder:          o.Global.DisableRUDYOrder,
			DisableDiagonalRefinement: o.Global.DisableDiagonalRefinement,
			EdgeUsePerNet:             o.Global.EdgeUsePerNet,
		},
		Detail: DetailSpec{
			Candidates:   o.Detail.Candidates,
			MinMovable:   o.Detail.MinMovable,
			MaxFitIters:  o.Detail.MaxFitIters,
			Retries:      o.Detail.Retries,
			SkipAdjust:   o.Detail.SkipAdjust,
			SkipReassign: o.Detail.SkipReassign,
		},
		TimeBudgetMS:    o.TimeBudget.Milliseconds(),
		Verify:          o.Verify,
		Parallelism:     o.Parallelism,
		Ordering:        o.Ordering,
		Portfolio:       o.Portfolio,
		OrderingProfile: o.OrderingProfile,
	}
}

// Options expands the spec into runnable Options. Recorder fields are left
// nil; callers attach their own observers.
func (s OptionsSpec) Options() Options {
	return Options{
		Via: viaplan.Options{
			ViaPitch:     s.Via.ViaPitch,
			BoundaryStep: s.Via.BoundaryStep,
			JitterFrac:   s.Via.JitterFrac,
			Seed:         s.Via.Seed,
			ViaCost:      s.Via.ViaCost,
		},
		Graph: rgraph.Options{
			ViaCost:             rgraph.ViaCostPtr(s.Graph.ViaCost),
			NaiveCornerCapacity: s.Graph.NaiveCornerCapacity,
		},
		Global: global.Options{
			CongestionThreshold:       s.Global.CongestionThreshold,
			MaxOrderRounds:            s.Global.MaxOrderRounds,
			MaxExpansions:             s.Global.MaxExpansions,
			DisableRUDYOrder:          s.Global.DisableRUDYOrder,
			DisableDiagonalRefinement: s.Global.DisableDiagonalRefinement,
			EdgeUsePerNet:             s.Global.EdgeUsePerNet,
		},
		Detail: detail.Options{
			Candidates:   s.Detail.Candidates,
			MinMovable:   s.Detail.MinMovable,
			MaxFitIters:  s.Detail.MaxFitIters,
			Retries:      s.Detail.Retries,
			SkipAdjust:   s.Detail.SkipAdjust,
			SkipReassign: s.Detail.SkipReassign,
		},
		TimeBudget:      time.Duration(s.TimeBudgetMS) * time.Millisecond,
		Verify:          s.Verify,
		Parallelism:     s.Parallelism,
		Ordering:        s.Ordering,
		Portfolio:       s.Portfolio,
		OrderingProfile: s.OrderingProfile,
	}
}

// Canonical returns the byte-stable JSON encoding of the spec: compact, with
// the field order fixed by the struct definitions above. Equal specs always
// produce equal bytes, which is the property cache keys need. It fails only
// on non-finite floats, which Validate-d inputs never contain.
func (s OptionsSpec) Canonical() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("router: canonical options: %w", err)
	}
	return b, nil
}

// Fingerprint returns the canonical encoding of o's deterministic
// configuration, the options half of a result-cache key.
func (o Options) Fingerprint() ([]byte, error) {
	return o.Spec().Canonical()
}
