package router

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/portfolio"
)

// fingerprintPortfolio extends the pipeline fingerprint with the race
// summary: the winner and every attempt's canonical score must be as
// byte-stable as the routed geometry itself.
func fingerprintPortfolio(out *Output) string {
	var b strings.Builder
	b.WriteString(fingerprintOutput(out))
	fmt.Fprintf(&b, "winner:%s\n", out.Metrics.PortfolioWinner)
	for _, o := range out.Portfolio {
		fmt.Fprintf(&b, "att:%s ok:%v r:%v wl:%v v:%d\n",
			o.Strategy, o.OK, o.Routability, o.Wirelength, o.Vias)
	}
	return b.String()
}

// portfolioOfSize returns the canonical test portfolio of K strategies.
func portfolioOfSize(k int) []string {
	all := []string{"rudy", "netlen", "congestion", "anneal"}
	return all[:k]
}

func routePortfolioCase(t *testing.T, d *design.Design, names []string, par int) *Output {
	t.Helper()
	out, err := Route(context.Background(), d, Options{Portfolio: names, Parallelism: par})
	if err != nil {
		t.Fatalf("portfolio %v parallelism %d: %v", names, par, err)
	}
	return out
}

// TestPortfolioByteIdenticalAcrossParallelism is the subsystem's
// determinism gate: for every dense benchmark plus a randomized design, and
// for several portfolio sizes, the full pipeline output — geometry, guides,
// violations, metrics, winner and per-attempt scores — is byte-identical
// across Parallelism 1/2/4/8. The heavier designs run a reduced matrix so
// the suite stays affordable on small hosts.
func TestPortfolioByteIdenticalAcrossParallelism(t *testing.T) {
	type matrix struct {
		sizes []int
		pars  []int
	}
	full := matrix{sizes: []int{1, 2, 4}, pars: []int{1, 2, 4, 8}}
	cases := []struct {
		name string
		m    matrix
	}{
		{"dense1", full},
		{"dense2", full},
		{"dense3", full},
		{"dense4", matrix{sizes: []int{3}, pars: []int{1, 8}}},
		// dense5 costs seconds per attempt; two strategies across two pool
		// sizes still covers the worker-count axis there.
		{"dense5", matrix{sizes: []int{2}, pars: []int{1, 8}}},
	}
	for _, c := range cases {
		if testing.Short() && c.name != "dense1" {
			continue
		}
		d, err := design.GenerateDense(c.name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(c.name, func(t *testing.T) {
			comparePortfolioParallelism(t, d, c.m.sizes, c.m.pars)
		})
	}
	if !testing.Short() {
		d, err := design.GenerateRandom(design.RandomSpec{Seed: 7, Chips: 4, NetsPerChannel: 20})
		if err != nil {
			t.Fatal(err)
		}
		t.Run("random", func(t *testing.T) {
			comparePortfolioParallelism(t, d, []int{1, 2, 4}, []int{1, 2, 4, 8})
		})
	}
}

func comparePortfolioParallelism(t *testing.T, d *design.Design, sizes, pars []int) {
	t.Helper()
	for _, k := range sizes {
		names := portfolioOfSize(k)
		ref := fingerprintPortfolio(routePortfolioCase(t, d, names, pars[0]))
		for _, par := range pars[1:] {
			got := fingerprintPortfolio(routePortfolioCase(t, d, names, par))
			if got != ref {
				t.Fatalf("portfolio size %d: output at parallelism %d differs from parallelism %d",
					k, par, pars[0])
			}
		}
	}
}

// TestPortfolioSubmissionOrderIndependent pins the other half of the
// determinism contract: the strategy list is canonicalized, so any
// submission order of the same set yields byte-identical output, including
// the attempt rows.
func TestPortfolioSubmissionOrderIndependent(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	a := fingerprintPortfolio(routePortfolioCase(t, d, []string{"rudy", "netlen", "anneal"}, 4))
	b := fingerprintPortfolio(routePortfolioCase(t, d, []string{"anneal", "netlen", "rudy"}, 4))
	if a != b {
		t.Fatal("portfolio output depends on strategy submission order")
	}
	c := fingerprintPortfolio(routePortfolioCase(t, d, []string{"netlen", "anneal", "rudy", "netlen"}, 4))
	if a != c {
		t.Fatal("duplicate strategy names change portfolio output")
	}
}

// TestExplicitRudyMatchesLegacy: naming the paper's policy explicitly —
// as Ordering or as a one-strategy portfolio — routes byte-identically to
// the legacy empty-options path.
func TestExplicitRudyMatchesLegacy(t *testing.T) {
	d, err := design.GenerateDense("dense2")
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Route(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := fingerprintOutput(legacy)
	named, err := Route(context.Background(), d, Options{Ordering: "rudy"})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprintOutput(named) != ref {
		t.Fatal("Ordering=rudy differs from the legacy path")
	}
	solo := routePortfolioCase(t, d, []string{"rudy"}, 0)
	if fingerprintOutput(solo) != ref {
		t.Fatal("one-strategy rudy portfolio differs from the legacy path")
	}
	if solo.Metrics.PortfolioWinner != "rudy" || len(solo.Portfolio) != 1 {
		t.Fatalf("solo portfolio summary wrong: winner %q, %d attempts",
			solo.Metrics.PortfolioWinner, len(solo.Portfolio))
	}
}

// TestPortfolioOutputConsistent checks the race summary against the
// winner's own metrics and the canonical objective.
func TestPortfolioOutputConsistent(t *testing.T) {
	d, err := design.GenerateDense("dense3")
	if err != nil {
		t.Fatal(err)
	}
	out := routePortfolioCase(t, d, []string{"anneal", "congestion", "netlen", "rudy"}, 0)
	if len(out.Portfolio) != 4 {
		t.Fatalf("%d attempts, want 4", len(out.Portfolio))
	}
	for i, o := range out.Portfolio {
		if want := portfolio.Names()[i]; o.Strategy != want {
			t.Errorf("attempt %d is %q, want canonical order %q", i, o.Strategy, want)
		}
		if !o.OK {
			t.Errorf("attempt %s failed: %v", o.Strategy, o.Err)
		}
	}
	var winner *portfolio.Outcome
	for i := range out.Portfolio {
		o := &out.Portfolio[i]
		if o.Strategy == out.Metrics.PortfolioWinner {
			winner = o
		}
	}
	if winner == nil {
		t.Fatalf("winner %q not among attempts", out.Metrics.PortfolioWinner)
	}
	if winner.Routability != out.Metrics.Routability ||
		winner.Wirelength != out.Metrics.Wirelength ||
		winner.Vias != out.Metrics.Vias {
		t.Errorf("output metrics %v/%v/%d do not match winner's score %+v",
			out.Metrics.Routability, out.Metrics.Wirelength, out.Metrics.Vias, winner)
	}
	for i := range out.Portfolio {
		o := out.Portfolio[i]
		if o.Strategy != winner.Strategy && portfolio.Better(o, *winner) {
			t.Errorf("attempt %s beats the declared winner %s", o.Strategy, winner.Strategy)
		}
	}
}

func TestOrderingValidation(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Route(context.Background(), d, Options{Ordering: "zigzag"}); err == nil {
		t.Error("unknown ordering accepted")
	}
	if _, err := Route(context.Background(), d, Options{Portfolio: []string{"rudy", "zigzag"}}); err == nil {
		t.Error("unknown portfolio strategy accepted")
	}
	if _, err := Route(context.Background(), d, Options{Ordering: "netlen", Portfolio: []string{"rudy"}}); err == nil {
		t.Error("ordering+portfolio accepted")
	}
}

// TestSpecPortfolioCanonicalization pins the cache-identity behavior of the
// new spec fields: submission order canonicalizes away, the profile and the
// strategy selection are part of the key, and Validate rejects what Route
// would reject.
func TestSpecPortfolioCanonicalization(t *testing.T) {
	a := OptionsSpec{Portfolio: []string{"anneal", "rudy", "anneal"}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b := OptionsSpec{Portfolio: []string{"rudy", "anneal"}}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	ca, _ := a.Canonical()
	cb, _ := b.Canonical()
	if string(ca) != string(cb) {
		t.Errorf("equivalent portfolios canonicalize differently:\n%s\n%s", ca, cb)
	}

	c := OptionsSpec{Ordering: "congestion",
		OrderingProfile: &portfolio.Profile{FailWeight: 3}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cc, _ := c.Canonical()
	d := OptionsSpec{Ordering: "congestion"}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	cd, _ := d.Canonical()
	if string(cc) == string(cd) {
		t.Error("ordering profile not part of the cache identity")
	}

	for _, bad := range []OptionsSpec{
		{Ordering: "zigzag"},
		{Portfolio: []string{"zigzag"}},
		{Ordering: "rudy", Portfolio: []string{"netlen"}},
	} {
		bad := bad
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}

	// Round trip: spec fields survive Options() and Spec().
	rt := b.Options().Spec()
	if rt.Ordering != "" || len(rt.Portfolio) != 2 || rt.Portfolio[0] != "rudy" {
		t.Errorf("portfolio fields lost in round trip: %+v", rt)
	}
}
