package router

import (
	"fmt"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/obs"
	"rdlroute/internal/verify"
)

// VerifyMode selects how the verification gate treats a routed result. The
// zero value disables the gate, so existing callers are unaffected.
type VerifyMode string

// Gate modes. The wire names ("", "warn", "strict") are what OptionsSpec
// carries and what rdlserved job requests accept ("off" normalizes to "").
const (
	// VerifyOff skips the independent verifier entirely.
	VerifyOff VerifyMode = ""
	// VerifyWarn runs the verifier and attaches its report to the Output;
	// findings never fail the run.
	VerifyWarn VerifyMode = "warn"
	// VerifyStrict runs the verifier and turns findings into a *VerifyError
	// (matched by errors.Is against ErrVerifyFailed) with the problem list
	// attached.
	VerifyStrict VerifyMode = "strict"
)

// ParseVerifyMode maps the wire names "", "off", "warn" and "strict" to a
// VerifyMode ("off" normalizes to the canonical empty form).
func ParseVerifyMode(s string) (VerifyMode, error) {
	switch s {
	case "", "off":
		return VerifyOff, nil
	case "warn":
		return VerifyWarn, nil
	case "strict":
		return VerifyStrict, nil
	}
	return VerifyOff, fmt.Errorf("router: unknown verify mode %q (want off, warn or strict)", s)
}

// String names the mode ("off" for the canonical empty form).
func (m VerifyMode) String() string {
	if m == VerifyOff {
		return "off"
	}
	return string(m)
}

// runGate executes the verification gate on a routed result: the parallel
// independent verifier, reusing the pipeline's own DRC violations so the
// wire rules are not checked twice. Returns the report (nil when the gate
// is off).
func runGate(d *design.Design, routes []*detail.Route, violations []detail.Violation,
	mode VerifyMode, workers int, rec obs.Recorder) *verify.Report {
	if mode == VerifyOff {
		return nil
	}
	return verify.Check(d, routes, verify.Options{
		Workers: workers,
		Rec:     rec,
		DRC:     violations,
		HaveDRC: true,
	})
}
