package router

import (
	"context"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/geom"
)

// multiPinDesign builds dense1 plus one 4-pin net spanning both chips.
func multiPinDesign(t *testing.T) (*design.Design, []int) {
	t.Helper()
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	c0 := d.Chips[0].Outline
	c1 := d.Chips[1].Outline
	ids, err := d.AddMultiPinNet("clk", []design.PadSpec{
		{Chip: 0, Pos: geom.Pt(c0.Max.X, c0.Min.Y+30)},
		{Chip: 1, Pos: geom.Pt(c1.Min.X, c1.Min.Y+30)},
		{Chip: 1, Pos: geom.Pt(c1.Min.X, c1.Max.Y-30)},
		{Chip: 0, Pos: geom.Pt(c0.Max.X, c0.Max.Y-30)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, ids
}

func TestRouteMultiPinNet(t *testing.T) {
	d, ids := multiPinDesign(t)
	out, err := Route(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Routability != 1 {
		t.Fatalf("routability = %v (failed %v)", out.Metrics.Routability,
			out.GlobalResult.FailedNets)
	}
	// Each subnet's geometry connects its two pads.
	for _, ni := range ids {
		rt := out.DetailResult.Routes[ni]
		if rt == nil {
			t.Fatalf("subnet %d unrouted", ni)
		}
		a, b := d.PinPos(d.Nets[ni])
		first := rt.Segs[0].Pl[0]
		lastSeg := rt.Segs[len(rt.Segs)-1].Pl
		last := lastSeg[len(lastSeg)-1]
		if !first.ApproxEq(a) || !last.ApproxEq(b) {
			t.Errorf("subnet %d endpoints wrong", ni)
		}
	}
	// Connectivity of the whole group: union-find over shared pad
	// positions must connect all four pins.
	endpoints := map[geom.Point]int{}
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	comp := 0
	for _, ni := range ids {
		rt := out.DetailResult.Routes[ni]
		for _, p := range []geom.Point{
			rt.Segs[0].Pl[0],
			rt.Segs[len(rt.Segs)-1].Pl[len(rt.Segs[len(rt.Segs)-1].Pl)-1],
		} {
			if _, ok := endpoints[p]; !ok {
				endpoints[p] = comp
				parent[comp] = comp
				comp++
			}
		}
	}
	for _, ni := range ids {
		rt := out.DetailResult.Routes[ni]
		a := endpoints[rt.Segs[0].Pl[0]]
		lastSeg := rt.Segs[len(rt.Segs)-1].Pl
		b := endpoints[lastSeg[len(lastSeg)-1]]
		parent[find(a)] = find(b)
	}
	roots := map[int]bool{}
	for c := 0; c < comp; c++ {
		roots[find(c)] = true
	}
	if len(roots) != 1 {
		t.Errorf("multi-pin group split into %d components", len(roots))
	}
	// Group-aware DRC reports no spacing violations BETWEEN the subnets.
	for _, v := range out.Violations {
		if v.Kind != detail.SpacingViolation {
			continue
		}
		inGroup := func(net int) bool {
			for _, ni := range ids {
				if ni == net {
					return true
				}
			}
			return false
		}
		if inGroup(v.NetA) && inGroup(v.NetB) {
			t.Errorf("intra-group spacing violation reported: %v", v)
		}
	}
}

func TestMultiPinSharedPadCapacity(t *testing.T) {
	// A 3-pin chain shares its middle pad between two subnets; both must
	// terminate there.
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	c0 := d.Chips[0].Outline
	ids, err := d.AddMultiPinNet("tee", []design.PadSpec{
		{Chip: 0, Pos: geom.Pt(c0.Max.X, c0.Min.Y+33)},
		{Chip: 0, Pos: geom.Pt(c0.Max.X, c0.Min.Y+433)},
		{Chip: 0, Pos: geom.Pt(c0.Max.X, c0.Min.Y+833)},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Route(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ni := range ids {
		if out.DetailResult.Routes[ni] == nil {
			t.Fatalf("subnet %d of the shared-pad chain unrouted (failed %v)",
				ni, out.GlobalResult.FailedNets)
		}
	}
}
