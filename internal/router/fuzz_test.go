package router

import (
	"context"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
)

// TestRandomDesignsRobust routes a spread of randomized designs and checks
// structural invariants regardless of achieved routability: the router must
// never crash, every produced route must connect its net's pins with
// continuous geometry, and the global state must stay consistent.
func TestRandomDesignsRobust(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 42}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		spec := design.RandomSpec{
			Seed:           seed,
			Chips:          2 + int(seed%4),
			NetsPerChannel: 8 + int(seed%9),
			WireLayers:     2 + int(seed%2),
		}
		d, err := design.GenerateRandom(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out, err := Route(context.Background(), d, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := out.GlobalRouter.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Metrics.Routability < 0.9 {
			t.Errorf("seed %d: routability %.2f below sanity bar", seed, out.Metrics.Routability)
		}
		for ni, rt := range out.DetailResult.Routes {
			if rt == nil {
				continue
			}
			a, b := d.PinPos(d.Nets[ni])
			first := rt.Segs[0].Pl[0]
			lastSeg := rt.Segs[len(rt.Segs)-1].Pl
			last := lastSeg[len(lastSeg)-1]
			if !first.ApproxEq(a) || !last.ApproxEq(b) {
				t.Fatalf("seed %d net %d: endpoints %v/%v, want %v/%v",
					seed, ni, first, last, a, b)
			}
			if rt.Wirelength() < a.Dist(b)-1e-6 {
				t.Fatalf("seed %d net %d: wirelength below pin distance", seed, ni)
			}
		}
		// No geometric crossings between different nets (a coarse scan).
		for layer := 0; layer < d.WireLayers; layer++ {
			segs := detail.SegmentsOnLayer(out.DetailResult.Routes, layer)
			for i := 0; i < len(segs); i++ {
				for j := i + 1; j < len(segs); j++ {
					if segs[i].Net == segs[j].Net {
						continue
					}
					for _, s1 := range segs[i].Pl.Segments() {
						for _, s2 := range segs[j].Pl.Segments() {
							if s1.ProperlyIntersects(s2) {
								t.Fatalf("seed %d: nets %d/%d cross on layer %d",
									seed, segs[i].Net, segs[j].Net, layer)
							}
						}
					}
				}
			}
		}
	}
}

func TestGenerateRandomValidation(t *testing.T) {
	if _, err := design.GenerateRandom(design.RandomSpec{Chips: 1}); err == nil {
		t.Error("single-chip random design accepted")
	}
	a, err := design.GenerateRandom(design.RandomSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := design.GenerateRandom(design.RandomSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.IOPads) != len(b.IOPads) || a.Outline != b.Outline {
		t.Error("random generation not deterministic per seed")
	}
	c, err := design.GenerateRandom(design.RandomSpec{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Outline == c.Outline {
		t.Error("different seeds gave identical outlines")
	}
}
