package router

import (
	"context"
	"testing"

	"rdlroute/internal/design"
)

// TestMaxLayersHonored routes dense1 with several nets pinned to the top
// wire layer and checks the constraint end to end: constrained nets come
// out with every segment on layer 0 and no vias, while the run as a whole
// still routes.
func TestMaxLayersHonored(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	pinned := []int{0, 3, 7}
	for _, id := range pinned {
		d.Nets[id].MaxLayers = 1
	}
	out, err := Route(context.Background(), d, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.RoutedNets == 0 {
		t.Fatal("nothing routed")
	}
	for _, id := range pinned {
		rt := out.DetailResult.Routes[id]
		if rt == nil {
			t.Errorf("net %d (MaxLayers=1) not routed", id)
			continue
		}
		if len(rt.Vias) != 0 {
			t.Errorf("net %d (MaxLayers=1) uses %d vias", id, len(rt.Vias))
		}
		for _, s := range rt.Segs {
			if s.Layer != 0 {
				t.Errorf("net %d (MaxLayers=1) has a segment on layer %d", id, s.Layer)
			}
		}
	}
}
