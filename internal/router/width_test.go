package router

import (
	"context"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
)

// wideNetDesign returns dense1 with a few nets widened to power-class
// wires.
func wideNetDesign(t *testing.T, width float64, nets ...int) *design.Design {
	t.Helper()
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	for _, ni := range nets {
		d.Nets[ni].Width = width
	}
	return d
}

func TestWidthHelpers(t *testing.T) {
	d := wideNetDesign(t, 8, 3)
	if got := d.WidthOf(3); got != 8 {
		t.Errorf("WidthOf(3) = %v", got)
	}
	if got := d.WidthOf(0); got != d.Rules.WireWidth {
		t.Errorf("WidthOf(0) = %v", got)
	}
	if got := d.WidthOf(-1); got != d.Rules.WireWidth {
		t.Errorf("WidthOf(-1) = %v", got)
	}
	// Clearance: default pair = pitch; wide pair larger.
	if got := d.Clearance(0, 1); got != d.Rules.Pitch() {
		t.Errorf("default clearance = %v, want %v", got, d.Rules.Pitch())
	}
	if got := d.Clearance(0, 3); got != (2+8)/2.0+2 {
		t.Errorf("mixed clearance = %v, want 7", got)
	}
	// Track units: 8 µm wire at 4 µm pitch occupies ceil(10/4) = 3 tracks.
	if got := d.TrackUnits(3); got != 3 {
		t.Errorf("TrackUnits(3) = %v, want 3", got)
	}
	if got := d.TrackUnits(0); got != 1 {
		t.Errorf("TrackUnits(0) = %v, want 1", got)
	}
}

func TestRouteWideNets(t *testing.T) {
	d := wideNetDesign(t, 8, 2, 10)
	out, err := Route(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Routability != 1 {
		t.Fatalf("routability with wide nets = %v (failed %v)",
			out.Metrics.Routability, out.GlobalResult.FailedNets)
	}
	// The DRC must evaluate wide pairs against their larger limit: every
	// spacing violation involving a wide net reports the width-aware limit,
	// and the overall violation count stays a small fraction of the
	// segments (mixed-width legalization keeps residuals, documented in
	// EXPERIMENTS.md, but the checker must measure them correctly).
	wideLimit := d.Clearance(2, 0)
	if wideLimit <= d.Rules.Pitch() {
		t.Fatal("test setup: wide clearance not larger than pitch")
	}
	segs := 0
	for _, rt := range out.DetailResult.Routes {
		if rt == nil {
			continue
		}
		for _, s := range rt.Segs {
			segs += len(s.Pl) - 1
		}
	}
	spacing := 0
	for _, v := range out.Violations {
		if v.Kind != detail.SpacingViolation {
			continue
		}
		spacing++
		want := d.Clearance(v.NetA, v.NetB)
		if v.Limit != want {
			t.Errorf("violation %v uses limit %v, want width-aware %v", v, v.Limit, want)
		}
	}
	if spacing > segs/10 {
		t.Errorf("%d spacing violations over %d segments", spacing, segs)
	}
	t.Logf("wide run: %d spacing residuals over %d segments", spacing, segs)
}

func TestWideNetConsumesMoreCapacity(t *testing.T) {
	// A widened net consumes more edge capacity, so total consumed units
	// must exceed the default run's on the edges it crosses. Indirect but
	// effective check: CheckInvariants (which verifies units bookkeeping)
	// passes and the wide run's guide is not shorter than the default one.
	dDefault, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	outDefault, err := Route(context.Background(), dDefault, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dWide := wideNetDesign(t, 10, 5)
	outWide, err := Route(context.Background(), dWide, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := outWide.GlobalRouter.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if outWide.Metrics.Routability != 1 {
		t.Fatalf("wide run routability %v", outWide.Metrics.Routability)
	}
	_ = outDefault
}

func TestWidthSurvivesJSON(t *testing.T) {
	d := wideNetDesign(t, 8, 3)
	path := t.TempDir() + "/w.json"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := design.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.WidthOf(3) != 8 || got.WidthOf(0) != d.Rules.WireWidth {
		t.Error("width lost in JSON round trip")
	}
}
