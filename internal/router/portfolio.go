package router

import (
	"context"
	"fmt"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/global"
	"rdlroute/internal/obs"
	"rdlroute/internal/portfolio"
	"rdlroute/internal/rgraph"
)

// orderingProfile resolves the congestion-scorer profile (zero Profile means
// the built-in defaults; see portfolio.DefaultProfile).
func (o Options) orderingProfile() portfolio.Profile {
	if o.OrderingProfile != nil {
		return *o.OrderingProfile
	}
	return portfolio.Profile{}
}

// orderingStrategy resolves the single-strategy knob. The empty name
// returns nil — the legacy RUDY path, with the global stage's nil-strategy
// short-circuit and unchanged cache keys.
func (o Options) orderingStrategy() (portfolio.Strategy, error) {
	if o.Ordering == "" {
		return nil, nil
	}
	s, err := portfolio.New(o.Ordering, o.orderingProfile())
	if err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	return s, nil
}

// portfolioStrategies resolves the Portfolio list into concrete strategies
// in canonical order. Nil when the portfolio is empty (single-attempt
// path). Ordering and Portfolio are mutually exclusive: a portfolio already
// names every strategy it races.
func (o Options) portfolioStrategies() ([]portfolio.Strategy, error) {
	if len(o.Portfolio) == 0 {
		return nil, nil
	}
	if o.Ordering != "" {
		return nil, fmt.Errorf("router: Ordering %q and Portfolio %v are mutually exclusive", o.Ordering, o.Portfolio)
	}
	names, err := portfolio.NormalizeNames(o.Portfolio)
	if err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	prof := o.orderingProfile()
	out := make([]portfolio.Strategy, len(names))
	for i, name := range names {
		s, err := portfolio.New(name, prof)
		if err != nil {
			return nil, fmt.Errorf("router: %w", err)
		}
		out[i] = s
	}
	return out, nil
}

// attemptResult bundles the mutable outputs of one global+detail pass: one
// ordering strategy routed end to end on its own router instance over the
// shared (read-only) routing graph.
type attemptResult struct {
	gr   *global.Router
	gres *global.Result
	gerr error // context cancellation from the global stage, if any
	dres *detail.Result
	err  error // hard pipeline error; nil for a completed attempt
}

// runAttempt routes the whole global+detail sequence once. strat, when
// non-nil, overrides the global stage's ordering strategy; workers is the
// attempt's worker budget for every stage without its own override. rec
// receives the stage spans (the portfolio racer passes the no-op recorder:
// spans from K concurrent attempts would interleave nondeterministically).
func runAttempt(ctx context.Context, g *rgraph.Graph, opt Options,
	strat portfolio.Strategy, workers int, rec obs.Recorder) attemptResult {
	gopt := opt.Global
	if gopt.Rec == nil {
		gopt.Rec = rec
	}
	if gopt.Parallelism == 0 {
		gopt.Parallelism = workers
	}
	if strat != nil {
		gopt.Order = strat
	}
	gr := global.New(g, gopt)
	gres, gerr := gr.Run(ctx)
	if gres == nil {
		return attemptResult{gr: gr, gerr: gerr, err: fmt.Errorf("router: global routing: %w", gerr)}
	}

	dopt := opt.Detail
	if dopt.Rec == nil {
		dopt.Rec = rec
	}
	if dopt.Workers == 0 {
		dopt.Workers = workers
	}
	dres, err := detail.Run(ctx, gr, gres, dopt)
	if err != nil {
		return attemptResult{gr: gr, gres: gres, gerr: gerr,
			err: fmt.Errorf("router: detailed routing: %w", err)}
	}
	return attemptResult{gr: gr, gres: gres, gerr: gerr, dres: dres}
}

// outcomeOf reduces an attempt to the racer's canonical score.
func outcomeOf(ar attemptResult) portfolio.Outcome {
	out := portfolio.Outcome{Err: ar.err}
	if ar.err != nil {
		return out
	}
	out.OK = true
	out.Routability = ar.gres.Routability()
	out.Wirelength = ar.dres.Wirelength
	for _, rt := range ar.dres.Routes {
		if rt != nil {
			out.Vias += len(rt.Vias)
		}
	}
	return out
}

// routePortfolio races the strategies as independent full route attempts
// over the shared graph and finishes the pipeline (DRC, verify gate,
// metrics) on the canonical winner. Attempts run on detached recorders;
// the caller's recorder gets the per-strategy summary instead:
// portfolio.attempts, portfolio.winner.<name>, and per-strategy
// routability/wirelength gauges.
func routePortfolio(ctx context.Context, d *design.Design, g *rgraph.Graph,
	opt Options, strategies []portfolio.Strategy, rec obs.Recorder, start time.Time) (*Output, error) {
	span := obs.StartSpan(rec, "portfolio")
	attempts := make([]attemptResult, len(strategies))
	winner, outs := portfolio.Race(strategies, opt.Parallelism,
		func(slot int, s portfolio.Strategy, workers int) portfolio.Outcome {
			attempts[slot] = runAttempt(ctx, g, opt, s, workers, obs.Or(nil))
			return outcomeOf(attempts[slot])
		})
	span.End()

	if rec.Enabled() {
		rec.Count("portfolio.attempts", int64(len(outs)))
		rec.Count("portfolio.winner."+outs[winner].Strategy, 1)
		for _, out := range outs {
			if !out.OK {
				rec.Count("portfolio."+out.Strategy+".failed", 1)
				continue
			}
			rec.Gauge("portfolio."+out.Strategy+".routability", out.Routability)
			rec.Gauge("portfolio."+out.Strategy+".wirelength_um", out.Wirelength)
		}
	}

	ar := attempts[winner]
	if ar.err != nil {
		// Every attempt failed (a completed attempt always beats an errored
		// one); surface the canonical winner's error.
		return nil, ar.err
	}
	return finish(ctx, d, g, ar, opt, rec, start, outs, outs[winner].Strategy)
}
