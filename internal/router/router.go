// Package router is the public pipeline facade of the any-angle RDL router:
// via planning → routing-graph construction → global routing (crossing-aware
// A* with the Eq. 1/Eq. 2 capacity model, RUDY ordering, diagonal utility
// refinement, net-order adjustment) → detailed routing (DP access-point
// adjustment, fit-routing tile legalization) → design-rule checking →
// optional verification gate (Options.Verify) re-checking the result with
// the independent verifier before it is reported as success.
//
// Typical use:
//
//	d, _ := design.GenerateDense("dense1")
//	out, err := router.Route(context.Background(), d, router.Options{})
//	fmt.Println(out.Metrics.Routability, out.Metrics.Wirelength)
package router

import (
	"context"
	"fmt"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/global"
	"rdlroute/internal/obs"
	"rdlroute/internal/portfolio"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/verify"
	"rdlroute/internal/viaplan"
)

// Options bundles the per-stage options plus the overall time budget.
type Options struct {
	Via    viaplan.Options
	Graph  rgraph.Options
	Global global.Options
	Detail detail.Options
	// Parallelism is the pipeline's one concurrency knob: it sizes the
	// worker pools of global routing (speculative multi-net search and
	// ordering seeds), detailed routing, the DRC stage and the
	// verification gate. Zero selects GOMAXPROCS capped at 8; 1 forces the
	// serial reference path everywhere. Results are byte-identical for
	// every value. A stage-level override (Global.Parallelism,
	// Detail.Workers) or the deprecated VerifyWorkers alias wins over this
	// knob for its own stage when non-zero.
	Parallelism int
	// TimeBudget aborts routing when exceeded (the paper caps every run at
	// one hour and reports the best result so far). Zero means no limit.
	// The budget is enforced as a context deadline with ErrTimeout as its
	// cancellation cause.
	TimeBudget time.Duration
	// Rec receives spans, counters, gauges and progress events from every
	// pipeline stage. Nil selects the no-op recorder. A stage whose own
	// options carry a non-nil recorder keeps it.
	Rec obs.Recorder
	// Verify selects the verification gate: off (zero value) skips the
	// independent verifier, warn attaches its report to the Output, strict
	// additionally fails the run with a *VerifyError when the verifier
	// finds problems.
	Verify VerifyMode
	// VerifyWorkers sizes the worker pool of the DRC stage and the
	// verification gate.
	//
	// Deprecated: use Parallelism, which covers every stage. VerifyWorkers
	// is kept as a working alias for the DRC/verify stages and wins over
	// Parallelism there when non-zero.
	VerifyWorkers int
	// Ordering selects the global stage's net-ordering strategy by name
	// ("rudy", "netlen", "congestion", "anneal"; see internal/portfolio).
	// Empty selects the legacy RUDY path — byte-identical output and
	// unchanged cache keys. Mutually exclusive with Portfolio.
	Ordering string
	// Portfolio lists strategies raced as independent full route attempts
	// (each on its own router instance over the shared routing graph,
	// splitting the Parallelism budget); the winner is chosen by the
	// canonical objective routability > wirelength > via count > strategy
	// name, so the selected result is byte-identical for any worker count,
	// completion order or submission order. Empty (the default) routes the
	// single configured strategy.
	Portfolio []string
	// OrderingProfile parameterizes the "congestion" strategy's scorer;
	// nil selects the built-in default weights.
	OrderingProfile *portfolio.Profile
}

// verifyWorkers resolves the DRC/verify pool size: the deprecated
// stage-level alias when set, else the unified knob (zero falls through to
// the stages' own GOMAXPROCS-capped-at-8 default).
func (o Options) verifyWorkers() int {
	if o.VerifyWorkers != 0 {
		return o.VerifyWorkers
	}
	return o.Parallelism
}

// Metrics summarizes one routing run in the form the paper's tables report.
type Metrics struct {
	// Routability is the fraction of nets fully routed, in [0, 1].
	Routability float64
	RoutedNets  int
	TotalNets   int
	// Wirelength is the total routed wirelength in µm. When Routability is
	// below 1 it covers only the successfully routed nets and is therefore
	// a lower bound (the paper's '>' notation).
	Wirelength     float64
	WirelengthIsLB bool
	// Vias is the number of vias used by routed nets (after the detail
	// stage's layer-reassignment pass).
	Vias int
	// ViasBeforeReassign is the via count the routes carried before the
	// layer-reassignment pass; equal to Vias when the pass is skipped or
	// found nothing to fold.
	ViasBeforeReassign int
	// Runtime is the wall-clock routing time (graph build included).
	Runtime time.Duration
	// TimedOut reports whether a deadline — the TimeBudget or one already
	// carried by the caller's context — cut the run short.
	TimedOut bool

	GlobalRounds       int
	DiagonalReductions int
	FitFailures        int
	DRCViolations      int
	// VerifyFindings is the verification gate's finding count; zero when
	// the gate is off (see VerifyMode).
	VerifyFindings int
	// PortfolioWinner names the strategy whose attempt won the portfolio
	// race; empty for single-attempt runs.
	PortfolioWinner string
	GraphStats      rgraph.Stats
}

// Output carries the full results of a routing run.
type Output struct {
	Design       *design.Design
	Graph        *rgraph.Graph
	GlobalRouter *global.Router
	GlobalResult *global.Result
	DetailResult *detail.Result
	Violations   []detail.Violation
	// VerifyReport is the verification gate's report; nil when the gate is
	// off (Options.Verify == VerifyOff).
	VerifyReport *verify.Report
	// Portfolio holds every race attempt's canonical score in canonical
	// strategy order; nil for single-attempt runs.
	Portfolio []portfolio.Outcome
	Metrics   Metrics
}

// Route runs the complete any-angle routing pipeline on a design.
//
// Deadlines degrade, cancellation aborts: when ctx's deadline (or the
// TimeBudget) expires mid-run the pipeline finishes with the nets routed so
// far and returns the partial Output with a nil error and
// Metrics.TimedOut set — the paper's report-best-so-far behaviour. When ctx
// is cancelled explicitly, Route returns the partial Output together with
// the stage-wrapped ctx.Err().
func Route(ctx context.Context, d *design.Design, opt Options) (*Output, error) {
	start := time.Now()
	ctx, cancel := obs.WithBudget(ctx, opt.TimeBudget, ErrTimeout)
	defer cancel()
	rec := obs.Or(opt.Rec)

	vopt := opt.Via
	if vopt.Rec == nil {
		vopt.Rec = rec
	}
	if vopt.ViaCost == 0 {
		// Let the graph's via objective bias the candidate lattice density
		// unless the via planner was given its own knob.
		vopt.ViaCost = rgraph.ViaCostValue(opt.Graph.ViaCost)
	}
	span := obs.StartSpan(rec, "viaplan")
	plan, err := viaplan.Build(d, vopt)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("router: via planning: %w", err)
	}

	gropt := opt.Graph
	if gropt.Rec == nil {
		gropt.Rec = rec
	}
	span = obs.StartSpan(rec, "rgraph")
	g, err := rgraph.Build(d, plan, gropt)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("router: graph build: %w", err)
	}

	strategies, err := opt.portfolioStrategies()
	if err != nil {
		return nil, err
	}
	if len(strategies) > 0 {
		return routePortfolio(ctx, d, g, opt, strategies, rec, start)
	}

	strat, err := opt.orderingStrategy()
	if err != nil {
		return nil, err
	}
	ar := runAttempt(ctx, g, opt, strat, opt.Parallelism, rec)
	if ar.err != nil {
		return nil, ar.err
	}
	return finish(ctx, d, g, ar, opt, rec, start, nil, "")
}

// finish runs the shared pipeline epilogue on a completed attempt — DRC,
// the verification gate, metrics — and assembles the Output. outs and
// winner carry the portfolio race summary (nil/empty for single-attempt
// runs).
func finish(ctx context.Context, d *design.Design, g *rgraph.Graph,
	ar attemptResult, opt Options, rec obs.Recorder, start time.Time,
	outs []portfolio.Outcome, winner string) (*Output, error) {
	gres, dres := ar.gres, ar.dres

	span := obs.StartSpan(rec, "drc")
	violations := detail.CheckDRCParallel(dres.Routes, d, detail.DRCOptions{
		Workers: opt.verifyWorkers(), Rec: rec,
	})
	span.End()
	if rec.Enabled() {
		rec.Count("drc.violations", int64(len(violations)))
	}

	// Verification gate: the independent verifier re-checks the result,
	// reusing the violations above so wire rules are not checked twice.
	report := runGate(d, dres.Routes, violations, opt.Verify, opt.verifyWorkers(), rec)

	out := &Output{
		Design:       d,
		Graph:        g,
		GlobalRouter: ar.gr,
		GlobalResult: gres,
		DetailResult: dres,
		Violations:   violations,
		VerifyReport: report,
		Portfolio:    outs,
	}
	m := &out.Metrics
	m.TotalNets = len(d.Nets)
	for _, rt := range dres.Routes {
		if rt != nil {
			m.RoutedNets++
			m.Vias += len(rt.Vias)
		}
	}
	m.ViasBeforeReassign = m.Vias
	if dres.Reassign.ViasBefore > 0 {
		m.ViasBeforeReassign = dres.Reassign.ViasBefore
	}
	m.Routability = gres.Routability()
	m.Wirelength = dres.Wirelength
	m.WirelengthIsLB = m.RoutedNets < m.TotalNets
	m.Runtime = time.Since(start)
	m.TimedOut = obs.TimedOut(ctx)
	m.GlobalRounds = gres.OrderRounds
	m.DiagonalReductions = gres.DiagonalReductions
	m.FitFailures = dres.FitFailures
	m.DRCViolations = len(violations)
	if report != nil {
		m.VerifyFindings = len(report.Problems)
	}
	m.PortfolioWinner = winner
	m.GraphStats = g.Stats()
	if rec.Enabled() {
		rec.Gauge("routability", m.Routability)
		rec.Gauge("wirelength_um", m.Wirelength)
	}

	if ar.gerr != nil && !m.TimedOut {
		// Explicit cancellation: hand back what was routed plus the cause.
		return out, fmt.Errorf("router: global routing: %w", ar.gerr)
	}
	if opt.Verify == VerifyStrict && report != nil && !report.OK() {
		return out, &VerifyError{Report: report}
	}
	return out, nil
}
