// Package router is the public pipeline facade of the any-angle RDL router:
// via planning → routing-graph construction → global routing (crossing-aware
// A* with the Eq. 1/Eq. 2 capacity model, RUDY ordering, diagonal utility
// refinement, net-order adjustment) → detailed routing (DP access-point
// adjustment, fit-routing tile legalization) → design-rule checking.
//
// Typical use:
//
//	d, _ := design.GenerateDense("dense1")
//	out, err := router.Route(d, router.Options{})
//	fmt.Println(out.Metrics.Routability, out.Metrics.Wirelength)
package router

import (
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/global"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/viaplan"
)

// Options bundles the per-stage options plus the overall time budget.
type Options struct {
	Via    viaplan.Options
	Graph  rgraph.Options
	Global global.Options
	Detail detail.Options
	// TimeBudget aborts global routing when exceeded (the paper caps every
	// run at one hour and reports the best result so far). Zero means no
	// limit.
	TimeBudget time.Duration
}

// Metrics summarizes one routing run in the form the paper's tables report.
type Metrics struct {
	// Routability is the fraction of nets fully routed, in [0, 1].
	Routability float64
	RoutedNets  int
	TotalNets   int
	// Wirelength is the total routed wirelength in µm. When Routability is
	// below 1 it covers only the successfully routed nets and is therefore
	// a lower bound (the paper's '>' notation).
	Wirelength     float64
	WirelengthIsLB bool
	// Vias is the number of vias used by routed nets.
	Vias int
	// Runtime is the wall-clock routing time (graph build included).
	Runtime time.Duration
	// TimedOut reports whether the time budget cut the run short.
	TimedOut bool

	GlobalRounds       int
	DiagonalReductions int
	FitFailures        int
	DRCViolations      int
	GraphStats         rgraph.Stats
}

// Output carries the full results of a routing run.
type Output struct {
	Design       *design.Design
	Graph        *rgraph.Graph
	GlobalRouter *global.Router
	GlobalResult *global.Result
	DetailResult *detail.Result
	Violations   []detail.Violation
	Metrics      Metrics
}

// Route runs the complete any-angle routing pipeline on a design.
func Route(d *design.Design, opt Options) (*Output, error) {
	start := time.Now()
	deadline := time.Time{}
	if opt.TimeBudget > 0 {
		deadline = start.Add(opt.TimeBudget)
	}

	plan, err := viaplan.Build(d, opt.Via)
	if err != nil {
		return nil, err
	}
	g, err := rgraph.Build(d, plan, opt.Graph)
	if err != nil {
		return nil, err
	}

	gopt := opt.Global
	timedOut := false
	if !deadline.IsZero() {
		userStop := gopt.ShouldStop
		gopt.ShouldStop = func() bool {
			if userStop != nil && userStop() {
				return true
			}
			if time.Now().After(deadline) {
				timedOut = true
				return true
			}
			return false
		}
	}
	gr := global.New(g, gopt)
	gres, err := gr.Run()
	if err != nil {
		return nil, err
	}
	dres, err := detail.Run(gr, gres, opt.Detail)
	if err != nil {
		return nil, err
	}
	violations := detail.CheckDRCWithDesign(dres.Routes, d)

	out := &Output{
		Design:       d,
		Graph:        g,
		GlobalRouter: gr,
		GlobalResult: gres,
		DetailResult: dres,
		Violations:   violations,
	}
	m := &out.Metrics
	m.TotalNets = len(d.Nets)
	for _, rt := range dres.Routes {
		if rt != nil {
			m.RoutedNets++
			m.Vias += len(rt.Vias)
		}
	}
	m.Routability = gres.Routability()
	m.Wirelength = dres.Wirelength
	m.WirelengthIsLB = m.RoutedNets < m.TotalNets
	m.Runtime = time.Since(start)
	m.TimedOut = timedOut
	m.GlobalRounds = gres.OrderRounds
	m.DiagonalReductions = gres.DiagonalReductions
	m.FitFailures = dres.FitFailures
	m.DRCViolations = len(violations)
	m.GraphStats = g.Stats()
	return out, nil
}
