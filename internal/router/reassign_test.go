package router

import (
	"context"
	"fmt"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/stats"
)

func routeDense(t *testing.T, name string, opt Options) *Output {
	t.Helper()
	d, err := design.GenerateDense(name)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Route(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReassignReducesViasOnDenseBenchmarks pins the layer-reassignment
// pass's acceptance bar end to end: across the dense suite it strictly
// reduces the total via count on several benchmarks, never increases any
// DRC or verification finding count, and leaves every route satisfying the
// segments/vias invariant.
func TestReassignReducesViasOnDenseBenchmarks(t *testing.T) {
	names := []string{"dense1", "dense2", "dense3", "dense4", "dense5"}
	minReduced := 3
	if testing.Short() {
		names = names[:3] // dense3 is the smallest benchmark that folds
		minReduced = 1
	}
	reduced := 0
	for _, name := range names {
		off := routeDense(t, name, Options{Verify: VerifyWarn, Detail: detail.Options{SkipReassign: true}})
		on := routeDense(t, name, Options{Verify: VerifyWarn})
		if on.Metrics.Vias > off.Metrics.Vias {
			t.Errorf("%s: reassignment increased vias %d -> %d", name, off.Metrics.Vias, on.Metrics.Vias)
		}
		if on.Metrics.Vias < off.Metrics.Vias {
			reduced++
		}
		if on.Metrics.ViasBeforeReassign != off.Metrics.Vias {
			t.Errorf("%s: ViasBeforeReassign = %d, want the skip-pass count %d",
				name, on.Metrics.ViasBeforeReassign, off.Metrics.Vias)
		}
		if on.Metrics.DRCViolations > off.Metrics.DRCViolations {
			t.Errorf("%s: reassignment added DRC findings %d -> %d",
				name, off.Metrics.DRCViolations, on.Metrics.DRCViolations)
		}
		if on.Metrics.VerifyFindings > off.Metrics.VerifyFindings {
			t.Errorf("%s: reassignment added verify findings %d -> %d",
				name, off.Metrics.VerifyFindings, on.Metrics.VerifyFindings)
		}
		if on.Metrics.Routability < off.Metrics.Routability {
			t.Errorf("%s: reassignment lost routability %v -> %v",
				name, off.Metrics.Routability, on.Metrics.Routability)
		}
		for net, rt := range on.DetailResult.Routes {
			if rt == nil {
				continue
			}
			if len(rt.Segs) != len(rt.Vias)+1 {
				t.Errorf("%s net %d: %d segs with %d vias after reassignment",
					name, net, len(rt.Segs), len(rt.Vias))
			}
		}
	}
	if reduced < minReduced {
		t.Errorf("reassignment reduced vias on %d of %d benchmarks, want >= %d",
			reduced, len(names), minReduced)
	}
}

// TestViaAccountingDifferential asserts the two independent via counters
// agree — stats.Analyze walks the route geometry while Metrics.Vias is
// summed by the router's epilogue — on every dense benchmark, and that the
// per-via-layer histogram is pinned across Parallelism. Run under -race by
// the race gate.
func TestViaAccountingDifferential(t *testing.T) {
	names := []string{"dense1", "dense2", "dense3", "dense4", "dense5"}
	pars := []int{1, 2, 4, 8}
	if testing.Short() {
		names = names[:2]
		pars = []int{1, 4}
	}
	for _, name := range names {
		var ref map[int]int
		for _, p := range pars {
			out := routeDense(t, name, Options{Parallelism: p})
			rep := stats.Analyze(out.DetailResult.Routes)
			if rep.ViaTotal != out.Metrics.Vias {
				t.Errorf("%s parallelism=%d: stats counts %d vias, router metrics %d",
					name, p, rep.ViaTotal, out.Metrics.Vias)
			}
			if ref == nil {
				ref = rep.Vias
				continue
			}
			if fmt.Sprint(rep.Vias) != fmt.Sprint(ref) {
				t.Errorf("%s parallelism=%d: via histogram %v differs from serial %v",
					name, p, rep.Vias, ref)
			}
		}
	}
}
