package router

import (
	"context"
	"errors"
	"testing"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/global"
)

func TestRouteDense1(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Route(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := out.Metrics
	if m.Routability != 1 {
		t.Fatalf("routability = %v", m.Routability)
	}
	if m.RoutedNets != m.TotalNets || m.TotalNets != len(d.Nets) {
		t.Errorf("net counts wrong: %d/%d", m.RoutedNets, m.TotalNets)
	}
	if m.Wirelength <= d.TotalHPWL() {
		t.Errorf("wirelength %v below HPWL %v", m.Wirelength, d.TotalHPWL())
	}
	if m.WirelengthIsLB {
		t.Error("full routability must not be a lower bound")
	}
	if m.Vias == 0 {
		t.Error("crossing nets should need vias")
	}
	if m.Vias%2 != 0 {
		t.Error("via count must be even for pins on one layer")
	}
	if m.Runtime <= 0 {
		t.Error("runtime not measured")
	}
	if m.TimedOut {
		t.Error("should not time out without budget")
	}
	if m.GraphStats.ViaNodes == 0 || m.GraphStats.EdgeNodes == 0 {
		t.Error("graph stats missing")
	}
	if len(out.Violations) != m.DRCViolations {
		t.Error("violation count mismatch")
	}
}

func TestRouteMetricsConsistency(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Route(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Metrics wirelength equals the detail result's.
	if out.Metrics.Wirelength != out.DetailResult.Wirelength {
		t.Error("wirelength mismatch between metrics and detail result")
	}
	// Via count matches route via lists.
	vias := 0
	for _, rt := range out.DetailResult.Routes {
		if rt != nil {
			vias += len(rt.Vias)
		}
	}
	if vias != out.Metrics.Vias {
		t.Errorf("vias = %d, metrics say %d", vias, out.Metrics.Vias)
	}
	// DRC recomputes identically.
	vs := detail.CheckDRC(out.DetailResult.Routes, d.Rules, d.WireLayers)
	if len(vs) != out.Metrics.DRCViolations {
		t.Errorf("DRC recount %d != %d", len(vs), out.Metrics.DRCViolations)
	}
}

func TestRouteTimeBudget(t *testing.T) {
	d, err := design.GenerateDense("dense3")
	if err != nil {
		t.Fatal(err)
	}
	// A 1 ns budget must abort global routing almost immediately but still
	// return a structurally valid (mostly empty) result.
	out, err := Route(context.Background(), d, Options{TimeBudget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Metrics.TimedOut {
		t.Error("expected timeout")
	}
	if out.Metrics.Routability > 0.5 {
		t.Errorf("timed-out run routed %.0f%%", out.Metrics.Routability*100)
	}
	if out.Metrics.RoutedNets < out.Metrics.TotalNets && !out.Metrics.WirelengthIsLB {
		t.Error("partial result must flag wirelength as a lower bound")
	}
}

func TestRouteContextCancelReturnsPartial(t *testing.T) {
	// Cancelling the caller's context mid-global-route must surface as an
	// error (unlike a deadline, which degrades silently) while still
	// returning the partial Output for inspection.
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	committed := 0
	out, err := Route(ctx, d, Options{
		TimeBudget: time.Hour,
		Global: global.Options{
			AfterEachNet: func(int) {
				committed++
				if committed == 2 {
					cancel()
				}
			},
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out == nil {
		t.Fatal("cancellation must still return the partial Output")
	}
	if out.Metrics.TimedOut {
		t.Error("explicit cancel must not read as a timeout")
	}
	if out.Metrics.Routability >= 1 {
		t.Error("cancelled run must not reach full routability")
	}
	if out.DetailResult == nil || len(out.DetailResult.Routes) != len(d.Nets) {
		t.Error("partial Output must carry a full-length detail result")
	}
}

func TestRouteTimeoutCause(t *testing.T) {
	// The TimeBudget deadline carries ErrTimeout as its cancellation cause,
	// and the run degrades without an error.
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Route(context.Background(), d, Options{TimeBudget: time.Nanosecond})
	if err != nil {
		t.Fatalf("deadline must degrade, not error: %v", err)
	}
	if !out.Metrics.TimedOut {
		t.Error("1ns budget must report TimedOut")
	}
}

func TestRouteInvalidDesign(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	d.WireLayers = 0
	if _, err := Route(context.Background(), d, Options{}); err == nil {
		t.Error("invalid design must fail")
	}
}
