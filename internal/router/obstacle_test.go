package router

import (
	"context"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/geom"
)

// TestRouteAroundObstacle places a keep-out block in the middle of dense1's
// routing channel and verifies every route detours around it on every
// layer, at a wirelength cost.
func TestRouteAroundObstacle(t *testing.T) {
	base, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Route(context.Background(), base, Options{})
	if err != nil {
		t.Fatal(err)
	}

	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	// dense1 channel spans x ∈ [1620, 2040]; block its middle band.
	obstacle := design.Obstacle{
		Name: "cavity",
		Rect: geom.R(1760, 850, 1900, 1450),
	}
	if err := d.AddObstacle(obstacle); err != nil {
		t.Fatal(err)
	}
	out, err := Route(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Routability < 0.95 {
		t.Fatalf("routability with obstacle = %v", out.Metrics.Routability)
	}
	// No wire enters the keep-out.
	obstacleHits := 0
	for _, v := range out.Violations {
		if v.Kind == detail.ObstacleViolation {
			obstacleHits++
		}
	}
	if obstacleHits != 0 {
		t.Errorf("%d wires enter the keep-out", obstacleHits)
	}
	// Detouring around the block costs wirelength.
	if out.Metrics.Routability == 1 && out.Metrics.Wirelength <= ref.Metrics.Wirelength {
		t.Errorf("obstacle run not longer: %v vs %v",
			out.Metrics.Wirelength, ref.Metrics.Wirelength)
	}
	t.Logf("wirelength without obstacle %.0f, with %.0f (+%.1f%%)",
		ref.Metrics.Wirelength, out.Metrics.Wirelength,
		100*(out.Metrics.Wirelength-ref.Metrics.Wirelength)/ref.Metrics.Wirelength)
}

// TestLayerScopedObstacle verifies that an obstacle blocking only layer 0
// pushes wires to layer 1 underneath it rather than around it.
func TestLayerScopedObstacle(t *testing.T) {
	d, err := design.GenerateDense("dense1")
	if err != nil {
		t.Fatal(err)
	}
	obstacle := design.Obstacle{
		Name:   "topside-keepout",
		Rect:   geom.R(1750, 950, 1910, 1350),
		Layers: []int{0},
	}
	if err := d.AddObstacle(obstacle); err != nil {
		t.Fatal(err)
	}
	out, err := Route(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Routability < 0.95 {
		t.Fatalf("routability = %v", out.Metrics.Routability)
	}
	// Layer-0 wires stay out; layer-1 wires may pass through.
	through := 0
	for _, rt := range out.DetailResult.Routes {
		if rt == nil {
			continue
		}
		for _, seg := range rt.Segs {
			for _, s := range seg.Pl.Segments() {
				hit := d.SegmentBlocked(s, seg.Layer, 0)
				if hit && seg.Layer == 0 {
					t.Fatalf("net %d crosses the layer-0 keep-out on layer 0", rt.Net)
				}
				if seg.Layer == 1 && d.SegmentBlocked(s, 0, 0) {
					through++
				}
			}
		}
	}
	if through == 0 {
		t.Error("no wire used layer 1 under the keep-out; expected dives")
	}
}
