package router

import (
	"errors"
	"fmt"

	"rdlroute/internal/global"
	"rdlroute/internal/verify"
)

// ErrTimeout is installed as the cancellation cause of the context derived
// from Options.TimeBudget, so callers can distinguish a budget expiry from
// an ambient deadline via context.Cause. It is also the sentinel wrapped by
// the strict-mode errors of cmd/rdlroute.
var ErrTimeout = errors.New("router: time budget exceeded")

// ErrUnroutable is the sentinel wrapped by per-net routing failures; it
// aliases the global router's error so errors.Is works across both
// packages.
var ErrUnroutable = global.ErrUnroutable

// ErrVerifyFailed is the sentinel matched by errors.Is for strict-mode
// verification failures. The concrete error is a *VerifyError carrying the
// full problem list.
var ErrVerifyFailed = errors.New("router: verification failed")

// VerifyError is the strict-gate failure: the pipeline produced a result,
// but the independent verifier found problems with it. The partial Output
// (including Output.VerifyReport) is still returned alongside the error.
type VerifyError struct {
	Report *verify.Report
}

// Error summarizes the findings; the full list lives in Report.
func (e *VerifyError) Error() string {
	n := len(e.Report.Problems)
	msg := fmt.Sprintf("router: verification failed with %d finding", n)
	if n != 1 {
		msg += "s"
	}
	if n > 0 {
		msg += ": " + e.Report.Problems[0].Kind.String()
		if p := e.Report.Problems[0]; p.Msg != "" {
			msg += " (" + p.Msg + ")"
		}
		if n > 1 {
			msg += ", ..."
		}
	}
	return msg
}

// Unwrap makes errors.Is(err, ErrVerifyFailed) succeed.
func (e *VerifyError) Unwrap() error { return ErrVerifyFailed }
