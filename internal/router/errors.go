package router

import (
	"errors"

	"rdlroute/internal/global"
)

// ErrTimeout is installed as the cancellation cause of the context derived
// from Options.TimeBudget, so callers can distinguish a budget expiry from
// an ambient deadline via context.Cause. It is also the sentinel wrapped by
// the strict-mode errors of cmd/rdlroute.
var ErrTimeout = errors.New("router: time budget exceeded")

// ErrUnroutable is the sentinel wrapped by per-net routing failures; it
// aliases the global router's error so errors.Is works across both
// packages.
var ErrUnroutable = global.ErrUnroutable
