package obs

import (
	"context"
	"errors"
	"time"
)

// WithBudget derives a context that is cancelled once the time budget
// elapses, attaching cause (when non-nil) as the cancellation cause so
// callers can distinguish a budget expiry from an ambient deadline via
// context.Cause. A non-positive budget returns ctx unchanged with a no-op
// cancel. This is the single deadline wrapper shared by the pipeline facade
// and both baseline routers.
func WithBudget(ctx context.Context, budget time.Duration, cause error) (context.Context, context.CancelFunc) {
	if budget <= 0 {
		return ctx, func() {}
	}
	if cause != nil {
		return context.WithTimeoutCause(ctx, budget, cause)
	}
	return context.WithTimeout(ctx, budget)
}

// Stopped reports whether the context has been cancelled or has expired.
// Stages poll it between units of work (nets, tiles, refinement rounds) and
// keep the work done so far when it fires.
func Stopped(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// TimedOut reports whether the context ended because a deadline elapsed —
// either a WithBudget budget or an ambient deadline on a parent context —
// as opposed to an explicit cancellation.
func TimedOut(ctx context.Context) bool {
	return errors.Is(ctx.Err(), context.DeadlineExceeded)
}
