package obs

import (
	"sync"
	"time"
)

// Collector aggregates events in memory: per-stage wall-clock totals,
// counter totals, and last-written gauges. The bench harness attaches one
// per routing run to break runtimes down per stage.
type Collector struct {
	mu       sync.Mutex
	stages   map[string]time.Duration
	order    []string // stage names in first-seen order
	counters map[string]int64
	gauges   map[string]float64
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{
		stages:   make(map[string]time.Duration),
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
	}
}

// Enabled implements Recorder.
func (c *Collector) Enabled() bool { return true }

// StageStart implements Recorder; the Collector only needs StageEnd but
// records first-seen order here so nested sub-stages list after parents.
func (c *Collector) StageStart(stage string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.stages[stage]; !ok {
		c.stages[stage] = 0
		c.order = append(c.order, stage)
	}
}

// StageEnd implements Recorder.
func (c *Collector) StageEnd(stage string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.stages[stage]; !ok {
		c.order = append(c.order, stage)
	}
	c.stages[stage] += d
}

// Count implements Recorder.
func (c *Collector) Count(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counters[name] += delta
}

// Gauge implements Recorder.
func (c *Collector) Gauge(name string, v float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gauges[name] = v
}

// Progress implements Recorder; the aggregate view has no use for the
// per-net stream.
func (c *Collector) Progress(string, int, int) {}

// StageSeconds returns a copy of the per-stage wall-clock totals in seconds.
func (c *Collector) StageSeconds() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.stages))
	for k, v := range c.stages {
		out[k] = v.Seconds()
	}
	return out
}

// StageOrder returns the stage names in first-seen order.
func (c *Collector) StageOrder() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Counter returns the current total of one counter (zero when the counter
// has never been written). The serving layer polls individual counters —
// cache hits, completed jobs — without copying the whole map.
func (c *Collector) Counter(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// GaugeValue returns the last-written value of one gauge and whether it has
// ever been written.
func (c *Collector) GaugeValue(name string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.gauges[name]
	return v, ok
}

// Counters returns a copy of the counter totals.
func (c *Collector) Counters() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// Gauges returns a copy of the last-written gauge values.
func (c *Collector) Gauges() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.gauges))
	for k, v := range c.gauges {
		out[k] = v
	}
	return out
}
