// Package obs is the observability layer of the routing pipeline: stage
// spans with wall-clock durations, monotonic counters, gauges, and a
// progress-event stream, all delivered through a single Recorder interface.
//
// Every pipeline stage (via planning, routing-graph construction, global
// routing, detailed routing, DRC) reports through a Recorder threaded in via
// its Options. The no-op default keeps the hot paths allocation-free when
// observability is disabled; sinks (JSONL, Collector, Progress) are safe for
// concurrent use so stages may report from multiple goroutines.
//
// The package also owns the pipeline's run-control helper: WithBudget turns
// an Options.TimeBudget into a context deadline, and Stopped/TimedOut are the
// single way stages poll for cancellation (replacing the per-stage
// ShouldStop closures the pipeline used to duplicate).
package obs

import "time"

// Recorder receives observability events from pipeline stages. All methods
// must be safe for concurrent use. Implementations must not retain the
// strings beyond the call.
type Recorder interface {
	// Enabled reports whether events are consumed at all; hot paths may
	// skip preparing event data when it returns false.
	Enabled() bool
	// StageStart marks the beginning of the named stage span.
	StageStart(stage string)
	// StageEnd marks the end of the named stage span with its wall-clock
	// duration.
	StageEnd(stage string, d time.Duration)
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Gauge reports the current value of the named gauge.
	Gauge(name string, v float64)
	// Progress reports done-out-of-total progress within a stage.
	Progress(stage string, done, total int)
}

// Nop is the no-op Recorder: every method does nothing and allocates
// nothing. It is the default wherever a Recorder option is left nil.
var Nop Recorder = nop{}

type nop struct{}

func (nop) Enabled() bool                  { return false }
func (nop) StageStart(string)              {}
func (nop) StageEnd(string, time.Duration) {}
func (nop) Count(string, int64)            {}
func (nop) Gauge(string, float64)          {}
func (nop) Progress(string, int, int)      {}

// Or returns rec, or Nop when rec is nil, so stages can call methods
// unconditionally.
func Or(rec Recorder) Recorder {
	if rec == nil {
		return Nop
	}
	return rec
}

// Span is an open stage span. It is a plain value so starting and ending a
// span never allocates.
type Span struct {
	rec   Recorder
	stage string
	start time.Time
}

// StartSpan opens a span on rec (which may be nil or Nop; both yield an
// inert span). Call End exactly once.
func StartSpan(rec Recorder, stage string) Span {
	if rec == nil || !rec.Enabled() {
		return Span{}
	}
	rec.StageStart(stage)
	//rdl:allow detrand span timing is observability only: durations are reported, never fed back into routing
	return Span{rec: rec, stage: stage, start: time.Now()}
}

// End closes the span, reporting its wall-clock duration.
func (s Span) End() {
	if s.rec != nil {
		s.rec.StageEnd(s.stage, time.Since(s.start))
	}
}

// Multi fans events out to several recorders. Nil entries are dropped; with
// no live entries it returns Nop.
func Multi(recs ...Recorder) Recorder {
	live := make(multi, 0, len(recs))
	for _, r := range recs {
		if r != nil && r != Nop {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return live
}

type multi []Recorder

func (m multi) Enabled() bool { return true }
func (m multi) StageStart(stage string) {
	for _, r := range m {
		r.StageStart(stage)
	}
}
func (m multi) StageEnd(stage string, d time.Duration) {
	for _, r := range m {
		r.StageEnd(stage, d)
	}
}
func (m multi) Count(name string, delta int64) {
	for _, r := range m {
		r.Count(name, delta)
	}
}
func (m multi) Gauge(name string, v float64) {
	for _, r := range m {
		r.Gauge(name, v)
	}
}
func (m multi) Progress(stage string, done, total int) {
	for _, r := range m {
		r.Progress(stage, done, total)
	}
}
