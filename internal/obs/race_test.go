package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// hammer drives one Recorder from n goroutines concurrently, exercising
// every method the way service jobs sharing a sink do. Run under -race it
// is the regression test for sink thread-safety.
func hammer(t *testing.T, rec Recorder, goroutines, events int) {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stage := fmt.Sprintf("stage%d", g%4)
			for i := 0; i < events; i++ {
				rec.StageStart(stage)
				rec.Count("events", 1)
				rec.Gauge("last", float64(i))
				rec.Progress(stage, i, events)
				rec.StageEnd(stage, time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
}

func TestCollectorConcurrent(t *testing.T) {
	const goroutines, events = 8, 200
	c := NewCollector()
	hammer(t, c, goroutines, events)
	if got := c.Counter("events"); got != goroutines*events {
		t.Errorf("events counter = %d, want %d", got, goroutines*events)
	}
	var total time.Duration
	for _, s := range c.StageSeconds() {
		total += time.Duration(s * float64(time.Second))
	}
	if want := goroutines * events * int(time.Microsecond); total < time.Duration(want) {
		t.Errorf("stage total %v below the %v recorded", total, time.Duration(want))
	}
	if len(c.StageOrder()) != 4 {
		t.Errorf("stage order has %d entries, want 4", len(c.StageOrder()))
	}
}

func TestJSONLConcurrent(t *testing.T) {
	const goroutines, events = 8, 100
	var buf syncBuffer
	j := NewJSONL(&buf)
	hammer(t, j, goroutines, events)

	// Every line must still be a complete, valid JSON object: interleaved
	// writers must never tear a line.
	lines, counts := 0, int64(0)
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var e struct {
			Ev    string `json:"ev"`
			Delta int64  `json:"delta"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d is not valid JSON (%v): %q", lines, err, sc.Text())
		}
		if e.Ev == "count" {
			counts += e.Delta
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := 5 * goroutines * events; lines != want {
		t.Errorf("got %d trace lines, want %d", lines, want)
	}
	if counts != goroutines*events {
		t.Errorf("count deltas sum to %d, want %d", counts, goroutines*events)
	}
}

func TestMultiAndProgressConcurrent(t *testing.T) {
	c := NewCollector()
	var trace syncBuffer
	rec := Multi(c, NewJSONL(&trace), NewProgress(io.Discard, time.Millisecond))
	hammer(t, rec, 8, 50)
	if got := c.Counter("events"); got != 8*50 {
		t.Errorf("fan-out lost counts: %d, want %d", got, 8*50)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer. The JSONL sink serializes its
// own writes, but the test buffer must not itself introduce a data race when
// read back.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}
