package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestJSONLGolden pins the trace-file schema: field names, field order, and
// the t_ms clock base. rdlroute -trace consumers parse exactly these lines.
func TestJSONLGolden(t *testing.T) {
	var sb strings.Builder
	clock := time.Unix(100, 0)
	now := func() time.Time {
		clock = clock.Add(500 * time.Microsecond)
		return clock
	}
	j := newJSONL(&sb, now) // first tick consumed as the start time

	j.StageStart("global")
	j.Progress("global", 3, 22)
	j.Count("global.astar.expansions", 1234)
	j.Gauge("routability", 1)
	j.StageEnd("global", 9500*time.Microsecond)

	const golden = `{"t_ms":0.5,"ev":"stage_start","stage":"global"}
{"t_ms":1,"ev":"progress","stage":"global","done":3,"total":22}
{"t_ms":1.5,"ev":"count","name":"global.astar.expansions","delta":1234}
{"t_ms":2,"ev":"gauge","name":"routability","value":1}
{"t_ms":2.5,"ev":"stage_end","stage":"global","ms":9.5}
`
	if sb.String() != golden {
		t.Errorf("trace schema drifted:\n got: %q\nwant: %q", sb.String(), golden)
	}
}

// Every line must round-trip as standalone JSON with "ev" and "t_ms"
// present — the minimal contract for line-oriented trace consumers.
func TestJSONLLinesParse(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	j.StageStart("viaplan")
	j.StageEnd("viaplan", time.Millisecond)
	j.Count("rgraph.nodes", 42)
	j.Progress("detail", 1, 2)
	j.Gauge("wirelength_um", 18761)

	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if _, ok := m["ev"]; !ok {
			t.Errorf("line %d missing ev: %s", i, line)
		}
		if _, ok := m["t_ms"]; !ok {
			t.Errorf("line %d missing t_ms: %s", i, line)
		}
	}
}
