package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// JSONL writes one JSON object per event to an io.Writer (the trace file
// format behind rdlroute -trace). Every line carries the event kind in "ev"
// and the milliseconds since the sink was created in "t_ms"; the remaining
// fields depend on the kind:
//
//	{"t_ms":0.0,"ev":"stage_start","stage":"global"}
//	{"t_ms":9.5,"ev":"stage_end","stage":"global","ms":9.5}
//	{"t_ms":9.6,"ev":"count","name":"global.astar.expansions","delta":1234}
//	{"t_ms":9.6,"ev":"gauge","name":"routability","value":1}
//	{"t_ms":4.2,"ev":"progress","stage":"global","done":3,"total":22}
//
// A mutex serializes writes, so one sink may be shared by every stage of a
// pipeline run, including stages reporting from multiple goroutines.
type JSONL struct {
	mu    sync.Mutex
	w     io.Writer
	enc   *json.Encoder
	now   func() time.Time
	start time.Time
}

// NewJSONL creates a JSON-lines sink over w. The caller owns w and closes
// it after the run.
//
//rdl:allow detrand default trace clock: timestamps only decorate JSONL events, routing state never reads them; tests inject a fake clock
func NewJSONL(w io.Writer) *JSONL { return newJSONL(w, time.Now) }

// newJSONL injects the clock; tests pin it for golden output.
func newJSONL(w io.Writer, now func() time.Time) *JSONL {
	return &JSONL{w: w, enc: json.NewEncoder(w), now: now, start: now()}
}

// event is one trace line. Field order is fixed by this struct and is part
// of the trace format.
type event struct {
	TMs   float64 `json:"t_ms"`
	Ev    string  `json:"ev"`
	Stage string  `json:"stage,omitempty"`
	Name  string  `json:"name,omitempty"`
	Ms    float64 `json:"ms,omitempty"`
	Delta int64   `json:"delta,omitempty"`
	Value float64 `json:"value,omitempty"`
	Done  int     `json:"done,omitempty"`
	Total int     `json:"total,omitempty"`
}

func (j *JSONL) emit(e event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e.TMs = roundMs(j.now().Sub(j.start))
	_ = j.enc.Encode(e) // a broken sink must never abort routing
}

func roundMs(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// Enabled implements Recorder.
func (j *JSONL) Enabled() bool { return true }

// StageStart implements Recorder.
func (j *JSONL) StageStart(stage string) {
	j.emit(event{Ev: "stage_start", Stage: stage})
}

// StageEnd implements Recorder.
func (j *JSONL) StageEnd(stage string, d time.Duration) {
	j.emit(event{Ev: "stage_end", Stage: stage, Ms: roundMs(d)})
}

// Count implements Recorder.
func (j *JSONL) Count(name string, delta int64) {
	j.emit(event{Ev: "count", Name: name, Delta: delta})
}

// Gauge implements Recorder.
func (j *JSONL) Gauge(name string, v float64) {
	j.emit(event{Ev: "gauge", Name: name, Value: v})
}

// Progress implements Recorder.
func (j *JSONL) Progress(stage string, done, total int) {
	j.emit(event{Ev: "progress", Stage: stage, Done: done, Total: total})
}
