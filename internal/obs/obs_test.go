package obs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestNopZeroAllocs is the disabled-recorder overhead contract: a full
// span + counter + gauge + progress cycle on the no-op recorder must not
// allocate at all.
func TestNopZeroAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan(Nop, "stage")
		Nop.Count("counter", 1)
		Nop.Gauge("gauge", 0.5)
		Nop.Progress("stage", 1, 2)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op recorder allocates %v allocs/op, want 0", allocs)
	}
}

// The nil-recorder path through Or must be free as well: stages wrap their
// Options field once and then record unconditionally.
func TestOrNilZeroAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		rec := Or(nil)
		rec.Count("counter", 1)
	})
	if allocs != 0 {
		t.Fatalf("Or(nil) path allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkNopRecorder(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(Nop, "stage")
		Nop.Count("counter", 1)
		Nop.Progress("stage", i, b.N)
		sp.End()
	}
}

func TestOr(t *testing.T) {
	if Or(nil) != Nop {
		t.Error("Or(nil) must be Nop")
	}
	c := NewCollector()
	if Or(c) != Recorder(c) {
		t.Error("Or must pass a live recorder through")
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	sp := StartSpan(c, "global")
	c.Count("global.astar.expansions", 10)
	c.Count("global.astar.expansions", 5)
	c.Gauge("routability", 0.5)
	c.Gauge("routability", 1)
	sp.End()
	c.StageEnd("global", 50*time.Millisecond) // accumulates onto the span

	if got := c.Counters()["global.astar.expansions"]; got != 15 {
		t.Errorf("counter = %d, want 15", got)
	}
	if got := c.Gauges()["routability"]; got != 1 {
		t.Errorf("gauge = %v, want last-written 1", got)
	}
	secs := c.StageSeconds()
	if secs["global"] < 0.05 {
		t.Errorf("stage seconds = %v, want ≥ 0.05", secs["global"])
	}
	if order := c.StageOrder(); len(order) != 1 || order[0] != "global" {
		t.Errorf("stage order = %v", order)
	}
}

func TestMulti(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	m := Multi(a, nil, b)
	m.Count("x", 2)
	m.StageStart("s")
	m.StageEnd("s", time.Millisecond)
	if a.Counters()["x"] != 2 || b.Counters()["x"] != 2 {
		t.Error("multi did not fan out counts")
	}
	if Multi() != Nop || Multi(nil, Nop) != Nop {
		t.Error("empty Multi must collapse to Nop")
	}
	if Multi(a) != Recorder(a) {
		t.Error("single-entry Multi must unwrap")
	}
}

func TestProgressThrottle(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, time.Hour) // nothing but the final event passes
	fake := time.Unix(0, 0)
	p.now = func() time.Time { return fake }
	for i := 1; i <= 22; i++ {
		p.Progress("global", i, 22)
	}
	out := sb.String()
	if strings.Count(out, "22/22") != 1 {
		t.Errorf("final progress line missing or duplicated:\n%q", out)
	}
	// The first event passes (last is the zero time); everything between it
	// and the final event must be throttled away.
	if strings.Contains(out, "10/22") {
		t.Errorf("throttled line leaked:\n%q", out)
	}
	p.StageEnd("global", time.Second)
	if !strings.HasSuffix(sb.String(), "[global] done in 1s\n") {
		t.Errorf("stage end line malformed:\n%q", sb.String())
	}
}

func TestWithBudget(t *testing.T) {
	cause := errors.New("budget up")
	ctx, cancel := WithBudget(context.Background(), time.Nanosecond, cause)
	defer cancel()
	<-ctx.Done()
	if !Stopped(ctx) || !TimedOut(ctx) {
		t.Error("expired budget must read as stopped and timed out")
	}
	if !errors.Is(context.Cause(ctx), cause) {
		t.Errorf("cause = %v, want the budget sentinel", context.Cause(ctx))
	}
}

func TestWithBudgetZeroIsPassThrough(t *testing.T) {
	parent := context.Background()
	ctx, cancel := WithBudget(parent, 0, nil)
	cancel() // must be a no-op
	if ctx != parent {
		t.Error("zero budget must return the parent context unchanged")
	}
	if Stopped(ctx) || TimedOut(ctx) {
		t.Error("pass-through context must not read as stopped")
	}
}

func TestStoppedOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	if Stopped(ctx) {
		t.Error("fresh context must not be stopped")
	}
	cancel()
	if !Stopped(ctx) {
		t.Error("cancelled context must be stopped")
	}
	if TimedOut(ctx) {
		t.Error("explicit cancellation is not a timeout")
	}
}
