package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a live ticker sink (rdlroute -progress): stage boundaries are
// always printed; the per-net progress stream is throttled so a run on a
// large design does not flood the terminal. Progress lines are rewritten in
// place on terminals via carriage return; a newline is forced before any
// other event kind so the log stays readable when mixed.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	interval time.Duration
	now      func() time.Time
	last     time.Time
	inline   bool // last write was an in-place progress line
}

// NewProgress creates a ticker over w that emits at most one progress line
// per interval. A non-positive interval selects 200 ms.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	//rdl:allow detrand default throttle clock: it only paces terminal repaints, never routing state; tests inject a fake clock
	return &Progress{w: w, interval: interval, now: time.Now}
}

func (p *Progress) breakLine() {
	if p.inline {
		fmt.Fprintln(p.w)
		p.inline = false
	}
}

// Enabled implements Recorder.
func (p *Progress) Enabled() bool { return true }

// StageStart implements Recorder.
func (p *Progress) StageStart(stage string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.breakLine()
	fmt.Fprintf(p.w, "[%s] start\n", stage)
}

// StageEnd implements Recorder.
func (p *Progress) StageEnd(stage string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.breakLine()
	fmt.Fprintf(p.w, "[%s] done in %v\n", stage, d.Round(time.Millisecond))
}

// Count implements Recorder; counter totals are end-of-stage detail the
// ticker leaves to the trace file.
func (p *Progress) Count(string, int64) {}

// Gauge implements Recorder.
func (p *Progress) Gauge(name string, v float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.breakLine()
	fmt.Fprintf(p.w, "[obs] %s = %g\n", name, v)
}

// Progress implements Recorder.
func (p *Progress) Progress(stage string, done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	if done < total && now.Sub(p.last) < p.interval {
		return
	}
	p.last = now
	fmt.Fprintf(p.w, "\r[%s] %d/%d", stage, done, total)
	p.inline = true
	if done >= total {
		p.breakLine()
	}
}
