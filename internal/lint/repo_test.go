package lint

import (
	"sync"
	"testing"
)

// The repo tests load the whole module once and share it: LoadModule
// type-checks every package against GOROOT sources, which costs a few
// seconds.
var (
	repoOnce sync.Once
	repoMod  *Module
	repoErr  error
)

func repoModule(t *testing.T) *Module {
	t.Helper()
	repoOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			repoErr = err
			return
		}
		repoMod, repoErr = LoadModule(root)
	})
	if repoErr != nil {
		t.Fatalf("loading module: %v", repoErr)
	}
	return repoMod
}

// TestRepoIsLintClean is the driver test the issue demands: the full
// analyzer suite over the real repo must produce zero findings. Any new
// hazard either gets fixed or gets an //rdl:allow with a written reason.
func TestRepoIsLintClean(t *testing.T) {
	mod := repoModule(t)
	findings := mod.Lint(All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("repo has %d lint finding(s); run `go run ./cmd/rdllint` for the same list", len(findings))
	}
}

// TestEveryAllowIsLoadBearing proves the acceptance criterion that
// deleting any single //rdl:allow makes the lint fail: each allow in the
// tree must cover at least one raw (unsuppressed) finding of its named
// analyzer on its own line or the line below. A stale allow would also
// be reported by Lint itself; this test states the invariant directly.
func TestEveryAllowIsLoadBearing(t *testing.T) {
	mod := repoModule(t)
	raw := mod.LintUnsuppressed(All())
	known := analyzerNames(All())
	// //rdl:allow escape belongs to the compiler-backed gate, not the AST
	// suite: its reason and staleness hygiene are enforced by EscapeCheck
	// (see TestRepoEscapeClean), so it is known here but not matched
	// against AST findings.
	known[EscapeAnalyzer] = true

	covered := func(a *allowSite) bool {
		for _, f := range raw {
			if f.Analyzer == a.analyzer && f.Pos.Filename == a.pos.Filename &&
				(f.Pos.Line == a.pos.Line || f.Pos.Line == a.pos.Line+1) {
				return true
			}
		}
		return false
	}

	total := 0
	for _, pkg := range mod.Pkgs {
		for _, a := range collectAllows(mod.Fset, pkg.Files) {
			total++
			if a.analyzer == "" || !known[a.analyzer] {
				t.Errorf("%s: //rdl:allow for unknown analyzer %q", a.pos, a.analyzer)
				continue
			}
			if a.reason == "" {
				t.Errorf("%s: //rdl:allow %s has no written reason", a.pos, a.analyzer)
			}
			if a.analyzer != EscapeAnalyzer && !covered(a) {
				t.Errorf("%s: //rdl:allow %s suppresses nothing — stale, delete it", a.pos, a.analyzer)
			}
		}
	}
	if total == 0 {
		t.Error("no //rdl:allow sites found in the repo; the inventory (viaplan seed, obs clocks, serve timestamps, A* alloc budget) should be non-empty")
	}
}

// TestScopesResolve pins every scope entry to a package that actually
// exists, so a package rename cannot silently drop a directory out of
// enforcement.
func TestScopesResolve(t *testing.T) {
	mod := repoModule(t)
	have := make(map[string]bool, len(mod.Pkgs))
	for _, pkg := range mod.Pkgs {
		have[pkg.Path] = true
	}
	for _, a := range All() {
		for _, s := range a.Scope {
			if !have[mod.Path+"/"+s] {
				t.Errorf("analyzer %s scope entry %q matches no package in the module", a.Name, s)
			}
		}
	}
}
