// Package lint is the routing stack's domain-specific static-analysis
// framework. It exists because the repo's load-bearing guarantees —
// byte-identical parallel DRC/verify and detailed routing for any worker
// count, and the zero-allocation A* hot path — are geometric invariants
// that differential tests can only catch after a regression is written.
// The analyzers here reject the hazard classes at the source level:
// unseeded randomness and wall-clock reads in deterministic packages
// (detrand), order-sensitive map iteration (mapiter), raw float equality
// in the geometry kernels (floateq), goroutines launched outside the
// sanctioned internal/pool fan-out (barego), and allocating constructs in
// functions annotated //rdl:noalloc (noalloc).
//
// The framework is stdlib only: go/parser + go/ast for syntax, go/types
// with the source importer for name resolution. Intentional exceptions
// are acknowledged in the source with
//
//	//rdl:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. A suppression
// without a written reason is itself a finding, and so is a suppression
// that no longer matches anything — deleting the code a //rdl:allow was
// covering makes the stale comment fail the build, so the inventory of
// exceptions can only shrink deliberately.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one analyzer hit.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats a finding the way the rdllint driver prints it.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one lint pass. Exactly one of Run and RunModule is set:
// Run makes the analyzer package-local (one invocation per package, the
// original model), RunModule makes it interprocedural (one invocation
// over the whole loaded module, with every package's call sites visible
// at once — the model transalloc's call-graph propagation needs).
type Analyzer struct {
	// Name is the identifier used in findings and //rdl:allow comments.
	Name string
	// Doc is a one-paragraph description for `rdllint -list` and doc/LINT.md.
	Doc string
	// Scope lists the module-relative package directories the analyzer
	// applies to. Nil means every package in the module. Module-level
	// analyzers ignore Scope: their whole point is crossing package
	// boundaries, and they confine themselves through the annotations
	// (//rdl:noalloc roots) rather than through directory lists.
	Scope []string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunModule inspects the whole module at once.
	RunModule func(*ModulePass)
}

// AppliesTo reports whether the analyzer's scope covers the package with
// the given import path inside the module with the given path.
func (a *Analyzer) AppliesTo(modulePath, pkgPath string) bool {
	if a.Scope == nil {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == modulePath+"/"+s {
			return true
		}
	}
	return false
}

// Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer string
	out      *[]Finding
}

// Report records a finding at the position.
func (p *Pass) Report(pos token.Pos, msg string) {
	*p.out = append(*p.out, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  msg,
	})
}

// Reportf records a formatted finding at the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// ModulePass carries one module-level analyzer run over a loaded module.
type ModulePass struct {
	Mod *Module

	analyzer string
	out      *[]Finding
}

// Report records a finding at the position.
func (p *ModulePass) Report(pos token.Pos, msg string) {
	*p.out = append(*p.out, Finding{
		Pos:      p.Mod.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  msg,
	})
}

// Reportf records a formatted finding at the position.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// RunPackage applies the analyzers to one loaded package, honours the
// //rdl:allow suppressions in its files, and returns the surviving
// findings plus the suppression-hygiene findings (missing reasons, unused
// allows) in canonical order. Scopes are NOT consulted — the caller
// decides which analyzers apply (the module driver filters by scope, the
// fixture tests run an analyzer directly).
func RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	raw := runAnalyzers(pkg, analyzers)
	// Module-level analyzers see the fixture package as a one-package
	// module, so the interprocedural passes are testable on standalone
	// fixture directories exactly like the package-local ones.
	syn := &Module{Root: pkg.Dir, Path: pkg.Path, Fset: pkg.Fset, Pkgs: []*Package{pkg}}
	runModuleAnalyzers(syn, analyzers, &raw)
	allows := collectAllows(pkg.Fset, pkg.Files)
	out := applyAllows(raw, allows, analyzerNames(analyzers))
	sortFindings(out)
	return out
}

// runAnalyzers collects raw package-local findings with no suppression
// applied. Module-level analyzers are skipped; runModuleAnalyzers covers
// them.
func runAnalyzers(pkg *Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a.Name,
			out:      &out,
		}
		a.Run(pass)
	}
	return out
}

// runModuleAnalyzers appends the raw findings of every module-level
// analyzer in the list.
func runModuleAnalyzers(m *Module, analyzers []*Analyzer, out *[]Finding) {
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		a.RunModule(&ModulePass{Mod: m, analyzer: a.Name, out: out})
	}
}

func analyzerNames(analyzers []*Analyzer) map[string]bool {
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	return names
}

// sortFindings orders findings by file, line, column, analyzer, message —
// a total order, so driver output is stable run to run.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
