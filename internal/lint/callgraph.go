package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Whole-module call graph.
//
// The graph is built once per interprocedural run over the packages the
// module loader already type-checked: one node per function or method
// declared in the module, one edge per call site the type checker can
// resolve to a single callee. Resolvable calls are direct function
// calls, method calls on concrete (non-interface) receivers — including
// generic instantiations, which are folded onto their origin
// declaration — and calls through a local variable bound exactly once
// to a statically known function. Everything else (interface dispatch,
// func-typed fields and parameters, reassigned function variables) is
// recorded as a dynamic site: the analysis cannot see through it, so an
// interprocedural contract crossing one must be discharged by a human
// with an audited //rdl:allow.
//
// Calls that leave the module (standard library) do not become edges:
// their bodies are outside the loader's view. The local noalloc checks
// still catch the boxing such calls perform at the call site, and the
// compiler-backed escape gate (rdllint -escape) closes the remaining
// gap with the optimizer's own escape verdicts.

// callEdge is one statically resolved call.
type callEdge struct {
	callee *types.Func // origin (uninstantiated) declaration object
	pos    token.Pos
}

// dynSite is one call the static resolver cannot see through.
type dynSite struct {
	pos  token.Pos
	desc string // what was called, for the finding message
	why  string // why it is dynamic
}

// funcNode is one declared function or method of the module.
type funcNode struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	pkg     *Package
	noalloc bool
	edges   []callEdge // intra-module static calls, in source order
	dyns    []dynSite  // unresolvable calls, in source order
}

// callGraph indexes the module's functions by their declaration object.
type callGraph struct {
	nodes map[*types.Func]*funcNode
	// order lists the nodes sorted by source position for deterministic
	// traversal.
	order []*funcNode
}

// buildCallGraph constructs the call graph of a loaded module.
func buildCallGraph(m *Module) *callGraph {
	cg := &callGraph{nodes: make(map[*types.Func]*funcNode)}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{fn: fn, decl: fd, pkg: pkg, noalloc: hasNoallocDirective(fd)}
				cg.nodes[fn] = n
				cg.order = append(cg.order, n)
			}
		}
	}
	sort.Slice(cg.order, func(i, j int) bool {
		a, b := m.Fset.Position(cg.order[i].decl.Pos()), m.Fset.Position(cg.order[j].decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, n := range cg.order {
		cg.resolveCalls(n)
	}
	return cg
}

// resolveCalls fills one node's edges and dynamic sites.
func (cg *callGraph) resolveCalls(n *funcNode) {
	binds := localFuncBindings(n.pkg.Info, n.decl.Body)
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		cg.resolveCall(n, call, binds)
		return true
	})
}

func (cg *callGraph) resolveCall(n *funcNode, call *ast.CallExpr, binds map[types.Object]*types.Func) {
	info := n.pkg.Info
	fun := ast.Unparen(call.Fun)

	// Generic instantiation syntax f[T](...) wraps the callee expression.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if isFuncInstance(info, ix.X) {
			fun = ast.Unparen(ix.X)
		}
	case *ast.IndexListExpr:
		if isFuncInstance(info, ix.X) {
			fun = ast.Unparen(ix.X)
		}
	}

	switch e := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[e].(type) {
		case *types.Builtin, *types.TypeName, *types.Nil, nil:
			return // builtin, conversion, or unresolved: no callee body
		case *types.Func:
			cg.addEdge(n, obj, call.Pos())
		case *types.Var:
			if target, ok := binds[obj]; ok {
				cg.addEdge(n, target, call.Pos())
				return
			}
			n.dyns = append(n.dyns, dynSite{
				pos:  call.Pos(),
				desc: types.ExprString(call.Fun),
				why:  "call through func value " + e.Name,
			})
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			switch sel.Kind() {
			case types.FieldVal:
				n.dyns = append(n.dyns, dynSite{
					pos:  call.Pos(),
					desc: types.ExprString(call.Fun),
					why:  "call through func-typed field " + e.Sel.Name,
				})
			case types.MethodVal, types.MethodExpr:
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					return
				}
				if types.IsInterface(sel.Recv()) {
					n.dyns = append(n.dyns, dynSite{
						pos:  call.Pos(),
						desc: types.ExprString(call.Fun),
						why:  "interface method call " + e.Sel.Name,
					})
					return
				}
				cg.addEdge(n, fn, call.Pos())
			}
			return
		}
		// Qualified identifier: pkg.F or pkg.V.
		switch obj := info.Uses[e.Sel].(type) {
		case *types.Func:
			cg.addEdge(n, obj, call.Pos())
		case *types.Var:
			n.dyns = append(n.dyns, dynSite{
				pos:  call.Pos(),
				desc: types.ExprString(call.Fun),
				why:  "call through package-level func variable " + e.Sel.Name,
			})
		}
	case *ast.FuncLit:
		// Immediately invoked literal: the literal itself is an alloc
		// site the body checks flag; its body is scanned where the
		// literal is written, not through the graph.
	default:
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return // conversion
		}
		if _, ok := info.Types[fun].Type.Underlying().(*types.Signature); ok {
			n.dyns = append(n.dyns, dynSite{
				pos:  call.Pos(),
				desc: types.ExprString(call.Fun),
				why:  "call through computed func value",
			})
		}
	}
}

// addEdge records a static call, folding generic instantiations onto
// their origin declaration and dropping callees declared outside the
// module (no body to analyze; see the package comment).
func (cg *callGraph) addEdge(n *funcNode, fn *types.Func, pos token.Pos) {
	origin := fn.Origin()
	if _, ok := cg.nodes[origin]; !ok {
		return
	}
	n.edges = append(n.edges, callEdge{callee: origin, pos: pos})
}

// isFuncInstance reports whether expr names a (generic) function rather
// than a map/slice being indexed.
func isFuncInstance(info *types.Info, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		_, ok := info.Uses[e].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		_, ok := info.Uses[e.Sel].(*types.Func)
		return ok
	}
	return false
}

// localFuncBindings maps local variables that are bound exactly once to
// a statically known function — `f := pkg.Fn` followed only by calls —
// so those calls resolve as edges instead of dynamic sites. A second
// assignment anywhere in the body disqualifies the variable.
func localFuncBindings(info *types.Info, body *ast.BlockStmt) map[types.Object]*types.Func {
	bound := make(map[types.Object]*types.Func)
	dead := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr, define bool) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		var obj types.Object
		if define {
			obj = info.Defs[id]
		} else {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, seen := bound[obj]; seen || dead[obj] {
			dead[obj] = true
			delete(bound, obj)
			return
		}
		if rhs != nil {
			switch r := ast.Unparen(rhs).(type) {
			case *ast.Ident:
				if fn, ok := info.Uses[r].(*types.Func); ok {
					bound[obj] = fn
					return
				}
			case *ast.SelectorExpr:
				if _, isMethodVal := info.Selections[r]; !isMethodVal {
					if fn, ok := info.Uses[r.Sel].(*types.Func); ok {
						bound[obj] = fn
						return
					}
				}
			}
		}
		dead[obj] = true
		delete(bound, obj)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				record(as.Lhs[i], as.Rhs[i], as.Tok == token.DEFINE)
			}
		} else {
			for _, lhs := range as.Lhs {
				record(lhs, nil, as.Tok == token.DEFINE)
			}
		}
		return true
	})
	return bound
}
