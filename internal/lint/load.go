package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the import path ("rdlroute/internal/geom").
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Fset is the file set shared by every package of a load.
	Fset *token.FileSet
	// Files are the non-test source files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded Go module: every non-test package under its root,
// type-checked against each other and the standard library.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path from go.mod.
	Path string
	Fset *token.FileSet
	// Pkgs is sorted by import path.
	Pkgs []*Package
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)\s*$`)

// modulePath extracts the module path from the go.mod in root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	m := moduleLineRE.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	return strings.Trim(string(m[1]), `"`), nil
}

// stdImporter returns the shared source importer for out-of-module (i.e.
// standard library) packages. It type-checks from GOROOT sources, so it
// needs no pre-built export data and no network.
func stdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// moduleImporter resolves intra-module imports from the packages already
// checked in this load and everything else through the source importer.
type moduleImporter struct {
	checked map[string]*types.Package
	std     types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.checked[path]; ok {
		return p, nil
	}
	return mi.std.Import(path)
}

// parsedPkg is a package between parsing and type-checking.
type parsedPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string // intra-module imports only
}

// LoadModule parses and type-checks every non-test package under root.
// Directories named testdata or vendor, and hidden or underscore-prefixed
// directories, are skipped, mirroring the go tool's ./... expansion.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	parsed := make(map[string]*parsedPkg)
	for _, dir := range dirs {
		pkg, err := parseDir(fset, dir, importPathFor(modPath, root, dir), modPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			parsed[pkg.path] = pkg
		}
	}

	// Type-check in dependency order.
	order, err := topoOrder(parsed)
	if err != nil {
		return nil, err
	}
	mi := &moduleImporter{checked: make(map[string]*types.Package), std: stdImporter(fset)}
	m := &Module{Root: root, Path: modPath, Fset: fset}
	for _, path := range order {
		pp := parsed[path]
		pkg, err := typeCheck(fset, pp.path, pp.dir, pp.files, mi)
		if err != nil {
			return nil, err
		}
		mi.checked[pp.path] = pkg.Types
		m.Pkgs = append(m.Pkgs, pkg)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// LoadDir parses and type-checks one directory as a standalone package
// with the given import path, resolving imports through the standard
// library source importer only. Used by the fixture tests.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	pp, err := parseDir(fset, dir, importPath, importPath)
	if err != nil {
		return nil, err
	}
	if pp == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return typeCheck(fset, importPath, dir, pp.files, stdImporter(fset))
}

// importPathFor maps a directory under root to its import path.
func importPathFor(modPath, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// parseDir parses the non-test Go files of one directory. It returns nil
// when the directory holds no non-test Go files.
func parseDir(fset *token.FileSet, dir, importPath, modPath string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pp := &parsedPkg{path: importPath, dir: dir}
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pp.files = append(pp.files, file)
		for _, imp := range file.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				pp.imports = append(pp.imports, p)
			}
		}
	}
	if len(pp.files) == 0 {
		return nil, nil
	}
	sort.Strings(pp.imports)
	return pp, nil
}

// topoOrder orders the parsed packages so every intra-module import of a
// package precedes it.
func topoOrder(pkgs map[string]*parsedPkg) ([]string, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []string
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		for _, dep := range pkgs[path].imports {
			if _, ok := pkgs[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// typeCheck runs go/types over one package's files.
func typeCheck(fset *token.FileSet, path, dir string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
