package lint

import "go/ast"

// DeterministicScope lists the packages whose output must be a pure
// function of the input design and options: the geometry kernels, the
// triangulation, via planning, the routing graph, both routing stages, the
// net-ordering portfolio and the verifier. Everything the byte-identical
// differential tests protect lives here.
var DeterministicScope = []string{
	"internal/geom",
	"internal/dt",
	"internal/viaplan",
	"internal/rgraph",
	"internal/global",
	"internal/portfolio",
	"internal/detail",
	"internal/verify",
}

// ClockScope extends the deterministic scope with the packages that are
// allowed to observe wall-clock time for observability and job accounting
// — but only through sites acknowledged with //rdl:allow, so every
// wall-clock read in the serving path is inventoried.
var ClockScope = append(append([]string{}, DeterministicScope...),
	"internal/obs",
	"internal/serve",
)

// GeometryScope is where raw float equality is banned: the numeric
// kernels whose predicates must go through the Eps helpers.
var GeometryScope = []string{
	"internal/geom",
	"internal/dt",
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Detrand,
		Mapiter,
		Floateq,
		Barego,
		Noalloc,
		Transalloc,
		Readset,
	}
}

// Lint runs the analyzers over every package of the module, honouring
// per-analyzer scopes and //rdl:allow suppressions, and returns the
// findings in canonical order.
func (m *Module) Lint(analyzers []*Analyzer) []Finding {
	return m.lint(analyzers, true)
}

// LintUnsuppressed runs the analyzers with //rdl:allow suppression
// disabled. The repo test uses it to prove every allow in the tree is
// load-bearing: each one must cover at least one raw finding.
func (m *Module) LintUnsuppressed(analyzers []*Analyzer) []Finding {
	return m.lint(analyzers, false)
}

func (m *Module) lint(analyzers []*Analyzer, suppress bool) []Finding {
	var raw []Finding
	for _, pkg := range m.Pkgs {
		var scoped []*Analyzer
		for _, a := range analyzers {
			if a.Run != nil && a.AppliesTo(m.Path, pkg.Path) {
				scoped = append(scoped, a)
			}
		}
		raw = append(raw, runAnalyzers(pkg, scoped)...)
	}
	// Interprocedural passes run once over the whole module, after every
	// package is loaded: a transalloc finding carries a call chain that may
	// cross several packages, and the allow that acknowledges it lives at
	// the flagged site, wherever that is. Suppression is therefore applied
	// globally — one allow inventory over all files — rather than
	// per package.
	runModuleAnalyzers(m, analyzers, &raw)
	if !suppress {
		sortFindings(raw)
		return raw
	}
	allows := collectAllows(m.Fset, m.allFiles())
	out := applyAllows(raw, allows, analyzerNames(analyzers))
	sortFindings(out)
	return out
}

// allFiles returns every parsed file of the module.
func (m *Module) allFiles() []*ast.File {
	var files []*ast.File
	for _, pkg := range m.Pkgs {
		files = append(files, pkg.Files...)
	}
	return files
}
