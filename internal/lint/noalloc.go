package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoallocDirective marks a function whose body must not contain
// allocating constructs. It lives in the function's doc comment:
//
//	// route runs crossing-aware A* for one net.
//	//rdl:noalloc
//	func (r *Router) route(net design.Net) (*searchResult, error) { ... }
//
// The analyzer pins the zero-allocation contract at the definition site
// instead of only in an allocation-counting test: the test says "this
// regressed", the annotation says "here is the line that regressed it".
const NoallocDirective = "//rdl:noalloc"

// Noalloc checks //rdl:noalloc-annotated functions for allocating
// constructs: make/new, appends that can grow a fresh backing array,
// escaping composite literals, slice and map literals, closures,
// string concatenation and string<->[]byte conversions, and interface
// boxing at calls, assignments and returns.
//
// Two append shapes are recognized as non-allocating steady state and
// admitted: the amortized self-append `x = append(x, ...)` (the reused
// scratch-buffer idiom) and appends whose base is a slice expression
// `append(x[:i], ...)` (the in-place delete/reset idiom) — both write
// into an existing backing array once warm. The check is per-body:
// callees are not followed, so every function on the hot path carries its
// own annotation. Intentional allocations (the ≤4 allocs the A* budget
// grants route+commit) are acknowledged inline with //rdl:allow noalloc.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //rdl:noalloc may not contain allocating constructs; the sanctioned exceptions carry //rdl:allow noalloc",
	Run:  runNoalloc,
}

func hasNoallocDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == NoallocDirective {
			return true
		}
	}
	return false
}

func runNoalloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocDirective(fd) {
				continue
			}
			p.noallocFunc(fd)
		}
	}
}

func (p *Pass) noallocFunc(fd *ast.FuncDecl) {
	admitted := p.admittedAppends(fd.Body)

	var results *types.Tuple
	if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		results = fn.Type().(*types.Signature).Results()
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			p.Report(e.Pos(), "closure in //rdl:noalloc function: the func value and its captures escape to the heap")
			return false // its body is the closure's problem, not this function's
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					p.Report(e.Pos(), "address of composite literal in //rdl:noalloc function: the literal escapes to the heap")
					return false
				}
			}
		case *ast.CompositeLit:
			switch p.Info.Types[e].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				p.Reportf(e.Pos(), "%s literal in //rdl:noalloc function allocates its backing store",
					kindName(p.Info.Types[e].Type))
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(p.Info.Types[e.X].Type) {
				p.Report(e.Pos(), "string concatenation in //rdl:noalloc function allocates the result")
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isString(p.Info.Types[e.Lhs[0]].Type) {
				p.Report(e.Pos(), "string concatenation in //rdl:noalloc function allocates the result")
			}
			p.checkBoxingAssign(e)
		case *ast.ReturnStmt:
			if results != nil && len(e.Results) == results.Len() {
				for i, r := range e.Results {
					if p.boxes(results.At(i).Type(), r) {
						p.Reportf(r.Pos(), "return boxes %s into interface %s in //rdl:noalloc function",
							types.ExprString(r), results.At(i).Type())
					}
				}
			}
		case *ast.CallExpr:
			p.checkCall(e, admitted)
		}
		return true
	})
}

// admittedAppends collects the append calls in the non-allocating
// steady-state shapes: `x = append(x, ...)` and `y = append(x[:i], ...)`.
func (p *Pass) admittedAppends(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	admitted := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !p.isBuiltin(call.Fun, "append") || len(call.Args) == 0 {
				continue
			}
			if _, isSliceExpr := call.Args[0].(*ast.SliceExpr); isSliceExpr {
				admitted[call] = true
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				admitted[call] = true
			}
		}
		return true
	})
	return admitted
}

func (p *Pass) checkCall(call *ast.CallExpr, admitted map[*ast.CallExpr]bool) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				p.Reportf(call.Pos(), "%s in //rdl:noalloc function allocates", b.Name())
			case "append":
				if !admitted[call] {
					p.Report(call.Pos(), "append outside the reuse idioms (x = append(x, ...) or append(x[:i], ...)) in //rdl:noalloc function can grow a fresh backing array")
				}
			}
			return
		}
	}

	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return
	}
	// Conversions.
	if tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst := tv.Type
		src := p.Info.Types[call.Args[0]].Type
		if src == nil {
			return
		}
		if stringBytesConv(dst, src) {
			p.Reportf(call.Pos(), "conversion %s(%s) in //rdl:noalloc function copies the data",
				dst, types.ExprString(call.Args[0]))
		} else if p.boxes(dst, call.Args[0]) {
			p.Reportf(call.Pos(), "conversion boxes %s into interface %s in //rdl:noalloc function",
				types.ExprString(call.Args[0]), dst)
		}
		return
	}
	// Ordinary calls: check arguments against interface parameters.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil {
			continue
		}
		if p.boxes(pt, arg) {
			p.Reportf(arg.Pos(), "argument boxes %s into interface %s in //rdl:noalloc function",
				types.ExprString(arg), pt)
		}
	}
}

func (p *Pass) checkBoxingAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		var lt types.Type
		if as.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		} else if tv, ok := p.Info.Types[lhs]; ok {
			lt = tv.Type
		}
		if lt == nil {
			continue
		}
		if p.boxes(lt, as.Rhs[i]) {
			p.Reportf(as.Rhs[i].Pos(), "assignment boxes %s into interface %s in //rdl:noalloc function",
				types.ExprString(as.Rhs[i]), lt)
		}
	}
}

// boxes reports whether storing expr into a destination of type dst wraps
// a concrete value in an interface (which may heap-allocate the value).
func (p *Pass) boxes(dst types.Type, expr ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// paramType resolves the parameter type matching argument i, unrolling
// variadics.
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if ellipsis {
			return last // the slice is passed whole; no per-element boxing
		}
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// isBuiltin reports whether fun names the given builtin.
func (p *Pass) isBuiltin(fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func stringBytesConv(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return t.String()
}
