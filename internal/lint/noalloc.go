package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoallocDirective marks a function whose body must not contain
// allocating constructs. It lives in the function's doc comment:
//
//	// route runs crossing-aware A* for one net.
//	//rdl:noalloc
//	func (r *Router) route(net design.Net) (*searchResult, error) { ... }
//
// The analyzer pins the zero-allocation contract at the definition site
// instead of only in an allocation-counting test: the test says "this
// regressed", the annotation says "here is the line that regressed it".
const NoallocDirective = "//rdl:noalloc"

// Noalloc checks //rdl:noalloc-annotated functions for allocating
// constructs: make/new, appends that can grow a fresh backing array,
// escaping composite literals, slice and map literals, closures,
// string concatenation and string<->[]byte conversions, and interface
// boxing at calls, assignments and returns.
//
// Two append shapes are recognized as non-allocating steady state and
// admitted: the amortized self-append `x = append(x, ...)` (the reused
// scratch-buffer idiom) and appends whose base is a slice expression
// `append(x[:i], ...)` (the in-place delete/reset idiom) — both write
// into an existing backing array once warm. The check is per-body:
// callees are checked by the interprocedural transalloc pass, which
// walks the call graph from every annotation. Intentional allocations
// (the ≤4 allocs the A* budget grants route+commit) are acknowledged
// inline with //rdl:allow noalloc.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //rdl:noalloc may not contain allocating constructs; the sanctioned exceptions carry //rdl:allow noalloc",
	Run:  runNoalloc,
}

func hasNoallocDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == NoallocDirective {
			return true
		}
	}
	return false
}

func runNoalloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocDirective(fd) {
				continue
			}
			for _, s := range collectAllocSites(p.Info, fd, "//rdl:noalloc function") {
				p.Report(s.pos, s.msg)
			}
		}
	}
}

// allocSite is one allocating construct found in a function body.
type allocSite struct {
	pos token.Pos
	msg string
}

// collectAllocSites scans one function body for the allocating constructs
// the noalloc contract bans and returns them without reporting. ctx names
// the function's role inside the messages ("//rdl:noalloc function" for
// directly annotated bodies, a reachability phrase for the transitive
// pass).
func collectAllocSites(info *types.Info, fd *ast.FuncDecl, ctx string) []allocSite {
	c := &allocChecker{info: info, ctx: ctx}
	c.scan(fd)
	return c.out
}

// allocChecker runs the noalloc body checks over one function, collecting
// sites instead of reporting, so both the local noalloc analyzer and the
// interprocedural transalloc analyzer share one definition of
// "allocating construct".
type allocChecker struct {
	info *types.Info
	ctx  string
	out  []allocSite
}

func (c *allocChecker) site(pos token.Pos, msg string) {
	c.out = append(c.out, allocSite{pos: pos, msg: msg})
}

func (c *allocChecker) sitef(pos token.Pos, format string, args ...any) {
	c.site(pos, fmt.Sprintf(format, args...))
}

func (c *allocChecker) scan(fd *ast.FuncDecl) {
	admitted := c.admittedAppends(fd.Body)

	var results *types.Tuple
	if fn, ok := c.info.Defs[fd.Name].(*types.Func); ok {
		results = fn.Type().(*types.Signature).Results()
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			c.sitef(e.Pos(), "closure in %s: the func value and its captures escape to the heap", c.ctx)
			return false // its body is the closure's problem, not this function's
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					c.sitef(e.Pos(), "address of composite literal in %s: the literal escapes to the heap", c.ctx)
					return false
				}
			}
		case *ast.CompositeLit:
			switch c.info.Types[e].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				c.sitef(e.Pos(), "%s literal in %s allocates its backing store",
					kindName(c.info.Types[e].Type), c.ctx)
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(c.info.Types[e.X].Type) {
				c.sitef(e.Pos(), "string concatenation in %s allocates the result", c.ctx)
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isString(c.info.Types[e.Lhs[0]].Type) {
				c.sitef(e.Pos(), "string concatenation in %s allocates the result", c.ctx)
			}
			c.checkBoxingAssign(e)
		case *ast.ReturnStmt:
			if results != nil && len(e.Results) == results.Len() {
				for i, r := range e.Results {
					if c.boxes(results.At(i).Type(), r) {
						c.sitef(r.Pos(), "return boxes %s into interface %s in %s",
							types.ExprString(r), results.At(i).Type(), c.ctx)
					}
				}
			}
		case *ast.CallExpr:
			c.checkCall(e, admitted)
		}
		return true
	})
}

// admittedAppends collects the append calls in the non-allocating
// steady-state shapes: `x = append(x, ...)` and `y = append(x[:i], ...)`.
func (c *allocChecker) admittedAppends(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	admitted := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !c.isBuiltin(call.Fun, "append") || len(call.Args) == 0 {
				continue
			}
			if _, isSliceExpr := call.Args[0].(*ast.SliceExpr); isSliceExpr {
				admitted[call] = true
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				admitted[call] = true
			}
		}
		return true
	})
	return admitted
}

func (c *allocChecker) checkCall(call *ast.CallExpr, admitted map[*ast.CallExpr]bool) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				c.sitef(call.Pos(), "%s in %s allocates", b.Name(), c.ctx)
			case "append":
				if !admitted[call] {
					c.sitef(call.Pos(), "append outside the reuse idioms (x = append(x, ...) or append(x[:i], ...)) in %s can grow a fresh backing array", c.ctx)
				}
			}
			return
		}
	}

	tv, ok := c.info.Types[call.Fun]
	if !ok {
		return
	}
	// Conversions.
	if tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst := tv.Type
		src := c.info.Types[call.Args[0]].Type
		if src == nil {
			return
		}
		if stringBytesConv(dst, src) {
			c.sitef(call.Pos(), "conversion %s(%s) in %s copies the data",
				dst, types.ExprString(call.Args[0]), c.ctx)
		} else if c.boxes(dst, call.Args[0]) {
			c.sitef(call.Pos(), "conversion boxes %s into interface %s in %s",
				types.ExprString(call.Args[0]), dst, c.ctx)
		}
		return
	}
	// Ordinary calls: check arguments against interface parameters.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil {
			continue
		}
		if c.boxes(pt, arg) {
			c.sitef(arg.Pos(), "argument boxes %s into interface %s in %s",
				types.ExprString(arg), pt, c.ctx)
		}
	}
}

func (c *allocChecker) checkBoxingAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		var lt types.Type
		if as.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := c.info.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		} else if tv, ok := c.info.Types[lhs]; ok {
			lt = tv.Type
		}
		if lt == nil {
			continue
		}
		if c.boxes(lt, as.Rhs[i]) {
			c.sitef(as.Rhs[i].Pos(), "assignment boxes %s into interface %s in %s",
				types.ExprString(as.Rhs[i]), lt, c.ctx)
		}
	}
}

// boxes reports whether storing expr into a destination of type dst wraps
// a concrete value in an interface (which may heap-allocate the value).
func (c *allocChecker) boxes(dst types.Type, expr ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := c.info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// paramType resolves the parameter type matching argument i, unrolling
// variadics.
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if ellipsis {
			return last // the slice is passed whole; no per-element boxing
		}
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// isBuiltin reports whether fun names the given builtin.
func (c *allocChecker) isBuiltin(fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func stringBytesConv(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return t.String()
}
