package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Mapiter flags range-over-map loops whose bodies are order-sensitive: Go
// randomizes map iteration order per run, so anything the loop emits in
// visit order — slice appends, string accumulation, writes to a sink,
// early returns built from the loop variables — varies run to run and
// breaks byte-identical output.
//
// The analyzer distinguishes two shapes:
//
//   - accumulation (appending into a slice): benign when a canonical sort
//     of the accumulated data follows later in the same function, the
//     repo's standard collect-then-sort idiom;
//   - emission (string concatenation, channel sends, loop-dependent
//     early returns, loop-dependent method or writer calls): no later
//     sort can repair the order, so these are flagged unconditionally.
//
// Order-insensitive reductions — summing values, filling another map
// keyed by the loop key — are not flagged.
var Mapiter = &Analyzer{
	Name:  "mapiter",
	Doc:   "range over a map feeding order-sensitive output (appends without a later canonical sort, writes, sends, loop-dependent returns) is banned in deterministic packages",
	Scope: DeterministicScope,
	Run:   runMapiter,
}

// sortNeutralizers recognizes the canonical-sort calls that make a later
// consumer order-independent: anything from sort or slices whose name
// starts with Sort (plus sort.Stable, sort.Strings, ...), and local
// helpers whose name contains "sort" (sortProblems, sortViolations, ...).
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				path := pn.Imported().Path()
				if path == "sort" || path == "slices" {
					return true // every exported sort/slices entry point canonicalizes or is harmless
				}
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}

func runMapiter(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.mapiterFunc(fd)
		}
	}
}

func (p *Pass) mapiterFunc(fd *ast.FuncDecl) {
	// Positions of canonical-sort calls anywhere in the function: an
	// accumulating map range is fine if one follows it.
	var sortPos []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isSortCall(p.Info, call) {
			sortPos = append(sortPos, call.Pos())
		}
		return true
	})
	sortedAfter := func(end token.Pos) bool {
		for _, sp := range sortPos {
			if sp > end {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.Types[rs.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		emission, accumulation := p.orderSensitive(rs)
		switch {
		case emission != "":
			p.Reportf(rs.Pos(),
				"map iteration %s: map order is randomized per run and no later sort can repair this — iterate a sorted key slice instead",
				emission)
		case accumulation != "" && !sortedAfter(rs.End()):
			p.Reportf(rs.Pos(),
				"map iteration %s without a subsequent canonical sort: the result inherits randomized map order — sort it afterwards or iterate sorted keys",
				accumulation)
		}
		return true
	})
}

// orderSensitive classifies a map-range body. emission describes an
// unsortable order leak; accumulation describes a sortable one. Both
// empty means the body is order-insensitive.
func (p *Pass) orderSensitive(rs *ast.RangeStmt) (emission, accumulation string) {
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := p.Info.Defs[id]; obj != nil {
			loopVars[obj] = true
		} else if obj := p.Info.Uses[id]; obj != nil {
			loopVars[obj] = true
		}
	}
	usesLoopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[p.Info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if emission != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			emission = "sends on a channel"
			return false
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if usesLoopVar(r) {
					emission = "returns a value built from the loop variables: which entry returns first is schedule-dependent"
					return false
				}
			}
		case *ast.AssignStmt:
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
				if bt, ok := p.Info.Types[s.Lhs[0]].Type.Underlying().(*types.Basic); ok &&
					bt.Info()&types.IsString != 0 && p.declaredOutside(s.Lhs[0], rs) {
					emission = "concatenates onto a string in visit order"
					return false
				}
			}
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" &&
					len(s.Args) > 0 && p.declaredOutside(s.Args[0], rs) {
					accumulation = "appends to " + types.ExprString(s.Args[0])
				}
				return true
			}
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok && p.isEffectCall(sel) {
				args := make([]ast.Expr, 0, len(s.Args)+1)
				args = append(args, sel.X)
				args = append(args, s.Args...)
				for _, a := range args {
					if usesLoopVar(a) {
						emission = "feeds the loop variables to " + types.ExprString(sel) + " in visit order"
						return false
					}
				}
			}
		}
		return true
	})
	return emission, accumulation
}

// declaredOutside reports whether the root identifier of e names a
// variable declared outside the range statement (so per-iteration writes
// to it survive the loop).
func (p *Pass) declaredOutside(e ast.Expr, rs *ast.RangeStmt) bool {
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.Ident:
			obj := p.Info.Uses[v]
			if obj == nil {
				obj = p.Info.Defs[v]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
		default:
			return false
		}
	}
}

// isEffectCall reports whether a selector call can carry state out of the
// loop: a method on a value (receivers usually hold sinks or accumulators)
// or a function from one of the writer-shaped stdlib packages.
func (p *Pass) isEffectCall(sel *ast.SelectorExpr) bool {
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "fmt", "io", "bufio", "os":
				return true
			default:
				return false // other package-level calls (math.Abs, ...) are pure enough
			}
		}
	}
	if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
	}
	return false
}
