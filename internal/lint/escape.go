package lint

import (
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The escape gate is the compiler-backed cross-check on //rdl:noalloc.
// The AST analyzers (noalloc, transalloc) prove the absence of the
// allocating constructs they know about; the gc optimizer's escape
// analysis decides what actually reaches the heap. The two disagree in
// both directions — the AST passes flag boxing the compiler may elide,
// and the compiler moves to the heap locals the AST passes have no rule
// for (a pointer to a stack variable flowing somewhere it outlives the
// frame). The gate closes the second direction: it replays the
// compiler's own -m=2 escape diagnostics and fails if any of them lands
// inside a //rdl:noalloc function body.
//
// A diagnostic inside a noalloc body is discharged three ways:
//
//   - An //rdl:allow noalloc or //rdl:allow transalloc on the flagged
//     line or the line above (the same window the AST passes use): the
//     site is already audited, and the compiler agreeing with the audit
//     is not news.
//   - A dedicated //rdl:allow escape <reason>, for heap moves only the
//     compiler can see.
//   - The flagged line holds a static call to a function that is itself
//     //rdl:noalloc-annotated: the optimizer attributes an inlined
//     callee's allocation to every caller's call-site line, but the
//     callee's own definition is audited once — by the AST passes and by
//     this gate at the callee's body lines — so re-auditing each inline
//     copy would only multiply the same allow.
//   - The diagnostic sits exactly on the function's declaration line and
//     the body holds an audited allow: for generic functions the
//     compiler folds each shape instantiation's escape verdicts onto
//     the declaration position, losing the intra-body line, so the body
//     audit is the closest surviving anchor. A decl-line diagnostic in a
//     body with no allow at all still fails.
//
// Escape allows are themselves policed here: one that matches no
// diagnostic is stale and reported, exactly like every other suppression
// in the tree.

// EscapeAnalyzer is the analyzer name escape-gate findings are reported
// under and the //rdl:allow name that discharges them. It is not part of
// All(): the gate shells out to the go tool, so it runs as its own
// rdllint mode (-escape) rather than inside the pure-AST suite.
const EscapeAnalyzer = "escape"

// EscapeRunner produces the compiler's escape diagnostics for the module
// rooted at root. The default implementation shells out to
// `go build -gcflags=-m=2 ./...`; tests substitute canned output.
type EscapeRunner func(root string) ([]byte, error)

// GoBuildEscapeRunner invokes the gc compiler over every package of the
// module and returns its diagnostic stream. -m=2 diagnostics replay from
// the build cache, so a warm second run still produces the full stream —
// the gate cannot pass vacuously because nothing was recompiled.
func GoBuildEscapeRunner(root string) ([]byte, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m=2", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m=2 failed: %v\n%s", err, out)
	}
	return out, nil
}

// escapeDiag is one parsed compiler diagnostic.
type escapeDiag struct {
	file      string // absolute path
	line, col int
	msg       string
}

// noallocRange is the source extent of one //rdl:noalloc function.
type noallocRange struct {
	name       string
	start, end int // line numbers, inclusive
}

// EscapeCheck runs the compiler-backed escape gate over the module. run
// may be nil, in which case GoBuildEscapeRunner is used.
func (m *Module) EscapeCheck(run EscapeRunner) ([]Finding, error) {
	if run == nil {
		run = GoBuildEscapeRunner
	}
	out, err := run(m.Root)
	if err != nil {
		return nil, err
	}
	diags := parseEscapeDiags(m.Root, out)

	// Index the //rdl:noalloc bodies by file, and — from the call graph —
	// the lines holding a static call to a //rdl:noalloc callee: the
	// optimizer reports an inlined callee's allocation at the caller's
	// call-site line, and those allocations are audited once at the
	// callee's definition rather than at every inline copy.
	cg := buildCallGraph(m)
	ranges := make(map[string][]noallocRange)
	noallocCalls := make(map[string]map[int]bool)
	for _, n := range cg.order {
		pos := m.Fset.Position(n.decl.Pos())
		if n.noalloc {
			end := m.Fset.Position(n.decl.End())
			ranges[pos.Filename] = append(ranges[pos.Filename], noallocRange{
				name:  shortFuncName(n.fn),
				start: pos.Line,
				end:   end.Line,
			})
		}
		for _, e := range n.edges {
			callee := cg.nodes[e.callee]
			if callee == nil || !callee.noalloc {
				continue
			}
			p := m.Fset.Position(e.pos)
			if noallocCalls[p.Filename] == nil {
				noallocCalls[p.Filename] = make(map[int]bool)
			}
			noallocCalls[p.Filename][p.Line] = true
		}
	}

	// The gate honours the AST passes' allows (an audited alloc site does
	// not need auditing twice) plus its own //rdl:allow escape.
	allows := collectAllows(m.Fset, m.allFiles())
	auditedAllow := func(a *allowSite) bool {
		switch a.analyzer {
		case "noalloc", "transalloc", EscapeAnalyzer:
			return true
		}
		return false
	}
	discharges := func(d escapeDiag, fr noallocRange) bool {
		if noallocCalls[d.file][d.line] {
			return true
		}
		// A diagnostic on the declaration line is a folded generic shape
		// verdict: match it against any audited allow in the body.
		lo, hi := d.line-1, d.line
		if d.line == fr.start {
			lo, hi = fr.start, fr.end
		}
		ok := false
		for _, a := range allows {
			if a.pos.Filename != d.file || a.pos.Line < lo || a.pos.Line > hi {
				continue
			}
			if auditedAllow(a) {
				a.used = true
				ok = true
			}
		}
		return ok
	}

	var out2 []Finding
	for _, d := range diags {
		fr, ok := enclosingNoalloc(ranges[d.file], d.line)
		if !ok {
			continue
		}
		if discharges(d, fr) {
			continue
		}
		out2 = append(out2, Finding{
			Pos:      positionAt(d),
			Analyzer: EscapeAnalyzer,
			Message: fmt.Sprintf("compiler escape analysis: %s in //rdl:noalloc function %s; fix the escape or acknowledge with //rdl:allow escape",
				d.msg, fr.name),
		})
	}

	// Police the escape-allow inventory. Only the gate can validate these
	// (the AST driver skips allow names outside its analyzer set), so the
	// reason and staleness hygiene both live here.
	for _, a := range allows {
		if a.analyzer != EscapeAnalyzer {
			continue
		}
		if a.reason == "" {
			out2 = append(out2, Finding{
				Pos:      a.pos,
				Analyzer: allowAnalyzer,
				Message:  "//rdl:allow escape needs a written reason",
			})
		}
		if !a.used {
			out2 = append(out2, Finding{
				Pos:      a.pos,
				Analyzer: allowAnalyzer,
				Message:  "stale //rdl:allow escape: no compiler escape diagnostic left to suppress; delete it",
			})
		}
	}
	sortFindings(out2)
	return out2, nil
}

// parseEscapeDiags extracts the heap-relevant diagnostics from a
// `go build -gcflags=-m=2` stream: "moved to heap: x" and
// "... escapes to heap". Inlining reports, "does not escape" verdicts,
// parameter-leak summaries and the indented flow-explanation lines are
// all noise for the gate's purpose and dropped. -m=2 frequently emits
// the same verdict twice at one position (a flow header with a trailing
// colon plus a summary line); the trailing colon is normalised away and
// exact duplicates are folded.
func parseEscapeDiags(root string, out []byte) []escapeDiag {
	var diags []escapeDiag
	seen := make(map[string]bool)
	for _, line := range strings.Split(string(out), "\n") {
		if line == "" || line[0] == '#' || line[0] == ' ' || line[0] == '\t' {
			continue // package banner or flow-detail continuation
		}
		file, rest, ok := strings.Cut(line, ".go:")
		if !ok {
			continue
		}
		file += ".go"
		parts := strings.SplitN(rest, ":", 3)
		if len(parts) != 3 {
			continue
		}
		ln, err1 := strconv.Atoi(parts[0])
		col, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			continue
		}
		msg := strings.TrimSuffix(strings.TrimSpace(parts[2]), ":")
		if !isEscapeVerdict(msg) {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		key := fmt.Sprintf("%s:%d:%d:%s", file, ln, col, msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		diags = append(diags, escapeDiag{file: file, line: ln, col: col, msg: msg})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.msg < b.msg
	})
	return diags
}

// isEscapeVerdict keeps only the diagnostics that mean "this heap
// allocates": a local moved to the heap or a value escaping to it.
func isEscapeVerdict(msg string) bool {
	if strings.HasPrefix(msg, "moved to heap:") {
		return true
	}
	return strings.HasSuffix(msg, "escapes to heap") && !strings.Contains(msg, "does not escape")
}

// enclosingNoalloc finds the //rdl:noalloc function whose body spans the
// line, if any.
func enclosingNoalloc(ranges []noallocRange, line int) (noallocRange, bool) {
	for _, r := range ranges {
		if line >= r.start && line <= r.end {
			return r, true
		}
	}
	return noallocRange{}, false
}

// positionAt renders a diagnostic's location as a token.Position for a
// Finding.
func positionAt(d escapeDiag) token.Position {
	return token.Position{Filename: d.file, Line: d.line, Column: d.col}
}
