package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Readset machine-checks the soundness rule that keeps speculative
// parallel global routing byte-identical to the serial schedule. A
// speculative search runs against a snapshot of the congestion state;
// it is committed only if specValid proves that nothing the search
// *read* changed while it ran. That proof is exactly as good as the
// read set: a search-path read of shared mutable state that is not
// recorded in the scratch's read set is invisible to validation, and a
// conflicting commit slips through as silent nondeterminism — the worst
// failure mode this codebase has, because every differential test still
// passes on the lucky schedules.
//
// The rule, as encoded here:
//
//   - A function is in the search-path scope iff it takes a
//     *searchScratch parameter. (The scratch is threaded through every
//     function the speculative search may execute; commit and ripUp run
//     only under the serializing lock and take no scratch.)
//   - Inside scope, every read of the shared congestion state — the
//     nodeUse, linkUse, seqs and passages collections — must be paired
//     with the matching read-set record: readNode for nodeUse and seqs
//     (both validate under the node's change stamp), readLink for
//     linkUse, readTile for passages.
//   - "Paired" means a record call with a textually identical index
//     expression appears earlier in the same function body. Textual
//     matching (types.ExprString) is deliberately strict: aliasing the
//     index through another variable defeats the analyzer, and the
//     discipline of recording immediately before reading is exactly the
//     idiom the hand-written code already follows.
//
// Pure writes (plain assignment to an indexed element) are not reads.
// Compound assignments and increments read the old value and count.
var Readset = &Analyzer{
	Name: "readset",
	Doc:  "search-path reads of speculative congestion state (nodeUse/linkUse/seqs/passages) must be preceded by the matching read-set record call (readNode/readLink/readTile) with the same index expression",
	Scope: []string{
		"internal/global",
	},
	Run: runReadset,
}

// scratchTypeName is the type whose presence in a parameter list marks a
// function as part of the speculative search path.
const scratchTypeName = "searchScratch"

// trackedState maps each shared-state collection to the record method
// that makes a read of it visible to speculative validation.
var trackedState = map[string]string{
	"nodeUse":  "readNode",
	"linkUse":  "readLink",
	"seqs":     "readNode",
	"passages": "readTile",
}

func runReadset(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasScratchParam(p.Info, fd) {
				continue
			}
			checkReadset(p, fd)
		}
	}
}

// hasScratchParam reports whether the function takes a *searchScratch
// parameter (receiver excluded: the scratch's own methods implement the
// recording and are not themselves subject to the rule).
func hasScratchParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isScratchPtr(tv.Type) {
			return true
		}
	}
	return false
}

// isScratchPtr reports whether t is *searchScratch.
func isScratchPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == scratchTypeName
}

// recordCall is one readNode/readLink/readTile invocation.
type recordCall struct {
	method string // readNode, readLink or readTile
	arg    string // types.ExprString of the recorded index
	pos    token.Pos
}

func checkReadset(p *Pass, fd *ast.FuncDecl) {
	// Pass 1: collect the record calls and the pure-write sites.
	var records []recordCall
	pureWrites := make(map[*ast.IndexExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if rc, ok := asRecordCall(p.Info, e); ok {
				records = append(records, rc)
			}
		case *ast.AssignStmt:
			if e.Tok != token.ASSIGN {
				return true // compound assignment reads the old value
			}
			for _, lhs := range e.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					pureWrites[ix] = true
				}
			}
		}
		return true
	})

	// Pass 2: every tracked read must have a matching record before it.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok || pureWrites[ix] {
			return true
		}
		field, ok := trackedFieldRead(p.Info, ix)
		if !ok {
			return true
		}
		want := trackedState[field]
		arg := types.ExprString(ix.Index)
		for _, rc := range records {
			if rc.method == want && rc.arg == arg && rc.pos < ix.Pos() {
				return true
			}
		}
		p.Reportf(ix.Pos(), "search-path read of %s[%s] has no preceding %s(%s) in %s: speculative validation cannot see unrecorded reads, so a conflicting commit would slip through as nondeterminism",
			field, arg, want, arg, fd.Name.Name)
		return true
	})
}

// asRecordCall matches sc.readNode(e) / sc.readLink(e) / sc.readTile(e)
// for any receiver of type *searchScratch.
func asRecordCall(info *types.Info, call *ast.CallExpr) (recordCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return recordCall{}, false
	}
	switch sel.Sel.Name {
	case "readNode", "readLink", "readTile":
	default:
		return recordCall{}, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !isScratchPtr(tv.Type) {
		return recordCall{}, false
	}
	return recordCall{
		method: sel.Sel.Name,
		arg:    types.ExprString(call.Args[0]),
		pos:    call.Pos(),
	}, true
}

// trackedFieldRead reports whether ix indexes one of the shared
// congestion-state collections: a field selection named nodeUse,
// linkUse, seqs or passages.
func trackedFieldRead(info *types.Info, ix *ast.IndexExpr) (string, bool) {
	sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, tracked := trackedState[sel.Sel.Name]; !tracked {
		return "", false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	return sel.Sel.Name, true
}
