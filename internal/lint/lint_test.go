package lint

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current analyzer output")

// fixtureAnalyzers maps each fixture package under testdata/src to the
// analyzers it exercises. The framework fixture runs detrand only to
// prove the suppression hygiene (stale allows, missing reasons) is
// enforced by the framework, not by any particular analyzer.
var fixtureAnalyzers = map[string][]*Analyzer{
	"detrand":    {Detrand},
	"mapiter":    {Mapiter},
	"floateq":    {Floateq},
	"barego":     {Barego},
	"noalloc":    {Noalloc},
	"transalloc": {Transalloc},
	"readset":    {Readset},
	"framework":  {Detrand},
}

// TestFixtures type-checks each fixture package, runs its analyzers with
// suppression applied, and compares the formatted findings against the
// golden file. Run with -update to rewrite the goldens.
func TestFixtures(t *testing.T) {
	names := make([]string, 0, len(fixtureAnalyzers))
	for name := range fixtureAnalyzers {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dir := filepath.Join("testdata", "src", name)
			pkg, err := LoadDir(dir, "fixture/"+name)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			findings := RunPackage(pkg, fixtureAnalyzers[name])

			var b strings.Builder
			for _, f := range findings {
				rel := filepath.ToSlash(f.Pos.Filename)
				rel = strings.TrimPrefix(rel, "testdata/src/")
				b.WriteString(rel)
				b.WriteString(f.String()[len(f.Pos.Filename):])
				b.WriteString("\n")
			}
			got := b.String()
			if got == "" {
				t.Fatalf("fixture %s produced no findings: every fixture must keep at least one flagged case", name)
			}

			golden := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run `go test ./internal/lint -run Fixtures -update` to create it): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestFixturesSuppressedLinesAbsent pins the other half of the golden
// contract: the SUPPRESSED cases in each fixture must not appear in the
// output, so the goldens cannot silently absorb a broken allow matcher.
func TestFixturesSuppressedLinesAbsent(t *testing.T) {
	for name := range fixtureAnalyzers {
		golden, err := os.ReadFile(filepath.Join("testdata", "golden", name+".golden"))
		if err != nil {
			t.Fatalf("%s: %v (run with -update first)", name, err)
		}
		src, err := os.ReadFile(filepath.Join("testdata", "src", name, name+".go"))
		if err != nil {
			t.Fatal(err)
		}
		// Every line carrying a reasoned allow for the fixture's own
		// analyzer suppresses the line below it; neither may be reported.
		lines := strings.Split(string(src), "\n")
		for i, line := range lines {
			text := strings.TrimSpace(line)
			if !strings.HasPrefix(text, "//rdl:allow ") || name == "framework" {
				continue
			}
			for _, ln := range []int{i + 1, i + 2} { // 1-based: the allow line and the one below
				prefix := name + "/" + name + ".go:" + strconv.Itoa(ln) + ":"
				for _, g := range strings.Split(string(golden), "\n") {
					if strings.HasPrefix(g, prefix) && !strings.Contains(g, "rdlallow") {
						t.Errorf("%s: line %d carries an allow but still appears in the golden: %s", name, ln, g)
					}
				}
			}
		}
	}
}
