package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// Transalloc propagates the //rdl:noalloc contract through the module
// call graph. The local noalloc pass is deliberately per-body — every
// function on the hot path carries its own annotation — which leaves a
// gap: an annotated function calling an *unannotated* helper keeps a
// clean body while the helper allocates on its behalf. Transalloc closes
// it. From every //rdl:noalloc root it walks the statically resolvable
// call edges (direct calls, concrete-receiver methods, once-bound local
// function values); any allocating construct in a reachable unannotated
// function is a finding carrying the allocation site and the full call
// chain from the root. Reachable functions that are themselves annotated
// //rdl:noalloc terminate the walk — they are roots of their own, and
// their bodies (plus their audited //rdl:allow noalloc budget) are the
// local pass's responsibility.
//
// Calls the resolver cannot see through — interface dispatch, func-typed
// fields or parameters, reassigned function variables — are findings in
// their own right when they sit on a noalloc path: the analysis cannot
// prove the callee allocation-free, so a human must audit it and say so
// with //rdl:allow transalloc <reason> at the call site. That keeps the
// dynamic-call inventory on the hot path explicit and shrink-only, the
// same discipline the rest of the suite applies.
//
// Out-of-module (standard library) callees are not traversed: their
// boxing at the call site is caught by the local noalloc checks, and the
// compiler-backed escape gate (rdllint -escape) cross-checks the rest
// against the optimizer's own escape analysis.
var Transalloc = &Analyzer{
	Name:      "transalloc",
	Doc:       "//rdl:noalloc functions must not reach an allocating callee through the call graph; unresolvable (interface/func-value) calls on a noalloc path need an audited //rdl:allow transalloc",
	RunModule: runTransalloc,
}

// transallocCtx phrases the alloc-site messages for callee bodies.
const transallocCtx = "a function reached from //rdl:noalloc"

func runTransalloc(p *ModulePass) {
	cg := buildCallGraph(p.Mod)

	// allocCache holds the per-function alloc sites so a helper shared by
	// many roots is scanned once.
	allocCache := make(map[*funcNode][]allocSite)
	sites := func(n *funcNode) []allocSite {
		if s, ok := allocCache[n]; ok {
			return s
		}
		s := collectAllocSites(n.pkg.Info, n.decl, transallocCtx)
		allocCache[n] = s
		return s
	}

	// reported dedups findings by position: a site reachable from several
	// roots is reported once, under the first root in source order, so the
	// output stays stable and one //rdl:allow discharges the site for
	// every chain through it.
	reported := make(map[token.Pos]bool)

	for _, root := range cg.order {
		if !root.noalloc {
			continue
		}
		rootName := shortFuncName(root.fn)

		// Dynamic calls in the root's own body: the local pass does not
		// look at calls beyond their argument boxing, so the escape hatch
		// for unresolvable dispatch is enforced here for roots too.
		for _, d := range root.dyns {
			if reported[d.pos] {
				continue
			}
			reported[d.pos] = true
			p.Reportf(d.pos, "%s in //rdl:noalloc %s cannot be proven allocation-free; audit the callee and acknowledge with //rdl:allow transalloc",
				d.why, rootName)
		}

		// Walk the static edges from the root. parentEdge remembers how
		// each function was first reached so findings can print the chain.
		type visit struct {
			node *funcNode
			via  string // rendered chain root -> ... -> node
		}
		seen := map[*funcNode]bool{root: true}
		queue := []visit{}
		for _, e := range root.edges {
			if callee := cg.nodes[e.callee]; callee != nil && !seen[callee] {
				seen[callee] = true
				queue = append(queue, visit{node: callee, via: rootName + " -> " + shortFuncName(callee.fn)})
			}
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if v.node.noalloc {
				continue // its own annotation makes it a root; the local pass owns its body
			}
			for _, s := range sites(v.node) {
				if reported[s.pos] {
					continue
				}
				reported[s.pos] = true
				p.Reportf(s.pos, "%s — reachable from //rdl:noalloc %s via %s; annotate the helper //rdl:noalloc or acknowledge with //rdl:allow transalloc",
					s.msg, rootName, v.via)
			}
			for _, d := range v.node.dyns {
				if reported[d.pos] {
					continue
				}
				reported[d.pos] = true
				p.Reportf(d.pos, "%s reachable from //rdl:noalloc %s via %s cannot be proven allocation-free; audit the callee and acknowledge with //rdl:allow transalloc",
					d.why, rootName, v.via)
			}
			for _, e := range v.node.edges {
				if callee := cg.nodes[e.callee]; callee != nil && !seen[callee] {
					seen[callee] = true
					queue = append(queue, visit{node: callee, via: v.via + " -> " + shortFuncName(callee.fn)})
				}
			}
		}
	}
}

// shortFuncName renders a function or method name for findings:
// "route" for package functions, "(*Router).route" for methods, with
// generic type arguments elided.
func shortFuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	recv := sig.Recv().Type()
	star := ""
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
		star = "*"
	}
	name := "?"
	if named, isNamed := recv.(*types.Named); isNamed {
		name = named.Obj().Name()
	} else {
		name = recv.String()
		if i := strings.LastIndex(name, "."); i >= 0 {
			name = name[i+1:]
		}
	}
	return fmt.Sprintf("(%s%s).%s", star, name, fn.Name())
}
