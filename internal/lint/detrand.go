package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detrand rejects the two nondeterminism sources that silently break
// byte-identical routing: the process-global math/rand source and the
// wall clock. Methods on an injected, seeded *rand.Rand are always fine —
// determinism flows from the seed. Constructing an RNG inside a scoped
// package (rand.New / rand.NewSource) is flagged so that every in-tree
// seed site carries an //rdl:allow naming where its seed comes from;
// reading the global source (rand.Intn, rand.Float64, rand.Seed, ...) or
// time.Now has no such acknowledgment path and must be fixed by injecting
// the dependency.
var Detrand = &Analyzer{
	Name:  "detrand",
	Doc:   "global math/rand and time.Now are banned in deterministic packages; RNG construction must name its seed's provenance via //rdl:allow",
	Scope: ClockScope,
	Run:   runDetrand,
}

// randGlobalFuncs are the package-level math/rand functions that read or
// reseed the shared global source.
var randGlobalFuncs = map[string]bool{
	"ExpFloat64": true, "Float32": true, "Float64": true,
	"Int": true, "Int31": true, "Int31n": true, "Int63": true, "Int63n": true,
	"IntN": true, "Intn": true, "N": true, "NormFloat64": true, "Perm": true,
	"Read": true, "Seed": true, "Shuffle": true, "Uint32": true, "Uint64": true,
	"Uint32N": true, "Uint64N": true, "UintN": true,
}

// randConstructors build a new RNG or source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runDetrand(p *Pass) {
	for _, f := range p.Files {
		// First pass: spans of rand.New / rand.NewZipf calls, so the
		// rand.NewSource conventionally nested in their arguments is not
		// reported a second time on the same line.
		type span struct{ lo, hi token.Pos }
		var outer []span
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := p.pkgFunc(call.Fun); fn != nil && isRandPkg(fn.Pkg().Path()) &&
				(fn.Name() == "New" || fn.Name() == "NewZipf") {
				outer = append(outer, span{call.Pos(), call.End()})
			}
			return true
		})
		enclosed := func(pos token.Pos) bool {
			for _, s := range outer {
				if s.lo < pos && pos < s.hi {
					return true
				}
			}
			return false
		}

		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on a rand.Rand/Source value: seed-driven, fine
			}
			switch {
			case isRandPkg(fn.Pkg().Path()) && randConstructors[fn.Name()]:
				if fn.Name() == "NewSource" && enclosed(sel.Pos()) {
					return true
				}
				p.Reportf(sel.Pos(),
					"RNG constructed in a deterministic package: rand.%s — inject a seeded *rand.Rand, or //rdl:allow detrand naming the seed's provenance",
					fn.Name())
			case isRandPkg(fn.Pkg().Path()) && randGlobalFuncs[fn.Name()]:
				p.Reportf(sel.Pos(),
					"rand.%s reads the process-global RNG: routing output would depend on call interleaving — draw from a seeded, injected *rand.Rand",
					fn.Name())
			case fn.Pkg().Path() == "time" && fn.Name() == "Now":
				p.Report(sel.Pos(),
					"time.Now in a deterministic package: wall clock must not feed routing state — inject a clock, or //rdl:allow detrand for observability-only reads")
			}
			return true
		})
	}
}

// pkgFunc resolves a call target to a package-level *types.Func, or nil.
func (p *Pass) pkgFunc(fun ast.Expr) *types.Func {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil
	}
	return fn
}
