package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floateq flags direct ==/!= between floating-point operands in the
// geometry kernels. Coordinates there are the results of intersections,
// projections and circumcircle predicates — exact equality on them is
// almost always a latent epsilon bug; the geom.Eps helpers (ApproxEq,
// ApproxZero, Point.ApproxEq) are the approved comparisons. The check
// covers composite types too: comparing two geom.Points with == is float
// equality on both coordinates. The one exempt idiom is `x != x`, the
// allocation-free NaN probe.
var Floateq = &Analyzer{
	Name:  "floateq",
	Doc:   "direct ==/!= on floating-point operands (including structs with float fields) is banned in the geometry packages; use the Eps helpers",
	Scope: GeometryScope,
	Run:   runFloateq,
}

func runFloateq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx := p.Info.Types[be.X].Type
			ty := p.Info.Types[be.Y].Type
			if tx == nil || ty == nil {
				return true
			}
			if !hasFloat(tx) && !hasFloat(ty) {
				return true
			}
			if be.Op == token.NEQ && types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // x != x: the NaN probe
			}
			p.Reportf(be.Pos(),
				"float equality (%s %s %s): exact comparison on computed geometry is an epsilon bug waiting to happen — use geom.ApproxEq/ApproxZero or //rdl:allow floateq with the exactness argument",
				types.ExprString(be.X), be.Op, types.ExprString(be.Y))
			return true
		})
	}
}

// hasFloat reports whether comparing two values of type t with ==
// compares floating-point representations anywhere: a float basic type, a
// struct with a float field (recursively), or an array of such.
func hasFloat(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Float32, types.Float64, types.Complex64, types.Complex128,
			types.UntypedFloat, types.UntypedComplex:
			return true
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasFloat(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return hasFloat(u.Elem())
	}
	return false
}
