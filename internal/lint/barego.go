package lint

import (
	"go/ast"
)

// Barego bans bare go statements in the deterministic packages. Parallel
// stages there must fan out through internal/pool.Run: its fixed unit
// boundaries and unit-indexed results are what make any worker count
// byte-identical to the serial path. A hand-rolled goroutine loop has to
// re-earn that property from scratch every time — and historically the
// copies drifted (internal/global and internal/verify each carried their
// own fork of the pool before this analyzer landed).
var Barego = &Analyzer{
	Name:  "barego",
	Doc:   "bare go statements are banned in deterministic packages; concurrency must flow through internal/pool.Run",
	Scope: DeterministicScope,
	Run:   runBarego,
}

func runBarego(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Report(g.Pos(),
					"bare go statement in a deterministic package: fan out through internal/pool.Run so unit order, not scheduling, decides the output")
			}
			return true
		})
	}
}
