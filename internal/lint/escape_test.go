package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestParseEscapeDiags pins the parsing and normalization of the
// -gcflags=-m=2 stream: package banners and indented flow-explanation
// lines are noise, "does not escape" and parameter-leak summaries are
// not heap verdicts, the flow-header trailing colon is normalised away,
// and exact duplicates fold into one diagnostic.
func TestParseEscapeDiags(t *testing.T) {
	out := strings.Join([]string{
		"# escfixture",
		"./a.go:5:2: moved to heap: x:",
		"./a.go:5:2: moved to heap: x",
		"\tflow: y = &x:",
		"./a.go:7:9: make([]int, n) does not escape",
		"./b.go:8:9: make([]int, n) escapes to heap",
		"./a.go:3:6: can inline Leak",
		"./b.go:2:2: leaking param: p",
		"",
	}, "\n")
	diags := parseEscapeDiags("/mod", []byte(out))
	want := []escapeDiag{
		{file: "/mod/a.go", line: 5, col: 2, msg: "moved to heap: x"},
		{file: "/mod/b.go", line: 8, col: 9, msg: "make([]int, n) escapes to heap"},
	}
	if len(diags) != len(want) {
		t.Fatalf("parsed %d diagnostics, want %d: %+v", len(diags), len(want), diags)
	}
	for i := range want {
		if diags[i] != want[i] {
			t.Errorf("diag %d = %+v, want %+v", i, diags[i], want[i])
		}
	}
}

// The escape fixture module is loaded once and shared by the canned and
// real-compiler tests.
var (
	escOnce sync.Once
	escMod  *Module
	escErr  error
)

func escModule(t *testing.T) *Module {
	t.Helper()
	escOnce.Do(func() {
		escMod, escErr = LoadModule(filepath.Join("testdata", "escape"))
	})
	if escErr != nil {
		t.Fatalf("loading escape fixture: %v", escErr)
	}
	return escMod
}

// TestEscapeCheckCanned drives the gate with a canned diagnostic stream
// over the fixture module, covering every discharge path without
// depending on the toolchain's attribution choices: a heap move in a
// noalloc body is a finding, one under an //rdl:allow escape is
// discharged, one outside any annotated body is ignored, an inlined
// audited callee's caller-line diagnostic is discharged through the call
// graph, and the callee's own audited make is discharged by its allow.
func TestEscapeCheckCanned(t *testing.T) {
	mod := escModule(t)
	canned := func(lines ...string) EscapeRunner {
		return func(string) ([]byte, error) {
			return []byte(strings.Join(lines, "\n") + "\n"), nil
		}
	}

	findings, err := mod.EscapeCheck(canned(
		"# escfixture",
		"./esc.go:14:2: moved to heap: x",
		"./esc.go:21:2: moved to heap: y",
		"./esc.go:32:2: moved to heap: z",
		"./esc.go:42:9: make([]int, n) escapes to heap",
		"./esc.go:47:13: make([]int, n) escapes to heap",
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (the Leak heap move):\n%s", len(findings), renderFindings(mod.Root, findings))
	}
	f := findings[0]
	if f.Analyzer != EscapeAnalyzer || f.Pos.Line != 14 || !strings.Contains(f.Message, "moved to heap: x") || !strings.Contains(f.Message, "Leak") {
		t.Errorf("unexpected finding: %s", f)
	}

	// With no diagnostic left for it, the fixture's //rdl:allow escape is
	// stale and the gate itself must say so.
	findings, err = mod.EscapeCheck(canned(
		"./esc.go:14:2: moved to heap: x",
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (Leak + stale escape allow):\n%s", len(findings), renderFindings(mod.Root, findings))
	}
	stale := findings[1]
	if stale.Analyzer != allowAnalyzer || stale.Pos.Line != 20 || !strings.Contains(stale.Message, "stale //rdl:allow escape") {
		t.Errorf("stale escape allow not policed, got: %s", stale)
	}
}

// TestEscapeCheckRunnerError pins error propagation: a failing compiler
// invocation is a hard error, not an empty (vacuously clean) result.
func TestEscapeCheckRunnerError(t *testing.T) {
	mod := escModule(t)
	boom := func(string) ([]byte, error) { return nil, fmt.Errorf("boom") }
	if _, err := mod.EscapeCheck(boom); err == nil {
		t.Fatal("EscapeCheck swallowed the runner error")
	}
}

// TestEscapeFixtureRealCompiler runs the gate against the real gc escape
// analysis over the deliberately-escaping fixture and compares with the
// golden file: exactly the Leak heap move survives — the allowed escape,
// the unannotated function, and the inlined audited callee all
// discharge. Run with -update to rewrite the golden.
func TestEscapeFixtureRealCompiler(t *testing.T) {
	mod := escModule(t)
	findings, err := mod.EscapeCheck(nil)
	if err != nil {
		t.Fatal(err)
	}
	got := renderFindings(mod.Root, findings)
	if !strings.Contains(got, "moved to heap: x") {
		t.Fatalf("the deliberate Leak escape was not reported:\n%s", got)
	}

	golden := filepath.Join("testdata", "golden", "escape.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run `go test ./internal/lint -run EscapeFixture -update` to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("escape findings diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestRepoEscapeClean is the acceptance gate: the compiler's escape
// analysis must agree that no //rdl:noalloc body in the real repo moves
// anything to the heap beyond the audited sites.
func TestRepoEscapeClean(t *testing.T) {
	mod := repoModule(t)
	findings, err := mod.EscapeCheck(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("repo has %d escape finding(s); run `go run ./cmd/rdllint -escape` for the same list", len(findings))
	}
}

// renderFindings formats findings with root-relative paths for test
// output and the escape golden file.
func renderFindings(root string, findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			rel = f.Pos.Filename
		}
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", filepath.ToSlash(rel), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	return b.String()
}
