// Package escfixture exercises the compiler-backed escape gate: a heap
// move inside a //rdl:noalloc body that the AST analyzers cannot see (a
// stack variable escaping through a returned pointer), a matching
// audited //rdl:allow escape, an escape outside any annotated body, and
// an inlined audited callee whose allocation the optimizer attributes
// to the caller's call-site line.
package escfixture

// Leak moves x to the heap: &x outlives the frame. The AST noalloc pass
// has no rule for this — only the compiler's escape analysis sees it.
//
//rdl:noalloc
func Leak() *int {
	x := 42
	return &x // REPORTED: moved to heap
}

//rdl:noalloc
func Allowed() *int {
	//rdl:allow escape the pointer is handed to a caller-owned arena that recycles it before the next routing pass begins
	y := 7
	return &y // SUPPRESSED
}

//rdl:noalloc
func Clean(a, b int) int {
	return a + b
}

// Unannotated escapes freely: the gate only polices //rdl:noalloc bodies.
func Unannotated() *int {
	z := 1
	return &z
}

// grow is audited at its definition; useGrow inherits that audit for the
// inlined copy the compiler attributes to its call-site line.
//
//rdl:noalloc
func grow(n int) []int {
	//rdl:allow noalloc amortized growth: the fixture mirrors the detail-stage scratch buffers
	return make([]int, n)
}

//rdl:noalloc
func useGrow(n int) []int {
	return grow(n) // NOT reported: static call to an audited //rdl:noalloc callee
}
