module escfixture

go 1.22
