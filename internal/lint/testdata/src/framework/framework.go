// Package framework exercises the suppression machinery itself: a
// load-bearing allow suppresses its finding, while a stale allow, a
// reasonless allow, and an allow with no analyzer name are findings in
// their own right.
package framework

import "time"

// now carries a load-bearing, reasoned allow. CLEAN.
func now() time.Time {
	//rdl:allow detrand fixture clock read, acknowledged with a reason
	return time.Now()
}

// pure has nothing left to suppress: the allow outlived the code it
// covered. FLAGGED (rdlallow: stale).
//
//rdl:allow detrand this comment outlived the code it covered
func pure(x int) int {
	return x + 1
}

// later's allow suppresses the time.Now below but carries no written
// reason. FLAGGED (rdlallow: needs a reason).
func later() time.Time {
	//rdl:allow detrand
	return time.Now()
}

// broken's allow names no analyzer at all. FLAGGED (rdlallow), and the
// time.Now it fails to cover is FLAGGED too (detrand).
func broken() time.Time {
	//rdl:allow
	return time.Now()
}
