// Package transalloc exercises the interprocedural //rdl:noalloc
// propagation: allocating constructs in unannotated callees reached
// through static call chains (direct calls, concrete-receiver methods,
// generic instantiations, once-bound local function values), dynamic
// call sites that need an audited //rdl:allow transalloc, and the
// traversal stopping at callees that carry their own annotation.
package transalloc

type buf struct {
	data []int
	grow func(n int) []int
}

// leafAlloc and midCall are unannotated helpers: their allocations are
// only findings because a //rdl:noalloc root reaches them.

func leafAlloc(n int) []int {
	return make([]int, n) // REPORTED once, under the first root in source order
}

func midCall(n int) []int {
	return leafAlloc(n)
}

// Root reaches leafAlloc through a two-hop static chain.
//
//rdl:noalloc
func Root(n int) []int {
	return midCall(n)
}

// fill allocates inside a concrete-receiver method chain.
func (b *buf) fill(n int) {
	b.data = append(b.data, make([]int, n)...) // REPORTED (the make; the self-append is admitted)
}

//rdl:noalloc
func (b *buf) Refill(n int) {
	b.fill(n)
}

// GrowDyn calls through a func-typed field: unresolvable statically, so
// the site needs an audited allow.
//
//rdl:noalloc
func (b *buf) GrowDyn(n int) {
	b.data = b.grow(n) // REPORTED: call through func-typed field
}

//rdl:noalloc
func (b *buf) GrowDynAllowed(n int) {
	//rdl:allow transalloc grow is bound once at construction to a resizer that reslices a preallocated arena
	b.data = b.grow(n) // SUPPRESSED
}

// viaIface dispatches through an interface inside a reachable helper.

type sizer interface{ size() int }

func viaIface(s sizer) int {
	return s.size() // REPORTED: interface method call on a noalloc path
}

//rdl:noalloc
func RootIface(s sizer) int {
	return viaIface(s)
}

// annotatedLeaf carries its own //rdl:noalloc: the traversal stops at it,
// because its body (and its allow budget) belongs to the local noalloc
// pass. Only that pass — not transalloc — would flag the make below.
//
//rdl:noalloc
func annotatedLeaf(n int) []int {
	return make([]int, n) // NOT reported by transalloc: annotated callees are their own roots
}

//rdl:noalloc
func RootStops(n int) []int {
	return annotatedLeaf(n)
}

func leafAlloc2(n int) []int {
	return make([]int, n) // REPORTED via the once-bound local below
}

// RootBound binds a local variable to a function exactly once; the call
// through it resolves statically.
//
//rdl:noalloc
func RootBound(n int) []int {
	f := leafAlloc2
	return f(n)
}

// RootReassigned rebinds the variable, so the call is dynamic.
//
//rdl:noalloc
func RootReassigned(n int, flip bool) []int {
	f := leafAlloc
	if flip {
		f = leafAlloc2
	}
	return f(n) // REPORTED: call through a reassigned func value
}

func genAlloc[T any](n int) []T {
	return make([]T, n) // REPORTED: generic instantiations fold onto this declaration
}

//rdl:noalloc
func RootGeneric(n int) []int {
	return genAlloc[int](n)
}
