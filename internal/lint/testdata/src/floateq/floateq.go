// Package floateq exercises the floateq analyzer: direct ==/!= on
// floats and float-bearing structs is flagged, epsilon comparisons and
// the NaN probe are clean, and an exact-zero guard is suppressed.
package floateq

const eps = 1e-9

type point struct{ X, Y float64 }

// sameCoord compares computed floats exactly. FLAGGED.
func sameCoord(a, b float64) bool {
	return a == b
}

// samePoint compares structs with float fields. FLAGGED: this is float
// equality on both coordinates.
func samePoint(p, q point) bool {
	return p == q
}

// approxEq is the approved epsilon comparison. CLEAN.
func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// sameIndex compares integers. CLEAN.
func sameIndex(i, j int) bool {
	return i == j
}

// isNaN uses the x != x probe. CLEAN.
func isNaN(x float64) bool {
	return x != x
}

// divGuard's exact zero test is intentional: any nonzero value, however
// small, divides finely. SUPPRESSED.
func divGuard(n float64) float64 {
	//rdl:allow floateq exact zero guards division by zero only
	if n == 0 {
		return 0
	}
	return 1 / n
}
