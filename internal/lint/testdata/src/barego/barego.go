// Package barego exercises the barego analyzer: a hand-rolled goroutine
// fan-out is flagged, serial code is clean, and an acknowledged
// supervisor goroutine is suppressed.
package barego

import "sync"

// fanOut launches bare goroutines. FLAGGED.
func fanOut(units []func()) {
	var wg sync.WaitGroup
	for _, u := range units {
		wg.Add(1)
		go func() {
			defer wg.Done()
			u()
		}()
	}
	wg.Wait()
}

// serial runs the units inline. CLEAN.
func serial(units []func()) {
	for _, u := range units {
		u()
	}
}

// sanctioned is an acknowledged exception. SUPPRESSED.
func sanctioned(done chan struct{}) {
	//rdl:allow barego fixture exception: supervisor goroutine outside any determinism contract
	go func() { close(done) }()
}
