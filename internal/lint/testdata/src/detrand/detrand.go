// Package detrand exercises the detrand analyzer: reads of the
// process-global RNG and the wall clock are flagged, injected seeded
// randomness is clean, and acknowledged RNG construction is suppressed.
package detrand

import (
	"math/rand"
	"time"
)

// jitterGlobal draws from the process-global source. FLAGGED.
func jitterGlobal() float64 {
	return rand.Float64()
}

// stamp reads the wall clock. FLAGGED.
func stamp() time.Time {
	return time.Now()
}

// fresh constructs an unacknowledged RNG. FLAGGED once: the NewSource
// nested inside the New call folds into the New finding.
func fresh(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// jitter draws from an injected seeded RNG. CLEAN: methods on a
// *rand.Rand value are seed-driven.
func jitter(rng *rand.Rand) float64 {
	return rng.Float64()
}

// elapsed uses an injected clock. CLEAN.
func elapsed(now func() time.Time) time.Time {
	return now()
}

// seeded constructs an RNG whose seed provenance is acknowledged.
// SUPPRESSED.
func seeded(seed int64) *rand.Rand {
	//rdl:allow detrand seed comes from the caller's options, not from entropy
	return rand.New(rand.NewSource(seed))
}
