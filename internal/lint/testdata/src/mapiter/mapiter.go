// Package mapiter exercises the mapiter analyzer: order-sensitive map
// ranges are flagged, collect-then-sort and pure reductions are clean,
// and an acknowledged set-consumption loop is suppressed.
package mapiter

import "sort"

// collect appends values in visit order and never sorts. FLAGGED
// (accumulation without a subsequent canonical sort).
func collect(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// firstError returns a loop-dependent value. FLAGGED (emission: which
// entry returns first is schedule-dependent).
func firstError(m map[string]error) error {
	for _, err := range m {
		if err != nil {
			return err
		}
	}
	return nil
}

// render concatenates onto an outer string in visit order. FLAGGED
// (emission: no later sort can repair concatenation order).
func render(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

// keys sorts after collecting — the repo's canonical idiom. CLEAN.
func keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// total is an order-insensitive reduction. CLEAN.
func total(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// invert fills another map keyed by the loop value. CLEAN.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// setMembers accumulates keys the caller only ever membership-tests.
// SUPPRESSED.
func setMembers(m map[int]bool) []int {
	var out []int
	//rdl:allow mapiter consumed as a set by the caller: membership only, order never observed
	for k := range m {
		out = append(out, k)
	}
	return out
}
