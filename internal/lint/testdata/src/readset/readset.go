// Package readset exercises the speculative read-set pairing rule: inside
// the search-path scope (any function taking a *searchScratch), every read
// of the shared congestion state must be preceded — in the same body, with
// a textually identical index expression — by the record call that makes
// the read visible to speculative validation: readNode for nodeUse and
// seqs, readLink for linkUse, readTile for passages.
package readset

type NodeID int32

type tileKey struct{ layer, tri int }

type searchScratch struct {
	nodes []NodeID
	links []int
	tiles []tileKey
}

func (s *searchScratch) readNode(id NodeID) { s.nodes = append(s.nodes, id) }
func (s *searchScratch) readLink(id int)    { s.links = append(s.links, id) }
func (s *searchScratch) readTile(k tileKey) { s.tiles = append(s.tiles, k) }

type Router struct {
	nodeUse  []int
	linkUse  []int
	seqs     [][]int
	passages map[tileKey][]int
}

// recorded pairs every consult with its record: no findings.
func (r *Router) recorded(sc *searchScratch, id NodeID, l int, k tileKey) int {
	sc.readNode(id)
	n := r.nodeUse[id]
	n += len(r.seqs[id]) // seqs validates under the node stamp already recorded
	sc.readLink(l)
	n += r.linkUse[l]
	sc.readTile(k)
	n += len(r.passages[k])
	return n
}

func (r *Router) unrecordedNode(sc *searchScratch, id NodeID) int {
	return r.nodeUse[id] // REPORTED: no readNode(id) anywhere
}

func (r *Router) recordAfter(sc *searchScratch, id NodeID) int {
	n := r.nodeUse[id] // REPORTED: the record must precede the read
	sc.readNode(id)
	return n
}

func (r *Router) wrongIndex(sc *searchScratch, a, b NodeID) int {
	sc.readNode(a)
	return r.nodeUse[b] // REPORTED: recorded a, read b
}

func (r *Router) wrongRecord(sc *searchScratch, id NodeID) int {
	sc.readLink(42)
	return len(r.seqs[id]) // REPORTED: seqs needs readNode, not readLink
}

func (r *Router) unrecordedTile(sc *searchScratch, k tileKey) int {
	return len(r.passages[k]) // REPORTED
}

// commit has no scratch parameter: it runs under the serializing lock,
// outside the speculative scope, and may read freely.
func (r *Router) commit(id NodeID) {
	r.nodeUse[id]++
}

// writeOnly performs a pure write, which is not a read.
func (r *Router) writeOnly(sc *searchScratch, id NodeID) {
	r.nodeUse[id] = 0
}

// bump reads the old value through a compound assignment.
func (r *Router) bump(sc *searchScratch, id NodeID) {
	r.nodeUse[id] += 1 // REPORTED: compound assignment reads before it writes
}

func (r *Router) audited(sc *searchScratch, id NodeID) int {
	//rdl:allow readset the node was pinned by the caller before the search started; its usage cannot change mid-pass
	return r.nodeUse[id] // SUPPRESSED
}
