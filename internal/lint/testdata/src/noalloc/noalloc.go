// Package noalloc exercises the noalloc analyzer: allocating constructs
// inside //rdl:noalloc functions are flagged, the reuse idioms and
// unannotated functions are clean, and a budgeted setup allocation is
// suppressed.
package noalloc

import "fmt"

type sink interface{ accept(any) }

type buf struct {
	items []int
}

// grow violates the contract several ways. FLAGGED: make, a non-reuse
// append, a closure, string concatenation, and boxing into fmt.Sprint.
//
//rdl:noalloc
func grow(b *buf, n int) []int {
	fresh := make([]int, n)
	other := append(fresh, b.items...)
	f := func() int { return n }
	_ = f
	msg := "n=" + fmt.Sprint(n)
	_ = msg
	return other
}

// ship boxes its argument into an interface parameter. FLAGGED.
//
//rdl:noalloc
func ship(s sink, v int) {
	s.accept(v)
}

// box boxes its return value. FLAGGED.
//
//rdl:noalloc
func box(v int) any {
	return v
}

// raw copies the string into a fresh byte slice. FLAGGED.
//
//rdl:noalloc
func raw(s string) []byte {
	return []byte(s)
}

// hot follows the reuse idioms. CLEAN.
//
//rdl:noalloc
func hot(b *buf, v int) {
	b.items = append(b.items, v)
	b.items = append(b.items[:0], v)
}

// cold carries no annotation: allocations are fine here. CLEAN.
func cold(n int) []int {
	return make([]int, n)
}

// seed's one-time setup allocation is acknowledged. SUPPRESSED.
//
//rdl:noalloc
func seed(n int) *buf {
	//rdl:allow noalloc one-time setup allocation, measured and budgeted
	return &buf{items: make([]int, 0, n)}
}
