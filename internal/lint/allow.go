package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression comment:
//
//	//rdl:allow <analyzer> <reason>
//
// The comment suppresses findings of the named analyzer on its own line
// and on the line directly below it (so it can trail the flagged
// statement or sit on its own line above it).
const allowPrefix = "//rdl:allow"

// allowAnalyzer is the pseudo-analyzer name under which suppression
// hygiene findings (missing reason, stale allow) are reported. It is not
// itself suppressible.
const allowAnalyzer = "rdlallow"

// allowSite is one parsed //rdl:allow comment.
type allowSite struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// collectAllows parses every //rdl:allow comment in the files.
func collectAllows(fset *token.FileSet, files []*ast.File) []*allowSite {
	var sites []*allowSite
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if text != allowPrefix && !strings.HasPrefix(text, allowPrefix+" ") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				sites = append(sites, &allowSite{
					pos:      fset.Position(c.Pos()),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return sites
}

// applyAllows drops findings covered by a suppression and appends the
// hygiene findings: an allow without a reason and an allow that matched
// nothing are both errors, so every suppression in the tree carries a
// written justification and outlives only the code it covers.
func applyAllows(raw []Finding, allows []*allowSite, known map[string]bool) []Finding {
	var out []Finding
	for _, f := range raw {
		suppressed := false
		for _, a := range allows {
			if a.analyzer == f.Analyzer &&
				a.pos.Filename == f.Pos.Filename &&
				(a.pos.Line == f.Pos.Line || a.pos.Line == f.Pos.Line-1) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, a := range allows {
		if a.analyzer == "" || !known[a.analyzer] {
			// An allow for an analyzer outside this run (e.g. a fixture test
			// running a single analyzer) cannot be validated here; the full
			// driver run covers it.
			if a.analyzer == "" {
				out = append(out, Finding{
					Pos:      a.pos,
					Analyzer: allowAnalyzer,
					Message:  "//rdl:allow needs an analyzer name and a reason",
				})
			}
			continue
		}
		if a.reason == "" {
			out = append(out, Finding{
				Pos:      a.pos,
				Analyzer: allowAnalyzer,
				Message:  "//rdl:allow " + a.analyzer + " needs a written reason",
			})
		}
		if !a.used {
			out = append(out, Finding{
				Pos:      a.pos,
				Analyzer: allowAnalyzer,
				Message:  "stale //rdl:allow " + a.analyzer + ": no finding left to suppress; delete it",
			})
		}
	}
	return out
}
