// Package portfolio is the net-ordering subsystem of the router: pluggable
// ordering strategies over a per-net feature model, plus a deterministic
// racer that runs several strategies as independent full route attempts and
// keeps the canonically best result.
//
// Net ordering is the highest-leverage free variable of rip-up-and-reroute
// (the paper fixes one policy — RUDY initial order plus failure-count
// reordering — but *ML Optimal Ordering in Global Routing*, arxiv
// 2412.21035, shows alternatives routinely win on individual designs).
// Because the route/commit/ripUp cycle is allocation-free and the whole
// pipeline is byte-identical at any Parallelism, a full route attempt is
// cheap enough to be a search primitive: the racer fans K attempts over the
// shared worker budget and selects the winner by a canonical objective, so
// the chosen result does not depend on worker count or completion order.
//
// Every Strategy must be pure and deterministic: Order is a function of the
// Model alone (the anneal strategy draws from an RNG seeded by a package
// constant, so it too maps equal models to equal orders). The package is in
// rdllint's deterministic scope, which enforces this at the source level.
package portfolio

import (
	"context"
	"fmt"
	"sort"
)

// Model carries the per-net features an ordering strategy may consult. The
// global router fills it from the RUDY seed pass: every net is routed alone
// on the empty graph and a wire-density estimate is accumulated on the
// tiles its standalone guide crosses.
type Model struct {
	// Nets is the net count; every strategy returns a permutation of
	// [0, Nets).
	Nets int
	// Congested[i] counts the over-threshold RUDY tiles net i's standalone
	// seed path crosses (the paper's initial-ordering signal). Nil or short
	// slices read as zero.
	Congested []int
	// PinDist[i] is net i's half-perimeter pin-to-pin length in µm.
	PinDist []float64
	// Conflicts lists net pairs whose seed paths share congested tiles,
	// sorted by (A, B) with A < B. It is the pairwise interaction signal
	// the anneal and congestion strategies use.
	Conflicts []Conflict
	// Fail[i] is net i's failure count from earlier routing runs (the obs
	// counter trail); nil when no history is available, e.g. a fresh run.
	Fail []int
}

// Conflict is one pair of nets competing for congested tiles.
type Conflict struct {
	// A and B are net indices, A < B.
	A, B int
	// Shared counts the distinct congested tiles both seed paths cross.
	Shared int
}

// congestedOf returns the congested-tile count of net i, tolerating short
// or nil slices.
func (m *Model) congestedOf(i int) int {
	if i < len(m.Congested) {
		return m.Congested[i]
	}
	return 0
}

// pinDistOf returns the pin-to-pin distance of net i, tolerating short or
// nil slices.
func (m *Model) pinDistOf(i int) float64 {
	if i < len(m.PinDist) {
		return m.PinDist[i]
	}
	return 0
}

// failOf returns the historic failure count of net i, zero without history.
func (m *Model) failOf(i int) int {
	if i < len(m.Fail) {
		return m.Fail[i]
	}
	return 0
}

// Strategy is one net-ordering policy. Order must return a permutation of
// [0, m.Nets) and must be pure: equal models give equal orders, for any
// call count or interleaving. ctx is advisory — a strategy doing real work
// (anneal) stops early when ctx is cancelled and returns its best order so
// far, matching the pipeline's report-best-so-far semantics.
type Strategy interface {
	Name() string
	Order(ctx context.Context, m *Model) []int
}

// Names lists the built-in strategy names in canonical order.
func Names() []string { return []string{"rudy", "netlen", "congestion", "anneal"} }

// Known reports whether name is a built-in strategy.
func Known(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// New resolves a strategy by name. The empty name is an alias for "rudy"
// (the paper's policy). prof parameterizes the congestion scorer and is
// ignored by the other strategies.
func New(name string, prof Profile) (Strategy, error) {
	switch name {
	case "", "rudy":
		return RUDY{}, nil
	case "netlen":
		return NetLen{}, nil
	case "congestion":
		return Congestion{Profile: prof}, nil
	case "anneal":
		return Anneal{}, nil
	}
	return nil, fmt.Errorf("portfolio: unknown ordering strategy %q (have %v)", name, Names())
}

// NormalizeNames canonicalizes a portfolio list: names are validated,
// deduped and sorted into registration order (the Names order), so any
// submission order of the same strategy set yields the same list — the
// first step of the racer's submission-order independence. Empty or unknown
// names are errors: a portfolio entry, unlike Options.Ordering, has no
// legacy-alias meaning.
func NormalizeNames(names []string) ([]string, error) {
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if !Known(name) {
			return nil, fmt.Errorf("portfolio: unknown strategy %q in portfolio (have %v)", name, Names())
		}
		seen[name] = true
	}
	var out []string
	for _, name := range Names() {
		if seen[name] {
			out = append(out, name)
		}
	}
	return out, nil
}

// ValidOrder reports whether order is a permutation of [0, n).
func ValidOrder(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, ni := range order {
		if ni < 0 || ni >= n || seen[ni] {
			return false
		}
		seen[ni] = true
	}
	return true
}

// identity returns the identity permutation of size n.
func identity(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// RUDY is the paper's initial ordering (§III-A2), extracted verbatim from
// the global router: nets crossing more over-threshold RUDY tiles first,
// equal counts broken by shorter pin-to-pin distance, remaining ties by net
// ID. This is the legacy default — an empty Options.Ordering routes through
// this exact comparator.
type RUDY struct{}

// Name implements Strategy.
func (RUDY) Name() string { return "rudy" }

// Order implements Strategy.
func (RUDY) Order(_ context.Context, m *Model) []int {
	order := identity(m.Nets)
	sort.SliceStable(order, func(a, b int) bool {
		na, nb := order[a], order[b]
		if ca, cb := m.congestedOf(na), m.congestedOf(nb); ca != cb {
			return ca > cb
		}
		if da, db := m.pinDistOf(na), m.pinDistOf(nb); da != db {
			return da < db
		}
		return na < nb
	})
	return order
}

// NetLen orders by half-perimeter net length, shortest first: short nets
// have the fewest detour options, so routing them before long flexible nets
// tends to preserve their direct corridors. Ties break by net ID.
type NetLen struct{}

// Name implements Strategy.
func (NetLen) Name() string { return "netlen" }

// Order implements Strategy.
func (NetLen) Order(_ context.Context, m *Model) []int {
	order := identity(m.Nets)
	sort.SliceStable(order, func(a, b int) bool {
		na, nb := order[a], order[b]
		if da, db := m.pinDistOf(na), m.pinDistOf(nb); da != db {
			return da < db
		}
		return na < nb
	})
	return order
}

// Congestion scores every net with a weighted sum of the congestion and
// failure signals the pipeline records — congested-tile count, conflict
// degree, net length, historic failures — and routes higher scores first.
// The weights come from a Profile, loadable from a small JSON file, so a
// scorer tuned offline against observed obs counters plugs in without a
// code change.
type Congestion struct {
	Profile Profile
}

// Name implements Strategy.
func (Congestion) Name() string { return "congestion" }

// Order implements Strategy.
func (s Congestion) Order(_ context.Context, m *Model) []int {
	p := s.Profile.withDefaults()
	score := make([]float64, m.Nets)
	for i := 0; i < m.Nets; i++ {
		score[i] = p.CongestedWeight*float64(m.congestedOf(i)) +
			p.LengthWeight*m.pinDistOf(i) +
			p.FailWeight*float64(m.failOf(i))
	}
	for _, c := range m.Conflicts {
		w := p.ConflictWeight * float64(c.Shared)
		if c.A >= 0 && c.A < m.Nets {
			score[c.A] += w
		}
		if c.B >= 0 && c.B < m.Nets {
			score[c.B] += w
		}
	}
	order := identity(m.Nets)
	sort.SliceStable(order, func(a, b int) bool {
		na, nb := order[a], order[b]
		if score[na] != score[nb] {
			return score[na] > score[nb]
		}
		return na < nb
	})
	return order
}
