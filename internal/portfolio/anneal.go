package portfolio

import (
	"context"
	"math"
	"math/rand"
)

// annealSeed is the fixed default seed of the Anneal strategy. Ordering is
// part of a run's deterministic identity, so the seed is a package constant
// rather than entropy: equal models anneal to equal orders on every host.
const annealSeed int64 = 0x52444c4f52445231

// annealLenBias weighs the position-weighted net-length term against the
// conflict term in the annealing energy (both are normalized by the mean
// pin distance; see energy below).
const annealLenBias = 0.5

// Anneal perturbs the RUDY order with seeded simulated annealing — the
// NLRT RoutingDesigner move, applied to net ordering. The energy is a
// cheap routing surrogate over the Model:
//
//	E(order) = Σ_conflicts Shared · dist(later net)/meanDist
//	         + lenBias · Σ_nets pos(net)/n · dist(net)/meanDist
//
// The first term charges every congested-tile conflict to the net routed
// later (the later net is the one that detours, and a long net detours
// further); the second gently prefers short nets early, anchoring the walk
// when a design has no congested conflicts at all. Swap moves with a
// geometric cooling schedule; the best order seen wins.
type Anneal struct {
	// Seed overrides the package's fixed default seed; zero selects
	// annealSeed. Tests use distinct seeds to probe search variance.
	Seed int64
}

// Name implements Strategy.
func (Anneal) Name() string { return "anneal" }

// annealNeighbor is one conflict edge as seen from a single net.
type annealNeighbor struct {
	other  int
	shared float64
}

// Order implements Strategy. It stops early — returning the best order so
// far — when ctx is cancelled, matching the pipeline's report-best-so-far
// degradation.
func (s Anneal) Order(ctx context.Context, m *Model) []int {
	base := RUDY{}.Order(ctx, m)
	n := m.Nets
	if n < 3 {
		return base
	}

	// Mean pin distance normalizes both energy terms to O(1) per net/pair.
	meanDist := 0.0
	for i := 0; i < n; i++ {
		meanDist += m.pinDistOf(i)
	}
	meanDist /= float64(n)
	if meanDist <= 0 {
		meanDist = 1
	}
	norm := make([]float64, n)
	for i := 0; i < n; i++ {
		norm[i] = m.pinDistOf(i) / meanDist
	}

	adj := make([][]annealNeighbor, n)
	for _, c := range m.Conflicts {
		if c.A < 0 || c.B < 0 || c.A >= n || c.B >= n || c.A == c.B {
			continue
		}
		w := float64(c.Shared)
		adj[c.A] = append(adj[c.A], annealNeighbor{other: c.B, shared: w})
		adj[c.B] = append(adj[c.B], annealNeighbor{other: c.A, shared: w})
	}

	order := append([]int(nil), base...)
	pos := make([]int, n)
	for p, ni := range order {
		pos[ni] = p
	}

	// pairTerm charges a conflict to whichever net sits later in the order.
	pairTerm := func(u, v int, shared float64) float64 {
		if pos[u] > pos[v] {
			return shared * norm[u]
		}
		return shared * norm[v]
	}
	// lenTerm is net u's position-weighted length contribution.
	lenTerm := func(u int) float64 {
		return annealLenBias * float64(pos[u]) / float64(n) * norm[u]
	}
	energy := func() float64 {
		e := 0.0
		for _, c := range m.Conflicts {
			if c.A < 0 || c.B < 0 || c.A >= n || c.B >= n || c.A == c.B {
				continue
			}
			e += pairTerm(c.A, c.B, float64(c.Shared))
		}
		for u := 0; u < n; u++ {
			e += lenTerm(u)
		}
		return e
	}
	// swapDelta computes the energy change of swapping the nets at
	// positions i and j by re-evaluating only the terms touching them.
	swapDelta := func(u, v int) float64 {
		before := lenTerm(u) + lenTerm(v)
		for _, nb := range adj[u] {
			before += pairTerm(u, nb.other, nb.shared)
		}
		for _, nb := range adj[v] {
			if nb.other == u {
				continue // the (u,v) pair itself was counted from u's side
			}
			before += pairTerm(v, nb.other, nb.shared)
		}
		pos[u], pos[v] = pos[v], pos[u]
		after := lenTerm(u) + lenTerm(v)
		for _, nb := range adj[u] {
			after += pairTerm(u, nb.other, nb.shared)
		}
		for _, nb := range adj[v] {
			if nb.other == u {
				continue
			}
			after += pairTerm(v, nb.other, nb.shared)
		}
		pos[u], pos[v] = pos[v], pos[u]
		return after - before
	}

	seed := s.Seed
	if seed == 0 {
		seed = annealSeed
	}
	//rdl:allow detrand anneal RNG is seeded from Anneal.Seed, default the package constant annealSeed — equal models give equal orders on every host
	rng := rand.New(rand.NewSource(seed))

	iters := 1000 + 40*n
	if iters > 40000 {
		iters = 40000
	}
	const t0, tEnd = 1.0, 0.01
	cur := energy()
	best := cur
	bestOrder := append([]int(nil), order...)
	for it := 0; it < iters; it++ {
		if it%512 == 0 && ctx.Err() != nil {
			break
		}
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		u, v := order[i], order[j]
		d := swapDelta(u, v)
		if d > 0 {
			t := t0 * math.Pow(tEnd/t0, float64(it)/float64(iters))
			if rng.Float64() >= math.Exp(-d/t) {
				continue
			}
		}
		order[i], order[j] = v, u
		pos[u], pos[v] = pos[v], pos[u]
		cur += d
		if cur < best {
			best = cur
			copy(bestOrder, order)
		}
	}
	return bestOrder
}
