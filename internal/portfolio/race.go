package portfolio

import (
	"rdlroute/internal/pool"
)

// Outcome is one full route attempt's canonical score, as reported by the
// racer's attempt callback. Strategy is the strategy name; OK is false when
// the attempt errored (an errored attempt loses to any completed one, and
// ties among errored attempts resolve by name).
type Outcome struct {
	Strategy    string
	OK          bool
	Routability float64
	Wirelength  float64
	Vias        int
	Err         error
}

// Better reports whether a beats b under the canonical portfolio objective:
// completed beats errored, then higher routability, then lower wirelength,
// then fewer vias, then the lexically smaller strategy name. Both operands
// are deterministic attempt results, so the comparison — and therefore the
// winner — is a pure function of the strategy set, independent of worker
// count or completion order.
func Better(a, b Outcome) bool {
	if a.OK != b.OK {
		return a.OK
	}
	if a.Routability != b.Routability {
		return a.Routability > b.Routability
	}
	if a.Wirelength != b.Wirelength {
		return a.Wirelength < b.Wirelength
	}
	if a.Vias != b.Vias {
		return a.Vias < b.Vias
	}
	return a.Strategy < b.Strategy
}

// Race runs one full route attempt per strategy, fanned over the shared
// deterministic pool, and returns the canonical winner's index plus every
// outcome (indexed like strategies). parallelism is the caller's total
// worker budget: the racer runs min(K, budget) attempts concurrently and
// hands each attempt an inner budget of max(1, budget/K) workers for its
// own pipeline stages. Since every pipeline stage is byte-identical at any
// worker count, the split only shapes wall-clock — outcomes, and therefore
// the winner, do not depend on it.
//
// attempt receives the slot index (for per-attempt scratch or recorders),
// the strategy, and the inner worker budget, and must return the attempt's
// canonical score. It is called exactly once per strategy.
func Race(strategies []Strategy, parallelism int, attempt func(slot int, s Strategy, workers int) Outcome) (winner int, outs []Outcome) {
	k := len(strategies)
	if k == 0 {
		return -1, nil
	}
	budget := pool.Default(parallelism)
	inner := budget / k
	if inner < 1 {
		inner = 1
	}
	units := make([]func() Outcome, k)
	for i := range strategies {
		i, s := i, strategies[i]
		units[i] = func() Outcome {
			out := attempt(i, s, inner)
			out.Strategy = s.Name()
			return out
		}
	}
	racers := budget
	if racers > k {
		racers = k
	}
	outs = pool.Run(units, racers)
	winner = 0
	for i := 1; i < k; i++ {
		if Better(outs[i], outs[winner]) {
			winner = i
		}
	}
	return winner, outs
}
