package portfolio

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testModel builds a small model with a congestion cluster: nets 3 and 5
// contest tiles, net 1 is long and clean, net 0 short and clean.
func testModel() *Model {
	return &Model{
		Nets:      6,
		Congested: []int{0, 0, 1, 4, 1, 4},
		PinDist:   []float64{100, 4000, 900, 1200, 900, 800},
		Conflicts: []Conflict{{A: 3, B: 5, Shared: 3}, {A: 2, B: 4, Shared: 1}},
	}
}

func TestNamesKnownNew(t *testing.T) {
	want := []string{"rudy", "netlen", "congestion", "anneal"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, n := range want {
		if !Known(n) {
			t.Errorf("Known(%q) = false", n)
		}
		s, err := New(n, Profile{})
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if s.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, s.Name())
		}
	}
	if Known("") || Known("zigzag") {
		t.Error("Known accepted a non-strategy name")
	}
	s, err := New("", Profile{})
	if err != nil || s.Name() != "rudy" {
		t.Fatalf(`New("") = %v, %v; want rudy alias`, s, err)
	}
	if _, err := New("zigzag", Profile{}); err == nil {
		t.Fatal("New(zigzag) succeeded; want error")
	}
}

func TestValidOrder(t *testing.T) {
	if !ValidOrder([]int{2, 0, 1}, 3) {
		t.Error("valid permutation rejected")
	}
	for _, bad := range [][]int{{0, 1}, {0, 1, 1}, {0, 1, 3}, {-1, 0, 1}} {
		if ValidOrder(bad, 3) {
			t.Errorf("ValidOrder(%v, 3) = true", bad)
		}
	}
}

func TestStrategiesReturnPermutations(t *testing.T) {
	ctx := context.Background()
	models := []*Model{
		testModel(),
		{Nets: 0},
		{Nets: 1},
		{Nets: 4}, // all-zero features: must fall back to id order cleanly
	}
	for _, name := range Names() {
		s, err := New(name, Profile{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range models {
			order := s.Order(ctx, m)
			if !ValidOrder(order, m.Nets) {
				t.Errorf("%s.Order on %d nets: invalid order %v", name, m.Nets, order)
			}
		}
	}
}

func TestStrategiesAreDeterministic(t *testing.T) {
	ctx := context.Background()
	m := testModel()
	for _, name := range Names() {
		s, _ := New(name, Profile{})
		a := s.Order(ctx, m)
		b := s.Order(ctx, m)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s.Order is not deterministic: %v vs %v", name, a, b)
		}
	}
}

func TestRUDYOrder(t *testing.T) {
	// Congested desc, then pin distance asc, then id asc. Nets 3 and 5 tie
	// at 4 congested tiles; 5 is shorter. Nets 2 and 4 tie at 1 congested
	// tile AND 900 µm: id breaks the tie.
	got := RUDY{}.Order(context.Background(), testModel())
	want := []int{5, 3, 2, 4, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RUDY order = %v, want %v", got, want)
	}
}

func TestNetLenOrder(t *testing.T) {
	got := NetLen{}.Order(context.Background(), testModel())
	want := []int{0, 5, 2, 4, 3, 1} // 100, 800, 900(id2), 900(id4), 1200, 4000
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NetLen order = %v, want %v", got, want)
	}
}

func TestCongestionOrder(t *testing.T) {
	m := testModel()
	m.Fail = []int{0, 0, 0, 0, 0, 10} // history pushes net 5 to the front
	got := Congestion{}.Order(context.Background(), m)
	if got[0] != 5 {
		t.Fatalf("Congestion order = %v, want net 5 first (10 historic failures)", got)
	}
	// With FailWeight crushed the conflict/congestion cluster should lead
	// and the long clean net 1 trail.
	got = Congestion{Profile: Profile{FailWeight: 1e-9}}.Order(context.Background(), m)
	if got[len(got)-1] != 1 {
		t.Fatalf("Congestion order = %v, want long clean net 1 last", got)
	}
}

func TestAnnealRespectsConflicts(t *testing.T) {
	// Two conflicting nets with very different lengths: the energy term
	// Shared·dist(later) wants the long net routed first so the short one
	// pays the detour. Build a model where RUDY puts the long net later
	// (both uncongested, so RUDY is length-ascending) and check anneal
	// flips the pair.
	m := &Model{
		Nets:      8,
		PinDist:   []float64{500, 500, 500, 500, 500, 500, 300, 3000},
		Conflicts: []Conflict{{A: 6, B: 7, Shared: 8}},
	}
	order := Anneal{}.Order(context.Background(), m)
	if !ValidOrder(order, m.Nets) {
		t.Fatalf("anneal returned invalid order %v", order)
	}
	pos := make([]int, m.Nets)
	for p, ni := range order {
		pos[ni] = p
	}
	if pos[7] > pos[6] {
		t.Errorf("anneal order %v keeps long conflicting net 7 after net 6; energy not minimized", order)
	}
}

func TestAnnealCancelledContextStillValid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := testModel()
	order := Anneal{}.Order(ctx, m)
	if !ValidOrder(order, m.Nets) {
		t.Fatalf("anneal under cancelled ctx returned invalid order %v", order)
	}
	// With zero iterations executed the result is exactly the RUDY base.
	if want := (RUDY{}).Order(context.Background(), m); !reflect.DeepEqual(order, want) {
		t.Errorf("cancelled anneal = %v, want RUDY base %v", order, want)
	}
}

func TestProfileParse(t *testing.T) {
	p, err := ParseProfile([]byte(`{"congested_weight": 3, "fail_weight": 0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.CongestedWeight != 3 || p.FailWeight != 0.5 {
		t.Fatalf("parsed profile = %+v", p)
	}
	d := p.withDefaults()
	if d.ConflictWeight != 0.25 || d.LengthWeight != -0.002 {
		t.Fatalf("withDefaults did not fill unset weights: %+v", d)
	}
	if _, err := ParseProfile([]byte(`{"congsted_weight": 3}`)); err == nil {
		t.Fatal("misspelled field accepted")
	}
	if _, err := ParseProfile([]byte(`{"fail_weight": 1e999}`)); err == nil {
		t.Fatal("non-finite weight accepted")
	}
}

func TestLoadProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prof.json")
	if err := os.WriteFile(path, []byte(`{"conflict_weight": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.ConflictWeight != 2 {
		t.Fatalf("loaded profile = %+v", p)
	}
	if _, err := LoadProfile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBetterCanonicalObjective(t *testing.T) {
	ok := func(r, w float64, v int, name string) Outcome {
		return Outcome{Strategy: name, OK: true, Routability: r, Wirelength: w, Vias: v}
	}
	cases := []struct {
		a, b Outcome
		want bool
	}{
		{ok(1, 10, 1, "a"), Outcome{Strategy: "b", Err: errors.New("x")}, true},
		{ok(0.9, 10, 1, "a"), ok(0.8, 5, 0, "b"), true},   // routability first
		{ok(0.9, 5, 9, "a"), ok(0.9, 10, 0, "b"), true},   // then wirelength
		{ok(0.9, 10, 1, "a"), ok(0.9, 10, 2, "b"), true},  // then vias
		{ok(0.9, 10, 1, "a"), ok(0.9, 10, 1, "b"), true},  // then name
		{ok(0.9, 10, 1, "b"), ok(0.9, 10, 1, "a"), false}, // name, other side
	}
	for i, c := range cases {
		if got := Better(c.a, c.b); got != c.want {
			t.Errorf("case %d: Better = %v, want %v", i, got, c.want)
		}
	}
}

func TestRaceWinnerIndependentOfParallelism(t *testing.T) {
	strategies := []Strategy{NetLen{}, RUDY{}, Anneal{}, Congestion{}}
	score := map[string]Outcome{
		"rudy":       {OK: true, Routability: 0.95, Wirelength: 100},
		"netlen":     {OK: true, Routability: 0.95, Wirelength: 90},
		"congestion": {OK: true, Routability: 0.90, Wirelength: 10},
		"anneal":     {OK: false, Err: errors.New("boom")},
	}
	var got []struct {
		winner int
		outs   []Outcome
	}
	for _, par := range []int{1, 2, 4, 8} {
		calls := make([]int, len(strategies))
		winner, outs := Race(strategies, par, func(slot int, s Strategy, workers int) Outcome {
			calls[slot]++
			if workers < 1 {
				t.Errorf("attempt got %d workers", workers)
			}
			return score[s.Name()]
		})
		for i, c := range calls {
			if c != 1 {
				t.Fatalf("parallelism %d: strategy %d attempted %d times", par, i, c)
			}
		}
		got = append(got, struct {
			winner int
			outs   []Outcome
		}{winner, outs})
	}
	for i := 1; i < len(got); i++ {
		if got[i].winner != got[0].winner || !reflect.DeepEqual(got[i].outs, got[0].outs) {
			t.Fatalf("race result differs across parallelism: %+v vs %+v", got[i], got[0])
		}
	}
	if name := got[0].outs[got[0].winner].Strategy; name != "netlen" {
		t.Fatalf("winner = %q, want netlen (same routability, less wire)", name)
	}
}

func TestRaceEmpty(t *testing.T) {
	winner, outs := Race(nil, 4, func(int, Strategy, int) Outcome { return Outcome{} })
	if winner != -1 || outs != nil {
		t.Fatalf("Race(nil) = %d, %v", winner, outs)
	}
}

func TestRaceWorkerSplit(t *testing.T) {
	// Budget 8 over 3 attempts: each inner attempt gets floor(8/3) = 2.
	inner := make([]int, 3)
	Race([]Strategy{RUDY{}, NetLen{}, Congestion{}}, 8, func(slot int, _ Strategy, workers int) Outcome {
		inner[slot] = workers
		return Outcome{OK: true}
	})
	for _, w := range inner {
		if w != 2 {
			t.Fatalf("inner worker split = %v, want all 2", inner)
		}
	}
}
