package portfolio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Profile parameterizes the Congestion strategy's scorer. The zero value
// means "all defaults" (see withDefaults); a weight explicitly set to a
// non-zero value wins. Profiles are part of a request's cache identity, so
// the struct is flat, canonically ordered and JSON-stable.
//
// A profile is typically trained offline: route a design corpus, read the
// per-net congestion/failure counters from the obs trail, and fit weights
// that rank historically troublesome nets first.
type Profile struct {
	// CongestedWeight scales the over-threshold RUDY tile count of a net's
	// seed path. Default 1.
	CongestedWeight float64 `json:"congested_weight,omitempty"`
	// ConflictWeight scales a net's shared-congested-tile degree (how many
	// congested tiles it contests with other nets). Default 0.25.
	ConflictWeight float64 `json:"conflict_weight,omitempty"`
	// LengthWeight scales the pin-to-pin distance in µm; negative prefers
	// short nets first among equally congested ones. Default -0.002.
	LengthWeight float64 `json:"length_weight,omitempty"`
	// FailWeight scales the historic per-net failure count. Default 2.
	FailWeight float64 `json:"fail_weight,omitempty"`
}

// DefaultProfile returns the built-in weights: congested tiles dominate,
// conflict degree breaks clusters apart, a slight preference for shorter
// nets, failures from history pushed to the front hard.
func DefaultProfile() Profile {
	return Profile{CongestedWeight: 1, ConflictWeight: 0.25, LengthWeight: -0.002, FailWeight: 2}
}

// withDefaults fills zero weights with the built-in defaults. A profile
// that genuinely wants a zero weight can use a tiny epsilon; in practice a
// zeroed field means "unset" in the JSON wire form.
func (p Profile) withDefaults() Profile {
	d := DefaultProfile()
	if p.CongestedWeight == 0 {
		p.CongestedWeight = d.CongestedWeight
	}
	if p.ConflictWeight == 0 {
		p.ConflictWeight = d.ConflictWeight
	}
	if p.LengthWeight == 0 {
		p.LengthWeight = d.LengthWeight
	}
	if p.FailWeight == 0 {
		p.FailWeight = d.FailWeight
	}
	return p
}

// Validate rejects non-finite weights, which would poison both the scorer
// and the canonical JSON encoding cache keys are built from.
func (p Profile) Validate() error {
	for _, w := range []struct {
		name string
		v    float64
	}{
		{"congested_weight", p.CongestedWeight},
		{"conflict_weight", p.ConflictWeight},
		{"length_weight", p.LengthWeight},
		{"fail_weight", p.FailWeight},
	} {
		if math.IsNaN(w.v) || math.IsInf(w.v, 0) {
			return fmt.Errorf("portfolio: profile %s is not finite", w.name)
		}
	}
	return nil
}

// ParseProfile decodes a profile from JSON. Unknown fields are rejected so
// a misspelled weight cannot silently fall back to its default.
func ParseProfile(b []byte) (Profile, error) {
	var p Profile
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("portfolio: parse profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// LoadProfile reads a profile JSON file.
func LoadProfile(path string) (Profile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, fmt.Errorf("portfolio: load profile: %w", err)
	}
	return ParseProfile(b)
}
