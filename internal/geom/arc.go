package geom

import "math"

// Arc is a circular arc on circle C from angle Start sweeping by Sweep
// radians (positive = counterclockwise).
type Arc struct {
	C     Circle
	Start float64
	Sweep float64
}

// Length returns the arc length |Sweep| · R.
func (a Arc) Length() float64 { return math.Abs(a.Sweep) * a.C.R }

// PointAt returns the point at parameter t ∈ [0, 1] along the arc.
func (a Arc) PointAt(t float64) Point {
	theta := a.Start + t*a.Sweep
	return a.C.C.Add(Pt(math.Cos(theta), math.Sin(theta)).Scale(a.C.R))
}

// Chord returns the straight-line distance between the arc endpoints.
func (a Arc) Chord() float64 {
	return a.PointAt(0).Dist(a.PointAt(1))
}

// OptimalWrapLength returns the length of the shortest path from a to b
// that stays outside circle c: if the straight segment clears the circle it
// is |ab|; otherwise it is the taut-string path tangent–arc–tangent of the
// paper's Lemma 1 (segments off the boundary, arcs on it). It reports false
// when either endpoint lies strictly inside the circle (no such path
// exists).
func OptimalWrapLength(a, b Point, c Circle) (float64, bool) {
	da := a.Dist(c.C)
	db := b.Dist(c.C)
	if da < c.R-Eps || db < c.R-Eps {
		return 0, false
	}
	if !c.IntersectSegment(Seg(a, b)) {
		return a.Dist(b), true
	}
	// Tangent lengths from each endpoint.
	ta := math.Sqrt(math.Max(0, da*da-c.R*c.R))
	tb := math.Sqrt(math.Max(0, db*db-c.R*c.R))
	// Central angle between a and b as seen from the circle center.
	gamma := AngleAt(c.C, a, b)
	// Angles consumed by the two tangent constructions.
	alpha := math.Acos(Clamp(c.R/math.Max(da, c.R), -1, 1))
	beta := math.Acos(Clamp(c.R/math.Max(db, c.R), -1, 1))
	phi := gamma - alpha - beta
	if phi < 0 {
		phi = 0
	}
	return ta + tb + c.R*phi, true
}

// WrapApexLength returns the length of the two-tangent chord approximation
// the fit-routing construction produces for a single constraint circle: the
// path a → I → b where I is the intersection of the tangents from a and b
// on the side away from ref. It reports false when the construction fails
// (endpoint inside the circle or degenerate tangents).
//
// The approximation replaces the optimal arc by its tangent chords, so it
// is always ≥ OptimalWrapLength and coincides with it as the wrap angle
// approaches zero — the "good approximation of the optimal solution"
// observation behind the paper's Theorem 2.
func WrapApexLength(a, b Point, c Circle, ref Point) (float64, bool) {
	i, ok := c.TangentIntersection(a, b, ref)
	if !ok {
		return 0, false
	}
	return a.Dist(i) + i.Dist(b), true
}
