package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCircleContains(t *testing.T) {
	c := Circ(Pt(0, 0), 5)
	if !c.Contains(Pt(3, 4)) {
		t.Error("boundary point should be contained")
	}
	if !c.Contains(Pt(1, 1)) {
		t.Error("interior point should be contained")
	}
	if c.Contains(Pt(4, 4)) {
		t.Error("exterior point should not be contained")
	}
	if c.ContainsStrict(Pt(3, 4)) {
		t.Error("boundary point is not strictly inside")
	}
	if !c.ContainsStrict(Pt(0, 0)) {
		t.Error("center is strictly inside")
	}
}

func TestTangentPoints(t *testing.T) {
	c := Circ(Pt(0, 0), 1)
	p := Pt(2, 0)
	t1, t2, ok := c.TangentPoints(p)
	if !ok {
		t.Fatal("external point must have tangents")
	}
	// Tangent points lie on the circle.
	for _, tp := range []Point{t1, t2} {
		if !ApproxEq(tp.Dist(c.C), 1) {
			t.Errorf("tangent point %v not on circle", tp)
		}
		// Radius is perpendicular to tangent direction.
		radius := tp.Sub(c.C)
		tangent := tp.Sub(p)
		if !ApproxZero(radius.Dot(tangent) / (1 + tangent.Norm())) {
			t.Errorf("radius not perpendicular to tangent at %v (dot=%v)", tp, radius.Dot(tangent))
		}
	}
	// Symmetric about the x-axis for this configuration.
	if !ApproxEq(t1.Y, -t2.Y) || !ApproxEq(t1.X, t2.X) {
		t.Errorf("tangent points not symmetric: %v %v", t1, t2)
	}
	// Interior point has no tangents.
	if _, _, ok := c.TangentPoints(Pt(0.5, 0)); ok {
		t.Error("interior point must have no tangents")
	}
	// Point on the circle tangents to itself.
	a, b, ok := c.TangentPoints(Pt(1, 0))
	if !ok || !a.ApproxEq(Pt(1, 0)) || !b.ApproxEq(Pt(1, 0)) {
		t.Error("on-circle point should tangent at itself")
	}
}

func TestTangentIntersection(t *testing.T) {
	// Constraint circle sits between source and target; the detour must
	// bulge away from ref (below the x-axis → detour above).
	c := Circ(Pt(0, 0), 1)
	ps, pt := Pt(-3, 0), Pt(3, 0)
	ref := Pt(0, -5)
	i, ok := c.TangentIntersection(ps, pt, ref)
	if !ok {
		t.Fatal("tangent intersection must exist")
	}
	if i.Y <= 0 {
		t.Errorf("detour apex %v should be above the axis (away from ref)", i)
	}
	// The two-segment detour clears the circle.
	for _, s := range []Segment{Seg(ps, i), Seg(i, pt)} {
		if d := s.DistToPoint(c.C); d < c.R-1e-6 {
			t.Errorf("detour segment %v passes through circle (d=%v)", s, d)
		}
	}
	// Symmetric configuration: apex on the y-axis.
	if !ApproxZero(i.X) {
		t.Errorf("apex should be on the symmetry axis, got %v", i)
	}
	// Endpoint inside the circle fails.
	if _, ok := c.TangentIntersection(Pt(0.1, 0), pt, ref); ok {
		t.Error("interior source must fail")
	}
}

func TestIntersectSegment(t *testing.T) {
	c := Circ(Pt(0, 0), 2)
	if !c.IntersectSegment(Seg(Pt(-5, 0), Pt(5, 0))) {
		t.Error("chord through center should intersect")
	}
	if !c.IntersectSegment(Seg(Pt(-5, 1), Pt(5, 1))) {
		t.Error("off-center chord should intersect")
	}
	if c.IntersectSegment(Seg(Pt(-5, 3), Pt(5, 3))) {
		t.Error("segment outside should not intersect")
	}
	// Tangent segment (distance exactly R) does not count as passing within.
	if c.IntersectSegment(Seg(Pt(-5, 2), Pt(5, 2))) {
		t.Error("tangent segment should not intersect strictly")
	}
}

// Property: for random external points, tangent length matches the
// Pythagorean relation sqrt(d² − r²).
func TestTangentLengthProperty(t *testing.T) {
	f := func(px, py, r float64) bool {
		rad := math.Abs(norm(r))
		if rad < 1e-3 {
			rad = 1e-3
		}
		p := Pt(norm(px), norm(py))
		c := Circ(Pt(0, 0), rad)
		d := p.Dist(c.C)
		if d <= rad*1.001 {
			return true // skip near-boundary and interior points
		}
		t1, _, ok := c.TangentPoints(p)
		if !ok {
			return false
		}
		want := math.Sqrt(d*d - rad*rad)
		return math.Abs(p.Dist(t1)-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
