package geom

// Orientation classifies the turn formed by an ordered point triple.
type Orientation int

// The three possible orientations of an ordered point triple.
const (
	Clockwise        Orientation = -1
	Collinear        Orientation = 0
	CounterClockwise Orientation = 1
)

// String returns a human-readable name for the orientation.
func (o Orientation) String() string {
	switch o {
	case Clockwise:
		return "clockwise"
	case CounterClockwise:
		return "counterclockwise"
	default:
		return "collinear"
	}
}

// Orient returns the orientation of the ordered triple (a, b, c): the sign of
// the doubled signed area of triangle abc. A relative tolerance keyed to the
// coordinate magnitudes guards against float64 noise on nearly collinear
// triples, which matters because the Delaunay mesh feeds nearly collinear
// boundary points through this predicate constantly.
func Orient(a, b, c Point) Orientation {
	det := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	// Scale the tolerance with the magnitude of the inputs so the predicate
	// behaves sensibly for both µm-scale and mm-scale coordinates.
	mag := abs(b.X-a.X) + abs(b.Y-a.Y) + abs(c.X-a.X) + abs(c.Y-a.Y)
	tol := 1e-12 * mag * mag
	if tol < 1e-12 {
		tol = 1e-12
	}
	switch {
	case det > tol:
		return CounterClockwise
	case det < -tol:
		return Clockwise
	default:
		return Collinear
	}
}

// SignedArea2 returns twice the signed area of triangle abc: positive when
// the triple is counterclockwise.
func SignedArea2(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// InCircle reports whether point d lies strictly inside the circumcircle of
// the counterclockwise triangle (a, b, c). This is the Delaunay empty-circle
// predicate, computed via the standard lifted 3x3 determinant.
//
// The caller must pass (a, b, c) in counterclockwise order; passing a
// clockwise triangle inverts the result.
func InCircle(a, b, c, d Point) bool {
	ax, ay := a.X-d.X, a.Y-d.Y
	bx, by := b.X-d.X, b.Y-d.Y
	cx, cy := c.X-d.X, c.Y-d.Y
	a2 := ax*ax + ay*ay
	b2 := bx*bx + by*by
	c2 := cx*cx + cy*cy
	det := ax*(by*c2-b2*cy) - ay*(bx*c2-b2*cx) + a2*(bx*cy-by*cx)
	// A relative tolerance keeps cocircular point sets (regular pad grids
	// produce many) from flip-flopping between the two legal triangulations.
	mag := a2 + b2 + c2
	tol := 1e-10 * mag
	return det > tol
}

// Circumcenter returns the center of the circle through a, b and c, and
// reports false when the points are (nearly) collinear and no finite
// circumcenter exists.
func Circumcenter(a, b, c Point) (Point, bool) {
	d := 2 * ((a.X)*(b.Y-c.Y) + (b.X)*(c.Y-a.Y) + (c.X)*(a.Y-b.Y))
	if ApproxZero(d) {
		return Point{}, false
	}
	a2, b2, c2 := a.Norm2(), b.Norm2(), c.Norm2()
	ux := (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
	uy := (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
	return Point{ux, uy}, true
}

// PointInTriangle reports whether p lies inside or on the boundary of
// triangle (a, b, c). The triangle may be given in either winding order.
func PointInTriangle(p, a, b, c Point) bool {
	d1 := SignedArea2(p, a, b)
	d2 := SignedArea2(p, b, c)
	d3 := SignedArea2(p, c, a)
	hasNeg := d1 < -Eps || d2 < -Eps || d3 < -Eps
	hasPos := d1 > Eps || d2 > Eps || d3 > Eps
	return !(hasNeg && hasPos)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
