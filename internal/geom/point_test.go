package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(1, -2)
	if got := p.Add(q); got != Pt(4, 2) {
		t.Errorf("Add = %v, want (4,2)", got)
	}
	if got := p.Sub(q); got != Pt(2, 6) {
		t.Errorf("Sub = %v, want (2,6)", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v, want -5", got)
	}
	if got := p.Cross(q); got != -6-4 {
		t.Errorf("Cross = %v, want -10", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := p.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
}

func TestPointDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(1, 1).Dist2(Pt(4, 5)); d != 25 {
		t.Errorf("Dist2 = %v, want 25", d)
	}
}

func TestUnitVector(t *testing.T) {
	u := Pt(3, 4).Unit()
	if !ApproxEq(u.Norm(), 1) {
		t.Errorf("Unit norm = %v, want 1", u.Norm())
	}
	z := Pt(0, 0).Unit()
	if z != Pt(0, 0) {
		t.Errorf("Unit of zero = %v, want zero", z)
	}
}

func TestPerpAndRotate(t *testing.T) {
	p := Pt(1, 0)
	if got := p.Perp(); !got.ApproxEq(Pt(0, 1)) {
		t.Errorf("Perp = %v, want (0,1)", got)
	}
	r := p.Rotate(math.Pi / 2)
	if !r.ApproxEq(Pt(0, 1)) {
		t.Errorf("Rotate(π/2) = %v, want (0,1)", r)
	}
	r = p.Rotate(math.Pi)
	if !r.ApproxEq(Pt(-1, 0)) {
		t.Errorf("Rotate(π) = %v, want (-1,0)", r)
	}
}

func TestLerpAndMid(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0.5); !got.ApproxEq(Pt(5, 10)) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
	if got := a.Lerp(b, 0); !got.ApproxEq(a) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !got.ApproxEq(b) {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := Mid(a, b); !got.ApproxEq(Pt(5, 10)) {
		t.Errorf("Mid = %v", got)
	}
}

func TestCentroid(t *testing.T) {
	c := Centroid(Pt(0, 0), Pt(3, 0), Pt(0, 3))
	if !c.ApproxEq(Pt(1, 1)) {
		t.Errorf("Centroid = %v, want (1,1)", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("Centroid() of no points did not panic")
		}
	}()
	Centroid()
}

func TestRectBasics(t *testing.T) {
	r := R(10, 20, 0, 5) // corners given out of order
	if r.Min != Pt(0, 5) || r.Max != Pt(10, 20) {
		t.Fatalf("R normalization wrong: %+v", r)
	}
	if r.W() != 10 || r.H() != 15 {
		t.Errorf("W/H = %v/%v", r.W(), r.H())
	}
	if r.Area() != 150 {
		t.Errorf("Area = %v", r.Area())
	}
	if !r.Center().ApproxEq(Pt(5, 12.5)) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Pt(0, 5)) || !r.Contains(Pt(10, 20)) || !r.Contains(Pt(5, 10)) {
		t.Error("Contains should include boundary and interior")
	}
	if r.Contains(Pt(-1, 10)) || r.Contains(Pt(5, 21)) {
		t.Error("Contains should exclude exterior")
	}
}

func TestRectIntersectsUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	c := R(11, 11, 20, 20)
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
	// Touching boundary counts.
	d := R(10, 0, 20, 10)
	if !a.Intersects(d) {
		t.Error("touching rects should intersect")
	}
	u := a.Union(c)
	if u.Min != Pt(0, 0) || u.Max != Pt(20, 20) {
		t.Errorf("Union = %+v", u)
	}
	if !a.ContainsRect(R(1, 1, 9, 9)) {
		t.Error("ContainsRect failed for nested rect")
	}
	if a.ContainsRect(b) {
		t.Error("ContainsRect must reject partially overlapping rect")
	}
}

func TestRectExpand(t *testing.T) {
	r := R(0, 0, 10, 10).Expand(2)
	if r.Min != Pt(-2, -2) || r.Max != Pt(12, 12) {
		t.Errorf("Expand = %+v", r)
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{Pt(3, 1), Pt(-2, 7), Pt(0, 0)}
	r := BoundingRect(pts)
	if r.Min != Pt(-2, 0) || r.Max != Pt(3, 7) {
		t.Errorf("BoundingRect = %+v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("BoundingRect(nil) did not panic")
		}
	}()
	BoundingRect(nil)
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp wrong")
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestDistProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(norm(ax), norm(ay)), Pt(norm(bx), norm(by)), Pt(norm(cx), norm(cy))
		if !ApproxEq(a.Dist(b), b.Dist(a)) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rotation preserves norm.
func TestRotatePreservesNorm(t *testing.T) {
	f := func(x, y, theta float64) bool {
		p := Pt(norm(x), norm(y))
		th := math.Mod(norm(theta), 2*math.Pi)
		r := p.Rotate(th)
		return math.Abs(r.Norm()-p.Norm()) < 1e-6*(1+p.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Lerp endpoints and midpoint consistency.
func TestLerpProperties(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(norm(ax), norm(ay)), Pt(norm(bx), norm(by))
		m := a.Lerp(b, 0.5)
		return math.Abs(m.Dist(a)-m.Dist(b)) < 1e-6*(1+a.Dist(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// norm maps an arbitrary quick-generated float into a sane coordinate range,
// discarding NaN/Inf and extreme magnitudes that no design would contain.
func norm(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e4)
}
