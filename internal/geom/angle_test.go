package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAngleAt(t *testing.T) {
	v := Pt(0, 0)
	if a := AngleAt(v, Pt(1, 0), Pt(0, 1)); !ApproxEq(a, math.Pi/2) {
		t.Errorf("right angle = %v", a)
	}
	if a := AngleAt(v, Pt(1, 0), Pt(-1, 0)); !ApproxEq(a, math.Pi) {
		t.Errorf("straight angle = %v", a)
	}
	if a := AngleAt(v, Pt(1, 0), Pt(1, 0)); !ApproxEq(a, 0) {
		t.Errorf("zero angle = %v", a)
	}
	// Equilateral triangle corner = 60°.
	if a := AngleAt(Pt(0, 0), Pt(1, 0), Pt(0.5, math.Sqrt(3)/2)); math.Abs(a-math.Pi/3) > 1e-9 {
		t.Errorf("equilateral angle = %v, want %v", a, math.Pi/3)
	}
	// Degenerate: coincident points.
	if a := AngleAt(v, v, Pt(1, 0)); a != 0 {
		t.Errorf("degenerate angle = %v", a)
	}
}

func TestTurnAngle(t *testing.T) {
	// Straight path: no turn.
	if a := TurnAngle(Pt(0, 0), Pt(1, 0), Pt(2, 0)); !ApproxEq(a, 0) {
		t.Errorf("straight turn = %v", a)
	}
	// 90° turn.
	if a := TurnAngle(Pt(0, 0), Pt(1, 0), Pt(1, 1)); !ApproxEq(a, math.Pi/2) {
		t.Errorf("right turn = %v", a)
	}
	// Full reversal.
	if a := TurnAngle(Pt(0, 0), Pt(1, 0), Pt(0, 0)); !ApproxEq(a, math.Pi) {
		t.Errorf("reversal = %v", a)
	}
}

func TestBisector(t *testing.T) {
	v := Pt(0, 0)
	b := Bisector(v, Pt(1, 0), Pt(0, 1))
	want := Pt(1, 1).Unit()
	if !b.ApproxEq(want) {
		t.Errorf("Bisector = %v, want %v", b, want)
	}
	// Straight corner: bisector perpendicular to the rays.
	b = Bisector(v, Pt(1, 0), Pt(-1, 0))
	if !ApproxZero(b.Dot(Pt(1, 0))) {
		t.Errorf("straight-corner bisector %v not perpendicular", b)
	}
	if !ApproxEq(b.Norm(), 1) {
		t.Errorf("bisector not unit: %v", b.Norm())
	}
}

func TestCornerEffectiveLength(t *testing.T) {
	// Right isoceles triangle, corner at the right angle. Legs of length 1.
	v, a, b := Pt(0, 0), Pt(1, 0), Pt(0, 1)
	l := CornerEffectiveLength(v, a, b)
	if l <= 0 {
		t.Fatalf("effective length must be positive, got %v", l)
	}
	// Any ray from v hitting the opposite side a–b does so at distance at
	// most max(|va|, |vb|), so the effective length is bounded by that.
	if l > math.Max(v.Dist(a), v.Dist(b))+Eps {
		t.Errorf("effective length %v exceeds max corner-to-endpoint distance", l)
	}
	// Symmetric corner → both sub-corners identical → the two extents are
	// equal; verify via a symmetric equilateral triangle.
	ve, ae, be := Pt(0, 0), Pt(1, 0), Pt(0.5, math.Sqrt(3)/2)
	le := CornerEffectiveLength(ve, ae, be)
	if le <= 0 {
		t.Errorf("equilateral effective length = %v", le)
	}
}

// Property: corner effective length scales linearly with the triangle.
func TestCornerEffectiveLengthScales(t *testing.T) {
	f := func(ax, ay, bx, by, s float64) bool {
		a, b := Pt(norm(ax), norm(ay)), Pt(norm(bx), norm(by))
		v := Pt(0, 0)
		if Orient(v, a, b) == Collinear || a.Dist(v) < 1e-3 || b.Dist(v) < 1e-3 {
			return true
		}
		scale := math.Abs(norm(s))
		if scale < 1e-2 {
			return true
		}
		l1 := CornerEffectiveLength(v, a, b)
		l2 := CornerEffectiveLength(v, a.Scale(scale), b.Scale(scale))
		return math.Abs(l2-scale*l1) < 1e-6*(1+l2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the bisector makes equal angles with both rays.
func TestBisectorEqualAngles(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(norm(ax), norm(ay)), Pt(norm(bx), norm(by))
		v := Pt(0, 0)
		if a.Dist(v) < 1e-3 || b.Dist(v) < 1e-3 || Orient(v, a, b) == Collinear {
			return true
		}
		bis := Bisector(v, a, b)
		a1 := AngleAt(v, a, v.Add(bis))
		a2 := AngleAt(v, b, v.Add(bis))
		return math.Abs(a1-a2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
