package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 4))
	if s.Len() != 5 {
		t.Errorf("Len = %v", s.Len())
	}
	if !s.Mid().ApproxEq(Pt(1.5, 2)) {
		t.Errorf("Mid = %v", s.Mid())
	}
	if !s.Dir().ApproxEq(Pt(0.6, 0.8)) {
		t.Errorf("Dir = %v", s.Dir())
	}
	if !s.At(0.5).ApproxEq(Pt(1.5, 2)) {
		t.Errorf("At(0.5) = %v", s.At(0.5))
	}
	r := s.Reversed()
	if r.A != s.B || r.B != s.A {
		t.Error("Reversed wrong")
	}
}

func TestClosestPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		p, want Point
	}{
		{Pt(5, 3), Pt(5, 0)},
		{Pt(-2, 1), Pt(0, 0)},   // clamps to A
		{Pt(12, -1), Pt(10, 0)}, // clamps to B
	}
	for _, c := range cases {
		if got := s.ClosestPoint(c.p); !got.ApproxEq(c.want) {
			t.Errorf("ClosestPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if d := s.DistToPoint(Pt(5, 3)); !ApproxEq(d, 3) {
		t.Errorf("DistToPoint = %v", d)
	}
	// Degenerate segment.
	d := Seg(Pt(1, 1), Pt(1, 1))
	if !d.ClosestPoint(Pt(9, 9)).ApproxEq(Pt(1, 1)) {
		t.Error("degenerate segment ClosestPoint wrong")
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		s, u Segment
		want bool
	}{
		{Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), true}, // proper cross
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(5, 5)), true},    // T-touch
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(10, 0), Pt(20, 0)), true},  // endpoint chain
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(4, 0), Pt(6, 0)), true},    // collinear overlap
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(11, 0), Pt(20, 0)), false}, // collinear gap
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 1), Pt(10, 1)), false},  // parallel
		{Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(2, 0), Pt(3, -5)), false},   // disjoint
	}
	for i, c := range cases {
		if got := c.s.Intersects(c.u); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.u.Intersects(c.s); got != c.want {
			t.Errorf("case %d (swapped): Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestSegmentIntersectionPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 10))
	u := Seg(Pt(0, 10), Pt(10, 0))
	hit, p := s.Intersection(u)
	if !hit || !p.ApproxEq(Pt(5, 5)) {
		t.Errorf("Intersection = %v, %v", hit, p)
	}
	// Non-intersecting.
	hit, _ = s.Intersection(Seg(Pt(20, 0), Pt(30, 0)))
	if hit {
		t.Error("expected no intersection")
	}
	// Collinear overlap returns a shared point.
	hit, p = Seg(Pt(0, 0), Pt(10, 0)).Intersection(Seg(Pt(5, 0), Pt(15, 0)))
	if !hit {
		t.Fatal("collinear overlap should intersect")
	}
	if p.Y != 0 || p.X < 5-Eps || p.X > 10+Eps {
		t.Errorf("shared point %v outside overlap", p)
	}
}

func TestProperlyIntersects(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 10))
	if !s.ProperlyIntersects(Seg(Pt(0, 10), Pt(10, 0))) {
		t.Error("proper cross not detected")
	}
	// Endpoint touch is not proper.
	if s.ProperlyIntersects(Seg(Pt(10, 10), Pt(20, 0))) {
		t.Error("endpoint touch must not be proper")
	}
	// Collinear overlap is not proper.
	if Seg(Pt(0, 0), Pt(10, 0)).ProperlyIntersects(Seg(Pt(5, 0), Pt(15, 0))) {
		t.Error("collinear overlap must not be proper")
	}
}

func TestDistToSegment(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	u := Seg(Pt(0, 3), Pt(10, 3))
	d, ps, pt := s.DistToSegment(u)
	if !ApproxEq(d, 3) {
		t.Errorf("parallel dist = %v, want 3", d)
	}
	if !ApproxEq(ps.Dist(pt), 3) {
		t.Errorf("closest pair dist %v != 3", ps.Dist(pt))
	}
	// Crossing segments have distance 0.
	d, _, _ = s.DistToSegment(Seg(Pt(5, -1), Pt(5, 1)))
	if d != 0 {
		t.Errorf("crossing dist = %v, want 0", d)
	}
	// Skewed disjoint: closest is endpoint-to-endpoint.
	d, _, _ = Seg(Pt(0, 0), Pt(1, 0)).DistToSegment(Seg(Pt(4, 4), Pt(8, 8)))
	if !ApproxEq(d, Pt(1, 0).Dist(Pt(4, 4))) {
		t.Errorf("skew dist = %v", d)
	}
}

func TestLineIntersect(t *testing.T) {
	l := LineThrough(Pt(0, 0), Pt(1, 1))
	m := LineThrough(Pt(0, 2), Pt(1, 1))
	p, ok := l.Intersect(m)
	if !ok || !p.ApproxEq(Pt(1, 1)) {
		t.Errorf("Intersect = %v, %v", p, ok)
	}
	// Lines intersect beyond segment extents too.
	m2 := LineThrough(Pt(10, 0), Pt(10, 1))
	p, ok = l.Intersect(m2)
	if !ok || !p.ApproxEq(Pt(10, 10)) {
		t.Errorf("extended Intersect = %v, %v", p, ok)
	}
	_, ok = l.Intersect(LineThrough(Pt(0, 5), Pt(1, 6)))
	if ok {
		t.Error("parallel lines must not intersect")
	}
}

func TestLineProjectAndDist(t *testing.T) {
	l := LineThrough(Pt(0, 0), Pt(10, 0))
	if got := l.Project(Pt(3, 7)); !got.ApproxEq(Pt(3, 0)) {
		t.Errorf("Project = %v", got)
	}
	if d := l.DistToPoint(Pt(3, 7)); !ApproxEq(d, 7) {
		t.Errorf("DistToPoint = %v", d)
	}
	if l.Side(Pt(0, 5)) != CounterClockwise || l.Side(Pt(0, -5)) != Clockwise {
		t.Error("Side classification wrong")
	}
}

// Property: the closest point on a segment is never farther than either
// endpoint.
func TestClosestPointProperty(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		s := Seg(Pt(norm(ax), norm(ay)), Pt(norm(bx), norm(by)))
		p := Pt(norm(px), norm(py))
		d := s.DistToPoint(p)
		return d <= p.Dist(s.A)+1e-9 && d <= p.Dist(s.B)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: segment-to-segment distance is symmetric and zero iff
// Intersects (for well-separated random segments tolerance aside).
func TestDistToSegmentSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		s := Seg(Pt(norm(ax), norm(ay)), Pt(norm(bx), norm(by)))
		u := Seg(Pt(norm(cx), norm(cy)), Pt(norm(dx), norm(dy)))
		d1, _, _ := s.DistToSegment(u)
		d2, _, _ := u.DistToSegment(s)
		return math.Abs(d1-d2) < 1e-6*(1+d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
