package geom

import "sort"

// ConvexHull returns the convex hull of the given points in counterclockwise
// order, starting from the lexicographically smallest point. Collinear
// points on hull edges are dropped. Inputs with fewer than three distinct
// points return the distinct points in sorted order.
func ConvexHull(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		//rdl:allow floateq exact compare inside a sort comparator: an eps tie would break the less function's transitivity
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if !p.ApproxEq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 3 {
		return append([]Point(nil), uniq...)
	}
	// Andrew's monotone chain.
	var lower, upper []Point
	for _, p := range uniq {
		for len(lower) >= 2 && Orient(lower[len(lower)-2], lower[len(lower)-1], p) != CounterClockwise {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(uniq) - 1; i >= 0; i-- {
		p := uniq[i]
		for len(upper) >= 2 && Orient(upper[len(upper)-2], upper[len(upper)-1], p) != CounterClockwise {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	return append(lower[:len(lower)-1], upper[:len(upper)-1]...)
}

// PolygonArea returns the signed area of the polygon with the given vertex
// loop (positive when counterclockwise). The loop must not repeat its first
// vertex at the end.
func PolygonArea(poly []Point) float64 {
	var sum float64
	n := len(poly)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += poly[i].Cross(poly[j])
	}
	return sum / 2
}

// PointInConvexPolygon reports whether p lies inside or on the boundary of
// the convex polygon given in counterclockwise order.
func PointInConvexPolygon(p Point, poly []Point) bool {
	n := len(poly)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if Orient(poly[i], poly[j], p) == Clockwise {
			return false
		}
	}
	return true
}
