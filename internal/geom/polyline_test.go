package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPolylineLength(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(3, 4), Pt(3, 10)}
	if got := pl.Length(); !ApproxEq(got, 11) {
		t.Errorf("Length = %v, want 11", got)
	}
	if got := (Polyline{Pt(1, 1)}).Length(); got != 0 {
		t.Errorf("single-point length = %v", got)
	}
	if got := Polyline(nil).Length(); got != 0 {
		t.Errorf("empty length = %v", got)
	}
}

func TestOctilinearLength(t *testing.T) {
	// Pure axis move: octilinear == Euclidean.
	pl := Polyline{Pt(0, 0), Pt(10, 0)}
	if got := pl.OctilinearLength(); !ApproxEq(got, 10) {
		t.Errorf("axis octilinear = %v", got)
	}
	// Pure diagonal move: octilinear == Euclidean (45° allowed).
	pl = Polyline{Pt(0, 0), Pt(10, 10)}
	if got := pl.OctilinearLength(); math.Abs(got-10*math.Sqrt2) > 1e-9 {
		t.Errorf("diagonal octilinear = %v, want %v", got, 10*math.Sqrt2)
	}
	// General direction is strictly longer than Euclidean.
	pl = Polyline{Pt(0, 0), Pt(10, 3)}
	if pl.OctilinearLength() <= pl.Length() {
		t.Error("octilinear length must exceed Euclidean for generic angles")
	}
	// Expected value: max + (√2−1)·min = 10 + (√2−1)*3.
	want := 10 + (math.Sqrt2-1)*3
	if got := pl.OctilinearLength(); math.Abs(got-want) > 1e-9 {
		t.Errorf("octilinear = %v, want %v", got, want)
	}
}

func TestSegmentsAndReversed(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(1, 0), Pt(1, 1)}
	segs := pl.Segments()
	if len(segs) != 2 {
		t.Fatalf("Segments len = %d", len(segs))
	}
	if segs[0] != Seg(Pt(0, 0), Pt(1, 0)) || segs[1] != Seg(Pt(1, 0), Pt(1, 1)) {
		t.Error("Segments content wrong")
	}
	if (Polyline{Pt(0, 0)}).Segments() != nil {
		t.Error("single-point polyline has no segments")
	}
	r := pl.Reversed()
	if r[0] != Pt(1, 1) || r[2] != Pt(0, 0) {
		t.Error("Reversed wrong")
	}
	if !ApproxEq(r.Length(), pl.Length()) {
		t.Error("reversal changed length")
	}
}

func TestPolylineDistToPoint(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(10, 0), Pt(10, 10)}
	d, cp := pl.DistToPoint(Pt(5, 3))
	if !ApproxEq(d, 3) || !cp.ApproxEq(Pt(5, 0)) {
		t.Errorf("DistToPoint = %v at %v", d, cp)
	}
	d, cp = pl.DistToPoint(Pt(13, 5))
	if !ApproxEq(d, 3) || !cp.ApproxEq(Pt(10, 5)) {
		t.Errorf("DistToPoint second leg = %v at %v", d, cp)
	}
	d, _ = Polyline(nil).DistToPoint(Pt(0, 0))
	if !math.IsInf(d, 1) {
		t.Error("empty polyline distance should be +Inf")
	}
	d, _ = Polyline{Pt(2, 0)}.DistToPoint(Pt(0, 0))
	if !ApproxEq(d, 2) {
		t.Errorf("single-point distance = %v", d)
	}
}

func TestPolylineDistToSegment(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(10, 0)}
	d, _ := pl.DistToSegment(Seg(Pt(0, 5), Pt(10, 5)))
	if !ApproxEq(d, 5) {
		t.Errorf("parallel seg dist = %v", d)
	}
	d, _ = pl.DistToSegment(Seg(Pt(5, -2), Pt(5, 2)))
	if d != 0 {
		t.Errorf("crossing seg dist = %v", d)
	}
}

func TestPolylineDistToPolyline(t *testing.T) {
	a := Polyline{Pt(0, 0), Pt(10, 0)}
	b := Polyline{Pt(0, 4), Pt(10, 4), Pt(10, 8)}
	if d := a.DistToPolyline(b); !ApproxEq(d, 4) {
		t.Errorf("polyline dist = %v", d)
	}
	if d := a.DistToPolyline(nil); !math.IsInf(d, 1) {
		t.Error("empty other should be +Inf")
	}
}

func TestSimplify(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(5, 0), Pt(5, 0), Pt(10, 0), Pt(10, 5)}
	s := pl.Simplify()
	want := Polyline{Pt(0, 0), Pt(10, 0), Pt(10, 5)}
	if len(s) != len(want) {
		t.Fatalf("Simplify len = %d, want %d (%v)", len(s), len(want), s)
	}
	for i := range want {
		if !s[i].ApproxEq(want[i]) {
			t.Errorf("Simplify[%d] = %v, want %v", i, s[i], want[i])
		}
	}
	if !ApproxEq(s.Length(), pl.Length()) {
		t.Error("Simplify changed length")
	}
	// A back-tracking collinear point must NOT be removed (direction flips).
	zig := Polyline{Pt(0, 0), Pt(10, 0), Pt(5, 0)}
	if got := zig.Simplify(); len(got) != 3 {
		t.Errorf("backtrack simplified away: %v", got)
	}
}

func TestMaxTurnAngle(t *testing.T) {
	straight := Polyline{Pt(0, 0), Pt(5, 0), Pt(10, 0)}
	if a := straight.MaxTurnAngle(); !ApproxEq(a, 0) {
		t.Errorf("straight max turn = %v", a)
	}
	right := Polyline{Pt(0, 0), Pt(5, 0), Pt(5, 5)}
	if a := right.MaxTurnAngle(); !ApproxEq(a, math.Pi/2) {
		t.Errorf("right max turn = %v", a)
	}
	if a := (Polyline{Pt(0, 0), Pt(1, 1)}).MaxTurnAngle(); a != 0 {
		t.Errorf("two-point max turn = %v", a)
	}
}

func TestMinTurnSpacing(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(5, 0), Pt(5, 2), Pt(10, 2)}
	if d := pl.MinTurnSpacing(); !ApproxEq(d, 2) {
		t.Errorf("MinTurnSpacing = %v, want 2", d)
	}
	if d := (Polyline{Pt(0, 0), Pt(5, 0), Pt(5, 5)}).MinTurnSpacing(); !math.IsInf(d, 1) {
		t.Error("single-turn polyline should report +Inf spacing")
	}
}

// Property: Simplify never increases point count and preserves length.
func TestSimplifyProperty(t *testing.T) {
	f := func(coords []float64) bool {
		if len(coords) < 4 {
			return true
		}
		var pl Polyline
		for i := 0; i+1 < len(coords); i += 2 {
			pl = append(pl, Pt(norm(coords[i]), norm(coords[i+1])))
		}
		s := pl.Simplify()
		if len(s) > len(pl) {
			return false
		}
		return math.Abs(s.Length()-pl.Length()) < 1e-6*(1+pl.Length())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: octilinear length is always ≥ Euclidean length, with equality
// only on axis or 45° segments.
func TestOctilinearDominance(t *testing.T) {
	f := func(coords []float64) bool {
		if len(coords) < 4 {
			return true
		}
		var pl Polyline
		for i := 0; i+1 < len(coords); i += 2 {
			pl = append(pl, Pt(norm(coords[i]), norm(coords[i+1])))
		}
		return pl.OctilinearLength() >= pl.Length()-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSimplifyInPlaceMatchesSimplify pins byte-identical output between the
// copying and in-place simplifiers on deterministic pseudo-random polylines
// (duplicates, collinear runs, backtracks and spikes included), plus the
// empty and tiny edge cases the copying form cannot take.
func TestSimplifyInPlaceMatchesSimplify(t *testing.T) {
	if got := (Polyline{}).SimplifyInPlace(); len(got) != 0 {
		t.Fatalf("empty: got %v", got)
	}
	if got := (Polyline{Pt(1, 2)}).SimplifyInPlace(); len(got) != 1 || got[0] != Pt(1, 2) {
		t.Fatalf("single: got %v", got)
	}
	// xorshift so the cases are deterministic without math/rand.
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for tc := 0; tc < 500; tc++ {
		n := int(next()%12) + 1
		pl := make(Polyline, 0, n)
		x, y := 0.0, 0.0
		for i := 0; i < n; i++ {
			switch next() % 5 {
			case 0: // exact duplicate of the previous point
				if len(pl) > 0 {
					pl = append(pl, pl[len(pl)-1])
					continue
				}
				fallthrough
			case 1: // collinear step
				x += 1
			case 2: // collinear backtrack
				x -= 2
			case 3:
				y += float64(next()%7) - 3
			default:
				x += float64(next()%5) - 2
				y += 1
			}
			pl = append(pl, Pt(x, y))
		}
		want := pl.Simplify()
		cp := make(Polyline, len(pl))
		copy(cp, pl)
		got := cp.SimplifyInPlace()
		if len(got) != len(want) {
			t.Fatalf("case %d (%v): in-place len %d, copy len %d", tc, pl, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("case %d (%v): in-place[%d]=%v, copy=%v", tc, pl, i, got[i], want[i])
			}
		}
	}
}
