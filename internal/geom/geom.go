// Package geom provides the 2-D computational-geometry substrate used by the
// any-angle RDL router: points, vectors, segments, circles, robust-enough
// orientation and in-circle predicates, tangent constructions, angles and
// bisectors, polylines, and convex hulls.
//
// All coordinates are in micrometres (µm), matching the units the paper
// reports wirelength in. The package is pure math: it has no dependency on
// the design model or the routing graph.
package geom

import "math"

// Eps is the default absolute tolerance used by the approximate comparisons
// in this package. Routing coordinates are in µm and designs span a few
// millimetres, so 1e-9 µm is far below any manufacturable feature size while
// staying well above float64 noise for the magnitudes involved.
const Eps = 1e-9

// ApproxEq reports whether a and b are within Eps of each other.
func ApproxEq(a, b float64) bool {
	return math.Abs(a-b) <= Eps
}

// ApproxZero reports whether v is within Eps of zero.
func ApproxZero(v float64) bool {
	return math.Abs(v) <= Eps
}

// Clamp limits v to the inclusive range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
